// Command mogen generates synthetic moving-object workloads: a
// perturbed-grid city (neighborhood polygons with income attributes,
// river, streets, schools, stores) and random-waypoint trajectories,
// written as CSV/WKT files (package store formats) for external tools
// and reloadable with pietql -load.
//
// Usage:
//
//	mogen -out data/ -grid 8 -objects 200 -samples 120
package main

import (
	"flag"
	"fmt"
	"os"

	"mogis/internal/layer"
	"mogis/internal/store"
	"mogis/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	grid := flag.Int("grid", 8, "neighborhood grid dimension (grid x grid)")
	cell := flag.Float64("cell", 100, "neighborhood cell size")
	objects := flag.Int("objects", 100, "number of moving objects")
	samples := flag.Int("samples", 60, "samples per object")
	step := flag.Int64("step", 60, "seconds between samples")
	speed := flag.Float64("speed", 1.5, "object speed in units per second")
	flag.Parse()

	city := workload.GenCity(workload.CityConfig{
		Seed: *seed, Cols: *grid, Rows: *grid, CellSize: *cell,
	})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: *seed, Objects: *objects, Samples: *samples, Step: *step, Speed: *speed,
	})
	ds := &store.Dataset{
		Ln: city.Ln, Lr: city.Lr, Lh: city.Lh, Ls: city.Ls, Lstores: city.Lstores,
		Neighborhoods: city.Neighborhoods, FM: fm,
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "mogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d neighborhoods, %d objects, %d samples\n",
		*out, city.Ln.Count(layer.KindPolygon), *objects, fm.Len())
}
