// Command pietql runs Piet-QL queries (Section 5 of the paper)
// against either the paper's running example or a generated synthetic
// city. Queries are read from -query, from files given as arguments,
// or interactively from stdin (terminated by a blank line).
//
// A query prefixed with EXPLAIN prints the evaluation plan; EXPLAIN
// ANALYZE runs it with a per-query trace and prints the span tree
// plus the engine-counter deltas (overlay and litCache hits, geometry
// predicate counts, ...).
//
// Usage:
//
//	pietql -query "SELECT layer.Ln; FROM PietSchema;"
//	pietql -query "EXPLAIN ANALYZE SELECT layer.Ln; FROM PietSchema;"
//	pietql query.pql
//	pietql -city -grid 8          # synthetic city instead of the paper scenario
//	pietql -shards 4 -city ...    # sharded scatter-gather engine (bit-identical answers)
//	pietql -explain-remark1       # trace the paper's Remark 1 query
//	pietql -metrics -query "..."  # dump Prometheus metrics after the run
//	pietql -timeout 2s -max-rows 1000000 -query "..."
//	pietql -telemetry-addr localhost:6060   # /metrics, /debug/stats, /debug/queries, /debug/traces/{id}
//	pietql -query-log queries.jsonl -query "..."  # structured JSONL query log
//	echo "..." | pietql -
//
// Exit codes: 0 success, 1 setup or I/O error, 2 query parse error,
// 3 evaluation error (including resource-budget aborts), 4 timeout or
// cancellation.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/qerr"
	"mogis/internal/scenario"
	"mogis/internal/store"
	"mogis/internal/telemetry"
	"mogis/internal/telemetry/telhttp"
	"mogis/internal/workload"
)

// queryLimits carries the CLI's -timeout/-max-rows/-max-results into
// each query's context.
var queryLimits struct {
	timeout    time.Duration
	maxRows    int64
	maxResults int64
}

// baseCtx is the process-lifetime context: main swaps in the
// signal.NotifyContext so SIGINT/SIGTERM cancels through the same
// plumbing as -timeout, and an interrupted query exits 4.
var baseCtx = context.Background()

// queryContext builds the per-query context: the signal-aware base, a
// wall-clock deadline from -timeout and a core.Budget from
// -max-rows/-max-results.
func queryContext() (context.Context, context.CancelFunc) {
	ctx, cancel := baseCtx, context.CancelFunc(func() {})
	if queryLimits.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, queryLimits.timeout)
	}
	if queryLimits.maxRows > 0 || queryLimits.maxResults > 0 {
		ctx = core.WithBudget(ctx, core.Budget{
			MaxRows:    queryLimits.maxRows,
			MaxResults: queryLimits.maxResults,
		})
	}
	return ctx, cancel
}

func main() {
	query := flag.String("query", "", "run one query and exit")
	load := flag.String("load", "", "load a dataset directory written by mogen instead of the paper scenario")
	useCity := flag.Bool("city", false, "use a generated synthetic city instead of the paper scenario")
	grid := flag.Int("grid", 8, "synthetic city grid dimension")
	objects := flag.Int("objects", 100, "synthetic moving objects")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	noOverlay := flag.Bool("no-overlay", false, "disable the precomputed overlay (naive geometry)")
	shards := flag.Int("shards", 0, "partition each MOFT across N shard engines (scatter-gather with a deterministic merge; bit-identical answers); 0 or 1 = unsharded")
	timeBuckets := flag.Int("time-buckets", 0, "per-cell time buckets of the pre-aggregated sample grid (0 = adaptive, <0 disables the temporal index, n > 0 forces n buckets)")
	metrics := flag.Bool("metrics", false, "print engine metrics in Prometheus text format on exit")
	telemetryAddr := flag.String("telemetry-addr", "", "serve the telemetry HTTP pages (/metrics, /debug/stats, /debug/queries, /debug/traces/{id}) on this address; empty disables the listener")
	queryLogPath := flag.String("query-log", "", "append the structured JSONL query log to this file (\"-\" for stderr)")
	explainRemark1 := flag.Bool("explain-remark1", false, "trace the paper's Remark 1 motivating query and exit")
	verbose := flag.Bool("v", false, "log engine events (overlay precomputation, ...) to stderr")
	flag.DurationVar(&queryLimits.timeout, "timeout", 0, "per-query wall-clock deadline (0 = none); exceeding it exits 4")
	flag.Int64Var(&queryLimits.maxRows, "max-rows", 0, "per-query budget on scanned MOFT rows / trajectory samples (0 = unlimited); exceeding it exits 3")
	flag.Int64Var(&queryLimits.maxResults, "max-results", 0, "per-query budget on result items (0 = unlimited); exceeding it exits 3")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: pietql [flags] [query-file | -] ...

Exit codes:
  0  success
  1  setup or I/O error
  2  query parse error
  3  evaluation error (including -max-rows/-max-results budget aborts)
  4  timeout (-timeout) or cancellation

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	// Ctrl-C cancels the running query through the normal context
	// plumbing (exit 4); a second signal kills the process outright.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	baseCtx = ctx

	if *verbose {
		obs.SetLogOutput(os.Stderr)
	}

	// dump flushes the -metrics Prometheus text at most once, shared
	// by the deferred normal-return path and the os.Exit paths.
	dump := func() {}
	if *metrics {
		dump = obs.MetricsDump(os.Stdout)
	}
	defer dump()

	stopTelemetry, err := setupTelemetry(*telemetryAddr, *queryLogPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pietql: %v\n", err)
		os.Exit(1)
	}
	defer stopTelemetry()

	if *explainRemark1 {
		if err := runExplainRemark1(); err != nil {
			fmt.Fprintf(os.Stderr, "pietql: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var sys *pietql.System
	if *load != "" {
		sys, err = loadSystem(*load, !*noOverlay)
	} else {
		sys, err = buildSystem(*useCity, *grid, *objects, *seed, !*noOverlay)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pietql: %v\n", err)
		if qerr.IsCancel(err) {
			os.Exit(4)
		}
		os.Exit(1)
	}
	if *shards > 1 {
		// Swap the moving-object engine for a sharded coordinator over
		// the same model context; answers stay bit-identical.
		sys.Engine = core.NewSharded(sys.Ctx, *shards)
	}
	if *timeBuckets != 0 {
		if tb, ok := sys.Engine.(interface{ SetTimeBuckets(int) }); ok {
			tb.SetTimeBuckets(*timeBuckets)
		}
	}

	switch {
	case *query != "":
		exit(runQuery(sys, *query), dump)
	case flag.NArg() > 0:
		for _, arg := range flag.Args() {
			var text []byte
			var err error
			if arg == "-" {
				text, err = readAll(os.Stdin)
			} else {
				text, err = os.ReadFile(arg)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pietql: %v\n", err)
				os.Exit(1)
			}
			if code := runQuery(sys, string(text)); code != 0 {
				exit(code, dump)
			}
		}
	default:
		repl(sys)
	}
}

// setupTelemetry installs the process-wide telemetry collector when
// -telemetry-addr or -query-log asks for it, serving the HTTP pages
// and/or streaming the JSONL query log. The returned stop function
// closes the listener and the log file.
func setupTelemetry(addr, logPath string) (func(), error) {
	if addr == "" && logPath == "" {
		return func() {}, nil
	}
	cfg := telemetry.Config{}
	var logFile *os.File
	switch logPath {
	case "":
	case "-":
		cfg.LogWriter = os.Stderr
	default:
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("query-log: %w", err)
		}
		logFile, cfg.LogWriter = f, f
	}
	col := telemetry.New(cfg)
	telemetry.SetDefault(col)
	var srv *telhttp.Server
	if addr != "" {
		var err error
		srv, err = telhttp.Serve(addr, col)
		if err != nil {
			if logFile != nil {
				logFile.Close()
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "pietql: telemetry listening on http://%s\n", srv.Addr)
	}
	return func() {
		srv.Close()
		if logFile != nil {
			logFile.Close()
		}
	}, nil
}

// exit flushes the -metrics dump (normally handled by the deferred
// call, which os.Exit would skip) and terminates with code.
func exit(code int, dump func()) {
	if code == 0 {
		return
	}
	dump()
	os.Exit(code)
}

func readAll(f *os.File) ([]byte, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), sc.Err()
}

// runExplainRemark1 evaluates the paper's motivating query (Remark 1:
// buses per hour in the low-income morning neighborhoods, 4/3) with a
// trace attached and prints the span tree and counter deltas. The
// query's income filter is not expressible in the Piet-QL grammar, so
// it runs as the first-order formula of Section 3.1.
func runExplainRemark1() error {
	s := scenario.New()
	tr := obs.NewTracer("remark1")
	before := obs.Default.Snapshot()
	s.Ctx.SetTracer(tr)
	rate, err := s.MotivatingResult()
	s.Ctx.SetTracer(nil)
	root := tr.Finish()
	if err != nil {
		return err
	}
	fmt.Print(obs.FormatExplain(root, obs.Default.Snapshot().Since(before)))
	fmt.Printf("result: %.4f buses per hour (Remark 1: 4/3)\n", rate)
	return nil
}

// runQuery evaluates one query under the CLI's timeout/budget context
// and returns the process exit code for it: 0 success, 2 parse error,
// 3 evaluation error, 4 timeout or cancellation.
func runQuery(sys *pietql.System, q string) int {
	ctx, cancel := queryContext()
	defer cancel()
	out, err := sys.Run(ctx, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		switch {
		case pietql.IsParseError(err):
			return 2
		case qerr.IsCancel(err):
			return 4
		default:
			return 3
		}
	}
	fmt.Print(pietql.FormatOutcome(out))
	return 0
}

func repl(sys *pietql.System) {
	fmt.Println("Piet-QL — enter a query, finish with a blank line (Ctrl-D to quit)")
	sc := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			if q := strings.TrimSpace(buf.String()); q != "" {
				runQuery(sys, q)
			}
			buf.Reset()
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	if q := strings.TrimSpace(buf.String()); q != "" {
		runQuery(sys, q)
	}
}

// loadSystem wires a Piet-QL system over a dataset directory written
// by mogen (package store formats).
func loadSystem(dir string, withOverlay bool) (*pietql.System, error) {
	ds, err := store.Load(dir)
	if err != nil {
		return nil, err
	}
	ctx, eng, err := ds.Context()
	if err != nil {
		return nil, err
	}
	kinds := map[string]layer.Kind{"Ln": layer.KindPolygon}
	layers := map[string]*layer.Layer{"Ln": ds.Ln}
	if ds.Lr != nil {
		kinds["Lr"] = layer.KindPolyline
		layers["Lr"] = ds.Lr
	}
	if ds.Lh != nil {
		kinds["Lh"] = layer.KindPolyline
		layers["Lh"] = ds.Lh
	}
	if ds.Ls != nil {
		kinds["Ls"] = layer.KindNode
		layers["Ls"] = ds.Ls
	}
	if ds.Lstores != nil {
		kinds["Lstores"] = layer.KindNode
		layers["Lstores"] = ds.Lstores
	}
	sys := &pietql.System{
		Ctx: ctx, Engine: eng, Kinds: kinds, SchemaName: "PietSchema",
		Cubes: mdx.Catalog{"CityCube": &mdx.Cube{Name: "CityCube", Fact: populationCube(ds.Neighborhoods)}},
	}
	if withOverlay {
		refN := overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}
		var pairs []overlay.Pair
		for name, kind := range kinds {
			if name == "Ln" {
				continue
			}
			pairs = append(pairs, overlay.Pair{A: refN, B: overlay.Ref{Layer: name, Kind: kind}})
		}
		ov, err := overlay.Precompute(baseCtx, layers, pairs)
		if err != nil {
			return nil, err
		}
		sys.Overlay = ov
	}
	return sys, nil
}

// buildSystem wires a Piet-QL system over either the paper scenario
// or a synthetic city.
func buildSystem(useCity bool, grid, objects int, seed int64, withOverlay bool) (*pietql.System, error) {
	if !useCity {
		s := scenario.New()
		sys := &pietql.System{
			Ctx: s.Ctx, Engine: s.Engine,
			Kinds: map[string]layer.Kind{
				"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
				"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
			},
			SchemaName: "PietSchema",
			Cubes:      mdx.Catalog{},
		}
		sys.Cubes["CityCube"] = &mdx.Cube{Name: "CityCube", Fact: populationCube(s.Neighborhoods)}
		if withOverlay {
			ov, err := overlay.Precompute(baseCtx, map[string]*layer.Layer{
				"Ln": s.Ln, "Lr": s.Lr, "Ls": s.Ls, "Lstores": s.Lstores, "Lh": s.Lh,
			}, defaultPairs())
			if err != nil {
				return nil, err
			}
			sys.Overlay = ov
		}
		return sys, nil
	}

	city := workload.GenCity(workload.CityConfig{Seed: seed, Cols: grid, Rows: grid})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: seed, Objects: objects})
	var ctx *fo.Context
	var eng *core.Engine
	ctx, eng = city.Context(fm)
	sys := &pietql.System{
		Ctx: ctx, Engine: eng,
		Kinds: map[string]layer.Kind{
			"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
			"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
		},
		SchemaName: "PietSchema",
		Cubes:      mdx.Catalog{"CityCube": &mdx.Cube{Name: "CityCube", Fact: populationCube(city.Neighborhoods)}},
	}
	if withOverlay {
		ov, err := overlay.Precompute(baseCtx, city.Layers(), defaultPairs())
		if err != nil {
			return nil, err
		}
		sys.Overlay = ov
	}
	return sys, nil
}

func defaultPairs() []overlay.Pair {
	refN := overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}
	return []overlay.Pair{
		{A: refN, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
		{A: refN, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
		{A: refN, B: overlay.Ref{Layer: "Ls", Kind: layer.KindNode}},
		{A: refN, B: overlay.Ref{Layer: "Lh", Kind: layer.KindPolyline}},
	}
}

func populationCube(dim *olap.Dimension) *olap.FactTable {
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: dim, Level: "neighborhood"}},
		Measures: []string{"population", "income"},
	})
	for _, m := range dim.Members("neighborhood") {
		pop, inc := 0.0, 0.0
		if v, ok := dim.Attr("neighborhood", m, "population"); ok {
			pop, _ = v.Num()
		}
		if v, ok := dim.Attr("neighborhood", m, "income"); ok {
			inc, _ = v.Num()
		}
		ft.MustAdd([]olap.Member{m}, []float64{pop, inc})
	}
	return ft
}
