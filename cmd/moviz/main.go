// Command moviz renders the paper's Figure 1 (the six-bus moving
// objects example) as an ASCII map or an SVG document, and prints the
// Figure-2 GIS dimension schema.
//
// Usage:
//
//	moviz              # ASCII map of Figure 1
//	moviz -width 120   # wider ASCII map
//	moviz -svg out.svg # write an SVG rendering
//	moviz -schema      # print the Figure-2 dimension schema
//	moviz -table       # print Table 1 (the FMbus fact table)
//	moviz -load data/ -svg out.svg  # render a dataset written by mogen
package main

import (
	"flag"
	"fmt"
	"os"

	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/render"
	"mogis/internal/scenario"
	"mogis/internal/store"
)

func main() {
	width := flag.Int("width", 80, "ASCII map width in characters")
	svgPath := flag.String("svg", "", "write an SVG rendering to this file")
	schema := flag.Bool("schema", false, "print the Figure-2 GIS dimension schema")
	table := flag.Bool("table", false, "print Table 1 (FMbus)")
	load := flag.String("load", "", "render a dataset directory (written by mogen) instead of the paper scenario")
	flag.Parse()

	if *load != "" {
		if *svgPath == "" {
			fmt.Fprintln(os.Stderr, "moviz: -load requires -svg <file>")
			os.Exit(2)
		}
		if err := renderDataset(*load, *svgPath); err != nil {
			fmt.Fprintf(os.Stderr, "moviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
		return
	}

	s := scenario.New()

	switch {
	case *schema:
		fmt.Print(s.GIS.Schema().Describe())
	case *table:
		fmt.Print(s.FMbus.String())
	case *svgPath != "":
		if err := os.WriteFile(*svgPath, []byte(s.RenderSVG()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "moviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	default:
		fmt.Print(s.RenderASCII(*width))
	}
}

// renderDataset draws a stored dataset as SVG, shading neighborhoods
// by income (darker = poorer).
func renderDataset(dir, out string) error {
	ds, err := store.Load(dir)
	if err != nil {
		return err
	}
	shade := func(id layer.Gid) float64 {
		name, ok := ds.Ln.AlphaInverse("neighb", id)
		if !ok {
			return 0
		}
		v, ok := ds.Neighborhoods.Attr("neighborhood", olap.Member(name), "income")
		if !ok {
			return 0
		}
		income, _ := v.Num()
		if income < 1500 {
			return 0.8
		}
		return 0.1
	}
	var pls, nds []*layer.Layer
	if ds.Lr != nil {
		pls = append(pls, ds.Lr)
	}
	if ds.Lh != nil {
		pls = append(pls, ds.Lh)
	}
	if ds.Ls != nil {
		nds = append(nds, ds.Ls)
	}
	if ds.Lstores != nil {
		nds = append(nds, ds.Lstores)
	}
	svg := render.SVG(ds.Ln, pls, nds, ds.FM, render.Options{Shade: shade})
	return os.WriteFile(out, []byte(svg), 0o644)
}
