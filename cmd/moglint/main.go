// Command moglint runs the repository's domain-invariant analyzers
// (internal/lint) over Go packages and reports contract violations.
//
// Usage:
//
//	moglint [-json] [-sarif] [-enable a,b] [-disable c] [patterns...]
//
// Patterns follow go-tool conventions: ./... (everything under the
// module), dir/... (a subtree), or plain directories. With no
// patterns, ./... is assumed. Exit status is 1 when findings are
// reported, 2 on usage or load errors, 0 on a clean tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mogis/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		sarifOut = flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (always exit 0 on success)")
		enable   = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = flag.String("disable", "", "comma-separated analyzers to skip")
		list     = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: moglint [-json] [-sarif] [-enable a,b] [-disable c] [patterns...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moglint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moglint:", err)
		os.Exit(2)
	}
	root, modPath, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moglint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, modPath, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moglint:", err)
		os.Exit(2)
	}

	findings := lint.RunAll(analyzers, pkgs)

	if *sarifOut {
		// SARIF is for code-scanning upload: the findings travel in
		// the artifact, so the process exits 0 and the scanning UI —
		// not the build — turns them into annotations.
		if err := lint.WriteSARIF(os.Stdout, root, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, "moglint:", err)
			os.Exit(2)
		}
		return
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "moglint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "moglint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -enable/-disable flags against the
// registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	split := func(s string) ([]string, error) {
		if s == "" {
			return nil, nil
		}
		var names []string
		for _, n := range strings.Split(s, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := byName[n]; !ok {
				known := make([]string, 0, len(byName))
				for k := range byName {
					known = append(known, k)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
			}
			names = append(names, n)
		}
		return names, nil
	}

	enabled, err := split(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := split(disable)
	if err != nil {
		return nil, err
	}
	skip := map[string]bool{}
	for _, n := range disabled {
		skip[n] = true
	}

	var out []*lint.Analyzer
	if len(enabled) == 0 {
		for _, a := range lint.All() {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
	} else {
		for _, a := range lint.All() { // registry order, not flag order
			for _, n := range enabled {
				if a.Name == n && !skip[a.Name] {
					out = append(out, a)
					break
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
