// Command mogisd serves the moving-object model over HTTP: Piet-QL
// queries, streamed position ingest, a geofence event stream (SSE),
// and the telemetry surface, behind admission control and a graceful
// drain.
//
// Usage:
//
//	mogisd -addr :8080                    # paper scenario, geofence on Ln
//	mogisd -city -grid 12 -objects 500    # synthetic city
//	mogisd -shards 4                      # sharded scatter-gather engine
//	mogisd -max-in-flight 32 -max-queue 64 -queue-wait 1s
//	mogisd -query-log queries.jsonl -v
//
//	curl -s localhost:8080/query -d 'SELECT layer.Ln; FROM PietSchema;'
//	curl -s 'localhost:8080/ingest?table=FMbus' --data-binary $'7,95,3.0,0.5\n'
//	curl -N 'localhost:8080/events?max_events=10'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops
// admitting, SSE subscribers get a shutdown event, in-flight requests
// finish within -drain-budget, stragglers are hard-closed.
//
// Exit codes: 0 clean shutdown, 1 setup error, 4 unclean drain (the
// budget expired with work still in flight).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mogis/internal/obs"
	"mogis/internal/server"
	"mogis/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	useCity := flag.Bool("city", false, "serve a generated synthetic city instead of the paper scenario")
	grid := flag.Int("grid", 8, "synthetic city grid dimension")
	objects := flag.Int("objects", 100, "synthetic moving objects")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	noOverlay := flag.Bool("no-overlay", false, "disable the precomputed overlay (naive geometry)")
	shards := flag.Int("shards", 0, "partition each MOFT across N shard engines; 0 or 1 = unsharded")
	geofence := flag.String("geofence-layer", "Ln", "polygon layer watched by /events; empty disables the stream")

	maxInFlight := flag.Int("max-in-flight", 64, "concurrent admitted requests")
	maxQueue := flag.Int("max-queue", 128, "admission wait-queue size; overflow is shed with 429")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max admission-queue wait; exceeding it sheds with 503")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "default /query deadline when the request brings none (0 = unbounded)")
	subQueue := flag.Int("subscriber-queue", 64, "per-subscriber event queue; overflow drops oldest + lagged event")
	maxSubs := flag.Int("max-subscribers", 10000, "concurrent SSE subscribers")
	stall := flag.Duration("stall-deadline", 5*time.Second, "per-write deadline before a stalled subscriber is disconnected")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "SSE keepalive period")
	drainBudget := flag.Duration("drain-budget", 10*time.Second, "graceful shutdown budget before stragglers are hard-closed")

	queryLogPath := flag.String("query-log", "", "append the structured JSONL query log to this file (\"-\" for stderr)")
	verbose := flag.Bool("v", false, "log engine events to stderr")
	flag.Parse()

	if *verbose {
		obs.SetLogOutput(os.Stderr)
	}

	// The daemon's signal contract: first SIGINT/SIGTERM starts the
	// graceful drain; stop() restores default delivery so a second
	// signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Telemetry is always on for a daemon — /metrics and /debug/* are
	// part of the served surface, not an opt-in.
	telCfg := telemetry.Config{}
	switch *queryLogPath {
	case "":
	case "-":
		telCfg.LogWriter = os.Stderr
	default:
		f, err := os.OpenFile(*queryLogPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mogisd: query-log: %v\n", err)
			return 1
		}
		telCfg.LogWriter = f
		defer f.Close()
	}
	tel := telemetry.New(telCfg)
	telemetry.SetDefault(tel)

	sys, err := server.NewSystem(server.SystemConfig{
		City: *useCity, Grid: *grid, Objects: *objects, Seed: *seed,
		Overlay: !*noOverlay, Shards: *shards, Telemetry: tel,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mogisd: %v\n", err)
		return 1
	}

	srv, err := server.New(server.Config{
		System:          sys,
		Telemetry:       tel,
		GeofenceLayer:   *geofence,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		QueryTimeout:    *queryTimeout,
		SubscriberQueue: *subQueue,
		MaxSubscribers:  *maxSubs,
		StallDeadline:   *stall,
		Heartbeat:       *heartbeat,
		DrainBudget:     *drainBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mogisd: %v\n", err)
		return 1
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "mogisd: %v\n", err)
		return 1
	}
	table := "FMbus"
	if *useCity {
		table = "FM"
	}
	fmt.Fprintf(os.Stderr, "mogisd: serving table %s on http://%s (POST /query, POST /ingest, GET /events, GET /metrics)\n", table, srv.Addr())

	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "mogisd: draining...")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainBudget)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "mogisd: drain: %v\n", err)
		return 4
	}
	fmt.Fprintln(os.Stderr, "mogisd: clean shutdown")
	return 0
}
