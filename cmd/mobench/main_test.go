package main

import (
	"encoding/json"
	"testing"
)

// TestReadBenchShapes pins the -baseline parse contract: current
// {meta, reports} files round-trip with their meta header, and legacy
// bare-array BENCH_*.json files from runs before the header existed
// still load (with hasMeta=false, so no config-drift warnings fire
// against a config that was never recorded).
func TestReadBenchShapes(t *testing.T) {
	current := []byte(`{
		"meta": {"gomaxprocs": 8, "full": true, "workers": 4, "shards": 2, "grid_cells": 64, "time_buckets": 16},
		"reports": [
			{"ID": "P2", "Title": "scan", "Pass": true, "Metrics": {"ns_per_op": 123.5}}
		]
	}`)
	bf, hasMeta, err := readBench(current)
	if err != nil {
		t.Fatalf("current shape: %v", err)
	}
	if !hasMeta {
		t.Error("current shape: hasMeta = false, want true")
	}
	if bf.Meta.GoMaxProcs != 8 || bf.Meta.Shards != 2 || !bf.Meta.Full {
		t.Errorf("current shape: meta not preserved: %+v", bf.Meta)
	}
	if len(bf.Reports) != 1 || bf.Reports[0].ID != "P2" || bf.Reports[0].Metrics["ns_per_op"] != 123.5 {
		t.Errorf("current shape: reports not preserved: %+v", bf.Reports)
	}

	legacy := []byte(`[
		{"ID": "P2", "Title": "scan", "Pass": true, "Metrics": {"ns_per_op": 99.0}},
		{"ID": "P8", "Title": "grid", "Pass": true}
	]`)
	bf, hasMeta, err = readBench(legacy)
	if err != nil {
		t.Fatalf("legacy bare-array shape: %v", err)
	}
	if hasMeta {
		t.Error("legacy shape: hasMeta = true, want false (no config to drift-check)")
	}
	if (bf.Meta != benchMeta{}) {
		t.Errorf("legacy shape: meta should be zero, got %+v", bf.Meta)
	}
	if len(bf.Reports) != 2 || bf.Reports[0].Metrics["ns_per_op"] != 99.0 || bf.Reports[1].ID != "P8" {
		t.Errorf("legacy shape: reports not preserved: %+v", bf.Reports)
	}
}

// TestReadBenchRejectsGarbage pins the error path: neither shape
// parses, so the caller sees the JSON error rather than an empty
// baseline that silently compares nothing.
func TestReadBenchRejectsGarbage(t *testing.T) {
	for _, tc := range []string{
		`{"meta": {}}`,    // object shape but no reports array
		`{not json`,       // malformed
		`"just a string"`, // valid JSON, wrong type
	} {
		if _, _, err := readBench([]byte(tc)); err == nil {
			t.Errorf("readBench(%s) = nil error, want parse failure", tc)
		}
	}
}

// TestReadBenchEmptyLegacyArray pins the boundary between the two
// shapes: an empty bare array is a valid (if useless) legacy baseline,
// not an error, and must not be mistaken for the meta'd shape.
func TestReadBenchEmptyLegacyArray(t *testing.T) {
	bf, hasMeta, err := readBench([]byte(`[]`))
	if err != nil {
		t.Fatalf("empty legacy array: %v", err)
	}
	if hasMeta {
		t.Error("empty legacy array: hasMeta = true, want false")
	}
	if len(bf.Reports) != 0 {
		t.Errorf("empty legacy array: %d reports, want 0", len(bf.Reports))
	}
	// Round-trip sanity: what mobench writes today, readBench reads.
	out, err := json.Marshal(benchFile{Meta: benchMeta{Workers: 3}, Reports: bf.Reports})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := readBench(out); err != nil {
		t.Fatalf("round-trip of written shape: %v", err)
	}
}
