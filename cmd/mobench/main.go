// Command mobench regenerates every experiment indexed in DESIGN.md
// and recorded in EXPERIMENTS.md: the paper-artifact reproductions
// E1–E6 (Table 1, Figure 1, Figure 2, Remark 1, the Section-4 example
// queries, the Section-5 Piet-QL pipeline) and the performance
// studies P1–P13.
//
// Usage:
//
//	mobench               # run everything
//	mobench -exp E4       # run one experiment
//	mobench -exp P2,P9    # run several experiments
//	mobench -list         # list experiment ids
//	mobench -full         # larger sweeps for the P-experiments
//	mobench -workers 8    # cap of the P9 worker-count sweep
//	mobench -shards 8     # cap of the P12 shard-count sweep (0 = up to GOMAXPROCS)
//	mobench -grid-cells 32  # force the grid size in P10/P13's accelerated phases
//	mobench -time-buckets 64  # force the per-cell time-bucket count (P10/P13)
//	mobench -json out.json  # also write the reports as JSON ({meta, reports})
//	mobench -baseline BENCH_PR2.json  # print metric deltas vs a prior run;
//	                      # fail if any ns_per_op metric regresses >2x
//	mobench -metrics      # dump engine metrics (Prometheus text) on exit
//	mobench -telemetry-addr localhost:6060  # serve /metrics, /debug/stats, ... during the run
//	mobench -stats stats.json  # write the per-op query-stats table (JSON) on exit
//	mobench -timeout 30s -max-rows 50000000  # bound each engine query
//	mobench -cpuprofile cpu.out -exp P2
//	mobench -memprofile mem.out -trace trace.out
//
// A missing or malformed -baseline file is not fatal: mobench warns
// on stderr, skips the delta table, and exits by the run's own result.
//
// Exit codes: 0 success, 1 experiment failure, 2 setup/regression
// error, 4 interrupted (SIGINT/SIGTERM cancelled the run).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"syscall"

	"mogis/internal/core"
	"mogis/internal/experiments"
	"mogis/internal/obs"
	"mogis/internal/telemetry"
	"mogis/internal/telemetry/telhttp"
)

func main() {
	exp := flag.String("exp", "", "run experiments by id, comma-separated (E1..E6, P1..P13, A1)")
	list := flag.Bool("list", false, "list experiment ids")
	full := flag.Bool("full", false, "run the performance studies at full size")
	workers := flag.Int("workers", 0, "largest worker count in the P9 fan-out sweep (0 = default {1,2,4})")
	shards := flag.Int("shards", 0, "largest shard count in the P12 scatter-gather sweep (0 = doubling up to GOMAXPROCS)")
	gridCells := flag.Int("grid-cells", 0, "grid size the grid experiments (P10, P13) use in their accelerated phases (0 = adaptive auto-sizing)")
	timeBuckets := flag.Int("time-buckets", 0, "per-cell time buckets for the grid experiments (0 = adaptive, <0 disables the temporal index)")
	jsonPath := flag.String("json", "", "write the reports (including Metrics) to this file as JSON")
	baseline := flag.String("baseline", "", "compare metrics against a prior -json file; exit nonzero if a ns_per_op metric regresses >2x")
	metrics := flag.Bool("metrics", false, "print engine metrics in Prometheus text format on exit")
	telemetryAddr := flag.String("telemetry-addr", "", "serve the telemetry HTTP pages (/metrics, /debug/stats, /debug/queries, /debug/traces/{id}) on this address during the run; empty disables")
	statsPath := flag.String("stats", "", "write the telemetry query-stats table to this file as JSON on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracefile := flag.String("trace", "", "write a runtime execution trace to this file")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock deadline applied to every engine call (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-query budget on scanned rows/samples for every engine call (0 = unlimited)")
	maxResults := flag.Int64("max-results", 0, "per-query budget on result items for every engine call (0 = unlimited)")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the running experiments through the
	// same context plumbing as -timeout (exit 4); a second signal
	// kills the process outright.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	baseCtx := sigCtx
	if *timeout > 0 || *maxRows > 0 || *maxResults > 0 {
		baseCtx = core.WithBudget(baseCtx, core.Budget{
			MaxRows:    *maxRows,
			MaxResults: *maxResults,
			Timeout:    *timeout,
		})
	}
	experiments.SetBaseContext(baseCtx)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	// Telemetry spans the whole run: every engine constructed by the
	// experiments reports to the process-wide collector.
	col, stopTelemetry, err := setupTelemetry(*telemetryAddr, *statsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobench: %v\n", err)
		os.Exit(2)
	}

	experiments.SetGridDefaults(*gridCells, *timeBuckets)
	meta := benchMeta{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Full:        *full,
		Workers:     *workers,
		Shards:      *shards,
		GridCells:   *gridCells,
		TimeBuckets: *timeBuckets,
	}

	// os.Exit skips defers, so the profile/metrics teardown lives in
	// run; main only translates its code.
	code := run(*exp, *full, *metrics, *workers, *shards, *jsonPath, *baseline, *cpuprofile, *memprofile, *tracefile, meta)
	if sigCtx.Err() != nil {
		// The run was interrupted; the documented cancellation code
		// wins over whatever partial results produced.
		code = 4
	}
	if *statsPath != "" {
		if err := writeStats(*statsPath, col); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: stats: %v\n", err)
			if code == 0 {
				code = 2
			}
		}
	}
	stopTelemetry()
	os.Exit(code)
}

// setupTelemetry installs the process-wide collector when either
// telemetry flag asks for it and optionally serves the HTTP pages.
func setupTelemetry(addr, statsPath string) (*telemetry.Collector, func(), error) {
	if addr == "" && statsPath == "" {
		return nil, func() {}, nil
	}
	col := telemetry.New(telemetry.Config{})
	telemetry.SetDefault(col)
	if addr == "" {
		return col, func() {}, nil
	}
	srv, err := telhttp.Serve(addr, col)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "mobench: telemetry listening on http://%s\n", srv.Addr)
	return col, func() { srv.Close() }, nil
}

// writeStats snapshots the per-op query-stats table (the same
// document /debug/stats serves) into a JSON file.
func writeStats(path string, col *telemetry.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteStatsJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// workerCounts expands the -workers cap into the doubling sweep P9
// runs: 1, 2, 4, ..., max. Zero keeps P9's default. The -shards cap
// expands identically for P12's shard sweep.
func workerCounts(max int) []int {
	if max <= 0 {
		return nil
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// runOne resolves one experiment id at the requested size.
func runOne(id string, full bool, workers, shards int) (experiments.Report, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	if full {
		switch id {
		case "P1":
			return experiments.P1([]int{4, 8, 16, 32}, 200), true
		case "P3":
			return experiments.P3([]int{100, 400, 1600, 6400}), true
		case "P4":
			return experiments.P4([]int{10000, 40000, 160000, 640000}, 200), true
		case "P5":
			return experiments.P5([]int{1000, 4000, 16000, 64000}), true
		case "P6":
			return experiments.P6([]int{10000, 40000, 160000, 640000}, 200), true
		case "P7":
			return experiments.P7([]int{100, 400, 1600}), true
		case "P8":
			return experiments.P8(2000), true
		case "P9":
			return experiments.P9(workerCounts(workers), 4000), true
		case "P10":
			return experiments.P10(4000), true
		case "P11":
			return experiments.P11(2000), true
		case "P12":
			return experiments.P12(workerCounts(shards), 4000), true
		case "P13":
			return experiments.P13(4000), true
		}
	}
	if id == "P9" {
		return experiments.P9(workerCounts(workers), 0), true
	}
	if id == "P12" && shards > 0 {
		return experiments.P12(workerCounts(shards), 0), true
	}
	return experiments.ByID(id)
}

func run(exp string, full, metrics bool, workers, shards int, jsonPath, baseline, cpuprofile, memprofile, tracefile string, meta benchMeta) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobench: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if tracefile != "" {
		f, err := os.Create(tracefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobench: trace: %v\n", err)
			return 2
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: trace: %v\n", err)
			return 2
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	defer func() {
		if memprofile != "" {
			writeHeapProfile(memprofile)
		}
		if metrics {
			obs.MetricsDump(os.Stdout)()
		}
	}()

	var reports []experiments.Report
	if exp != "" {
		for _, id := range strings.Split(exp, ",") {
			r, ok := runOne(id, full, workers, shards)
			if !ok {
				fmt.Fprintf(os.Stderr, "mobench: unknown experiment %q (try -list)\n", strings.TrimSpace(id))
				return 2
			}
			reports = append(reports, r)
		}
	} else if full {
		reports = []experiments.Report{
			experiments.E1(), experiments.E2(), experiments.E3(),
			experiments.E4(), experiments.E5(), experiments.E6(),
		}
		for _, id := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11", "P12", "P13"} {
			r, _ := runOne(id, true, workers, shards)
			reports = append(reports, r)
		}
	} else {
		reports = experiments.All()
	}
	failed := false
	for _, r := range reports {
		fmt.Println(r)
		if !r.Pass {
			failed = true
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, meta, reports); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: json: %v\n", err)
			return 2
		}
	}
	if baseline != "" {
		regressed, err := compareBaseline(os.Stdout, baseline, meta, reports)
		if err != nil {
			// A missing or unreadable baseline is a degraded run, not a
			// failed one: first runs on a fresh checkout have no prior
			// JSON, and CI caches can serve truncated files. Warn, skip
			// the delta table, and let the run's own result decide.
			fmt.Fprintf(os.Stderr, "mobench: warning: baseline %s unusable (%v); skipping comparison\n", baseline, err)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "mobench: FAIL: a tracked ns_per_op metric regressed more than 2x vs %s\n", baseline)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// benchMeta records the run configuration alongside the reports so a
// later -baseline comparison can tell apples from oranges: timings
// measured under different shard counts, grid sizes or time-bucket
// configs drift for configuration reasons, not performance ones.
type benchMeta struct {
	GoMaxProcs  int  `json:"gomaxprocs"`
	Full        bool `json:"full"`
	Workers     int  `json:"workers"`
	Shards      int  `json:"shards"`
	GridCells   int  `json:"grid_cells"`
	TimeBuckets int  `json:"time_buckets"`
}

// benchFile is the on-disk shape of a -json run: a meta header plus
// the reports. Older BENCH_*.json files are a bare report array;
// readBench accepts both.
type benchFile struct {
	Meta    benchMeta            `json:"meta"`
	Reports []experiments.Report `json:"reports"`
}

// readBench parses a benchmark JSON file in either shape. The hasMeta
// result reports whether the file carried a meta header (legacy bare
// arrays have no config to compare against).
func readBench(b []byte) (benchFile, bool, error) {
	var bf benchFile
	if err := json.Unmarshal(b, &bf); err == nil && bf.Reports != nil {
		return bf, true, nil
	}
	var old []experiments.Report
	if err := json.Unmarshal(b, &old); err != nil {
		return benchFile{}, false, err
	}
	return benchFile{Reports: old}, false, nil
}

// warnMetaDrift prints one warning per meta field that differs between
// the baseline run and this one. Drift never fails the run: the
// configs measured different setups, so the deltas are informational.
func warnMetaDrift(path string, old, cur benchMeta) {
	drift := func(field string, oldV, newV any) {
		if oldV != newV {
			fmt.Fprintf(os.Stderr,
				"mobench: warning: baseline %s ran with %s=%v, this run %s=%v; deltas reflect config drift too\n",
				path, field, oldV, field, newV)
		}
	}
	drift("gomaxprocs", old.GoMaxProcs, cur.GoMaxProcs)
	drift("full", old.Full, cur.Full)
	drift("workers", old.Workers, cur.Workers)
	drift("shards", old.Shards, cur.Shards)
	drift("grid-cells", old.GridCells, cur.GridCells)
	drift("time-buckets", old.TimeBuckets, cur.TimeBuckets)
}

// compareBaseline prints a per-metric delta table between a prior
// -json run and this one, matching metrics by (experiment id, metric
// key). Metrics present on only one side are skipped: they are new or
// retired, not regressions. When the baseline carries a meta header,
// every differing config field (shards, grid cells, time buckets, …)
// is warned about first. When an experiment recorded a "gomaxprocs"
// metric on both sides and the values differ, its timing and speedup
// deltas are shown but never flagged: the runs measured different
// parallel hardware, so a slowdown is expected, not a regression
// (mobench warns instead of failing). Returns true if any comparable
// metric whose name contains "ns_per_op" got more than 2x slower.
func compareBaseline(w *os.File, path string, meta benchMeta, reports []experiments.Report) (bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	bf, hasMeta, err := readBench(b)
	if err != nil {
		return false, err
	}
	if hasMeta {
		warnMetaDrift(path, bf.Meta, meta)
	}
	old := bf.Reports
	oldMets := make(map[string]map[string]float64, len(old))
	for _, r := range old {
		oldMets[r.ID] = r.Metrics
	}
	fmt.Fprintf(w, "=== baseline deltas vs %s (new/old; ns_per_op ratios > 2.00 fail)\n", path)
	regressed := false
	for _, r := range reports {
		prior := oldMets[r.ID]
		if len(prior) == 0 || len(r.Metrics) == 0 {
			continue
		}
		procsDiffer := false
		if oldProcs, ok := prior["gomaxprocs"]; ok {
			if newProcs, ok := r.Metrics["gomaxprocs"]; ok && oldProcs != newProcs {
				procsDiffer = true
				fmt.Fprintf(os.Stderr,
					"mobench: warning: %s baseline ran at GOMAXPROCS=%.0f, this run at %.0f; "+
						"speedup comparisons are informational only\n",
					r.ID, oldProcs, newProcs)
			}
		}
		var rows []experiments.Row
		for _, key := range sortedKeys(r.Metrics) {
			oldV, ok := prior[key]
			if !ok {
				continue
			}
			newV := r.Metrics[key]
			mark := ""
			ratio := "-"
			if oldV != 0 {
				q := newV / oldV
				ratio = fmt.Sprintf("%.2f", q)
				if strings.Contains(key, "ns_per_op") && q > 2.0 {
					if procsDiffer {
						mark = "  (gomaxprocs differs; not gated)"
					} else {
						mark = "  REGRESSED"
						regressed = true
					}
				}
			}
			rows = append(rows, experiments.Row{
				Label:  key,
				Values: []string{fmtMetric(oldV), fmtMetric(newV), ratio + mark},
			})
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "--- %s\n%s", r.ID, experiments.Table([]string{"metric", "old", "new", "ratio"}, rows))
	}
	return regressed, nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtMetric keeps counters integral and timings/ratios readable.
func fmtMetric(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func writeJSON(path string, meta benchMeta, reports []experiments.Report) error {
	b, err := json.MarshalIndent(benchFile{Meta: meta, Reports: reports}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "mobench: memprofile: %v\n", err)
	}
}
