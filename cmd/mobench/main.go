// Command mobench regenerates every experiment indexed in DESIGN.md
// and recorded in EXPERIMENTS.md: the paper-artifact reproductions
// E1–E6 (Table 1, Figure 1, Figure 2, Remark 1, the Section-4 example
// queries, the Section-5 Piet-QL pipeline) and the performance
// studies P1–P7.
//
// Usage:
//
//	mobench            # run everything
//	mobench -exp E4    # run one experiment
//	mobench -list      # list experiment ids
//	mobench -full      # larger sweeps for the P-experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"mogis/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (E1..E6, P1..P7)")
	list := flag.Bool("list", false, "list experiment ids")
	full := flag.Bool("full", false, "run the performance studies at full size")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *exp != "" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mobench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(r)
		if !r.Pass {
			os.Exit(1)
		}
		return
	}

	var reports []experiments.Report
	if *full {
		reports = []experiments.Report{
			experiments.E1(), experiments.E2(), experiments.E3(),
			experiments.E4(), experiments.E5(), experiments.E6(),
			experiments.P1([]int{4, 8, 16, 32}, 200),
			experiments.P2(),
			experiments.P3([]int{100, 400, 1600, 6400}),
			experiments.P4([]int{10000, 40000, 160000, 640000}, 200),
			experiments.P5([]int{1000, 4000, 16000, 64000}),
			experiments.P6([]int{10000, 40000, 160000, 640000}, 200),
			experiments.P7([]int{100, 400, 1600}),
		}
	} else {
		reports = experiments.All()
	}
	failed := false
	for _, r := range reports {
		fmt.Println(r)
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
