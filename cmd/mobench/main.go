// Command mobench regenerates every experiment indexed in DESIGN.md
// and recorded in EXPERIMENTS.md: the paper-artifact reproductions
// E1–E6 (Table 1, Figure 1, Figure 2, Remark 1, the Section-4 example
// queries, the Section-5 Piet-QL pipeline) and the performance
// studies P1–P8.
//
// Usage:
//
//	mobench            # run everything
//	mobench -exp E4    # run one experiment
//	mobench -list      # list experiment ids
//	mobench -full      # larger sweeps for the P-experiments
//	mobench -metrics   # dump engine metrics (Prometheus text) on exit
//	mobench -cpuprofile cpu.out -exp P2
//	mobench -memprofile mem.out -trace trace.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"mogis/internal/experiments"
	"mogis/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (E1..E6, P1..P8)")
	list := flag.Bool("list", false, "list experiment ids")
	full := flag.Bool("full", false, "run the performance studies at full size")
	metrics := flag.Bool("metrics", false, "print engine metrics in Prometheus text format on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracefile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	// os.Exit skips defers, so the profile/metrics teardown lives in
	// run; main only translates its code.
	os.Exit(run(*exp, *full, *metrics, *cpuprofile, *memprofile, *tracefile))
}

func run(exp string, full, metrics bool, cpuprofile, memprofile, tracefile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobench: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if tracefile != "" {
		f, err := os.Create(tracefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobench: trace: %v\n", err)
			return 2
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "mobench: trace: %v\n", err)
			return 2
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	defer func() {
		if memprofile != "" {
			writeHeapProfile(memprofile)
		}
		if metrics {
			obs.Default.WritePrometheus(os.Stdout)
		}
	}()

	if exp != "" {
		r, ok := experiments.ByID(exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mobench: unknown experiment %q (try -list)\n", exp)
			return 2
		}
		fmt.Print(r)
		if !r.Pass {
			return 1
		}
		return 0
	}

	var reports []experiments.Report
	if full {
		reports = []experiments.Report{
			experiments.E1(), experiments.E2(), experiments.E3(),
			experiments.E4(), experiments.E5(), experiments.E6(),
			experiments.P1([]int{4, 8, 16, 32}, 200),
			experiments.P2(),
			experiments.P3([]int{100, 400, 1600, 6400}),
			experiments.P4([]int{10000, 40000, 160000, 640000}, 200),
			experiments.P5([]int{1000, 4000, 16000, 64000}),
			experiments.P6([]int{10000, 40000, 160000, 640000}, 200),
			experiments.P7([]int{100, 400, 1600}),
			experiments.P8(2000),
		}
	} else {
		reports = experiments.All()
	}
	failed := false
	for _, r := range reports {
		fmt.Println(r)
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "mobench: memprofile: %v\n", err)
	}
}
