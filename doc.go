// Package mogis is a Go implementation of the moving-objects
// GIS-OLAP data model of Kuijpers & Vaisman, "A Data Model for Moving
// Objects Supporting Aggregation" (ICDE 2007): GIS dimensions over
// thematic layers, OLAP dimensions with a first-class Time dimension,
// moving-object fact tables, trajectory interpolation, first-order
// spatio-temporal region queries with aggregation, the Piet-QL query
// language, and the precomputed-overlay evaluation strategy.
//
// The implementation lives in the internal packages (see DESIGN.md
// for the map); the binaries under cmd/ and the programs under
// examples/ are the entry points:
//
//	cmd/moviz    — render Figure 1 and print the Figure-2 schema
//	cmd/mobench  — regenerate every experiment in EXPERIMENTS.md
//	cmd/pietql   — run Piet-QL queries (REPL or one-shot)
//	cmd/mogen    — generate synthetic cities and trajectories
package mogis

// Version is the library version.
const Version = "1.0.0"
