// Flows: aggregation of trajectories themselves (the Meratnia & de By
// direction the paper discusses in Section 2, and the motivation for
// queries like "number of cars that travelled from Antwerp to
// Brussels"): a unit-grid pass-count surface, a neighborhood-level
// origin–destination flow matrix, aggregated representative
// trajectories, and SED compression with its effect on the surface.
//
// Run with: go run ./examples/flows
package main

import (
	"context"

	"fmt"
	"log"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/traj"
	"mogis/internal/trajagg"
	"mogis/internal/workload"
)

func main() {
	city := workload.GenCity(workload.CityConfig{Seed: 13, Cols: 4, Rows: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 13, Objects: 120, Samples: 90, Step: 60, Speed: 2.5,
	})
	_, eng := city.Context(fm)
	lits, err := eng.Trajectories(context.Background(), "FM")
	if err != nil {
		log.Fatal(err)
	}

	// --- Pass-count surface ------------------------------------------
	g, err := trajagg.NewUnitGrid(city.Extent, 24, 24)
	if err != nil {
		log.Fatal(err)
	}
	surface := trajagg.BuildSurface(g, lits)
	u, c := surface.Max()
	fmt.Printf("pass-count surface (%d units, %d objects):\n%s", g.Units(), len(lits), surface.Render())
	fmt.Printf("hottest unit: %d with %d distinct objects\n\n", u, c)

	// --- Origin–destination flows between neighborhoods ---------------
	zoneOf := func(p geom.Point) string {
		ids := city.Ln.PolygonsContaining(p)
		if len(ids) == 0 {
			return ""
		}
		name, _ := city.Ln.AlphaInverse("neighb", ids[0])
		return name
	}
	flows := trajagg.BuildFlows(lits, g, zoneOf)
	fmt.Println("top neighborhood-to-neighborhood flows:")
	for _, f := range flows.TopFlows(8) {
		fmt.Println("  " + f)
	}
	fmt.Println()

	// --- Aggregated trajectories ----------------------------------------
	aggs := trajagg.Aggregate(g, lits)
	fmt.Printf("aggregated paths: %d distinct unit sequences from %d trajectories\n", len(aggs), len(lits))
	if len(aggs) > 0 {
		fmt.Printf("strongest aggregate: support %d, %d units, length %.0f\n\n",
			aggs[0].Support, len(aggs[0].Path), aggs[0].Line.Length())
	}

	// --- SED compression --------------------------------------------------
	eps := city.Extent.Width() / 24 / 16
	var before, after int
	litsC := make(map[moft.Oid]*traj.LIT, len(lits))
	for oid, l := range lits {
		s := l.Sample()
		comp := traj.Compress(s, eps)
		before += len(s)
		after += len(comp)
		litsC[oid] = traj.MustLIT(comp)
	}
	surfaceC := trajagg.BuildSurface(g, litsC)
	var l1, total int
	for i := range surface.Counts {
		d := surface.Counts[i] - surfaceC.Counts[i]
		if d < 0 {
			d = -d
		}
		l1 += d
		total += surface.Counts[i]
	}
	fmt.Printf("SED compression (ε=%.2f): %d → %d sample points (%.1f%%)\n",
		eps, before, after, 100*float64(after)/float64(before))
	fmt.Printf("pass-count surface L1 change after compression: %.2f%%\n",
		100*float64(l1)/float64(total))
	fmt.Println("(the unit-grid aggregation is insensitive to the sampling change, as claimed)")
}
