// Citytraffic: traffic analysis over a synthetic city — the workload
// the paper's introduction motivates ("truck fleet behavior analysis
// or commuter traffic in a city"). It generates a 8×8-neighborhood
// city with 200 vehicles, then runs:
//
//   - per-hour counts of vehicles in low-income neighborhoods (the
//     motivating query at scale),
//   - the three interpretations of Section 4's Q2 (street density),
//   - the Section-5 Piet-QL pipeline with a precomputed overlay.
//
// Run with: go run ./examples/citytraffic
package main

import (
	"context"

	"fmt"
	"log"

	"mogis/internal/fo"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

func main() {
	city := workload.GenCity(workload.CityConfig{Seed: 42, Cols: 8, Rows: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 42, Objects: 200, Samples: 120, Step: 60, Speed: 2,
	})
	_, eng := city.Context(fm)
	fmt.Printf("city: %d neighborhoods (%d low-income), %d vehicles, %d samples\n\n",
		city.Ln.Count(layer.KindPolygon), len(city.LowIncomeIDs), len(fm.Objects()), fm.Len())

	// --- Vehicles per hour in low-income neighborhoods --------------
	f := fo.And(
		fo.Exists([]fo.Var{"x", "y", "pg", "nb"}, fo.And(
			&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
			&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
			&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
			&fo.AttrCmp{Concept: "neighb", M: fo.V("nb"), Attr: "income", Op: fo.LT, Rhs: fo.CReal(1500)},
		)),
		&fo.TimeRollup{Cat: timedim.CatHour, T: fo.V("t"), V: fo.V("h")},
	)
	res, err := eng.AggregateRegion(context.Background(), f, []fo.Var{"o", "t", "h"}, olap.Count, "", []fo.Var{"h"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vehicle samples in low-income neighborhoods, by hour:")
	fmt.Print(res)
	fmt.Println()

	// --- Q2, interpretation (c): busiest moment city-wide -----------
	// Total vehicles sampled per instant divided by total street
	// length; report the peak instant.
	streetLen := 0.0
	for _, id := range city.Lh.IDs(layer.KindPolyline) {
		pl, _ := city.Lh.Polyline(id)
		streetLen += pl.Length()
	}
	rel, err := eng.RegionC(context.Background(), &fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		[]fo.Var{"o", "t"})
	if err != nil {
		log.Fatal(err)
	}
	perInstant, err := rel.GroupAggregate(olap.Count, "", []fo.Var{"t"})
	if err != nil {
		log.Fatal(err)
	}
	peak, peakN := "", 0.0
	for _, row := range perInstant.Rows {
		if row.Value > peakN {
			peak, peakN = string(row.Group[0]), row.Value
		}
	}
	fmt.Printf("Q2(c): peak of %g vehicles at instant %s → %.5f vehicles per street-unit\n\n",
		peakN, peak, peakN/streetLen)

	// --- Piet-QL with precomputed overlay ----------------------------
	ov, err := overlay.Precompute(context.Background(), city.Layers(), []overlay.Pair{
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, engine := city.Context(fm)
	sys := &pietql.System{
		Ctx: ctx, Engine: engine, Overlay: ov, SchemaName: "PietSchema",
		Kinds: map[string]layer.Kind{
			"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
			"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
		},
		Cubes: mdx.Catalog{},
	}
	out, err := sys.Run(context.Background(), `
		SELECT layer.Lr, layer.Ln, layer.Lstores;
		FROM PietSchema;
		WHERE intersection(layer.Lr, layer.Ln, subplevel.Linestring)
		AND (layer.Ln)
		CONTAINS (layer.Ln, layer.Lstores, subplevel.Point);
		| | MOVING COUNT(*) FROM FM WHERE PASSES THROUGH layer.Ln`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Piet-QL: vehicles passing through river-crossed, store-containing neighborhoods:")
	fmt.Print(pietql.FormatOutcome(out))
}
