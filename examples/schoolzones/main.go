// Schoolzones: proximity analytics in the style of the paper's Q6
// ("number of cars per hour within a radius of 100m from schools, in
// the morning") and Q7. It demonstrates the difference between
// sample-only and interpolation-aware answers the paper discusses —
// an object that was never *sampled* near a school may still have
// *passed* within the radius — and the Hornsby–Egenhofer lifeline
// beads as an uncertainty-aware upper bound.
//
// Run with: go run ./examples/schoolzones
package main

import (
	"context"

	"fmt"
	"log"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/timedim"
	"mogis/internal/traj"
	"mogis/internal/workload"
)

func main() {
	city := workload.GenCity(workload.CityConfig{Seed: 9, Cols: 6, Rows: 6, Schools: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 9, Objects: 150, Samples: 60, Step: 120, Speed: 2.5,
	})
	_, eng := city.Context(fm)
	lo, hi, _ := fm.TimeSpan()
	window := timedim.Interval{Lo: lo, Hi: hi}
	const radius = 40.0

	lits, err := eng.Trajectories(context.Background(), "FM")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d vehicles, %d schools, radius %.0f units\n\n",
		len(lits), city.Ls.Count(layer.KindNode), radius)
	fmt.Println("school   sample-only  interpolated  missed  bead-upper-bound")

	var totalSampled, totalInterp, totalBead int
	var busiest layer.Gid
	busiestN := -1
	for _, sid := range city.Ls.IDs(layer.KindNode) {
		school, _ := city.Ls.Node(sid)

		// Sample-only: an object counts if some raw sample is within
		// the radius (the paper's first Q6 formulation).
		sampleOnly := map[moft.Oid]bool{}
		fm.Scan(func(tp moft.Tuple) bool {
			if tp.Point().Dist(school) <= radius {
				sampleOnly[tp.Oid] = true
			}
			return true
		})

		// Interpolated: solve the quadratic distance constraint along
		// each leg (the paper's second Q6 formulation).
		interp, err := eng.ObjectsEverWithinRadius(context.Background(), "FM", school, radius, window)
		if err != nil {
			log.Fatal(err)
		}

		// Lifeline beads: objects that *could* have come within the
		// radius at a maximum speed 1.5x their observed maximum.
		beadCount := 0
		for _, l := range lits {
			if couldReach(l, school, radius) {
				beadCount++
			}
		}

		fmt.Printf("S%-7d %-12d %-13d %-7d %d\n",
			sid, len(sampleOnly), len(interp), len(interp)-len(sampleOnly), beadCount)
		totalSampled += len(sampleOnly)
		totalInterp += len(interp)
		totalBead += beadCount
		if len(interp) > busiestN {
			busiestN, busiest = len(interp), sid
		}
	}
	fmt.Printf("\ntotals: sample-only %d, interpolated %d, bead upper bound %d\n",
		totalSampled, totalInterp, totalBead)
	fmt.Println("(interpolated ≥ sample-only: objects can pass near a school between samples;")
	fmt.Println(" beads ≥ interpolated: speed uncertainty admits even more candidates)")

	// Time spent near the busiest school, per object (Q7 flavor).
	school, _ := city.Ls.Node(busiest)
	within, err := eng.ObjectsEverWithinRadius(context.Background(), "FM", school, radius, window)
	if err != nil {
		log.Fatal(err)
	}
	type entry struct {
		oid moft.Oid
		d   float64
	}
	entries := make([]entry, 0, len(within))
	for oid, d := range within {
		entries = append(entries, entry{oid, d})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].d != entries[j].d {
			return entries[i].d > entries[j].d
		}
		return entries[i].oid < entries[j].oid
	})
	fmt.Printf("\ntop 5 dwellers near school S%d (interpolated seconds within %.0f units):\n", busiest, radius)
	for i, e := range entries {
		if i >= 5 {
			break
		}
		fmt.Printf("  O%d: %.0f s\n", e.oid, e.d)
	}
}

// couldReach reports whether the object could possibly have come
// within the radius of target under the lifeline-bead model: some
// bead's projection ellipse, expanded by the radius, admits the
// target. Expansion by r is tested via the defining sum-of-distances
// inequality |p-f1| + |p-f2| ≤ 2a + 2r, a conservative bound.
func couldReach(l *traj.LIT, target geom.Point, radius float64) bool {
	vmax := l.MaxSpeed() * 1.5
	if vmax == 0 {
		// A stationary object: plain distance check.
		p, ok := l.At(float64(l.TimeDomain().Lo))
		return ok && p.Dist(target) <= radius
	}
	for _, b := range traj.Beads(l, vmax) {
		if b.ProjectionContains(target) {
			return true
		}
		major, _ := b.SemiAxes()
		if target.Dist(b.P1)+target.Dist(b.P2) <= 2*major+2*radius {
			return true
		}
	}
	return false
}
