// Quickstart: build the paper's running example and evaluate the
// motivating query of Section 1.2 — "number of buses per hour in the
// morning in the Antwerp neighborhoods with a monthly income of less
// than 1500 euro" — reproducing Remark 1's answer of 4/3.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"

	"mogis/internal/fo"
	"mogis/internal/scenario"
)

func main() {
	// The scenario packages Figure 1 (the city and the six buses),
	// Figure 2 (the GIS dimension schema) and Table 1 (the MOFT).
	s := scenario.New()

	fmt.Println("=== Table 1: the moving-object fact table ===")
	fmt.Println(s.FMbus)

	fmt.Println("=== Figure 2: the GIS dimension schema ===")
	fmt.Print(s.GIS.Schema().Describe())
	fmt.Println()

	// The motivating query's region C is a first-order formula over
	// the MOFT, the geometric rollup r^{Pt,Pg}_Ln, the attribute
	// function α^{neighb,Pg}_Ln, the Time-dimension rollup
	// R^timeOfDay_timeId, and the income attribute (Section 3.1).
	formula := s.MotivatingFormula()
	rel, err := s.Engine.RegionC(context.Background(), formula, []fo.Var{"o", "t"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Region C: (Oid, t) pairs satisfying the condition ===")
	fmt.Print(rel)
	fmt.Println()

	// The aggregation divides |C| by the morning time span (3 hours).
	rate, err := s.MotivatingResult()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buses per hour in the morning in low-income neighborhoods: %.4f\n", rate)
	fmt.Println("(Remark 1 of the paper: 4/3 = 1.3333 — O1 contributes three times, O2 once)")
}
