// Fleetolap: the warehousing side of the model — GIS fact tables
// (Definition 3) holding measures at the polygon level, classical
// fact tables in the application part, rollup aggregation along the
// geometric dimension (neighborhood → city) and along the Time
// dimension, geometric aggregation of a density (Definition 4) with
// its summable rewriting, and an MDX query over the resulting cube.
//
// Run with: go run ./examples/fleetolap
package main

import (
	"context"

	"fmt"
	"log"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/olap"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

func main() {
	city := workload.GenCity(workload.CityConfig{Seed: 77, Cols: 4, Rows: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 77, Objects: 80, Samples: 90, Step: 60, Speed: 2,
	})
	_, eng := city.Context(fm)

	// --- A GIS fact table at the polygon level (Definition 3) -------
	gft := gis.NewFactTable(gis.FactSchema{
		Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"},
	})
	for _, m := range city.Neighborhoods.Members("neighborhood") {
		v, _ := city.Neighborhoods.Attr("neighborhood", m, "population")
		p, _ := v.Num()
		_, id, _ := city.Ln.Alpha("neighb", string(m))
		gft.MustSet(id, p)
	}

	// Summable rewriting: population of the low-income region is a
	// plain sum over geometry ids — no integration (Section 5).
	lowPop, err := eng.SummableOverIDs(context.Background(), city.LowIncomeIDs, gft, "population")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population of low-income neighborhoods (summable Σ h'(g)): %.0f\n", lowPop)

	// The same number via Definition 4's integral of a uniform density
	// over each polygon.
	var integrated float64
	for _, id := range city.LowIncomeIDs {
		pg, _ := city.Ln.Polygon(id)
		pop, _ := gft.Measure(id, "population")
		v, err := eng.GeometricAggregate(context.Background(), gis.Aggregation{
			C: gis.Region{Polygons: []geom.Polygon{pg}},
			H: gis.ConstDensity(pop / pg.Area()),
		})
		if err != nil {
			log.Fatal(err)
		}
		integrated += v
	}
	fmt.Printf("same via Definition-4 integration of the density:        %.0f\n\n", integrated)

	// --- A classical fact table from the MOFT ------------------------
	// Fact rows: (neighborhood, hour) → sample count; built by rolling
	// every MOFT tuple through the geometric and Time dimensions.
	ft := olap.NewFactTable(olap.FactSchema{
		Dims: []olap.DimCol{
			{Name: "place", Dimension: city.Neighborhoods, Level: "neighborhood"},
			{Name: "hour", Level: "hour"},
		},
		Measures: []string{"samples"},
	})
	rel, err := eng.RegionC(context.Background(), fo.Exists([]fo.Var{"x", "y", "pg"}, fo.And(
		&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
		&fo.TimeRollup{Cat: timedim.CatHour, T: fo.V("t"), V: fo.V("h")},
	)), []fo.Var{"o", "t", "nb", "h"})
	if err != nil {
		log.Fatal(err)
	}
	counts, err := rel.GroupAggregate(olap.Count, "", []fo.Var{"nb", "h"})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range counts.Rows {
		ft.MustAdd([]olap.Member{row.Group[0], row.Group[1]}, []float64{row.Value})
	}
	fmt.Printf("fact table: %d (neighborhood, hour) cells from %d MOFT tuples\n\n", ft.Len(), fm.Len())

	// --- Rollup along the geometric dimension -------------------------
	byCity, err := ft.RollupAggregate(olap.Sum, "samples", []olap.GroupSpec{
		{DimName: "place", ToLevel: "city"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("samples rolled up neighborhood → city:")
	fmt.Print(byCity)
	fmt.Println()

	// --- Slice + per-hour drilldown -----------------------------------
	byHour, err := ft.Gamma(olap.Sum, "samples", []string{"hour"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("samples per hour (Time dimension):")
	fmt.Print(byHour)
	fmt.Println()

	// --- MDX over the cube ---------------------------------------------
	cat := mdx.Catalog{"Fleet": &mdx.Cube{Name: "Fleet", Fact: ft}}
	res, err := mdx.Run(cat, `
		SELECT {[Measures].[samples]} ON COLUMNS,
		       {[place].[neighborhood].Members} ON ROWS
		FROM [Fleet]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MDX: samples per neighborhood:")
	fmt.Print(res)
}
