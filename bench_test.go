package mogis

// Root benchmark harness: one benchmark per experiment table of
// EXPERIMENTS.md (P1–P6 plus the paper-artifact query E4 and the γ operator), so that
// `go test -bench=.` regenerates every measured series. The
// cmd/mobench binary prints the same tables with labels.

import (
	"context"

	"testing"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/scenario"
	"mogis/internal/sindex"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// BenchmarkE4MotivatingQuery measures the Remark-1 query end to end
// on the paper instance.
func BenchmarkE4MotivatingQuery(b *testing.B) {
	s := scenario.New()
	f := s.MotivatingFormula()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := s.Engine.RegionC(context.Background(), f, []fo.Var{"o", "t"})
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 4 {
			b.Fatalf("|C| = %d", rel.Len())
		}
	}
}

// BenchmarkP1Overlay measures overlay lookups vs naive geometric
// evaluation of "neighborhoods crossed by the river" (Section 5).
func BenchmarkP1Overlay(b *testing.B) {
	for _, g := range []int{8, 16, 32} {
		city := workload.GenCity(workload.CityConfig{Seed: 1, Cols: g, Rows: g})
		layers := city.Layers()
		refN := overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}
		refR := overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}
		ov, err := overlay.Precompute(context.Background(), layers, []overlay.Pair{{A: refR, B: refN}})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName("overlay", g*g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := ov.Intersecting(refR, 1, refN); len(got) == 0 {
					b.Fatal("no results")
				}
			}
		})
		b.Run(sizeName("naive", g*g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := overlay.IntersectingNaive(layers, refR, 1, refN)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkP2Summable measures the summable rewriting against numeric
// integration (Definition 4).
func BenchmarkP2Summable(b *testing.B) {
	city := workload.GenCity(workload.CityConfig{Seed: 2, Cols: 8, Rows: 8})
	density := make(map[layer.Gid]float64)
	pop := make(map[layer.Gid]float64)
	for _, m := range city.Neighborhoods.Members("neighborhood") {
		v, _ := city.Neighborhoods.Attr("neighborhood", m, "population")
		p, _ := v.Num()
		_, id, _ := city.Ln.Alpha("neighb", string(m))
		pg, _ := city.Ln.Polygon(id)
		pop[id] = p
		density[id] = p / pg.Area()
	}
	b.Run("summable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for _, id := range city.LowIncomeIDs {
				sum += pop[id]
			}
			if sum <= 0 {
				b.Fatal("no population")
			}
		}
	})
	for _, subdiv := range []int{0, 3} {
		b.Run(sizeName("integrate-subdiv", subdiv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sum float64
				for _, id := range city.LowIncomeIDs {
					pg, _ := city.Ln.Polygon(id)
					v, err := gis.IntegratePolygon(gis.ConstDensity(density[id]), pg, subdiv)
					if err != nil {
						b.Fatal(err)
					}
					sum += v
				}
			}
		})
	}
}

// BenchmarkP3Interpolation measures interpolated versus sample-only
// passes-through queries.
func BenchmarkP3Interpolation(b *testing.B) {
	city := workload.GenCity(workload.CityConfig{Seed: 3, Cols: 8, Rows: 8})
	target, _ := city.Ln.Polygon(city.LowIncomeIDs[0])
	for _, n := range []int{100, 400} {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 3, Objects: n, Samples: 30, Step: 120, Speed: 3,
		})
		_, eng := city.Context(fm)
		lo, hi, _ := fm.TimeSpan()
		window := timedim.Interval{Lo: lo, Hi: hi}
		// Warm the trajectory cache so both variants measure query
		// work.
		if _, err := eng.Trajectories(context.Background(), "FM"); err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName("sampled", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ObjectsSampledInside(context.Background(), "FM", target, window); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("interpolated", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ObjectsPassingThrough(context.Background(), "FM", target, window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP4AggIndex measures the aggregate spatio-temporal index
// against linear scans for region×interval counts.
func BenchmarkP4AggIndex(b *testing.B) {
	city := workload.GenCity(workload.CityConfig{Seed: 4, Cols: 8, Rows: 8})
	for _, n := range []int{10000, 80000} {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 4, Objects: n / 100, Samples: 100, Step: 60, Speed: 3,
		})
		samples := make([]sindex.SamplePoint, 0, fm.Len())
		for _, tp := range fm.Tuples() {
			samples = append(samples, sindex.SamplePoint{P: tp.Point(), T: int64(tp.T)})
		}
		idx := sindex.BuildAggQuadTree(samples, sindex.AggConfig{})
		lo, hi, _ := fm.TimeSpan()
		box := geom.BBox{
			MinX: city.Extent.MinX + 100, MinY: city.Extent.MinY + 100,
			MaxX: city.Extent.MinX + 400, MaxY: city.Extent.MinY + 400,
		}
		t0, t1 := int64(lo), int64(lo)+(int64(hi)-int64(lo))/3
		b.Run(sizeName("index", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.CountInRange(box, t0, t1)
			}
		})
		b.Run(sizeName("scan", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sindex.CountNaive(samples, box, t0, t1)
			}
		})
	}
}

// BenchmarkP5RegionC measures first-order region-C evaluation over
// growing MOFTs.
func BenchmarkP5RegionC(b *testing.B) {
	city := workload.GenCity(workload.CityConfig{Seed: 5, Cols: 8, Rows: 8})
	for _, n := range []int{1000, 4000} {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 5, Objects: n / 50, Samples: 50, Step: 300, Speed: 3,
		})
		_, eng := city.Context(fm)
		f := fo.Exists([]fo.Var{"x", "y", "pg", "nb"}, fo.And(
			&fo.MemberOf{Concept: "neighb", M: fo.V("nb")},
			&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
			&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
			&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
			&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
			&fo.AttrCmp{Concept: "neighb", M: fo.V("nb"), Attr: "income", Op: fo.LT, Rhs: fo.CReal(1500)},
		))
		b.Run(sizeName("samples", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.RegionC(context.Background(), f, []fo.Var{"o", "t"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGammaAggregation measures the γ operator of Definition 7
// over a synthetic region-C relation.
func BenchmarkGammaAggregation(b *testing.B) {
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "hour", Level: "hour"}},
		Measures: []string{"v"},
	})
	for i := 0; i < 10000; i++ {
		ft.MustAdd([]olap.Member{olap.Member(rune('A' + i%24))}, []float64{float64(i % 97)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.Gamma(olap.Avg, "v", []string{"hour"}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkP6Distinct measures distinct-object counting via the
// (x, y, t) octree against a scan.
func BenchmarkP6Distinct(b *testing.B) {
	city := workload.GenCity(workload.CityConfig{Seed: 6, Cols: 8, Rows: 8})
	for _, n := range []int{10000, 80000} {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 6, Objects: n / 100, Samples: 100, Step: 60, Speed: 3,
		})
		samples := make([]sindex.OidSamplePoint, 0, fm.Len())
		for _, tp := range fm.Tuples() {
			samples = append(samples, sindex.OidSamplePoint{P: tp.Point(), T: int64(tp.T), Oid: int64(tp.Oid)})
		}
		idx := sindex.BuildDistinctIndex(samples, 64)
		lo, hi, _ := fm.TimeSpan()
		box := geom.BBox{
			MinX: city.Extent.MinX + 100, MinY: city.Extent.MinY + 100,
			MaxX: city.Extent.MinX + 400, MaxY: city.Extent.MinY + 400,
		}
		t0, t1 := int64(lo), int64(lo)+(int64(hi)-int64(lo))/3
		b.Run(sizeName("index", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.CountDistinct(box, t0, t1)
			}
		})
		b.Run(sizeName("scan", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sindex.CountDistinctNaive(samples, box, t0, t1)
			}
		})
	}
}
