#!/usr/bin/env bash
# End-to-end smoke test for mogisd: start the daemon on an ephemeral
# port, run a query (good and bad), ingest a geofence-crossing batch
# while an SSE subscriber watches, scrape the telemetry surface, then
# SIGTERM and assert a clean drain with no subscribers left behind.
#
# Needs: go, curl. Used by `make serve-smoke` and the serve CI job.
set -eu

tmp="$(mktemp -d)"
log="$tmp/mogisd.log"
events="$tmp/events.txt"
pid=""

fail() {
	echo "SMOKE FAIL: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$log" >&2 || true
	exit 1
}

cleanup() {
	if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
		kill -KILL "$pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "smoke: building mogisd"
go build -o "$tmp/mogisd" ./cmd/mogisd

echo "smoke: starting daemon"
"$tmp/mogisd" -addr 127.0.0.1:0 -heartbeat 1s 2>"$log" &
pid=$!

# The daemon prints "serving table FMbus on http://<addr>" once up.
base=""
for _ in $(seq 1 100); do
	base="$(sed -n 's#.*serving table .* on http://\([^ ]*\).*#\1#p' "$log" | head -1)"
	[ -n "$base" ] && break
	kill -0 "$pid" 2>/dev/null || fail "daemon died during startup"
	sleep 0.1
done
[ -n "$base" ] && base="http://$base" || fail "daemon never reported its address"
echo "smoke: daemon at $base"

# 1. A geo query succeeds and lists the neighborhood layer.
out="$(curl -sf "$base/query" -d 'SELECT layer.Ln; FROM PietSchema;')" \
	|| fail "query request failed"
echo "$out" | grep -q '"geo_ids"' || fail "query response missing geo_ids: $out"

# 2. A parse error is a typed 400, not a 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/query" -d 'SELECT nonsense')"
[ "$code" = "400" ] || fail "parse error returned $code, want 400"

# 3. Geofence stream: subscribe, then bounce an object in and out of a
# neighborhood; the subscriber must see enter and leave.
curl -sN --max-time 10 "$base/events?max_events=2" >"$events" &
sse=$!
sleep 0.3
curl -sf "$base/ingest?table=FMbus" --data-binary $'9901,10,0.5,0.5\n' >/dev/null \
	|| fail "ingest (enter) failed"
curl -sf "$base/ingest?table=FMbus" --data-binary $'9901,20,-50.0,-50.0\n' >/dev/null \
	|| fail "ingest (leave) failed"
wait "$sse" || fail "event stream ended badly"
grep -q 'event: enter' "$events" || fail "no enter event: $(cat "$events")"
grep -q 'event: leave' "$events" || fail "no leave event: $(cat "$events")"

# 4. The telemetry surface serves from the same mux.
curl -sf "$base/metrics" | grep -q 'mogis_server_requests_total' \
	|| fail "/metrics missing server counters"
curl -sf "$base/debug/stats" | grep -q '"goroutines"' \
	|| fail "/debug/stats missing runtime view"

# 5. The subscriber is gone again before we drain.
for _ in $(seq 1 50); do
	subs="$(curl -sf "$base/healthz" | sed -n 's/.*"subscribers": *\([0-9]*\).*/\1/p')"
	[ "$subs" = "0" ] && break
	sleep 0.1
done
[ "$subs" = "0" ] || fail "subscriber still attached before drain: $subs"

# 6. Graceful stop: SIGTERM must exit 0 and report a clean shutdown.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" = "0" ] || fail "daemon exited $rc on SIGTERM, want 0"
grep -q 'clean shutdown' "$log" || fail "daemon never reported a clean shutdown"

echo "smoke: OK"
