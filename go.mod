module mogis

go 1.22
