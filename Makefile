# mogis — standard workflows.

GO ?= go

.PHONY: all check build test race cover bench experiments experiments-full fmt vet clean

all: check

# The full pre-merge gate: compile, lint, tests, race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/mobench

experiments-full:
	$(GO) run ./cmd/mobench -full

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
