# mogis — standard workflows.

GO ?= go

.PHONY: all check build test race race-engine cover bench microbench experiments experiments-full fmt vet clean

all: check

# The full pre-merge gate: compile, lint, tests, race detector, and
# the repeated concurrent-engine stress pass.
check: build vet test race race-engine

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The core engine package, twice, under the race detector: the
# concurrent stress tests plus the grid/columnar cache paths with
# interleaved invalidations.
race-engine:
	$(GO) test -race -count=2 ./internal/core/...

cover:
	$(GO) test -cover ./...

# The benchmark baseline: full-size P2 (summable vs integration), P9
# (parallel query path), and P10 (pre-aggregated grid), with
# machine-readable ns/op in BENCH_PR3.json and a delta table against
# the committed BENCH_PR2.json baseline. Fails if any tracked
# ns_per_op metric regresses more than 2x.
bench:
	$(GO) run ./cmd/mobench -full -exp P2,P9,P10 -json BENCH_PR3.json -baseline BENCH_PR2.json

microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/mobench

experiments-full:
	$(GO) run ./cmd/mobench -full

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
