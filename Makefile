# mogis — standard workflows.

GO ?= go

.PHONY: all check build test race race-engine shard-race serve-race serve-smoke telemetry chaos cover bench microbench experiments experiments-full fmt fmt-check vet vet-strict lint lint-sarif fuzz-smoke clean

all: check

# The full pre-merge gate: compile, formatting, vet, the moglint
# invariant analyzers, tests, race detector, the repeated
# concurrent-engine stress pass, the telemetry-service race pass, and
# the network front door race pass.
check: build fmt-check vet lint test race race-engine telemetry serve-race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-sensitive packages, twice, under the race detector:
# the engine's concurrent stress tests plus the grid/columnar cache
# paths with interleaved invalidations, and the shared-read index and
# overlay structures.
race-engine:
	$(GO) test -race -count=2 ./internal/core/... ./internal/sindex/... ./internal/overlay/...

# The sharded scatter-gather engine, twice, under the race detector:
# the deterministic-merge fuzz matrix, the sharded concurrent storm
# with interleaved invalidations, and the chaos matrix covering the
# shard-partition faultpoint.
shard-race:
	$(GO) test -race -count=2 -run 'Shard|Chaos' ./internal/core/...

# The telemetry service under the race detector: the collector's
# windowed histograms and rings, the HTTP exposition handlers reading
# while queries record, and the obs tracer/registry they build on.
telemetry:
	$(GO) test -race -count=2 ./internal/telemetry/... ./internal/obs/...

# The network front door, twice, under the race detector: admission
# control and backpressure, the SSE hub with the 2000-subscriber load
# gate, the server chaos matrix (accept/write/subscriber/shutdown),
# and the graceful-drain regressions.
serve-race:
	$(GO) test -race -count=2 ./internal/server/...

# End-to-end daemon smoke test: build mogisd, start it, query, ingest
# a geofence-crossing batch under an SSE subscriber, scrape /metrics,
# then SIGTERM and assert a clean drain.
serve-smoke:
	./scripts/mogisd_smoke.sh

# The repository's own static analyzers (internal/lint), type-checked
# and flow-aware: span lifecycles, atomic-knob access, cache
# invalidation, determinism, obs naming, context-first plumbing, lock
# ordering, goroutine joins, budget strides, telemetry brackets, and
# error wrapping. Nonzero exit on any finding.
lint:
	$(GO) run ./cmd/moglint ./...

# The same analyzers rendered as a SARIF 2.1.0 log for code-scanning
# upload (moglint.sarif). Exit 0 even with findings: the scanning UI,
# not the build, turns the artifact into annotations.
lint-sarif:
	$(GO) run ./cmd/moglint -sarif ./... > moglint.sarif

# The fault-injection suite: every faultpoint site armed in every
# mode, under the race detector — cache coherence, typed errors, and
# goroutine hygiene after injected failures.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Cancel|Budget|Panic|Leak' ./internal/core/... ./internal/overlay/... ./internal/faultpoint/...

# Fails when any tracked file needs reformatting (prints the paths).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Non-default vet passes: unusedresult with the obs formatters added
# to its pure-function list, so a dropped Format/FormatExplain (a
# trace computed and thrown away) fails the build.
vet-strict: vet
	$(GO) vet -unusedresult \
		-unusedresult.funcs=fmt.Sprintf,fmt.Sprint,fmt.Errorf,mogis/internal/obs.FormatExplain \
		./...

# Each fuzz target for 10s: point-in-polygon vs the grid-verify scan
# oracle, and the Piet-QL parser's no-panic guarantee.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzPointInPolygon -fuzztime=10s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/pietql/

cover:
	$(GO) test -cover ./...

# The benchmark baseline: full-size P2 (summable vs integration), P9
# (parallel query path), P10 (pre-aggregated grid), P12 (sharded
# scatter-gather sweep), and P13 (per-cell temporal index), with
# machine-readable {meta, reports} JSON in BENCH_PR8.json and a delta
# table against the committed BENCH_PR7.json baseline. Fails if any
# tracked ns_per_op metric regresses more than 2x; runs whose recorded
# gomaxprocs (or other meta config) differs from the baseline's warn
# instead.
bench:
	$(GO) run ./cmd/mobench -full -exp P2,P9,P10,P12,P13 -json BENCH_PR8.json -baseline BENCH_PR7.json

microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/mobench

experiments-full:
	$(GO) run ./cmd/mobench -full

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
