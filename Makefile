# mogis — standard workflows.

GO ?= go

.PHONY: all check build test race race-engine cover bench microbench experiments experiments-full fmt vet clean

all: check

# The full pre-merge gate: compile, lint, tests, race detector, and
# the repeated concurrent-engine stress pass.
check: build vet test race race-engine

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrent-engine stress tests, twice, under the race detector:
# mixed query types against one shared engine with interleaved cache
# invalidations.
race-engine:
	$(GO) test -run Concurrent -race -count=2 ./internal/core/...

cover:
	$(GO) test -cover ./...

# The benchmark baseline: full-size P2 (summable vs integration) and
# P9 (parallel query path), with machine-readable ns/op in
# BENCH_PR2.json.
bench:
	$(GO) run ./cmd/mobench -full -exp P2,P9 -json BENCH_PR2.json

microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/mobench

experiments-full:
	$(GO) run ./cmd/mobench -full

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
