package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mogis/internal/geom"
	"mogis/internal/timedim"
)

func randomSample(rng *rand.Rand, n int) Sample {
	s := make(Sample, n)
	var t timedim.Instant
	p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
	for i := 0; i < n; i++ {
		t += timedim.Instant(1 + rng.Intn(30))
		p = p.Add(geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10))
		s[i] = TimePoint{T: t, P: p}
	}
	return s
}

// Property: the total time inside any polygon never exceeds the
// trajectory's duration, and the inside intervals are sorted,
// disjoint and within the time domain.
func TestInsideIntervalsInvariants(t *testing.T) {
	pg := geom.Polygon{Shell: geom.Ring{
		geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 80), geom.Pt(20, 80),
	}}
	f := func(seed int64, n8 uint8) bool {
		n := 2 + int(n8)%30
		rng := rand.New(rand.NewSource(seed))
		l := MustLIT(randomSample(rng, n))
		dom := l.TimeDomain()
		ivs := l.InsidePolygonIntervals(pg)
		var total float64
		for i, iv := range ivs {
			if iv.Hi < iv.Lo {
				return false
			}
			if iv.Lo < float64(dom.Lo)-1e-9 || iv.Hi > float64(dom.Hi)+1e-9 {
				return false
			}
			if i > 0 && iv.Lo < ivs[i-1].Hi-1e-9 {
				return false // overlapping or unsorted
			}
			total += iv.Duration()
		}
		return total <= float64(dom.Duration())+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: positions inside the reported inside-intervals are really
// inside the polygon (midpoint check), and positions in gaps are
// outside.
func TestInsideIntervalsCorrectness(t *testing.T) {
	pg := geom.Polygon{Shell: geom.Ring{
		geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 80), geom.Pt(20, 80),
	}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := MustLIT(randomSample(rng, 12))
		ivs := l.InsidePolygonIntervals(pg)
		for _, iv := range ivs {
			mid := (iv.Lo + iv.Hi) / 2
			p, ok := l.At(mid)
			if !ok || !pg.ContainsPoint(p) {
				return false
			}
		}
		// Between consecutive intervals the object is outside.
		for i := 1; i < len(ivs); i++ {
			gapMid := (ivs[i-1].Hi + ivs[i].Lo) / 2
			if gapMid <= ivs[i-1].Hi || gapMid >= ivs[i].Lo {
				continue
			}
			p, ok := l.At(gapMid)
			if ok && pg.Locate(p) == geom.Inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: At() is continuous across legs — evaluating at a sample
// instant returns the sample point exactly.
func TestAtHitsSamples(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 1 + int(n8)%20
		rng := rand.New(rand.NewSource(seed))
		s := randomSample(rng, n)
		l := MustLIT(s)
		for _, tp := range s {
			p, ok := l.AtInstant(tp.T)
			if !ok || !p.NearEq(tp.P, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: within-radius total time is monotone in the radius.
func TestWithinRadiusMonotone(t *testing.T) {
	center := geom.Pt(50, 50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := MustLIT(randomSample(rng, 10))
		prev := 0.0
		for _, r := range []float64{5, 15, 40, 100} {
			d := l.TimeWithinRadius(center, r)
			if d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: compression never increases the sample size, preserves
// endpooints, and keeps a valid sample.
func TestCompressInvariants(t *testing.T) {
	f := func(seed int64, n8 uint8, eps8 uint8) bool {
		n := 2 + int(n8)%60
		rng := rand.New(rand.NewSource(seed))
		s := randomSample(rng, n)
		eps := float64(eps8%50) / 2
		c := Compress(s, eps)
		if len(c) > len(s) || len(c) < 2 {
			return false
		}
		if c[0] != s[0] || c[len(c)-1] != s[len(s)-1] {
			return false
		}
		if err := c.Validate(); err != nil {
			return false
		}
		// Larger epsilon never keeps more points.
		c2 := Compress(s, eps+10)
		if len(c2) > len(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: trajectory length equals the sum of leg lengths and
// bounds MaxSpeed × duration from below.
func TestLengthSpeedConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := MustLIT(randomSample(rng, 8))
		var sum float64
		for i := 0; i < l.NumLegs(); i++ {
			_, _, seg := l.Leg(i)
			sum += seg.Length()
		}
		if math.Abs(sum-l.Sample().Length()) > 1e-9 {
			return false
		}
		dur := float64(l.TimeDomain().Duration())
		return l.MaxSpeed()*dur >= sum-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
