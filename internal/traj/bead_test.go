package traj

import (
	"math"
	"testing"

	"mogis/internal/geom"
)

func TestNewBeadFeasibility(t *testing.T) {
	if _, ok := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(5, 0), 1); !ok {
		t.Error("feasible bead rejected")
	}
	// Too fast: 20 units in 10 seconds at vmax 1.
	if _, ok := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(20, 0), 1); ok {
		t.Error("infeasible bead accepted")
	}
	if _, ok := NewBead(10, geom.Pt(0, 0), 10, geom.Pt(0, 0), 1); ok {
		t.Error("zero-duration bead accepted")
	}
	if _, ok := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(1, 0), 0); ok {
		t.Error("zero-speed bead accepted")
	}
}

func TestBeadPossibleAt(t *testing.T) {
	b, _ := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(10, 0), 2)
	// Midpoint at half time: reachable.
	if !b.PossibleAt(5, geom.Pt(5, 0)) {
		t.Error("midpoint should be possible")
	}
	// Detour point: at t=5 the object can be up to 10 away from both
	// endpoints; (5,8) is dist ~9.43 from both — possible.
	if !b.PossibleAt(5, geom.Pt(5, 8)) {
		t.Error("detour within speed should be possible")
	}
	// (5,15) is too far.
	if b.PossibleAt(5, geom.Pt(5, 15)) {
		t.Error("far detour should be impossible")
	}
	// Early time: can't be far from start.
	if b.PossibleAt(1, geom.Pt(5, 0)) {
		t.Error("too far too early")
	}
	if b.PossibleAt(-1, geom.Pt(0, 0)) || b.PossibleAt(11, geom.Pt(10, 0)) {
		t.Error("outside time domain")
	}
}

func TestBeadProjection(t *testing.T) {
	b, _ := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(10, 0), 2)
	// Ellipse: |p-p1|+|p-p2| ≤ 20; major semi-axis 10, c = 5, minor =
	// sqrt(100-25).
	major, minor := b.SemiAxes()
	if major != 10 || math.Abs(minor-math.Sqrt(75)) > 1e-12 {
		t.Errorf("axes = %v, %v", major, minor)
	}
	if !b.ProjectionContains(geom.Pt(5, 8)) {
		t.Error("inside ellipse")
	}
	if b.ProjectionContains(geom.Pt(5, 9)) {
		t.Error("outside ellipse")
	}
	box := b.BBox()
	if math.Abs(box.MinX-(-5)) > 1e-9 || math.Abs(box.MaxX-15) > 1e-9 {
		t.Errorf("BBox = %v", box)
	}
	if math.Abs(box.MinY+math.Sqrt(75)) > 1e-9 {
		t.Errorf("BBox = %v", box)
	}
}

func TestBeadDegenerateSamePoint(t *testing.T) {
	b, ok := NewBead(0, geom.Pt(3, 3), 10, geom.Pt(3, 3), 1)
	if !ok {
		t.Fatal("stationary bead rejected")
	}
	major, minor := b.SemiAxes()
	if major != 5 || minor != 5 {
		t.Errorf("axes = %v,%v (disc expected)", major, minor)
	}
	box := b.BBox()
	if box.MinX != -2 || box.MaxX != 8 {
		t.Errorf("BBox = %v", box)
	}
}

func TestBeadMayIntersectPolygon(t *testing.T) {
	b, _ := NewBead(0, geom.Pt(0, 0), 10, geom.Pt(10, 0), 2)
	// Polygon well inside the ellipse band.
	if !b.MayIntersectPolygon(sq(4, 2, 2), 16) {
		t.Error("inside polygon missed")
	}
	// Polygon entirely containing the ellipse.
	if !b.MayIntersectPolygon(sq(-20, -20, 60), 16) {
		t.Error("containing polygon missed")
	}
	// Far polygon.
	if b.MayIntersectPolygon(sq(100, 100, 5), 16) {
		t.Error("far polygon hit")
	}
	// Default boundary sampling floor.
	if !b.MayIntersectPolygon(sq(4, 2, 2), 0) {
		t.Error("sampling floor")
	}
}

func TestBeadsFromLIT(t *testing.T) {
	l := MustLIT(Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 10, P: geom.Pt(10, 0)},
		{T: 20, P: geom.Pt(10, 10)},
	})
	bs := Beads(l, 2)
	if len(bs) != 2 {
		t.Fatalf("beads = %d", len(bs))
	}
	// At vmax below the actual speed, the gaps are infeasible.
	bs = Beads(l, 0.5)
	if len(bs) != 0 {
		t.Errorf("infeasible beads = %d", len(bs))
	}
}
