// Package traj implements trajectories and trajectory samples
// (Definitions 5 and 6 of the paper) under the linear-interpolation
// model LIT(S) the paper adopts: between consecutive samples the
// object moves along a straight line at constant (lowest) speed. On
// top of LIT it provides the continuous-time primitives the paper's
// Type 6/7/8 queries need: position at an instant, the time intervals
// spent inside a polygon, passes-through tests, and the time
// intervals within a radius of a point (solved exactly from the
// quadratic distance equation, as in queries Q5 and Q6 of Section 4).
package traj

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/timedim"
)

// TimePoint is one trajectory sample (t_i, x_i, y_i).
type TimePoint struct {
	T timedim.Instant
	P geom.Point
}

// Sample is a trajectory sample per Definition 6: time-space points
// with strictly increasing timestamps.
type Sample []TimePoint

// Validation errors.
var (
	ErrEmptySample   = errors.New("traj: empty sample")
	ErrUnorderedTime = errors.New("traj: timestamps not strictly increasing")
)

// Validate checks Definition 6's ordering requirement
// t_0 < t_1 < ... < t_N.
func (s Sample) Validate() error {
	if len(s) == 0 {
		return ErrEmptySample
	}
	for i := 1; i < len(s); i++ {
		if s[i].T <= s[i-1].T {
			return fmt.Errorf("%w: index %d", ErrUnorderedTime, i)
		}
	}
	return nil
}

// SampleFromColumns builds a Sample from parallel column slices (one
// instant and coordinate pair per row), the struct-of-arrays layout
// of moft.Columns. The flat slices stream sequentially, so bulk
// trajectory construction over a whole table avoids pointer-chasing
// one Tuple struct per sample.
func SampleFromColumns(ts []int64, xs, ys []float64) Sample {
	s := make(Sample, len(ts))
	for i := range ts {
		s[i] = TimePoint{T: timedim.Instant(ts[i]), P: geom.Pt(xs[i], ys[i])}
	}
	return s
}

// TimeDomain returns the sample's time domain [t_0, t_N].
func (s Sample) TimeDomain() timedim.Interval {
	if len(s) == 0 {
		return timedim.Interval{}
	}
	return timedim.Interval{Lo: s[0].T, Hi: s[len(s)-1].T}
}

// IsClosed reports whether the trajectory is closed per the paper:
// first and last sampled positions coincide.
func (s Sample) IsClosed() bool {
	return len(s) >= 2 && s[0].P.Eq(s[len(s)-1].P)
}

// Image returns the sampled positions.
func (s Sample) Image() []geom.Point {
	out := make([]geom.Point, len(s))
	for i, tp := range s {
		out[i] = tp.P
	}
	return out
}

// AsPolyline returns the interpolated trajectory's spatial image as a
// polyline (the "trajectory as a spatial object" view of query Type
// 6).
func (s Sample) AsPolyline() geom.Polyline {
	return geom.Polyline(s.Image())
}

// BBox returns the spatial bounding box of the sample.
func (s Sample) BBox() geom.BBox { return geom.NewBBox(s.Image()...) }

// Length returns the length of the interpolated trajectory's image.
func (s Sample) Length() float64 { return s.AsPolyline().Length() }

// LIT is the linear-interpolation trajectory of a sample: the unique
// trajectory through the sample points with constant speed on each
// inter-sample segment (Section 3 of the paper).
type LIT struct {
	s Sample
	// box is the spatial bounding box of the sample, computed once at
	// construction so spatial prefilters can test envelope
	// intersection without walking the sample.
	box geom.BBox
}

// NewLIT validates the sample and wraps it as a trajectory.
func NewLIT(s Sample) (*LIT, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &LIT{s: s, box: s.BBox()}, nil
}

// MustLIT is NewLIT that panics on invalid samples; for tests and
// generated data.
func MustLIT(s Sample) *LIT {
	l, err := NewLIT(s)
	if err != nil {
		panic(err)
	}
	return l
}

// Sample returns the underlying sample.
func (l *LIT) Sample() Sample { return l.s }

// BBox returns the cached spatial bounding box of the trajectory's
// image. A trajectory whose box does not intersect a query region's
// box cannot intersect the region itself, which is the basis of the
// engine's spatial prefilter.
func (l *LIT) BBox() geom.BBox { return l.box }

// TimeDomain returns [t_0, t_N].
func (l *LIT) TimeDomain() timedim.Interval { return l.s.TimeDomain() }

// At returns the interpolated position at time t (which may be
// fractional) and ok=false outside the time domain.
func (l *LIT) At(t float64) (geom.Point, bool) {
	s := l.s
	if t < float64(s[0].T) || t > float64(s[len(s)-1].T) {
		return geom.Point{}, false
	}
	// Binary search for the segment with s[i].T <= t <= s[i+1].T.
	i := sort.Search(len(s), func(i int) bool { return float64(s[i].T) >= t })
	if i < len(s) && float64(s[i].T) == t {
		return s[i].P, true
	}
	i-- // now s[i].T < t < s[i+1].T
	a, b := s[i], s[i+1]
	frac := (t - float64(a.T)) / float64(b.T-a.T)
	return a.P.Lerp(b.P, frac), true
}

// AtInstant is At for integral instants.
func (l *LIT) AtInstant(t timedim.Instant) (geom.Point, bool) {
	return l.At(float64(t))
}

// NumLegs returns the number of inter-sample segments.
func (l *LIT) NumLegs() int { return len(l.s) - 1 }

// Leg returns the i-th inter-sample motion: its time interval and
// space segment.
func (l *LIT) Leg(i int) (t0, t1 float64, seg geom.Segment) {
	a, b := l.s[i], l.s[i+1]
	return float64(a.T), float64(b.T), geom.Seg(a.P, b.P)
}

// SpeedOnLeg returns the constant speed on leg i (distance over
// time).
func (l *LIT) SpeedOnLeg(i int) float64 {
	t0, t1, seg := l.Leg(i)
	return seg.Length() / (t1 - t0)
}

// MaxSpeed returns the maximum leg speed (0 for single-point
// samples).
func (l *LIT) MaxSpeed() float64 {
	var v float64
	for i := 0; i < l.NumLegs(); i++ {
		if s := l.SpeedOnLeg(i); s > v {
			v = s
		}
	}
	return v
}

// TimeInterval is a continuous closed time interval with fractional
// endpoints (interpolation produces non-integral crossing times).
type TimeInterval struct {
	Lo, Hi float64
}

// Duration returns Hi-Lo (0 when inverted).
func (iv TimeInterval) Duration() float64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// mergeIntervals sorts and coalesces touching intervals.
func mergeIntervals(ivs []TimeInterval) []TimeInterval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1e-9 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// InsidePolygonIntervals returns the merged time intervals during
// which the interpolated trajectory is inside pg (boundary counts as
// inside). This is the continuous-time rollup the paper's Type 7
// queries require ("a linear interpolation may indicate that the
// object has passed through that neighborhood").
func (l *LIT) InsidePolygonIntervals(pg geom.Polygon) []TimeInterval {
	var out []TimeInterval
	if l.NumLegs() == 0 {
		// Single-sample trajectory: a degenerate interval at the
		// sample instant.
		if pg.ContainsPoint(l.s[0].P) {
			t := float64(l.s[0].T)
			out = append(out, TimeInterval{Lo: t, Hi: t})
		}
		return out
	}
	box := pg.BBox()
	for i := 0; i < l.NumLegs(); i++ {
		t0, t1, seg := l.Leg(i)
		if !box.Intersects(seg.BBox()) {
			continue
		}
		for _, iv := range pg.SegmentInsideIntervals(seg) {
			out = append(out, TimeInterval{
				Lo: t0 + iv.Lo*(t1-t0),
				Hi: t0 + iv.Hi*(t1-t0),
			})
		}
	}
	return mergeIntervals(out)
}

// TimeInsidePolygon returns the total time the interpolated
// trajectory spends inside pg.
func (l *LIT) TimeInsidePolygon(pg geom.Polygon) float64 {
	var sum float64
	for _, iv := range l.InsidePolygonIntervals(pg) {
		sum += iv.Duration()
	}
	return sum
}

// PassesThroughPolygon reports whether the interpolated trajectory
// ever enters pg, even between samples (the paper's O6 case in
// Figure 1).
func (l *LIT) PassesThroughPolygon(pg geom.Polygon) bool {
	if l.NumLegs() == 0 {
		return pg.ContainsPoint(l.s[0].P)
	}
	box := pg.BBox()
	for i := 0; i < l.NumLegs(); i++ {
		_, _, seg := l.Leg(i)
		if box.Intersects(seg.BBox()) && pg.IntersectsSegment(seg) {
			return true
		}
	}
	return false
}

// SampledInPolygon reports whether any raw sample point lies in pg
// (the sample-only semantics of Type 4 queries).
func (s Sample) SampledInPolygon(pg geom.Polygon) bool {
	for _, tp := range s {
		if pg.ContainsPoint(tp.P) {
			return true
		}
	}
	return false
}

// WithinRadiusIntervals returns the merged time intervals during
// which the interpolated position is within distance r of center.
// Per leg, the squared distance to center is a quadratic in t; its
// sub-level set {t : d²(t) ≤ r²} is solved in closed form, exactly as
// the constraint (x-x1)²+(y-y1)² ≤ r² appears in queries Q6 and Q7.
func (l *LIT) WithinRadiusIntervals(center geom.Point, r float64) []TimeInterval {
	var out []TimeInterval
	r2 := r * r
	if l.NumLegs() == 0 {
		if l.s[0].P.Dist2(center) <= r2 {
			t := float64(l.s[0].T)
			out = append(out, TimeInterval{Lo: t, Hi: t})
		}
		return out
	}
	for i := 0; i < l.NumLegs(); i++ {
		t0, t1, seg := l.Leg(i)
		lo, hi, ok := segmentWithinRadius(seg, center, r2)
		if !ok {
			continue
		}
		out = append(out, TimeInterval{
			Lo: t0 + lo*(t1-t0),
			Hi: t0 + hi*(t1-t0),
		})
	}
	return mergeIntervals(out)
}

// segmentWithinRadius returns the parameter sub-interval [lo, hi] ⊆
// [0,1] of seg within squared distance r2 of center, with ok=false
// when empty.
func segmentWithinRadius(seg geom.Segment, center geom.Point, r2 float64) (lo, hi float64, ok bool) {
	d := seg.B.Sub(seg.A)
	f := seg.A.Sub(center)
	a := d.Norm2()
	if a == 0 {
		if f.Norm2() <= r2 {
			return 0, 1, true
		}
		return 0, 0, false
	}
	b := 2 * f.Dot(d)
	c := f.Norm2() - r2
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	lo = (-b - sq) / (2 * a)
	hi = (-b + sq) / (2 * a)
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// TimeWithinRadius returns the total time within distance r of
// center.
func (l *LIT) TimeWithinRadius(center geom.Point, r float64) float64 {
	var sum float64
	for _, iv := range l.WithinRadiusIntervals(center, r) {
		sum += iv.Duration()
	}
	return sum
}

// EverWithinRadius reports whether the interpolated trajectory ever
// comes within distance r of center.
func (l *LIT) EverWithinRadius(center geom.Point, r float64) bool {
	r2 := r * r
	if l.NumLegs() == 0 {
		return l.s[0].P.Dist2(center) <= r2
	}
	for i := 0; i < l.NumLegs(); i++ {
		_, _, seg := l.Leg(i)
		if _, _, ok := segmentWithinRadius(seg, center, r2); ok {
			return true
		}
	}
	return false
}
