package traj

import (
	"math"

	"mogis/internal/geom"
)

// Bead is a lifeline bead in the sense of Hornsby & Egenhofer (cited
// in Section 2 of the paper): between two observations (t1, p1) and
// (t2, p2) of an object with maximum speed vmax, the possible
// positions at time t form the intersection of two discs; over the
// whole interval the spatial projection is an ellipse with foci p1
// and p2 and major axis vmax·(t2-t1).
type Bead struct {
	T1, T2 float64
	P1, P2 geom.Point
	VMax   float64
}

// NewBead builds the bead for one inter-observation gap. It returns
// ok=false when the observations are infeasible at the given maximum
// speed (the object could not travel the distance in time).
func NewBead(t1 float64, p1 geom.Point, t2 float64, p2 geom.Point, vmax float64) (Bead, bool) {
	if t2 <= t1 || vmax <= 0 {
		return Bead{}, false
	}
	if p1.Dist(p2) > vmax*(t2-t1)+1e-9 {
		return Bead{}, false
	}
	return Bead{T1: t1, T2: t2, P1: p1, P2: p2, VMax: vmax}, true
}

// PossibleAt reports whether the object could have been at position p
// at time t: p must be reachable from p1 by time t and from p to p2
// in the remaining time, both at speed at most VMax.
func (b Bead) PossibleAt(t float64, p geom.Point) bool {
	if t < b.T1 || t > b.T2 {
		return false
	}
	return p.Dist(b.P1) <= b.VMax*(t-b.T1)+1e-9 &&
		p.Dist(b.P2) <= b.VMax*(b.T2-t)+1e-9
}

// ProjectionContains reports whether p lies in the bead's spatial
// projection: the ellipse {p : |p-p1| + |p-p2| ≤ vmax·(t2-t1)}.
func (b Bead) ProjectionContains(p geom.Point) bool {
	return p.Dist(b.P1)+p.Dist(b.P2) <= b.VMax*(b.T2-b.T1)+1e-9
}

// SemiAxes returns the semi-major and semi-minor axes of the
// projection ellipse.
func (b Bead) SemiAxes() (major, minor float64) {
	major = b.VMax * (b.T2 - b.T1) / 2
	c := b.P1.Dist(b.P2) / 2
	m2 := major*major - c*c
	if m2 < 0 {
		m2 = 0
	}
	return major, math.Sqrt(m2)
}

// BBox returns a bounding box of the projection ellipse (conservative
// axis-aligned box around the rotated ellipse).
func (b Bead) BBox() geom.BBox {
	major, minor := b.SemiAxes()
	center := geom.MidPoint(b.P1, b.P2)
	d := b.P2.Sub(b.P1)
	L := d.Norm()
	if L == 0 {
		return geom.BBox{
			MinX: center.X - major, MinY: center.Y - major,
			MaxX: center.X + major, MaxY: center.Y + major,
		}
	}
	// Half-extents of a rotated ellipse along the axes.
	cos, sin := d.X/L, d.Y/L
	ex := math.Sqrt(major*major*cos*cos + minor*minor*sin*sin)
	ey := math.Sqrt(major*major*sin*sin + minor*minor*cos*cos)
	return geom.BBox{
		MinX: center.X - ex, MinY: center.Y - ey,
		MaxX: center.X + ex, MaxY: center.Y + ey,
	}
}

// MayIntersectPolygon reports whether the bead's projection ellipse
// could intersect pg, by boundary and containment sampling: exact on
// the discrete boundary sample, conservative in between. Used for the
// uncertainty-aware variant of passes-through queries.
func (b Bead) MayIntersectPolygon(pg geom.Polygon, boundarySamples int) bool {
	if !b.BBox().Intersects(pg.BBox()) {
		return false
	}
	// Ellipse center inside polygon or polygon vertex inside ellipse.
	if pg.ContainsPoint(geom.MidPoint(b.P1, b.P2)) {
		return true
	}
	for _, p := range pg.Shell {
		if b.ProjectionContains(p) {
			return true
		}
	}
	if boundarySamples < 8 {
		boundarySamples = 8
	}
	major, minor := b.SemiAxes()
	center := geom.MidPoint(b.P1, b.P2)
	d := b.P2.Sub(b.P1)
	L := d.Norm()
	cos, sin := 1.0, 0.0
	if L > 0 {
		cos, sin = d.X/L, d.Y/L
	}
	for i := 0; i < boundarySamples; i++ {
		a := 2 * math.Pi * float64(i) / float64(boundarySamples)
		ex, ey := major*math.Cos(a), minor*math.Sin(a)
		p := geom.Pt(center.X+ex*cos-ey*sin, center.Y+ex*sin+ey*cos)
		if pg.ContainsPoint(p) {
			return true
		}
	}
	return false
}

// Beads derives the lifeline beads of an interpolated trajectory at
// maximum speed vmax, skipping infeasible gaps.
func Beads(l *LIT, vmax float64) []Bead {
	var out []Bead
	for i := 0; i < l.NumLegs(); i++ {
		t0, t1, seg := l.Leg(i)
		if b, ok := NewBead(t0, seg.A, t1, seg.B, vmax); ok {
			out = append(out, b)
		}
	}
	return out
}
