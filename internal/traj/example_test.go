package traj_test

import (
	"fmt"

	"mogis/internal/geom"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// The linear-interpolation trajectory LIT(S) of the paper: position
// at any instant, and the continuous time intervals spent inside a
// region.
func ExampleLIT() {
	l := traj.MustLIT(traj.Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 100, P: geom.Pt(100, 0)},
	})
	p, _ := l.At(25)
	fmt.Println("position at t=25:", p)

	region := geom.Polygon{Shell: geom.Ring{
		geom.Pt(40, -10), geom.Pt(60, -10), geom.Pt(60, 10), geom.Pt(40, 10),
	}}
	for _, iv := range l.InsidePolygonIntervals(region) {
		fmt.Printf("inside during [%g, %g]\n", iv.Lo, iv.Hi)
	}
	// Output:
	// position at t=25: (25, 0)
	// inside during [40, 60]
}

// SED-metric compression drops redundant samples while bounding the
// trajectory deviation.
func ExampleCompress() {
	var s traj.Sample
	for i := 0; i <= 10; i++ {
		s = append(s, traj.TimePoint{T: timedim.Instant(i * 10), P: geom.Pt(float64(i*10), 0)})
	}
	c := traj.Compress(s, 0.5)
	fmt.Printf("%d -> %d samples\n", len(s), len(c))
	// Output: 11 -> 2 samples
}
