package traj

import (
	"mogis/internal/timedim"
)

// SED returns the synchronized Euclidean distance of sample point s[i]
// from the trajectory that linearly interpolates between s[first] and
// s[last]: the distance between the actual position at time t_i and
// the position the straight-line motion would predict at t_i. SED is
// the standard error metric for trajectory compression because it
// respects time, unlike plain perpendicular distance.
func SED(s Sample, first, last, i int) float64 {
	a, b, p := s[first], s[last], s[i]
	dt := float64(b.T - a.T)
	if dt == 0 {
		return p.P.Dist(a.P)
	}
	frac := float64(p.T-a.T) / dt
	predicted := a.P.Lerp(b.P, frac)
	return p.P.Dist(predicted)
}

// Compress reduces the sample with the Douglas–Peucker scheme under
// the SED metric: the result keeps the first and last points and
// every point whose removal would displace the interpolated
// trajectory by more than epsilon at its timestamp. The compressed
// sample is a subsequence, so it remains a valid Definition-6 sample,
// and its LIT deviates from the original's by at most epsilon at the
// dropped sample instants.
func Compress(s Sample, epsilon float64) Sample {
	if len(s) <= 2 {
		return append(Sample(nil), s...)
	}
	keep := make([]bool, len(s))
	keep[0], keep[len(s)-1] = true, true
	compressRange(s, 0, len(s)-1, epsilon, keep)
	out := make(Sample, 0, len(s))
	for i, k := range keep {
		if k {
			out = append(out, s[i])
		}
	}
	return out
}

func compressRange(s Sample, first, last int, epsilon float64, keep []bool) {
	if last-first < 2 {
		return
	}
	worst, worstD := -1, epsilon
	for i := first + 1; i < last; i++ {
		if d := SED(s, first, last, i); d > worstD {
			worst, worstD = i, d
		}
	}
	if worst < 0 {
		return
	}
	keep[worst] = true
	compressRange(s, first, worst, epsilon, keep)
	compressRange(s, worst, last, epsilon, keep)
}

// CompressionError returns the maximum SED between the original
// sample and the compressed subsequence's interpolation, evaluated at
// every original sample instant.
func CompressionError(original, compressed Sample) float64 {
	if len(compressed) == 0 {
		return 0
	}
	l := MustLIT(compressed)
	var worst float64
	for _, tp := range original {
		p, ok := l.At(float64(tp.T))
		if !ok {
			continue
		}
		if d := p.Dist(tp.P); d > worst {
			worst = d
		}
	}
	return worst
}

// ResampleUniform reconstructs a sample at a fixed period from the
// interpolated trajectory — the inverse operation, useful for
// normalizing sampling rates before aggregation (Section 2's
// discussion of sampling-interval insensitivity).
func ResampleUniform(l *LIT, period int64) Sample {
	if period <= 0 {
		period = 1
	}
	dom := l.TimeDomain()
	var out Sample
	for t := dom.Lo; t <= dom.Hi; t += timedim.Instant(period) {
		if p, ok := l.AtInstant(t); ok {
			out = append(out, TimePoint{T: t, P: p})
		}
	}
	// Always include the final instant.
	if len(out) == 0 || out[len(out)-1].T != dom.Hi {
		if p, ok := l.AtInstant(dom.Hi); ok {
			out = append(out, TimePoint{T: dom.Hi, P: p})
		}
	}
	return out
}
