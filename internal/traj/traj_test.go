package traj

import (
	"math"
	"testing"

	"mogis/internal/geom"
)

func sq(x, y, s float64) geom.Polygon {
	return geom.Polygon{Shell: geom.Ring{
		geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
	}}
}

func lineSample() Sample {
	return Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 10, P: geom.Pt(10, 0)},
		{T: 20, P: geom.Pt(10, 10)},
	}
}

func TestSampleValidate(t *testing.T) {
	if err := lineSample().Validate(); err != nil {
		t.Errorf("valid sample: %v", err)
	}
	if err := (Sample{}).Validate(); err == nil {
		t.Error("empty sample should fail")
	}
	bad := Sample{{T: 5, P: geom.Pt(0, 0)}, {T: 5, P: geom.Pt(1, 1)}}
	if err := bad.Validate(); err == nil {
		t.Error("equal timestamps should fail")
	}
	bad2 := Sample{{T: 5, P: geom.Pt(0, 0)}, {T: 4, P: geom.Pt(1, 1)}}
	if err := bad2.Validate(); err == nil {
		t.Error("decreasing timestamps should fail")
	}
}

func TestSampleBasics(t *testing.T) {
	s := lineSample()
	td := s.TimeDomain()
	if td.Lo != 0 || td.Hi != 20 {
		t.Errorf("TimeDomain = %+v", td)
	}
	if s.IsClosed() {
		t.Error("open sample reported closed")
	}
	closed := Sample{{T: 0, P: geom.Pt(1, 1)}, {T: 5, P: geom.Pt(2, 2)}, {T: 9, P: geom.Pt(1, 1)}}
	if !closed.IsClosed() {
		t.Error("closed sample not detected")
	}
	if got := s.Length(); got != 20 {
		t.Errorf("Length = %v", got)
	}
	if b := s.BBox(); b.MaxX != 10 || b.MaxY != 10 {
		t.Errorf("BBox = %v", b)
	}
	if pl := s.AsPolyline(); pl.NumSegments() != 2 {
		t.Errorf("AsPolyline segments = %d", pl.NumSegments())
	}
}

func TestLITAt(t *testing.T) {
	l := MustLIT(lineSample())
	tests := []struct {
		t    float64
		want geom.Point
		ok   bool
	}{
		{0, geom.Pt(0, 0), true},
		{5, geom.Pt(5, 0), true},
		{10, geom.Pt(10, 0), true},
		{15, geom.Pt(10, 5), true},
		{20, geom.Pt(10, 10), true},
		{-1, geom.Point{}, false},
		{21, geom.Point{}, false},
	}
	for _, tt := range tests {
		got, ok := l.At(tt.t)
		if ok != tt.ok || (ok && !got.NearEq(tt.want, 1e-12)) {
			t.Errorf("At(%v) = %v,%v, want %v,%v", tt.t, got, ok, tt.want, tt.ok)
		}
	}
	if p, ok := l.AtInstant(15); !ok || !p.Eq(geom.Pt(10, 5)) {
		t.Errorf("AtInstant = %v,%v", p, ok)
	}
}

func TestLITSpeed(t *testing.T) {
	l := MustLIT(lineSample())
	if v := l.SpeedOnLeg(0); v != 1 {
		t.Errorf("SpeedOnLeg(0) = %v", v)
	}
	if v := l.MaxSpeed(); v != 1 {
		t.Errorf("MaxSpeed = %v", v)
	}
	single := MustLIT(Sample{{T: 0, P: geom.Pt(1, 1)}})
	if v := single.MaxSpeed(); v != 0 {
		t.Errorf("single MaxSpeed = %v", v)
	}
}

func TestNewLITError(t *testing.T) {
	if _, err := NewLIT(Sample{}); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLIT should panic")
		}
	}()
	MustLIT(Sample{})
}

func TestInsidePolygonIntervals(t *testing.T) {
	// Trajectory crossing the square [10,20]×[-5,5] from x=0 to x=30
	// over t in [0,30].
	l := MustLIT(Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 30, P: geom.Pt(30, 0)},
	})
	pg := sq(10, -5, 10)
	ivs := l.InsidePolygonIntervals(pg)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if math.Abs(ivs[0].Lo-10) > 1e-9 || math.Abs(ivs[0].Hi-20) > 1e-9 {
		t.Errorf("interval = %+v", ivs[0])
	}
	if d := l.TimeInsidePolygon(pg); math.Abs(d-10) > 1e-9 {
		t.Errorf("TimeInside = %v", d)
	}
}

func TestInsidePolygonIntervalsMerging(t *testing.T) {
	// Two legs both inside the polygon: intervals must merge at the
	// shared sample point.
	l := MustLIT(Sample{
		{T: 0, P: geom.Pt(1, 1)},
		{T: 5, P: geom.Pt(5, 5)},
		{T: 9, P: geom.Pt(9, 1)},
	})
	pg := sq(0, 0, 10)
	ivs := l.InsidePolygonIntervals(pg)
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != 9 {
		t.Errorf("merged intervals = %+v", ivs)
	}
}

func TestPassesThroughPolygon(t *testing.T) {
	// The paper's O6 case: both samples outside the region, segment
	// passes through.
	l := MustLIT(Sample{
		{T: 2, P: geom.Pt(-5, 5)},
		{T: 3, P: geom.Pt(15, 5)},
	})
	pg := sq(0, 0, 10)
	if !l.PassesThroughPolygon(pg) {
		t.Error("interpolated pass-through missed")
	}
	if l.Sample().SampledInPolygon(pg) {
		t.Error("no raw sample is inside")
	}
	far := MustLIT(Sample{{T: 0, P: geom.Pt(-5, 50)}, {T: 1, P: geom.Pt(15, 50)}})
	if far.PassesThroughPolygon(pg) {
		t.Error("far trajectory should not pass through")
	}
}

func TestWithinRadiusIntervals(t *testing.T) {
	// Object moves along the x-axis at speed 1; school at (10, 3);
	// radius 5 → within when (t-10)² + 9 ≤ 25 → |t-10| ≤ 4.
	l := MustLIT(Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 20, P: geom.Pt(20, 0)},
	})
	ivs := l.WithinRadiusIntervals(geom.Pt(10, 3), 5)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if math.Abs(ivs[0].Lo-6) > 1e-9 || math.Abs(ivs[0].Hi-14) > 1e-9 {
		t.Errorf("interval = %+v", ivs[0])
	}
	if d := l.TimeWithinRadius(geom.Pt(10, 3), 5); math.Abs(d-8) > 1e-9 {
		t.Errorf("TimeWithinRadius = %v", d)
	}
	if !l.EverWithinRadius(geom.Pt(10, 3), 5) {
		t.Error("EverWithinRadius false")
	}
	if l.EverWithinRadius(geom.Pt(10, 30), 5) {
		t.Error("EverWithinRadius for far point")
	}
	// Tangent case: distance exactly r at one instant.
	ivs = l.WithinRadiusIntervals(geom.Pt(10, 5), 5)
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-10) > 1e-6 || math.Abs(ivs[0].Hi-10) > 1e-6 {
		t.Errorf("tangent = %+v", ivs)
	}
	// Stationary object within radius.
	stat := MustLIT(Sample{{T: 0, P: geom.Pt(9, 0)}, {T: 10, P: geom.Pt(9, 0)}})
	ivs = stat.WithinRadiusIntervals(geom.Pt(10, 0), 5)
	if len(ivs) != 1 || ivs[0].Duration() != 10 {
		t.Errorf("stationary = %+v", ivs)
	}
	// Stationary object outside radius.
	ivs = stat.WithinRadiusIntervals(geom.Pt(100, 0), 5)
	if len(ivs) != 0 {
		t.Errorf("stationary far = %+v", ivs)
	}
}

func TestTimeIntervalDuration(t *testing.T) {
	if (TimeInterval{Lo: 3, Hi: 1}).Duration() != 0 {
		t.Error("inverted interval duration")
	}
	if (TimeInterval{Lo: 1, Hi: 3}).Duration() != 2 {
		t.Error("duration")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]TimeInterval{{5, 7}, {1, 2}, {2, 3}, {6, 9}})
	if len(got) != 2 {
		t.Fatalf("merged = %+v", got)
	}
	if got[0].Lo != 1 || got[0].Hi != 3 || got[1].Lo != 5 || got[1].Hi != 9 {
		t.Errorf("merged = %+v", got)
	}
	if mergeIntervals(nil) != nil {
		t.Error("nil merge")
	}
}
