package traj

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/timedim"
)

func benchLIT(n int) *LIT {
	rng := rand.New(rand.NewSource(1))
	s := make(Sample, n)
	p := geom.Pt(500, 500)
	for i := 0; i < n; i++ {
		p = p.Add(geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10))
		s[i] = TimePoint{T: timedim.Instant(i * 60), P: p}
	}
	return MustLIT(s)
}

var benchPoly = geom.Polygon{Shell: geom.Ring{
	geom.Pt(400, 400), geom.Pt(600, 400), geom.Pt(600, 600), geom.Pt(400, 600),
}}

func BenchmarkLITAt(b *testing.B) {
	l := benchLIT(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.At(float64(i%59000) + 0.5)
	}
}

func BenchmarkInsidePolygonIntervals(b *testing.B) {
	l := benchLIT(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsidePolygonIntervals(benchPoly)
	}
}

func BenchmarkWithinRadiusIntervals(b *testing.B) {
	l := benchLIT(1000)
	center := geom.Pt(500, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.WithinRadiusIntervals(center, 50)
	}
}

func BenchmarkCompress(b *testing.B) {
	l := benchLIT(1000)
	s := l.Sample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(s, 5)
	}
}

func BenchmarkSampledInPolygon(b *testing.B) {
	s := benchLIT(1000).Sample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampledInPolygon(benchPoly)
	}
}
