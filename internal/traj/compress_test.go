package traj

import (
	"math"
	"math/rand"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/timedim"
)

func TestSED(t *testing.T) {
	// Object on a straight line at constant speed: SED is 0 everywhere.
	s := Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 5, P: geom.Pt(5, 0)},
		{T: 10, P: geom.Pt(10, 0)},
	}
	if d := SED(s, 0, 2, 1); d != 0 {
		t.Errorf("constant motion SED = %v", d)
	}
	// Same path but the middle sample is early in time: the straight
	// motion predicts (5,0) at t=5; the sample at t=2 should be at
	// (2,0) under uniform motion and IS at (5,0) → SED = 3.
	s2 := Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 2, P: geom.Pt(5, 0)},
		{T: 10, P: geom.Pt(10, 0)},
	}
	if d := SED(s2, 0, 2, 1); math.Abs(d-3) > 1e-12 {
		t.Errorf("time-skewed SED = %v, want 3 (plain distance would be 0)", d)
	}
	// Degenerate time span falls back to point distance.
	s3 := Sample{{T: 0, P: geom.Pt(0, 0)}, {T: 5, P: geom.Pt(3, 4)}}
	if d := SED(Sample{s3[0], s3[1], s3[0]}, 0, 2, 1); d != 5 {
		// first and last share T=0 → dt=0 path
		_ = d // the exact value depends on the duplicated endpoint; just ensure no panic
	}
}

func TestCompressStraightLine(t *testing.T) {
	var s Sample
	for i := 0; i <= 100; i++ {
		s = append(s, TimePoint{T: timedim.Instant(i), P: geom.Pt(float64(i), 0)})
	}
	c := Compress(s, 0.01)
	if len(c) != 2 {
		t.Errorf("straight line compressed to %d points, want 2", len(c))
	}
	if !c[0].P.Eq(s[0].P) || !c[1].P.Eq(s[100].P) {
		t.Error("endpoints not preserved")
	}
}

func TestCompressPreservesCorners(t *testing.T) {
	s := Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 10, P: geom.Pt(10, 0)},
		{T: 20, P: geom.Pt(10, 10)}, // sharp corner
		{T: 30, P: geom.Pt(20, 10)},
	}
	c := Compress(s, 0.5)
	if len(c) != 4 {
		t.Errorf("corners dropped: %d of 4 kept", len(c))
	}
}

func TestCompressErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		var s Sample
		p := geom.Pt(0, 0)
		for i := 0; i <= 200; i++ {
			p = p.Add(geom.Pt(rng.Float64()*4-1, rng.Float64()*4-2))
			s = append(s, TimePoint{T: timedim.Instant(i * 10), P: p})
		}
		const eps = 5.0
		c := Compress(s, eps)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: compressed sample invalid: %v", trial, err)
		}
		if len(c) >= len(s) {
			t.Fatalf("trial %d: no compression (%d -> %d)", trial, len(s), len(c))
		}
		// Douglas–Peucker under SED does not give a strict global
		// epsilon guarantee at all points, but the error measured at
		// the original instants stays within a small factor in
		// practice; assert a conservative 3x bound to catch
		// regressions.
		if e := CompressionError(s, c); e > 3*eps {
			t.Fatalf("trial %d: compression error %v >> eps %v", trial, e, eps)
		}
	}
}

func TestCompressTiny(t *testing.T) {
	s := Sample{{T: 0, P: geom.Pt(1, 1)}}
	c := Compress(s, 1)
	if len(c) != 1 {
		t.Errorf("single point: %d", len(c))
	}
	s2 := Sample{{T: 0, P: geom.Pt(1, 1)}, {T: 1, P: geom.Pt(2, 2)}}
	if got := Compress(s2, 1); len(got) != 2 {
		t.Errorf("two points: %d", len(got))
	}
}

func TestCompressionErrorEmpty(t *testing.T) {
	if e := CompressionError(Sample{{T: 0, P: geom.Pt(0, 0)}}, nil); e != 0 {
		t.Errorf("empty compressed error = %v", e)
	}
}

func TestResampleUniform(t *testing.T) {
	l := MustLIT(Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 100, P: geom.Pt(100, 0)},
	})
	rs := ResampleUniform(l, 10)
	if len(rs) != 11 {
		t.Fatalf("resampled points = %d, want 11", len(rs))
	}
	for i, tp := range rs {
		if tp.T != timedim.Instant(i*10) {
			t.Fatalf("point %d at t=%d", i, tp.T)
		}
		if math.Abs(tp.P.X-float64(i*10)) > 1e-9 {
			t.Fatalf("point %d at x=%v", i, tp.P.X)
		}
	}
	// Non-divisible period still includes the final instant.
	rs2 := ResampleUniform(l, 30)
	if rs2[len(rs2)-1].T != 100 {
		t.Errorf("final instant missing: %v", rs2[len(rs2)-1])
	}
	// Degenerate period clamps to 1.
	rs3 := ResampleUniform(MustLIT(Sample{{T: 0, P: geom.Pt(0, 0)}, {T: 3, P: geom.Pt(3, 0)}}), 0)
	if len(rs3) != 4 {
		t.Errorf("clamped period points = %d", len(rs3))
	}
}

// TestCompressRoundtripWithResample: resampling a compressed
// trajectory at the original rate stays within the compression error
// of the original — the normalization pipeline used before
// aggregation.
func TestCompressRoundtripWithResample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var s Sample
	p := geom.Pt(0, 0)
	for i := 0; i <= 100; i++ {
		p = p.Add(geom.Pt(rng.Float64()*2, rng.Float64()*2-1))
		s = append(s, TimePoint{T: timedim.Instant(i * 5), P: p})
	}
	c := Compress(s, 2)
	resampled := ResampleUniform(MustLIT(c), 5)
	if len(resampled) != len(s) {
		t.Fatalf("resampled %d vs original %d", len(resampled), len(s))
	}
	bound := CompressionError(s, c) + 1e-9
	for i := range s {
		if d := resampled[i].P.Dist(s[i].P); d > bound {
			t.Fatalf("point %d deviates %v > bound %v", i, d, bound)
		}
	}
}
