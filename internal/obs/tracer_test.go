package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting checks parent/child structure and sibling order:
// a(b(c), d) started and ended in the natural order.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer("query")
	a := tr.Start("a")
	b := tr.Start("b")
	c := tr.Start("c")
	c.End()
	b.End()
	d := tr.Start("d")
	d.SetCount("tuples", 42)
	d.End()
	a.End()
	root := tr.Finish()

	want := []string{"query", "a", "b", "c", "d"}
	if got := root.Stages(); !reflect.DeepEqual(got, want) {
		t.Errorf("stages = %v, want %v", got, want)
	}
	if len(root.Children) != 1 || len(root.Children[0].Children) != 2 {
		t.Fatalf("tree shape wrong: %s", root.Format())
	}
	if root.Children[0].Children[0].Name != "b" || root.Children[0].Children[1].Name != "d" {
		t.Errorf("sibling order wrong: %s", root.Format())
	}
	if root.Find("c") == nil || root.Find("c").parent.Name != "b" {
		t.Errorf("c not nested under b: %s", root.Format())
	}
	if root.Find("d").Count("tuples") != 42 {
		t.Errorf("count lost: %v", root.Find("d").Counts)
	}
	for _, name := range want {
		if root.Find(name).Dur < 0 {
			t.Errorf("span %s has negative duration", name)
		}
	}
}

// TestOutOfOrderEnd verifies ending a parent before its child cannot
// wedge the cursor: the next Start still attaches somewhere valid.
func TestOutOfOrderEnd(t *testing.T) {
	tr := NewTracer("query")
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // out of order: b is still open
	b.End()
	s := tr.Start("after")
	s.End()
	root := tr.Finish()
	if root.Find("after") == nil {
		t.Errorf("tracer lost spans after out-of-order end: %s", root.Format())
	}
}

// TestStartAfterFinish: a finished trace is sealed. Starting a span on
// it must not graft anything onto the tree (the old behavior silently
// reattached to the root, corrupting retained traces); instead the
// call is an error-counted no-op returning a nil span.
func TestStartAfterFinish(t *testing.T) {
	tr := NewTracer("query")
	tr.Start("early").End()
	tr.Finish()

	before := postFinishStarts.Value()
	s := tr.Start("late")
	if s != nil {
		t.Errorf("Start after Finish returned %v, want nil", s)
	}
	s.End()            // nil-safe
	s.SetCount("x", 1) // nil-safe
	if got := postFinishStarts.Value(); got != before+1 {
		t.Errorf("postFinishStarts = %d, want %d", got, before+1)
	}
	if tr.Root().Find("late") != nil {
		t.Errorf("sealed trace grew a span: %s", tr.Root().Format())
	}
	want := []string{"query", "early"}
	if got := tr.Root().Stages(); !reflect.DeepEqual(got, want) {
		t.Errorf("stages = %v, want %v", got, want)
	}
	// Finish stays idempotent after the rejected Start.
	if tr.Finish() != tr.Root() {
		t.Error("Finish no longer returns the root")
	}
}

// TestNilTracerZeroAlloc: the whole point of the nil-tracer disabled
// state is that instrumented code allocates nothing when tracing is
// off.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("stage")
		sp.SetCount("tuples", 1)
		sp.AddCount("tuples", 1)
		sp.End()
		tr.Root().Find("x")
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestFormatAndExplain(t *testing.T) {
	tr := NewTracer("query")
	g := tr.Start("geo")
	g.SetCount("predicates", 2)
	g.End()
	root := tr.Finish()

	out := FormatExplain(root, []Sample{
		{Name: "mogis_overlay_hits_total", Value: 0},
		{Name: "mogis_geom_clip_total", Value: 0}, // zero and not cache-related: elided
		{Name: "mogis_moft_tuples_scanned_total", Value: 12},
	})
	for _, want := range []string{"query", "└─ geo", "[predicates=2]", "counters:",
		"mogis_overlay_hits_total", "mogis_moft_tuples_scanned_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mogis_geom_clip_total") {
		t.Errorf("zero non-cache counter should be elided:\n%s", out)
	}
}

// TestSpanEvents: point-in-time markers (the engine's "cancel"
// signal) attach to the innermost open span and render in Format.
func TestSpanEvents(t *testing.T) {
	tr := NewTracer("query")
	sp := tr.Start("scan")
	tr.Event("cancel") // lands on the open scan span
	sp.End()
	tr.Event("late") // no open child: lands on the root
	root := tr.Finish()

	scan := root.Find("scan")
	if len(scan.Events) != 1 || scan.Events[0] != "cancel" {
		t.Errorf("scan events = %v, want [cancel]", scan.Events)
	}
	if len(root.Events) != 1 || root.Events[0] != "late" {
		t.Errorf("root events = %v, want [late]", root.Events)
	}
	out := root.Format()
	if !strings.Contains(out, "{cancel}") || !strings.Contains(out, "{late}") {
		t.Errorf("Format missing event markers:\n%s", out)
	}

	var nilTr *Tracer
	nilTr.Event("x") // nil-safe
	var nilSp *Span
	nilSp.AddEvent("x") // nil-safe
}

// TestTracerConcurrent hammers one tracer from many goroutines under
// the race detector: the span cursor is documented as a single stack,
// but Start/End/Event/Finish must still be data-race-free when a
// query's fan-out workers share the tracer.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("query")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("stage")
				sp.SetCount("tuples", int64(i))
				sp.AddCount("tuples", 1)
				tr.Event("tick")
				sp.End()
			}
		}()
	}
	wg.Wait()
	root := tr.Finish()
	if root == nil || root.Name != "query" {
		t.Fatalf("root lost after concurrent use: %v", root)
	}
	if n := len(root.Stages()); n < 8*200 {
		t.Errorf("stages = %d, want >= %d", n, 8*200)
	}
}

// TestFormatExplainGolden pins the exact EXPLAIN ANALYZE rendering:
// tools and transcripts (README, the pietql CLI) depend on this byte
// layout, so a drift must be a conscious decision. Durations are set
// directly so the output is reproducible.
func TestFormatExplainGolden(t *testing.T) {
	geo := &Span{
		Name:   "geo",
		Dur:    456 * time.Microsecond,
		Counts: []SpanCount{{Key: "predicates", N: 2}, {Key: "ids", N: 4}},
	}
	geo.Children = []*Span{{Name: "overlay_lookup", Dur: 31500 * time.Nanosecond,
		Counts: []SpanCount{{Key: "bindings", N: 4}}}}
	mo := &Span{Name: "mo", Dur: 1230 * time.Microsecond,
		Counts: []SpanCount{{Key: "objects", N: 7}}, Events: []string{"cancel"}}
	root := &Span{
		Name:     "query",
		Dur:      2 * time.Millisecond,
		Children: []*Span{{Name: "parse", Dur: 12 * time.Microsecond}, geo, mo},
	}
	out := FormatExplain(root, []Sample{
		{Name: "mogis_overlay_hits_total", Value: 3},
		{Name: "mogis_litcache_hits_total", Value: 0},
		{Name: "mogis_geom_clip_total", Value: 0}, // elided
		{Name: "mogis_moft_tuples_scanned_total", Value: 1200},
	})
	want := "" +
		"query                                        2.00ms\n" +
		"├─ parse                                     12.0µs\n" +
		"├─ geo                                      456.0µs  [predicates=2 ids=4]\n" +
		"│  └─ overlay_lookup                         31.5µs  [bindings=4]\n" +
		"└─ mo                                        1.23ms  [objects=7]  {cancel}\n" +
		"counters:\n" +
		"  mogis_litcache_hits_total                    +0\n" +
		"  mogis_moft_tuples_scanned_total              +1200\n" +
		"  mogis_overlay_hits_total                     +3\n"
	if out != want {
		t.Errorf("FormatExplain drifted from the golden rendering.\ngot:\n%s\nwant:\n%s", out, want)
	}
}
