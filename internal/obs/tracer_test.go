package obs

import (
	"reflect"
	"strings"
	"testing"
)

// TestSpanNesting checks parent/child structure and sibling order:
// a(b(c), d) started and ended in the natural order.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer("query")
	a := tr.Start("a")
	b := tr.Start("b")
	c := tr.Start("c")
	c.End()
	b.End()
	d := tr.Start("d")
	d.SetCount("tuples", 42)
	d.End()
	a.End()
	root := tr.Finish()

	want := []string{"query", "a", "b", "c", "d"}
	if got := root.Stages(); !reflect.DeepEqual(got, want) {
		t.Errorf("stages = %v, want %v", got, want)
	}
	if len(root.Children) != 1 || len(root.Children[0].Children) != 2 {
		t.Fatalf("tree shape wrong: %s", root.Format())
	}
	if root.Children[0].Children[0].Name != "b" || root.Children[0].Children[1].Name != "d" {
		t.Errorf("sibling order wrong: %s", root.Format())
	}
	if root.Find("c") == nil || root.Find("c").parent.Name != "b" {
		t.Errorf("c not nested under b: %s", root.Format())
	}
	if root.Find("d").Count("tuples") != 42 {
		t.Errorf("count lost: %v", root.Find("d").Counts)
	}
	for _, name := range want {
		if root.Find(name).Dur < 0 {
			t.Errorf("span %s has negative duration", name)
		}
	}
}

// TestOutOfOrderEnd verifies ending a parent before its child cannot
// wedge the cursor: the next Start still attaches somewhere valid.
func TestOutOfOrderEnd(t *testing.T) {
	tr := NewTracer("query")
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // out of order: b is still open
	b.End()
	s := tr.Start("after")
	s.End()
	root := tr.Finish()
	if root.Find("after") == nil {
		t.Errorf("tracer lost spans after out-of-order end: %s", root.Format())
	}
}

func TestStartAfterFinish(t *testing.T) {
	tr := NewTracer("query")
	tr.Finish()
	s := tr.Start("late")
	s.End()
	if tr.Root().Find("late") == nil {
		t.Error("span started after Finish must attach to the root")
	}
}

// TestNilTracerZeroAlloc: the whole point of the nil-tracer disabled
// state is that instrumented code allocates nothing when tracing is
// off.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("stage")
		sp.SetCount("tuples", 1)
		sp.AddCount("tuples", 1)
		sp.End()
		tr.Root().Find("x")
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestFormatAndExplain(t *testing.T) {
	tr := NewTracer("query")
	g := tr.Start("geo")
	g.SetCount("predicates", 2)
	g.End()
	root := tr.Finish()

	out := FormatExplain(root, []Sample{
		{Name: "mogis_overlay_hits_total", Value: 0},
		{Name: "mogis_geom_clip_total", Value: 0}, // zero and not cache-related: elided
		{Name: "mogis_moft_tuples_scanned_total", Value: 12},
	})
	for _, want := range []string{"query", "└─ geo", "[predicates=2]", "counters:",
		"mogis_overlay_hits_total", "mogis_moft_tuples_scanned_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mogis_geom_clip_total") {
		t.Errorf("zero non-cache counter should be elided:\n%s", out)
	}
}

// TestSpanEvents: point-in-time markers (the engine's "cancel"
// signal) attach to the innermost open span and render in Format.
func TestSpanEvents(t *testing.T) {
	tr := NewTracer("query")
	sp := tr.Start("scan")
	tr.Event("cancel") // lands on the open scan span
	sp.End()
	tr.Event("late") // no open child: lands on the root
	root := tr.Finish()

	scan := root.Find("scan")
	if len(scan.Events) != 1 || scan.Events[0] != "cancel" {
		t.Errorf("scan events = %v, want [cancel]", scan.Events)
	}
	if len(root.Events) != 1 || root.Events[0] != "late" {
		t.Errorf("root events = %v, want [late]", root.Events)
	}
	out := root.Format()
	if !strings.Contains(out, "{cancel}") || !strings.Contains(out, "{late}") {
		t.Errorf("Format missing event markers:\n%s", out)
	}

	var nilTr *Tracer
	nilTr.Event("x") // nil-safe
	var nilSp *Span
	nilSp.AddEvent("x") // nil-safe
}
