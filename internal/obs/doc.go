// Package obs is the engine's observability layer: a dependency-free
// tracing and metrics subsystem threaded through the whole query path
// (parse → plan → overlay lookup → FO evaluation → interpolation →
// aggregation).
//
// Two instruments are provided:
//
//   - Metrics — atomic counters, gauges and histograms registered in a
//     Registry. The package-level Default registry carries the
//     engine's standard instruments (the Std bundle): overlay cache
//     hits/misses, litCache hits/misses and size, geometry predicate
//     evaluations, R-tree node visits, MOFT tuples scanned and queries
//     by paper type (1–8). A registry renders itself as expvar-style
//     JSON (WriteJSON) or Prometheus text format (WritePrometheus).
//
//   - Traces — a Tracer producing nestable spans, one trace per query,
//     attached to the model context (fo.Context.SetTracer). Spans
//     record wall time, tuple counts and parent/child structure;
//     FormatExplain renders a span tree plus counter deltas as the
//     EXPLAIN ANALYZE output of cmd/pietql.
//
// Instrumentation is zero-alloc when disabled: a nil *Tracer returns
// nil *Span values whose methods are no-ops, and counters are single
// atomic adds (see BenchmarkRemark1 in internal/core for the measured
// overhead).
package obs
