package obs

import (
	"fmt"
	"io"
	"sync"
)

// Metrics bundles the engine's standard instruments, resolved against
// one registry. The global Std bundle (bound to Default) is what the
// hot paths in geom, sindex, moft, overlay, core and pietql
// increment; components wanting isolated accounting build their own
// bundle with NewMetrics and inject it (core.Engine.SetMetrics).
type Metrics struct {
	// Section-5 evaluation strategy: precomputed-overlay lookups
	// versus naive geometry fallbacks.
	OverlayHits   *Counter
	OverlayMisses *Counter

	// Engine litCache (per-table interpolated trajectories).
	LitCacheHits    *Counter
	LitCacheMisses  *Counter
	LitCacheObjects *Gauge // cached trajectories across all tables
	LitCacheTables  *Gauge // tables currently cached

	// Geometry predicate evaluations.
	GeomPointInPolygon *Counter
	GeomClip           *Counter
	GeomDistance       *Counter

	// Spatial index and fact-table scan volume.
	SindexNodeVisits  *Counter
	MOFTTuplesScanned *Counter

	// Trajectory-query spatial prefilter: per-table R-tree over
	// trajectory bounding boxes. Candidates survive the envelope test
	// and are evaluated exactly; skipped objects are proven disjoint.
	PrefilterCandidates *Counter
	PrefilterSkipped    *Counter

	// GeoBlocks-style interval cache: memoized per-(table, polygon)
	// InsidePolygonIntervals results.
	IntervalCacheHits      *Counter
	IntervalCacheMisses    *Counter
	IntervalCacheEvictions *Counter
	IntervalCacheEntries   *Gauge // cached (table, polygon) entries

	// GeoBlocks-style pre-aggregated sample grid (internal/agggrid):
	// polygon aggregates answer fully-covered interior cells from
	// per-cell pre-aggregates and refine only boundary cells with exact
	// point-in-polygon tests.
	AggGridBuilds          *Counter
	AggGridQueries         *Counter
	AggGridInteriorCells   *Counter
	AggGridBoundaryCells   *Counter
	AggGridInteriorSamples *Counter // samples accepted without a point-in-polygon test
	AggGridRefinedSamples  *Counter // samples tested exactly in boundary cells
	AggGridMismatches      *Counter // verify-mode divergences from the slow path (must stay 0)
	AggGridTemporalQueries *Counter // non-vacuous windows answered via the per-cell temporal index
	AggGridFringeSamples   *Counter // interior-cell rows examined in fringe time buckets
	AggGridTimeSkips       *Counter // queries answered empty from the snapshot's time extent
	ShardTimeSkips         *Counter // scatter shards skipped for a disjoint time extent

	// Overlay precomputation (most recent build).
	OverlayPairs        *Gauge
	OverlayRelations    *Gauge
	OverlayCells        *Gauge
	OverlayBuildSeconds *Histogram

	// Queries by the paper's Section-3.1 type (index 1..8; index 0 is
	// unused).
	Queries [9]*Counter

	QueryDuration *Histogram

	// Robustness: cancellation, panic isolation and resource budgets.
	QueriesCancelled      *Counter // queries ended by cancel or deadline
	QueryPanics           *Counter // worker panics recovered into QueryPanicError
	BudgetRowsExceeded    *Counter // queries aborted at the scanned-rows budget
	BudgetResultsExceeded *Counter // queries aborted at the result-size budget
}

// NewMetrics registers (or resolves) the standard instruments in r.
func NewMetrics(r *Registry) *Metrics {
	m := &Metrics{
		OverlayHits:   r.Counter("mogis_overlay_hits_total", "geometric predicates answered from the precomputed overlay"),
		OverlayMisses: r.Counter("mogis_overlay_misses_total", "geometric predicates computed naively (no overlay attached)"),

		LitCacheHits:    r.Counter("mogis_litcache_hits_total", "trajectory-cache lookups served from the engine litCache"),
		LitCacheMisses:  r.Counter("mogis_litcache_misses_total", "trajectory-cache lookups that had to interpolate a table"),
		LitCacheObjects: r.Gauge("mogis_litcache_objects", "interpolated trajectories currently cached"),
		LitCacheTables:  r.Gauge("mogis_litcache_tables", "fact tables with a cached trajectory set"),

		GeomPointInPolygon: r.Counter("mogis_geom_point_in_polygon_total", "point-in-polygon locations evaluated"),
		GeomClip:           r.Counter("mogis_geom_clip_total", "convex ring clips evaluated"),
		GeomDistance:       r.Counter("mogis_geom_distance_total", "distance predicates evaluated"),

		SindexNodeVisits:  r.Counter("mogis_sindex_node_visits_total", "R-tree nodes visited during searches"),
		MOFTTuplesScanned: r.Counter("mogis_moft_tuples_scanned_total", "MOFT tuples delivered by scans"),

		PrefilterCandidates: r.Counter("mogis_prefilter_candidates_total", "objects surviving the trajectory-bbox prefilter"),
		PrefilterSkipped:    r.Counter("mogis_prefilter_skipped_total", "objects skipped by the trajectory-bbox prefilter"),

		IntervalCacheHits:      r.Counter("mogis_intervalcache_hits_total", "polygon queries answered from the interval cache"),
		IntervalCacheMisses:    r.Counter("mogis_intervalcache_misses_total", "polygon queries that computed inside-intervals"),
		IntervalCacheEvictions: r.Counter("mogis_intervalcache_evictions_total", "least-recently-used interval-cache entries evicted at the cap"),
		IntervalCacheEntries:   r.Gauge("mogis_intervalcache_entries", "memoized (table, polygon) interval sets"),

		AggGridBuilds:          r.Counter("mogis_agggrid_builds_total", "pre-aggregated sample grids built"),
		AggGridQueries:         r.Counter("mogis_agggrid_queries_total", "polygon aggregates answered by the pre-aggregated grid"),
		AggGridInteriorCells:   r.Counter("mogis_agggrid_interior_cells_total", "fully-covered cells aggregated without refinement"),
		AggGridBoundaryCells:   r.Counter("mogis_agggrid_boundary_cells_total", "boundary cells refined with exact point-in-polygon tests"),
		AggGridInteriorSamples: r.Counter("mogis_agggrid_interior_samples_total", "samples accepted from interior cells without a point-in-polygon test"),
		AggGridRefinedSamples:  r.Counter("mogis_agggrid_refined_samples_total", "boundary-cell samples tested with exact point-in-polygon"),
		AggGridMismatches:      r.Counter("mogis_agggrid_mismatches_total", "verify-mode grid results that diverged from the slow path"),
		AggGridTemporalQueries: r.Counter("mogis_agggrid_temporal_queries_total", "non-vacuous time windows answered via the per-cell temporal index"),
		AggGridFringeSamples:   r.Counter("mogis_agggrid_fringe_samples_total", "interior-cell rows examined one by one in fringe time buckets"),
		AggGridTimeSkips:       r.Counter("mogis_agggrid_time_skips_total", "interval queries answered empty because the window misses the snapshot's time extent"),
		ShardTimeSkips:         r.Counter("mogis_shard_time_skips_total", "scatter shards skipped because their time extent misses the query window"),

		OverlayPairs:        r.Gauge("mogis_overlay_pairs", "layer pairs in the most recent overlay build"),
		OverlayRelations:    r.Gauge("mogis_overlay_relations", "directed relation entries in the most recent overlay build"),
		OverlayCells:        r.Gauge("mogis_overlay_cells", "polygon-polygon intersection cells in the most recent overlay build"),
		OverlayBuildSeconds: r.Histogram("mogis_overlay_build_seconds", "wall time of overlay precomputation", nil),

		QueryDuration: r.Histogram("mogis_query_duration_seconds", "wall time of Piet-QL query evaluation", nil),

		QueriesCancelled:      r.Counter("mogis_queries_cancelled_total", "queries ended early by context cancel or deadline"),
		QueryPanics:           r.Counter("mogis_query_panics_total", "worker panics recovered into QueryPanicError"),
		BudgetRowsExceeded:    r.Counter("mogis_budget_rows_exceeded_total", "queries aborted at the max-rows-scanned budget"),
		BudgetResultsExceeded: r.Counter("mogis_budget_results_exceeded_total", "queries aborted at the max-result-size budget"),
	}
	// One literal per series: metric names must be untyped constants
	// (enforced by moglint's metricname analyzer) so the full series
	// set is greppable and collision-checked statically.
	const queriesHelp = "queries evaluated, by paper query type (1-8)"
	m.Queries[1] = r.Counter(`mogis_queries_total{type="1"}`, queriesHelp)
	m.Queries[2] = r.Counter(`mogis_queries_total{type="2"}`, queriesHelp)
	m.Queries[3] = r.Counter(`mogis_queries_total{type="3"}`, queriesHelp)
	m.Queries[4] = r.Counter(`mogis_queries_total{type="4"}`, queriesHelp)
	m.Queries[5] = r.Counter(`mogis_queries_total{type="5"}`, queriesHelp)
	m.Queries[6] = r.Counter(`mogis_queries_total{type="6"}`, queriesHelp)
	m.Queries[7] = r.Counter(`mogis_queries_total{type="7"}`, queriesHelp)
	m.Queries[8] = r.Counter(`mogis_queries_total{type="8"}`, queriesHelp)
	return m
}

// Std is the global instrument bundle, registered in Default.
var Std = NewMetrics(Default)

// Query returns the counter for the given paper query type, or nil
// for an out-of-range type (nil counters are safe to increment).
func (m *Metrics) Query(typ int) *Counter {
	if m == nil || typ < 1 || typ > 8 {
		return nil
	}
	return m.Queries[typ]
}

// --- logging ----------------------------------------------------------

var (
	logMu sync.Mutex
	logW  io.Writer = io.Discard
)

// SetLogOutput directs the package's progress log (overlay builds,
// cache resets) to w; nil silences it again. Returns the previous
// writer.
func SetLogOutput(w io.Writer) io.Writer {
	logMu.Lock()
	defer logMu.Unlock()
	prev := logW
	if w == nil {
		w = io.Discard
	}
	logW = w
	if prev == io.Discard {
		return nil
	}
	return prev
}

// Logf writes one progress line to the configured log output.
func Logf(format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	if logW == io.Discard {
		return
	}
	fmt.Fprintf(logW, "obs: "+format+"\n", args...)
}
