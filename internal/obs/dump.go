package obs

import (
	"io"
	"sync"
)

// MetricsDump returns a flush function that writes the Default
// registry in Prometheus text format to w at most once. CLIs that
// offer a -metrics flag need the dump on every path out of the
// process — a deferred call for normal returns and an explicit call
// before os.Exit (which skips defers) — and the once-guard lets them
// register both without printing the metrics twice.
func MetricsDump(w io.Writer) func() {
	var once sync.Once
	return func() {
		once.Do(func() { _ = Default.WritePrometheus(w) })
	}
}
