package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations
// (cumulative-bucket Prometheus semantics). Buckets are upper bounds
// in increasing order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64  // float64 bits, CAS-updated
	n      atomic.Int64
}

// DefBuckets are the default duration buckets in seconds (1µs .. 10s,
// decades with a 1-2.5-5 progression).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string // may carry a {label="value"} suffix
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// family strips the label suffix: `x_total{type="4"}` → `x_total`.
func (m metric) family() string {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		return m.name[:i]
	}
	return m.name
}

// Registry is a set of named metrics. The zero value is not usable;
// construct with NewRegistry. The package-level Default registry holds
// the engine's standard instruments, but any component can carry its
// own Registry (see NewMetrics).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry the Std instrument bundle is
// registered in.
var Default = NewRegistry()

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter returns the counter registered under name, creating it with
// the given help text on first use. The name may carry a single
// Prometheus label pair, e.g. `mogis_queries_total{type="4"}`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (DefBuckets when nil) on first
// use. Histogram names must not carry label suffixes.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("obs: histogram %q must not carry labels", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m.h
	}
	m := &metric{name: name, help: help, kind: kindHistogram, h: newHistogram(buckets)}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.h
}

// Reset zeroes every registered metric (histogram observations are
// dropped). Intended for tests and long-lived processes that dump and
// restart their accounting.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			m.c.v.Store(0)
		case kindGauge:
			m.g.v.Store(0)
		case kindHistogram:
			for i := range m.h.counts {
				m.h.counts[i].Store(0)
			}
			m.h.sum.Store(0)
			m.h.n.Store(0)
		}
	}
}

// Sample is one named metric value.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot is a point-in-time capture of every scalar metric (counter
// and gauge values; histograms contribute their _count and _sum).
type Snapshot struct {
	names []string
	vals  map[string]float64
}

// Snapshot captures the current metric values in registration order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{vals: make(map[string]float64, len(r.metrics))}
	add := func(name string, v float64) {
		s.names = append(s.names, name)
		s.vals[name] = v
	}
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			add(m.name, float64(m.c.Value()))
		case kindGauge:
			add(m.name, float64(m.g.Value()))
		case kindHistogram:
			add(m.name+"_count", float64(m.h.Count()))
			add(m.name+"_sum", m.h.Sum())
		}
	}
	return s
}

// Value returns the snapshot value of a metric (0 when absent).
func (s Snapshot) Value(name string) float64 { return s.vals[name] }

// Since returns s minus earlier, one sample per metric of s in
// registration order. Metrics absent from earlier diff against zero.
func (s Snapshot) Since(earlier Snapshot) []Sample {
	out := make([]Sample, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, Sample{Name: name, Value: s.vals[name] - earlier.vals[name]})
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Metrics sharing a family (same
// name, different labels) must be registered consecutively.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	lastFamily := ""
	for _, m := range r.metrics {
		fam := m.family()
		if fam != lastFamily {
			lastFamily = fam
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, m.help); err != nil {
					return err
				}
			}
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum); err != nil {
					return err
				}
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", m.name, m.h.Sum(), m.name, m.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// WriteJSON renders the registry as an expvar-style JSON object of
// scalar values (histograms contribute _count and _sum members).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	var sb strings.Builder
	sb.WriteString("{")
	for i, name := range snap.names {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "\n  %q: %g", name, snap.vals[name])
	}
	sb.WriteString("\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
