package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this doubles as the
// data-race check for the atomic instruments.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if want := 0.25 * workers * iters; h.Sum() != want {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

// TestPrometheusGolden pins the exact Prometheus text format emitted
// for a small registry.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mogis_test_hits_total", "test hits").Add(3)
	r.Counter(`mogis_test_queries_total{type="1"}`, "queries by type").Add(2)
	r.Counter(`mogis_test_queries_total{type="2"}`, "queries by type").Add(5)
	r.Gauge("mogis_test_cached", "cached items").Set(7)
	h := r.Histogram("mogis_test_seconds", "durations", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mogis_test_hits_total test hits
# TYPE mogis_test_hits_total counter
mogis_test_hits_total 3
# HELP mogis_test_queries_total queries by type
# TYPE mogis_test_queries_total counter
mogis_test_queries_total{type="1"} 2
mogis_test_queries_total{type="2"} 5
# HELP mogis_test_cached cached items
# TYPE mogis_test_cached gauge
mogis_test_cached 7
# HELP mogis_test_seconds durations
# TYPE mogis_test_seconds histogram
mogis_test_seconds_bucket{le="0.1"} 1
mogis_test_seconds_bucket{le="1"} 2
mogis_test_seconds_bucket{le="+Inf"} 3
mogis_test_seconds_sum 2.55
mogis_test_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Gauge("b", "").Set(-2)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	want := map[string]float64{"a_total": 4, "b": -2, "c_seconds_count": 1, "c_seconds_sum": 0.5}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %g, want %g", k, got[k], v)
		}
	}
}

func TestSnapshotSince(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(10)
	before := r.Snapshot()
	c.Add(5)
	delta := r.Snapshot().Since(before)
	if len(delta) != 1 || delta[0].Name != "c_total" || delta[0].Value != 5 {
		t.Errorf("delta = %+v", delta)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	c.Inc()
	g.Set(9)
	h.Observe(1)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("reset left c=%d g=%d hc=%d hs=%g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

// TestNilInstruments verifies nil counters/gauges/histograms (the
// disabled state the Metrics bundle hands out for unknown query
// types) are safe no-ops.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}
	m := NewMetrics(NewRegistry())
	m.Query(0).Inc()
	m.Query(9).Inc()
	if m.Query(4) == nil {
		t.Error("Query(4) must resolve")
	}
}
