package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records one trace: a tree of nested spans for a single
// query. A nil *Tracer is the disabled state — Start returns a nil
// *Span whose methods are no-ops, so instrumented code pays nothing
// (no allocations, no locking) when tracing is off.
//
// A tracer is safe for use from multiple goroutines, but the span
// stack is a single cursor: the intended use is one tracer per query
// evaluated on one goroutine.
type Tracer struct {
	mu   sync.Mutex
	root *Span
	cur  *Span
}

// NewTracer creates a tracer whose root span has the given name and
// starts now.
func NewTracer(name string) *Tracer {
	t := &Tracer{}
	t.root = &Span{Name: name, start: time.Now(), tracer: t}
	t.cur = t.root
	return t
}

// postFinishStarts counts Start calls on a tracer whose trace already
// finished — an instrumentation bug (a goroutine outliving its query's
// bracket, or a tracer reused across queries). The span is dropped
// rather than silently grafted onto the sealed trace.
var postFinishStarts = Default.Counter("mogis_tracer_post_finish_starts_total",
	"span starts on an already-finished tracer (instrumentation bug; span dropped)")

// Start opens a child span of the innermost open span. Nil-safe: a
// nil tracer returns a nil span. Starting a span on a tracer whose
// Finish already ran is an error-counted no-op: the sealed trace is
// left untouched, postFinishStarts is incremented, and the returned
// nil span absorbs the caller's End/SetCount calls.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil { // after Finish: the trace is sealed
		postFinishStarts.Inc()
		return nil
	}
	s := &Span{Name: name, start: time.Now(), parent: t.cur, tracer: t}
	t.cur.Children = append(t.cur.Children, s)
	t.cur = s
	return s
}

// Root returns the root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends every still-open span including the root and returns
// the root.
func (t *Tracer) Finish() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.cur != nil {
		t.cur.end()
		t.cur = t.cur.parent
	}
	return t.root
}

// SpanCount is one named count recorded on a span (e.g. tuples
// produced by a stage).
type SpanCount struct {
	Key string
	N   int64
}

// Span is one timed stage of a trace.
type Span struct {
	Name     string
	Dur      time.Duration
	Counts   []SpanCount
	Events   []string // point-in-time markers (e.g. "cancel")
	Children []*Span

	start  time.Time
	parent *Span
	tracer *Tracer
	ended  bool
}

// End closes the span, recording its wall time and popping it off the
// tracer's span stack. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	s.end()
	// Pop to the nearest still-open ancestor so out-of-order ends
	// cannot wedge the cursor.
	if t.cur == s {
		t.cur = s.parent
	}
}

func (s *Span) end() {
	if !s.ended {
		s.ended = true
		s.Dur = time.Since(s.start)
	}
}

// SetCount records (or overwrites) a named count on the span.
// Nil-safe.
func (s *Span) SetCount(key string, n int64) {
	if s == nil {
		return
	}
	for i := range s.Counts {
		if s.Counts[i].Key == key {
			s.Counts[i].N = n
			return
		}
	}
	s.Counts = append(s.Counts, SpanCount{Key: key, N: n})
}

// AddCount adds n to a named count on the span. Nil-safe.
func (s *Span) AddCount(key string, n int64) {
	if s == nil {
		return
	}
	for i := range s.Counts {
		if s.Counts[i].Key == key {
			s.Counts[i].N += n
			return
		}
	}
	s.Counts = append(s.Counts, SpanCount{Key: key, N: n})
}

// AddEvent records a point-in-time marker on the span (rendered as
// {name} by Format). Nil-safe.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, name)
}

// Event records a marker on the innermost open span — the tracer-level
// hook for paths that observe an event (a cancel, a budget abort)
// without holding the span that is current. Nil-safe.
func (t *Tracer) Event(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.cur
	if s == nil {
		s = t.root
	}
	s.Events = append(s.Events, name)
}

// Count returns the value of a named count (0 when absent). Nil-safe.
func (s *Span) Count(key string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counts {
		if c.Key == key {
			return c.N
		}
	}
	return 0
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Stages returns the span names of the subtree in depth-first
// pre-order — the stage sequence a test can assert against.
func (s *Span) Stages() []string {
	if s == nil {
		return nil
	}
	out := []string{s.Name}
	for _, c := range s.Children {
		out = append(out, c.Stages()...)
	}
	return out
}

// Format renders the span tree with per-stage timings and counts:
//
//	query                                 1.23ms
//	├─ parse                              12µs
//	└─ geo                                456µs  [predicates=2 bindings=4]
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.format(&sb, "", "")
	return sb.String()
}

func (s *Span) format(sb *strings.Builder, prefix, childPrefix string) {
	label := prefix + s.Name
	fmt.Fprintf(sb, "%-40s %10s", label, formatDur(s.Dur))
	if len(s.Counts) > 0 {
		sb.WriteString("  [")
		for i, c := range s.Counts {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%s=%d", c.Key, c.N)
		}
		sb.WriteByte(']')
	}
	for _, ev := range s.Events {
		fmt.Fprintf(sb, "  {%s}", ev)
	}
	sb.WriteByte('\n')
	for i, c := range s.Children {
		if i == len(s.Children)-1 {
			c.format(sb, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.format(sb, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FormatExplain renders an EXPLAIN ANALYZE report: the span tree
// followed by the counter deltas observed while the trace ran. Zero
// deltas are elided except for the overlay and litCache cache
// counters, which the report always shows (they are the paper's
// Section-5 evaluation-strategy signal).
func FormatExplain(root *Span, delta []Sample) string {
	var sb strings.Builder
	sb.WriteString(root.Format())
	if len(delta) == 0 {
		return sb.String()
	}
	sb.WriteString("counters:\n")
	shown := make([]Sample, 0, len(delta))
	for _, d := range delta {
		if d.Value != 0 || strings.Contains(d.Name, "overlay_hits") ||
			strings.Contains(d.Name, "overlay_misses") || strings.Contains(d.Name, "litcache") {
			shown = append(shown, d)
		}
	}
	sort.Slice(shown, func(i, j int) bool { return shown[i].Name < shown[j].Name })
	for _, d := range shown {
		fmt.Fprintf(&sb, "  %-44s %+g\n", d.Name, d.Value)
	}
	return sb.String()
}
