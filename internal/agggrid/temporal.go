package agggrid

import "context"

// The per-cell temporal index turns region×interval aggregates from
// O(rows-in-cell) time filters into pre-aggregated lookups, in the
// spirit of the aRB-tree's per-node time aggregates: each cell's rows
// are re-listed in (instant, row) order and partitioned into
// fixed-width time buckets with a per-cell prefix sum over bucket
// counts and one object-presence bitset per (cell, bucket). An
// interior cell then answers a count over [lo, hi] with two binary
// searches (one per fringe bucket) and a prefix-sum subtraction, and
// an object query ORs the fully covered buckets' bitsets, refining
// only the two fringe buckets row by row. Boundary cells binary-search
// the same time-sorted row list to confine the exact point-in-polygon
// refinement to the query window.

const (
	// defaultTimeBuckets seeds the bucket count when density gives no
	// signal (tiny cells).
	defaultTimeBuckets = 16
	// maxTimeBuckets caps the per-cell bucket count.
	maxTimeBuckets = 256
	// maxBucketPresenceWords caps the total memory of the per-bucket
	// presence bitsets (uint64 words); the bucket count is halved
	// until the index fits.
	maxBucketPresenceWords = 1 << 22
	// targetPerBucket is the row count the density seed aims at per
	// (populated cell, bucket): small enough that fringe-bucket
	// refinement touches a handful of rows.
	targetPerBucket = 4
)

// pickBuckets resolves the configured bucket count: negative disables
// the index, positive forces a count, zero auto-sizes from the time
// extent and sample density, widened by the query-window hint
// (GeoBlocks-style query-driven adaptation: a typical window should
// span several buckets so most of it is answered from pre-aggregates).
func (g *Grid) pickBuckets(cfg Config) int {
	if cfg.TimeBuckets < 0 || len(g.rows) == 0 {
		return 0
	}
	nb := cfg.TimeBuckets
	if nb == 0 {
		populated := 0
		for c := 0; c < g.nx*g.ny; c++ {
			if g.cellStart[c+1] > g.cellStart[c] {
				populated++
			}
		}
		nb = defaultTimeBuckets
		if populated > 0 {
			if byDensity := len(g.rows) / populated / targetPerBucket; byDensity > nb {
				nb = byDensity
			}
		}
		if span := g.maxT - g.minT; cfg.WindowHint > 0 && span > 0 {
			// Aim the bucket width at a quarter of the typical query
			// window, so the two fringe buckets cover at most half of
			// a typical interval.
			w := cfg.WindowHint / 4
			if w < 1 {
				w = 1
			}
			if byWindow := int(span/w) + 1; byWindow > nb {
				nb = byWindow
			}
		}
	}
	if nb > maxTimeBuckets {
		nb = maxTimeBuckets
	}
	if nb < 1 {
		nb = 1
	}
	// Halve until the per-bucket presence bitsets fit the memory cap;
	// nb == 1 always fits (it mirrors the spatial presence bitsets).
	for nb > 1 && g.nx*g.ny*nb*g.words > maxBucketPresenceWords {
		nb /= 2
	}
	return nb
}

// buildTemporal fills the temporal index. cellOfRow is the build's
// pass-1 scratch mapping each row to its cell.
func (g *Grid) buildTemporal(ctx context.Context, cfg Config, cellOfRow []int32) error {
	nb := g.pickBuckets(cfg)
	if nb <= 0 {
		return nil
	}
	cells := g.nx * g.ny
	g.nb = nb
	g.bktW = (g.maxT-g.minT)/int64(nb) + 1
	g.trows = make([]int32, len(g.rows))
	g.bktOff = make([]int32, cells*(nb+1))
	g.bktPresence = make([]uint64, cells*nb*g.words)
	cursor := make([]int32, cells)
	copy(cursor, g.cellStart[:cells])
	cols := g.cols
	// Stream the rows in global (instant, row) order: the per-cell
	// cursors keep each cell's slice of trows time-sorted without a
	// per-cell sort, and each row closes its bucket's count and
	// presence bits on the way through.
	for k, row := range cols.TimeOrder() {
		if k%4096 == 4095 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c := int(cellOfRow[row])
		g.trows[cursor[c]] = row
		cursor[c]++
		b := int((cols.T[row] - g.minT) / g.bktW)
		g.bktOff[c*(nb+1)+b+1]++
		o := cols.Obj[row]
		g.bktPresence[(c*nb+b)*g.words+int(o>>6)] |= 1 << uint(o&63)
	}
	// Per-cell prefix sums turn bucket counts into offsets into the
	// cell's trows slice: bucket b of cell c is
	// trows[cellStart[c]:][bktOff[base+b]:bktOff[base+b+1]].
	for c := 0; c < cells; c++ {
		base := c * (nb + 1)
		for b := 0; b < nb; b++ {
			g.bktOff[base+b+1] += g.bktOff[base+b]
		}
	}
	return nil
}

// TimeBuckets returns the per-cell temporal bucket count, 0 when the
// temporal index is absent.
func (g *Grid) TimeBuckets() int { return g.nb }

// cellTRows returns cell c's rows in (instant, row) order.
func (g *Grid) cellTRows(c int32) []int32 {
	return g.trows[g.cellStart[c]:g.cellStart[c+1]]
}

// searchT returns the first index in rows (time-sorted) whose instant
// is >= t.
func (g *Grid) searchT(rows []int32, t int64) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if g.cols.T[rows[m]] < t {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// searchAfter returns the first index in rows (time-sorted) whose
// instant is > t. Using a strict predicate instead of searching t+1
// avoids overflow at the extremes.
func (g *Grid) searchAfter(rows []int32, t int64) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if g.cols.T[rows[m]] <= t {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// temporalCount counts cell c's rows with instant in [lo, hi] using
// the temporal index: two binary searches, each confined to one fringe
// bucket, and a prefix-sum subtraction. Requires g.nb > 0.
func (g *Grid) temporalCount(c int32, lo, hi int64) int {
	if lo < g.minT {
		lo = g.minT
	}
	if hi > g.maxT {
		hi = g.maxT
	}
	if lo > hi {
		return 0
	}
	base := int(c) * (g.nb + 1)
	rows := g.cellTRows(c)
	bLo := int((lo - g.minT) / g.bktW)
	bHi := int((hi - g.minT) / g.bktW)
	// Rows in buckets below bLo all precede lo, so the count of rows
	// with instant < lo is the bucket prefix plus a search inside the
	// fringe bucket alone; symmetrically for instant <= hi.
	lower := int(g.bktOff[base+bLo]) + g.searchT(rows[g.bktOff[base+bLo]:g.bktOff[base+bLo+1]], lo)
	upper := int(g.bktOff[base+bHi]) + g.searchAfter(rows[g.bktOff[base+bHi]:g.bktOff[base+bHi+1]], hi)
	return upper - lower
}

// temporalObjects ORs into set the presence bits of cell c's rows with
// instant in [lo, hi]: fully covered buckets contribute their
// pre-aggregated bitset, only the fringe buckets are filtered row by
// row. Returns the number of in-window rows and adds the fringe rows
// examined to st. Requires g.nb > 0.
func (g *Grid) temporalObjects(c int32, lo, hi int64, set []uint64, st *Stats) int64 {
	if lo < g.minT {
		lo = g.minT
	}
	if hi > g.maxT {
		hi = g.maxT
	}
	if lo > hi {
		return 0
	}
	cols := g.cols
	base := int(c) * (g.nb + 1)
	rows := g.cellTRows(c)
	bLo := int((lo - g.minT) / g.bktW)
	bHi := int((hi - g.minT) / g.bktW)
	accepted := int64(0)
	for b := bLo; b <= bHi; b++ {
		cnt := g.bktOff[base+b+1] - g.bktOff[base+b]
		if cnt == 0 {
			continue
		}
		if bStart := g.minT + int64(b)*g.bktW; lo <= bStart && bStart+g.bktW-1 <= hi {
			blk := g.bktPresence[(int(c)*g.nb+b)*g.words : (int(c)*g.nb+b+1)*g.words]
			for w, bitsw := range blk {
				set[w] |= bitsw
			}
			accepted += int64(cnt)
			continue
		}
		for _, row := range rows[g.bktOff[base+b]:g.bktOff[base+b+1]] {
			st.Rows++
			if t := cols.T[row]; t >= lo && t <= hi {
				o := cols.Obj[row]
				set[o>>6] |= 1 << uint(o&63)
				accepted++
			}
		}
	}
	return accepted
}
