package agggrid

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
)

// randomTable builds a table with objects wandering over [0,100]².
func randomTable(t *testing.T, objects, samples int, seed int64) *moft.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := moft.New("FMtest")
	for o := 0; o < objects; o++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		for s := 0; s < samples; s++ {
			tbl.Add(moft.Oid(o+1), timedim.Instant(s*60), x, y)
			x += rng.Float64()*8 - 4
			y += rng.Float64()*8 - 4
			if x < 0 {
				x = 0
			}
			if x > 100 {
				x = 100
			}
			if y < 0 {
				y = 0
			}
			if y > 100 {
				y = 100
			}
		}
	}
	return tbl
}

func naiveCount(cols *moft.Columns, pg geom.Polygon, lo, hi int64) int {
	n := 0
	for i := 0; i < cols.Len(); i++ {
		if cols.T[i] < lo || cols.T[i] > hi {
			continue
		}
		if pg.ContainsPoint(geom.Pt(cols.X[i], cols.Y[i])) {
			n++
		}
	}
	return n
}

func naiveObjects(cols *moft.Columns, pg geom.Polygon, lo, hi int64) []moft.Oid {
	var out []moft.Oid
	for i := 0; i < cols.NumObjects(); i++ {
		rlo, rhi := cols.ObjectRange(i)
		for r := rlo; r < rhi; r++ {
			if cols.T[r] < lo || cols.T[r] > hi {
				continue
			}
			if pg.ContainsPoint(geom.Pt(cols.X[r], cols.Y[r])) {
				out = append(out, cols.Oids[i])
				break
			}
		}
	}
	return out
}

func eqOids(a, b []moft.Oid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testPolygons exercises convex, concave and holed shapes plus
// degenerate coverage cases (tiny polygon inside one cell, polygon
// covering the whole extent, polygon outside the extent).
func testPolygons() map[string]geom.Polygon {
	return map[string]geom.Polygon{
		"convex": {Shell: geom.Ring{
			geom.Pt(20, 20), geom.Pt(70, 25), geom.Pt(80, 60), geom.Pt(45, 85), geom.Pt(15, 55),
		}},
		"concave": {Shell: geom.Ring{
			geom.Pt(10, 10), geom.Pt(90, 10), geom.Pt(90, 90), geom.Pt(50, 30), geom.Pt(10, 90),
		}},
		"holed": {
			Shell: geom.Ring{geom.Pt(10, 10), geom.Pt(90, 10), geom.Pt(90, 90), geom.Pt(10, 90)},
			Holes: []geom.Ring{{geom.Pt(40, 40), geom.Pt(60, 40), geom.Pt(60, 60), geom.Pt(40, 60)}},
		},
		"tiny":    {Shell: geom.Ring{geom.Pt(50, 50), geom.Pt(50.5, 50), geom.Pt(50.5, 50.5), geom.Pt(50, 50.5)}},
		"all":     {Shell: geom.Ring{geom.Pt(-10, -10), geom.Pt(110, -10), geom.Pt(110, 110), geom.Pt(-10, 110)}},
		"outside": {Shell: geom.Ring{geom.Pt(200, 200), geom.Pt(210, 200), geom.Pt(210, 210), geom.Pt(200, 210)}},
	}
}

// TestExactIdentity is the package-level identity gate: for every
// polygon shape and time window, the grid answers match a naive full
// scan exactly.
func TestExactIdentity(t *testing.T) {
	tbl := randomTable(t, 60, 50, 1)
	cols := tbl.Columns()
	g := Build(cols, Config{})
	lo, hi, _ := cols.TimeSpan()
	windows := map[string][2]int64{
		"vacuous": {int64(lo), int64(hi)},
		"partial": {int64(lo) + 300, int64(hi) - 600},
		"instant": {int64(lo) + 600, int64(lo) + 600},
		"empty":   {int64(hi) + 100, int64(hi) + 200},
	}
	for pname, pg := range testPolygons() {
		for wname, w := range windows {
			wantN := naiveCount(cols, pg, w[0], w[1])
			if gotN := g.CountSamples(pg, w[0], w[1], nil); gotN != wantN {
				t.Errorf("%s/%s: CountSamples = %d, naive = %d", pname, wname, gotN, wantN)
			}
			wantO := naiveObjects(cols, pg, w[0], w[1])
			if gotO := g.ObjectsSampled(pg, w[0], w[1], nil); !eqOids(gotO, wantO) {
				t.Errorf("%s/%s: ObjectsSampled = %v, naive = %v", pname, wname, gotO, wantO)
			}
		}
	}
}

// TestExactIdentityForcedGrids re-runs the identity gate across grid
// resolutions, including degenerate 1×1 and asymmetric grids.
func TestExactIdentityForcedGrids(t *testing.T) {
	tbl := randomTable(t, 20, 30, 2)
	cols := tbl.Columns()
	pg := testPolygons()["concave"]
	lo, hi, _ := cols.TimeSpan()
	want := naiveCount(cols, pg, int64(lo), int64(hi))
	for _, cfg := range []Config{{NX: 1, NY: 1}, {NX: 2, NY: 7}, {NX: 64, NY: 64}, {NX: 3, NY: 1}} {
		g := Build(cols, cfg)
		if got := g.CountSamples(pg, int64(lo), int64(hi), nil); got != want {
			t.Errorf("grid %dx%d: CountSamples = %d, want %d", cfg.NX, cfg.NY, got, want)
		}
	}
}

// TestInteriorCellsUsed asserts the acceleration actually engages: on
// a large polygon most covered cells are interior and most samples are
// accepted without a point-in-polygon test.
func TestInteriorCellsUsed(t *testing.T) {
	tbl := randomTable(t, 60, 50, 3)
	cols := tbl.Columns()
	g := Build(cols, Config{NX: 32, NY: 32})
	lo, hi, _ := cols.TimeSpan()
	met := obs.NewMetrics(obs.NewRegistry())
	pg := testPolygons()["convex"]
	g.CountSamples(pg, int64(lo), int64(hi), met)
	interior := met.AggGridInteriorCells.Value()
	boundary := met.AggGridBoundaryCells.Value()
	if interior == 0 {
		t.Fatalf("no interior cells (boundary=%d); acceleration never engaged", boundary)
	}
	if met.AggGridInteriorSamples.Value() <= met.AggGridRefinedSamples.Value() {
		t.Errorf("interior samples %d <= refined samples %d; expected pre-aggregation to dominate",
			met.AggGridInteriorSamples.Value(), met.AggGridRefinedSamples.Value())
	}
	if met.AggGridQueries.Value() != 1 {
		t.Errorf("queries counter = %d, want 1", met.AggGridQueries.Value())
	}
}

// TestEmptyTable checks the degenerate grids.
func TestEmptyTable(t *testing.T) {
	tbl := moft.New("FMempty")
	g := Build(tbl.Columns(), Config{})
	pg := testPolygons()["all"]
	if got := g.CountSamples(pg, 0, 100, nil); got != 0 {
		t.Errorf("empty table CountSamples = %d", got)
	}
	if got := g.ObjectsSampled(pg, 0, 100, nil); got != nil {
		t.Errorf("empty table ObjectsSampled = %v", got)
	}

	// Single point: degenerate (zero-area) extent.
	tbl2 := moft.New("FMpoint")
	tbl2.Add(1, 0, 5, 5)
	g2 := Build(tbl2.Columns(), Config{})
	sq := geom.Polygon{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}}
	if got := g2.CountSamples(sq, 0, 100, nil); got != 1 {
		t.Errorf("point table CountSamples = %d, want 1", got)
	}
}

// TestQueryAllocs is the allocation-regression gate for the
// grid-accelerated path: per-query allocations must stay bounded by a
// small constant (the cover slices and the bitset), never per-sample.
func TestQueryAllocs(t *testing.T) {
	tbl := randomTable(t, 100, 100, 4) // 10k samples
	cols := tbl.Columns()
	g := Build(cols, Config{})
	pg := testPolygons()["convex"]
	lo, hi, _ := cols.TimeSpan()
	g.CountSamples(pg, int64(lo), int64(hi), nil) // warm

	allocs := testing.AllocsPerRun(20, func() {
		g.CountSamples(pg, int64(lo), int64(hi), nil)
	})
	if allocs > 32 {
		t.Errorf("CountSamples allocates %.0f times per query; want <= 32 (per-sample allocation regression?)", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		g.ObjectsSampled(pg, int64(lo), int64(hi), nil)
	})
	if allocs > 40 {
		t.Errorf("ObjectsSampled allocates %.0f times per query; want <= 40 (per-sample allocation regression?)", allocs)
	}
}
