package agggrid

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/moft"
)

// randomConvexPolygon builds a convex polygon from random points in
// [0,100]² (vertices sorted by angle around their centroid), so Cover
// classification and point-in-polygon agree for any vertex draw.
func randomConvexPolygon(rng *rand.Rand) geom.Polygon {
	n := 3 + rng.Intn(5)
	pts := make([]geom.Point, n)
	var cx, cy float64
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		cx += pts[i].X
		cy += pts[i].Y
	}
	cx /= float64(n)
	cy /= float64(n)
	sort.Slice(pts, func(i, j int) bool {
		return math.Atan2(pts[i].Y-cy, pts[i].X-cx) < math.Atan2(pts[j].Y-cy, pts[j].X-cx)
	})
	return geom.Polygon{Shell: geom.Ring(pts)}
}

// fuzzWindow draws a query window: mostly random sub-intervals of the
// extent (with slack past both ends), sprinkled with degenerate shapes
// — instants, inverted windows, and windows entirely off the extent.
func fuzzWindow(rng *rand.Rand, lo, hi int64) (int64, int64) {
	span := hi - lo
	switch rng.Intn(10) {
	case 0: // instant
		t := lo + rng.Int63n(span+1)
		return t, t
	case 1: // inverted: must answer empty
		t := lo + rng.Int63n(span+1)
		return t + 1 + rng.Int63n(100), t
	case 2: // entirely before the extent
		return lo - 500, lo - 1 - rng.Int63n(100)
	case 3: // entirely after the extent
		return hi + 1 + rng.Int63n(100), hi + 500
	case 4: // vacuous with slack
		return lo - rng.Int63n(200), hi + rng.Int63n(200)
	default:
		a := lo - 100 + rng.Int63n(span+200)
		b := lo - 100 + rng.Int63n(span+200)
		if a > b {
			a, b = b, a
		}
		return a, b
	}
}

// TestTemporalFuzzIdentity is the satellite fuzz gate: random convex
// polygons × random windows (including instants, inverted, vacuous and
// off-extent windows) across forced bucket counts 1, 16 and 256, the
// adaptive default, the disabled index, and an asymmetric grid — every
// answer must match the naive full scan exactly.
func TestTemporalFuzzIdentity(t *testing.T) {
	tbl := randomTable(t, 40, 60, 7)
	cols := tbl.Columns()
	lo, hi, _ := cols.TimeSpan()
	configs := []Config{
		{TimeBuckets: 1},
		{TimeBuckets: 16},
		{TimeBuckets: 256},
		{TimeBuckets: 0},  // adaptive
		{TimeBuckets: -1}, // temporal index disabled
		{NX: 5, NY: 3, TimeBuckets: 16},
		{TimeBuckets: 16, WindowHint: int64(hi-lo) / 32},
	}
	rng := rand.New(rand.NewSource(7))
	for ci, cfg := range configs {
		g := Build(cols, cfg)
		if cfg.TimeBuckets > 0 && g.TimeBuckets() != cfg.TimeBuckets {
			t.Errorf("config %d: TimeBuckets() = %d, want forced %d", ci, g.TimeBuckets(), cfg.TimeBuckets)
		}
		if cfg.TimeBuckets < 0 && g.TimeBuckets() != 0 {
			t.Errorf("config %d: TimeBuckets() = %d, want disabled (0)", ci, g.TimeBuckets())
		}
		for trial := 0; trial < 40; trial++ {
			pg := randomConvexPolygon(rng)
			wlo, whi := fuzzWindow(rng, int64(lo), int64(hi))
			wantN := naiveCount(cols, pg, wlo, whi)
			if gotN := g.CountSamples(pg, wlo, whi, nil); gotN != wantN {
				t.Fatalf("config %d trial %d [%d,%d]: CountSamples = %d, naive = %d",
					ci, trial, wlo, whi, gotN, wantN)
			}
			wantO := naiveObjects(cols, pg, wlo, whi)
			if gotO := g.ObjectsSampled(pg, wlo, whi, nil); !eqOids(gotO, wantO) {
				t.Fatalf("config %d trial %d [%d,%d]: ObjectsSampled = %v, naive = %v",
					ci, trial, wlo, whi, gotO, wantO)
			}
		}
	}
}

// TestTemporalBucketBoundaries pins the windows the prefix-sum
// subtraction is most likely to get wrong: instants and window edges
// exactly on, one before, and one after each bucket boundary, plus the
// extent edges themselves (the timeVacuous cutoffs).
func TestTemporalBucketBoundaries(t *testing.T) {
	tbl := randomTable(t, 25, 40, 11)
	cols := tbl.Columns()
	lo, hi, _ := cols.TimeSpan()
	pg := testPolygons()["concave"]
	for _, nb := range []int{1, 3, 16} {
		g := Build(cols, Config{TimeBuckets: nb})
		if g.TimeBuckets() != nb {
			t.Fatalf("TimeBuckets() = %d, want %d", g.TimeBuckets(), nb)
		}
		var edges []int64
		for b := 0; b <= nb; b++ {
			e := int64(lo) + int64(b)*g.bktW
			edges = append(edges, e-1, e, e+1)
		}
		edges = append(edges, int64(lo), int64(lo)-1, int64(hi), int64(hi)+1)
		for _, wlo := range edges {
			for _, whi := range edges {
				wantN := naiveCount(cols, pg, wlo, whi)
				if gotN := g.CountSamples(pg, wlo, whi, nil); gotN != wantN {
					t.Fatalf("nb=%d [%d,%d]: CountSamples = %d, naive = %d", nb, wlo, whi, gotN, wantN)
				}
				wantO := naiveObjects(cols, pg, wlo, whi)
				if gotO := g.ObjectsSampled(pg, wlo, whi, nil); !eqOids(gotO, wantO) {
					t.Fatalf("nb=%d [%d,%d]: ObjectsSampled diverged", nb, wlo, whi)
				}
			}
		}
	}
}

// TestTemporalAdaptiveSizing checks the auto knob: a telemetry-derived
// window hint must never shrink the density-seeded bucket count, a
// narrow hint must refine it, and the empty table builds no index.
func TestTemporalAdaptiveSizing(t *testing.T) {
	tbl := randomTable(t, 50, 80, 13)
	cols := tbl.Columns()
	lo, hi, _ := cols.TimeSpan()
	span := int64(hi - lo)

	auto := Build(cols, Config{})
	if auto.TimeBuckets() <= 0 {
		t.Fatalf("adaptive build produced no temporal index (TimeBuckets = %d)", auto.TimeBuckets())
	}
	hinted := Build(cols, Config{WindowHint: span / 64})
	if hinted.TimeBuckets() < auto.TimeBuckets() {
		t.Errorf("narrow window hint shrank the bucket count: %d < %d",
			hinted.TimeBuckets(), auto.TimeBuckets())
	}
	if hinted.TimeBuckets() > maxTimeBuckets {
		t.Errorf("bucket count %d exceeds the cap %d", hinted.TimeBuckets(), maxTimeBuckets)
	}

	empty := Build(moft.New("FMempty").Columns(), Config{})
	if empty.TimeBuckets() != 0 {
		t.Errorf("empty table built %d buckets, want none", empty.TimeBuckets())
	}

	// Single-instant table: zero time span must still build and answer.
	one := moft.New("FMone")
	one.Add(1, 42, 5, 5)
	one.Add(2, 42, 6, 6)
	g := Build(one.Columns(), Config{TimeBuckets: 8})
	sq := geom.Polygon{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}}
	if got := g.CountSamples(sq, 42, 42, nil); got != 2 {
		t.Errorf("single-instant CountSamples = %d, want 2", got)
	}
	if got := g.CountSamples(sq, 43, 100, nil); got != 0 {
		t.Errorf("off-instant CountSamples = %d, want 0", got)
	}
}
