// Package agggrid implements a GeoBlocks-style pre-aggregated uniform
// grid over a MOFT's columnar snapshot. The grid partitions the
// table's bounding box into cells and pre-aggregates, per cell, the
// sample rows falling in it (a CSR index), the sample count, and an
// object-presence bitset. A polygon aggregate then classifies the
// cells overlapping the polygon's bounding box into
//
//   - interior cells — not touched by any polygon boundary segment and
//     with their center inside the polygon: every sample in them is
//     inside, so the pre-aggregated count/bitset answers in O(1) when
//     the time window is vacuous, and the per-cell temporal index
//     (see temporal.go) resolves a proper window with two binary
//     searches plus a prefix-sum subtraction otherwise;
//   - boundary cells — touched by a boundary segment: refined with an
//     exact point-in-polygon test per in-window sample;
//   - exterior cells — skipped entirely.
//
// The classification is exact, so accelerated results are identical to
// a full scan: cells partition the samples, a cell whose rectangle
// meets no boundary segment is uniformly inside or outside the closed
// polygon (classified by its center), and any sample lying exactly on
// the polygon boundary is inside a boundary cell, where it gets the
// exact test. Closed-polygon semantics (boundary points count as
// inside) match geom.Polygon.ContainsPoint.
//
// Every function here is a query hot path and must answer
// bit-identically to the serial scan it accelerates:
//
//moglint:deterministic
package agggrid

import (
	"context"
	"math"
	"math/bits"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
)

// Config controls grid construction.
type Config struct {
	// NX, NY are the cell counts per axis; 0 derives them from the
	// sample count (targeting ~64 samples per cell, side clamped to
	// [8, 256]).
	NX, NY int
	// TimeBuckets controls the per-cell temporal index: 0 auto-sizes
	// from the time extent, sample density, and WindowHint; a positive
	// value forces that bucket count (clamped to [1, 256]); a negative
	// value disables the temporal index, reverting non-vacuous windows
	// to per-row time filters.
	TimeBuckets int
	// WindowHint is the typical query-interval width in model time
	// (e.g. telemetry's observed mean window) used by auto sizing; 0
	// means unknown.
	WindowHint int64
}

// targetPerCell is the sample count the default sizing aims at per
// cell: small enough that boundary-cell refinement stays cheap, large
// enough that the cell directory stays negligible next to the data.
const targetPerCell = 64

// Grid is the immutable pre-aggregated index over one columnar
// snapshot. Safe for concurrent use.
type Grid struct {
	cols   *moft.Columns
	extent geom.BBox
	nx, ny int
	cellW  float64
	cellH  float64

	// cellStart/rows is a CSR layout: cell c owns sample rows
	// rows[cellStart[c]:cellStart[c+1]], each an index into the
	// snapshot's columns.
	cellStart []int32
	rows      []int32
	// presence holds one bitset of NumObjects bits per cell
	// (words uint64 words each): bit o set iff object ordinal o has a
	// sample in the cell.
	words    int
	presence []uint64

	minT, maxT int64

	// Temporal index (absent when nb == 0): trows re-lists each
	// cell's rows in (instant, row) order under the same cellStart
	// offsets; bktOff[c*(nb+1)+b] counts cell c's rows in buckets
	// [0, b) (a per-cell prefix sum over fixed-width time buckets of
	// width bktW); bktPresence holds one object-presence bitset per
	// (cell, bucket).
	nb          int
	bktW        int64
	trows       []int32
	bktOff      []int32
	bktPresence []uint64
}

// Stats reports the row-level work a query did: Rows counts the
// sample rows examined one at a time (time filters, fringe-bucket
// refinement, exact point-in-polygon tests); answers taken from
// pre-aggregates contribute nothing.
type Stats struct {
	Rows int64
}

// Build constructs the grid for a snapshot. An empty snapshot yields a
// grid that answers every query with zero.
func Build(cols *moft.Columns, cfg Config) *Grid {
	g, _ := BuildCtx(context.Background(), cols, cfg)
	return g
}

// BuildCtx is Build with cooperative cancellation: ctx is observed
// every few thousand rows in both passes, and an abandoned build
// returns the context's error with no grid published.
func BuildCtx(ctx context.Context, cols *moft.Columns, cfg Config) (*Grid, error) {
	g := &Grid{cols: cols, extent: cols.BBox()}
	n := cols.Len()
	if n == 0 || g.extent.IsEmpty() {
		g.nx, g.ny = 1, 1
		g.cellW, g.cellH = 1, 1
		g.cellStart = make([]int32, 2)
		return g, nil
	}
	g.nx, g.ny = cfg.NX, cfg.NY
	if g.nx <= 0 || g.ny <= 0 {
		side := int(math.Sqrt(float64(n) / targetPerCell))
		if side < 8 {
			side = 8
		}
		if side > 256 {
			side = 256
		}
		g.nx, g.ny = side, side
	}
	// A degenerate (zero-width/height) extent still gets positive cell
	// sizes so cellOf never divides by zero; clamping does the rest.
	if g.cellW = g.extent.Width() / float64(g.nx); g.cellW <= 0 {
		g.cellW = 1
	}
	if g.cellH = g.extent.Height() / float64(g.ny); g.cellH <= 0 {
		g.cellH = 1
	}

	cells := g.nx * g.ny
	g.minT, g.maxT = cols.T[0], cols.T[0]
	// Pass 1: per-cell counts (shifted by one so the prefix sum turns
	// counts into start offsets in place).
	g.cellStart = make([]int32, cells+1)
	cellOfRow := make([]int32, n)
	for i := 0; i < n; i++ {
		if i%4096 == 4095 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c := int32(g.cellOf(cols.X[i], cols.Y[i]))
		cellOfRow[i] = c
		g.cellStart[c+1]++
		if cols.T[i] < g.minT {
			g.minT = cols.T[i]
		}
		if cols.T[i] > g.maxT {
			g.maxT = cols.T[i]
		}
	}
	for c := 0; c < cells; c++ {
		g.cellStart[c+1] += g.cellStart[c]
	}
	// Pass 2: fill rows (cursor per cell) and the presence bitsets.
	g.words = (cols.NumObjects() + 63) / 64
	g.presence = make([]uint64, cells*g.words)
	g.rows = make([]int32, n)
	cursor := make([]int32, cells)
	copy(cursor, g.cellStart[:cells])
	for i := 0; i < n; i++ {
		if i%4096 == 4095 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c := cellOfRow[i]
		g.rows[cursor[c]] = int32(i)
		cursor[c]++
		o := cols.Obj[i]
		g.presence[int(c)*g.words+int(o>>6)] |= 1 << uint(o&63)
	}
	if err := g.buildTemporal(ctx, cfg, cellOfRow); err != nil {
		return nil, err
	}
	return g, nil
}

// Cells returns the total cell count.
func (g *Grid) Cells() int { return g.nx * g.ny }

// Dims returns the per-axis cell counts.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// cellOf maps a point inside the extent to its cell index; points on
// the max edges map to the last cell.
func (g *Grid) cellOf(x, y float64) int {
	cx := int((x - g.extent.MinX) / g.cellW)
	cy := int((y - g.extent.MinY) / g.cellH)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cy < 0 {
		cy = 0
	}
	return cy*g.nx + cx
}

// cellBox returns the rectangle of cell c.
func (g *Grid) cellBox(c int) geom.BBox {
	cx, cy := c%g.nx, c/g.nx
	return geom.BBox{
		MinX: g.extent.MinX + float64(cx)*g.cellW,
		MinY: g.extent.MinY + float64(cy)*g.cellH,
		MaxX: g.extent.MinX + float64(cx+1)*g.cellW,
		MaxY: g.extent.MinY + float64(cy+1)*g.cellH,
	}
}

// cellRange clamps a bounding box to the grid's cell index ranges,
// with ok=false when the box misses the extent entirely.
func (g *Grid) cellRange(b geom.BBox) (x0, x1, y0, y1 int, ok bool) {
	if !b.Intersects(g.extent) {
		return 0, 0, 0, 0, false
	}
	x0 = int((b.MinX - g.extent.MinX) / g.cellW)
	x1 = int((b.MaxX - g.extent.MinX) / g.cellW)
	y0 = int((b.MinY - g.extent.MinY) / g.cellH)
	y1 = int((b.MaxY - g.extent.MinY) / g.cellH)
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	return clamp(x0, g.nx-1), clamp(x1, g.nx-1), clamp(y0, g.ny-1), clamp(y1, g.ny-1), true
}

// Cover is a polygon's exact cell classification (exterior cells
// omitted).
type Cover struct {
	Interior []int32 // cells fully inside the closed polygon
	Boundary []int32 // cells met by the polygon boundary (need refinement)
}

// Cover classifies the cells overlapping pg's bounding box. A cell is
// Boundary iff some polygon boundary segment intersects its closed
// rectangle; the remaining cells are uniformly inside or outside and
// classified by one center point-in-polygon test.
func (g *Grid) Cover(pg geom.Polygon) Cover {
	var cv Cover
	x0, x1, y0, y1, ok := g.cellRange(pg.BBox())
	if !ok {
		return cv
	}
	marked := make([]bool, g.nx*g.ny)
	for _, r := range pg.Rings() {
		for i := 0; i < r.NumVertices(); i++ {
			seg := r.Segment(i)
			sx0, sx1, sy0, sy1, ok := g.cellRange(seg.BBox())
			if !ok {
				continue
			}
			for cy := sy0; cy <= sy1; cy++ {
				for cx := sx0; cx <= sx1; cx++ {
					c := cy*g.nx + cx
					if !marked[c] && segIntersectsRect(seg, g.cellBox(c)) {
						marked[c] = true
					}
				}
			}
		}
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			c := cy*g.nx + cx
			if marked[c] {
				cv.Boundary = append(cv.Boundary, int32(c))
			} else if pg.ContainsPoint(g.cellBox(c).Center()) {
				cv.Interior = append(cv.Interior, int32(c))
			}
		}
	}
	return cv
}

// segIntersectsRect reports whether the segment meets the closed
// rectangle: an endpoint inside, or a crossing with one of its edges.
func segIntersectsRect(s geom.Segment, b geom.BBox) bool {
	if !b.Intersects(s.BBox()) {
		return false
	}
	if b.ContainsPoint(s.A) || b.ContainsPoint(s.B) {
		return true
	}
	c := b.Corners()
	for i := 0; i < 4; i++ {
		if s.Intersects(geom.Seg(c[i], c[(i+1)%4])) {
			return true
		}
	}
	return false
}

// metricsOrNop makes a nil bundle safe: the zero Metrics has nil
// instruments, which are no-ops.
func metricsOrNop(met *obs.Metrics) *obs.Metrics {
	if met == nil {
		return &obs.Metrics{}
	}
	return met
}

// timeVacuous reports whether [lo, hi] covers every sample instant, so
// interior cells can be answered from pre-aggregates without touching
// sample rows.
func (g *Grid) timeVacuous(lo, hi int64) bool {
	return len(g.rows) > 0 && lo <= g.minT && hi >= g.maxT
}

// CountSamples returns the number of samples positioned inside the
// closed polygon with instant in [lo, hi] — exactly what a full scan
// with per-sample ContainsPoint would count.
func (g *Grid) CountSamples(pg geom.Polygon, lo, hi int64, met *obs.Metrics) int {
	n, _ := g.CountSamplesStats(pg, lo, hi, met)
	return n
}

// CountSamplesStats is CountSamples plus the row-level work done.
func (g *Grid) CountSamplesStats(pg geom.Polygon, lo, hi int64, met *obs.Metrics) (int, Stats) {
	met = metricsOrNop(met)
	cv := g.Cover(pg)
	met.AggGridQueries.Inc()
	met.AggGridInteriorCells.Add(int64(len(cv.Interior)))
	met.AggGridBoundaryCells.Add(int64(len(cv.Boundary)))
	cols, total := g.cols, 0
	var st Stats
	if g.timeVacuous(lo, hi) {
		for _, c := range cv.Interior {
			total += int(g.cellStart[c+1] - g.cellStart[c])
		}
		met.AggGridInteriorSamples.Add(int64(total))
	} else if g.nb > 0 {
		met.AggGridTemporalQueries.Inc()
		accepted := 0
		for _, c := range cv.Interior {
			accepted += g.temporalCount(c, lo, hi)
		}
		met.AggGridInteriorSamples.Add(int64(accepted))
		total += accepted
	} else {
		accepted := 0
		for _, c := range cv.Interior {
			for _, row := range g.rows[g.cellStart[c]:g.cellStart[c+1]] {
				st.Rows++
				if t := cols.T[row]; t >= lo && t <= hi {
					accepted++
				}
			}
		}
		met.AggGridInteriorSamples.Add(int64(accepted))
		total += accepted
	}
	refined := int64(0)
	for _, c := range cv.Boundary {
		for _, row := range g.boundaryWindow(c, lo, hi, &st) {
			if t := cols.T[row]; t < lo || t > hi {
				continue
			}
			refined++
			if pg.ContainsPoint(geom.Pt(cols.X[row], cols.Y[row])) {
				total++
			}
		}
	}
	met.AggGridRefinedSamples.Add(refined)
	return total, st
}

// boundaryWindow returns the rows of boundary cell c a refinement must
// examine for window [lo, hi]: with the temporal index present, the
// time-sorted row list narrowed to the window by two binary searches;
// otherwise the cell's full row list (callers re-filter by instant, so
// both shapes refine the same samples). The returned rows are counted
// into st.
func (g *Grid) boundaryWindow(c int32, lo, hi int64, st *Stats) []int32 {
	if g.nb == 0 {
		rows := g.rows[g.cellStart[c]:g.cellStart[c+1]]
		st.Rows += int64(len(rows))
		return rows
	}
	rows := g.cellTRows(c)
	i0 := 0
	if lo > g.minT {
		i0 = g.searchT(rows, lo)
	}
	i1 := len(rows)
	if hi < g.maxT {
		i1 = g.searchAfter(rows, hi)
	}
	if i0 > i1 {
		i0 = i1
	}
	st.Rows += int64(i1 - i0)
	return rows[i0:i1]
}

// ObjectsSampled returns, in ascending order, the distinct objects
// with at least one sample inside the closed polygon during [lo, hi].
// The result is nil when no object qualifies.
func (g *Grid) ObjectsSampled(pg geom.Polygon, lo, hi int64, met *obs.Metrics) []moft.Oid {
	out, _ := g.ObjectsSampledStats(pg, lo, hi, met)
	return out
}

// ObjectsSampledStats is ObjectsSampled plus the row-level work done.
func (g *Grid) ObjectsSampledStats(pg geom.Polygon, lo, hi int64, met *obs.Metrics) ([]moft.Oid, Stats) {
	met = metricsOrNop(met)
	cv := g.Cover(pg)
	met.AggGridQueries.Inc()
	met.AggGridInteriorCells.Add(int64(len(cv.Interior)))
	met.AggGridBoundaryCells.Add(int64(len(cv.Boundary)))
	var st Stats
	if g.words == 0 {
		return nil, st
	}
	cols := g.cols
	set := make([]uint64, g.words)
	interior := int64(0)
	if g.timeVacuous(lo, hi) {
		for _, c := range cv.Interior {
			blk := g.presence[int(c)*g.words : (int(c)+1)*g.words]
			for w, bitsw := range blk {
				set[w] |= bitsw
			}
			interior += int64(g.cellStart[c+1] - g.cellStart[c])
		}
	} else if g.nb > 0 {
		met.AggGridTemporalQueries.Inc()
		fringe0 := st.Rows
		for _, c := range cv.Interior {
			interior += g.temporalObjects(c, lo, hi, set, &st)
		}
		met.AggGridFringeSamples.Add(st.Rows - fringe0)
	} else {
		for _, c := range cv.Interior {
			for _, row := range g.rows[g.cellStart[c]:g.cellStart[c+1]] {
				st.Rows++
				if t := cols.T[row]; t >= lo && t <= hi {
					o := cols.Obj[row]
					set[o>>6] |= 1 << uint(o&63)
					interior++
				}
			}
		}
	}
	met.AggGridInteriorSamples.Add(interior)
	refined := int64(0)
	for _, c := range cv.Boundary {
		for _, row := range g.boundaryWindow(c, lo, hi, &st) {
			if t := cols.T[row]; t < lo || t > hi {
				continue
			}
			o := cols.Obj[row]
			if set[o>>6]&(1<<uint(o&63)) != 0 {
				continue // already in; skip the exact test
			}
			refined++
			if pg.ContainsPoint(geom.Pt(cols.X[row], cols.Y[row])) {
				set[o>>6] |= 1 << uint(o&63)
			}
		}
	}
	met.AggGridRefinedSamples.Add(refined)
	var out []moft.Oid
	for w, bitsw := range set {
		for bitsw != 0 {
			o := w*64 + bits.TrailingZeros64(bitsw)
			out = append(out, cols.Oids[o])
			bitsw &= bitsw - 1
		}
	}
	return out, st
}
