// Package sindex provides spatial and spatio-temporal indexing for
// the moving-objects GIS-OLAP system: an R-tree with both STR bulk
// loading and dynamic quadratic-split insertion, a uniform grid index
// for point location, and an aggregate spatio-temporal grid in the
// spirit of the historical-aggregate indexes of Papadias et al.
// (IEEE Data Eng. Bull. 2002), which the paper cites as the
// pre-aggregation baseline for moving-object counts.
package sindex
