package sindex

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
)

func randomOidSamples(rng *rand.Rand, n, objects int, tSpan int64) []OidSamplePoint {
	out := make([]OidSamplePoint, n)
	for i := range out {
		out[i] = OidSamplePoint{
			P:   geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
			T:   rng.Int63n(tSpan),
			Oid: rng.Int63n(int64(objects)),
		}
	}
	return out
}

func TestDistinctIndexSmall(t *testing.T) {
	samples := []OidSamplePoint{
		{P: geom.Pt(1, 1), T: 0, Oid: 1},
		{P: geom.Pt(2, 2), T: 1, Oid: 1}, // same object twice
		{P: geom.Pt(3, 3), T: 2, Oid: 2},
		{P: geom.Pt(90, 90), T: 3, Oid: 3},
	}
	idx := BuildDistinctIndex(samples, 2)
	if idx.Len() != 4 {
		t.Fatalf("Len = %d", idx.Len())
	}
	all := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	if got := idx.CountDistinct(all, 0, 3); got != 3 {
		t.Errorf("full distinct = %d, want 3", got)
	}
	if got := idx.CountDistinct(geom.BBox{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, 0, 3); got != 2 {
		t.Errorf("corner distinct = %d, want 2", got)
	}
	if got := idx.CountDistinct(all, 0, 1); got != 1 {
		t.Errorf("early distinct = %d, want 1", got)
	}
	if got := idx.CountDistinct(all, 3, 0); got != 0 {
		t.Errorf("inverted = %d", got)
	}
	empty := BuildDistinctIndex(nil, 0)
	if got := empty.CountDistinct(all, 0, 10); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestDistinctIndexAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	samples := randomOidSamples(rng, 4000, 150, 5000)
	idx := BuildDistinctIndex(samples, 32)
	for q := 0; q < 100; q++ {
		box := boxAround(rng.Float64()*1000, rng.Float64()*1000, 30+rng.Float64()*250)
		t0 := rng.Int63n(5000)
		t1 := t0 + rng.Int63n(2500)
		want := CountDistinctNaive(samples, box, t0, t1)
		got := idx.CountDistinct(box, t0, t1)
		if got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}
}

func TestDistinctIndexDuplicateLocations(t *testing.T) {
	var samples []OidSamplePoint
	for i := int64(0); i < 300; i++ {
		samples = append(samples, OidSamplePoint{P: geom.Pt(5, 5), T: i, Oid: i % 7})
	}
	idx := BuildDistinctIndex(samples, 16)
	if got := idx.CountDistinct(boxAround(5, 5, 1), 0, 299); got != 7 {
		t.Errorf("distinct = %d, want 7", got)
	}
	if got := idx.CountDistinct(boxAround(5, 5, 1), 0, 2); got != 3 {
		t.Errorf("distinct first 3 instants = %d, want 3", got)
	}
}
