package sindex

import (
	"mogis/internal/geom"
)

// SamplePoint is one moving-object observation projected to (x, y, t).
type SamplePoint struct {
	P geom.Point
	T int64
}

// AggQuadTree is an aggregate spatio-temporal index: a region quadtree
// over space whose every node stores per-time-bin sample counts, in
// the spirit of the pre-aggregated historical indexes of Papadias et
// al. that the paper cites. Region×interval count queries are
// answered from node-level aggregates whenever a node is fully
// covered, descending to leaf point scans only at the query fringe.
type AggQuadTree struct {
	root     *aggNode
	tMin     int64
	binWidth int64
	bins     int
	size     int
}

type aggNode struct {
	box      geom.BBox
	binCount []int64 // samples per time bin in this subtree
	children [4]*aggNode
	points   []SamplePoint // leaf payload
	leaf     bool
}

// AggConfig controls AggQuadTree construction.
type AggConfig struct {
	// LeafCapacity is the maximum points per leaf before splitting
	// (default 64).
	LeafCapacity int
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// TimeBins is the number of equal-width time bins (default 64).
	TimeBins int
}

func (c AggConfig) withDefaults() AggConfig {
	if c.LeafCapacity <= 0 {
		c.LeafCapacity = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	if c.TimeBins <= 0 {
		c.TimeBins = 64
	}
	return c
}

// BuildAggQuadTree builds the index over the samples, covering their
// spatial bounding box and time span.
func BuildAggQuadTree(samples []SamplePoint, cfg AggConfig) *AggQuadTree {
	cfg = cfg.withDefaults()
	extent := geom.EmptyBBox()
	var tMin, tMax int64
	for i, s := range samples {
		extent = extent.ExtendPoint(s.P)
		if i == 0 || s.T < tMin {
			tMin = s.T
		}
		if i == 0 || s.T > tMax {
			tMax = s.T
		}
	}
	span := tMax - tMin + 1
	binWidth := span / int64(cfg.TimeBins)
	if binWidth < 1 {
		binWidth = 1
	}
	bins := int((span + binWidth - 1) / binWidth)
	if bins < 1 {
		bins = 1
	}
	t := &AggQuadTree{tMin: tMin, binWidth: binWidth, bins: bins, size: len(samples)}
	pts := make([]SamplePoint, len(samples))
	copy(pts, samples)
	t.root = t.buildNode(extent, pts, cfg, 0)
	return t
}

func (t *AggQuadTree) buildNode(box geom.BBox, pts []SamplePoint, cfg AggConfig, depth int) *aggNode {
	n := &aggNode{box: box, binCount: make([]int64, t.bins)}
	for _, s := range pts {
		n.binCount[t.bin(s.T)]++
	}
	if len(pts) <= cfg.LeafCapacity || depth >= cfg.MaxDepth || box.Width() <= 0 && box.Height() <= 0 {
		n.leaf = true
		n.points = pts
		return n
	}
	c := box.Center()
	quads := [4]geom.BBox{
		{MinX: box.MinX, MinY: box.MinY, MaxX: c.X, MaxY: c.Y},
		{MinX: c.X, MinY: box.MinY, MaxX: box.MaxX, MaxY: c.Y},
		{MinX: box.MinX, MinY: c.Y, MaxX: c.X, MaxY: box.MaxY},
		{MinX: c.X, MinY: c.Y, MaxX: box.MaxX, MaxY: box.MaxY},
	}
	var parts [4][]SamplePoint
	for _, s := range pts {
		q := 0
		if s.P.X > c.X {
			q |= 1
		}
		if s.P.Y > c.Y {
			q |= 2
		}
		parts[q] = append(parts[q], s)
	}
	// Guard against all points collapsing into a single quadrant of a
	// degenerate box (duplicate coordinates).
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 && depth > 0 {
		n.leaf = true
		n.points = pts
		return n
	}
	for q := 0; q < 4; q++ {
		if len(parts[q]) > 0 {
			n.children[q] = t.buildNode(quads[q], parts[q], cfg, depth+1)
		}
	}
	return n
}

func (t *AggQuadTree) bin(ts int64) int {
	b := int((ts - t.tMin) / t.binWidth)
	if b < 0 {
		return 0
	}
	if b >= t.bins {
		return t.bins - 1
	}
	return b
}

// Len returns the number of indexed samples.
func (t *AggQuadTree) Len() int { return t.size }

// Bins returns the number of time bins.
func (t *AggQuadTree) Bins() int { return t.bins }

// CountInRange returns the exact number of samples with location in
// box (inclusive) and time in [t0, t1] (inclusive). Fully covered
// nodes whose bin range is also fully covered are answered from the
// pre-aggregated counts; others descend.
func (t *AggQuadTree) CountInRange(box geom.BBox, t0, t1 int64) int64 {
	if t.root == nil || t1 < t0 {
		return 0
	}
	return t.count(t.root, box, t0, t1)
}

func (t *AggQuadTree) count(n *aggNode, box geom.BBox, t0, t1 int64) int64 {
	if n == nil || !n.box.Intersects(box) {
		return 0
	}
	if box.Contains(n.box) {
		// Spatially covered: answer from bins when [t0, t1] covers
		// whole bins; otherwise fall through and descend.
		b0, b1 := t.bin(t0), t.bin(t1)
		if t0 <= t.binStart(b0) && t1 >= t.binEnd(b1) {
			var sum int64
			for b := b0; b <= b1; b++ {
				sum += n.binCount[b]
			}
			return sum
		}
	}
	if n.leaf {
		var sum int64
		for _, s := range n.points {
			if s.T >= t0 && s.T <= t1 && box.ContainsPoint(s.P) {
				sum++
			}
		}
		return sum
	}
	var sum int64
	for _, c := range n.children {
		sum += t.count(c, box, t0, t1)
	}
	return sum
}

// binStart returns the first instant of bin b.
func (t *AggQuadTree) binStart(b int) int64 { return t.tMin + int64(b)*t.binWidth }

// binEnd returns the last instant of bin b.
func (t *AggQuadTree) binEnd(b int) int64 { return t.binStart(b) + t.binWidth - 1 }

// CountNaive is the scan baseline over an explicit sample slice; used
// by tests and benchmarks to validate and compare CountInRange.
func CountNaive(samples []SamplePoint, box geom.BBox, t0, t1 int64) int64 {
	var sum int64
	for _, s := range samples {
		if s.T >= t0 && s.T <= t1 && box.ContainsPoint(s.P) {
			sum++
		}
	}
	return sum
}
