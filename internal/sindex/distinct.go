package sindex

import (
	"sort"

	"mogis/internal/geom"
)

// OidSamplePoint is a moving-object observation carrying its object
// identifier, for distinct-object counting (the paper's queries count
// objects — "number of buses" — not samples).
type OidSamplePoint struct {
	P   geom.Point
	T   int64
	Oid int64
}

// DistinctIndex answers "how many distinct objects were observed in
// region × interval" queries. It reuses the aggregate quadtree's
// spatial pruning; because distinct counts do not decompose over
// disjoint nodes, fully covered nodes contribute their object sets
// (precomputed per node) rather than scalar counts, and only fringe
// leaves are scanned point by point.
type DistinctIndex struct {
	root *dnode
	size int
}

type dnode struct {
	box      geom.BBox
	tMin     int64
	tMax     int64
	objects  []int64   // sorted distinct oids in this subtree
	children [8]*dnode // 4 spatial quadrants × 2 time halves
	points   []OidSamplePoint
	leaf     bool
}

// BuildDistinctIndex builds the index with the given leaf capacity
// (default 64).
func BuildDistinctIndex(samples []OidSamplePoint, leafCapacity int) *DistinctIndex {
	if leafCapacity <= 0 {
		leafCapacity = 64
	}
	extent := geom.EmptyBBox()
	for _, s := range samples {
		extent = extent.ExtendPoint(s.P)
	}
	pts := make([]OidSamplePoint, len(samples))
	copy(pts, samples)
	idx := &DistinctIndex{size: len(samples)}
	idx.root = buildDNode(extent, pts, leafCapacity, 0)
	return idx
}

func buildDNode(box geom.BBox, pts []OidSamplePoint, cap, depth int) *dnode {
	if len(pts) == 0 {
		return nil
	}
	n := &dnode{box: box, tMin: pts[0].T, tMax: pts[0].T}
	seen := make(map[int64]bool)
	for _, s := range pts {
		if s.T < n.tMin {
			n.tMin = s.T
		}
		if s.T > n.tMax {
			n.tMax = s.T
		}
		seen[s.Oid] = true
	}
	n.objects = make([]int64, 0, len(seen))
	for o := range seen {
		n.objects = append(n.objects, o)
	}
	sort.Slice(n.objects, func(i, j int) bool { return n.objects[i] < n.objects[j] })

	if len(pts) <= cap || depth >= 16 {
		n.leaf = true
		n.points = pts
		return n
	}
	c := box.Center()
	quads := [4]geom.BBox{
		{MinX: box.MinX, MinY: box.MinY, MaxX: c.X, MaxY: c.Y},
		{MinX: c.X, MinY: box.MinY, MaxX: box.MaxX, MaxY: c.Y},
		{MinX: box.MinX, MinY: c.Y, MaxX: c.X, MaxY: box.MaxY},
		{MinX: c.X, MinY: c.Y, MaxX: box.MaxX, MaxY: box.MaxY},
	}
	// Split spatially AND temporally (an octree over x, y, t): nodes
	// get tight time extents, so window queries can take whole object
	// sets instead of descending to leaves.
	midT := n.tMin + (n.tMax-n.tMin)/2
	var parts [8][]OidSamplePoint
	for _, s := range pts {
		q := 0
		if s.P.X > c.X {
			q |= 1
		}
		if s.P.Y > c.Y {
			q |= 2
		}
		if s.T > midT {
			q |= 4
		}
		parts[q] = append(parts[q], s)
	}
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 && depth > 0 {
		n.leaf = true
		n.points = pts
		return n
	}
	for q := 0; q < 8; q++ {
		n.children[q] = buildDNode(quads[q%4], parts[q], cap, depth+1)
	}
	return n
}

// Len returns the number of indexed samples.
func (d *DistinctIndex) Len() int { return d.size }

// CountDistinct returns the exact number of distinct objects with at
// least one sample in box during [t0, t1].
func (d *DistinctIndex) CountDistinct(box geom.BBox, t0, t1 int64) int {
	if d.root == nil || t1 < t0 {
		return 0
	}
	seen := make(map[int64]bool)
	d.collect(d.root, box, t0, t1, seen)
	return len(seen)
}

func (d *DistinctIndex) collect(n *dnode, box geom.BBox, t0, t1 int64, seen map[int64]bool) {
	if n == nil || !n.box.Intersects(box) || n.tMax < t0 || n.tMin > t1 {
		return
	}
	if box.Contains(n.box) && t0 <= n.tMin && n.tMax <= t1 {
		// Fully covered: take the precomputed object set.
		for _, o := range n.objects {
			seen[o] = true
		}
		return
	}
	if n.leaf {
		for _, s := range n.points {
			if s.T >= t0 && s.T <= t1 && box.ContainsPoint(s.P) {
				seen[s.Oid] = true
			}
		}
		return
	}
	for _, c := range n.children {
		d.collect(c, box, t0, t1, seen)
	}
}

// CountDistinctNaive is the scan baseline.
func CountDistinctNaive(samples []OidSamplePoint, box geom.BBox, t0, t1 int64) int {
	seen := make(map[int64]bool)
	for _, s := range samples {
		if s.T >= t0 && s.T <= t1 && box.ContainsPoint(s.P) {
			seen[s.Oid] = true
		}
	}
	return len(seen)
}
