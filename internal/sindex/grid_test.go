package sindex

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
)

func TestGridInsertAndCandidates(t *testing.T) {
	g := NewGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 10, 10)
	g.Insert(boxAround(15, 15, 2), 1)
	g.Insert(boxAround(85, 85, 2), 2)

	got := g.CandidatesAt(geom.Pt(15, 15), nil)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("CandidatesAt(15,15) = %v", got)
	}
	got = g.CandidatesAt(geom.Pt(50, 50), nil)
	if len(got) != 0 {
		t.Errorf("CandidatesAt(50,50) = %v", got)
	}
	// Out of extent.
	got = g.CandidatesAt(geom.Pt(-5, -5), nil)
	if len(got) != 0 {
		t.Errorf("CandidatesAt outside = %v", got)
	}
}

func TestGridCandidatesInDedup(t *testing.T) {
	g := NewGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 4, 4)
	// Box spanning many cells: id registered in each, must dedup.
	g.Insert(geom.BBox{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90}, 7)
	got := g.CandidatesIn(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, nil)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("CandidatesIn = %v", got)
	}
	// Query outside extent.
	got = g.CandidatesIn(geom.BBox{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300}, nil)
	if len(got) != 0 {
		t.Errorf("CandidatesIn outside = %v", got)
	}
}

func TestGridDimsClamp(t *testing.T) {
	g := NewGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 0, -3)
	nx, ny := g.Dims()
	if nx != 1 || ny != 1 {
		t.Errorf("Dims = %d,%d", nx, ny)
	}
	// Boundary point on max edge maps to the last cell, not out of range.
	g2 := NewGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 5, 5)
	g2.Insert(geom.BBox{MinX: 9, MinY: 9, MaxX: 10, MaxY: 10}, 3)
	got := g2.CandidatesAt(geom.Pt(10, 10), nil)
	if len(got) != 1 {
		t.Errorf("max-edge point candidates = %v", got)
	}
}

func TestPointLocator(t *testing.T) {
	// 3x3 checkerboard of 10x10 squares with ids 0..8.
	pgs := make(map[int64]geom.Polygon)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			id := int64(r*3 + c)
			x, y := float64(c*10), float64(r*10)
			pgs[id] = geom.Polygon{Shell: geom.Ring{
				geom.Pt(x, y), geom.Pt(x+10, y), geom.Pt(x+10, y+10), geom.Pt(x, y+10),
			}}
		}
	}
	loc := NewPointLocator(pgs)

	if id, ok := loc.LocateOne(geom.Pt(5, 5)); !ok || id != 0 {
		t.Errorf("LocateOne(5,5) = %d,%v", id, ok)
	}
	if id, ok := loc.LocateOne(geom.Pt(25, 25)); !ok || id != 8 {
		t.Errorf("LocateOne(25,25) = %d,%v", id, ok)
	}
	if _, ok := loc.LocateOne(geom.Pt(-5, -5)); ok {
		t.Error("LocateOne outside should fail")
	}
	// A point on the shared edge belongs to both polygons (the paper
	// notes a point may belong to two adjacent geometries).
	got := loc.Locate(geom.Pt(10, 5), nil)
	if len(got) != 2 {
		t.Errorf("shared edge Locate = %v, want 2 polygons", got)
	}
	// Corner shared by four polygons.
	got = loc.Locate(geom.Pt(10, 10), nil)
	if len(got) != 4 {
		t.Errorf("shared corner Locate = %v, want 4 polygons", got)
	}
}

func TestPointLocatorRandomAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pgs := make(map[int64]geom.Polygon)
	for i := int64(0); i < 40; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		s := 5 + rng.Float64()*30
		pgs[i] = geom.Polygon{Shell: geom.Ring{
			geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
		}}
	}
	loc := NewPointLocator(pgs)
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64()*220-10, rng.Float64()*220-10)
		got := loc.Locate(p, nil)
		var want int
		for _, pg := range pgs {
			if pg.ContainsPoint(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Locate(%v) = %v (n=%d), want n=%d", p, got, len(got), want)
		}
	}
}
