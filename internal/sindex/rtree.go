package sindex

import (
	"context"
	"math"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/obs"
)

// Entry is an indexed item: a bounding box and an opaque identifier.
type Entry struct {
	Box BBoxer
	ID  int64
}

// BBoxer is anything with a bounding box.
type BBoxer interface {
	BBox() geom.BBox
}

// boxOnly adapts a raw geom.BBox to BBoxer.
type boxOnly geom.BBox

func (b boxOnly) BBox() geom.BBox { return geom.BBox(b) }

// Box wraps a raw bounding box as a BBoxer.
func Box(b geom.BBox) BBoxer { return boxOnly(b) }

// RTree is an in-memory R-tree over 2-D bounding boxes. Zero value is
// not usable; construct with NewRTree or BulkLoad.
type RTree struct {
	root      *rnode
	size      int
	maxFanout int
	minFanout int
}

type rnode struct {
	box      geom.BBox
	leaf     bool
	children []*rnode // internal nodes
	entries  []rentry // leaf nodes
}

type rentry struct {
	box geom.BBox
	id  int64
}

// DefaultFanout is the default maximum node fanout.
const DefaultFanout = 16

// NewRTree returns an empty R-tree with the given maximum fanout
// (minimum 4; values below are raised).
func NewRTree(fanout int) *RTree {
	if fanout < 4 {
		fanout = 4
	}
	return &RTree{
		root:      &rnode{leaf: true, box: geom.EmptyBBox()},
		maxFanout: fanout,
		minFanout: fanout * 2 / 5,
	}
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Bounds returns the bounding box of all entries.
func (t *RTree) Bounds() geom.BBox { return t.root.box }

// Insert adds an entry with the given box and id.
func (t *RTree) Insert(box geom.BBox, id int64) {
	if box.IsEmpty() {
		return
	}
	t.size++
	split := t.insert(t.root, box, id)
	if split != nil {
		old := t.root
		t.root = &rnode{
			leaf:     false,
			children: []*rnode{old, split},
			box:      old.box.Union(split.box),
		}
	}
}

func (t *RTree) insert(n *rnode, box geom.BBox, id int64) *rnode {
	n.box = n.box.Union(box)
	if n.leaf {
		n.entries = append(n.entries, rentry{box: box, id: id})
		if len(n.entries) > t.maxFanout {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n.children, box)
	split := t.insert(n.children[best], box, id)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.maxFanout {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing least area enlargement,
// breaking ties by smaller area.
func chooseSubtree(children []*rnode, box geom.BBox) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range children {
		enl := c.box.Union(box).Area() - c.box.Area()
		area := c.box.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitLeaf splits an overfull leaf with the quadratic method,
// returning the new sibling.
func (t *RTree) splitLeaf(n *rnode) *rnode {
	boxes := make([]geom.BBox, len(n.entries))
	for i, e := range n.entries {
		boxes[i] = e.box
	}
	ga, gb := quadraticSplit(boxes, t.minFanout)
	oldEntries := n.entries
	n.entries = nil
	n.box = geom.EmptyBBox()
	sib := &rnode{leaf: true, box: geom.EmptyBBox()}
	for _, i := range ga {
		n.entries = append(n.entries, oldEntries[i])
		n.box = n.box.Union(oldEntries[i].box)
	}
	for _, i := range gb {
		sib.entries = append(sib.entries, oldEntries[i])
		sib.box = sib.box.Union(oldEntries[i].box)
	}
	return sib
}

// splitInternal splits an overfull internal node, returning the new
// sibling.
func (t *RTree) splitInternal(n *rnode) *rnode {
	boxes := make([]geom.BBox, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.box
	}
	ga, gb := quadraticSplit(boxes, t.minFanout)
	oldChildren := n.children
	n.children = nil
	n.box = geom.EmptyBBox()
	sib := &rnode{leaf: false, box: geom.EmptyBBox()}
	for _, i := range ga {
		n.children = append(n.children, oldChildren[i])
		n.box = n.box.Union(oldChildren[i].box)
	}
	for _, i := range gb {
		sib.children = append(sib.children, oldChildren[i])
		sib.box = sib.box.Union(oldChildren[i].box)
	}
	return sib
}

// quadraticSplit partitions box indices into two groups using
// Guttman's quadratic seeds, respecting the minimum group size.
func quadraticSplit(boxes []geom.BBox, minSize int) (ga, gb []int) {
	n := len(boxes)
	// Seeds: the pair wasting the most area together.
	si, sj := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := boxes[i].Union(boxes[j]).Area() - boxes[i].Area() - boxes[j].Area()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	ga = []int{si}
	gb = []int{sj}
	boxA, boxB := boxes[si], boxes[sj]
	assigned := make([]bool, n)
	assigned[si], assigned[sj] = true, true
	for remaining := n - 2; remaining > 0; remaining-- {
		// Force-assign to honor minimum sizes.
		if len(ga)+remaining == minSize || len(ga) >= n-minSize {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					target := &gb
					if len(ga)+remaining == minSize {
						target = &ga
					}
					*target = append(*target, i)
					assigned[i] = true
				}
			}
			return ga, gb
		}
		// Pick the unassigned box with maximal preference difference.
		best := -1
		bestDiff := math.Inf(-1)
		var bestDA, bestDB float64
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			da := boxA.Union(boxes[i]).Area() - boxA.Area()
			db := boxB.Union(boxes[i]).Area() - boxB.Area()
			diff := math.Abs(da - db)
			if diff > bestDiff {
				best, bestDiff, bestDA, bestDB = i, diff, da, db
			}
		}
		assigned[best] = true
		if bestDA < bestDB || (bestDA == bestDB && len(ga) <= len(gb)) {
			ga = append(ga, best)
			boxA = boxA.Union(boxes[best])
		} else {
			gb = append(gb, best)
			boxB = boxB.Union(boxes[best])
		}
	}
	return ga, gb
}

// Search appends to dst the ids of all entries whose boxes intersect
// query, and returns dst.
func (t *RTree) Search(query geom.BBox, dst []int64) []int64 {
	dst, _ = t.SearchCtx(context.Background(), query, dst)
	return dst
}

// SearchCtx is Search with cooperative cancellation: ctx is observed
// every few dozen node visits, and an abandoned search returns the
// context's error with a partial (unusable) dst.
func (t *RTree) SearchCtx(ctx context.Context, query geom.BBox, dst []int64) ([]int64, error) {
	visits := 0
	return searchNode(ctx, t.root, query, dst, &visits)
}

func searchNode(ctx context.Context, n *rnode, query geom.BBox, dst []int64, visits *int) ([]int64, error) {
	obs.Std.SindexNodeVisits.Inc()
	if *visits++; *visits%64 == 0 {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
	}
	if !n.box.Intersects(query) {
		return dst, nil
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.box.Intersects(query) {
				dst = append(dst, e.id)
			}
		}
		return dst, nil
	}
	var err error
	for _, c := range n.children {
		if dst, err = searchNode(ctx, c, query, dst, visits); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Visit calls f for every entry whose box intersects query; returning
// false stops the traversal.
func (t *RTree) Visit(query geom.BBox, f func(box geom.BBox, id int64) bool) {
	visitNode(t.root, query, f)
}

func visitNode(n *rnode, query geom.BBox, f func(geom.BBox, int64) bool) bool {
	obs.Std.SindexNodeVisits.Inc()
	if !n.box.Intersects(query) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.box.Intersects(query) {
				if !f(e.box, e.id) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !visitNode(c, query, f) {
			return false
		}
	}
	return true
}

// Height returns the tree height (1 for a single leaf).
func (t *RTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// BulkLoad builds an R-tree from entries with the Sort-Tile-Recursive
// (STR) packing algorithm, producing near-optimal leaves.
func BulkLoad(entries []Entry, fanout int) *RTree {
	t := NewRTree(fanout)
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)
	leavesIn := make([]rentry, len(entries))
	for i, e := range entries {
		leavesIn[i] = rentry{box: e.Box.BBox(), id: e.ID}
	}
	leaves := strPackLeaves(leavesIn, t.maxFanout)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level, t.maxFanout)
	}
	t.root = level[0]
	return t
}

func strPackLeaves(items []rentry, fanout int) []*rnode {
	sort.Slice(items, func(i, j int) bool {
		return items[i].box.Center().X < items[j].box.Center().X
	})
	sliceCount := int(math.Ceil(math.Sqrt(math.Ceil(float64(len(items)) / float64(fanout)))))
	sliceSize := sliceCount * fanout
	var leaves []*rnode
	for s := 0; s < len(items); s += sliceSize {
		end := s + sliceSize
		if end > len(items) {
			end = len(items)
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for o := 0; o < len(slice); o += fanout {
			oe := o + fanout
			if oe > len(slice) {
				oe = len(slice)
			}
			n := &rnode{leaf: true, box: geom.EmptyBBox()}
			n.entries = append(n.entries, slice[o:oe]...)
			for _, e := range n.entries {
				n.box = n.box.Union(e.box)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func strPackNodes(nodes []*rnode, fanout int) []*rnode {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].box.Center().X < nodes[j].box.Center().X
	})
	sliceCount := int(math.Ceil(math.Sqrt(math.Ceil(float64(len(nodes)) / float64(fanout)))))
	sliceSize := sliceCount * fanout
	var out []*rnode
	for s := 0; s < len(nodes); s += sliceSize {
		end := s + sliceSize
		if end > len(nodes) {
			end = len(nodes)
		}
		slice := nodes[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for o := 0; o < len(slice); o += fanout {
			oe := o + fanout
			if oe > len(slice) {
				oe = len(slice)
			}
			n := &rnode{leaf: false, box: geom.EmptyBBox()}
			n.children = append(n.children, slice[o:oe]...)
			for _, c := range n.children {
				n.box = n.box.Union(c.box)
			}
			out = append(out, n)
		}
	}
	return out
}
