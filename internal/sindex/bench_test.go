package sindex

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
)

func benchTree(n int) (*RTree, []geom.BBox) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, n)
	boxes := make([]geom.BBox, n)
	for i := range entries {
		boxes[i] = boxAround(rng.Float64()*10000, rng.Float64()*10000, 5)
		entries[i] = Entry{Box: Box(boxes[i]), ID: int64(i)}
	}
	return BulkLoad(entries, DefaultFanout), boxes
}

func BenchmarkRTreeSearch(b *testing.B) {
	tr, _ := benchTree(100000)
	query := boxAround(5000, 5000, 100)
	var dst []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Search(query, dst[:0])
	}
}

func BenchmarkRTreeSearchLinearBaseline(b *testing.B) {
	_, boxes := benchTree(100000)
	query := boxAround(5000, 5000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, bb := range boxes {
			if bb.Intersects(query) {
				count++
			}
		}
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := NewRTree(DefaultFanout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(boxAround(rng.Float64()*10000, rng.Float64()*10000, 5), int64(i))
	}
}

func BenchmarkRTreeNearest(b *testing.B) {
	tr, _ := benchTree(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(geom.Pt(5000, 5000), 10)
	}
}

func BenchmarkPointLocator(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pgs := make(map[int64]geom.Polygon)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			x, y := float64(i*50), float64(j*50)
			pgs[int64(i*20+j)] = geom.Polygon{Shell: geom.Ring{
				geom.Pt(x, y), geom.Pt(x+50, y), geom.Pt(x+50, y+50), geom.Pt(x, y+50),
			}}
		}
	}
	loc := NewPointLocator(pgs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		loc.Locate(p, nil)
	}
}

func BenchmarkAggQuadTreeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	samples := randomSamples(rng, 50000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildAggQuadTree(samples, AggConfig{})
	}
}
