package sindex

import (
	"sync"
	"testing"

	"mogis/internal/geom"
)

// TestConcurrentReads hammers a built R-tree and uniform grid from
// many goroutines at once. The structures are written once and then
// only read — the contract the engine's prefilter relies on — so the
// race detector must stay silent and every goroutine must see the
// same answers.
func TestConcurrentReads(t *testing.T) {
	entries := make([]Entry, 0, 400)
	grid := NewGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 16, 16)
	for i := 0; i < 400; i++ {
		x := float64(i%20) * 5
		y := float64(i/20) * 5
		box := geom.BBox{MinX: x, MinY: y, MaxX: x + 4, MaxY: y + 4}
		entries = append(entries, Entry{Box: Box(box), ID: int64(i)})
		grid.Insert(box, int64(i))
	}
	rt := BulkLoad(entries, 8)

	query := geom.BBox{MinX: 10, MinY: 10, MaxX: 40, MaxY: 40}
	center := geom.Pt(50, 50)
	wantSearch := len(rt.Search(query, nil))
	wantNear := rt.Nearest(center, 5)
	wantCand := len(grid.CandidatesIn(query, nil))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := len(rt.Search(query, nil)); got != wantSearch {
					t.Errorf("concurrent Search = %d hits, want %d", got, wantSearch)
					return
				}
				near := rt.Nearest(center, 5)
				if len(near) != len(wantNear) || near[0].ID != wantNear[0].ID {
					t.Errorf("concurrent Nearest diverged: %v vs %v", near, wantNear)
					return
				}
				if got := len(grid.CandidatesIn(query, nil)); got != wantCand {
					t.Errorf("concurrent CandidatesIn = %d, want %d", got, wantCand)
					return
				}
				if got := len(grid.CandidatesAt(center, nil)); got == 0 {
					t.Error("concurrent CandidatesAt found nothing at an occupied cell")
					return
				}
				rt.Visit(query, func(geom.BBox, int64) bool { return true })
			}
		}()
	}
	wg.Wait()
}
