package sindex

import (
	"math/rand"
	"sort"
	"testing"

	"mogis/internal/geom"
)

func TestNearestBasic(t *testing.T) {
	tr := NewRTree(4)
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(50, 50), geom.Pt(51, 50),
	}
	for i, p := range pts {
		tr.Insert(geom.NewBBox(p), int64(i))
	}
	got := tr.Nearest(geom.Pt(49, 50), 2)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 4 {
		t.Errorf("Nearest = %+v", got)
	}
	if got[0].Dist != 1 || got[1].Dist != 2 {
		t.Errorf("distances = %+v", got)
	}
	// k larger than the tree returns everything, ordered.
	all := tr.Nearest(geom.Pt(0, 0), 10)
	if len(all) != 5 || all[0].ID != 0 {
		t.Errorf("all = %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Dist < all[i-1].Dist {
			t.Error("not ordered by distance")
		}
	}
	// Degenerate inputs.
	if got := tr.Nearest(geom.Pt(0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := NewRTree(4).Nearest(geom.Pt(0, 0), 3); got != nil {
		t.Error("empty tree should return nil")
	}
}

func TestNearestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 500)
	entries := make([]Entry, len(pts))
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		entries[i] = Entry{Box: Box(geom.NewBBox(pts[i])), ID: int64(i)}
	}
	tr := BulkLoad(entries, 8)
	for q := 0; q < 50; q++ {
		query := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		const k = 7
		got := tr.Nearest(query, k)
		if len(got) != k {
			t.Fatalf("got %d results", len(got))
		}
		// Brute-force reference.
		type ref struct {
			id int64
			d  float64
		}
		refs := make([]ref, len(pts))
		for i, p := range pts {
			refs[i] = ref{int64(i), p.Dist(query)}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].d < refs[j].d })
		for i := 0; i < k; i++ {
			if got[i].ID != refs[i].id {
				t.Fatalf("query %d rank %d: got %d (d=%v), want %d (d=%v)",
					q, i, got[i].ID, got[i].Dist, refs[i].id, refs[i].d)
			}
		}
	}
}

func TestBoxDist(t *testing.T) {
	b := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Pt(5, 5), 0},
		{geom.Pt(0, 0), 0},
		{geom.Pt(13, 14), 5},
		{geom.Pt(-3, 5), 3},
		{geom.Pt(5, 14), 4},
	}
	for _, c := range cases {
		if got := boxDist(b, c.p); got != c.want {
			t.Errorf("boxDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
