package sindex

import (
	"container/heap"
	"math"

	"mogis/internal/geom"
)

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	ID   int64
	Dist float64 // distance from the query point to the entry's box
}

// Nearest returns the k entries whose bounding boxes are closest to p,
// ordered by distance, using best-first branch-and-bound traversal.
// For point entries box distance equals point distance; for extended
// entries it is a lower bound (callers refine with exact geometry if
// needed).
func (t *RTree) Nearest(p geom.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnItem{node: t.root, dist: boxDist(t.root.box, p)})
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(knnItem)
		switch {
		case item.node == nil:
			out = append(out, Neighbor{ID: item.id, Dist: item.dist})
		case item.node.leaf:
			for _, e := range item.node.entries {
				heap.Push(pq, knnItem{id: e.id, dist: boxDist(e.box, p)})
			}
		default:
			for _, c := range item.node.children {
				heap.Push(pq, knnItem{node: c, dist: boxDist(c.box, p)})
			}
		}
	}
	return out
}

// boxDist returns the minimum distance from p to the box (0 when
// inside).
func boxDist(b geom.BBox, p geom.Point) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Hypot(dx, dy)
}

// knnItem is either an internal node (node != nil) or a leaf entry.
type knnItem struct {
	node *rnode
	id   int64
	dist float64
}

type knnQueue []knnItem

func (q knnQueue) Len() int           { return len(q) }
func (q knnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x any)        { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
