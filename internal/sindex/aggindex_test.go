package sindex

import (
	"math/rand"
	"testing"

	"mogis/internal/geom"
)

func randomSamples(rng *rand.Rand, n int, tSpan int64) []SamplePoint {
	out := make([]SamplePoint, n)
	for i := range out {
		out[i] = SamplePoint{
			P: geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
			T: rng.Int63n(tSpan),
		}
	}
	return out
}

func TestAggQuadTreeSmall(t *testing.T) {
	samples := []SamplePoint{
		{P: geom.Pt(1, 1), T: 0},
		{P: geom.Pt(2, 2), T: 5},
		{P: geom.Pt(50, 50), T: 5},
		{P: geom.Pt(99, 99), T: 9},
	}
	idx := BuildAggQuadTree(samples, AggConfig{})
	if idx.Len() != 4 {
		t.Fatalf("Len = %d", idx.Len())
	}
	all := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	if got := idx.CountInRange(all, 0, 9); got != 4 {
		t.Errorf("full count = %d", got)
	}
	if got := idx.CountInRange(all, 5, 5); got != 2 {
		t.Errorf("t=5 count = %d", got)
	}
	if got := idx.CountInRange(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 0, 9); got != 2 {
		t.Errorf("corner count = %d", got)
	}
	if got := idx.CountInRange(all, 9, 0); got != 0 {
		t.Errorf("inverted interval = %d", got)
	}
	if got := idx.CountInRange(geom.BBox{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300}, 0, 9); got != 0 {
		t.Errorf("disjoint box = %d", got)
	}
}

func TestAggQuadTreeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := randomSamples(rng, 5000, 10000)
	idx := BuildAggQuadTree(samples, AggConfig{LeafCapacity: 32, TimeBins: 50})
	for q := 0; q < 100; q++ {
		box := boxAround(rng.Float64()*1000, rng.Float64()*1000, 20+rng.Float64()*200)
		t0 := rng.Int63n(10000)
		t1 := t0 + rng.Int63n(3000)
		want := CountNaive(samples, box, t0, t1)
		got := idx.CountInRange(box, t0, t1)
		if got != want {
			t.Fatalf("query %d: box=%v t=[%d,%d]: got %d, want %d", q, box, t0, t1, got, want)
		}
	}
}

func TestAggQuadTreeBinAlignedFastPath(t *testing.T) {
	// All samples at distinct times so bins are meaningful; query the
	// whole space over bin-aligned intervals.
	var samples []SamplePoint
	for i := int64(0); i < 1000; i++ {
		samples = append(samples, SamplePoint{P: geom.Pt(float64(i%100), float64(i/10)), T: i})
	}
	idx := BuildAggQuadTree(samples, AggConfig{TimeBins: 10})
	all := idx.root.box
	// Whole time range: exact 1000 regardless of alignment.
	if got := idx.CountInRange(all, 0, 999); got != 1000 {
		t.Errorf("full = %d", got)
	}
	// One full bin: width = 100.
	if got := idx.CountInRange(all, 0, 99); got != 100 {
		t.Errorf("first bin = %d", got)
	}
	// Unaligned: must still be exact via descent.
	if got := idx.CountInRange(all, 50, 149); got != 100 {
		t.Errorf("unaligned = %d", got)
	}
}

func TestAggQuadTreeDuplicatePoints(t *testing.T) {
	// All samples at the same location must not cause infinite
	// splitting.
	var samples []SamplePoint
	for i := int64(0); i < 500; i++ {
		samples = append(samples, SamplePoint{P: geom.Pt(5, 5), T: i % 7})
	}
	idx := BuildAggQuadTree(samples, AggConfig{LeafCapacity: 16})
	if got := idx.CountInRange(boxAround(5, 5, 1), 0, 6); got != 500 {
		t.Errorf("duplicates = %d", got)
	}
	if got := idx.CountInRange(boxAround(5, 5, 1), 0, 0); got != 72 {
		// times 0..6 cycling over 500: t=0 occurs ceil(500/7)=72 times.
		t.Errorf("t=0 duplicates = %d", got)
	}
}

func TestAggConfigDefaults(t *testing.T) {
	c := AggConfig{}.withDefaults()
	if c.LeafCapacity != 64 || c.MaxDepth != 16 || c.TimeBins != 64 {
		t.Errorf("defaults = %+v", c)
	}
}
