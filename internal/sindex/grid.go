package sindex

import (
	"mogis/internal/geom"
)

// Grid is a uniform bucket grid over a fixed extent, used for fast
// point location against polygon layers (the workhorse behind the
// precomputed-overlay evaluation of Section 5).
type Grid struct {
	extent geom.BBox
	nx, ny int
	cellW  float64
	cellH  float64
	cells  [][]int64 // ids per cell, row-major
}

// NewGrid creates a grid over extent with nx × ny cells.
func NewGrid(extent geom.BBox, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		extent: extent,
		nx:     nx,
		ny:     ny,
		cellW:  extent.Width() / float64(nx),
		cellH:  extent.Height() / float64(ny),
		cells:  make([][]int64, nx*ny),
	}
}

// Extent returns the grid's coverage box.
func (g *Grid) Extent() geom.BBox { return g.extent }

// Dims returns the cell counts (nx, ny).
func (g *Grid) Dims() (int, int) { return g.nx, g.ny }

// cellRange returns the clamped index range [x0,x1]×[y0,y1] of cells
// overlapping box, or ok=false if box is outside the extent.
func (g *Grid) cellRange(box geom.BBox) (x0, y0, x1, y1 int, ok bool) {
	if !box.Intersects(g.extent) {
		return 0, 0, 0, 0, false
	}
	x0 = g.clampX(int((box.MinX - g.extent.MinX) / g.cellW))
	x1 = g.clampX(int((box.MaxX - g.extent.MinX) / g.cellW))
	y0 = g.clampY(int((box.MinY - g.extent.MinY) / g.cellH))
	y1 = g.clampY(int((box.MaxY - g.extent.MinY) / g.cellH))
	return x0, y0, x1, y1, true
}

func (g *Grid) clampX(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.nx {
		return g.nx - 1
	}
	return i
}

func (g *Grid) clampY(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.ny {
		return g.ny - 1
	}
	return i
}

// Insert registers id in every cell overlapping box.
func (g *Grid) Insert(box geom.BBox, id int64) {
	x0, y0, x1, y1, ok := g.cellRange(box)
	if !ok {
		return
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			i := y*g.nx + x
			g.cells[i] = append(g.cells[i], id)
		}
	}
}

// CandidatesAt appends to dst the ids registered in the cell containing
// p. Duplicate ids may appear when callers merge several cells; ids
// within one cell are unique if inserted once.
func (g *Grid) CandidatesAt(p geom.Point, dst []int64) []int64 {
	if !g.extent.ContainsPoint(p) {
		return dst
	}
	x := g.clampX(int((p.X - g.extent.MinX) / g.cellW))
	y := g.clampY(int((p.Y - g.extent.MinY) / g.cellH))
	return append(dst, g.cells[y*g.nx+x]...)
}

// CandidatesIn appends to dst the ids registered in any cell
// overlapping box, deduplicated.
func (g *Grid) CandidatesIn(box geom.BBox, dst []int64) []int64 {
	x0, y0, x1, y1, ok := g.cellRange(box)
	if !ok {
		return dst
	}
	seen := make(map[int64]struct{})
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, id := range g.cells[y*g.nx+x] {
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// PointLocator resolves point-in-polygon queries against a set of
// polygons with a grid of candidate lists.
type PointLocator struct {
	grid *Grid
	pgs  map[int64]geom.Polygon
}

// NewPointLocator indexes the polygons (id → polygon). Cell counts
// scale with the square root of the polygon count for roughly O(1)
// candidates per query on evenly sized partitions.
func NewPointLocator(pgs map[int64]geom.Polygon) *PointLocator {
	extent := geom.EmptyBBox()
	for _, pg := range pgs {
		extent = extent.Union(pg.BBox())
	}
	n := 1
	for n*n < 4*len(pgs) {
		n++
	}
	g := NewGrid(extent, n, n)
	for id, pg := range pgs {
		g.Insert(pg.BBox(), id)
	}
	return &PointLocator{grid: g, pgs: pgs}
}

// Locate appends to dst the ids of all polygons containing p
// (boundary inclusive), and returns dst.
func (l *PointLocator) Locate(p geom.Point, dst []int64) []int64 {
	for _, id := range l.grid.CandidatesAt(p, nil) {
		if l.pgs[id].ContainsPoint(p) {
			dst = append(dst, id)
		}
	}
	return dst
}

// LocateOne returns one polygon containing p, preferring a strict
// interior hit over a boundary hit, with ok=false when none contains
// it.
func (l *PointLocator) LocateOne(p geom.Point) (int64, bool) {
	var boundary int64 = -1
	for _, id := range l.grid.CandidatesAt(p, nil) {
		switch l.pgs[id].Locate(p) {
		case geom.Inside:
			return id, true
		case geom.OnBoundary:
			boundary = id
		}
	}
	if boundary >= 0 {
		return boundary, true
	}
	return 0, false
}
