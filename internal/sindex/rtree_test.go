package sindex

import (
	"math/rand"
	"sort"
	"testing"

	"mogis/internal/geom"
)

func boxAround(x, y, r float64) geom.BBox {
	return geom.BBox{MinX: x - r, MinY: y - r, MaxX: x + r, MaxY: y + r}
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree(8)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Search(boxAround(0, 0, 100), nil); len(got) != 0 {
		t.Errorf("Search on empty = %v", got)
	}
	if h := tr.Height(); h != 1 {
		t.Errorf("Height = %d", h)
	}
}

func TestRTreeInsertSearch(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 100; i++ {
		x := float64(i % 10)
		y := float64(i / 10)
		tr.Insert(boxAround(x*10, y*10, 1), int64(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Query a window covering ids with x in {0,1}, y in {0,1}: ids 0,1,10,11.
	got := tr.Search(geom.BBox{MinX: -2, MinY: -2, MaxX: 12, MaxY: 12}, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{0, 1, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRTreeIgnoresEmptyBox(t *testing.T) {
	tr := NewRTree(4)
	tr.Insert(geom.EmptyBBox(), 1)
	if tr.Len() != 0 {
		t.Error("empty box should not be inserted")
	}
}

// TestRTreeAgainstLinearScan cross-validates random workloads.
func TestRTreeAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, build := range []string{"dynamic", "bulk"} {
		t.Run(build, func(t *testing.T) {
			n := 500
			boxes := make([]geom.BBox, n)
			var tr *RTree
			if build == "dynamic" {
				tr = NewRTree(8)
				for i := range boxes {
					boxes[i] = boxAround(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*5)
					tr.Insert(boxes[i], int64(i))
				}
			} else {
				entries := make([]Entry, n)
				for i := range boxes {
					boxes[i] = boxAround(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*5)
					entries[i] = Entry{Box: Box(boxes[i]), ID: int64(i)}
				}
				tr = BulkLoad(entries, 8)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for q := 0; q < 50; q++ {
				query := boxAround(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*60)
				got := tr.Search(query, nil)
				var want []int64
				for i, b := range boxes {
					if b.Intersects(query) {
						want = append(want, int64(i))
					}
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("query %v: got %d ids, want %d", query, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("query %v: got %v, want %v", query, got, want)
					}
				}
			}
		})
	}
}

func TestRTreeVisitEarlyStop(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 50; i++ {
		tr.Insert(boxAround(float64(i), 0, 0.4), int64(i))
	}
	count := 0
	tr.Visit(geom.BBox{MinX: -1, MinY: -1, MaxX: 100, MaxY: 1}, func(_ geom.BBox, _ int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("Visit count = %d, want 5 (early stop)", count)
	}
}

func TestRTreeBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 17, 64, 1000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Box: Box(boxAround(float64(i*3), float64((i*7)%50), 1)), ID: int64(i)}
		}
		tr := BulkLoad(entries, 16)
		if tr.Len() != n {
			t.Errorf("n=%d: Len = %d", n, tr.Len())
		}
		got := tr.Search(geom.BBox{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, nil)
		if len(got) != n {
			t.Errorf("n=%d: full search returned %d", n, len(got))
		}
	}
}

func TestRTreeHeightGrowth(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(boxAround(float64(i%100), float64(i/100), 0.4), int64(i))
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("Height = %d, want >= 3 for 1000 entries at fanout 4", h)
	}
	if !tr.Bounds().ContainsPoint(geom.Pt(50, 5)) {
		t.Error("Bounds should cover inserted area")
	}
}

func TestRTreeMinFanoutClamp(t *testing.T) {
	tr := NewRTree(1) // raised to 4
	for i := 0; i < 20; i++ {
		tr.Insert(boxAround(float64(i), 0, 0.3), int64(i))
	}
	got := tr.Search(geom.BBox{MinX: -1, MinY: -1, MaxX: 30, MaxY: 1}, nil)
	if len(got) != 20 {
		t.Errorf("search returned %d of 20", len(got))
	}
}
