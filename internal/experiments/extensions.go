package experiments

import (
	"fmt"
	"math"
	"time"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/sindex"
	"mogis/internal/traj"
	"mogis/internal/trajagg"
	"mogis/internal/workload"
)

// P6 compares the distinct-object index against scans for "number of
// distinct objects in region × interval" — the actual quantity the
// paper's queries count ("number of buses", not samples).
func P6(sampleCounts []int, queries int) Report {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{10000, 40000, 160000}
	}
	if queries <= 0 {
		queries = 200
	}
	var rows []Row
	for _, n := range sampleCounts {
		city := workload.GenCity(workload.CityConfig{Seed: 6, Cols: 8, Rows: 8})
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 6, Objects: n / 100, Samples: 100, Step: 60, Speed: 3,
		})
		samples := make([]sindex.OidSamplePoint, 0, fm.Len())
		for _, tp := range fm.Tuples() {
			samples = append(samples, sindex.OidSamplePoint{P: tp.Point(), T: int64(tp.T), Oid: int64(tp.Oid)})
		}
		t0 := time.Now()
		idx := sindex.BuildDistinctIndex(samples, 64)
		buildTime := time.Since(t0)

		lo, hi, _ := fm.TimeSpan()
		var idxTotal, scanTotal time.Duration
		for q := 0; q < queries; q++ {
			cx := city.Extent.MinX + float64(q%10)/10*city.Extent.Width()
			cy := city.Extent.MinY + float64(q/10%10)/10*city.Extent.Height()
			r := 60 + float64(q%7)*40
			box := geom.BBox{MinX: cx - r, MinY: cy - r, MaxX: cx + r, MaxY: cy + r}
			ta := int64(lo) + int64(q)*(int64(hi)-int64(lo))/int64(queries+1)
			tb := ta + (int64(hi)-int64(lo))/4

			s0 := time.Now()
			got := idx.CountDistinct(box, ta, tb)
			idxTotal += time.Since(s0)

			s0 = time.Now()
			want := sindex.CountDistinctNaive(samples, box, ta, tb)
			scanTotal += time.Since(s0)

			if got != want {
				return Report{ID: "P6", Title: "distinct-object index",
					Body: fmt.Sprintf("MISMATCH at query %d: %d vs %d", q, got, want)}
			}
		}
		speedup := float64(scanTotal.Nanoseconds()) / math.Max(1, float64(idxTotal.Nanoseconds()))
		rows = append(rows, Row{
			Label: fmt.Sprintf("%d samples", len(samples)),
			Values: []string{
				fmtDur(buildTime),
				fmtDur(idxTotal / time.Duration(queries)),
				fmtDur(scanTotal / time.Duration(queries)),
				fmt.Sprintf("%.1fx", speedup),
			},
		})
	}
	body := Table([]string{"workload", "build", "index/query", "scan/query", "speedup"}, rows)
	body += "  expectation: distinct-object counts (the paper's \"number of buses\") also benefit from pre-aggregation\n"
	return Report{ID: "P6", Title: "distinct-object counting: index vs scan", Body: body, Pass: true}
}

// P7 exercises trajectory aggregation (Meratnia & de By, Section 2 of
// the paper) and SED compression: the pass-count surface must be
// invariant under compression within the unit size, and compression
// must shrink the MOFT substantially.
func P7(objectCounts []int) Report {
	if len(objectCounts) == 0 {
		objectCounts = []int{100, 400}
	}
	city := workload.GenCity(workload.CityConfig{Seed: 7, Cols: 8, Rows: 8})
	g, err := trajagg.NewUnitGrid(city.Extent, 16, 16)
	if err != nil {
		return Report{ID: "P7", Title: "trajectory aggregation", Body: err.Error()}
	}
	var rows []Row
	pass := true
	for _, n := range objectCounts {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 7, Objects: n, Samples: 120, Step: 30, Speed: 2,
		})
		_, eng := city.Context(fm)
		lits, err := eng.Trajectories(qctx(), "FM")
		if err != nil {
			return Report{ID: "P7", Title: "trajectory aggregation", Body: err.Error()}
		}

		t0 := time.Now()
		surface := trajagg.BuildSurface(g, lits)
		surfTime := time.Since(t0)

		// Compress every trajectory with epsilon = 1/16 of a unit cell
		// and rebuild the surface.
		eps := city.Extent.Width() / 16 / 16
		var origPts, compPts int
		litsC := make(map[moft.Oid]*traj.LIT, len(lits))
		for oid, l := range lits {
			s := l.Sample()
			c := traj.Compress(s, eps)
			origPts += len(s)
			compPts += len(c)
			litsC[oid] = traj.MustLIT(c)
		}
		surfaceC := trajagg.BuildSurface(g, litsC)

		// Surface similarity: relative L1 difference of the pass-count
		// surfaces (total absolute count change over total count).
		var l1, total int
		for u := range surface.Counts {
			d := surface.Counts[u] - surfaceC.Counts[u]
			if d < 0 {
				d = -d
			}
			l1 += d
			total += surface.Counts[u]
		}
		changedFrac := 0.0
		if total > 0 {
			changedFrac = float64(l1) / float64(total)
		}
		if changedFrac > 0.10 {
			pass = false
		}

		aggs := trajagg.Aggregate(g, lits)
		_, maxCount := surface.Max()
		rows = append(rows, Row{
			Label: fmt.Sprintf("%d objects", n),
			Values: []string{
				fmtDur(surfTime),
				fmt.Sprintf("%d", maxCount),
				fmt.Sprintf("%d", len(aggs)),
				fmt.Sprintf("%.1f%%", 100*float64(compPts)/float64(origPts)),
				fmt.Sprintf("%.1f%%", 100*changedFrac),
			},
		})
	}
	body := Table([]string{"workload", "surface", "max-pass", "aggregated-paths", "compressed-size", "surface-L1-delta"}, rows)
	body += "  expectation (paper §2, Meratnia & de By): unit-grid aggregation is insensitive to\n" +
		"  sampling changes — SED compression shrinks the data while the pass-count surface\n" +
		"  stays nearly identical\n"
	return Report{ID: "P7", Title: "trajectory aggregation and SED compression", Body: body, Pass: pass}
}

// A1 measures the cost of the exact-arithmetic fallback in the
// orientation predicate (DESIGN.md decision 1): the float filter on
// general-position inputs versus the big.Rat path forced by
// degenerate inputs, and verifies the fallback decides a case the
// filter cannot certify.
func A1() Report {
	const iters = 200000
	// General position: the filter certifies the sign.
	a, b, c := geom.Pt(0.1, 0.2), geom.Pt(10.3, 7.9), geom.Pt(3.7, 9.1)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		geom.Orient(a, b, c)
	}
	fast := time.Since(t0)

	// Exactly collinear at large magnitude: the filter must fall back.
	d, e, f := geom.Pt(1e16, 1e16), geom.Pt(2e16, 2e16), geom.Pt(3e16, 3e16)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		geom.Orient(d, e, f)
	}
	slow := time.Since(t0)

	correct := geom.Orient(d, e, f) == geom.Collinear
	var rows []Row
	rows = append(rows,
		Row{Label: "float filter (general position)", Values: []string{fmtDur(fast / iters)}},
		Row{Label: "exact fallback (degenerate)", Values: []string{fmtDur(slow / iters)}},
		Row{Label: "slowdown", Values: []string{fmt.Sprintf("%.0fx", float64(slow)/math.Max(1, float64(fast)))}},
	)
	body := Table([]string{"path", "per call"}, rows)
	body += "  the fallback fires only near degeneracy; general-position inputs never pay it\n"
	return Report{ID: "A1", Title: "ablation — exact predicate fallback vs float filter", Body: body, Pass: correct}
}
