// Package experiments implements the reproduction experiments indexed
// in DESIGN.md and recorded in EXPERIMENTS.md: the paper-artifact
// checks E1–E6 (Table 1, Figure 1, Figure 2, Remark 1, the Section-4
// example queries, and the Section-5 Piet-QL query) and the
// performance studies P1–P9 that validate the paper's qualitative
// claims about evaluation strategy. Each experiment returns a
// printable report so cmd/mobench, tests and benchmarks share one
// implementation.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/scenario"
	"mogis/internal/sindex"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

var (
	baseMu  sync.Mutex
	baseCtx = context.Background()
)

// SetBaseContext sets the context every experiment's engine and
// Piet-QL calls run under (nil restores context.Background).
// cmd/mobench uses it to apply -timeout and -budget to experiment
// runs; experiments construct their engines internally, so the
// context cannot be threaded per call.
func SetBaseContext(ctx context.Context) {
	baseMu.Lock()
	defer baseMu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	baseCtx = ctx
}

// qctx returns the configured base context.
func qctx() context.Context {
	baseMu.Lock()
	defer baseMu.Unlock()
	return baseCtx
}

var (
	tuneMu          sync.Mutex
	tuneGridCells   int
	tuneTimeBuckets int
)

// SetGridDefaults overrides the grid sizing the grid experiments (P10,
// P13) apply in their accelerated phases: cells is the SetAggGrid
// argument (0 keeps adaptive auto-sizing), buckets the SetTimeBuckets
// argument (0 keeps adaptive, <0 disables the temporal index).
// cmd/mobench uses it for -grid-cells/-time-buckets, and records the
// values in the benchmark JSON so -baseline can warn on config drift.
func SetGridDefaults(cells, buckets int) {
	tuneMu.Lock()
	defer tuneMu.Unlock()
	tuneGridCells, tuneTimeBuckets = cells, buckets
}

// gridDefaults returns the configured accelerated-phase grid sizing.
func gridDefaults() (cells, buckets int) {
	tuneMu.Lock()
	defer tuneMu.Unlock()
	return tuneGridCells, tuneTimeBuckets
}

// Report is a rendered experiment result.
type Report struct {
	ID    string
	Title string
	Body  string
	// Pass indicates the paper-artifact checks succeeded (always true
	// for performance studies that ran to completion).
	Pass bool
	// Metrics carries machine-readable key results (ns/op, speedups,
	// cache rates) for benchmark baselines such as BENCH_PR2.json;
	// nil for experiments that are purely textual.
	Metrics map[string]float64 `json:",omitempty"`
}

func (r Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("=== %s: %s [%s]\n%s", r.ID, r.Title, status, r.Body)
}

// E1 reproduces Table 1: the MOFT FMbus.
func E1() Report {
	s := scenario.New()
	body := s.FMbus.String()
	pass := s.FMbus.Len() == 12 && len(s.FMbus.Objects()) == 6
	return Report{ID: "E1", Title: "Table 1 — the M.O. fact table FMbus", Body: body, Pass: pass}
}

// E2 checks the six Figure-1 facts.
func E2() Report {
	s := scenario.New()
	low := s.LowIncomeRegion()
	lits, err := s.Engine.Trajectories(qctx(), "FMbus")
	if err != nil {
		return Report{ID: "E2", Title: "Figure 1 facts", Body: err.Error()}
	}
	var sb strings.Builder
	pass := true
	check := func(name string, ok bool) {
		status := "ok"
		if !ok {
			status = "VIOLATED"
			pass = false
		}
		fmt.Fprintf(&sb, "  %-68s %s\n", name, status)
	}

	allLow := true
	for _, tp := range s.FMbus.ObjectTuples(1) {
		allLow = allLow && low(tp.Point())
	}
	check("O1 remains always within a low-income region", allLow)

	o2 := s.FMbus.ObjectTuples(2)
	check("O2 starts high-income, enters low-income, gets out again",
		!low(o2[0].Point()) && low(o2[1].Point()) && !low(o2[2].Point()))

	highOnly := true
	for _, oid := range []moft.Oid{3, 4, 5} {
		for _, tp := range s.FMbus.ObjectTuples(oid) {
			highOnly = highOnly && !low(tp.Point())
		}
	}
	check("O3, O4, O5 are always in high-income neighborhoods", highOnly)

	sampledLow := false
	for _, tp := range s.FMbus.ObjectTuples(6) {
		sampledLow = sampledLow || low(tp.Point())
	}
	passesLow := false
	for _, pg := range s.LowIncomePolygons() {
		passesLow = passesLow || lits[6].PassesThroughPolygon(pg)
	}
	check("O6 passes through a low-income region without a sample inside", !sampledLow && passesLow)

	return Report{ID: "E2", Title: "Figure 1 — stated object behaviours", Body: sb.String(), Pass: pass}
}

// E3 reproduces the Figure-2 schema and validates it against
// Definition 1.
func E3() Report {
	s := scenario.New()
	err := s.GIS.Validate()
	body := s.GIS.Schema().Describe()
	if err != nil {
		body += "validation: " + err.Error() + "\n"
	} else {
		body += "validation: all hierarchies satisfy Definition 1\n"
	}
	return Report{ID: "E3", Title: "Figure 2 — GIS dimension schema", Body: body, Pass: err == nil}
}

// E4 evaluates the motivating query of Section 1.2 and checks
// Remark 1's value 4/3.
func E4() Report {
	s := scenario.New()
	rel, err := s.Engine.RegionC(qctx(), s.MotivatingFormula(), []fo.Var{"o", "t"})
	if err != nil {
		return Report{ID: "E4", Title: "Remark 1", Body: err.Error()}
	}
	rate, err := s.MotivatingResult()
	if err != nil {
		return Report{ID: "E4", Title: "Remark 1", Body: err.Error()}
	}
	var sb strings.Builder
	sb.WriteString("region C (Oid, t):\n")
	sb.WriteString(indent(rel.String(), "  "))
	fmt.Fprintf(&sb, "buses per hour = |C| / %d hours = %d/%d = %.4f (paper: 4/3 = 1.3333)\n",
		scenario.MorningHours, rel.Len(), scenario.MorningHours, rate)
	pass := rel.Len() == 4 && math.Abs(rate-4.0/3) < 1e-12
	return Report{ID: "E4", Title: "Remark 1 — the motivating query evaluates to 4/3", Body: sb.String(), Pass: pass}
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// E5 runs the Section-4 example queries Q1–Q7 (adapted to the
// running example's city) and reports their results.
func E5() Report {
	s := scenario.New()
	var sb strings.Builder
	pass := true
	fail := func(q string, err error) {
		fmt.Fprintf(&sb, "  %s: ERROR %v\n", q, err)
		pass = false
	}

	// Q0 (Type 1, Section 3.1's spatial-aggregation example): "total
	// population of provinces crossed by a river", population stored
	// per polygon and apportioned by area over the river's buffer.
	riverPl, _ := s.Lr.Polyline(1)
	gft := gis.NewFactTable(gis.FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	for _, m := range s.Neighborhoods.Members("neighborhood") {
		v, _ := s.Neighborhoods.Attr("neighborhood", m, "population")
		popv, _ := v.Num()
		_, id, _ := s.Ln.Alpha("neighb", string(m))
		gft.MustSet(id, popv)
	}
	var crossedPop float64
	for _, id := range s.Ln.IDs(layer.KindPolygon) {
		pg, _ := s.Ln.Polygon(id)
		if pg.IntersectsPolyline(riverPl) {
			v, _ := gft.Measure(id, "population")
			crossedPop += v
		}
	}
	fmt.Fprintf(&sb, "  Q0 population of neighborhoods crossed by the river: %.0f\n", crossedPop)
	pass = pass && crossedPop == 60000+45000+30000+25000+40000 // the river borders all five

	// Q1 (Type 4): number of cars in region "South" on Monday morning.
	south := []layer.Gid{scenario.PgMeir, scenario.PgDam, scenario.PgZuid}
	q1 := fo.Exists([]fo.Var{"x", "y", "pg"}, fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.TimeRollup{Cat: timedim.CatDayOfWeek, T: fo.V("t"), V: fo.CStr("Monday")},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.GeomIn{G: fo.V("pg"), IDs: south},
	))
	if n, err := s.Engine.CountRegion(qctx(), q1, []fo.Var{"o"}); err != nil {
		fail("Q1", err)
	} else {
		fmt.Fprintf(&sb, "  Q1 cars in the South on Monday morning: %d objects\n", n)
		pass = pass && n == 3 // O1, O2, O6
	}

	// Q2 (Type 4): maximal density of cars on streets, interpretation
	// (a): per street over Monday, count / street length. (The only
	// on-street sample in Table 1 is O2 at (25,8) at noon, so the
	// window is the whole day.)
	q2 := fo.Exists([]fo.Var{"x", "y", "pl"}, fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatDayOfWeek, T: fo.V("t"), V: fo.CStr("Monday")},
		&fo.PointIn{Layer: "Lh", Kind: layer.KindPolyline, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pl")},
		&fo.Alpha{Attr: "street", A: fo.V("s"), G: fo.V("pl")},
	))
	if rel, err := s.Engine.RegionC(qctx(), q2, []fo.Var{"o", "t", "s"}); err != nil {
		fail("Q2", err)
	} else {
		res, err := rel.GroupAggregate(olap.Count, "", []fo.Var{"s"})
		if err != nil {
			fail("Q2", err)
		} else {
			best, bestD := "", 0.0
			for _, row := range res.Rows {
				_, plID, _ := s.Lh.Alpha("street", string(row.Group[0]))
				pl, _ := s.Lh.Polyline(plID)
				if d := row.Value / pl.Length(); d > bestD {
					best, bestD = string(row.Group[0]), d
				}
			}
			fmt.Fprintf(&sb, "  Q2 max street density (Monday): %s at %.4f cars/unit (samples on streets: %d)\n",
				best, bestD, rel.Len())
			pass = pass && rel.Len() == 2 && best == "Meirstraat" // O1@(8,8) and O2@(25,8)
		}
	}

	// Q3 (Type 4 with negation): objects passing completely through
	// high-population neighborhoods — sampled in Berchem (pop 40k ≥
	// threshold 35k here) and never sampled in a lower-pop one.
	q3 := fo.And(
		fo.Exists([]fo.Var{"t", "x", "y", "pg", "n"}, fo.And(
			&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
			&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
			&fo.Alpha{Attr: "neighb", A: fo.V("n"), G: fo.V("pg")},
			&fo.AttrCmp{Concept: "neighb", M: fo.V("n"), Attr: "population", Op: fo.GE, Rhs: fo.CReal(35000)},
		)),
		fo.Not(fo.Exists([]fo.Var{"t1", "x1", "y1", "pg1", "n1"}, fo.And(
			&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t1"), X: fo.V("x1"), Y: fo.V("y1")},
			&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x1"), Y: fo.V("y1"), G: fo.V("pg1")},
			&fo.Alpha{Attr: "neighb", A: fo.V("n1"), G: fo.V("pg1")},
			&fo.AttrCmp{Concept: "neighb", M: fo.V("n1"), Attr: "population", Op: fo.LT, Rhs: fo.CReal(35000)},
		))),
	)
	if rel, err := s.Engine.RegionC(qctx(), q3, []fo.Var{"o"}); err != nil {
		fail("Q3", err)
	} else {
		fmt.Fprintf(&sb, "  Q3 objects only ever sampled in populous neighborhoods: %d\n", rel.Len())
	}

	// Q4 (Type 6): how many cars in Berchem at 13:00 (T(5))?
	berchem, _ := s.Ln.Polygon(scenario.PgBerchem)
	if objs, err := s.Engine.ObjectsSampledAt(qctx(), "FMbus", scenario.T(5), berchem); err != nil {
		fail("Q4", err)
	} else {
		fmt.Fprintf(&sb, "  Q4 cars in Berchem at 13:00: %d\n", len(objs))
		pass = pass && len(objs) == 1 // O3
	}

	// Q5 (Type 7): total time spent continuously in the city's south
	// (interpolated).
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	zuid, _ := s.Ln.Polygon(scenario.PgZuid)
	if spent, err := s.Engine.TimeSpentInside(qctx(), "FMbus", zuid, window); err != nil {
		fail("Q5", err)
	} else {
		var total float64
		for _, v := range spent {
			total += v
		}
		fmt.Fprintf(&sb, "  Q5 total interpolated time in Zuid: %.0f seconds over %d objects\n", total, len(spent))
		pass = pass && len(spent) >= 2 // O2 and O6 at least
	}

	// Q6 (Type 7): cars within 5 units of a school, interpolated vs
	// sample-only.
	school, _ := s.Ls.Node(1)
	if within, err := s.Engine.ObjectsEverWithinRadius(qctx(), "FMbus", school, 5, window); err != nil {
		fail("Q6", err)
	} else {
		q6s := fo.Exists([]fo.Var{"x", "y", "sx", "sy", "sc"}, fo.And(
			&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
			&fo.Alpha{Attr: "school", A: fo.CStr("MeirSchool"), G: fo.V("sc")},
			&fo.PointIn{Layer: "Ls", Kind: layer.KindNode, X: fo.V("sx"), Y: fo.V("sy"), G: fo.V("sc")},
			&fo.DistLE{X1: fo.V("x"), Y1: fo.V("y"), X2: fo.V("sx"), Y2: fo.V("sy"), R: 5},
		))
		relS, err := s.Engine.RegionC(qctx(), q6s, []fo.Var{"o"})
		if err != nil {
			fail("Q6", err)
		} else {
			fmt.Fprintf(&sb, "  Q6 near MeirSchool (r=5): interpolated %d objects, sample-only %d objects\n",
				len(within), relS.Len())
		}
	}

	// Q7 (Type 4): persons within 4 units of the store "DamStore" per
	// hour in the morning.
	q7 := fo.Exists([]fo.Var{"x", "y", "bx", "by", "bs"}, fo.And(
		&fo.Fact{Table: "FMbus", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
		&fo.Alpha{Attr: "store", A: fo.CStr("DamStore"), G: fo.V("bs")},
		&fo.PointIn{Layer: "Lstores", Kind: layer.KindNode, X: fo.V("bx"), Y: fo.V("by"), G: fo.V("bs")},
		&fo.DistLE{X1: fo.V("x"), Y1: fo.V("y"), X2: fo.V("bx"), Y2: fo.V("by"), R: 4},
		&fo.TimeRollup{Cat: timedim.CatHour, T: fo.V("t"), V: fo.V("h")},
	))
	if res, err := s.Engine.AggregateRegion(qctx(), q7, []fo.Var{"o", "t", "h"}, olap.Count, "", []fo.Var{"h"}); err != nil {
		fail("Q7", err)
	} else {
		fmt.Fprintf(&sb, "  Q7 waiting near DamStore by hour: %d hour buckets\n", len(res.Rows))
	}

	return Report{ID: "E5", Title: "Section 4 — example queries Q1..Q7", Body: sb.String(), Pass: pass}
}

// E6 runs the Section-5 Piet-QL query end to end.
func E6() Report {
	s := scenario.New()
	kinds := map[string]layer.Kind{
		"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
		"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
	}
	ov, err := overlay.Precompute(qctx(), map[string]*layer.Layer{
		"Ln": s.Ln, "Lr": s.Lr, "Ls": s.Ls, "Lstores": s.Lstores, "Lh": s.Lh,
	}, []overlay.Pair{
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
	})
	if err != nil {
		return Report{ID: "E6", Title: "Piet-QL", Body: err.Error()}
	}
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: s.Neighborhoods, Level: "neighborhood"}},
		Measures: []string{"population"},
	})
	for _, m := range s.Neighborhoods.Members("neighborhood") {
		v, _ := s.Neighborhoods.Attr("neighborhood", m, "population")
		p, _ := v.Num()
		ft.MustAdd([]olap.Member{m}, []float64{p})
	}
	sys := &pietql.System{
		Ctx: s.Ctx, Engine: s.Engine, Kinds: kinds, Overlay: ov,
		SchemaName: "PietSchema",
		Cubes:      mdx.Catalog{"CityCube": &mdx.Cube{Name: "CityCube", Fact: ft}},
	}
	query := `
SELECT layer.Lr, layer.Ln, layer.Lstores;
FROM PietSchema;
WHERE intersection(layer.Lr, layer.Ln, subplevel.Linestring)
AND (layer.Ln)
CONTAINS (layer.Ln, layer.Lstores, subplevel.Point);
| SELECT {[Measures].[population]} ON COLUMNS, {[place].[neighborhood].Members} ON ROWS FROM [CityCube]
| MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln`
	out, err := sys.Run(qctx(), query)
	if err != nil {
		return Report{ID: "E6", Title: "Piet-QL", Body: err.Error()}
	}
	var sb strings.Builder
	sb.WriteString("query: cities crossed by a river containing at least one store;\n")
	sb.WriteString("       cars passing through them (Section 5 example)\n")
	sb.WriteString(indent(pietql.FormatOutcome(out), "  "))
	pass := out.HasMO && out.MOCount == 5 && len(out.GeoIDs["Ln"]) == 2
	return Report{ID: "E6", Title: "Section 5 — Piet-QL end to end", Body: sb.String(), Pass: pass}
}

// --- Performance studies ----------------------------------------------

// Row is one measurement row of a performance table.
type Row struct {
	Label  string
	Values []string
}

// Table renders measurement rows with a header.
func Table(header []string, rows []Row) string {
	var sb strings.Builder
	sb.WriteString("  " + strings.Join(header, "\t") + "\n")
	for _, r := range rows {
		sb.WriteString("  " + r.Label + "\t" + strings.Join(r.Values, "\t") + "\n")
	}
	return sb.String()
}

// P1 compares precomputed-overlay versus naive evaluation of the
// Section-5 geometric query over growing city sizes (the paper's
// central evaluation claim).
func P1(grids []int, queries int) Report {
	if len(grids) == 0 {
		grids = []int{4, 8, 16, 32}
	}
	if queries <= 0 {
		queries = 50
	}
	var rows []Row
	for _, g := range grids {
		city := workload.GenCity(workload.CityConfig{Seed: 1, Cols: g, Rows: g})
		layers := city.Layers()
		refN := overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}
		refR := overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}

		t0 := time.Now()
		ov, err := overlay.Precompute(qctx(), layers, []overlay.Pair{{A: refR, B: refN}})
		if err != nil {
			return Report{ID: "P1", Title: "overlay vs naive", Body: err.Error()}
		}
		precompute := time.Since(t0)

		t0 = time.Now()
		for q := 0; q < queries; q++ {
			_ = ov.Intersecting(refR, 1, refN)
		}
		fast := time.Since(t0)

		t0 = time.Now()
		for q := 0; q < queries; q++ {
			if _, err := overlay.IntersectingNaive(layers, refR, 1, refN); err != nil {
				return Report{ID: "P1", Title: "overlay vs naive", Body: err.Error()}
			}
		}
		slow := time.Since(t0)

		speedup := float64(slow.Nanoseconds()) / math.Max(1, float64(fast.Nanoseconds()))
		rows = append(rows, Row{
			Label: fmt.Sprintf("%dx%d (%d polygons)", g, g, g*g),
			Values: []string{
				fmtDur(precompute),
				fmtDur(fast / time.Duration(queries)),
				fmtDur(slow / time.Duration(queries)),
				fmt.Sprintf("%.0fx", speedup),
			},
		})
	}
	body := Table([]string{"city", "precompute", "overlay/query", "naive/query", "speedup"}, rows)
	body += "  expectation (paper §5): overlay precomputation makes query-time geometry a lookup\n"
	return Report{ID: "P1", Title: "overlay precomputation vs naive geometric evaluation", Body: body, Pass: true}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// P2 compares the summable rewriting (fact-table sum) against numeric
// integration of a density for "population of low-income
// neighborhoods".
func P2() Report {
	city := workload.GenCity(workload.CityConfig{Seed: 2, Cols: 8, Rows: 8})
	// Fact table with per-polygon population.
	ft := gis.NewFactTable(gis.FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	densities := make(map[layer.Gid]float64)
	for _, m := range city.Neighborhoods.Members("neighborhood") {
		v, _ := city.Neighborhoods.Attr("neighborhood", m, "population")
		p, _ := v.Num()
		_, id, _ := city.Ln.Alpha("neighb", string(m))
		ft.MustSet(id, p)
		pg, _ := city.Ln.Polygon(id)
		densities[id] = p / pg.Area()
	}

	t0 := time.Now()
	want, err := gis.SummableFromFact(city.LowIncomeIDs, ft, "population").Evaluate()
	if err != nil {
		return Report{ID: "P2", Title: "summable vs integration", Body: err.Error()}
	}
	summableTime := time.Since(t0)

	mets := map[string]float64{
		"summable_ns_per_op": float64(summableTime.Nanoseconds()),
		"gomaxprocs":         float64(runtime.GOMAXPROCS(0)),
	}
	var rows []Row
	rows = append(rows, Row{Label: "summable Σ h'(g)", Values: []string{fmtDur(summableTime), fmt.Sprintf("%.0f", want), "0.00%"}})
	for _, subdiv := range []int{0, 2, 4} {
		t0 = time.Now()
		var got float64
		for _, id := range city.LowIncomeIDs {
			pg, _ := city.Ln.Polygon(id)
			v, err := gis.IntegratePolygon(gis.ConstDensity(densities[id]), pg, subdiv)
			if err != nil {
				return Report{ID: "P2", Title: "summable vs integration", Body: err.Error()}
			}
			got += v
		}
		dt := time.Since(t0)
		mets[fmt.Sprintf("integration_ns_per_op_subdiv%d", subdiv)] = float64(dt.Nanoseconds())
		rows = append(rows, Row{
			Label: fmt.Sprintf("integration subdiv=%d", subdiv),
			Values: []string{fmtDur(dt), fmt.Sprintf("%.0f", got),
				fmt.Sprintf("%.2f%%", 100*math.Abs(got-want)/want)},
		})
	}
	body := Table([]string{"method", "time", "value", "error"}, rows)
	body += "  expectation (paper Def. 4/§5): summable queries avoid integration entirely\n"
	return Report{ID: "P2", Title: "summable rewriting vs numeric integration", Body: body, Pass: true, Metrics: mets}
}

// P3 measures interpolation-aware versus sample-only passes-through
// queries: cost and answer difference (the paper's O6 effect at
// scale).
func P3(objectCounts []int) Report {
	if len(objectCounts) == 0 {
		objectCounts = []int{100, 400, 1600}
	}
	city := workload.GenCity(workload.CityConfig{Seed: 3, Cols: 8, Rows: 8})
	target, _ := city.Ln.Polygon(city.LowIncomeIDs[0])
	var rows []Row
	for _, n := range objectCounts {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 3, Objects: n, Samples: 30, Step: 120, Speed: 3,
		})
		_, eng := city.Context(fm)
		lo, hi, _ := fm.TimeSpan()
		window := timedim.Interval{Lo: lo, Hi: hi}

		t0 := time.Now()
		sampled, err := eng.ObjectsSampledInside(qctx(), "FM", target, window)
		if err != nil {
			return Report{ID: "P3", Title: "interpolation vs samples", Body: err.Error()}
		}
		sampleTime := time.Since(t0)

		t0 = time.Now()
		passing, err := eng.ObjectsPassingThrough(qctx(), "FM", target, window)
		if err != nil {
			return Report{ID: "P3", Title: "interpolation vs samples", Body: err.Error()}
		}
		interpTime := time.Since(t0)

		rows = append(rows, Row{
			Label: fmt.Sprintf("%d objects", n),
			Values: []string{
				fmt.Sprintf("%d", len(sampled)),
				fmt.Sprintf("%d", len(passing)),
				fmt.Sprintf("+%d", len(passing)-len(sampled)),
				fmtDur(sampleTime), fmtDur(interpTime),
			},
		})
	}
	body := Table([]string{"workload", "sampled-only", "interpolated", "missed-by-samples", "t(sample)", "t(interp)"}, rows)
	body += "  expectation (paper Fig. 1, O6): sample-only answers undercount pass-through objects\n"
	return Report{ID: "P3", Title: "interpolated vs sample-only passes-through", Body: body, Pass: true}
}

// P4 compares the aggregate spatio-temporal index against MOFT scans
// for region×interval counts (the cited Papadias et al. strategy).
func P4(sampleCounts []int, queries int) Report {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{10000, 40000, 160000}
	}
	if queries <= 0 {
		queries = 200
	}
	var rows []Row
	for _, n := range sampleCounts {
		city := workload.GenCity(workload.CityConfig{Seed: 4, Cols: 8, Rows: 8})
		objects := n / 100
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 4, Objects: objects, Samples: 100, Step: 60, Speed: 3,
		})
		samples := make([]sindex.SamplePoint, 0, fm.Len())
		for _, tp := range fm.Tuples() {
			samples = append(samples, sindex.SamplePoint{P: tp.Point(), T: int64(tp.T)})
		}
		t0 := time.Now()
		idx := sindex.BuildAggQuadTree(samples, sindex.AggConfig{})
		buildTime := time.Since(t0)

		lo, hi, _ := fm.TimeSpan()
		boxes := make([]geom.BBox, queries)
		times := make([][2]int64, queries)
		for q := range boxes {
			cx := city.Extent.MinX + float64(q%10)/10*city.Extent.Width()
			cy := city.Extent.MinY + float64(q/10%10)/10*city.Extent.Height()
			r := 50 + float64(q%7)*30
			boxes[q] = geom.BBox{MinX: cx - r, MinY: cy - r, MaxX: cx + r, MaxY: cy + r}
			t0q := int64(lo) + int64(q)*(int64(hi)-int64(lo))/int64(queries+1)
			times[q] = [2]int64{t0q, t0q + (int64(hi)-int64(lo))/4}
		}

		t0 = time.Now()
		var idxSum int64
		for q := 0; q < queries; q++ {
			idxSum += idx.CountInRange(boxes[q], times[q][0], times[q][1])
		}
		idxTime := time.Since(t0)

		t0 = time.Now()
		var scanSum int64
		for q := 0; q < queries; q++ {
			scanSum += sindex.CountNaive(samples, boxes[q], times[q][0], times[q][1])
		}
		scanTime := time.Since(t0)

		if idxSum != scanSum {
			return Report{ID: "P4", Title: "aggregate index vs scan",
				Body: fmt.Sprintf("MISMATCH: index %d vs scan %d", idxSum, scanSum)}
		}
		speedup := float64(scanTime.Nanoseconds()) / math.Max(1, float64(idxTime.Nanoseconds()))
		rows = append(rows, Row{
			Label: fmt.Sprintf("%d samples", len(samples)),
			Values: []string{
				fmtDur(buildTime),
				fmtDur(idxTime / time.Duration(queries)),
				fmtDur(scanTime / time.Duration(queries)),
				fmt.Sprintf("%.1fx", speedup),
			},
		})
	}
	body := Table([]string{"workload", "build", "index/query", "scan/query", "speedup"}, rows)
	body += "  expectation (paper §2, Papadias et al.): pre-aggregation beats scans, growing with data size\n"
	return Report{ID: "P4", Title: "aggregate spatio-temporal index vs MOFT scan", Body: body, Pass: true}
}

// P5 measures first-order region-C evaluation over growing MOFTs:
// the motivating query's formula shape at scale.
func P5(sampleCounts []int) Report {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{1000, 4000, 16000}
	}
	city := workload.GenCity(workload.CityConfig{Seed: 5, Cols: 8, Rows: 8})
	var rows []Row
	for _, n := range sampleCounts {
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
			Seed: 5, Objects: n / 50, Samples: 50, Step: 300, Speed: 3,
		})
		_, eng := city.Context(fm)
		f := fo.Exists([]fo.Var{"x", "y", "pg", "nb"}, fo.And(
			&fo.MemberOf{Concept: "neighb", M: fo.V("nb")},
			&fo.TimeRollup{Cat: timedim.CatTimeOfDay, T: fo.V("t"), V: fo.CStr(timedim.Morning)},
			&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
			&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
			&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
			&fo.AttrCmp{Concept: "neighb", M: fo.V("nb"), Attr: "income", Op: fo.LT, Rhs: fo.CReal(1500)},
		))
		t0 := time.Now()
		rel, err := eng.RegionC(qctx(), f, []fo.Var{"o", "t"})
		if err != nil {
			return Report{ID: "P5", Title: "FO region-C scaling", Body: err.Error()}
		}
		dt := time.Since(t0)
		rows = append(rows, Row{
			Label: fmt.Sprintf("%d samples", fm.Len()),
			Values: []string{
				fmt.Sprintf("%d", rel.Len()),
				fmtDur(dt),
				fmtDur(time.Duration(int64(dt) / int64(maxInt(1, fm.Len())))),
			},
		})
	}
	body := Table([]string{"MOFT size", "|C|", "total", "per tuple"}, rows)
	body += "  expectation: near-linear in MOFT size (one index-backed point location per tuple)\n"
	return Report{ID: "P5", Title: "first-order region-C evaluation scaling", Body: body, Pass: true}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// P8 measures the cost of the observability layer on the Remark-1
// motivating query: the default production state (atomic counters
// only, no tracer attached) against a per-query span tracer. The
// acceptance target is that the disabled state adds no measurable
// allocations and enabling spans stays in the low single-digit
// percent range for realistic queries.
func P8(iters int) Report {
	if iters <= 0 {
		iters = 500
	}
	s := scenario.New()
	run := func(traced bool) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if traced {
				tr := obs.NewTracer("remark1")
				s.Ctx.SetTracer(tr)
				_, err := s.MotivatingResult()
				s.Ctx.SetTracer(nil)
				tr.Finish()
				if err != nil {
					return 0, err
				}
			} else if _, err := s.MotivatingResult(); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	// Warm the trajectory cache outside the measured loops.
	if _, err := run(false); err != nil {
		return Report{ID: "P8", Title: "observability overhead", Body: err.Error()}
	}
	off, err := run(false)
	if err == nil {
		var on time.Duration
		on, err = run(true)
		if err == nil {
			overhead := 100 * (float64(on) - float64(off)) / math.Max(1, float64(off))
			rows := []Row{
				{Label: "tracing off", Values: []string{fmtDur(off / time.Duration(iters))}},
				{Label: "tracing on", Values: []string{fmtDur(on / time.Duration(iters))}},
				{Label: "overhead", Values: []string{fmt.Sprintf("%+.1f%%", overhead)}},
			}
			body := Table([]string{"mode", "per query"}, rows)
			body += "  expectation: disabled tracing is free (nil-tracer no-ops); enabled spans cost a few microseconds per query\n"
			return Report{ID: "P8", Title: "observability overhead on the Remark-1 query", Body: body, Pass: true}
		}
	}
	return Report{ID: "P8", Title: "observability overhead", Body: err.Error()}
}

// All runs every experiment (with modest default sizes).
func All() []Report {
	return []Report{
		E1(), E2(), E3(), E4(), E5(), E6(),
		P1(nil, 0), P2(), P3(nil), P4(nil, 0), P5(nil), P6(nil, 0), P7(nil), P8(0), P9(nil, 0), P10(0), P11(0), P12(nil, 0), P13(0),
		A1(),
	}
}

// ByID runs a single experiment by identifier.
func ByID(id string) (Report, bool) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1(), true
	case "E2":
		return E2(), true
	case "E3":
		return E3(), true
	case "E4":
		return E4(), true
	case "E5":
		return E5(), true
	case "E6":
		return E6(), true
	case "P1":
		return P1(nil, 0), true
	case "P2":
		return P2(), true
	case "P3":
		return P3(nil), true
	case "P4":
		return P4(nil, 0), true
	case "P5":
		return P5(nil), true
	case "P6":
		return P6(nil, 0), true
	case "P7":
		return P7(nil), true
	case "P8":
		return P8(0), true
	case "P9":
		return P9(nil, 0), true
	case "P10":
		return P10(0), true
	case "P11":
		return P11(0), true
	case "P12":
		return P12(nil, 0), true
	case "P13":
		return P13(0), true
	case "A1":
		return A1(), true
	default:
		return Report{}, false
	}
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	ids := []string{"A1", "E1", "E2", "E3", "E4", "E5", "E6", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11", "P12", "P13"}
	sort.Strings(ids)
	return ids
}
