//go:build !race

package experiments

// raceEnabled is false in ordinary builds: perf gates enforce their
// timing bounds. See race_on.go.
const raceEnabled = false
