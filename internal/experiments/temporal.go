package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// P13 measures the per-cell temporal index on the region×interval
// query shape: per low-income neighborhood, count the samples inside
// and list the distinct objects sampled inside over a sweep of narrow
// time windows. Without the index a non-vacuous window forces a
// per-row time filter over every cell the polygon covers; with it an
// interior cell resolves to two binary searches plus a prefix-sum
// subtraction, and only the two fringe buckets refine row-by-row.
//
// Phase 1 (identity) runs the whole sweep — narrow windows plus
// vacuous, instant, empty and out-of-extent edge cases — under
// SetGridVerify(true) and gates on zero AggGridMismatches AND
// reflect.DeepEqual against the scan-path oracle. Phase 2 (timing)
// reruns the narrow windows verify-off on three configurations: scan
// (grid disabled), grid without temporal index, and grid with the
// adaptive temporal index. The temporal speedup over scan is recorded
// for the benchmark baseline; pass gates on identity only, since
// timing is host-dependent. objects defaults to 600; mobench -full
// runs 4000 (400k samples).
func P13(objects int) Report {
	fail := func(err error) Report {
		return Report{ID: "P13", Title: "per-cell temporal index on region×interval queries", Body: err.Error()}
	}
	if objects <= 0 {
		objects = 600
	}
	const iters = 3
	city := workload.GenCity(workload.CityConfig{Seed: 13, Cols: 8, Rows: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 13, Objects: objects, Samples: 100, Step: 60, Speed: 3,
	})
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)

	lo, hi, _ := fm.TimeSpan()
	span := int64(hi - lo)
	polys := city.LowIncomePolygons()
	if len(polys) == 0 {
		return fail(fmt.Errorf("generated city has no low-income neighborhoods"))
	}

	// Narrow windows (span/64 wide, spread across the extent) keep the
	// queries interior-dominated and non-vacuous: the shape the
	// temporal index exists for.
	const slices = 12
	narrow := make([]timedim.Interval, 0, slices)
	for i := 0; i < slices; i++ {
		wlo := lo + timedim.Instant(int64(i)*span/slices)
		whi := wlo + timedim.Instant(span/64)
		if whi > hi {
			whi = hi
		}
		narrow = append(narrow, timedim.Interval{Lo: wlo, Hi: whi})
	}
	edge := []timedim.Interval{
		{Lo: lo, Hi: hi},             // vacuous: covers the whole extent
		{Lo: lo - 100, Hi: hi + 100}, // vacuous with slack
		{Lo: lo, Hi: lo},             // instant at the extent start
		{Lo: hi, Hi: hi},             // instant at the extent end
		{Lo: lo - 100, Hi: lo - 1},   // entirely before the extent
		{Lo: hi + 1, Hi: hi + 100},   // entirely after the extent
		{Lo: lo + timedim.Instant(span/2), Hi: lo + timedim.Instant(span/2)}, // interior instant
	}
	all := append(append([]timedim.Interval{}, narrow...), edge...)

	type answer struct {
		counts []int
		objs   [][]moft.Oid
	}
	sweep := func(ivs []timedim.Interval) ([]answer, error) {
		out := make([]answer, len(ivs))
		for w, iv := range ivs {
			a := answer{counts: make([]int, len(polys)), objs: make([][]moft.Oid, len(polys))}
			for i, pg := range polys {
				n, err := eng.CountSamplesInside(qctx(), "FM", pg, iv)
				if err != nil {
					return nil, err
				}
				o, err := eng.ObjectsSampledInside(qctx(), "FM", pg, iv)
				if err != nil {
					return nil, err
				}
				a.counts[i], a.objs[i] = n, o
			}
			out[w] = a
		}
		return out, nil
	}
	timedSweep := func(ivs []timedim.Interval) ([]answer, time.Duration, error) {
		// One untimed pass warms caches (columnar snapshot or grid).
		if _, err := sweep(ivs); err != nil {
			return nil, 0, err
		}
		var a []answer
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			var err error
			if a, err = sweep(ivs); err != nil {
				return nil, 0, err
			}
		}
		return a, time.Since(t0) / iters, nil
	}

	// Phase 1: exact identity. Scan-path oracle first, then the
	// temporal-index path under verify mode (every grid answer is
	// recomputed on the slow path; divergence increments
	// AggGridMismatches and the slow result wins).
	cells, buckets := gridDefaults()
	eng.SetAggGrid(-1)
	oracle, err := sweep(all)
	if err != nil {
		return fail(err)
	}
	eng.SetAggGrid(cells)
	eng.SetTimeBuckets(buckets)
	eng.SetGridVerify(true)
	verified, err := sweep(all)
	if err != nil {
		return fail(err)
	}
	eng.SetGridVerify(false)
	identity := reflect.DeepEqual(oracle, verified)
	mismatches := met.AggGridMismatches.Value()

	// Phase 2: timing on the narrow windows only.
	eng.SetAggGrid(-1)
	eng.ResetCache()
	scanAns, scanDur, err := timedSweep(narrow)
	if err != nil {
		return fail(err)
	}
	eng.SetAggGrid(cells)
	eng.SetTimeBuckets(-1) // grid on, temporal index off: per-row time filter
	eng.ResetCache()
	rowAns, rowDur, err := timedSweep(narrow)
	if err != nil {
		return fail(err)
	}
	eng.SetTimeBuckets(buckets) // adaptive temporal index (0 = auto)
	eng.ResetCache()
	bktAns, bktDur, err := timedSweep(narrow)
	if err != nil {
		return fail(err)
	}
	timingIdent := reflect.DeepEqual(scanAns, rowAns) && reflect.DeepEqual(scanAns, bktAns)

	temporalQ := met.AggGridTemporalQueries.Value()
	fringe := met.AggGridFringeSamples.Value()
	interior := met.AggGridInteriorCells.Value()
	speedup := float64(scanDur) / float64(bktDur)
	vsRow := float64(rowDur) / float64(bktDur)
	pass := identity && timingIdent && mismatches == 0 && temporalQ > 0 && interior > 0

	mets := map[string]float64{
		"gomaxprocs":           float64(runtime.GOMAXPROCS(0)),
		"objects":              float64(objects),
		"samples":              float64(fm.Len()),
		"polygons":             float64(len(polys)),
		"windows":              float64(len(all)),
		"scan_ns_per_op":       float64(scanDur.Nanoseconds()),
		"grid_row_ns_per_op":   float64(rowDur.Nanoseconds()),
		"temporal_ns_per_op":   float64(bktDur.Nanoseconds()),
		"temporal_speedup":     speedup,
		"temporal_vs_row_scan": vsRow,
		"temporal_queries":     float64(temporalQ),
		"fringe_samples":       float64(fringe),
		"mismatches":           float64(mismatches),
	}

	ident := func(ok bool) string {
		if ok {
			return "exact"
		}
		return "MISMATCH"
	}
	rows := []Row{
		{Label: "columnar scan", Values: []string{fmtDur(scanDur), "1.00x", "oracle"}},
		{Label: "grid, per-row time filter", Values: []string{fmtDur(rowDur),
			fmt.Sprintf("%.2fx", float64(scanDur)/float64(rowDur)), ident(reflect.DeepEqual(scanAns, rowAns))}},
		{Label: "grid + temporal index", Values: []string{fmtDur(bktDur),
			fmt.Sprintf("%.2fx", speedup), ident(reflect.DeepEqual(scanAns, bktAns))}},
	}
	body := Table([]string{"path", "sweep (count+objects, narrow windows)", "speedup", "identity"}, rows)
	body += fmt.Sprintf("  workload: %d objects, %d samples, %d polygons × %d windows (%d narrow + %d edge cases)\n",
		objects, fm.Len(), len(polys), len(all), len(narrow), len(edge))
	body += fmt.Sprintf("  verify sweep: %d temporal-index answers, %d fringe samples refined, %d mismatches (%s vs oracle)\n",
		temporalQ, fringe, mismatches, ident(identity))
	body += "  pass requires exact identity (verify mode + DeepEqual oracle), zero mismatches, and temporal-index\n"
	body += "  hits > 0; the speedup is recorded for the benchmark baseline, not gated (host-dependent)\n"
	return Report{
		ID:      "P13",
		Title:   "per-cell temporal index vs scan on region×interval aggregates",
		Body:    body,
		Pass:    pass,
		Metrics: mets,
	}
}
