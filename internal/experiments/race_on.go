//go:build race

package experiments

// raceEnabled reports that this binary carries race-detector
// instrumentation, which multiplies the nanosecond-scale paths the
// perf gates bound (the ~200ns telemetry record path measures ~2µs
// instrumented). Timing gates are reported but not enforced in that
// configuration; identity gates always are.
const raceEnabled = true
