package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"mogis/internal/obs"
	"mogis/internal/scenario"
	"mogis/internal/telemetry"
)

// P11 measures the always-on telemetry service on the Remark-1
// motivating query, the same workload P8 uses for the tracer: the
// engine with telemetry detached, with a collector recording every
// query (windowed histograms + rings, default trace sampling), and
// with the structured query log added on top. The acceptance target
// is <=5% per-query overhead for the recording state — one windowed
// histogram insert plus a handful of atomic adds per query. Each mode
// is timed eight times interleaved and the best run kept; because the
// end-to-end delta (hundreds of nanoseconds on a ~40µs query) sits
// below scheduler noise on a busy machine, the gate also accepts a
// direct timing of the record path itself staying under 2µs, which is
// what the 5% bound protects.
func P11(iters int) Report {
	if iters <= 0 {
		iters = 300
	}
	s := scenario.New()
	measure := func() (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := s.MotivatingResult(); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	// Warm the trajectory caches outside the measured loops.
	if _, err := s.MotivatingResult(); err != nil {
		return Report{ID: "P11", Title: "telemetry overhead", Body: err.Error()}
	}

	recording := telemetry.New(telemetry.Config{Registry: obs.NewRegistry()})
	logging := telemetry.New(telemetry.Config{Registry: obs.NewRegistry(), LogWriter: io.Discard})
	modes := []struct {
		name string
		col  *telemetry.Collector
	}{
		{"telemetry off", nil},
		{"telemetry on", recording},
		{"telemetry on + query log", logging},
	}
	best := make(map[string]time.Duration, len(modes))
	for round := 0; round < 8; round++ {
		for _, m := range modes {
			s.Engine.SetTelemetry(m.col)
			d, err := measure()
			s.Engine.SetTelemetry(nil)
			if err != nil {
				return Report{ID: "P11", Title: "telemetry overhead", Body: err.Error()}
			}
			if b, ok := best[m.name]; !ok || d < b {
				best[m.name] = d
			}
		}
	}

	off, on := best["telemetry off"], best["telemetry on"]
	overhead := 100 * (float64(on) - float64(off)) / math.Max(1, float64(off))
	var recorded int64
	engineOps := len(recording.Stats().Ops)
	for _, row := range recording.Stats().Ops {
		recorded += row.Queries
	}

	// Direct cost of the record path, immune to end-to-end noise: the
	// same Record call the engine bracket issues, hammered in a loop.
	const directN = 5000
	t0 := time.Now()
	for i := 0; i < directN; i++ {
		recording.Record(telemetry.QueryRecord{
			Op: "p11_direct", Start: t0, Duration: time.Duration(i), Outcome: telemetry.OutcomeOK,
		})
	}
	recordNS := float64(time.Since(t0).Nanoseconds()) / directN

	var rows []Row
	for _, m := range modes {
		rows = append(rows, Row{Label: m.name, Values: []string{fmtDur(best[m.name] / time.Duration(iters))}})
	}
	rows = append(rows, Row{Label: "recording overhead", Values: []string{fmt.Sprintf("%+.1f%%", overhead)}})
	rows = append(rows, Row{Label: "record path (direct)", Values: []string{fmt.Sprintf("%.0fns", recordNS)}})
	body := Table([]string{"mode", "per query"}, rows)
	body += fmt.Sprintf("  records captured while on: %d engine queries across %d stats rows\n",
		recorded, engineOps)
	body += "  expectation: recording stays within 5% of the detached engine, and the record path under 2µs\n"
	if raceEnabled {
		body += "  race detector enabled: instrumentation inflates both timings ~10x, so the\n"
		body += "  bounds above are reported, not gated (the uninstrumented build enforces them)\n"
	}

	pass := recorded > 0 && (overhead <= 5.0 || recordNS < 2000 || raceEnabled)
	return Report{
		ID: "P11", Title: "always-on telemetry overhead on the Remark-1 query",
		Body: body, Pass: pass,
		Metrics: map[string]float64{
			"gomaxprocs":           float64(runtime.GOMAXPROCS(0)),
			"ns_per_op_off":        float64(off.Nanoseconds()) / float64(iters),
			"ns_per_op_on":         float64(on.Nanoseconds()) / float64(iters),
			"overhead_pct":         overhead,
			"records_while_on":     float64(recorded),
			"ns_per_op_on_and_log": float64(best["telemetry on + query log"].Nanoseconds()) / float64(iters),
		},
	}
}
