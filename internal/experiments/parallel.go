package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// P9 measures the parallel trajectory query path: worker-count
// scaling of the Type-7 TimeSpentInside query over a generated city,
// exact result identity between the serial and parallel fan-out,
// spatial-prefilter effectiveness on a small region, and the
// interval-cache hit rate on repeated polygons. workerCounts defaults
// to {1, 2, 4}; objects defaults to 600. Pass requires parallel
// results identical to serial and a nonzero interval-cache hit rate
// (speedup is reported, not gated: it depends on the host's cores).
func P9(workerCounts []int, objects int) Report {
	fail := func(err error) Report {
		return Report{ID: "P9", Title: "parallel trajectory query path", Body: err.Error()}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	if objects <= 0 {
		objects = 600
	}
	const iters = 3
	city := workload.GenCity(workload.CityConfig{Seed: 9, Cols: 8, Rows: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 9, Objects: objects, Samples: 100, Step: 60, Speed: 3,
	})
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)

	lo, hi, _ := fm.TimeSpan()
	window := timedim.Interval{Lo: lo, Hi: hi}
	// A large central region keeps the per-object geometry work high
	// (the scaling target); a corner neighborhood-sized region is what
	// the bbox prefilter can actually cut down.
	ext := city.Extent
	big := geom.BBox{
		MinX: ext.MinX + 0.15*ext.Width(), MinY: ext.MinY + 0.15*ext.Height(),
		MaxX: ext.MaxX - 0.15*ext.Width(), MaxY: ext.MaxY - 0.15*ext.Height(),
	}.AsPolygon()
	small := geom.BBox{
		MinX: ext.MinX, MinY: ext.MinY,
		MaxX: ext.MinX + 0.05*ext.Width(), MaxY: ext.MinY + 0.05*ext.Height(),
	}.AsPolygon()

	// Warm the LIT cache so the sweep times query evaluation, not the
	// one-off interpolation build.
	if _, err := eng.Trajectories(qctx(), "FM"); err != nil {
		return fail(err)
	}
	// Disable interval memoization while timing: the sweep measures
	// raw evaluation; the cache gets its own phase below.
	eng.SetIntervalCacheCap(-1)

	run := func() (map[moft.Oid]float64, time.Duration, error) {
		var out map[moft.Oid]float64
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			var err error
			out, err = eng.TimeSpentInside(qctx(), "FM", big, window)
			if err != nil {
				return nil, 0, err
			}
		}
		return out, time.Since(t0) / iters, nil
	}

	eng.SetWorkers(1)
	// One untimed pass warms allocator and page cache so the first
	// (serial) measurement isn't inflated relative to the later ones.
	if _, _, err := run(); err != nil {
		return fail(err)
	}
	want, serialDur, err := run()
	if err != nil {
		return fail(err)
	}

	pass := true
	mets := map[string]float64{
		"objects":          float64(objects),
		"samples":          float64(fm.Len()),
		"gomaxprocs":       float64(runtime.GOMAXPROCS(0)),
		"serial_ns_per_op": float64(serialDur.Nanoseconds()),
	}
	rows := []Row{{Label: "workers=1 (serial)", Values: []string{fmtDur(serialDur), "1.00x", "exact"}}}
	best := serialDur
	for _, w := range workerCounts {
		if w <= 1 {
			continue
		}
		eng.SetWorkers(w)
		got, dur, err := run()
		if err != nil {
			return fail(err)
		}
		ident := "exact"
		if !sameDurations(got, want) {
			ident = "MISMATCH"
			pass = false
		}
		if dur < best {
			best = dur
		}
		mets[fmt.Sprintf("parallel_ns_per_op_w%d", w)] = float64(dur.Nanoseconds())
		rows = append(rows, Row{
			Label: fmt.Sprintf("workers=%d", w),
			Values: []string{
				fmtDur(dur),
				fmt.Sprintf("%.2fx", float64(serialDur)/float64(dur)),
				ident,
			},
		})
	}
	// The headline parallel number is its own timed run at the engine
	// default (workers=0 → GOMAXPROCS), not an alias of the sweep's
	// best: aliasing made parallel_ns_per_op identical to one of the
	// w-sweep entries and hid regressions in the default path.
	eng.SetWorkers(0)
	gotDef, defDur, err := run()
	if err != nil {
		return fail(err)
	}
	identDef := "exact"
	if !sameDurations(gotDef, want) {
		identDef = "MISMATCH"
		pass = false
	}
	if defDur < best {
		best = defDur
	}
	rows = append(rows, Row{
		Label: fmt.Sprintf("workers=default (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Values: []string{
			fmtDur(defDur),
			fmt.Sprintf("%.2fx", float64(serialDur)/float64(defDur)),
			identDef,
		},
	})
	mets["parallel_ns_per_op"] = float64(defDur.Nanoseconds())
	mets["speedup"] = float64(serialDur) / float64(best)

	// Prefilter effectiveness: a small corner region should prove most
	// trajectory envelopes disjoint and skip them wholesale.
	cand0, skip0 := met.PrefilterCandidates.Value(), met.PrefilterSkipped.Value()
	if _, err := eng.ObjectsPassingThrough(qctx(), "FM", small, window); err != nil {
		return fail(err)
	}
	cand := met.PrefilterCandidates.Value() - cand0
	skip := met.PrefilterSkipped.Value() - skip0
	mets["prefilter_candidates"] = float64(cand)
	mets["prefilter_skipped"] = float64(skip)

	// Interval-cache effectiveness: the same polygon queried four
	// times computes once and hits three times.
	eng.SetIntervalCacheCap(256)
	h0, m0 := met.IntervalCacheHits.Value(), met.IntervalCacheMisses.Value()
	for i := 0; i < 4; i++ {
		if _, err := eng.TimeSpentInside(qctx(), "FM", small, window); err != nil {
			return fail(err)
		}
	}
	hits := met.IntervalCacheHits.Value() - h0
	misses := met.IntervalCacheMisses.Value() - m0
	mets["intervalcache_hits"] = float64(hits)
	mets["intervalcache_misses"] = float64(misses)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	mets["intervalcache_hit_rate"] = hitRate
	if hits < 1 {
		pass = false
	}

	body := Table([]string{"fan-out", "TimeSpentInside/query", "speedup", "vs serial"}, rows)
	body += fmt.Sprintf("  prefilter (corner region): %d candidates, %d skipped of %d objects\n",
		cand, skip, objects)
	body += fmt.Sprintf("  interval cache (4 repeats): %d hits, %d misses (hit rate %.0f%%)\n",
		hits, misses, 100*hitRate)
	body += fmt.Sprintf("  GOMAXPROCS=%d; speedup is host-dependent and not gated — pass requires\n",
		runtime.GOMAXPROCS(0))
	body += "  parallel results exactly identical to serial and a nonzero cache hit rate\n"
	return Report{
		ID:      "P9",
		Title:   "parallel trajectory query path: scaling, prefilter, interval cache",
		Body:    body,
		Pass:    pass,
		Metrics: mets,
	}
}

// sameDurations compares per-object duration maps exactly; the
// chunk-ordered merge makes parallel results bit-identical to serial.
func sameDurations(a, b map[moft.Oid]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}
