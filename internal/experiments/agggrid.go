package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// P10 measures the two-layer polygon-aggregate acceleration (columnar
// MOFT snapshot + GeoBlocks-style pre-aggregated grid) on the
// Remark-1 query shape: per low-income neighborhood, count the bus
// samples inside and the distinct buses sampled inside. The same
// sweep runs unaccelerated (engine grid disabled → columnar scan with
// per-sample point-in-polygon) and accelerated (interior cells from
// pre-aggregates, boundary cells refined). Pass gates on exact result
// identity across every polygon and window plus a nonzero
// interior-cell hit count; the speedup is recorded for the benchmark
// baseline (BENCH_PR3.json), not gated, since it is host-dependent.
// objects defaults to 600; mobench -full runs 4000 (400k samples).
func P10(objects int) Report {
	fail := func(err error) Report {
		return Report{ID: "P10", Title: "pre-aggregated grid polygon aggregates", Body: err.Error()}
	}
	if objects <= 0 {
		objects = 600
	}
	const iters = 3
	city := workload.GenCity(workload.CityConfig{Seed: 10, Cols: 8, Rows: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 10, Objects: objects, Samples: 100, Step: 60, Speed: 3,
	})
	_, eng := city.Context(fm)
	met := obs.NewMetrics(obs.NewRegistry())
	eng.SetMetrics(met)

	lo, hi, _ := fm.TimeSpan()
	// The full span exercises the pre-aggregated (time-vacuous) path;
	// the morning third forces per-sample time filtering.
	windows := []timedim.Interval{
		{Lo: lo, Hi: hi},
		{Lo: lo, Hi: lo + (hi-lo)/3},
	}
	polys := city.LowIncomePolygons()
	if len(polys) == 0 {
		return fail(fmt.Errorf("generated city has no low-income neighborhoods"))
	}

	type answer struct {
		counts []int
		objs   [][]moft.Oid
	}
	sweep := func(iv timedim.Interval) (answer, error) {
		a := answer{counts: make([]int, len(polys)), objs: make([][]moft.Oid, len(polys))}
		for i, pg := range polys {
			n, err := eng.CountSamplesInside(qctx(), "FM", pg, iv)
			if err != nil {
				return a, err
			}
			o, err := eng.ObjectsSampledInside(qctx(), "FM", pg, iv)
			if err != nil {
				return a, err
			}
			a.counts[i], a.objs[i] = n, o
		}
		return a, nil
	}
	timedSweep := func(iv timedim.Interval) (answer, time.Duration, error) {
		// One untimed pass warms caches (columnar snapshot or grid).
		if _, err := sweep(iv); err != nil {
			return answer{}, 0, err
		}
		var a answer
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			var err error
			if a, err = sweep(iv); err != nil {
				return a, 0, err
			}
		}
		return a, time.Since(t0) / iters, nil
	}
	same := func(a, b answer) bool {
		for i := range polys {
			if a.counts[i] != b.counts[i] {
				return false
			}
			if len(a.objs[i]) != len(b.objs[i]) {
				return false
			}
			for k := range a.objs[i] {
				if a.objs[i][k] != b.objs[i][k] {
					return false
				}
			}
		}
		return true
	}

	eng.SetAggGrid(-1) // unaccelerated: columnar scan path
	slowFull, slowDur, err := timedSweep(windows[0])
	if err != nil {
		return fail(err)
	}
	slowPart, _, err := timedSweep(windows[1])
	if err != nil {
		return fail(err)
	}

	cells, buckets := gridDefaults()
	eng.SetAggGrid(cells) // accelerated: pre-aggregated grid (0 = auto)
	eng.SetTimeBuckets(buckets)
	fastFull, fastDur, err := timedSweep(windows[0])
	if err != nil {
		return fail(err)
	}
	fastPart, _, err := timedSweep(windows[1])
	if err != nil {
		return fail(err)
	}

	identFull, identPart := same(slowFull, fastFull), same(slowPart, fastPart)
	interior := met.AggGridInteriorCells.Value()
	boundary := met.AggGridBoundaryCells.Value()
	speedup := float64(slowDur) / float64(fastDur)
	pass := identFull && identPart && interior > 0

	totalSamples := 0
	for _, n := range fastFull.counts {
		totalSamples += n
	}
	mets := map[string]float64{
		"gomaxprocs":            float64(runtime.GOMAXPROCS(0)),
		"objects":               float64(objects),
		"samples":               float64(fm.Len()),
		"polygons":              float64(len(polys)),
		"scan_ns_per_op":        float64(slowDur.Nanoseconds()),
		"grid_ns_per_op":        float64(fastDur.Nanoseconds()),
		"grid_speedup":          speedup,
		"grid_interior_cells":   float64(interior),
		"grid_boundary_cells":   float64(boundary),
		"grid_interior_samples": float64(met.AggGridInteriorSamples.Value()),
		"grid_refined_samples":  float64(met.AggGridRefinedSamples.Value()),
	}

	ident := func(ok bool) string {
		if ok {
			return "exact"
		}
		return "MISMATCH"
	}
	rows := []Row{
		{Label: "columnar scan", Values: []string{fmtDur(slowDur), "1.00x", "baseline"}},
		{Label: "pre-aggregated grid", Values: []string{fmtDur(fastDur), fmt.Sprintf("%.2fx", speedup),
			ident(identFull) + "/" + ident(identPart)}},
	}
	body := Table([]string{"path", "sweep (count+objects, all polygons)", "speedup", "identity full/partial"}, rows)
	body += fmt.Sprintf("  workload: %d objects, %d samples, %d low-income polygons, %d in-polygon samples\n",
		objects, fm.Len(), len(polys), totalSamples)
	body += fmt.Sprintf("  grid: %d interior cells aggregated, %d boundary cells refined (%d samples pre-aggregated, %d refined)\n",
		interior, boundary, met.AggGridInteriorSamples.Value(), met.AggGridRefinedSamples.Value())
	body += "  pass requires exact identity on every polygon and window plus interior-cell hits > 0;\n"
	body += "  the speedup is recorded for the benchmark baseline, not gated (host-dependent)\n"
	return Report{
		ID:      "P10",
		Title:   "pre-aggregated grid vs columnar scan on polygon aggregates",
		Body:    body,
		Pass:    pass,
		Metrics: mets,
	}
}
