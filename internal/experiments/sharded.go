package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/olap"
	"mogis/internal/scenario"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// P12 validates the sharded scatter-gather engine: first an
// exact-identity gate running every one of the 17 query entry points
// against both the unsharded engine and a ShardedEngine over the
// paper's Table-1 scenario (reflect.DeepEqual, so nil-versus-empty
// conventions count), then a shard-count sweep over a generated
// workload at the host's real GOMAXPROCS, gating identity again at
// every shard count and measuring scaling. Pass requires exact
// identity everywhere; the speedup is recorded, not gated (it is
// host-dependent, and near-linear only while shards have enough
// objects to amortize the scatter).
func P12(shardCounts []int, objects int) Report {
	fail := func(err error) Report {
		return Report{ID: "P12", Title: "sharded scatter-gather engine", Body: err.Error()}
	}
	if len(shardCounts) == 0 {
		shardCounts = defaultShardCounts()
	}
	if objects <= 0 {
		objects = 1200
	}
	const iters = 3

	gateBody, gateOK, err := shardIdentityGate()
	if err != nil {
		return fail(err)
	}

	// --- shard-count sweep over a generated workload -----------------
	city := workload.GenCity(workload.CityConfig{Seed: 12, Cols: 8, Rows: 8})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{
		Seed: 12, Objects: objects, Samples: 60, Step: 60, Speed: 3,
	})
	_, eng := city.Context(fm)
	lo, hi, _ := fm.TimeSpan()
	window := timedim.Interval{Lo: lo, Hi: hi}
	ext := city.Extent
	big := geom.BBox{
		MinX: ext.MinX + 0.15*ext.Width(), MinY: ext.MinY + 0.15*ext.Height(),
		MaxX: ext.MaxX - 0.15*ext.Width(), MaxY: ext.MaxY - 0.15*ext.Height(),
	}.AsPolygon()

	// Disable interval memoization on every engine while timing: the
	// sweep measures scatter evaluation, not cache replay.
	eng.SetIntervalCacheCap(-1)
	if _, err := eng.Trajectories(qctx(), "FM"); err != nil {
		return fail(err)
	}
	timeQueries := func(q core.Querier) (map[moft.Oid]float64, time.Duration, error) {
		var out map[moft.Oid]float64
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			var err error
			out, err = q.TimeSpentInside(qctx(), "FM", big, window)
			if err != nil {
				return nil, 0, err
			}
		}
		return out, time.Since(t0) / iters, nil
	}
	// One untimed pass warms the allocator so the unsharded baseline
	// is not inflated relative to the later sharded runs.
	if _, _, err := timeQueries(eng); err != nil {
		return fail(err)
	}
	wantSpent, baseDur, err := timeQueries(eng)
	if err != nil {
		return fail(err)
	}
	wantPass, err := eng.ObjectsPassingThrough(qctx(), "FM", big, window)
	if err != nil {
		return fail(err)
	}
	wantCount, err := eng.CountSamplesInside(qctx(), "FM", big, window)
	if err != nil {
		return fail(err)
	}

	pass := gateOK
	mets := map[string]float64{
		"gomaxprocs":          float64(runtime.GOMAXPROCS(0)),
		"objects":             float64(objects),
		"samples":             float64(fm.Len()),
		"unsharded_ns_per_op": float64(baseDur.Nanoseconds()),
	}
	rows := []Row{{Label: "unsharded", Values: []string{fmtDur(baseDur), "1.00x", "baseline"}}}
	best := baseDur
	for _, n := range shardCounts {
		se := core.NewSharded(eng.Context(), n)
		se.SetIntervalCacheCap(-1)
		if _, err := se.Trajectories(qctx(), "FM"); err != nil {
			return fail(err)
		}
		gotSpent, dur, err := timeQueries(se)
		if err != nil {
			return fail(err)
		}
		ident := "exact"
		if !sameDurations(gotSpent, wantSpent) {
			ident = "MISMATCH"
			pass = false
		}
		gotPass, err := se.ObjectsPassingThrough(qctx(), "FM", big, window)
		if err != nil {
			return fail(err)
		}
		gotCount, err := se.CountSamplesInside(qctx(), "FM", big, window)
		if err != nil {
			return fail(err)
		}
		if !reflect.DeepEqual(gotPass, wantPass) || gotCount != wantCount {
			ident = "MISMATCH"
			pass = false
		}
		if dur < best {
			best = dur
		}
		mets[fmt.Sprintf("sharded_ns_per_op_s%d", n)] = float64(dur.Nanoseconds())
		rows = append(rows, Row{
			Label: fmt.Sprintf("shards=%d", n),
			Values: []string{
				fmtDur(dur),
				fmt.Sprintf("%.2fx", float64(baseDur)/float64(dur)),
				ident,
			},
		})
	}
	mets["sharded_ns_per_op"] = float64(best.Nanoseconds())
	mets["shard_speedup"] = float64(baseDur) / float64(best)

	body := gateBody
	body += Table([]string{"engine", "TimeSpentInside/query", "speedup", "vs unsharded"}, rows)
	body += fmt.Sprintf("  workload: %d objects, %d samples; GOMAXPROCS=%d; total worker budget is\n",
		objects, fm.Len(), runtime.GOMAXPROCS(0))
	body += "  constant across rows (shards split it), so the sweep isolates partitioning effects;\n"
	body += "  pass requires exact identity at every shard count — speedup is recorded, not gated\n"
	return Report{
		ID:      "P12",
		Title:   "sharded scatter-gather engine: identity gate and shard-count scaling",
		Body:    body,
		Pass:    pass,
		Metrics: mets,
	}
}

// defaultShardCounts sweeps 1, 2, ..., up to the host's real
// GOMAXPROCS (doubling), always including GOMAXPROCS itself.
func defaultShardCounts() []int {
	maxN := runtime.GOMAXPROCS(0)
	var out []int
	for n := 1; n < maxN; n *= 2 {
		out = append(out, n)
	}
	return append(out, maxN)
}

// shardIdentityGate runs all 17 Querier entry points on the paper's
// Table-1 scenario against the unsharded engine and a 3-shard
// coordinator, requiring reflect.DeepEqual answers (which
// distinguishes nil from empty results). The small fixed scenario
// keeps every comparison exact and covers the routed (formula / GIS)
// entry points the generated sweep cannot drive.
func shardIdentityGate() (string, bool, error) {
	s := scenario.New()
	se := core.NewSharded(s.Ctx, 3)

	pass := true
	var mismatches []string
	checked := 0
	check := func(name string, got, want any, gotErr, wantErr error) {
		checked++
		if (gotErr == nil) != (wantErr == nil) {
			pass = false
			mismatches = append(mismatches, fmt.Sprintf("%s: error %v vs %v", name, gotErr, wantErr))
			return
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			pass = false
			mismatches = append(mismatches, name)
		}
	}

	meir, _ := s.Ln.Polygon(scenario.PgMeir)
	berchem, _ := s.Ln.Polygon(scenario.PgBerchem)
	window := timedim.Interval{Lo: scenario.T(1), Hi: scenario.T(6)}
	center := geom.Pt(20, 15)

	// Types 1–2.
	agg := gis.Aggregation{C: gis.Region{Polygons: []geom.Polygon{meir}}, H: gis.ConstDensity(400)}
	gv, ge := se.GeometricAggregate(qctx(), agg)
	wv, we := s.Engine.GeometricAggregate(qctx(), agg)
	check("GeometricAggregate", gv, wv, ge, we)

	ft := gis.NewFactTable(gis.FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	ft.MustSet(scenario.PgMeir, 60000)
	ft.MustSet(scenario.PgDam, 45000)
	ft.MustSet(scenario.PgZuid, 30000)
	gv, ge = se.SummableOverIDs(qctx(), []layer.Gid{scenario.PgMeir, scenario.PgDam}, ft, "population")
	wv, we = s.Engine.SummableOverIDs(qctx(), []layer.Gid{scenario.PgMeir, scenario.PgDam}, ft, "population")
	check("SummableOverIDs", gv, wv, ge, we)

	// Types 3–4: the Remark-1 motivating formula.
	f := s.MotivatingFormula()
	out := []fo.Var{"o", "t"}
	grel, ge := se.RegionC(qctx(), f, out)
	wrel, we := s.Engine.RegionC(qctx(), f, out)
	check("RegionC", grel, wrel, ge, we)
	gagg, ge := se.AggregateRegion(qctx(), f, out, olap.Count, "", nil)
	wagg, we := s.Engine.AggregateRegion(qctx(), f, out, olap.Count, "", nil)
	check("AggregateRegion", gagg, wagg, ge, we)
	gn, ge := se.CountRegion(qctx(), f, out)
	wn, we := s.Engine.CountRegion(qctx(), f, out)
	check("CountRegion", gn, wn, ge, we)

	// Type 5.
	area := func(id layer.Gid) (float64, error) {
		pg, _ := s.Ln.Polygon(id)
		return pg.Area(), nil
	}
	gids, ge := se.FilterGeometriesByAggregate(qctx(), "Ln", layer.KindPolygon, area, fo.GT, 200)
	wids, we := s.Engine.FilterGeometriesByAggregate(qctx(), "Ln", layer.KindPolygon, area, fo.GT, 200)
	check("FilterGeometriesByAggregate", gids, wids, ge, we)

	// Type 6.
	go6, ge := se.ObjectsSampledAt(qctx(), "FMbus", scenario.T(5), berchem)
	wo6, we := s.Engine.ObjectsSampledAt(qctx(), "FMbus", scenario.T(5), berchem)
	check("ObjectsSampledAt", go6, wo6, ge, we)
	go6, ge = se.ObjectsInterpolatedAt(qctx(), "FMbus", scenario.T(5), berchem)
	wo6, we = s.Engine.ObjectsInterpolatedAt(qctx(), "FMbus", scenario.T(5), berchem)
	check("ObjectsInterpolatedAt", go6, wo6, ge, we)

	// Type 7. Trajectories compares per-object sample content: the two
	// engines build their LITs independently, so pointers differ.
	glits, ge := se.Trajectories(qctx(), "FMbus")
	wlits, we := s.Engine.Trajectories(qctx(), "FMbus")
	gsmp := map[moft.Oid]any{}
	wsmp := map[moft.Oid]any{}
	for oid, l := range glits {
		gsmp[oid] = l.Sample()
	}
	for oid, l := range wlits {
		wsmp[oid] = l.Sample()
	}
	check("Trajectories", gsmp, wsmp, ge, we)

	go7, ge := se.ObjectsPassingThrough(qctx(), "FMbus", meir, window)
	wo7, we := s.Engine.ObjectsPassingThrough(qctx(), "FMbus", meir, window)
	check("ObjectsPassingThrough", go7, wo7, ge, we)
	go7, ge = se.ObjectsSampledInside(qctx(), "FMbus", meir, window)
	wo7, we = s.Engine.ObjectsSampledInside(qctx(), "FMbus", meir, window)
	check("ObjectsSampledInside", go7, wo7, ge, we)
	gn, ge = se.CountSamplesInside(qctx(), "FMbus", meir, window)
	wn, we = s.Engine.CountSamplesInside(qctx(), "FMbus", meir, window)
	check("CountSamplesInside", gn, wn, ge, we)
	gsp, ge := se.TimeSpentInside(qctx(), "FMbus", meir, window)
	wsp, we := s.Engine.TimeSpentInside(qctx(), "FMbus", meir, window)
	check("TimeSpentInside", gsp, wsp, ge, we)
	gsp, ge = se.ObjectsEverWithinRadius(qctx(), "FMbus", center, 8, window)
	wsp, we = s.Engine.ObjectsEverWithinRadius(qctx(), "FMbus", center, 8, window)
	check("ObjectsEverWithinRadius", gsp, wsp, ge, we)
	gn, ge = se.CountPassingThroughGeometries(qctx(), "FMbus", "Ln",
		[]layer.Gid{scenario.PgMeir, scenario.PgDam}, window)
	wn, we = s.Engine.CountPassingThroughGeometries(qctx(), "FMbus", "Ln",
		[]layer.Gid{scenario.PgMeir, scenario.PgDam}, window)
	check("CountPassingThroughGeometries", gn, wn, ge, we)
	gpr, ge := se.ObjectsPossiblyPassingThrough(qctx(), "FMbus", meir, window, 2)
	wpr, we := s.Engine.ObjectsPossiblyPassingThrough(qctx(), "FMbus", meir, window, 2)
	check("ObjectsPossiblyPassingThrough", gpr, wpr, ge, we)

	// Type 8.
	gst, ge := se.TrajectoryAggregate(qctx(), "FMbus", 2)
	wst, we := s.Engine.TrajectoryAggregate(qctx(), "FMbus", 2)
	check("TrajectoryAggregate", gst, wst, ge, we)

	body := fmt.Sprintf("  identity gate (Table-1 scenario, 3 shards): %d/%d entry points exact\n",
		checked-len(mismatches), checked)
	for _, m := range mismatches {
		body += "    MISMATCH " + m + "\n"
	}
	return body, pass, nil
}
