package experiments

import (
	"strings"
	"testing"
)

// TestPaperArtifacts runs every paper-artifact experiment and
// requires PASS: together these reproduce Table 1, the Figure-1
// facts, the Figure-2 schema, Remark 1's 4/3, the Section-4 queries
// and the Section-5 Piet-QL pipeline.
func TestPaperArtifacts(t *testing.T) {
	for _, r := range []Report{E1(), E2(), E3(), E4(), E5(), E6()} {
		if !r.Pass {
			t.Errorf("%s failed:\n%s", r.ID, r)
		}
	}
}

func TestE4Details(t *testing.T) {
	r := E4()
	if !strings.Contains(r.Body, "4/3") || !strings.Contains(r.Body, "1.3333") {
		t.Errorf("E4 body missing the Remark-1 value:\n%s", r.Body)
	}
}

// TestPerformanceStudiesSmall runs the P-experiments at tiny sizes to
// keep the suite fast while checking they execute and produce tables.
func TestPerformanceStudiesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []Report{
		P1([]int{3, 4}, 5),
		P2(),
		P3([]int{20, 40}),
		P4([]int{2000}, 20),
		P5([]int{500}),
		P6([]int{2000}, 20),
		P7([]int{30}),
		// P10 needs the default size: tiny sample counts auto-size the
		// grid too coarse for any cell to sit fully inside a polygon,
		// and the pass gate requires interior-cell hits.
		P10(0),
		P11(60),
	}
	for _, r := range cases {
		if !r.Pass {
			t.Errorf("%s failed:\n%s", r.ID, r)
		}
		if !strings.Contains(r.Body, "\t") {
			t.Errorf("%s produced no table:\n%s", r.ID, r.Body)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "e4"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("Z9"); ok {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != 20 {
		t.Errorf("IDs = %v", IDs())
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "X", Title: "t", Body: "b\n", Pass: true}
	if !strings.Contains(r.String(), "[PASS]") {
		t.Error("missing PASS")
	}
	r.Pass = false
	if !strings.Contains(r.String(), "[FAIL]") {
		t.Error("missing FAIL")
	}
}
