package gis

import (
	"fmt"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

// Apportion estimates the value of an additive polygon-level measure
// over an arbitrary query region by areal interpolation: each source
// polygon contributes its measure scaled by the fraction of its area
// inside the region. This is exactly how Type-1 queries like "total
// population of provinces crossed by a river" are answered when the
// measure is stored per polygon (Definition 3) but the query region
// cuts polygons: the uniform-density assumption turns the fact table
// into the density h of Definition 4, and the areal share equals the
// integral of h over the intersection.
func Apportion(l *layer.Layer, ft *FactTable, measure string, region geom.Polygon) (float64, error) {
	if ft.Schema().Kind != layer.KindPolygon {
		return 0, fmt.Errorf("gis: Apportion needs a polygon-level fact table, got %s", ft.Schema().Kind)
	}
	var total float64
	for _, id := range ft.IDs() {
		pg, ok := l.Polygon(id)
		if !ok {
			return 0, fmt.Errorf("gis: fact table references missing polygon %d", id)
		}
		v, ok := ft.Measure(id, measure)
		if !ok {
			// IDs() only returns mapped ids, so this is a bad measure
			// name.
			return 0, fmt.Errorf("gis: fact table has no measure %q", measure)
		}
		area := pg.Area()
		if area <= 0 {
			continue
		}
		inter := geom.IntersectionArea(pg, region)
		if inter > 0 {
			total += v * inter / area
		}
	}
	return total, nil
}

// ApportionToCells distributes a polygon-level measure over the
// precomputed intersection cells of an overlay: each cell receives
// value × cellArea / polygonArea. Returning the per-cell shares lets
// callers re-aggregate to any target zoning (the areal-weighting
// step of spatial OLAP re-apportionment).
type CellShare struct {
	Ring  geom.Ring
	Value float64
}

// ApportionCells computes the shares for one source polygon and its
// cells.
func ApportionCells(source geom.Polygon, value float64, cells []geom.Ring) []CellShare {
	area := source.Area()
	if area <= 0 {
		return nil
	}
	out := make([]CellShare, 0, len(cells))
	for _, c := range cells {
		out = append(out, CellShare{Ring: c, Value: value * c.Area() / area})
	}
	return out
}
