package gis

import (
	"math"
	"strings"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/olap"
)

func sqPg(x, y, s float64) geom.Polygon {
	return geom.Polygon{Shell: geom.Ring{
		geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
	}}
}

// paperHierarchies builds the three hierarchies of Figure 2.
func paperHierarchies() (*Hierarchy, *Hierarchy, *Hierarchy) {
	hr := NewHierarchy("Lr"). // rivers: point→line→polyline→All
					AddEdge(layer.KindPoint, layer.KindLine).
					AddEdge(layer.KindLine, layer.KindPolyline).
					AddEdge(layer.KindPolyline, layer.KindAll)
	hs := NewHierarchy("Ls"). // schools: point→node→All
					AddEdge(layer.KindPoint, layer.KindNode).
					AddEdge(layer.KindNode, layer.KindAll)
	hn := NewHierarchy("Ln"). // neighborhoods: point→polygon→All
					AddEdge(layer.KindPoint, layer.KindPolygon).
					AddEdge(layer.KindPolygon, layer.KindAll)
	return hr, hs, hn
}

func TestHierarchyValidate(t *testing.T) {
	hr, hs, hn := paperHierarchies()
	for _, h := range []*Hierarchy{hr, hs, hn} {
		if err := h.Validate(); err != nil {
			t.Errorf("H(%s): %v", h.LayerName, err)
		}
	}
}

func TestHierarchyValidateViolations(t *testing.T) {
	// All with outgoing edge.
	bad := NewHierarchy("L").AddEdge(layer.KindAll, layer.KindPolygon)
	if err := bad.Validate(); err == nil {
		t.Error("All with outgoing edge accepted")
	}
	// point with incoming edge.
	bad2 := NewHierarchy("L").
		AddEdge(layer.KindPoint, layer.KindLine).
		AddEdge(layer.KindLine, layer.KindPoint)
	if err := bad2.Validate(); err == nil {
		t.Error("point with incoming edge accepted")
	}
	// Orphan node with no incoming edges.
	bad3 := NewHierarchy("L").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll).
		AddEdge(layer.KindPolyline, layer.KindAll) // polyline has no incoming
	if err := bad3.Validate(); err == nil {
		t.Error("orphan node accepted")
	}
}

func TestHierarchyPathExists(t *testing.T) {
	hr, _, _ := paperHierarchies()
	if !hr.PathExists(layer.KindPoint, layer.KindPolyline) {
		t.Error("point should reach polyline")
	}
	if !hr.PathExists(layer.KindLine, layer.KindAll) {
		t.Error("line should reach All")
	}
	if hr.PathExists(layer.KindPolyline, layer.KindPoint) {
		t.Error("downward path accepted")
	}
	if hr.PathExists(layer.KindPolygon, layer.KindAll) {
		t.Error("unknown kind accepted")
	}
}

func paperSchema(t *testing.T) *Schema {
	t.Helper()
	hr, hs, hn := paperHierarchies()
	appGeo := olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city")
	appRiv := olap.NewSchema("Rivers").AddEdge("river", "basin")
	s := NewSchema().
		AddHierarchy(hr).AddHierarchy(hs).AddHierarchy(hn).
		BindAttr("neighborhood", layer.KindPolygon, "Ln").
		BindAttr("river", layer.KindPolyline, "Lr").
		BindAttr("school", layer.KindNode, "Ls").
		AddAppSchema(appGeo).AddAppSchema(appRiv)
	return s
}

func TestSchemaValidateAndDescribe(t *testing.T) {
	s := paperSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.LayerNames(); len(got) != 3 || got[0] != "Ln" {
		t.Errorf("LayerNames = %v", got)
	}
	b, ok := s.Attr("neighborhood")
	if !ok || b.Kind != layer.KindPolygon || b.LayerName != "Ln" {
		t.Errorf("Attr = %+v,%v", b, ok)
	}
	if _, ok := s.Attr("nope"); ok {
		t.Error("unexpected attr")
	}
	desc := s.Describe()
	for _, want := range []string{"layer Lr", "polyline -> All", "Att(neighborhood) = (polygon, Ln)", "application dimensions: Neighbourhoods, Rivers"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestSchemaValidateBadBinding(t *testing.T) {
	s := NewSchema().BindAttr("x", layer.KindPolygon, "missing")
	if err := s.Validate(); err == nil {
		t.Error("binding to unknown layer accepted")
	}
	hr, _, _ := paperHierarchies()
	s2 := NewSchema().AddHierarchy(hr).BindAttr("x", layer.KindPolygon, "Lr")
	if err := s2.Validate(); err == nil {
		t.Error("binding to absent kind accepted")
	}
}

func TestDimensionInstance(t *testing.T) {
	s := paperSchema(t)
	d := NewDimension(s)

	ln := layer.New("Ln")
	ln.AddPolygon(1, sqPg(0, 0, 10))
	ln.AddPolygon(2, sqPg(10, 0, 10))
	ln.SetAlpha("neighborhood", layer.KindPolygon, "Berchem", 1)
	d.MustAddLayer(ln)

	ls := layer.New("Ls")
	ls.AddNode(5, geom.Pt(3, 3))
	d.MustAddLayer(ls)

	appDim := olap.NewDimension(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	appDim.SetRollup("neighborhood", "Berchem", "city", "Antwerp")
	d.MustAddAppDimension(appDim)

	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	kind, id, lname, ok := d.Alpha("neighborhood", "Berchem")
	if !ok || kind != layer.KindPolygon || id != 1 || lname != "Ln" {
		t.Errorf("Alpha = %v,%v,%v,%v", kind, id, lname, ok)
	}
	if _, _, _, ok := d.Alpha("neighborhood", "Nowhere"); ok {
		t.Error("unexpected alpha member")
	}
	if _, _, _, ok := d.Alpha("school", "S1"); ok {
		t.Error("alpha without layer-side binding accepted")
	}

	if got := d.PointRollup("Ln", layer.KindPolygon, geom.Pt(5, 5)); len(got) != 1 || got[0] != 1 {
		t.Errorf("PointRollup polygon = %v", got)
	}
	if got := d.PointRollup("Ls", layer.KindNode, geom.Pt(3, 3)); len(got) != 1 || got[0] != 5 {
		t.Errorf("PointRollup node = %v", got)
	}
	if got := d.PointRollup("Ln", layer.KindAll, geom.Pt(5, 5)); len(got) != 1 || got[0] != layer.AllGid {
		t.Errorf("PointRollup All = %v", got)
	}
	if got := d.PointRollup("Lx", layer.KindPolygon, geom.Pt(5, 5)); got != nil {
		t.Errorf("PointRollup unknown layer = %v", got)
	}
	if got := d.PointRollup("Ln", layer.KindLine, geom.Pt(5, 5)); got != nil {
		t.Errorf("PointRollup unsupported kind = %v", got)
	}

	// Unknown layer / app dimension attachment errors.
	if err := d.AddLayer(layer.New("Lz")); err == nil {
		t.Error("unknown layer accepted")
	}
	if err := d.AddAppDimension(olap.NewDimension(olap.NewSchema("Ghost"))); err == nil {
		t.Error("unknown app dimension accepted")
	}
	if _, ok := d.Layer("Ln"); !ok {
		t.Error("Layer lookup")
	}
	if _, ok := d.AppDimension("Neighbourhoods"); !ok {
		t.Error("AppDimension lookup")
	}
	if got := d.LayerNames(); len(got) != 2 {
		t.Errorf("LayerNames = %v", got)
	}
}

func TestGISFactTable(t *testing.T) {
	ft := NewFactTable(FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population", "schools"}})
	ft.MustSet(1, 40000, 5)
	ft.MustSet(2, 52000, 7)
	if ft.Len() != 2 {
		t.Errorf("Len = %d", ft.Len())
	}
	if v, ok := ft.Measure(1, "population"); !ok || v != 40000 {
		t.Errorf("Measure = %v,%v", v, ok)
	}
	if _, ok := ft.Measure(1, "nope"); ok {
		t.Error("unexpected measure")
	}
	if _, ok := ft.Measure(9, "population"); ok {
		t.Error("unexpected id")
	}
	if err := ft.Set(3, 1); err == nil {
		t.Error("arity error expected")
	}
	if got := ft.IDs(); len(got) != 2 || got[0] != 1 {
		t.Errorf("IDs = %v", got)
	}
	if m, ok := ft.Get(2); !ok || m[1] != 7 {
		t.Errorf("Get = %v,%v", m, ok)
	}
}

func TestIntegratePolygonConstant(t *testing.T) {
	pg := sqPg(0, 0, 10)
	v, err := IntegratePolygon(ConstDensity(2), pg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-200) > 1e-9 {
		t.Errorf("constant integral = %v, want 200", v)
	}
}

func TestIntegratePolygonLinear(t *testing.T) {
	// h(x,y) = x over [0,10]²: integral = 10 * 10²/2 = 500. The
	// three-midpoint rule is exact for linear h even without
	// subdivision.
	pg := sqPg(0, 0, 10)
	h := func(p geom.Point) float64 { return p.X }
	v, err := IntegratePolygon(h, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-500) > 1e-9 {
		t.Errorf("linear integral = %v, want 500", v)
	}
}

func TestIntegratePolygonQuadraticExact(t *testing.T) {
	// h(x,y) = x² over [0,1]²: integral = 1/3; degree-2 rule is exact.
	pg := sqPg(0, 0, 1)
	h := func(p geom.Point) float64 { return p.X * p.X }
	v, err := IntegratePolygon(h, pg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0/3) > 1e-12 {
		t.Errorf("quadratic integral = %v, want 1/3", v)
	}
}

func TestIntegratePolygonWithHoleNonPolynomial(t *testing.T) {
	// Gaussian-ish density over a holed square; compare against a fine
	// Riemann sum.
	pg := geom.Polygon{Shell: sqPg(0, 0, 4).Shell, Holes: []geom.Ring{sqPg(1, 1, 1).Shell}}
	h := func(p geom.Point) float64 { return math.Exp(-(p.X + p.Y) / 4) }
	got, err := IntegratePolygon(h, pg, 5)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	const n = 400
	cell := 4.0 / n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geom.Pt((float64(i)+0.5)*cell, (float64(j)+0.5)*cell)
			if pg.ContainsPoint(p) {
				want += h(p) * cell * cell
			}
		}
	}
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("integral = %v, Riemann = %v", got, want)
	}
}

func TestIntegratePolyline(t *testing.T) {
	pl := geom.Polyline{geom.Pt(0, 0), geom.Pt(10, 0)}
	// ∫ x ds over the segment = 50.
	v := IntegratePolyline(func(p geom.Point) float64 { return p.X }, pl, 100)
	if math.Abs(v-50) > 1e-6 {
		t.Errorf("line integral = %v, want 50", v)
	}
	// Constant density: length × c.
	v = IntegratePolyline(ConstDensity(3), geom.Polyline{geom.Pt(0, 0), geom.Pt(3, 4)}, 0)
	if math.Abs(v-15) > 1e-9 {
		t.Errorf("const line integral = %v, want 15", v)
	}
}

func TestAggregationEvaluate(t *testing.T) {
	a := Aggregation{
		C: Region{
			Polygons:  []geom.Polygon{sqPg(0, 0, 2)},
			Polylines: []geom.Polyline{{geom.Pt(0, 0), geom.Pt(0, 5)}},
			Points:    []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)},
		},
		H: ConstDensity(1),
	}
	v, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// 2-D part: area 4; 1-D part: length 5; 0-D part: 2 points.
	if math.Abs(v-11) > 1e-9 {
		t.Errorf("Evaluate = %v, want 11", v)
	}
	// Invalid polygon propagates the error.
	bad := Aggregation{C: Region{Polygons: []geom.Polygon{{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(1, 1)}}}}, H: ConstDensity(1)}
	if _, err := bad.Evaluate(); err == nil {
		t.Error("expected triangulation error")
	}
}

func TestSummable(t *testing.T) {
	ft := NewFactTable(FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	ft.MustSet(1, 40000)
	ft.MustSet(2, 52000)
	s := SummableFromFact([]layer.Gid{1, 2}, ft, "population")
	v, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if v != 92000 {
		t.Errorf("Summable = %v", v)
	}
	bad := SummableFromFact([]layer.Gid{1, 99}, ft, "population")
	if _, err := bad.Evaluate(); err == nil {
		t.Error("expected undefined-term error")
	}
}
