// Package gis implements the paper's GIS dimensions: the dimension
// schema of Definition 1 (per-layer hierarchy graphs H(L) over
// geometry kinds, attribute bindings Att: A → G × L, and
// application-part OLAP schemas), dimension instances per Definition
// 2, GIS fact tables per Definition 3, and the geometric aggregation
// of Definition 4 with its summable rewriting (Section 5).
package gis

import (
	"fmt"
	"sort"
	"strings"

	"mogis/internal/layer"
	"mogis/internal/olap"
)

// Hierarchy is the graph H(L) of Definition 1 for one layer: nodes
// are geometry kinds, edges go from finer to coarser kinds
// ("Gj is composed by geometries of type Gi").
type Hierarchy struct {
	LayerName string
	parents   map[layer.Kind][]layer.Kind
	kinds     map[layer.Kind]bool
}

// NewHierarchy creates a hierarchy graph for the named layer
// containing the mandatory point and All nodes.
func NewHierarchy(layerName string) *Hierarchy {
	return &Hierarchy{
		LayerName: layerName,
		parents:   make(map[layer.Kind][]layer.Kind),
		kinds:     map[layer.Kind]bool{layer.KindPoint: true, layer.KindAll: true},
	}
}

// AddEdge declares the edge child → parent (child geometries compose
// parent geometries). Both kinds are added as nodes.
func (h *Hierarchy) AddEdge(child, parent layer.Kind) *Hierarchy {
	h.kinds[child] = true
	h.kinds[parent] = true
	h.parents[child] = append(h.parents[child], parent)
	return h
}

// Kinds returns the hierarchy's geometry kinds, sorted.
func (h *Hierarchy) Kinds() []layer.Kind {
	out := make([]layer.Kind, 0, len(h.kinds))
	for k := range h.kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasKind reports whether k is a node of H(L).
func (h *Hierarchy) HasKind(k layer.Kind) bool { return h.kinds[k] }

// Parents returns the direct parents of k.
func (h *Hierarchy) Parents(k layer.Kind) []layer.Kind { return h.parents[k] }

// Validate enforces Definition 1: (c) All has no outgoing edges and
// (d) point is the only node without incoming edges; the graph must
// be acyclic and every node must reach All.
func (h *Hierarchy) Validate() error {
	if len(h.parents[layer.KindAll]) > 0 {
		return fmt.Errorf("gis: hierarchy %s: All must have no outgoing edges", h.LayerName)
	}
	hasIncoming := map[layer.Kind]bool{}
	for _, ps := range h.parents {
		for _, p := range ps {
			hasIncoming[p] = true
		}
	}
	for k := range h.kinds {
		if k == layer.KindPoint {
			if hasIncoming[k] {
				return fmt.Errorf("gis: hierarchy %s: point must have no incoming edges", h.LayerName)
			}
			continue
		}
		if !hasIncoming[k] && k != layer.KindAll {
			return fmt.Errorf("gis: hierarchy %s: node %s has no incoming edges (only point may)", h.LayerName, k)
		}
	}
	// Acyclicity and reachability of All.
	for k := range h.kinds {
		if k == layer.KindAll {
			continue
		}
		if !h.reaches(k, layer.KindAll, map[layer.Kind]bool{}) {
			return fmt.Errorf("gis: hierarchy %s: node %s does not reach All", h.LayerName, k)
		}
	}
	return h.acyclic()
}

func (h *Hierarchy) reaches(from, to layer.Kind, seen map[layer.Kind]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	ps := h.parents[from]
	if len(ps) == 0 && from != layer.KindAll {
		// Implicit edge to All for kinds with no declared parents.
		return to == layer.KindAll
	}
	for _, p := range ps {
		if h.reaches(p, to, seen) {
			return true
		}
	}
	return false
}

func (h *Hierarchy) acyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[layer.Kind]int{}
	var visit func(layer.Kind) error
	visit = func(k layer.Kind) error {
		color[k] = gray
		for _, p := range h.parents[k] {
			switch color[p] {
			case gray:
				return fmt.Errorf("gis: hierarchy %s: cycle through %s", h.LayerName, p)
			case white:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[k] = black
		return nil
	}
	for k := range h.kinds {
		if color[k] == white {
			if err := visit(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// PathExists reports whether a composition path from → to exists
// (reflexive; every kind implicitly reaches All).
func (h *Hierarchy) PathExists(from, to layer.Kind) bool {
	if !h.kinds[from] || !h.kinds[to] {
		return false
	}
	return h.reaches(from, to, map[layer.Kind]bool{})
}

// AttrBinding is one element of the paper's Att function:
// Att(A) = (G, L), stating that application attribute A is bound to
// geometries of kind G in layer L.
type AttrBinding struct {
	Attr      string
	Kind      layer.Kind
	LayerName string
}

// Schema is the GIS dimension schema Gsch = (H, A, D) of Definition 1.
type Schema struct {
	hierarchies map[string]*Hierarchy
	attrs       map[string]AttrBinding
	appSchemas  map[string]*olap.Schema
}

// NewSchema creates an empty GIS dimension schema.
func NewSchema() *Schema {
	return &Schema{
		hierarchies: make(map[string]*Hierarchy),
		attrs:       make(map[string]AttrBinding),
		appSchemas:  make(map[string]*olap.Schema),
	}
}

// AddHierarchy registers H(L).
func (s *Schema) AddHierarchy(h *Hierarchy) *Schema {
	s.hierarchies[h.LayerName] = h
	return s
}

// Hierarchy returns the hierarchy of a layer.
func (s *Schema) Hierarchy(layerName string) (*Hierarchy, bool) {
	h, ok := s.hierarchies[layerName]
	return h, ok
}

// LayerNames returns the registered layer names, sorted.
func (s *Schema) LayerNames() []string {
	out := make([]string, 0, len(s.hierarchies))
	for n := range s.hierarchies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BindAttr records Att(attr) = (kind, layerName).
func (s *Schema) BindAttr(attr string, kind layer.Kind, layerName string) *Schema {
	s.attrs[attr] = AttrBinding{Attr: attr, Kind: kind, LayerName: layerName}
	return s
}

// Attr resolves Att(attr).
func (s *Schema) Attr(attr string) (AttrBinding, bool) {
	b, ok := s.attrs[attr]
	return b, ok
}

// Attrs returns all attribute bindings sorted by attribute name.
func (s *Schema) Attrs() []AttrBinding {
	out := make([]AttrBinding, 0, len(s.attrs))
	for _, b := range s.attrs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// AddAppSchema registers an application-part OLAP dimension schema.
func (s *Schema) AddAppSchema(sc *olap.Schema) *Schema {
	s.appSchemas[sc.Name()] = sc
	return s
}

// AppSchema returns a registered application schema by name.
func (s *Schema) AppSchema(name string) (*olap.Schema, bool) {
	sc, ok := s.appSchemas[name]
	return sc, ok
}

// Validate checks every hierarchy, that every attribute binding
// references a registered layer hierarchy containing the bound kind,
// and that every application schema is a valid OLAP schema.
func (s *Schema) Validate() error {
	for _, h := range s.hierarchies {
		if err := h.Validate(); err != nil {
			return err
		}
	}
	for _, b := range s.attrs {
		h, ok := s.hierarchies[b.LayerName]
		if !ok {
			return fmt.Errorf("gis: attribute %q bound to unknown layer %q", b.Attr, b.LayerName)
		}
		if !h.HasKind(b.Kind) {
			return fmt.Errorf("gis: attribute %q bound to kind %s absent from H(%s)", b.Attr, b.Kind, b.LayerName)
		}
	}
	for _, sc := range s.appSchemas {
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Describe renders the schema in the style of the paper's Figure 2:
// one block per layer hierarchy (algebraic + geometric part) and the
// attribute bindings into the application part.
func (s *Schema) Describe() string {
	var sb strings.Builder
	sb.WriteString("GIS dimension schema\n")
	for _, ln := range s.LayerNames() {
		h := s.hierarchies[ln]
		fmt.Fprintf(&sb, "  layer %s:\n", ln)
		for _, k := range h.Kinds() {
			ps := h.Parents(k)
			if len(ps) == 0 {
				continue
			}
			names := make([]string, len(ps))
			for i, p := range ps {
				names[i] = string(p)
			}
			fmt.Fprintf(&sb, "    %s -> %s\n", k, strings.Join(names, ", "))
		}
	}
	if len(s.attrs) > 0 {
		sb.WriteString("  application bindings:\n")
		for _, b := range s.Attrs() {
			fmt.Fprintf(&sb, "    Att(%s) = (%s, %s)\n", b.Attr, b.Kind, b.LayerName)
		}
	}
	if len(s.appSchemas) > 0 {
		names := make([]string, 0, len(s.appSchemas))
		for n := range s.appSchemas {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "  application dimensions: %s\n", strings.Join(names, ", "))
	}
	return sb.String()
}
