package gis

import (
	"fmt"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

// FactSchema is a GIS fact table schema per Definition 3: a geometry
// kind, a layer, and a list of measure names. Facts at KindPoint are
// base fact tables.
type FactSchema struct {
	Kind      layer.Kind
	LayerName string
	Measures  []string
}

// FactTable is a GIS fact table instance: a partial function from
// geometry ids to measure vectors.
type FactTable struct {
	schema FactSchema
	rows   map[layer.Gid][]float64
}

// NewFactTable creates an empty GIS fact table.
func NewFactTable(schema FactSchema) *FactTable {
	return &FactTable{schema: schema, rows: make(map[layer.Gid][]float64)}
}

// Schema returns the fact table schema.
func (f *FactTable) Schema() FactSchema { return f.schema }

// Len returns the number of mapped geometry ids.
func (f *FactTable) Len() int { return len(f.rows) }

// Set maps geometry id to a measure vector.
func (f *FactTable) Set(id layer.Gid, measures ...float64) error {
	if len(measures) != len(f.schema.Measures) {
		return fmt.Errorf("gis: got %d measures, want %d", len(measures), len(f.schema.Measures))
	}
	f.rows[id] = append([]float64(nil), measures...)
	return nil
}

// MustSet is Set that panics; for setup code.
func (f *FactTable) MustSet(id layer.Gid, measures ...float64) *FactTable {
	if err := f.Set(id, measures...); err != nil {
		panic(err)
	}
	return f
}

// Get returns the measure vector of a geometry id.
func (f *FactTable) Get(id layer.Gid) ([]float64, bool) {
	m, ok := f.rows[id]
	return m, ok
}

// Measure returns the named measure of a geometry id.
func (f *FactTable) Measure(id layer.Gid, name string) (float64, bool) {
	m, ok := f.rows[id]
	if !ok {
		return 0, false
	}
	for i, n := range f.schema.Measures {
		if n == name {
			return m[i], true
		}
	}
	return 0, false
}

// IDs returns the mapped geometry ids, sorted.
func (f *FactTable) IDs() []layer.Gid {
	out := make([]layer.Gid, 0, len(f.rows))
	for id := range f.rows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Density is a base GIS fact table in functional form: a measure
// density h(x, y) over the plane (Definition 3's Base GIS Fact Table
// maps R² × L to measures; continuous instances are represented as
// functions, e.g. population density or temperature).
type Density func(p geom.Point) float64

// ConstDensity returns the constant density c.
func ConstDensity(c float64) Density {
	return func(geom.Point) float64 { return c }
}

// BaseFactTable is a base GIS fact table: a named density per layer.
type BaseFactTable struct {
	LayerName string
	Name      string
	H         Density
}
