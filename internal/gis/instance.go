package gis

import (
	"fmt"
	"sort"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/olap"
)

// Dimension is a GIS dimension instance per Definition 2: the schema
// together with concrete layers (which carry the rollup relations R
// and the attribute functions Ainst) and application-part OLAP
// dimension instances.
type Dimension struct {
	schema  *Schema
	layers  map[string]*layer.Layer
	appDims map[string]*olap.Dimension
}

// NewDimension creates an empty instance of schema.
func NewDimension(schema *Schema) *Dimension {
	return &Dimension{
		schema:  schema,
		layers:  make(map[string]*layer.Layer),
		appDims: make(map[string]*olap.Dimension),
	}
}

// Schema returns the GIS dimension schema.
func (d *Dimension) Schema() *Schema { return d.schema }

// AddLayer attaches a layer instance; its name must match a
// registered hierarchy.
func (d *Dimension) AddLayer(l *layer.Layer) error {
	if _, ok := d.schema.Hierarchy(l.Name()); !ok {
		return fmt.Errorf("gis: no hierarchy registered for layer %q", l.Name())
	}
	d.layers[l.Name()] = l
	return nil
}

// MustAddLayer is AddLayer that panics; for setup code.
func (d *Dimension) MustAddLayer(l *layer.Layer) *Dimension {
	if err := d.AddLayer(l); err != nil {
		panic(err)
	}
	return d
}

// Layer returns a layer by name.
func (d *Dimension) Layer(name string) (*layer.Layer, bool) {
	l, ok := d.layers[name]
	return l, ok
}

// LayerNames returns the attached layer names, sorted.
func (d *Dimension) LayerNames() []string {
	out := make([]string, 0, len(d.layers))
	for n := range d.layers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddAppDimension attaches an application-part dimension instance;
// its schema must be registered.
func (d *Dimension) AddAppDimension(dim *olap.Dimension) error {
	if _, ok := d.schema.AppSchema(dim.Name()); !ok {
		return fmt.Errorf("gis: no application schema registered for dimension %q", dim.Name())
	}
	d.appDims[dim.Name()] = dim
	return nil
}

// MustAddAppDimension is AddAppDimension that panics; for setup code.
func (d *Dimension) MustAddAppDimension(dim *olap.Dimension) *Dimension {
	if err := d.AddAppDimension(dim); err != nil {
		panic(err)
	}
	return d
}

// AppDimension returns an application dimension instance by name.
func (d *Dimension) AppDimension(name string) (*olap.Dimension, bool) {
	dim, ok := d.appDims[name]
	return dim, ok
}

// Alpha resolves the attribute function α^{A,G}_L(member): the schema
// binding Att(attr) names the layer and kind; the layer instance maps
// the concept member to a geometry id.
func (d *Dimension) Alpha(attr, member string) (layer.Kind, layer.Gid, string, bool) {
	b, ok := d.schema.Attr(attr)
	if !ok {
		return "", 0, "", false
	}
	l, ok := d.layers[b.LayerName]
	if !ok {
		return "", 0, "", false
	}
	kind, id, ok := l.Alpha(attr, member)
	if !ok {
		return "", 0, "", false
	}
	return kind, id, b.LayerName, ok
}

// PointRollup evaluates the infinite rollup relation
// r^{point,kind}_L(x, y, g): the ids of the kind-geometries of layer
// layerName that contain point p.
func (d *Dimension) PointRollup(layerName string, kind layer.Kind, p geom.Point) []layer.Gid {
	l, ok := d.layers[layerName]
	if !ok {
		return nil
	}
	switch kind {
	case layer.KindPolygon:
		return l.PolygonsContaining(p)
	case layer.KindPolyline:
		return l.PolylinesThrough(p)
	case layer.KindNode:
		return l.NodesNear(p, 0)
	case layer.KindAll:
		return []layer.Gid{layer.AllGid}
	default:
		return nil
	}
}

// Validate checks the schema, each attached layer, and that every
// attribute binding with a layer attached is resolvable for at least
// zero members (binding integrity is checked in the layer itself).
func (d *Dimension) Validate() error {
	if err := d.schema.Validate(); err != nil {
		return err
	}
	for _, l := range d.layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	for _, dim := range d.appDims {
		if err := dim.Validate(); err != nil {
			return err
		}
	}
	return nil
}
