package gis

import (
	"math"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

func apportionFixture(t *testing.T) (*layer.Layer, *FactTable) {
	t.Helper()
	l := layer.New("Ln")
	l.AddPolygon(1, sqPg(0, 0, 10))  // population 1000
	l.AddPolygon(2, sqPg(10, 0, 10)) // population 2000
	ft := NewFactTable(FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	ft.MustSet(1, 1000)
	ft.MustSet(2, 2000)
	return l, ft
}

func TestApportionFullCoverage(t *testing.T) {
	l, ft := apportionFixture(t)
	region := sqPg(0, 0, 20) // covers both fully (x beyond 20 is empty)
	got, err := Apportion(l, ft, "population", region)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3000) > 1e-6 {
		t.Errorf("full coverage = %v, want 3000", got)
	}
}

func TestApportionHalfCoverage(t *testing.T) {
	l, ft := apportionFixture(t)
	// The region covers the right half of polygon 1 and the left half
	// of polygon 2: 500 + 1000.
	region := sqPg(5, 0, 10)
	got, err := Apportion(l, ft, "population", region)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1500) > 1e-6 {
		t.Errorf("half coverage = %v, want 1500", got)
	}
}

func TestApportionDisjoint(t *testing.T) {
	l, ft := apportionFixture(t)
	got, err := Apportion(l, ft, "population", sqPg(100, 100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestApportionErrors(t *testing.T) {
	l, ft := apportionFixture(t)
	bad := NewFactTable(FactSchema{Kind: layer.KindNode, LayerName: "Ls", Measures: []string{"x"}})
	if _, err := Apportion(l, bad, "x", sqPg(0, 0, 1)); err == nil {
		t.Error("non-polygon fact table accepted")
	}
	missing := NewFactTable(FactSchema{Kind: layer.KindPolygon, LayerName: "Ln", Measures: []string{"population"}})
	missing.MustSet(99, 5)
	if _, err := Apportion(l, missing, "population", sqPg(0, 0, 1)); err == nil {
		t.Error("missing polygon accepted")
	}
	if _, err := Apportion(l, ft, "nope", sqPg(0, 0, 20)); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestApportionCells(t *testing.T) {
	source := sqPg(0, 0, 10) // area 100
	cells := []geom.Ring{
		{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(5, 10), geom.Pt(0, 10)}, // area 50
		{geom.Pt(5, 0), geom.Pt(10, 0), geom.Pt(10, 5), geom.Pt(5, 5)}, // area 25
	}
	shares := ApportionCells(source, 1000, cells)
	if len(shares) != 2 {
		t.Fatalf("shares = %d", len(shares))
	}
	if math.Abs(shares[0].Value-500) > 1e-9 || math.Abs(shares[1].Value-250) > 1e-9 {
		t.Errorf("shares = %+v", shares)
	}
	// Degenerate source yields nothing.
	if got := ApportionCells(geom.Polygon{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}}, 10, cells); got != nil {
		t.Errorf("degenerate = %v", got)
	}
}
