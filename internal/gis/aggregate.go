package gis

import (
	"fmt"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

// Definition 4 realizes a geometric aggregation as
// ∫∫_C δ_C(x,y)·h(x,y) dx dy where δ_C is 1 on two-dimensional parts
// of C, a Dirac delta on zero-dimensional parts, and Dirac×Heaviside
// on one-dimensional parts. Operationally that is: an area integral
// of h over the polygons of C, a line integral of h along the
// polylines of C, and a pointwise sum of h over the points of C.
// Region collects those parts.
type Region struct {
	Polygons  []geom.Polygon
	Polylines []geom.Polyline
	Points    []geom.Point
}

// Aggregation is a geometric aggregation: a region C and a density h.
type Aggregation struct {
	C Region
	H Density
	// Subdiv controls triangle subdivision depth for the area
	// quadrature (default 3; each level quarters the triangles).
	Subdiv int
	// LineSamples controls per-segment sampling for line integrals
	// (default 8).
	LineSamples int
}

// Evaluate computes the aggregation numerically. The quadrature is a
// degree-2-exact three-midpoint rule on subdivided triangles; line
// integrals use the composite midpoint rule.
func (a Aggregation) Evaluate() (float64, error) {
	subdiv := a.Subdiv
	if subdiv <= 0 {
		subdiv = 3
	}
	samples := a.LineSamples
	if samples <= 0 {
		samples = 8
	}
	var sum float64
	for _, pg := range a.C.Polygons {
		v, err := IntegratePolygon(a.H, pg, subdiv)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	for _, pl := range a.C.Polylines {
		sum += IntegratePolyline(a.H, pl, samples)
	}
	for _, p := range a.C.Points {
		sum += a.H(p)
	}
	return sum, nil
}

// IntegratePolygon computes ∫∫_pg h dA by triangulating the polygon
// and applying the three-midpoint rule (exact for polynomials of
// degree ≤ 2) on each triangle after `subdiv` levels of uniform
// subdivision.
func IntegratePolygon(h Density, pg geom.Polygon, subdiv int) (float64, error) {
	tris, err := geom.Triangulate(pg)
	if err != nil {
		return 0, fmt.Errorf("gis: integrate polygon: %w", err)
	}
	var sum float64
	for _, t := range tris {
		sum += integrateTriangle(h, t, subdiv)
	}
	return sum, nil
}

func integrateTriangle(h Density, t geom.Triangle, subdiv int) float64 {
	if subdiv <= 0 {
		area := t.Area()
		mab := geom.MidPoint(t.A, t.B)
		mbc := geom.MidPoint(t.B, t.C)
		mca := geom.MidPoint(t.C, t.A)
		return area / 3 * (h(mab) + h(mbc) + h(mca))
	}
	mab := geom.MidPoint(t.A, t.B)
	mbc := geom.MidPoint(t.B, t.C)
	mca := geom.MidPoint(t.C, t.A)
	return integrateTriangle(h, geom.Triangle{A: t.A, B: mab, C: mca}, subdiv-1) +
		integrateTriangle(h, geom.Triangle{A: mab, B: t.B, C: mbc}, subdiv-1) +
		integrateTriangle(h, geom.Triangle{A: mca, B: mbc, C: t.C}, subdiv-1) +
		integrateTriangle(h, geom.Triangle{A: mab, B: mbc, C: mca}, subdiv-1)
}

// IntegratePolyline computes the line integral ∫_pl h ds with the
// composite midpoint rule using `samples` subsegments per segment.
func IntegratePolyline(h Density, pl geom.Polyline, samples int) float64 {
	if samples <= 0 {
		samples = 1
	}
	var sum float64
	for i := 0; i < pl.NumSegments(); i++ {
		seg := pl.Segment(i)
		ds := seg.Length() / float64(samples)
		for k := 0; k < samples; k++ {
			mid := seg.At((float64(k) + 0.5) / float64(samples))
			sum += h(mid) * ds
		}
	}
	return sum
}

// Summable is a geometric aggregation in rewritten form (Section 5):
// the condition set C defines a finite set of geometry elements, and
// the query becomes Σ_{g ∈ C} h'(g). Evaluating it requires no
// integration at all — this is the paper's criterion for efficient
// evaluation.
type Summable struct {
	IDs []layer.Gid
	// H is the per-geometry term h'(g), typically a fact-table lookup.
	H func(layer.Gid) (float64, bool)
}

// Evaluate computes Σ_{g∈C} h'(g). Unmapped ids are errors: a
// summable rewriting promises every element of C carries a value.
func (s Summable) Evaluate() (float64, error) {
	var sum float64
	for _, id := range s.IDs {
		v, ok := s.H(id)
		if !ok {
			return 0, fmt.Errorf("gis: summable term undefined for geometry %d", id)
		}
		sum += v
	}
	return sum, nil
}

// SummableFromFact builds the summable rewriting of "aggregate
// measure over the geometries in ids" against a GIS fact table.
func SummableFromFact(ids []layer.Gid, ft *FactTable, measure string) Summable {
	return Summable{
		IDs: ids,
		H: func(id layer.Gid) (float64, bool) {
			return ft.Measure(id, measure)
		},
	}
}
