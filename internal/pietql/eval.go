package pietql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/telemetry"
	"mogis/internal/timedim"
)

// System is everything a Piet-QL query needs: the model context, the
// per-layer geometry kinds Piet-QL variables range over, optionally a
// precomputed overlay (Section 5's evaluation strategy), and the MDX
// cube catalog.
type System struct {
	Ctx *fo.Context
	// Engine answers the moving-object queries: either an unsharded
	// *core.Engine or a *core.ShardedEngine (pietql -shards) — both
	// answer bit-identically behind core.Querier.
	Engine core.Querier
	// Kinds maps each Piet-QL-visible layer name to the geometry kind
	// its variable ranges over.
	Kinds map[string]layer.Kind
	// Overlay, when non-nil, answers the geometric predicates from
	// precomputed relations.
	Overlay *overlay.Overlay
	// Cubes resolves the OLAP part.
	Cubes mdx.Catalog
	// SchemaName is checked against the FROM clause.
	SchemaName string
	// Telemetry, when non-nil, receives one QueryRecord per Run (and
	// retains sampled traces). Nil falls back to telemetry.Default —
	// set core.Engine.SetTelemetry(nil) too if you need a fully silent
	// system in a process with a default collector.
	Telemetry *telemetry.Collector
}

// Outcome is the result of running a Piet-QL query.
type Outcome struct {
	// GeoIDs holds, per selected layer, the geometry ids
	// participating in a satisfying assignment.
	GeoIDs map[string][]layer.Gid
	// OLAP is the MDX result (nil when the query has no OLAP part).
	OLAP *mdx.Result
	// MOCount is the moving-objects aggregate (valid when HasMO).
	MOCount int
	HasMO   bool
	// MOGroups holds the per-bucket counts when the moving-objects
	// part has a GROUP BY.
	MOGroups *olap.AggResult
	// Explain holds the rendered plan (EXPLAIN) or span tree with
	// engine-counter deltas (EXPLAIN ANALYZE); empty otherwise.
	Explain string
}

// ParseError marks an error raised while parsing the query text (as
// opposed to evaluating it), so callers — the pietql CLI maps parse
// errors to a distinct exit code — can tell the two apart with
// errors.As.
type ParseError struct{ Err error }

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// IsParseError reports whether err originated in the Piet-QL parser.
func IsParseError(err error) bool {
	var pe *ParseError
	return errors.As(err, &pe)
}

// parse wraps Parse failures in *ParseError.
func parse(input string) (*Query, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	return q, nil
}

// Run parses and evaluates a Piet-QL query under ctx (nil means
// background): evaluation observes cancellation, deadlines and any
// core.Budget attached to ctx at the engine's cooperative
// checkpoints. A query prefixed with EXPLAIN renders the evaluation
// plan without running it; EXPLAIN ANALYZE runs the query with a
// per-query trace attached and renders the span tree plus
// engine-counter deltas into Outcome.Explain. Parse failures are
// reported as *ParseError.
func (s *System) Run(ctx context.Context, query string) (out *Outcome, err error) {
	start := time.Now()
	defer func() { obs.Std.QueryDuration.Observe(time.Since(start).Seconds()) }()
	tel := s.telemetry()
	if rest, analyze, ok := stripExplain(query); ok {
		if analyze {
			return s.RunAnalyze(ctx, rest)
		}
		var q *Query
		q, err = parse(rest)
		if tel.Enabled() {
			tel.Record(queryRecord(opExplain, moTable(q), start, err))
		}
		if err != nil {
			return nil, err
		}
		return &Outcome{Explain: ExplainPlan(q)}, nil
	}
	var tr *obs.Tracer
	if tel.Enabled() {
		var restore func()
		tr, restore = s.sampleTrace(tel)
		defer restore()
	}
	q, err := parse(query)
	if err == nil {
		out, err = s.Eval(ctx, q)
	}
	if tel.Enabled() {
		rec := queryRecord(opQuery, moTable(q), start, err)
		tel.Record(rec)
		if tr != nil {
			tel.RetainTrace(tr, rec, query)
		}
	}
	return out, err
}

// stripExplain removes a leading EXPLAIN [ANALYZE] (case-insensitive)
// and reports whether one was present.
func stripExplain(query string) (rest string, analyze, ok bool) {
	rest = strings.TrimSpace(query)
	fields := strings.Fields(rest)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "EXPLAIN") {
		return query, false, false
	}
	rest = strings.TrimSpace(rest[len(fields[0]):])
	if len(fields) > 1 && strings.EqualFold(fields[1], "ANALYZE") {
		return strings.TrimSpace(rest[len(fields[1]):]), true, true
	}
	return rest, false, true
}

// RunAnalyze parses and evaluates a query with a trace attached,
// setting Outcome.Explain to the rendered span tree and the
// engine-counter deltas the query caused.
func (s *System) RunAnalyze(ctx context.Context, query string) (*Outcome, error) {
	start := time.Now()
	tel := s.telemetry()
	tr := obs.NewTracer("query")
	before := obs.Default.Snapshot()
	prev := s.Ctx.Tracer()
	s.Ctx.SetTracer(tr)
	defer s.Ctx.SetTracer(prev)

	sp := tr.Start("parse")
	q, err := parse(query)
	sp.End()
	var out *Outcome
	if err == nil {
		out, err = s.Eval(ctx, q)
	}
	root := tr.Finish()
	if tel.Enabled() {
		// EXPLAIN ANALYZE traces unconditionally; retain every one.
		rec := queryRecord(opExplainAnalyze, moTable(q), start, err)
		tel.Record(rec)
		tel.RetainTrace(tr, rec, query)
	}
	if err != nil {
		return nil, err
	}
	out.Explain = obs.FormatExplain(root, obs.Default.Snapshot().Since(before))
	return out, nil
}

// ExplainPlan renders the evaluation plan of a parsed query without
// running it.
func ExplainPlan(q *Query) string {
	var sb strings.Builder
	sb.WriteString("plan:\n")
	fmt.Fprintf(&sb, "  geo: select %s from %s\n", strings.Join(q.Geo.Select, ", "), q.Geo.Schema)
	for _, p := range q.Geo.Where {
		fmt.Fprintf(&sb, "    %s(%s, %s)\n", p.Kind, p.A, p.B)
	}
	if q.OLAP != "" {
		sb.WriteString("  olap: MDX sub-query\n")
	}
	if q.MO != nil {
		semantics := "interpolated"
		if q.MO.SampledOnly {
			semantics = "sampled-only"
		}
		fmt.Fprintf(&sb, "  mo: %s(*) from %s passing through %s (%s)\n",
			q.MO.Agg, q.MO.Table, q.MO.ThroughLayer, semantics)
	}
	return sb.String()
}

// Eval evaluates a parsed query under ctx (nil means background).
func (s *System) Eval(ctx context.Context, q *Query) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := s.Ctx.Tracer()
	out := &Outcome{}
	sp := tr.Start("geo")
	ids, err := s.evalGeo(ctx, q.Geo)
	if err != nil {
		sp.End()
		return nil, err
	}
	n := int64(0)
	for _, l := range ids {
		n += int64(len(l))
	}
	sp.SetCount("predicates", int64(len(q.Geo.Where)))
	sp.SetCount("ids", n)
	sp.End()
	out.GeoIDs = ids

	if q.OLAP != "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := tr.Start("olap")
		res, err := mdx.Run(s.Cubes, q.OLAP)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("pietql: OLAP part: %w", err)
		}
		out.OLAP = res
	}

	if q.MO != nil {
		sp := tr.Start("mo")
		n, groups, err := s.evalMO(ctx, q.MO, ids)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.SetCount("objects", int64(n))
		sp.End()
		out.MOCount = n
		out.MOGroups = groups
		out.HasMO = true
	}
	return out, nil
}

func (s *System) ref(layerName string) (overlay.Ref, error) {
	kind, ok := s.Kinds[layerName]
	if !ok {
		return overlay.Ref{}, fmt.Errorf("pietql: unknown layer %q", layerName)
	}
	return overlay.Ref{Layer: layerName, Kind: kind}, nil
}

// expectedSubLevel returns the geometry kind an intersection or
// containment of the two kinds materializes.
func expectedSubLevel(pred PredicateKind, a, b layer.Kind) string {
	if pred == PredContains {
		switch b {
		case layer.KindNode:
			return "Point"
		case layer.KindPolyline:
			return "Linestring"
		default:
			return "Polygon"
		}
	}
	if a == layer.KindNode || b == layer.KindNode {
		return "Point"
	}
	if a == layer.KindPolyline || b == layer.KindPolyline {
		return "Linestring"
	}
	return "Polygon"
}

// evalGeo evaluates the geometric part as a conjunctive query over
// one variable per layer.
func (s *System) evalGeo(ctx context.Context, g *GeoQuery) (map[string][]layer.Gid, error) {
	if s.SchemaName != "" && !strings.EqualFold(g.Schema, s.SchemaName) {
		return nil, fmt.Errorf("pietql: unknown schema %q (have %q)", g.Schema, s.SchemaName)
	}
	// Validate layers and predicates up front.
	for _, l := range g.Select {
		if _, err := s.ref(l); err != nil {
			return nil, err
		}
	}
	for _, p := range g.Where {
		ra, err := s.ref(p.A)
		if err != nil {
			return nil, err
		}
		rb, err := s.ref(p.B)
		if err != nil {
			return nil, err
		}
		if p.Anchor != "" {
			if _, err := s.ref(p.Anchor); err != nil {
				return nil, err
			}
		}
		if p.SubLevel != "" {
			want := expectedSubLevel(p.Kind, ra.Kind, rb.Kind)
			if !strings.EqualFold(p.SubLevel, want) {
				return nil, fmt.Errorf("pietql: %s(%s, %s) materializes subplevel.%s, not subplevel.%s",
					p.Kind, p.A, p.B, want, p.SubLevel)
			}
		}
		if p.Kind == PredContains && ra.Kind != layer.KindPolygon {
			return nil, fmt.Errorf("pietql: CONTAINS needs a polygon layer on the left, %q is %s", p.A, ra.Kind)
		}
	}

	// Conjunctive evaluation over bindings layer → gid.
	bindings := []map[string]layer.Gid{{}}
	for _, p := range g.Where {
		sp := s.Ctx.Tracer().Start("overlay_lookup")
		var err error
		bindings, err = s.applyPredicate(ctx, bindings, p)
		sp.SetCount("bindings", int64(len(bindings)))
		sp.End()
		if err != nil {
			return nil, err
		}
		if len(bindings) == 0 {
			break
		}
	}

	// A selected layer never mentioned in WHERE ranges over all its
	// geometries.
	for _, l := range g.Select {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(bindings) > 0 {
			if _, bound := bindings[0][l]; bound {
				continue
			}
		}
		r, _ := s.ref(l)
		all, err := s.allIDs(r)
		if err != nil {
			return nil, err
		}
		var next []map[string]layer.Gid
		for _, b := range bindings {
			for _, id := range all {
				nb := cloneBinding(b)
				nb[l] = id
				next = append(next, nb)
			}
		}
		bindings = next
	}

	out := make(map[string][]layer.Gid, len(g.Select))
	for _, l := range g.Select {
		seen := map[layer.Gid]bool{}
		var ids []layer.Gid
		for _, b := range bindings {
			if id, ok := b[l]; ok && !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[l] = ids
	}
	return out, nil
}

func cloneBinding(b map[string]layer.Gid) map[string]layer.Gid {
	nb := make(map[string]layer.Gid, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

func (s *System) allIDs(r overlay.Ref) ([]layer.Gid, error) {
	l, ok := s.Ctx.GIS().Layer(r.Layer)
	if !ok {
		return nil, fmt.Errorf("pietql: layer %q not attached", r.Layer)
	}
	return l.IDs(r.Kind), nil
}

// applyPredicate extends or filters the bindings with one predicate,
// observing ctx once per input binding (binding sets are the part
// that grows combinatorially).
func (s *System) applyPredicate(ctx context.Context, bindings []map[string]layer.Gid, p Predicate) ([]map[string]layer.Gid, error) {
	ra, _ := s.ref(p.A)
	rb, _ := s.ref(p.B)
	var out []map[string]layer.Gid
	for _, b := range bindings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		aid, aBound := b[p.A]
		bid, bBound := b[p.B]
		switch {
		case aBound && bBound:
			ok, err := s.related(p.Kind, ra, aid, rb, bid)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, b)
			}
		case aBound:
			ids, err := s.relatedIDs(p.Kind, ra, aid, rb)
			if err != nil {
				return nil, err
			}
			for _, id := range ids {
				nb := cloneBinding(b)
				nb[p.B] = id
				out = append(out, nb)
			}
		case bBound:
			// Enumerate A candidates related to the bound B.
			all, err := s.allIDs(ra)
			if err != nil {
				return nil, err
			}
			for _, id := range all {
				ok, err := s.related(p.Kind, ra, id, rb, bid)
				if err != nil {
					return nil, err
				}
				if ok {
					nb := cloneBinding(b)
					nb[p.A] = id
					out = append(out, nb)
				}
			}
		default:
			all, err := s.allIDs(ra)
			if err != nil {
				return nil, err
			}
			for _, aid := range all {
				ids, err := s.relatedIDs(p.Kind, ra, aid, rb)
				if err != nil {
					return nil, err
				}
				for _, id := range ids {
					nb := cloneBinding(b)
					nb[p.A] = aid
					nb[p.B] = id
					out = append(out, nb)
				}
			}
		}
	}
	return out, nil
}

// relatedIDs returns the B-ids related to (ra, aid) under the
// predicate, preferring the precomputed overlay.
func (s *System) relatedIDs(pred PredicateKind, ra overlay.Ref, aid layer.Gid, rb overlay.Ref) ([]layer.Gid, error) {
	var candidates []layer.Gid
	if s.Overlay != nil {
		obs.Std.OverlayHits.Inc()
		candidates = s.Overlay.Intersecting(ra, aid, rb)
	} else {
		obs.Std.OverlayMisses.Inc()
		var err error
		candidates, err = overlay.IntersectingNaive(s.layerMap(), ra, aid, rb)
		if err != nil {
			return nil, err
		}
	}
	if pred == PredIntersection {
		return candidates, nil
	}
	// CONTAINS: intersection candidates refined by exact containment.
	var out []layer.Gid
	for _, bid := range candidates {
		ok, err := s.contains(ra, aid, rb, bid)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, bid)
		}
	}
	return out, nil
}

func (s *System) related(pred PredicateKind, ra overlay.Ref, aid layer.Gid, rb overlay.Ref, bid layer.Gid) (bool, error) {
	ids, err := s.relatedIDs(pred, ra, aid, rb)
	if err != nil {
		return false, err
	}
	for _, id := range ids {
		if id == bid {
			return true, nil
		}
	}
	return false, nil
}

func (s *System) layerMap() map[string]*layer.Layer {
	m := make(map[string]*layer.Layer, len(s.Kinds))
	for name := range s.Kinds {
		if l, ok := s.Ctx.GIS().Layer(name); ok {
			m[name] = l
		}
	}
	return m
}

// contains tests full containment of b in a (a must be a polygon).
func (s *System) contains(ra overlay.Ref, aid layer.Gid, rb overlay.Ref, bid layer.Gid) (bool, error) {
	if ra.Kind != layer.KindPolygon {
		return false, fmt.Errorf("pietql: CONTAINS needs a polygon on the left, got %s", ra.Kind)
	}
	la, _ := s.Ctx.GIS().Layer(ra.Layer)
	lb, _ := s.Ctx.GIS().Layer(rb.Layer)
	pa, ok := la.Polygon(aid)
	if !ok {
		return false, fmt.Errorf("pietql: layer %q has no polygon %d", ra.Layer, aid)
	}
	switch rb.Kind {
	case layer.KindNode:
		p, ok := lb.Node(bid)
		if !ok {
			return false, fmt.Errorf("pietql: layer %q has no node %d", rb.Layer, bid)
		}
		return pa.ContainsPoint(p), nil
	case layer.KindPolyline:
		pl, ok := lb.Polyline(bid)
		if !ok {
			return false, fmt.Errorf("pietql: layer %q has no polyline %d", rb.Layer, bid)
		}
		const tol = 1e-9
		return pl.LengthInside(pa) >= pl.Length()-tol, nil
	case layer.KindPolygon:
		pb, ok := lb.Polygon(bid)
		if !ok {
			return false, fmt.Errorf("pietql: layer %q has no polygon %d", rb.Layer, bid)
		}
		return pa.ContainsPolygon(pb), nil
	default:
		return false, fmt.Errorf("pietql: CONTAINS unsupported for kind %s", rb.Kind)
	}
}

// evalMO evaluates the moving-objects part against the geometric
// result.
func (s *System) evalMO(ctx context.Context, q *MOQuery, geoIDs map[string][]layer.Gid) (int, *olap.AggResult, error) {
	ids, ok := geoIDs[q.ThroughLayer]
	if !ok {
		return 0, nil, fmt.Errorf("pietql: PASSES THROUGH layer %q is not in the geometric SELECT", q.ThroughLayer)
	}
	kind := s.Kinds[q.ThroughLayer]
	if kind != layer.KindPolygon {
		return 0, nil, fmt.Errorf("pietql: PASSES THROUGH needs a polygon layer, %q is %s", q.ThroughLayer, kind)
	}
	tbl, err := s.Ctx.Table(q.Table)
	if err != nil {
		return 0, nil, err
	}
	window := q.Window
	if !q.HasWindow {
		lo, hi, ok := tbl.TimeSpan()
		if !ok {
			return 0, nil, nil
		}
		window = timedim.Interval{Lo: lo, Hi: hi}
	}
	if q.GroupBy != "" {
		groups, total, err := s.evalMOGrouped(ctx, q, ids, window)
		if err != nil {
			return 0, nil, err
		}
		return total, groups, nil
	}
	if !q.SampledOnly {
		n, err := s.Engine.CountPassingThroughGeometries(ctx, q.Table, q.ThroughLayer, ids, window)
		return n, nil, err
	}
	// Sample-only semantics: union the per-polygon sampled objects.
	l, _ := s.Ctx.GIS().Layer(q.ThroughLayer)
	seen := map[moft.Oid]bool{}
	for _, id := range ids {
		pg, ok := l.Polygon(id)
		if !ok {
			return 0, nil, fmt.Errorf("pietql: layer %q has no polygon %d", q.ThroughLayer, id)
		}
		objs, err := s.Engine.ObjectsSampledInside(ctx, q.Table, pg, window)
		if err != nil {
			return 0, nil, err
		}
		for _, o := range objs {
			seen[o] = true
		}
	}
	return len(seen), nil, nil
}

// evalMOGrouped computes per-bucket object counts for GROUP BY hour
// or day: an object contributes to every bucket its passing intervals
// (or in-polygon samples) overlap. The returned total is the number
// of distinct contributing objects.
func (s *System) evalMOGrouped(ctx context.Context, q *MOQuery, ids []layer.Gid, window timedim.Interval) (*olap.AggResult, int, error) {
	l, _ := s.Ctx.GIS().Layer(q.ThroughLayer)
	polys := make([]geom.Polygon, 0, len(ids))
	for _, id := range ids {
		pg, ok := l.Polygon(id)
		if !ok {
			return nil, 0, fmt.Errorf("pietql: layer %q has no polygon %d", q.ThroughLayer, id)
		}
		polys = append(polys, pg)
	}

	bucketWidth := int64(timedim.SecondsPerHour)
	if q.GroupBy == timedim.CatDay {
		bucketWidth = timedim.SecondsPerDay
	}
	truncate := func(t timedim.Instant) timedim.Instant {
		if q.GroupBy == timedim.CatDay {
			return t.TruncateDay()
		}
		return t.TruncateHour()
	}

	perBucket := make(map[string]map[moft.Oid]bool)
	contributing := make(map[moft.Oid]bool)
	mark := func(oid moft.Oid, t timedim.Instant) {
		label, _ := timedim.Rollup(q.GroupBy, t)
		if perBucket[label] == nil {
			perBucket[label] = make(map[moft.Oid]bool)
		}
		perBucket[label][oid] = true
		contributing[oid] = true
	}

	if q.SampledOnly {
		tbl, err := s.Ctx.Table(q.Table)
		if err != nil {
			return nil, 0, err
		}
		rows := 0
		tbl.ScanInterval(window, func(tp moft.Tuple) bool {
			if rows++; rows%4096 == 0 && ctx.Err() != nil {
				return false
			}
			for _, pg := range polys {
				if pg.ContainsPoint(tp.Point()) {
					mark(tp.Oid, tp.T)
					break
				}
			}
			return true
		})
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
	} else {
		lits, err := s.Engine.Trajectories(ctx, q.Table)
		if err != nil {
			return nil, 0, err
		}
		for oid, lit := range lits {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			for _, pg := range polys {
				for _, iv := range lit.InsidePolygonIntervals(pg) {
					lo, hi := iv.Lo, iv.Hi
					if lo < float64(window.Lo) {
						lo = float64(window.Lo)
					}
					if hi > float64(window.Hi) {
						hi = float64(window.Hi)
					}
					if hi < lo {
						continue
					}
					// Mark every bucket the clipped interval overlaps.
					for b := truncate(timedim.Instant(lo)); float64(b) <= hi; b += timedim.Instant(bucketWidth) {
						mark(oid, b)
					}
				}
			}
		}
	}

	res := &olap.AggResult{GroupCols: []string{string(q.GroupBy)}}
	for label, objs := range perBucket {
		res.Rows = append(res.Rows, olap.AggResultRow{
			Group: []olap.Member{olap.Member(label)},
			Value: float64(len(objs)),
			N:     int64(len(objs)),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Group[0] < res.Rows[j].Group[0] })
	return res, len(contributing), nil
}

// FormatOutcome renders an outcome as text for CLI use.
func FormatOutcome(o *Outcome) string {
	var sb strings.Builder
	if o.Explain != "" {
		sb.WriteString(o.Explain)
		if !strings.HasSuffix(o.Explain, "\n") {
			sb.WriteByte('\n')
		}
	}
	var names []string
	for name := range o.GeoIDs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s: %v\n", name, o.GeoIDs[name])
	}
	if o.OLAP != nil {
		sb.WriteString("OLAP:\n")
		sb.WriteString(o.OLAP.String())
	}
	if o.HasMO {
		fmt.Fprintf(&sb, "moving objects: %d\n", o.MOCount)
		if o.MOGroups != nil {
			sb.WriteString(o.MOGroups.String())
		}
	}
	return sb.String()
}
