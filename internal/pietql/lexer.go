package pietql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF    tokKind = iota
	tokIdent          // identifiers and keywords
	tokString         // '...'
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSemi
	tokStar
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '\'':
			end := strings.IndexByte(input[i+1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("pietql: unterminated string at position %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+end], i})
			i += end + 2
		case isIdentStart(c):
			j := i
			for j < len(input) && isIdentPart(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("pietql: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}
