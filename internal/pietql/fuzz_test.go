package pietql

import (
	"strings"
	"testing"
)

// FuzzParse pins the parser's no-panic guarantee: arbitrary input must
// produce either a Query or an error, never a crash — the pietql CLI
// feeds user text straight into Parse. A parsed query must also carry
// the invariants the evaluator relies on (a geometric part and
// consistent MO clause flags).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT GEOMETRY FROM districts",
		"SELECT GEOMETRY d.geo FROM districts d WHERE within(d.geo, school.geo, 90)",
		"SELECT GEOMETRY FROM districts | SELECT cars FROM traffic | COUNT bus THROUGH 7:00 9:30",
		"SELECT GEOMETRY FROM a || COUNT x THROUGH 0:00 1:00",
		" | | ",
		"SELECT",
		"COUNT bus THROUGH 25:99 -1:0",
		"SELECT GEOMETRY FROM districts WHERE intersects(a.geo, b.geo)",
		strings.Repeat("(", 100),
		"SELECT GEOMETRY FROM t\x00\xff| x | y",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse(%q) returned both a query and an error", input)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned neither a query nor an error", input)
		}
		// A successful parse must round-trip through the pipe split it
		// came from: at most three parts by construction.
		if n := len(strings.Split(input, "|")); n > 3 {
			t.Fatalf("Parse(%q) accepted %d pipe parts", input, n)
		}
	})
}
