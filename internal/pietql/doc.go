// Package pietql implements Piet-QL, the query language the paper
// sketches in Section 5. A Piet-QL query has up to three parts
// separated by pipes:
//
//	<geometric part> | <OLAP part> | <moving objects part>
//
// The geometric part follows the paper's example verbatim:
//
//	SELECT layer.usa_rivers, layer.usa_cities, layer.usa_stores;
//	FROM PietSchema;
//	WHERE intersection(layer.usa_rivers, layer.usa_cities, subplevel.Linestring)
//	AND (layer.usa_cities)
//	CONTAINS (layer.usa_cities, layer.usa_stores, subplevel.Point);
//
// Semantics: the WHERE clause is a conjunctive query over one
// geometry variable per referenced layer; intersection(A, B[, sub])
// holds when the A-geometry and the B-geometry share a point, and
// CONTAINS(A, B[, sub]) holds when the A-geometry fully contains the
// B-geometry. The optional "subplevel.<Kind>" annotation documents
// the geometry kind materialized by the predicate (Linestring,
// Point, Polygon) and is checked against the layer's declared kind.
// The parenthesized "(layer.X)" between AND and the next predicate
// — present in the paper's example — re-anchors the conjunction on
// layer X and is accepted and checked (the layer must be known), as
// is a plain AND between predicates. The result of the geometric
// part is, per selected layer, the set of geometry identifiers that
// participate in at least one satisfying assignment. Evaluation uses
// the precomputed overlay (Section 5's strategy) when one is
// attached, and falls back to on-the-fly geometry otherwise.
//
// The OLAP part is an MDX query (package mdx) evaluated against the
// registered cubes.
//
// The paper does not fix a syntax for the moving-objects part; ours
// is (a design decision documented here and in DESIGN.md):
//
//	MOVING COUNT(*) FROM FMbus
//	WHERE PASSES THROUGH layer.usa_cities
//	[DURING '2006-01-07 00:00' TO '2006-01-08 00:00']
//	[SAMPLED ONLY]
//
// It counts the moving objects of the named MOFT whose trajectory
// (linear interpolation by default, raw samples with SAMPLED ONLY)
// passes through any geometry the geometric part selected for that
// layer, optionally restricted to a time window — exactly the
// evaluation procedure Section 5 describes: "for each object, and
// for each consecutive pair of points in the moving objects fact
// table, check if the intersection between the segment defined by
// these two points and a city in the answer to the geometric part is
// not empty".
package pietql
