package pietql_test

import (
	"context"

	"strings"
	"testing"

	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/scenario"
)

// system builds a Piet-QL system over the paper's running example,
// optionally with a precomputed overlay.
func system(t *testing.T, withOverlay bool) *pietql.System {
	t.Helper()
	s := scenario.New()
	kinds := map[string]layer.Kind{
		"Ln":      layer.KindPolygon,
		"Lr":      layer.KindPolyline,
		"Ls":      layer.KindNode,
		"Lstores": layer.KindNode,
		"Lh":      layer.KindPolyline,
	}
	sys := &pietql.System{
		Ctx:        s.Ctx,
		Engine:     s.Engine,
		Kinds:      kinds,
		SchemaName: "PietSchema",
		Cubes:      mdx.Catalog{},
	}
	// A small cube for the OLAP part.
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: s.Neighborhoods, Level: "neighborhood"}},
		Measures: []string{"population"},
	})
	ft.MustAdd([]olap.Member{"Meir"}, []float64{60000})
	ft.MustAdd([]olap.Member{"Dam"}, []float64{45000})
	ft.MustAdd([]olap.Member{"Zuid"}, []float64{30000})
	sys.Cubes["CityCube"] = &mdx.Cube{Name: "CityCube", Fact: ft}

	if withOverlay {
		layers := map[string]*layer.Layer{
			"Ln": s.Ln, "Lr": s.Lr, "Ls": s.Ls, "Lstores": s.Lstores, "Lh": s.Lh,
		}
		ov, err := overlay.Precompute(context.Background(), layers, []overlay.Pair{
			{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
			{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.Overlay = ov
	}
	return sys
}

// paperQuery is the Section-5 example adapted to the scenario's layer
// names: cities crossed by a river containing at least one store,
// then the number of cars passing through them.
const paperQuery = `
SELECT layer.Lr, layer.Ln, layer.Lstores;
FROM PietSchema;
WHERE intersection(layer.Lr, layer.Ln, subplevel.Linestring)
AND (layer.Ln)
CONTAINS (layer.Ln, layer.Lstores, subplevel.Point);
`

func TestParsePaperExample(t *testing.T) {
	q, err := pietql.Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Geo.Select) != 3 || q.Geo.Schema != "PietSchema" {
		t.Errorf("geo = %+v", q.Geo)
	}
	if len(q.Geo.Where) != 2 {
		t.Fatalf("where = %+v", q.Geo.Where)
	}
	if q.Geo.Where[0].Kind != pietql.PredIntersection || q.Geo.Where[0].SubLevel != "Linestring" {
		t.Errorf("pred0 = %+v", q.Geo.Where[0])
	}
	if q.Geo.Where[1].Kind != pietql.PredContains || q.Geo.Where[1].Anchor != "Ln" {
		t.Errorf("pred1 = %+v", q.Geo.Where[1])
	}
	if q.OLAP != "" || q.MO != nil {
		t.Error("unexpected OLAP/MO parts")
	}
}

func TestGeoEvaluation(t *testing.T) {
	for _, withOverlay := range []bool{false, true} {
		name := "naive"
		if withOverlay {
			name = "overlay"
		}
		t.Run(name, func(t *testing.T) {
			sys := system(t, withOverlay)
			out, err := sys.Run(context.Background(), paperQuery)
			if err != nil {
				t.Fatal(err)
			}
			// The river along y=15 touches every neighborhood; the
			// store-containing ones are Dam (store 1) and Berchem
			// (store 2). Both are river-crossed (boundary touch), so
			// Ln = {Dam, Berchem}.
			got := out.GeoIDs["Ln"]
			if len(got) != 2 || got[0] != scenario.PgDam || got[1] != scenario.PgBerchem {
				t.Errorf("Ln ids = %v", got)
			}
			if len(out.GeoIDs["Lr"]) != 1 {
				t.Errorf("Lr ids = %v", out.GeoIDs["Lr"])
			}
			if len(out.GeoIDs["Lstores"]) != 2 {
				t.Errorf("Lstores ids = %v", out.GeoIDs["Lstores"])
			}
		})
	}
}

func TestFullThreePartQuery(t *testing.T) {
	sys := system(t, true)
	query := paperQuery + `
| SELECT {[Measures].[population]} ON COLUMNS,
  {[place].[neighborhood].Members} ON ROWS FROM [CityCube]
| MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln
`
	out, err := sys.Run(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if out.OLAP == nil {
		t.Fatal("missing OLAP result")
	}
	if !out.HasMO {
		t.Fatal("missing MO result")
	}
	// Objects passing through Dam or Berchem (interpolated): O2 (Dam),
	// O6 (Dam crossing), O3, O4, O5 (Berchem samples). O1 stays in
	// Meir. → 5.
	if out.MOCount != 5 {
		t.Errorf("MOCount = %d, want 5", out.MOCount)
	}
	s := pietql.FormatOutcome(out)
	for _, want := range []string{"Ln:", "OLAP:", "moving objects: 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatOutcome missing %q:\n%s", want, s)
		}
	}
}

func TestMOSampledOnlyAndWindow(t *testing.T) {
	sys := system(t, false)
	// Sample-only: O6 no longer counts (not sampled in Dam/Berchem...
	// O6's samples are in Linkeroever and Zuid).
	out, err := sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln SAMPLED ONLY`)
	if err != nil {
		t.Fatal(err)
	}
	if out.MOCount != 4 { // O2, O3, O4, O5
		t.Errorf("sampled-only MOCount = %d, want 4", out.MOCount)
	}
	// Window restricted to the morning: O3 (13:00) and O4 (14:00) drop
	// out; O2 (Dam 11:00), O5 (Berchem 11:00) stay; O6 interpolated
	// crossing happens 10:00-11:00.
	out, err = sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln
		DURING '2006-01-09 06:00' TO '2006-01-09 12:00'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.MOCount != 3 { // O2, O5, O6
		t.Errorf("windowed MOCount = %d, want 3", out.MOCount)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT foo.Ln; FROM X;`, // not layer.
		`SELECT layer.Ln FROM`,   // missing schema
		`SELECT layer.Ln; FROM X; WHERE near(layer.Ln, layer.Lr)`,                    // unknown predicate
		`SELECT layer.Ln; FROM X; WHERE intersection(layer.Ln)`,                      // arity
		`SELECT layer.Ln; FROM X; WHERE intersection(layer.Ln, layer.Lr, sub.Point)`, // bad subplevel keyword
		`a | b | c | d`, // too many parts
		`SELECT layer.Ln; FROM X | | MOVING SUM(*) FROM F WHERE PASSES THROUGH layer.Ln`, // non-COUNT
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES layer.Ln`,       // missing THROUGH
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES THROUGH layer.Ln DURING 'bad' TO 'worse'`,
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES THROUGH layer.Ln DURING '2006-01-02' TO '2006-01-01'`,
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES THROUGH layer.Ln garbage`,
		`SELECT layer.Ln; FROM X; WHERE intersection(layer.Ln, layer.Lr) trailing`,
		`SELECT layer.Ln; FROM X; WHERE intersection(layer.Ln, 'str')`,
	}
	for i, in := range cases {
		if _, err := pietql.Parse(in); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, in)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	sys := system(t, false)
	cases := []string{
		`SELECT layer.Ln; FROM WrongSchema;`,   // schema mismatch
		`SELECT layer.Ghost; FROM PietSchema;`, // unknown layer
		`SELECT layer.Ln; FROM PietSchema; WHERE intersection(layer.Ln, layer.Ghost)`,
		`SELECT layer.Ln; FROM PietSchema; WHERE intersection(layer.Lr, layer.Ln, subplevel.Polygon)`, // wrong subplevel
		`SELECT layer.Ln; FROM PietSchema | SELECT {[Measures].[x]} ON COLUMNS FROM [Nope]`,           // OLAP error
		`SELECT layer.Ln; FROM PietSchema | | MOVING COUNT(*) FROM Nope WHERE PASSES THROUGH layer.Ln`,
		`SELECT layer.Ln; FROM PietSchema | | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Lr`,      // polyline layer
		`SELECT layer.Ln; FROM PietSchema | | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Lstores`, // not polygon
		`SELECT layer.Lr; FROM PietSchema | | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln`,      // Ln not selected
		`SELECT layer.Ln; FROM PietSchema; WHERE CONTAINS(layer.Lr, layer.Lstores)`,                          // CONTAINS needs polygon lhs
	}
	for i, in := range cases {
		if _, err := sys.Run(context.Background(), in); err == nil {
			t.Errorf("case %d: expected eval error for %q", i, in)
		}
	}
}

func TestContainsPolylineAndPolygon(t *testing.T) {
	sys := system(t, false)
	// Streets fully inside a neighborhood? Meirstraat spans x=0..40 —
	// not contained in any single neighborhood, so the result is
	// empty.
	out, err := sys.Run(context.Background(), `SELECT layer.Ln; FROM PietSchema; WHERE CONTAINS(layer.Ln, layer.Lh)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 0 {
		t.Errorf("contained streets = %v", out.GeoIDs["Ln"])
	}
	// intersection over streets: Leien (x=22) crosses Zuid and Berchem;
	// Meirstraat (y=8) crosses Meir, Dam, Zuid.
	out, err = sys.Run(context.Background(), `SELECT layer.Ln; FROM PietSchema; WHERE intersection(layer.Ln, layer.Lh, subplevel.Linestring)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 4 { // Meir, Dam, Zuid, Berchem
		t.Errorf("street-crossed = %v", out.GeoIDs["Ln"])
	}
}

func TestSelectWithoutWhere(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), `SELECT layer.Ln; FROM PietSchema;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 5 {
		t.Errorf("all neighborhoods = %v", out.GeoIDs["Ln"])
	}
}

func TestPredicateKindString(t *testing.T) {
	if pietql.PredIntersection.String() != "intersection" || pietql.PredContains.String() != "CONTAINS" {
		t.Error("PredicateKind.String mismatch")
	}
}
