package pietql_test

import (
	"context"
	"testing"

	"mogis/internal/obs"
	"mogis/internal/pietql"
	"mogis/internal/telemetry"
)

// moQuery extends the paper example with a moving-objects part so the
// pipeline record carries a fact table.
const moQuery = paperQuery + `| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln`

// TestSystemTelemetryRecords drives Run through its four shapes —
// plain query, EXPLAIN, EXPLAIN ANALYZE, parse error — against an
// injected collector and checks the per-op stats rows, the pipeline
// records, and the retained traces.
func TestSystemTelemetryRecords(t *testing.T) {
	sys := system(t, true)
	col := telemetry.New(telemetry.Config{
		Registry:    obs.NewRegistry(),
		SampleEvery: 1, // trace every eligible query
	})
	sys.Telemetry = col
	ctx := context.Background()

	if _, err := sys.Run(ctx, moQuery); err != nil {
		t.Fatalf("query: %v", err)
	}
	if _, err := sys.Run(ctx, "EXPLAIN "+moQuery); err != nil {
		t.Fatalf("explain: %v", err)
	}
	if _, err := sys.Run(ctx, "EXPLAIN ANALYZE "+moQuery); err != nil {
		t.Fatalf("explain analyze: %v", err)
	}
	if _, err := sys.Run(ctx, "SELECT bogus"); err == nil {
		t.Fatal("malformed query did not error")
	}

	wantOps := map[string]int64{
		"pietql_query":           2, // one ok, one parse error
		"pietql_explain":         1,
		"pietql_explain_analyze": 1,
	}
	stats := sys.Telemetry.Stats()
	if len(stats.Ops) != len(wantOps) {
		t.Fatalf("ops = %+v", stats.Ops)
	}
	for _, row := range stats.Ops {
		if row.Queries != wantOps[row.Op] {
			t.Errorf("%s queries = %d, want %d", row.Op, row.Queries, wantOps[row.Op])
		}
	}

	recent := col.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d records, want 4", len(recent))
	}
	// Newest first: the parse error leads; the successful pipeline runs
	// carry the MO fact table.
	if recent[0].Outcome != pietql.OutcomeParseError || recent[0].Err == "" {
		t.Errorf("parse-error record = %+v", recent[0])
	}
	for _, i := range []int{1, 2, 3} {
		if recent[i].Table != "FMbus" || recent[i].Outcome != telemetry.OutcomeOK {
			t.Errorf("recent[%d] = %+v, want ok over FMbus", i, recent[i])
		}
	}
	// The parse error is also pinned in the slow/failed set.
	slow := col.Slow(0)
	if len(slow) != 1 || slow[0].Outcome != pietql.OutcomeParseError {
		t.Errorf("slow = %+v", slow)
	}

	// Traces: the plain run and the parse error are sampled; EXPLAIN
	// ANALYZE always retains its trace; bare EXPLAIN never traces.
	traces := col.Traces(false)
	if len(traces) != 3 {
		t.Fatalf("retained traces = %d, want 3", len(traces))
	}
	byOp := map[string]int{}
	for _, tr := range traces {
		byOp[string(tr.Rec.Op)]++
		if tr.Root == nil || tr.Query == "" {
			t.Errorf("trace %d incomplete: %+v", tr.ID, tr.Rec)
		}
		if got, ok := col.TraceByID(tr.ID); !ok || got.ID != tr.ID {
			t.Errorf("TraceByID(%d) lost the trace", tr.ID)
		}
	}
	if byOp["pietql_query"] != 2 || byOp["pietql_explain_analyze"] != 1 {
		t.Errorf("traced ops = %v", byOp)
	}
}

// TestSystemTelemetryDisabled pins the default: a System with no
// collector (and no process default) records nothing and does not
// trace.
func TestSystemTelemetryDisabled(t *testing.T) {
	prev := telemetry.SetDefault(nil)
	defer telemetry.SetDefault(prev)

	sys := system(t, false)
	if _, err := sys.Run(context.Background(), paperQuery); err != nil {
		t.Fatal(err)
	}
	if tr := sys.Ctx.Tracer(); tr != nil {
		t.Errorf("disabled run left a tracer attached: %v", tr)
	}
}
