package pietql

import (
	"errors"
	"time"

	"mogis/internal/core"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
)

// Telemetry integration for the Piet-QL pipeline. Every System.Run
// produces one telemetry.QueryRecord for the whole pipeline (parse +
// geo + OLAP + moving objects), on top of the per-entry-point records
// the core engine emits for the MO part. Sampled queries additionally
// run under a retained tracer, so /debug/traces serves EXPLAIN
// ANALYZE-quality span trees for a recent cross-section of real
// traffic without tracing every query.

// The Piet-QL pipeline op names in the telemetry QueryStats table.
const (
	opQuery          = "pietql_query"
	opExplain        = "pietql_explain"
	opExplainAnalyze = "pietql_explain_analyze"
)

// OutcomeParseError is the pipeline-specific telemetry outcome for
// queries rejected by the parser (the engine outcomes cover the rest).
const OutcomeParseError = telemetry.Outcome("parse_error")

// telemetry resolves the collector the system records to: the
// explicitly injected one, else the process-wide default (nil = off).
func (s *System) telemetry() *telemetry.Collector {
	if s.Telemetry != nil {
		return s.Telemetry
	}
	return telemetry.Default()
}

// classifyErr maps a pipeline error to its telemetry outcome.
func classifyErr(err error) telemetry.Outcome {
	var be *core.BudgetError
	switch {
	case err == nil:
		return telemetry.OutcomeOK
	case IsParseError(err):
		return OutcomeParseError
	case qerr.IsCancel(err):
		return telemetry.OutcomeCancelled
	case errors.As(err, &be):
		if be.Resource == "rows" {
			return telemetry.OutcomeBudgetRows
		}
		return telemetry.OutcomeBudgetResults
	case qerr.IsPanic(err):
		return telemetry.OutcomePanic
	}
	return telemetry.OutcomeError
}

// queryRecord assembles the pipeline-level record for one Run.
func queryRecord(op, table string, start time.Time, err error) telemetry.QueryRecord {
	rec := telemetry.QueryRecord{
		Op:       op,
		Table:    table,
		Start:    start,
		Duration: time.Since(start),
		Outcome:  classifyErr(err),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	return rec
}

// moTable names the fact table of the query's moving-objects part
// ("" when the query has none or failed to parse).
func moTable(q *Query) string {
	if q == nil || q.MO == nil {
		return ""
	}
	return q.MO.Table
}

// sampleTrace decides whether this Run is traced: a sampled tracer is
// installed on the model context for the duration of the query and
// retained afterwards. The model context holds one tracer at a time,
// so the slot is claimed with a compare-and-swap: if another query is
// already being traced (concurrent server traffic), this one simply
// runs unsampled instead of tearing the in-flight trace.
func (s *System) sampleTrace(tel *telemetry.Collector) (*obs.Tracer, func()) {
	tr := tel.MaybeTrace()
	if tr == nil {
		return nil, func() {}
	}
	if !s.Ctx.CompareAndSwapTracer(nil, tr) {
		return nil, func() {}
	}
	return tr, func() { s.Ctx.CompareAndSwapTracer(tr, nil) }
}
