package pietql

import (
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// PredicateKind enumerates the geometric predicates.
type PredicateKind int

// The predicates of the geometric part.
const (
	PredIntersection PredicateKind = iota
	PredContains
)

func (k PredicateKind) String() string {
	if k == PredContains {
		return "CONTAINS"
	}
	return "intersection"
}

// Predicate is one WHERE condition: a predicate over two layer
// variables with an optional subplevel annotation.
type Predicate struct {
	Kind     PredicateKind
	A, B     string // layer names
	SubLevel string // "Linestring", "Point", "Polygon" or empty
	Anchor   string // the "(layer.X)" re-anchor preceding the predicate, or empty
}

// GeoQuery is the geometric part.
type GeoQuery struct {
	Select []string // layer names, in SELECT order
	Schema string
	Where  []Predicate
}

// MOQuery is the moving-objects part.
type MOQuery struct {
	Agg          olap.AggFunc // COUNT (over *) is the supported aggregate
	Table        string       // MOFT name
	ThroughLayer string       // the layer whose geometric-part result gates the objects
	HasWindow    bool
	Window       timedim.Interval
	SampledOnly  bool // raw-sample semantics instead of interpolation
	// GroupBy buckets the count by a Time-dimension category; only
	// the chronon-aligned categories hour and day are supported (an
	// object counts in every bucket its passing intervals overlap).
	GroupBy timedim.Category
}

// Query is a full three-part Piet-QL query; OLAP and MO parts are
// optional.
type Query struct {
	Geo  *GeoQuery
	OLAP string // raw MDX text, empty when absent
	MO   *MOQuery
}
