package pietql_test

import (
	"context"

	"strings"
	"testing"

	"mogis/internal/pietql"
)

// TestMOGroupByHour checks the per-hour breakdown of objects passing
// through the selected polygons (the paper's "number of buses per
// hour" normalization, bucketed).
func TestMOGroupByHour(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln GROUP BY hour`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasMO || out.MOGroups == nil {
		t.Fatal("missing grouped MO result")
	}
	// Selected polygons: Dam and Berchem. Interpolated presence:
	//  - O2 in Dam around 11:00 (sample) — its 10:00→11:00 leg enters
	//    Dam and the 11:00→12:00 leg exits it → buckets 10, 11.
	//  - O6 crosses Dam between 10:00 and 11:00 → bucket 10.
	//  - O5 in Berchem at 11:00 → bucket 11.
	//  - O3 in Berchem at 13:00 → bucket 13.
	//  - O4 in Berchem at 14:00 → bucket 14.
	if v, ok := out.MOGroups.Lookup("2006-01-09 10"); !ok || v != 2 { // O2, O6
		t.Errorf("10h = %v,%v\n%s", v, ok, out.MOGroups)
	}
	if v, ok := out.MOGroups.Lookup("2006-01-09 11"); !ok || v != 2 { // O2, O5
		t.Errorf("11h = %v,%v\n%s", v, ok, out.MOGroups)
	}
	if v, ok := out.MOGroups.Lookup("2006-01-09 13"); !ok || v != 1 { // O3
		t.Errorf("13h = %v,%v\n%s", v, ok, out.MOGroups)
	}
	// The total remains the distinct object count.
	if out.MOCount != 5 {
		t.Errorf("total = %d, want 5", out.MOCount)
	}
	// The formatted outcome includes the group table.
	if s := pietql.FormatOutcome(out); !strings.Contains(s, "2006-01-09 10") {
		t.Errorf("FormatOutcome missing group rows:\n%s", s)
	}
}

func TestMOGroupByDay(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln GROUP BY day`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MOGroups.Rows) != 1 {
		t.Fatalf("day buckets = %v", out.MOGroups)
	}
	if v, ok := out.MOGroups.Lookup("2006-01-09"); !ok || v != 5 {
		t.Errorf("day = %v,%v", v, ok)
	}
}

func TestMOGroupBySampledOnly(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln SAMPLED ONLY GROUP BY hour`)
	if err != nil {
		t.Fatal(err)
	}
	// Sample-only: O2@11 (Dam), O5@11 (Berchem), O3@13, O4@14; no O6.
	if v, ok := out.MOGroups.Lookup("2006-01-09 11"); !ok || v != 2 {
		t.Errorf("11h sampled = %v,%v\n%s", v, ok, out.MOGroups)
	}
	if _, ok := out.MOGroups.Lookup("2006-01-09 10"); ok {
		t.Errorf("10h should be absent for sampled-only:\n%s", out.MOGroups)
	}
	if out.MOCount != 4 {
		t.Errorf("total = %d, want 4", out.MOCount)
	}
}

func TestMOGroupByParseErrors(t *testing.T) {
	cases := []string{
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES THROUGH layer.Ln GROUP BY month`,
		`SELECT layer.Ln; FROM X | | MOVING COUNT(*) FROM F WHERE PASSES THROUGH layer.Ln GROUP hour`,
	}
	for i, in := range cases {
		if _, err := pietql.Parse(in); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestMOGroupByWindow(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), paperQuery+`| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln
		DURING '2006-01-09 06:00' TO '2006-01-09 12:00' GROUP BY hour`)
	if err != nil {
		t.Fatal(err)
	}
	// Afternoon buckets must be gone.
	if _, ok := out.MOGroups.Lookup("2006-01-09 13"); ok {
		t.Errorf("13h should be clipped:\n%s", out.MOGroups)
	}
	if out.MOCount != 3 { // O2, O5, O6
		t.Errorf("windowed total = %d, want 3", out.MOCount)
	}
}
