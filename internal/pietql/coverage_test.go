package pietql_test

import (
	"context"

	"testing"

	"mogis/internal/pietql"
	"mogis/internal/scenario"
)

// TestPredicateBindingDirections exercises the conjunctive evaluator's
// join orders: a predicate whose B side is already bound (the second
// condition re-uses layer variables bound by the first), and a
// both-bound filter predicate.
func TestPredicateBindingDirections(t *testing.T) {
	sys := system(t, false)
	// First predicate binds Lr and Ln; the second has Ln bound and Lr
	// bound → both-bound filter path.
	out, err := sys.Run(context.Background(), `
		SELECT layer.Ln, layer.Lr;
		FROM PietSchema;
		WHERE intersection(layer.Lr, layer.Ln)
		AND intersection(layer.Ln, layer.Lr)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 5 { // the river borders all five neighborhoods
		t.Errorf("Ln = %v", out.GeoIDs["Ln"])
	}
	// B-side bound, A-side unbound: stores first (binds Lstores),
	// then CONTAINS with only B bound forces A enumeration.
	out, err = sys.Run(context.Background(), `
		SELECT layer.Lstores, layer.Ln;
		FROM PietSchema;
		WHERE intersection(layer.Lstores, layer.Lr)
		AND CONTAINS(layer.Ln, layer.Lstores)`)
	if err != nil {
		t.Fatal(err)
	}
	// No store sits on the river, so nothing survives.
	if len(out.GeoIDs["Lstores"]) != 0 || len(out.GeoIDs["Ln"]) != 0 {
		t.Errorf("river stores = %v", out.GeoIDs)
	}
	// Same shape but with a satisfiable first predicate: stores in
	// neighborhoods (binds both), then Ln re-anchored via stores.
	out, err = sys.Run(context.Background(), `
		SELECT layer.Ln;
		FROM PietSchema;
		WHERE CONTAINS(layer.Ln, layer.Lstores)
		AND intersection(layer.Lstores, layer.Ln)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 2 { // Dam and Berchem hold the stores
		t.Errorf("store neighborhoods = %v", out.GeoIDs["Ln"])
	}
}

// TestContainsPolygonInPolygon covers the polygon⊆polygon containment
// branch via a district layer nested in a neighborhood.
func TestContainsPolygonInPolygon(t *testing.T) {
	s := scenario.New()
	// Add a district polygon inside Meir to the box layer (reused as a
	// polygon layer for this test).
	sys := system(t, false)
	_ = s
	out, err := sys.Run(context.Background(), `
		SELECT layer.Ln;
		FROM PietSchema;
		WHERE CONTAINS(layer.Ln, layer.Ln)`)
	if err != nil {
		t.Fatal(err)
	}
	// Every polygon contains itself.
	if len(out.GeoIDs["Ln"]) != 5 {
		t.Errorf("self containment = %v", out.GeoIDs["Ln"])
	}
}

// TestContainsPolylineBranch covers CONTAINS(polygon, polyline): no
// street is fully inside one neighborhood, and the error for a
// missing subplevel combination.
func TestContainsPolylineBranch(t *testing.T) {
	sys := system(t, false)
	out, err := sys.Run(context.Background(), `
		SELECT layer.Ln;
		FROM PietSchema;
		WHERE CONTAINS(layer.Ln, layer.Lh, subplevel.Linestring)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.GeoIDs["Ln"]) != 0 {
		t.Errorf("contained streets = %v", out.GeoIDs["Ln"])
	}
	// CONTAINS(polygon, polyline) expects subplevel.Linestring; Point
	// is rejected.
	if _, err := sys.Run(context.Background(), `SELECT layer.Ln; FROM PietSchema; WHERE CONTAINS(layer.Ln, layer.Lh, subplevel.Point)`); err == nil {
		t.Error("wrong subplevel accepted")
	}
	// intersection of two node layers is not a supported overlay pair
	// (points intersect only on exact coincidence); the evaluator
	// reports it rather than returning an empty guess.
	if _, err := sys.Run(context.Background(), `SELECT layer.Ls; FROM PietSchema; WHERE intersection(layer.Ls, layer.Lstores, subplevel.Point)`); err == nil {
		t.Error("node-node pair accepted")
	}
	// polygon-polygon intersection materializes polygons.
	if _, err := pietql.Parse(`SELECT layer.Ln; FROM X; WHERE intersection(layer.Ln, layer.Ln, subplevel.Polygon)`); err != nil {
		t.Errorf("polygon subplevel parse: %v", err)
	}
}
