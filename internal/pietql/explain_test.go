package pietql_test

import (
	"context"

	"strings"
	"testing"

	"mogis/internal/obs"
	"mogis/internal/pietql"
)

const moPart = `
| | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln
`

func TestExplainAnalyze(t *testing.T) {
	sys := system(t, true)
	out, err := sys.Run(context.Background(), "EXPLAIN ANALYZE "+paperQuery+moPart)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasMO || out.MOCount != 5 {
		t.Errorf("EXPLAIN ANALYZE changed the result: HasMO=%v MOCount=%d", out.HasMO, out.MOCount)
	}
	for _, want := range []string{
		"parse", "geo", "overlay_lookup", "mo",
		"mogis_overlay_hits_total", "mogis_litcache_hits_total", "mogis_litcache_misses_total",
		"counters:",
	} {
		if !strings.Contains(out.Explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, out.Explain)
		}
	}
	if !strings.Contains(pietql.FormatOutcome(out), "counters:") {
		t.Error("FormatOutcome does not include the explain output")
	}
}

// TestExplainAnalyzeGridCounters: a SAMPLED ONLY query routes through
// the pre-aggregated grid, and EXPLAIN ANALYZE surfaces the grid
// build/query counters alongside the cache counters.
func TestExplainAnalyzeGridCounters(t *testing.T) {
	sys := system(t, true)
	out, err := sys.Run(context.Background(), "EXPLAIN ANALYZE "+paperQuery+
		` | | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln SAMPLED ONLY`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mogis_agggrid_builds_total", "mogis_agggrid_queries_total",
	} {
		if !strings.Contains(out.Explain, want) {
			t.Errorf("Explain missing %q for a SAMPLED ONLY query:\n%s", want, out.Explain)
		}
	}
}

func TestExplainPlanOnly(t *testing.T) {
	sys := system(t, true)
	out, err := sys.Run(context.Background(), "EXPLAIN "+paperQuery+moPart)
	if err != nil {
		t.Fatal(err)
	}
	if out.HasMO || out.GeoIDs != nil {
		t.Errorf("plain EXPLAIN executed the query: %+v", out)
	}
	for _, want := range []string{"plan:", "intersection(Lr, Ln)", "CONTAINS(Ln, Lstores)", "COUNT(*) from FMbus"} {
		if !strings.Contains(out.Explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, out.Explain)
		}
	}
}

// TestNoOverlayZeroHits pins the meaning of the overlay counters: a
// system without a precomputed overlay answers every geometric
// predicate naively, so a run records only misses.
func TestNoOverlayZeroHits(t *testing.T) {
	sys := system(t, false)
	before := obs.Default.Snapshot()
	if _, err := sys.Run(context.Background(), paperQuery); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()
	if d := after.Value("mogis_overlay_hits_total") - before.Value("mogis_overlay_hits_total"); d != 0 {
		t.Errorf("overlay hits = %v, want 0 without an overlay", d)
	}
	if d := after.Value("mogis_overlay_misses_total") - before.Value("mogis_overlay_misses_total"); d <= 0 {
		t.Errorf("overlay misses = %v, want > 0 without an overlay", d)
	}
}

func TestOverlayHitsCounted(t *testing.T) {
	sys := system(t, true)
	before := obs.Default.Snapshot()
	if _, err := sys.Run(context.Background(), paperQuery); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()
	if d := after.Value("mogis_overlay_hits_total") - before.Value("mogis_overlay_hits_total"); d <= 0 {
		t.Errorf("overlay hits = %v, want > 0 with an overlay", d)
	}
}
