package pietql

import (
	"fmt"
	"strings"

	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// Parse splits the query on pipes and parses the geometric and
// moving-object parts; the OLAP part is kept verbatim for the MDX
// engine.
func Parse(input string) (*Query, error) {
	parts := strings.Split(input, "|")
	if len(parts) > 3 {
		return nil, fmt.Errorf("pietql: at most three pipe-separated parts, got %d", len(parts))
	}
	q := &Query{}
	geo, err := parseGeo(parts[0])
	if err != nil {
		return nil, err
	}
	q.Geo = geo
	if len(parts) >= 2 {
		if text := strings.TrimSpace(parts[1]); text != "" {
			q.OLAP = text
		}
	}
	if len(parts) == 3 {
		if text := strings.TrimSpace(parts[2]); text != "" {
			mo, err := parseMO(text)
			if err != nil {
				return nil, err
			}
			q.MO = mo
		}
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("pietql: expected %v at position %d, got %v %q", kind, t.pos, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) keyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("pietql: expected %q at position %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// optSemi consumes an optional semicolon.
func (p *parser) optSemi() {
	if p.peek().kind == tokSemi {
		p.next()
	}
}

// parseLayerRef parses "layer.<name>".
func (p *parser) parseLayerRef() (string, error) {
	if err := p.keyword("layer"); err != nil {
		return "", err
	}
	if _, err := p.expect(tokDot); err != nil {
		return "", err
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// parseSubLevel parses "subplevel.<Kind>".
func (p *parser) parseSubLevel() (string, error) {
	if err := p.keyword("subplevel"); err != nil {
		return "", err
	}
	if _, err := p.expect(tokDot); err != nil {
		return "", err
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func parseGeo(input string) (*GeoQuery, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &GeoQuery{}

	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		l, err := p.parseLayerRef()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, l)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	p.optSemi()

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Schema = t.text
	p.optSemi()

	if p.peekKeyword("WHERE") {
		p.next()
		anchor := ""
		for {
			pred, err := p.parsePredicate(anchor)
			if err != nil {
				return nil, err
			}
			anchor = ""
			q.Where = append(q.Where, pred)
			p.optSemi()
			if p.peekKeyword("AND") {
				p.next()
				// The paper's "(layer.X)" re-anchor may follow AND.
				if p.peek().kind == tokLParen {
					p.next()
					a, err := p.parseLayerRef()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(tokRParen); err != nil {
						return nil, err
					}
					anchor = a
				}
				continue
			}
			break
		}
	}
	p.optSemi()
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("pietql: trailing input in geometric part at position %d: %q", t.pos, t.text)
	}
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("pietql: empty SELECT")
	}
	return q, nil
}

// parsePredicate parses "intersection(layer.a, layer.b[, subplevel.K])"
// or "CONTAINS(layer.a, layer.b[, subplevel.K])".
func (p *parser) parsePredicate(anchor string) (Predicate, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return Predicate{}, err
	}
	var kind PredicateKind
	switch strings.ToUpper(t.text) {
	case "INTERSECTION":
		kind = PredIntersection
	case "CONTAINS":
		kind = PredContains
	default:
		return Predicate{}, fmt.Errorf("pietql: unknown predicate %q at position %d", t.text, t.pos)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Predicate{}, err
	}
	a, err := p.parseLayerRef()
	if err != nil {
		return Predicate{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return Predicate{}, err
	}
	b, err := p.parseLayerRef()
	if err != nil {
		return Predicate{}, err
	}
	sub := ""
	if p.peek().kind == tokComma {
		p.next()
		sub, err = p.parseSubLevel()
		if err != nil {
			return Predicate{}, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Predicate{}, err
	}
	return Predicate{Kind: kind, A: a, B: b, SubLevel: sub, Anchor: anchor}, nil
}

// parseMO parses the moving-objects part.
func parseMO(input string) (*MOQuery, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &MOQuery{}

	if err := p.keyword("MOVING"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	fn, err := olap.ParseAggFunc(strings.ToUpper(t.text))
	if err != nil {
		return nil, err
	}
	if fn != olap.Count {
		return nil, fmt.Errorf("pietql: moving-objects part supports COUNT, got %s", fn)
	}
	q.Agg = fn
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	tt, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Table = tt.text

	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.keyword("PASSES"); err != nil {
		return nil, err
	}
	if err := p.keyword("THROUGH"); err != nil {
		return nil, err
	}
	q.ThroughLayer, err = p.parseLayerRef()
	if err != nil {
		return nil, err
	}

	for {
		switch {
		case p.peekKeyword("DURING"):
			p.next()
			lo, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			if err := p.keyword("TO"); err != nil {
				return nil, err
			}
			hi, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			tlo, err := timedim.Parse(lo.text)
			if err != nil {
				return nil, fmt.Errorf("pietql: DURING start: %w", err)
			}
			thi, err := timedim.Parse(hi.text)
			if err != nil {
				return nil, fmt.Errorf("pietql: DURING end: %w", err)
			}
			if thi < tlo {
				return nil, fmt.Errorf("pietql: DURING window is inverted")
			}
			q.HasWindow = true
			q.Window = timedim.Interval{Lo: tlo, Hi: thi}
		case p.peekKeyword("SAMPLED"):
			p.next()
			if err := p.keyword("ONLY"); err != nil {
				return nil, err
			}
			q.SampledOnly = true
		case p.peekKeyword("GROUP"):
			p.next()
			if err := p.keyword("BY"); err != nil {
				return nil, err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch cat := timedim.Category(t.text); cat {
			case timedim.CatHour, timedim.CatDay:
				q.GroupBy = cat
			default:
				return nil, fmt.Errorf("pietql: GROUP BY supports hour or day, got %q", t.text)
			}
		default:
			p.optSemi()
			if t := p.peek(); t.kind != tokEOF {
				return nil, fmt.Errorf("pietql: trailing input in moving-objects part at position %d: %q", t.pos, t.text)
			}
			return q, nil
		}
	}
}
