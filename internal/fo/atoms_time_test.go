package fo

import (
	"testing"

	"mogis/internal/timedim"
)

func TestTimeBetween(t *testing.T) {
	ctx := testContext(t)
	nine := timedim.At(2006, 1, 9, 9, 0)
	ten := timedim.At(2006, 1, 9, 10, 30)
	f := And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&TimeBetween{T: V("t"), Lo: nine, Hi: ten},
	)
	rel, err := Eval(ctx, f, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Samples in [9:00, 10:30]: O1@9:00, O1@10:00, O2@9:00.
	if rel.Len() != 3 {
		t.Errorf("window = %v", rel)
	}
	// Unbound term is rejected.
	if _, err := Eval(ctx, &TimeBetween{T: V("t"), Lo: nine, Hi: ten}, []Var{"t"}); err == nil {
		t.Error("unbound TimeBetween accepted")
	}
	// Non-instant term errors.
	bad := And(
		&MemberOf{Concept: "neighb", M: V("n")},
		&TimeBetween{T: V("n"), Lo: nine, Hi: ten},
	)
	if _, err := Eval(ctx, bad, []Var{"n"}); err == nil {
		t.Error("non-instant TimeBetween accepted")
	}
}

func TestHourOfDayBetween(t *testing.T) {
	ctx := testContext(t)
	// The paper's Q7 shape: "between 8:00 and 10:00" means clock hours
	// 8..10 (exclusive of 11).
	f := And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&HourOfDayBetween{T: V("t"), Lo: 8, Hi: 10},
	)
	rel, err := Eval(ctx, f, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Samples at clock hours 9 (O1, O2), 10 (O1); the 11:00 sample and
	// the 23:00 one are excluded.
	if rel.Len() != 3 {
		t.Errorf("hours 8..10 = %v", rel)
	}
	// String-compare would have ordered "10" < "9" and broken this.
	bad := And(
		&MemberOf{Concept: "neighb", M: V("n")},
		&HourOfDayBetween{T: V("n"), Lo: 0, Hi: 23},
	)
	if _, err := Eval(ctx, bad, []Var{"n"}); err == nil {
		t.Error("non-instant HourOfDayBetween accepted")
	}
	if _, err := Eval(ctx, &HourOfDayBetween{T: V("z"), Lo: 1, Hi: 2}, []Var{"z"}); err == nil {
		t.Error("unbound HourOfDayBetween accepted")
	}
}
