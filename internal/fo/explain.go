package fo

import (
	"fmt"
	"strings"
)

// Describe renders a formula in the paper's notation (∃, ∧, ∨, ¬,
// FM(...), r^{Pt,G}_L(...), α_A(...) = g, R^cat(t) = v).
func Describe(f Formula) string {
	switch v := f.(type) {
	case *conj:
		if len(v.parts) == 0 {
			return "⊤"
		}
		parts := make([]string, len(v.parts))
		for i, p := range v.parts {
			parts[i] = Describe(p)
		}
		return "(" + strings.Join(parts, " ∧ ") + ")"
	case *disj:
		parts := make([]string, len(v.parts))
		for i, p := range v.parts {
			parts[i] = Describe(p)
		}
		return "(" + strings.Join(parts, " ∨ ") + ")"
	case *neg:
		return "¬" + Describe(v.f)
	case *exists:
		vars := make([]string, len(v.vars))
		for i, vr := range v.vars {
			vars[i] = string(vr)
		}
		return "∃" + strings.Join(vars, ",") + ". " + Describe(v.f)
	case *Fact:
		return fmt.Sprintf("%s(%s, %s, %s, %s)", v.Table,
			describeTerm(v.O), describeTerm(v.T), describeTerm(v.X), describeTerm(v.Y))
	case *InterpFact:
		return fmt.Sprintf("%s~interp[%d](%s, %s, %s, %s)", v.Table, len(v.Times),
			describeTerm(v.O), describeTerm(v.T), describeTerm(v.X), describeTerm(v.Y))
	case *PointIn:
		return fmt.Sprintf("r^{Pt,%s}_%s(%s, %s, %s)", v.Kind, v.Layer,
			describeTerm(v.X), describeTerm(v.Y), describeTerm(v.G))
	case *Alpha:
		return fmt.Sprintf("α_%s(%s) = %s", v.Attr, describeTerm(v.A), describeTerm(v.G))
	case *TimeRollup:
		return fmt.Sprintf("R^%s(%s) = %s", v.Cat, describeTerm(v.T), describeTerm(v.V))
	case *MemberOf:
		return fmt.Sprintf("%s ∈ %s", describeTerm(v.M), v.Concept)
	case *Cmp:
		return fmt.Sprintf("%s %s %s", describeTerm(v.L), v.Op, describeTerm(v.R))
	case *AttrCmp:
		return fmt.Sprintf("%s.%s %s %s", describeTerm(v.M), v.Attr, v.Op, describeTerm(v.Rhs))
	case *DistLE:
		return fmt.Sprintf("(%s-%s)² + (%s-%s)² ≤ %g²",
			describeTerm(v.X1), describeTerm(v.X2), describeTerm(v.Y1), describeTerm(v.Y2), v.R)
	case *GeomIn:
		return fmt.Sprintf("%s ∈ {%d ids}", describeTerm(v.G), len(v.IDs))
	case *TimeBetween:
		return fmt.Sprintf("%s ≤ %s ≤ %s", v.Lo, describeTerm(v.T), v.Hi)
	case *HourOfDayBetween:
		return fmt.Sprintf("%d ≤ hourOf(%s) ≤ %d", v.Lo, describeTerm(v.T), v.Hi)
	default:
		return fmt.Sprintf("%T", f)
	}
}

func describeTerm(t Term) string {
	if t.IsVar {
		return string(t.V)
	}
	return t.C.String()
}

// Explain returns the evaluation plan of a formula: for conjunctions,
// the greedy schedule (generators interleaved with filters) the
// evaluator will follow given the initially bound variables; for
// other formulas, a single step. It fails where evaluation would:
// when the formula is not range-restricted.
func Explain(f Formula) ([]string, error) {
	return explainWith(f, varset{})
}

func explainWith(f Formula, bound varset) ([]string, error) {
	switch v := f.(type) {
	case *conj:
		order, _, err := v.plan(bound)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(order))
		b := bound.clone()
		for i, p := range order {
			nb, _ := p.binds(b)
			role := "filter"
			if len(nb) > len(b) {
				role = "generate"
			}
			out[i] = fmt.Sprintf("%d. [%s] %s", i+1, role, Describe(p))
			b = nb
		}
		return out, nil
	case *exists:
		inner, err := explainWith(v.f, bound)
		if err != nil {
			return nil, err
		}
		vars := make([]string, len(v.vars))
		for i, vr := range v.vars {
			vars[i] = string(vr)
		}
		return append(inner, fmt.Sprintf("%d. project out ∃%s", len(inner)+1, strings.Join(vars, ","))), nil
	default:
		if _, ok := f.binds(bound); !ok {
			return nil, &ErrNotRangeRestricted{Detail: "formula cannot be evaluated bottom-up"}
		}
		return []string{"1. " + Describe(f)}, nil
	}
}
