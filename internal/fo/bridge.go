package fo

import (
	"fmt"

	"mogis/internal/olap"
)

// ColumnSpec describes how one relation column becomes a fact-table
// dimension column: the variable, the dimension instance it belongs
// to (nil for degenerate dimensions like raw time buckets), and its
// level.
type ColumnSpec struct {
	Var       Var
	Dimension *olap.Dimension
	Level     olap.Level
}

// ToFactTable materializes a region-C relation as a classical OLAP
// fact table: the dims columns become dimension coordinates and each
// measure column becomes a measure (non-numeric measure values are an
// error). This closes the paper's loop — a spatio-temporal region
// computed from the MOFT and the GIS becomes a fact table in the
// application part, ready for cube materialization and MDX.
func (r *Relation) ToFactTable(dims []ColumnSpec, measures []Var) (*olap.FactTable, error) {
	dimCols := make([]olap.DimCol, len(dims))
	dimIdx := make([]int, len(dims))
	for i, d := range dims {
		j, err := r.Col(d.Var)
		if err != nil {
			return nil, err
		}
		dimIdx[i] = j
		dimCols[i] = olap.DimCol{Name: string(d.Var), Dimension: d.Dimension, Level: d.Level}
	}
	mIdx := make([]int, len(measures))
	mNames := make([]string, len(measures))
	for i, m := range measures {
		j, err := r.Col(m)
		if err != nil {
			return nil, err
		}
		mIdx[i] = j
		mNames[i] = string(m)
	}
	ft := olap.NewFactTable(olap.FactSchema{Dims: dimCols, Measures: mNames})
	for _, tup := range r.Tuples {
		coords := make([]olap.Member, len(dimIdx))
		for i, j := range dimIdx {
			coords[i] = olap.Member(tup[j].String())
		}
		ms := make([]float64, len(mIdx))
		for i, j := range mIdx {
			f, ok := tup[j].Real()
			if !ok {
				return nil, fmt.Errorf("fo: measure column %q holds non-numeric value %v", measures[i], tup[j])
			}
			ms[i] = f
		}
		if err := ft.Add(coords, ms); err != nil {
			return nil, err
		}
	}
	return ft, nil
}

// CountsToFactTable groups the relation by the dims columns and
// materializes the group counts as a single-measure fact table named
// "count" — the common "number of objects per bucket" shape.
func (r *Relation) CountsToFactTable(dims []ColumnSpec) (*olap.FactTable, error) {
	groupBy := make([]Var, len(dims))
	for i, d := range dims {
		groupBy[i] = d.Var
	}
	res, err := r.GroupAggregate(olap.Count, "", groupBy)
	if err != nil {
		return nil, err
	}
	dimCols := make([]olap.DimCol, len(dims))
	for i, d := range dims {
		dimCols[i] = olap.DimCol{Name: string(d.Var), Dimension: d.Dimension, Level: d.Level}
	}
	ft := olap.NewFactTable(olap.FactSchema{Dims: dimCols, Measures: []string{"count"}})
	for _, row := range res.Rows {
		if err := ft.Add(row.Group, []float64{row.Value}); err != nil {
			return nil, err
		}
	}
	return ft, nil
}
