package fo

// Env is an immutable variable binding environment, represented as a
// linked list so that extension is O(1) and environments share
// structure across the search tree.
type Env struct {
	parent *Env
	v      Var
	val    Val
}

// EmptyEnv is the environment with no bindings.
var EmptyEnv *Env

// Bind returns env extended with v = val.
func (e *Env) Bind(v Var, val Val) *Env {
	return &Env{parent: e, v: v, val: val}
}

// Lookup returns the binding of v.
func (e *Env) Lookup(v Var) (Val, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.v == v {
			return cur.val, true
		}
	}
	return Val{}, false
}

// resolve evaluates a term under the environment.
func (e *Env) resolve(t Term) (Val, bool) {
	if !t.IsVar {
		return t.C, true
	}
	return e.Lookup(t.V)
}

// bindOrCheck extends the environment with t = val when t is an
// unbound variable, checks equality when t is bound or constant, and
// reports whether the (possibly extended) environment is consistent.
func (e *Env) bindOrCheck(t Term, val Val) (*Env, bool) {
	if !t.IsVar {
		return e, t.C == val
	}
	if cur, ok := e.Lookup(t.V); ok {
		return e, cur == val
	}
	return e.Bind(t.V, val), true
}
