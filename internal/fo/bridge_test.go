package fo

import (
	"testing"

	"mogis/internal/olap"
	"mogis/internal/timedim"
)

func TestToFactTable(t *testing.T) {
	ctx := testContext(t)
	// Region: all samples with neighborhood and hour labels plus the
	// x coordinate as a measure.
	f := fo(ctx)
	rel, err := Eval(ctx, f, []Var{"o", "t", "nb", "h", "x"})
	if err != nil {
		t.Fatal(err)
	}
	dims := []ColumnSpec{
		{Var: "nb", Level: "neighborhood"},
		{Var: "h", Level: "hour"},
	}
	ft, err := rel.ToFactTable(dims, []Var{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != rel.Len() {
		t.Errorf("fact rows = %d, relation = %d", ft.Len(), rel.Len())
	}
	// Aggregate through the fact table: counts per neighborhood.
	res, err := ft.Gamma(olap.Count, "", []string{"nb"})
	if err != nil {
		t.Fatal(err)
	}
	// Poor: O1 at 9:00 and 10:00 plus O3 at 23:00; Rich: O1 at 11:00
	// plus O2 at 9:00.
	if v, _ := res.Lookup("Poor"); v != 3 {
		t.Errorf("Poor count = %v\n%v", v, res)
	}
	if v, _ := res.Lookup("Rich"); v != 2 {
		t.Errorf("Rich count = %v", v)
	}
	// Error paths.
	if _, err := rel.ToFactTable([]ColumnSpec{{Var: "zzz"}}, nil); err == nil {
		t.Error("unknown dim column accepted")
	}
	if _, err := rel.ToFactTable(dims, []Var{"zzz"}); err == nil {
		t.Error("unknown measure column accepted")
	}
	if _, err := rel.ToFactTable(dims, []Var{"nb"}); err == nil {
		t.Error("non-numeric measure accepted")
	}
}

// fo builds the shared fixture formula: samples joined to
// neighborhoods and hours.
func fo(ctx *Context) Formula {
	return Exists([]Var{"y", "pg"}, And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&PointIn{Layer: "Ln", Kind: "polygon", X: V("x"), Y: V("y"), G: V("pg")},
		&Alpha{Attr: "neighb", A: V("nb"), G: V("pg")},
		&TimeRollup{Cat: timedim.CatHour, T: V("t"), V: V("h")},
	))
}

func TestCountsToFactTable(t *testing.T) {
	ctx := testContext(t)
	rel, err := Eval(ctx, fo(ctx), []Var{"o", "t", "nb", "h"})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := rel.CountsToFactTable([]ColumnSpec{{Var: "nb", Level: "neighborhood"}})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 2 { // Poor and Rich groups
		t.Fatalf("groups = %d", ft.Len())
	}
	res, err := ft.Gamma(olap.Sum, "count", []string{"nb"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Lookup("Poor"); v != 3 {
		t.Errorf("Poor = %v", v)
	}
	if _, err := rel.CountsToFactTable([]ColumnSpec{{Var: "zzz"}}); err == nil {
		t.Error("unknown column accepted")
	}
}
