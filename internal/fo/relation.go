package fo

import (
	"fmt"
	"sort"
	"strings"

	"mogis/internal/olap"
)

// Relation is the finite result of evaluating a range-restricted
// formula: a set of tuples over named columns. It is the
// spatio-temporal structure C of the paper's Section 3.1, e.g.
// {(Oid, t)} for Type-4 queries.
type Relation struct {
	Cols   []Var
	Tuples [][]Val
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Col returns the index of a column.
func (r *Relation) Col(v Var) (int, error) {
	for i, c := range r.Cols {
		if c == v {
			return i, nil
		}
	}
	return 0, fmt.Errorf("fo: relation has no column %q", v)
}

// Eval evaluates formula f against ctx with set semantics, returning
// the relation over the requested output columns (which must be free,
// range-restricted variables of f).
func Eval(ctx *Context, f Formula, out []Var) (*Relation, error) {
	plan := ctx.Tracer().Start("plan")
	bound := varset{}
	nb, ok := f.binds(bound)
	if !ok {
		plan.End()
		return nil, &ErrNotRangeRestricted{Detail: "formula cannot be evaluated bottom-up"}
	}
	for _, v := range out {
		if !nb[v] {
			plan.End()
			return nil, &ErrNotRangeRestricted{Detail: fmt.Sprintf("output variable %q not range-restricted", v)}
		}
	}
	plan.End()
	sp := ctx.Tracer().Start("fo_eval")
	defer sp.End()
	envs, err := f.eval(ctx, []*Env{EmptyEnv}, bound)
	if err != nil {
		return nil, err
	}
	sp.SetCount("envs", int64(len(envs)))
	rel := &Relation{Cols: append([]Var(nil), out...)}
	seen := make(map[string]bool)
	for _, env := range envs {
		tup := make([]Val, len(out))
		for i, v := range out {
			val, ok := env.Lookup(v)
			if !ok {
				return nil, fmt.Errorf("fo: internal: variable %q unbound in result", v)
			}
			tup[i] = val
		}
		key := fingerprintTuple(tup)
		if !seen[key] {
			seen[key] = true
			rel.Tuples = append(rel.Tuples, tup)
		}
	}
	rel.sortTuples()
	sp.SetCount("tuples", int64(rel.Len()))
	return rel, nil
}

func fingerprintTuple(tup []Val) string {
	var sb strings.Builder
	for _, v := range tup {
		sb.WriteString(v.String())
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

func (r *Relation) sortTuples() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return fingerprintTuple(r.Tuples[i]) < fingerprintTuple(r.Tuples[j])
	})
}

// Project returns the relation restricted to cols with set semantics.
func (r *Relation) Project(cols ...Var) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := r.Col(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	out := &Relation{Cols: append([]Var(nil), cols...)}
	seen := make(map[string]bool)
	for _, tup := range r.Tuples {
		nt := make([]Val, len(idx))
		for i, j := range idx {
			nt[i] = tup[j]
		}
		key := fingerprintTuple(nt)
		if !seen[key] {
			seen[key] = true
			out.Tuples = append(out.Tuples, nt)
		}
	}
	out.sortTuples()
	return out, nil
}

// GroupAggregate implements the summable moving-objects query
// semantics Q = γ_{f,A,X}(C) of Section 3.1: group the relation's
// tuples by the groupBy columns and aggregate. For COUNT, measure may
// be empty; otherwise measure names a numeric column.
func (r *Relation) GroupAggregate(fn olap.AggFunc, measure Var, groupBy []Var) (*olap.AggResult, error) {
	gIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		j, err := r.Col(g)
		if err != nil {
			return nil, err
		}
		gIdx[i] = j
	}
	mIdx := -1
	if measure != "" {
		j, err := r.Col(measure)
		if err != nil {
			return nil, err
		}
		mIdx = j
	} else if fn != olap.Count {
		return nil, fmt.Errorf("fo: aggregate %s requires a measure column", fn)
	}

	accs := make(map[string]*olap.Accumulator)
	keys := make(map[string][]olap.Member)
	for _, tup := range r.Tuples {
		key := make([]olap.Member, len(gIdx))
		for i, j := range gIdx {
			key[i] = olap.Member(tup[j].String())
		}
		ks := fingerprintMembers(key)
		acc := accs[ks]
		if acc == nil {
			acc = olap.NewAccumulator(fn)
			accs[ks] = acc
			keys[ks] = key
		}
		if mIdx >= 0 {
			f, ok := tup[mIdx].Real()
			if !ok {
				return nil, fmt.Errorf("fo: non-numeric measure value %v", tup[mIdx])
			}
			acc.Add(f)
		} else {
			acc.AddCount()
		}
	}

	cols := make([]string, len(groupBy))
	for i, g := range groupBy {
		cols[i] = string(g)
	}
	res := &olap.AggResult{GroupCols: cols}
	for ks, acc := range accs {
		v, ok := acc.Result()
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, olap.AggResultRow{Group: keys[ks], Value: v, N: acc.N()})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return fingerprintMembers(res.Rows[i].Group) < fingerprintMembers(res.Rows[j].Group)
	})
	return res, nil
}

func fingerprintMembers(ms []olap.Member) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, "\x1f")
}

// String renders the relation as an aligned table.
func (r *Relation) String() string {
	var sb strings.Builder
	for i, c := range r.Cols {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(string(c))
	}
	sb.WriteByte('\n')
	for _, tup := range r.Tuples {
		for i, v := range tup {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
