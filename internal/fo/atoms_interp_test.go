package fo

import (
	"testing"

	"mogis/internal/layer"
	"mogis/internal/timedim"
)

func TestInterpFactGeneratesBetweenSamples(t *testing.T) {
	ctx := testContext(t)
	// O1 is sampled at 9:00 (2,2), 10:00 (4,4), 11:00 (15,5). At 9:30
	// the interpolated position is (3,3), inside the Poor polygon.
	halfPast := timedim.At(2006, 1, 9, 9, 30)
	f := And(
		&InterpFact{Table: "FM", Times: []timedim.Instant{halfPast},
			O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x"), Y: V("y"), G: V("pg")},
		&Cmp{L: V("pg"), Op: EQ, R: CGeom(1)}, // Poor
	)
	rel, err := Eval(ctx, f, []Var{"o", "x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rel = %v", rel)
	}
	if rel.Tuples[0][0].Obj() != 1 || rel.Tuples[0][1].F != 3 || rel.Tuples[0][2].F != 3 {
		t.Errorf("interpolated tuple = %v", rel.Tuples[0])
	}
}

func TestInterpFactGrid(t *testing.T) {
	ctx := testContext(t)
	// A 15-minute grid over the morning: O1's domain is [9:00, 11:00],
	// so it contributes 9 instants; O2's domain is the single instant
	// 9:00... (O2 has one sample in this fixture at 9:00) → 1; O3's
	// domain starts at 23:00 → 0.
	times := Instants(timedim.At(2006, 1, 9, 9, 0), timedim.At(2006, 1, 9, 11, 0), 15*60)
	if len(times) != 9 {
		t.Fatalf("grid = %d instants", len(times))
	}
	f := &InterpFact{Table: "FM", Times: times, O: V("o"), T: V("t"), X: V("x"), Y: V("y")}
	rel, err := Eval(ctx, f, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, tup := range rel.Tuples {
		counts[int64(tup[0].Obj())]++
	}
	if counts[1] != 9 {
		t.Errorf("O1 instants = %d, want 9", counts[1])
	}
	if counts[2] != 1 {
		t.Errorf("O2 instants = %d, want 1", counts[2])
	}
	if counts[3] != 0 {
		t.Errorf("O3 instants = %d, want 0", counts[3])
	}
}

func TestInterpFactBoundObject(t *testing.T) {
	ctx := testContext(t)
	times := Instants(timedim.At(2006, 1, 9, 9, 0), timedim.At(2006, 1, 9, 11, 0), 3600)
	f := &InterpFact{Table: "FM", Times: times, O: CObj(1), T: V("t"), X: V("x"), Y: V("y")}
	rel, err := Eval(ctx, f, []Var{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("bound-object instants = %d", rel.Len())
	}
	// Unknown object yields empty, not error.
	f2 := &InterpFact{Table: "FM", Times: times, O: CObj(99), T: V("t"), X: V("x"), Y: V("y")}
	rel, err = Eval(ctx, f2, []Var{"t"})
	if err != nil || rel.Len() != 0 {
		t.Errorf("unknown object: %v, %v", rel, err)
	}
}

func TestInterpFactErrors(t *testing.T) {
	ctx := testContext(t)
	f := &InterpFact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")}
	if _, err := Eval(ctx, f, []Var{"o"}); err == nil {
		t.Error("empty Times accepted")
	}
	f2 := &InterpFact{Table: "nope", Times: []timedim.Instant{0}, O: V("o"), T: V("t"), X: V("x"), Y: V("y")}
	if _, err := Eval(ctx, f2, []Var{"o"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestInstantsHelper(t *testing.T) {
	if got := Instants(0, 100, 25); len(got) != 5 {
		t.Errorf("Instants = %v", got)
	}
	if got := Instants(100, 0, 25); got != nil {
		t.Errorf("inverted = %v", got)
	}
	if got := Instants(0, 10, 0); got != nil {
		t.Errorf("zero step = %v", got)
	}
}
