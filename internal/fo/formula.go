package fo

import (
	"fmt"
	"sort"
)

// Formula is a formula of the language L. Formulas are evaluated with
// safe-range semantics: a formula must be range-restricted so that
// its result is a finite relation over its free variables.
type Formula interface {
	// freeVars adds the formula's free variables to set.
	freeVars(set varset)
	// binds returns the variables guaranteed bound after evaluating
	// the formula when the variables in bound are already bound, and
	// ok=false when the formula cannot be evaluated yet (its inputs
	// are not bound).
	binds(bound varset) (varset, bool)
	// eval filters/extends each input environment.
	eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error)
}

// ErrNotRangeRestricted is wrapped by evaluation errors for unsafe
// formulas.
type ErrNotRangeRestricted struct {
	Detail string
}

func (e *ErrNotRangeRestricted) Error() string {
	return "fo: formula not range-restricted: " + e.Detail
}

// FreeVars returns the free variables of f, sorted.
func FreeVars(f Formula) []Var {
	set := varset{}
	f.freeVars(set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// And builds the conjunction of parts.
func And(parts ...Formula) Formula { return &conj{parts: parts} }

// Or builds the disjunction of parts.
func Or(parts ...Formula) Formula { return &disj{parts: parts} }

// Not builds the (safe) negation of f: every free variable of f must
// be bound by the enclosing conjunction.
func Not(f Formula) Formula { return &neg{f: f} }

// Exists quantifies vars existentially in f.
func Exists(vars []Var, f Formula) Formula { return &exists{vars: vars, f: f} }

type conj struct {
	parts []Formula
}

func (c *conj) freeVars(set varset) {
	for _, p := range c.parts {
		p.freeVars(set)
	}
}

// plan orders the parts greedily: at each step pick the first part
// evaluable under the current bound set, preferring pure filters
// (parts that bind nothing new) so generators run as late as
// possible.
func (c *conj) plan(bound varset) ([]Formula, varset, error) {
	remaining := append([]Formula(nil), c.parts...)
	b := bound.clone()
	var order []Formula
	for len(remaining) > 0 {
		pick := -1
		var pickBinds varset
		for i, p := range remaining {
			nb, ok := p.binds(b)
			if !ok {
				continue
			}
			if len(nb) == len(b) { // pure filter: take immediately
				pick, pickBinds = i, nb
				break
			}
			if pick < 0 {
				pick, pickBinds = i, nb
			}
		}
		if pick < 0 {
			return nil, nil, &ErrNotRangeRestricted{
				Detail: fmt.Sprintf("%d conjunct(s) cannot be scheduled", len(remaining)),
			}
		}
		order = append(order, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		b = pickBinds
	}
	return order, b, nil
}

func (c *conj) binds(bound varset) (varset, bool) {
	_, b, err := c.plan(bound)
	if err != nil {
		return nil, false
	}
	return b, true
}

func (c *conj) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	order, _, err := c.plan(bound)
	if err != nil {
		return nil, err
	}
	b := bound.clone()
	for _, p := range order {
		envs, err = p.eval(ctx, envs, b)
		if err != nil {
			return nil, err
		}
		nb, _ := p.binds(b)
		b = nb
		if len(envs) == 0 {
			return envs, nil
		}
	}
	return envs, nil
}

type disj struct {
	parts []Formula
}

func (d *disj) freeVars(set varset) {
	for _, p := range d.parts {
		p.freeVars(set)
	}
}

func (d *disj) binds(bound varset) (varset, bool) {
	if len(d.parts) == 0 {
		return bound, true
	}
	// All disjuncts must be evaluable and bind the same variable set
	// (union semantics needs compatible schemas).
	common, ok := d.parts[0].binds(bound)
	if !ok {
		return nil, false
	}
	for _, p := range d.parts[1:] {
		nb, ok := p.binds(bound)
		if !ok {
			return nil, false
		}
		if len(nb) != len(common) {
			return nil, false
		}
		for v := range nb {
			if !common[v] {
				return nil, false
			}
		}
	}
	return common, true
}

func (d *disj) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	nb, ok := d.binds(bound)
	if !ok {
		return nil, &ErrNotRangeRestricted{Detail: "disjuncts bind incompatible variable sets"}
	}
	// New variables introduced by the disjunction, in stable order.
	var newVars []Var
	for v := range nb {
		if !bound[v] {
			newVars = append(newVars, v)
		}
	}
	sort.Slice(newVars, func(i, j int) bool { return newVars[i] < newVars[j] })

	var out []*Env
	for _, env := range envs {
		seen := make(map[string]bool)
		for _, p := range d.parts {
			sub, err := p.eval(ctx, []*Env{env}, bound)
			if err != nil {
				return nil, err
			}
			for _, e := range sub {
				key := fingerprint(e, newVars)
				if !seen[key] {
					seen[key] = true
					out = append(out, rebase(env, e, newVars))
				}
			}
		}
	}
	return out, nil
}

// fingerprint serializes the bindings of vars in e.
func fingerprint(e *Env, vars []Var) string {
	key := ""
	for _, v := range vars {
		val, _ := e.Lookup(v)
		key += val.String() + "\x1f"
	}
	return key
}

// rebase builds base extended with the bindings of vars taken from e,
// discarding any other bindings e accumulated.
func rebase(base, e *Env, vars []Var) *Env {
	out := base
	for _, v := range vars {
		if val, ok := e.Lookup(v); ok {
			out = out.Bind(v, val)
		}
	}
	return out
}

type neg struct {
	f Formula
}

func (n *neg) freeVars(set varset) { n.f.freeVars(set) }

func (n *neg) binds(bound varset) (varset, bool) {
	// Safe negation: every free variable of the negated formula must
	// already be bound (otherwise ¬ would see generator bindings that
	// belong to the inner scope), and the inner formula must be
	// evaluable. The negation itself binds nothing.
	free := varset{}
	n.f.freeVars(free)
	for v := range free {
		if !bound[v] {
			return nil, false
		}
	}
	if _, ok := n.f.binds(bound); !ok {
		return nil, false
	}
	return bound, true
}

func (n *neg) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		sub, err := n.f.eval(ctx, []*Env{env}, bound)
		if err != nil {
			return nil, err
		}
		if len(sub) == 0 {
			out = append(out, env)
		}
	}
	return out, nil
}

type exists struct {
	vars []Var
	f    Formula
}

func (x *exists) freeVars(set varset) {
	inner := varset{}
	x.f.freeVars(inner)
	for _, v := range x.vars {
		delete(inner, v)
	}
	set.addAll(inner)
}

func (x *exists) binds(bound varset) (varset, bool) {
	nb, ok := x.f.binds(bound)
	if !ok {
		return nil, false
	}
	out := nb.clone()
	for _, v := range x.vars {
		if !bound[v] {
			delete(out, v)
		}
	}
	return out, true
}

func (x *exists) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	nb, ok := x.binds(bound)
	if !ok {
		return nil, &ErrNotRangeRestricted{Detail: "existential body cannot be evaluated"}
	}
	var keepVars []Var
	for v := range nb {
		if !bound[v] {
			keepVars = append(keepVars, v)
		}
	}
	sort.Slice(keepVars, func(i, j int) bool { return keepVars[i] < keepVars[j] })

	var out []*Env
	for _, env := range envs {
		sub, err := x.f.eval(ctx, []*Env{env}, bound)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool)
		for _, e := range sub {
			key := fingerprint(e, keepVars)
			if !seen[key] {
				seen[key] = true
				out = append(out, rebase(env, e, keepVars))
			}
		}
	}
	return out, nil
}

// TrueFormula is the neutral conjunction (always satisfied, binds
// nothing).
func TrueFormula() Formula { return &conj{} }
