package fo

import (
	"fmt"

	"mogis/internal/gis"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/traj"
)

// ConceptBinding links an application concept (e.g. "neighb") to a
// level of an application-part OLAP dimension, so formulas can
// enumerate its members (n ∈ neighb) and read their attributes
// (n.income).
type ConceptBinding struct {
	Dim   *olap.Dimension
	Level olap.Level
}

// Context is the model instance formulas evaluate against: the MOFTs,
// the GIS dimension (layers, α, geometric rollups), and the concept
// bindings for application attributes.
type Context struct {
	tables   map[string]*moft.Table
	gisDim   *gis.Dimension
	concepts map[string]ConceptBinding
	// lits caches per-table interpolated trajectories for InterpFact.
	lits map[string]map[moft.Oid]*traj.LIT
	// tracer, when non-nil, receives one span per evaluation stage of
	// queries run against this context (attach per query).
	tracer *obs.Tracer
}

// NewContext creates a context over a GIS dimension instance.
func NewContext(g *gis.Dimension) *Context {
	return &Context{
		tables:   make(map[string]*moft.Table),
		gisDim:   g,
		concepts: make(map[string]ConceptBinding),
	}
}

// AddTable registers a moving-object fact table under its name.
// Re-registering a name drops the cached trajectories for it.
func (c *Context) AddTable(t *moft.Table) *Context {
	c.tables[t.Name()] = t
	delete(c.lits, t.Name())
	return c
}

// Table resolves a registered MOFT.
func (c *Context) Table(name string) (*moft.Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("fo: unknown fact table %q", name)
	}
	return t, nil
}

// GIS returns the GIS dimension instance.
func (c *Context) GIS() *gis.Dimension { return c.gisDim }

// SetTracer attaches a query trace to the context (nil detaches).
// Evaluation stages — formula planning, FO evaluation, trajectory
// interpolation, aggregation — record spans on it. Attachment is not
// synchronized: attach one tracer per query from the evaluating
// goroutine.
func (c *Context) SetTracer(t *obs.Tracer) *Context {
	c.tracer = t
	return c
}

// Tracer returns the attached query trace (nil when tracing is off;
// nil tracers produce no-op spans).
func (c *Context) Tracer() *obs.Tracer { return c.tracer }

// BindConcept registers a concept name.
func (c *Context) BindConcept(name string, dim *olap.Dimension, level olap.Level) *Context {
	c.concepts[name] = ConceptBinding{Dim: dim, Level: level}
	return c
}

// Concept resolves a concept binding.
func (c *Context) Concept(name string) (ConceptBinding, error) {
	b, ok := c.concepts[name]
	if !ok {
		return ConceptBinding{}, fmt.Errorf("fo: unknown concept %q", name)
	}
	return b, nil
}
