package fo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/gis"
	"mogis/internal/moft"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/traj"
)

// ConceptBinding links an application concept (e.g. "neighb") to a
// level of an application-part OLAP dimension, so formulas can
// enumerate its members (n ∈ neighb) and read their attributes
// (n.income).
type ConceptBinding struct {
	Dim   *olap.Dimension
	Level olap.Level
}

// Context is the model instance formulas evaluate against: the MOFTs,
// the GIS dimension (layers, α, geometric rollups), and the concept
// bindings for application attributes.
type Context struct {
	// tmu guards tables (and the lits entries AddTable drops): shard
	// coordinators repartition tables while queries resolve them.
	tmu      sync.RWMutex
	tables   map[string]*moft.Table
	gisDim   *gis.Dimension
	concepts map[string]ConceptBinding
	// lits caches per-table interpolated trajectories for InterpFact.
	lits map[string]map[moft.Oid]*traj.LIT
	// tracer, when non-nil, receives one span per evaluation stage of
	// queries run against this context. Atomic: concurrent servers
	// attach/detach sampled tracers while other queries evaluate.
	tracer atomic.Pointer[obs.Tracer]
}

// NewContext creates a context over a GIS dimension instance.
func NewContext(g *gis.Dimension) *Context {
	return &Context{
		tables:   make(map[string]*moft.Table),
		gisDim:   g,
		concepts: make(map[string]ConceptBinding),
	}
}

// AddTable registers a moving-object fact table under its name.
// Re-registering a name drops the cached trajectories for it.
func (c *Context) AddTable(t *moft.Table) *Context {
	c.tmu.Lock()
	c.tables[t.Name()] = t
	delete(c.lits, t.Name())
	c.tmu.Unlock()
	return c
}

// Table resolves a registered MOFT.
func (c *Context) Table(name string) (*moft.Table, error) {
	c.tmu.RLock()
	t, ok := c.tables[name]
	c.tmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fo: unknown fact table %q", name)
	}
	return t, nil
}

// TableNames lists the registered MOFT names in sorted order.
func (c *Context) TableNames() []string {
	c.tmu.RLock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	c.tmu.RUnlock()
	sort.Strings(names)
	return names
}

// Derive creates an empty sibling context sharing the GIS dimension
// and concept bindings but owning its own (initially empty) table map.
// Shard engines evaluate against derived contexts holding only their
// partition of each MOFT.
func (c *Context) Derive() *Context {
	d := &Context{
		tables:   make(map[string]*moft.Table),
		gisDim:   c.gisDim,
		concepts: make(map[string]ConceptBinding),
	}
	for name, b := range c.concepts {
		d.concepts[name] = b
	}
	return d
}

// GIS returns the GIS dimension instance.
func (c *Context) GIS() *gis.Dimension { return c.gisDim }

// SetTracer attaches a query trace to the context (nil detaches).
// Evaluation stages — formula planning, FO evaluation, trajectory
// interpolation, aggregation — record spans on it. The context holds
// one tracer at a time; concurrent pipelines should claim it with
// CompareAndSwapTracer instead of clobbering an in-flight trace.
func (c *Context) SetTracer(t *obs.Tracer) *Context {
	c.tracer.Store(t)
	return c
}

// CompareAndSwapTracer attaches next only if old is still the current
// tracer, and reports whether it did. Samplers pass (nil, tr) to claim
// an idle context and (tr, nil) to release it, so two concurrent
// sampled queries cannot tear each other's traces.
func (c *Context) CompareAndSwapTracer(old, next *obs.Tracer) bool {
	return c.tracer.CompareAndSwap(old, next)
}

// Tracer returns the attached query trace (nil when tracing is off;
// nil tracers produce no-op spans).
func (c *Context) Tracer() *obs.Tracer { return c.tracer.Load() }

// BindConcept registers a concept name.
func (c *Context) BindConcept(name string, dim *olap.Dimension, level olap.Level) *Context {
	c.concepts[name] = ConceptBinding{Dim: dim, Level: level}
	return c
}

// Concept resolves a concept binding.
func (c *Context) Concept(name string) (ConceptBinding, error) {
	b, ok := c.concepts[name]
	if !ok {
		return ConceptBinding{}, fmt.Errorf("fo: unknown concept %q", name)
	}
	return b, nil
}
