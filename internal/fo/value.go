// Package fo implements the multi-sorted first-order constraint
// language L of the paper (Definition 4 and Section 3.1): formulas
// over the sorts object-id, time instant, real coordinate, geometry
// id and string, with the atoms the paper's queries use — MOFT
// membership FM(Oid,t,x,y), geometric rollup relations
// r^{Pt,G}_L(x,y,g), attribute functions α^{A,G}_L(a)=g, time rollups
// R^j_timeId(t)=v, member attributes (n.income), arithmetic
// comparisons and distance constraints — closed under ∧, ∨, ¬ and ∃.
// Formulas are evaluated with safe-range (range-restricted)
// semantics into finite relations, over which any aggregation of
// Definition 7 can then be computed; this is exactly how the paper
// expresses its spatio-temporal region C.
package fo

import (
	"fmt"

	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/timedim"
)

// Sort enumerates the sorts of the multi-sorted logic.
type Sort int

// The sorts of L.
const (
	SortObject Sort = iota // moving-object identifiers
	SortTime               // time instants (timeId members)
	SortReal               // real coordinates and measures
	SortGeom               // geometry identifiers
	SortString             // application-part members and category values
)

func (s Sort) String() string {
	switch s {
	case SortObject:
		return "object"
	case SortTime:
		return "time"
	case SortReal:
		return "real"
	case SortGeom:
		return "geometry"
	case SortString:
		return "string"
	default:
		return "unknown"
	}
}

// Val is a value of some sort. Vals are comparable and hence usable
// as map keys.
type Val struct {
	Sort Sort
	I    int64   // object, time, geometry payload
	F    float64 // real payload
	S    string  // string payload
}

// Constructors for each sort.

// VObj wraps a moving-object id.
func VObj(o moft.Oid) Val { return Val{Sort: SortObject, I: int64(o)} }

// VTime wraps a time instant.
func VTime(t timedim.Instant) Val { return Val{Sort: SortTime, I: int64(t)} }

// VReal wraps a real number.
func VReal(f float64) Val { return Val{Sort: SortReal, F: f} }

// VGeom wraps a geometry id.
func VGeom(g layer.Gid) Val { return Val{Sort: SortGeom, I: int64(g)} }

// VStr wraps a string.
func VStr(s string) Val { return Val{Sort: SortString, S: s} }

// Obj extracts an object id (panics on sort mismatch; formulas are
// sort-checked before evaluation touches payloads).
func (v Val) Obj() moft.Oid { return moft.Oid(v.I) }

// Time extracts a time instant.
func (v Val) Time() timedim.Instant { return timedim.Instant(v.I) }

// Real extracts a real number; integral sorts coerce to their numeric
// value so comparisons like t1 < t2 work uniformly.
func (v Val) Real() (float64, bool) {
	switch v.Sort {
	case SortReal:
		return v.F, true
	case SortTime, SortObject, SortGeom:
		return float64(v.I), true
	default:
		return 0, false
	}
}

// Geom extracts a geometry id.
func (v Val) Geom() layer.Gid { return layer.Gid(v.I) }

// Str extracts a string.
func (v Val) Str() (string, bool) { return v.S, v.Sort == SortString }

// String renders the value for display.
func (v Val) String() string {
	switch v.Sort {
	case SortObject:
		return fmt.Sprintf("O%d", v.I)
	case SortTime:
		return fmt.Sprintf("t%d", v.I)
	case SortReal:
		return fmt.Sprintf("%g", v.F)
	case SortGeom:
		return fmt.Sprintf("g%d", v.I)
	default:
		return v.S
	}
}

// Var is a variable name.
type Var string

// Term is a variable or a constant.
type Term struct {
	IsVar bool
	V     Var
	C     Val
}

// V makes a variable term.
func V(name Var) Term { return Term{IsVar: true, V: name} }

// C makes a constant term.
func C(v Val) Term { return Term{C: v} }

// CReal, CStr, CTime, CObj and CGeom are constant-term shorthands.

// CReal makes a real constant term.
func CReal(f float64) Term { return C(VReal(f)) }

// CStr makes a string constant term.
func CStr(s string) Term { return C(VStr(s)) }

// CTime makes a time constant term.
func CTime(t timedim.Instant) Term { return C(VTime(t)) }

// CObj makes an object constant term.
func CObj(o moft.Oid) Term { return C(VObj(o)) }

// CGeom makes a geometry constant term.
func CGeom(g layer.Gid) Term { return C(VGeom(g)) }

// varset is a set of variables.
type varset map[Var]bool

func (s varset) clone() varset {
	out := make(varset, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func (s varset) addAll(o varset) {
	for v := range o {
		s[v] = true
	}
}
