package fo

import (
	"fmt"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/obs"
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// termVars adds the variables among terms to set.
func termVars(set varset, terms ...Term) {
	for _, t := range terms {
		if t.IsVar {
			set[t.V] = true
		}
	}
}

// termsBound reports whether every term is a constant or bound.
func termsBound(bound varset, terms ...Term) bool {
	for _, t := range terms {
		if t.IsVar && !bound[t.V] {
			return false
		}
	}
	return true
}

// bindTerms adds all variable terms to the set (they become bound).
func bindTerms(bound varset, terms ...Term) varset {
	out := bound.clone()
	for _, t := range terms {
		if t.IsVar {
			out[t.V] = true
		}
	}
	return out
}

// Fact is the MOFT membership atom FM(Oid, t, x, y): a generator over
// the tuples of the named fact table. Bound terms act as selections.
type Fact struct {
	Table      string
	O, T, X, Y Term
}

func (a *Fact) freeVars(set varset) { termVars(set, a.O, a.T, a.X, a.Y) }

func (a *Fact) binds(bound varset) (varset, bool) {
	return bindTerms(bound, a.O, a.T, a.X, a.Y), true
}

func (a *Fact) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	tbl, err := ctx.Table(a.Table)
	if err != nil {
		return nil, err
	}
	var out []*Env
	for _, env := range envs {
		// Selection push-down: a bound object narrows the scan.
		if ov, ok := env.resolve(a.O); ok {
			for _, tp := range tbl.ObjectTuples(ov.Obj()) {
				if e, ok := matchFact(env, a, VObj(tp.Oid), VTime(tp.T), VReal(tp.X), VReal(tp.Y)); ok {
					out = append(out, e)
				}
			}
			continue
		}
		for _, tp := range tbl.Tuples() {
			if e, ok := matchFact(env, a, VObj(tp.Oid), VTime(tp.T), VReal(tp.X), VReal(tp.Y)); ok {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

func matchFact(env *Env, a *Fact, o, t, x, y Val) (*Env, bool) {
	e, ok := env.bindOrCheck(a.O, o)
	if !ok {
		return nil, false
	}
	if e, ok = e.bindOrCheck(a.T, t); !ok {
		return nil, false
	}
	if e, ok = e.bindOrCheck(a.X, x); !ok {
		return nil, false
	}
	if e, ok = e.bindOrCheck(a.Y, y); !ok {
		return nil, false
	}
	return e, true
}

// PointIn is the geometric rollup atom r^{Pt,Kind}_L(x, y, g): point
// (x, y) belongs to geometry g of the given kind in the given layer.
// Directions supported: (x, y) bound → generate or check g; g bound
// with (x, y) unbound → generate the point only for node geometries
// (other kinds have infinitely many points).
type PointIn struct {
	Layer   string
	Kind    layer.Kind
	X, Y, G Term
}

func (a *PointIn) freeVars(set varset) { termVars(set, a.X, a.Y, a.G) }

func (a *PointIn) binds(bound varset) (varset, bool) {
	if termsBound(bound, a.X, a.Y) {
		return bindTerms(bound, a.G), true
	}
	if a.Kind == layer.KindNode && termsBound(bound, a.G) {
		return bindTerms(bound, a.X, a.Y), true
	}
	return nil, false
}

func (a *PointIn) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		xv, xok := env.resolve(a.X)
		yv, yok := env.resolve(a.Y)
		switch {
		case xok && yok:
			x, ok1 := xv.Real()
			y, ok2 := yv.Real()
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("fo: r^{Pt,%s}_%s: non-numeric coordinates", a.Kind, a.Layer)
			}
			for _, gid := range ctx.GIS().PointRollup(a.Layer, a.Kind, geom.Pt(x, y)) {
				if e, ok := env.bindOrCheck(a.G, VGeom(gid)); ok {
					out = append(out, e)
				}
			}
		default:
			gv, gok := env.resolve(a.G)
			if !gok || a.Kind != layer.KindNode {
				return nil, &ErrNotRangeRestricted{Detail: fmt.Sprintf("r^{Pt,%s}_%s with unbound point", a.Kind, a.Layer)}
			}
			l, ok := ctx.GIS().Layer(a.Layer)
			if !ok {
				return nil, fmt.Errorf("fo: unknown layer %q", a.Layer)
			}
			p, ok := l.Node(gv.Geom())
			if !ok {
				continue
			}
			e, ok := env.bindOrCheck(a.X, VReal(p.X))
			if !ok {
				continue
			}
			if e, ok = e.bindOrCheck(a.Y, VReal(p.Y)); ok {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// Alpha is the attribute-function atom α^{A,G}_L(a) = g. When the
// concept term is bound it resolves the geometry; when the geometry
// is bound it inverts α; when neither is bound it enumerates the
// binding pairs.
type Alpha struct {
	Attr string
	A    Term // concept member (string sort)
	G    Term // geometry id
}

func (a *Alpha) freeVars(set varset) { termVars(set, a.A, a.G) }

func (a *Alpha) binds(bound varset) (varset, bool) {
	return bindTerms(bound, a.A, a.G), true
}

func (a *Alpha) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	b, ok := ctx.GIS().Schema().Attr(a.Attr)
	if !ok {
		return nil, fmt.Errorf("fo: unknown attribute binding %q", a.Attr)
	}
	l, ok := ctx.GIS().Layer(b.LayerName)
	if !ok {
		return nil, fmt.Errorf("fo: layer %q for attribute %q not attached", b.LayerName, a.Attr)
	}
	var out []*Env
	for _, env := range envs {
		if av, ok := env.resolve(a.A); ok {
			member, sok := av.Str()
			if !sok {
				return nil, fmt.Errorf("fo: α_%s applied to non-string", a.Attr)
			}
			_, gid, found := l.Alpha(a.Attr, member)
			if !found {
				continue
			}
			if e, ok := env.bindOrCheck(a.G, VGeom(gid)); ok {
				out = append(out, e)
			}
			continue
		}
		if gv, ok := env.resolve(a.G); ok {
			member, found := l.AlphaInverse(a.Attr, gv.Geom())
			if !found {
				continue
			}
			if e, ok := env.bindOrCheck(a.A, VStr(member)); ok {
				out = append(out, e)
			}
			continue
		}
		for _, member := range l.AlphaMembers(a.Attr) {
			_, gid, _ := l.Alpha(a.Attr, member)
			e, ok := env.bindOrCheck(a.A, VStr(member))
			if !ok {
				continue
			}
			if e, ok = e.bindOrCheck(a.G, VGeom(gid)); ok {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// TimeRollup is the time-dimension rollup atom R^cat_timeId(t) = v.
// It requires t bound and generates or checks v.
type TimeRollup struct {
	Cat timedim.Category
	T   Term
	V   Term
}

func (a *TimeRollup) freeVars(set varset) { termVars(set, a.T, a.V) }

func (a *TimeRollup) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.T) {
		return nil, false
	}
	return bindTerms(bound, a.V), true
}

func (a *TimeRollup) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		tv, ok := env.resolve(a.T)
		if !ok {
			return nil, &ErrNotRangeRestricted{Detail: fmt.Sprintf("R^%s_timeId with unbound instant", a.Cat)}
		}
		if tv.Sort != SortTime {
			return nil, fmt.Errorf("fo: R^%s_timeId applied to non-instant", a.Cat)
		}
		member, ok := timedim.Rollup(a.Cat, tv.Time())
		if !ok {
			return nil, fmt.Errorf("fo: unknown time category %q", a.Cat)
		}
		if e, ok := env.bindOrCheck(a.V, VStr(member)); ok {
			out = append(out, e)
		}
	}
	return out, nil
}

// MemberOf is the domain atom "n ∈ concept": it enumerates the
// members of a bound application concept (e.g. n ∈ neighb in the
// paper's motivating query).
type MemberOf struct {
	Concept string
	M       Term
}

func (a *MemberOf) freeVars(set varset) { termVars(set, a.M) }

func (a *MemberOf) binds(bound varset) (varset, bool) {
	return bindTerms(bound, a.M), true
}

func (a *MemberOf) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	cb, err := ctx.Concept(a.Concept)
	if err != nil {
		return nil, err
	}
	members := cb.Dim.Members(cb.Level)
	var out []*Env
	for _, env := range envs {
		if mv, ok := env.resolve(a.M); ok {
			s, sok := mv.Str()
			if sok && cb.Dim.HasMember(cb.Level, olap.Member(s)) {
				out = append(out, env)
			}
			continue
		}
		for _, m := range members {
			out = append(out, env.Bind(a.M.V, VStr(string(m))))
		}
	}
	return out, nil
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators of the language (<, ≤, =, ≠, ≥, >).
const (
	LT CmpOp = iota
	LE
	EQ
	NE
	GE
	GT
)

func (o CmpOp) String() string {
	return [...]string{"<", "<=", "=", "!=", ">=", ">"}[o]
}

func (o CmpOp) holds(cmp int) bool {
	switch o {
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case GE:
		return cmp >= 0
	default:
		return cmp > 0
	}
}

// Cmp is the comparison atom l op r. Both terms must be bound; values
// compare numerically when both have numeric sorts, as strings when
// both are strings.
type Cmp struct {
	L  Term
	Op CmpOp
	R  Term
}

func (a *Cmp) freeVars(set varset) { termVars(set, a.L, a.R) }

func (a *Cmp) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.L, a.R) {
		return nil, false
	}
	return bound, true
}

func (a *Cmp) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		lv, lok := env.resolve(a.L)
		rv, rok := env.resolve(a.R)
		if !lok || !rok {
			return nil, &ErrNotRangeRestricted{Detail: "comparison over unbound terms"}
		}
		cmp, ok := compareVals(lv, rv)
		if !ok {
			return nil, fmt.Errorf("fo: incomparable values %v %s %v", lv, a.Op, rv)
		}
		if a.Op.holds(cmp) {
			out = append(out, env)
		}
	}
	return out, nil
}

func compareVals(l, r Val) (int, bool) {
	if lf, ok := l.Real(); ok {
		rf, ok2 := r.Real()
		if !ok2 {
			return 0, false
		}
		switch {
		case lf < rf:
			return -1, true
		case lf > rf:
			return 1, true
		default:
			return 0, true
		}
	}
	ls, _ := l.Str()
	rs, ok := r.Str()
	if !ok {
		return 0, false
	}
	switch {
	case ls < rs:
		return -1, true
	case ls > rs:
		return 1, true
	default:
		return 0, true
	}
}

// AttrCmp is the member-attribute comparison atom, e.g.
// n.income < 1500: the concept member bound to M has its attribute
// compared against the value of Rhs. Members lacking the attribute
// fail the atom.
type AttrCmp struct {
	Concept string
	M       Term
	Attr    string
	Op      CmpOp
	Rhs     Term
}

func (a *AttrCmp) freeVars(set varset) { termVars(set, a.M, a.Rhs) }

func (a *AttrCmp) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.M, a.Rhs) {
		return nil, false
	}
	return bound, true
}

func (a *AttrCmp) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	cb, err := ctx.Concept(a.Concept)
	if err != nil {
		return nil, err
	}
	var out []*Env
	for _, env := range envs {
		mv, ok := env.resolve(a.M)
		if !ok {
			return nil, &ErrNotRangeRestricted{Detail: "attribute of unbound member"}
		}
		member, sok := mv.Str()
		if !sok {
			return nil, fmt.Errorf("fo: attribute access on non-member value %v", mv)
		}
		attr, ok := cb.Dim.Attr(cb.Level, olap.Member(member), a.Attr)
		if !ok {
			continue
		}
		rv, ok := env.resolve(a.Rhs)
		if !ok {
			return nil, &ErrNotRangeRestricted{Detail: "attribute comparison with unbound rhs"}
		}
		var av Val
		if n, isNum := attr.Num(); isNum {
			av = VReal(n)
		} else if s, isStr := attr.Str(); isStr {
			av = VStr(s)
		} else {
			continue
		}
		cmp, ok := compareVals(av, rv)
		if !ok {
			return nil, fmt.Errorf("fo: incomparable attribute %s.%s", member, a.Attr)
		}
		if a.Op.holds(cmp) {
			out = append(out, env)
		}
	}
	return out, nil
}

// DistLE is the distance constraint (x1-x2)² + (y1-y2)² ≤ r², the
// form used in queries Q6 and Q7. All coordinate terms must be
// bound.
type DistLE struct {
	X1, Y1, X2, Y2 Term
	R              float64
}

func (a *DistLE) freeVars(set varset) { termVars(set, a.X1, a.Y1, a.X2, a.Y2) }

func (a *DistLE) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.X1, a.Y1, a.X2, a.Y2) {
		return nil, false
	}
	return bound, true
}

func (a *DistLE) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	obs.Std.GeomDistance.Add(int64(len(envs)))
	var out []*Env
	for _, env := range envs {
		vals := make([]float64, 4)
		for i, t := range []Term{a.X1, a.Y1, a.X2, a.Y2} {
			v, ok := env.resolve(t)
			if !ok {
				return nil, &ErrNotRangeRestricted{Detail: "distance over unbound terms"}
			}
			f, ok := v.Real()
			if !ok {
				return nil, fmt.Errorf("fo: non-numeric distance operand %v", v)
			}
			vals[i] = f
		}
		dx, dy := vals[0]-vals[2], vals[1]-vals[3]
		if dx*dx+dy*dy <= a.R*a.R {
			out = append(out, env)
		}
	}
	return out, nil
}

// GeomIn is the domain atom "g ∈ ids": it restricts or generates a
// geometry variable over an explicit finite id set, the bridge from a
// Piet-QL geometric sub-query result into the moving-objects part
// (Section 5).
type GeomIn struct {
	G   Term
	IDs []layer.Gid
}

func (a *GeomIn) freeVars(set varset) { termVars(set, a.G) }

func (a *GeomIn) binds(bound varset) (varset, bool) {
	return bindTerms(bound, a.G), true
}

func (a *GeomIn) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		if gv, ok := env.resolve(a.G); ok {
			for _, id := range a.IDs {
				if VGeom(id) == gv {
					out = append(out, env)
					break
				}
			}
			continue
		}
		for _, id := range a.IDs {
			out = append(out, env.Bind(a.G.V, VGeom(id)))
		}
	}
	return out, nil
}
