package fo

import (
	"errors"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// testContext builds a miniature version of the paper's running
// example: layer Ln with two neighborhoods (polygons), one low-income
// and one high-income, a school layer Ls with one node, an
// application dimension with income attributes, and a bus MOFT.
func testContext(t *testing.T) *Context {
	t.Helper()

	hn := gis.NewHierarchy("Ln").
		AddEdge(layer.KindPoint, layer.KindPolygon).
		AddEdge(layer.KindPolygon, layer.KindAll)
	hs := gis.NewHierarchy("Ls").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll)
	schema := gis.NewSchema().
		AddHierarchy(hn).AddHierarchy(hs).
		BindAttr("neighb", layer.KindPolygon, "Ln").
		BindAttr("school", layer.KindNode, "Ls").
		AddAppSchema(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))

	ln := layer.New("Ln")
	// Poor: [0,10]², Rich: [10,20]×[0,10].
	ln.AddPolygon(1, geom.Polygon{Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}})
	ln.AddPolygon(2, geom.Polygon{Shell: geom.Ring{geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(20, 10), geom.Pt(10, 10)}})
	ln.SetAlpha("neighb", layer.KindPolygon, "Poor", 1)
	ln.SetAlpha("neighb", layer.KindPolygon, "Rich", 2)

	ls := layer.New("Ls")
	ls.AddNode(7, geom.Pt(5, 5))
	ls.SetAlpha("school", layer.KindNode, "Central", 7)

	appDim := olap.NewDimension(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	appDim.SetRollup("neighborhood", "Poor", "city", "Antwerp")
	appDim.SetRollup("neighborhood", "Rich", "city", "Antwerp")
	appDim.SetAttr("neighborhood", "Poor", "income", olap.Num(1200))
	appDim.SetAttr("neighborhood", "Rich", "income", olap.Num(2400))

	d := gis.NewDimension(schema)
	d.MustAddLayer(ln)
	d.MustAddLayer(ls)
	d.MustAddAppDimension(appDim)

	fm := moft.New("FM")
	morning := timedim.At(2006, 1, 9, 9, 0) // Monday 09:00
	// O1 sampled twice in Poor, once in Rich; O2 once in Rich; O3 at
	// night in Poor.
	fm.Add(1, morning, 2, 2)
	fm.Add(1, morning+3600, 4, 4)
	fm.Add(1, morning+7200, 15, 5)
	fm.Add(2, morning, 12, 3)
	fm.Add(3, timedim.At(2006, 1, 9, 23, 0), 3, 3)

	ctx := NewContext(d)
	ctx.AddTable(fm)
	ctx.BindConcept("neighb", appDim, "neighborhood")
	return ctx
}

// motivating is the paper's Section 3.1 region C:
// {(Oid,t) | ∃x∃y∃pg∃n. n∈neighb ∧ R^timeOfDay(t)=Morning ∧
// FM(Oid,t,x,y) ∧ r^{Pt,Pg}_Ln(x,y,pg) ∧ α^{neighb}(n)=pg ∧
// n.income<1500}.
func motivating() Formula {
	return Exists([]Var{"x", "y", "pg", "n"}, And(
		&MemberOf{Concept: "neighb", M: V("n")},
		&TimeRollup{Cat: timedim.CatTimeOfDay, T: V("t"), V: CStr(timedim.Morning)},
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x"), Y: V("y"), G: V("pg")},
		&Alpha{Attr: "neighb", A: V("n"), G: V("pg")},
		&AttrCmp{Concept: "neighb", M: V("n"), Attr: "income", Op: LT, Rhs: CReal(1500)},
	))
}

func TestMotivatingQueryRegionC(t *testing.T) {
	ctx := testContext(t)
	rel, err := Eval(ctx, motivating(), []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	// O1 is in Poor at 9:00 and 10:00 (morning); its 11:00 sample is
	// in Rich. O2 is in Rich. O3 is in Poor but at night.
	if rel.Len() != 2 {
		t.Fatalf("C = %v", rel)
	}
	for _, tup := range rel.Tuples {
		if tup[0].Obj() != 1 {
			t.Errorf("unexpected object %v", tup[0])
		}
	}
}

func TestFreeVars(t *testing.T) {
	f := motivating()
	got := FreeVars(f)
	if len(got) != 2 || got[0] != "o" || got[1] != "t" {
		t.Errorf("FreeVars = %v", got)
	}
}

func TestEvalOutputNotRestricted(t *testing.T) {
	ctx := testContext(t)
	_, err := Eval(ctx, motivating(), []Var{"o", "zzz"})
	var rr *ErrNotRangeRestricted
	if !errors.As(err, &rr) {
		t.Errorf("err = %v", err)
	}
}

func TestFactSelectionPushdown(t *testing.T) {
	ctx := testContext(t)
	f := &Fact{Table: "FM", O: CObj(1), T: V("t"), X: V("x"), Y: V("y")}
	rel, err := Eval(ctx, f, []Var{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("O1 samples = %d", rel.Len())
	}
}

func TestFactUnknownTable(t *testing.T) {
	ctx := testContext(t)
	f := &Fact{Table: "nope", O: V("o"), T: V("t"), X: V("x"), Y: V("y")}
	if _, err := Eval(ctx, f, []Var{"o"}); err == nil {
		t.Error("expected unknown-table error")
	}
}

func TestPointInDirections(t *testing.T) {
	ctx := testContext(t)
	// Forward: bound point generates polygon id.
	f := And(
		&Fact{Table: "FM", O: CObj(2), T: V("t"), X: V("x"), Y: V("y")},
		&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x"), Y: V("y"), G: V("pg")},
	)
	rel, err := Eval(ctx, f, []Var{"pg"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Geom() != 2 {
		t.Errorf("forward = %v", rel)
	}
	// Inverse for nodes: bound node id generates its coordinates.
	g := And(
		&Alpha{Attr: "school", A: CStr("Central"), G: V("sc")},
		&PointIn{Layer: "Ls", Kind: layer.KindNode, X: V("x"), Y: V("y"), G: V("sc")},
	)
	rel, err = Eval(ctx, g, []Var{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].F != 5 || rel.Tuples[0][1].F != 5 {
		t.Errorf("node inverse = %v", rel)
	}
	// Inverse for polygons is not range-restricted.
	h := And(
		&Alpha{Attr: "neighb", A: CStr("Poor"), G: V("pg")},
		&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x"), Y: V("y"), G: V("pg")},
	)
	if _, err := Eval(ctx, h, []Var{"x"}); err == nil {
		t.Error("expected range-restriction error for polygon inverse")
	}
}

func TestAlphaDirections(t *testing.T) {
	ctx := testContext(t)
	// Enumerate all pairs.
	rel, err := Eval(ctx, &Alpha{Attr: "neighb", A: V("n"), G: V("g")}, []Var{"n", "g"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("alpha enumeration = %v", rel)
	}
	// Inverse: geometry bound.
	rel, err = Eval(ctx, And(
		&GeomIn{G: V("g"), IDs: []layer.Gid{2}},
		&Alpha{Attr: "neighb", A: V("n"), G: V("g")},
	), []Var{"n"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("alpha inverse = %v", rel)
	}
	if s, _ := rel.Tuples[0][0].Str(); s != "Rich" {
		t.Errorf("alpha inverse = %v", rel)
	}
	// Unknown member yields empty, not error.
	rel, err = Eval(ctx, &Alpha{Attr: "neighb", A: CStr("Ghost"), G: V("g")}, []Var{"g"})
	if err != nil || rel.Len() != 0 {
		t.Errorf("unknown member = %v, %v", rel, err)
	}
	// Unknown attribute errors.
	if _, err := Eval(ctx, &Alpha{Attr: "nope", A: V("n"), G: V("g")}, []Var{"g"}); err == nil {
		t.Error("expected unknown-attribute error")
	}
}

func TestTimeRollupAtom(t *testing.T) {
	ctx := testContext(t)
	f := And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&TimeRollup{Cat: timedim.CatDayOfWeek, T: V("t"), V: V("d")},
	)
	rel, err := Eval(ctx, f, []Var{"d"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("days = %v", rel)
	}
	if s, _ := rel.Tuples[0][0].Str(); s != "Monday" {
		t.Errorf("day = %v", rel)
	}
	// Unknown category errors at evaluation.
	bad := And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&TimeRollup{Cat: "bogus", T: V("t"), V: V("v")},
	)
	if _, err := Eval(ctx, bad, []Var{"v"}); err == nil {
		t.Error("expected unknown-category error")
	}
}

func TestCmpAtom(t *testing.T) {
	ctx := testContext(t)
	nine := timedim.At(2006, 1, 9, 9, 30)
	f := And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&Cmp{L: V("t"), Op: LT, R: CTime(nine)},
	)
	rel, err := Eval(ctx, f, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Samples before 9:30: O1@9:00 and O2@9:00.
	if rel.Len() != 2 {
		t.Errorf("before 9:30 = %v", rel)
	}
	// String comparison.
	g := And(
		&MemberOf{Concept: "neighb", M: V("n")},
		&Cmp{L: V("n"), Op: EQ, R: CStr("Poor")},
	)
	rel, err = Eval(ctx, g, []Var{"n"})
	if err != nil || rel.Len() != 1 {
		t.Errorf("string EQ = %v, %v", rel, err)
	}
	// Incomparable values error.
	h := And(
		&MemberOf{Concept: "neighb", M: V("n")},
		&Cmp{L: V("n"), Op: LT, R: CReal(5)},
	)
	if _, err := Eval(ctx, h, []Var{"n"}); err == nil {
		t.Error("expected incomparable error")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{LT, -1, true}, {LT, 0, false},
		{LE, 0, true}, {LE, 1, false},
		{EQ, 0, true}, {EQ, 1, false},
		{NE, 1, true}, {NE, 0, false},
		{GE, 0, true}, {GE, -1, false},
		{GT, 1, true}, {GT, 0, false},
	}
	for _, c := range cases {
		if got := c.op.holds(c.cmp); got != c.want {
			t.Errorf("%s.holds(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestDistLE(t *testing.T) {
	ctx := testContext(t)
	// Objects sampled within 5 of the school at (5,5).
	f := Exists([]Var{"x", "y", "sx", "sy", "sc"}, And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&Alpha{Attr: "school", A: CStr("Central"), G: V("sc")},
		&PointIn{Layer: "Ls", Kind: layer.KindNode, X: V("sx"), Y: V("sy"), G: V("sc")},
		&DistLE{X1: V("x"), Y1: V("y"), X2: V("sx"), Y2: V("sy"), R: 5},
	))
	rel, err := Eval(ctx, f, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Samples within 5 of (5,5): O1@(2,2) d=4.24, O1@(4,4) d=1.41,
	// O3@(3,3) d=2.83. Not O1@(15,5), O2@(12,3).
	if rel.Len() != 3 {
		t.Errorf("within radius = %v", rel)
	}
}

func TestNegation(t *testing.T) {
	ctx := testContext(t)
	// Objects never sampled in the Rich polygon (id 2): O3 only.
	f := And(
		Exists([]Var{"t", "x", "y"},
			&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")}),
		Not(Exists([]Var{"t1", "x1", "y1", "pg1"}, And(
			&Fact{Table: "FM", O: V("o"), T: V("t1"), X: V("x1"), Y: V("y1")},
			&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x1"), Y: V("y1"), G: V("pg1")},
			&Cmp{L: V("pg1"), Op: EQ, R: CGeom(2)},
		))),
	)
	rel, err := Eval(ctx, f, []Var{"o"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].Obj() != 3 {
		t.Errorf("never-in-rich = %v", rel)
	}
}

func TestDisjunction(t *testing.T) {
	ctx := testContext(t)
	// Objects sampled in Poor OR sampled at night; O1 (poor), O3
	// (both).
	inPoly := func(pg layer.Gid) Formula {
		return Exists([]Var{"t", "x", "y", "g"}, And(
			&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
			&PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: V("x"), Y: V("y"), G: V("g")},
			&Cmp{L: V("g"), Op: EQ, R: CGeom(pg)},
		))
	}
	atNight := Exists([]Var{"t", "x", "y"}, And(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&TimeRollup{Cat: timedim.CatTimeOfDay, T: V("t"), V: CStr(timedim.Night)},
	))
	rel, err := Eval(ctx, Or(inPoly(1), atNight), []Var{"o"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("disjunction = %v", rel)
	}
	// Incompatible disjuncts are rejected.
	badDisj := Or(
		&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")},
		&MemberOf{Concept: "neighb", M: V("n")},
	)
	if _, err := Eval(ctx, badDisj, []Var{"o"}); err == nil {
		t.Error("expected incompatible-disjuncts error")
	}
}

func TestNotRangeRestrictedConjunction(t *testing.T) {
	ctx := testContext(t)
	// A bare comparison over unbound variables can never be scheduled.
	f := &Cmp{L: V("a"), Op: LT, R: V("b")}
	_, err := Eval(ctx, f, []Var{"a"})
	var rr *ErrNotRangeRestricted
	if !errors.As(err, &rr) {
		t.Errorf("err = %v", err)
	}
	if rr != nil && rr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestGroupAggregate(t *testing.T) {
	ctx := testContext(t)
	// Count samples per object.
	f := &Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")}
	rel, err := Eval(ctx, f, []Var{"o", "t", "x"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rel.GroupAggregate(olap.Count, "", []Var{"o"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Lookup("O1"); !ok || v != 3 {
		t.Errorf("count O1 = %v,%v", v, ok)
	}
	// Average x per object.
	res, err = rel.GroupAggregate(olap.Avg, "x", []Var{"o"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Lookup("O1"); v != 7 { // (2+4+15)/3
		t.Errorf("avg x O1 = %v", v)
	}
	// Errors.
	if _, err := rel.GroupAggregate(olap.Sum, "", []Var{"o"}); err == nil {
		t.Error("SUM without measure should fail")
	}
	if _, err := rel.GroupAggregate(olap.Count, "", []Var{"zzz"}); err == nil {
		t.Error("unknown group column should fail")
	}
	if _, err := rel.GroupAggregate(olap.Sum, "zzz", []Var{"o"}); err == nil {
		t.Error("unknown measure column should fail")
	}
}

func TestRelationProjectAndString(t *testing.T) {
	ctx := testContext(t)
	rel, err := Eval(ctx, &Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")}, []Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := rel.Project("o")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 { // three distinct objects
		t.Errorf("Project = %v", p)
	}
	if _, err := rel.Project("zzz"); err == nil {
		t.Error("unknown column should fail")
	}
	if s := rel.String(); len(s) == 0 {
		t.Error("empty String")
	}
	if _, err := rel.Col("o"); err != nil {
		t.Error(err)
	}
}

func TestValHelpers(t *testing.T) {
	if VObj(3).String() != "O3" || VTime(9).String() != "t9" ||
		VReal(1.5).String() != "1.5" || VGeom(2).String() != "g2" || VStr("x").String() != "x" {
		t.Error("Val.String mismatch")
	}
	if f, ok := VStr("x").Real(); ok || f != 0 {
		t.Error("string Real should fail")
	}
	if f, ok := VTime(7).Real(); !ok || f != 7 {
		t.Error("time Real coercion")
	}
	for _, s := range []Sort{SortObject, SortTime, SortReal, SortGeom, SortString, Sort(99)} {
		if s.String() == "" {
			t.Error("empty sort name")
		}
	}
}

func TestTrueFormula(t *testing.T) {
	ctx := testContext(t)
	rel, err := Eval(ctx, TrueFormula(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("TrueFormula = %v", rel)
	}
}
