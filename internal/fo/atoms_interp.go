package fo

import (
	"fmt"

	"mogis/internal/moft"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

// InterpFact is the interpolated counterpart of the Fact atom: it
// realizes the paper's Q5/Q6 interpolation equations
//
//	x = ((t2-t)·x1 + (t-t1)·x2)/(t2-t1),  y analogous,
//
// as a generator over an explicit, finite set of instants. For every
// object of the table and every instant in Times within the object's
// time domain, it generates (Oid, t, x, y) with the linearly
// interpolated position. Discretizing the continuous t keeps the
// formula range-restricted, so the whole query machinery (negation,
// aggregation, joins with rollup atoms) applies unchanged; the
// continuous-interval semantics live in the engine (package core).
type InterpFact struct {
	Table      string
	Times      []timedim.Instant
	O, T, X, Y Term
}

func (a *InterpFact) freeVars(set varset) { termVars(set, a.O, a.T, a.X, a.Y) }

func (a *InterpFact) binds(bound varset) (varset, bool) {
	return bindTerms(bound, a.O, a.T, a.X, a.Y), true
}

func (a *InterpFact) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	if len(a.Times) == 0 {
		return nil, fmt.Errorf("fo: InterpFact needs at least one instant")
	}
	lits, err := ctx.trajectories(a.Table)
	if err != nil {
		return nil, err
	}
	var out []*Env
	for _, env := range envs {
		emit := func(oid moft.Oid, l *traj.LIT) {
			for _, ts := range a.Times {
				p, ok := l.AtInstant(ts)
				if !ok {
					continue
				}
				e, ok := env.bindOrCheck(a.O, VObj(oid))
				if !ok {
					continue
				}
				if e, ok = e.bindOrCheck(a.T, VTime(ts)); !ok {
					continue
				}
				if e, ok = e.bindOrCheck(a.X, VReal(p.X)); !ok {
					continue
				}
				if e, ok = e.bindOrCheck(a.Y, VReal(p.Y)); !ok {
					continue
				}
				out = append(out, e)
			}
		}
		if ov, ok := env.resolve(a.O); ok {
			if l, found := lits[ov.Obj()]; found {
				emit(ov.Obj(), l)
			}
			continue
		}
		for oid, l := range lits {
			emit(oid, l)
		}
	}
	return out, nil
}

// trajectories lazily builds and caches per-object interpolated
// trajectories for a table.
func (c *Context) trajectories(table string) (map[moft.Oid]*traj.LIT, error) {
	if c.lits == nil {
		c.lits = make(map[string]map[moft.Oid]*traj.LIT)
	}
	if cached, ok := c.lits[table]; ok {
		return cached, nil
	}
	tbl, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	out := make(map[moft.Oid]*traj.LIT)
	for _, oid := range tbl.Objects() {
		tps := tbl.ObjectTuples(oid)
		s := make(traj.Sample, len(tps))
		for i, tp := range tps {
			s[i] = traj.TimePoint{T: tp.T, P: tp.Point()}
		}
		l, err := traj.NewLIT(s)
		if err != nil {
			return nil, fmt.Errorf("fo: object O%d: %w", oid, err)
		}
		out[oid] = l
	}
	c.lits[table] = out
	return out, nil
}

// Instants builds an inclusive instant range with the given step —
// the discretization grid InterpFact queries typically use.
func Instants(lo, hi timedim.Instant, step int64) []timedim.Instant {
	if step <= 0 || hi < lo {
		return nil
	}
	var out []timedim.Instant
	for t := lo; t <= hi; t += timedim.Instant(step) {
		out = append(out, t)
	}
	return out
}
