package fo

import (
	"fmt"

	"mogis/internal/timedim"
)

// TimeBetween is the interval constraint Lo ≤ t ≤ Hi over a time-sort
// term — the clean form of the paper's Q7 condition "h ≥ 8 ∧ h ≤ 10"
// (the hour comparisons are instant-range constraints; comparing the
// string members of the hour category would order them
// lexicographically).
type TimeBetween struct {
	T      Term
	Lo, Hi timedim.Instant
}

func (a *TimeBetween) freeVars(set varset) { termVars(set, a.T) }

func (a *TimeBetween) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.T) {
		return nil, false
	}
	return bound, true
}

func (a *TimeBetween) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		tv, ok := env.resolve(a.T)
		if !ok {
			return nil, &ErrNotRangeRestricted{Detail: "TimeBetween over unbound term"}
		}
		if tv.Sort != SortTime {
			return nil, fmt.Errorf("fo: TimeBetween applied to non-instant %v", tv)
		}
		t := tv.Time()
		if t >= a.Lo && t <= a.Hi {
			out = append(out, env)
		}
	}
	return out, nil
}

// HourOfDayBetween constrains the clock hour of a time-sort term:
// loHour ≤ hourOf(t) ≤ hiHour, matching the paper's Q7 "between 8:00
// and 10:00 on weekday mornings" across any number of days.
type HourOfDayBetween struct {
	T      Term
	Lo, Hi int // clock hours 0..23, inclusive
}

func (a *HourOfDayBetween) freeVars(set varset) { termVars(set, a.T) }

func (a *HourOfDayBetween) binds(bound varset) (varset, bool) {
	if !termsBound(bound, a.T) {
		return nil, false
	}
	return bound, true
}

func (a *HourOfDayBetween) eval(ctx *Context, envs []*Env, bound varset) ([]*Env, error) {
	var out []*Env
	for _, env := range envs {
		tv, ok := env.resolve(a.T)
		if !ok {
			return nil, &ErrNotRangeRestricted{Detail: "HourOfDayBetween over unbound term"}
		}
		if tv.Sort != SortTime {
			return nil, fmt.Errorf("fo: HourOfDayBetween applied to non-instant %v", tv)
		}
		h := tv.Time().HourOfDay()
		if h >= a.Lo && h <= a.Hi {
			out = append(out, env)
		}
	}
	return out, nil
}
