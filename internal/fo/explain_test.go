package fo

import (
	"strings"
	"testing"

	"mogis/internal/layer"
	"mogis/internal/timedim"
)

func TestDescribeMotivating(t *testing.T) {
	s := Describe(motivating())
	for _, want := range []string{
		"∃x,y,pg,n", "n ∈ neighb", `R^timeOfDay(t) = Morning`,
		"FM(o, t, x, y)", "r^{Pt,polygon}_Ln(x, y, pg)",
		"α_neighb(n) = pg", "n.income < 1500",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
}

func TestDescribeOtherAtoms(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{TrueFormula(), "⊤"},
		{Not(&Cmp{L: V("a"), Op: LT, R: CReal(5)}), "¬a < 5"},
		{Or(&Cmp{L: V("a"), Op: EQ, R: CReal(1)}, &Cmp{L: V("a"), Op: EQ, R: CReal(2)}), "∨"},
		{&DistLE{X1: V("x"), Y1: V("y"), X2: CReal(0), Y2: CReal(0), R: 5}, "≤ 5²"},
		{&GeomIn{G: V("g"), IDs: []layer.Gid{1, 2, 3}}, "g ∈ {3 ids}"},
		{&TimeBetween{T: V("t"), Lo: 0, Hi: 60}, "≤ t ≤"},
		{&HourOfDayBetween{T: V("t"), Lo: 8, Hi: 10}, "8 ≤ hourOf(t) ≤ 10"},
		{&InterpFact{Table: "FM", Times: []timedim.Instant{1, 2}, O: V("o"), T: V("t"), X: V("x"), Y: V("y")}, "FM~interp[2]"},
	}
	for _, c := range cases {
		if got := Describe(c.f); !strings.Contains(got, c.want) {
			t.Errorf("Describe = %q, want substring %q", got, c.want)
		}
	}
}

func TestExplainPlanOrder(t *testing.T) {
	steps, err := Explain(motivating())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("empty plan")
	}
	// The last step is the existential projection.
	if !strings.Contains(steps[len(steps)-1], "project out") {
		t.Errorf("last step = %q", steps[len(steps)-1])
	}
	// MemberOf and Fact are generators; the income filter runs after
	// its member variable is bound.
	var memberIdx, incomeIdx int
	for i, s := range steps {
		if strings.Contains(s, "∈ neighb") {
			memberIdx = i
		}
		if strings.Contains(s, "income") {
			incomeIdx = i
		}
	}
	if incomeIdx < memberIdx {
		t.Errorf("income filter scheduled before its generator:\n%s", strings.Join(steps, "\n"))
	}
	// Generators and filters are labeled.
	joined := strings.Join(steps, "\n")
	if !strings.Contains(joined, "[generate]") || !strings.Contains(joined, "[filter]") {
		t.Errorf("missing role labels:\n%s", joined)
	}
}

func TestExplainUnsafe(t *testing.T) {
	if _, err := Explain(&Cmp{L: V("a"), Op: LT, R: V("b")}); err == nil {
		t.Error("unsafe formula explained without error")
	}
	if _, err := Explain(And(&Cmp{L: V("a"), Op: LT, R: V("b")})); err == nil {
		t.Error("unsafe conjunction explained without error")
	}
}

func TestExplainSingleAtom(t *testing.T) {
	steps, err := Explain(&Fact{Table: "FM", O: V("o"), T: V("t"), X: V("x"), Y: V("y")})
	if err != nil || len(steps) != 1 {
		t.Errorf("steps = %v, %v", steps, err)
	}
}
