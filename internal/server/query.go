package server

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"mogis/internal/core"
	"mogis/internal/faultpoint"
	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/pietql"
	"mogis/internal/qerr"
)

// queryRequest is the POST /query body. The same knobs can arrive as
// URL parameters (timeout_ms, max_rows, max_results, format) when the
// body is raw Piet-QL text instead of JSON.
type queryRequest struct {
	Query string `json:"query"`
	// TimeoutMS bounds the whole pipeline (parse + geo + OLAP + MO)
	// wall-clock; it becomes both a request-context deadline and the
	// core.Budget timeout. 0 = server default.
	TimeoutMS int64 `json:"timeout_ms"`
	// MaxRows / MaxResults are the core.Budget resource caps
	// (0 = unlimited).
	MaxRows    int64 `json:"max_rows"`
	MaxResults int64 `json:"max_results"`
	// Format selects the response encoding: "json" (default), "csv"
	// or "text" (pietql.FormatOutcome rendering).
	Format string `json:"format"`
}

// queryResponse is the JSON shape of a successful /query.
type queryResponse struct {
	ID      uint64                 `json:"id"`
	GeoIDs  map[string][]layer.Gid `json:"geo_ids,omitempty"`
	MOCount int                    `json:"mo_count"`
	HasMO   bool                   `json:"has_mo"`
	MOGroup *olap.AggResult        `json:"mo_groups,omitempty"`
	Explain string                 `json:"explain,omitempty"`
	Text    string                 `json:"text"`
}

// maxQueryBody bounds the /query request body; Piet-QL text is tiny,
// so a megabyte of it is abuse, not a query.
const maxQueryBody = 1 << 20

// parseQueryRequest decodes the body (JSON object or raw Piet-QL
// text) and folds in URL parameters. Errors are client errors.
func parseQueryRequest(r *http.Request) (*queryRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxQueryBody))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	req := &queryRequest{}
	if ct := r.Header.Get("Content-Type"); ct == "application/json" {
		if err := json.Unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("decoding JSON body: %w", err)
		}
	} else {
		req.Query = string(body)
	}
	q := r.URL.Query()
	if req.Query == "" {
		req.Query = q.Get("query")
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{
		{"timeout_ms", &req.TimeoutMS},
		{"max_rows", &req.MaxRows},
		{"max_results", &req.MaxResults},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("parameter %s: %q is not a non-negative integer", p.name, v)
			}
			*p.dst = n
		}
	}
	if f := q.Get("format"); f != "" {
		req.Format = f
	}
	switch req.Format {
	case "", "json", "csv", "text":
	default:
		return nil, fmt.Errorf("format %q: want json, csv or text", req.Format)
	}
	if req.Query == "" {
		return nil, errors.New("empty query: send Piet-QL text in the body or the query parameter")
	}
	return req, nil
}

// handleQuery runs one Piet-QL query under the request's budget and
// writes the outcome in the requested format. The endpoint wrapper
// owns admission, panic recovery, telemetry and error rendering.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, id uint64) error {
	req, err := parseQueryRequest(r)
	if err != nil {
		return &httpError{status: http.StatusBadRequest, code: "bad_request", err: err}
	}

	ctx := r.Context()
	b := core.Budget{MaxRows: req.MaxRows, MaxResults: req.MaxResults}
	if req.TimeoutMS > 0 {
		b.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	} else if s.cfg.QueryTimeout > 0 {
		b.Timeout = s.cfg.QueryTimeout
	}
	if b.Timeout > 0 {
		// The budget timeout only arms at engine entry; bound the whole
		// pipeline (parse + geo + OLAP) at the request level too.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
		defer cancel()
	}
	if b != (core.Budget{}) {
		ctx = core.WithBudget(ctx, b)
	}

	out, err := s.sys.Run(ctx, req.Query)
	if err != nil {
		return err
	}

	if err := faultpoint.Hit(faultpoint.ServerWrite); err != nil {
		s.met.writeFaults.Inc()
		return err
	}
	switch req.Format {
	case "csv":
		return writeQueryCSV(w, id, out)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, err := io.WriteString(w, pietql.FormatOutcome(out))
		return err
	default:
		return writeJSON(w, http.StatusOK, queryResponse{
			ID:      id,
			GeoIDs:  out.GeoIDs,
			MOCount: out.MOCount,
			HasMO:   out.HasMO,
			MOGroup: out.MOGroups,
			Explain: out.Explain,
			Text:    pietql.FormatOutcome(out),
		})
	}
}

// writeQueryCSV renders the outcome as section,key,value rows:
// geo rows (layer, id), the MO aggregate, and per-group counts.
func writeQueryCSV(w http.ResponseWriter, id uint64, out *pietql.Outcome) error {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"section", "key", "value"})
	_ = cw.Write([]string{"id", "", strconv.FormatUint(id, 10)})
	names := make([]string, 0, len(out.GeoIDs))
	for name := range out.GeoIDs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, gid := range out.GeoIDs[name] {
			_ = cw.Write([]string{"geo", name, strconv.FormatInt(int64(gid), 10)})
		}
	}
	if out.HasMO {
		_ = cw.Write([]string{"mo_count", "", strconv.Itoa(out.MOCount)})
	}
	if out.MOGroups != nil {
		for _, row := range out.MOGroups.Rows {
			_ = cw.Write([]string{"mo_group", fmt.Sprint(row.Group), strconv.FormatFloat(row.Value, 'g', -1, 64)})
		}
	}
	cw.Flush()
	return cw.Error()
}

// httpError pairs an error with the status and machine-readable code
// the endpoint wrapper should render. Errors without one go through
// statusFor classification.
type httpError struct {
	status int
	code   string
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// statusCodeClientClosed is nginx's 499: the client hung up before the
// response; no standard constant exists.
const statusCodeClientClosed = 499

// statusFor maps a typed pipeline error to its HTTP rendering. The
// table is the contract documented in DESIGN.md §15.
func statusFor(r *http.Request, err error) (status int, code string) {
	var he *httpError
	var be *core.BudgetError
	switch {
	case errors.As(err, &he):
		return he.status, he.code
	case pietql.IsParseError(err):
		return http.StatusBadRequest, "parse_error"
	case errors.As(err, &be):
		if be.Resource == "rows" {
			return http.StatusUnprocessableEntity, "budget_rows"
		}
		return http.StatusRequestEntityTooLarge, "budget_results"
	case qerr.IsCancel(err):
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusRequestTimeout, "deadline"
		}
		if r != nil && r.Context().Err() != nil {
			return statusCodeClientClosed, "client_closed_request"
		}
		return http.StatusServiceUnavailable, "cancelled"
	case qerr.IsPanic(err):
		return http.StatusInternalServerError, "panic"
	case isInjected(err):
		return http.StatusInternalServerError, "injected_fault"
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests, "admission_queue_full"
	case errors.Is(err, errQueueWait):
		return http.StatusServiceUnavailable, "admission_wait_timeout"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, errSubsAtLimit):
		return http.StatusServiceUnavailable, "subscriber_limit"
	}
	return http.StatusUnprocessableEntity, "eval_error"
}

// isInjected reports whether err originates at an armed faultpoint.
func isInjected(err error) bool {
	var f *faultpoint.Fault
	return errors.As(err, &f)
}

// writeJSON writes v with the given status. The Content-Type must be
// set before the status line goes out.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
