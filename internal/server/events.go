package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/timedim"
)

// Event is one geofence notification pushed over /events. Enter/leave
// events are computed against the configured polygon layer as objects
// move; lagged events tell a slow consumer how many events the
// drop-oldest policy discarded; the shutdown event is the last thing a
// draining server sends before closing the stream.
type Event struct {
	// Type is "enter", "leave", "lagged", "shutdown" or the
	// stream-opening "hello".
	Type string `json:"type"`
	// Table and Oid identify the moving object (enter/leave only).
	Table string   `json:"table,omitempty"`
	Oid   moft.Oid `json:"oid,omitempty"`
	// Zone is the geofence polygon's id in the configured layer.
	Zone layer.Gid `json:"zone,omitempty"`
	// T, X, Y are the position update that triggered the transition.
	T timedim.Instant `json:"t,omitempty"`
	X float64         `json:"x,omitempty"`
	Y float64         `json:"y,omitempty"`
	// Seq is the hub-wide publication sequence number; a gap visible
	// to a client matches a preceding lagged event.
	Seq uint64 `json:"seq,omitempty"`
	// Dropped counts the events discarded before a lagged event.
	Dropped int `json:"dropped,omitempty"`
}

// subscriber is one connected /events client: a bounded FIFO of
// pending events plus a wake signal for the flush loop. Overflow
// drops the oldest pending event and accumulates the dropped count,
// which the flush loop converts into one lagged event — the
// drop-oldest half of the slow-consumer policy. (The disconnect half
// lives in the handler: a write blocked past the stall deadline
// fails and tears the subscription down.)
type subscriber struct {
	id  uint64
	cap int

	mu      sync.Mutex
	queue   []Event
	dropped int

	// wake has capacity 1: pushes never block on a slow flush loop.
	wake chan struct{}
}

// push appends ev, applying drop-oldest on overflow. Never blocks.
func (s *subscriber) push(ev Event) (dropped bool) {
	s.mu.Lock()
	if len(s.queue) >= s.cap {
		s.queue = s.queue[1:]
		s.dropped++
		dropped = true
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return dropped
}

// drain takes every pending event plus the dropped count accumulated
// since the last drain.
func (s *subscriber) drain() ([]Event, int) {
	s.mu.Lock()
	evs := s.queue
	d := s.dropped
	s.queue = nil
	s.dropped = 0
	s.mu.Unlock()
	return evs, d
}

// hub tracks which geofence polygons each moving object is currently
// inside and fans enter/leave transitions out to every subscriber.
// One hub serves one polygon layer; the per-object containment state
// is keyed by (table, oid).
type hub struct {
	layerName string
	lyr       *layer.Layer
	queueCap  int
	maxSubs   int
	met       *serverMetrics

	mu     sync.Mutex
	subs   map[uint64]*subscriber
	nextID uint64
	state  map[string]map[moft.Oid][]layer.Gid

	seq atomic.Uint64

	// closed is signalled once at drain start; subscriber handlers
	// flush a shutdown event and exit, then drainWG goes to zero.
	closed    chan struct{}
	closeOnce sync.Once
	// drainWG joins every subscriber handler; Server.Shutdown waits on
	// it (bounded by the drain budget) after signalling closed.
	drainWG sync.WaitGroup
}

func newHub(layerName string, lyr *layer.Layer, queueCap, maxSubs int, met *serverMetrics) *hub {
	if queueCap < 1 {
		queueCap = 64
	}
	if maxSubs < 1 {
		maxSubs = 10000
	}
	return &hub{
		layerName: layerName,
		lyr:       lyr,
		queueCap:  queueCap,
		maxSubs:   maxSubs,
		met:       met,
		subs:      make(map[uint64]*subscriber),
		state:     make(map[string]map[moft.Oid][]layer.Gid),
		closed:    make(chan struct{}),
	}
}

// subscribe registers a new client and joins it to the drain group.
// The caller must pair it with unsubscribe.
func (h *hub) subscribe() (*subscriber, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.closed:
		return nil, errDraining
	default:
	}
	if len(h.subs) >= h.maxSubs {
		return nil, errSubsAtLimit
	}
	h.nextID++
	s := &subscriber{
		id:   h.nextID,
		cap:  h.queueCap,
		wake: make(chan struct{}, 1),
	}
	h.subs[s.id] = s
	h.drainWG.Add(1)
	h.met.subscribers.Set(int64(len(h.subs)))
	return s, nil
}

// unsubscribe removes the client and releases its drain slot.
// Idempotent per subscriber is NOT required: the handler calls it
// exactly once on exit.
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s.id)
	h.met.subscribers.Set(int64(len(h.subs)))
	h.mu.Unlock()
	h.drainWG.Done()
}

// close signals drain: subscribers observe it, flush a shutdown event
// and exit. Safe to call more than once.
func (h *hub) close() {
	h.closeOnce.Do(func() { close(h.closed) })
}

// subscriberCount reports the connected client count.
func (h *hub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// observe folds one position update into the containment state and
// publishes the enter/leave transitions it causes. Returns the number
// of events published. Calls are serialized per ingest batch by the
// caller; the hub lock orders concurrent batches.
func (h *hub) observe(table string, oid moft.Oid, t timedim.Instant, x, y float64) int {
	zones := h.lyr.PolygonsContaining(geom.Pt(x, y))
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })

	h.mu.Lock()
	prev := h.state[table][oid]
	entered, left := diffZones(prev, zones)
	if len(entered) == 0 && len(left) == 0 {
		h.mu.Unlock()
		return 0
	}
	tbl := h.state[table]
	if tbl == nil {
		tbl = make(map[moft.Oid][]layer.Gid)
		h.state[table] = tbl
	}
	tbl[oid] = zones
	n := 0
	for _, z := range left {
		h.publishLocked(Event{Type: "leave", Table: table, Oid: oid, Zone: z, T: t, X: x, Y: y})
		n++
	}
	for _, z := range entered {
		h.publishLocked(Event{Type: "enter", Table: table, Oid: oid, Zone: z, T: t, X: x, Y: y})
		n++
	}
	h.mu.Unlock()
	return n
}

// publishLocked stamps ev with the next sequence number and pushes it
// to every subscriber. Caller holds h.mu; pushes are non-blocking, so
// a stalled consumer cannot stall the hub.
func (h *hub) publishLocked(ev Event) {
	ev.Seq = h.seq.Add(1)
	h.met.eventsPublished.Inc()
	for _, s := range h.subs {
		if s.push(ev) {
			h.met.eventsDropped.Inc()
		}
	}
}

// diffZones returns the ids present in next but not prev (entered)
// and in prev but not next (left). Both inputs are sorted ascending.
func diffZones(prev, next []layer.Gid) (entered, left []layer.Gid) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			left = append(left, prev[i])
			i++
		default:
			entered = append(entered, next[j])
			j++
		}
	}
	left = append(left, prev[i:]...)
	entered = append(entered, next[j:]...)
	return entered, left
}
