package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"mogis/internal/faultpoint"
	"mogis/internal/obs"
)

func testMetrics() *serverMetrics { return newServerMetrics(obs.NewRegistry()) }

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 0, time.Second, testMetrics())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.inFlight(); got != 2 {
		t.Errorf("inFlight = %d", got)
	}
	a.release()
	a.release()
	if got := a.inFlight(); got != 0 {
		t.Errorf("inFlight after release = %d", got)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 0, time.Second, testMetrics())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	a.release()
}

func TestAdmissionQueueWaitTimeout(t *testing.T) {
	a := newAdmission(1, 1, 20*time.Millisecond, testMetrics())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.acquire(context.Background())
	if !errors.Is(err, errQueueWait) {
		t.Fatalf("err = %v, want errQueueWait", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("shed before the queue-wait deadline")
	}
	a.release()
}

func TestAdmissionQueuedRequestGetsFreedSlot(t *testing.T) {
	a := newAdmission(1, 1, time.Second, testMetrics())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		errc <- a.acquire(context.Background())
	}()
	time.Sleep(10 * time.Millisecond)
	a.release()
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	a.release()
}

func TestAdmissionObservesContext(t *testing.T) {
	a := newAdmission(1, 1, time.Minute, testMetrics())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		errc <- a.acquire(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire = %v, want context.Canceled", err)
	}
	// The abandoned wait released its queue slot.
	if got := a.queued(); got != 0 {
		t.Errorf("queued = %d after cancelled wait", got)
	}
	a.release()
}

// TestAdmissionHTTPShedding drives the 429 + Retry-After contract
// through the mux: one slot, no queue, slot held by a slow query.
func TestAdmissionHTTPShedding(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = -1 // no wait queue: overflow sheds immediately
	})
	s.sys.Engine.ResetCache()
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeDelay, 300*time.Millisecond)
	defer faultpoint.Reset()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(s, "POST", "/query", moQuery, nil)
	}()
	// Wait until the slow query holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.inFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.adm.inFlight() == 0 {
		t.Fatal("slow query never admitted")
	}

	w := do(s, "POST", "/query", geoQuery, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if e := decodeError(t, w); e.Code != "admission_queue_full" {
		t.Errorf("code %q", e.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	wg.Wait()

	// Load gone: the same request is admitted and succeeds.
	faultpoint.Reset()
	if w := do(s, "POST", "/query", geoQuery, nil); w.Code != http.StatusOK {
		t.Fatalf("after shed: %d %s", w.Code, w.Body.String())
	}
	if s.met.admissionShed.Value() == 0 {
		t.Error("admission shed not counted")
	}
}

// TestAdmissionHTTPQueueWait drives the bounded-queue 503 contract:
// one slot, one queue seat with a tiny wait budget.
func TestAdmissionHTTPQueueWait(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.QueueWait = 30 * time.Millisecond
	})
	s.sys.Engine.ResetCache()
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeDelay, 400*time.Millisecond)
	defer faultpoint.Reset()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(s, "POST", "/query", moQuery, nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.inFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	w := do(s, "POST", "/query", geoQuery, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	if e := decodeError(t, w); e.Code != "admission_wait_timeout" {
		t.Errorf("code %q", e.Code)
	}
	wg.Wait()
}
