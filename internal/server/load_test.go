package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sseSink is an in-process ResponseWriter for driving thousands of
// /events handlers without TCP sockets or fd limits. It satisfies
// http.ResponseController's needs (FlushError, SetWriteDeadline) so
// the handler's per-write deadline path runs for real. failAfter > 0
// simulates a broken peer: writes start failing after that many
// frames, which must disconnect the subscriber.
type sseSink struct {
	header    http.Header
	frames    atomic.Int64
	failAfter int64
}

func (w *sseSink) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *sseSink) WriteHeader(int) {}

func (w *sseSink) Write(b []byte) (int, error) {
	n := w.frames.Add(1)
	if w.failAfter > 0 && n > w.failAfter {
		return 0, errors.New("simulated broken pipe")
	}
	return len(b), nil
}

func (w *sseSink) FlushError() error { return nil }

func (w *sseSink) SetWriteDeadline(time.Time) error { return nil }

// TestLoadSubscribersAndStorm is the capacity gate: ≥2000 concurrent
// SSE subscribers while a query+ingest storm runs, then a graceful
// shutdown that drains every stream within budget and strands no
// goroutines. Run under -race (the Makefile serve-race target does).
func TestLoadSubscribersAndStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	baseline := runtime.NumGoroutine()

	s, _ := newTestServer(t, func(c *Config) {
		c.SubscriberQueue = 8 // small queue: the storm must exercise lagged shedding
		c.DrainBudget = 15 * time.Second
	})

	const (
		nSubs    = 2100 // ≥2000 healthy even after the broken peers drop
		nBroken  = 50   // every failAfter-th sink starts failing writes
		nQueryG  = 16
		nIngestG = 4
		stormDur = 500 * time.Millisecond
	)

	// --- Fan in the subscribers. Each handler runs on its own
	// goroutine, exactly like a net/http connection goroutine would.
	var subWG sync.WaitGroup
	sinks := make([]*sseSink, nSubs)
	cancels := make([]context.CancelFunc, nSubs)
	for i := 0; i < nSubs; i++ {
		sink := &sseSink{}
		if i < nBroken {
			sink.failAfter = 2 // hello + one event, then broken pipe
		}
		sinks[i] = sink
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		req := httptest.NewRequest("GET", "/events", nil).WithContext(ctx)
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			s.mux.ServeHTTP(sink, req)
		}()
	}
	t.Cleanup(func() {
		for _, cancel := range cancels {
			cancel()
		}
		subWG.Wait()
	})

	// Every healthy subscriber must register and get its hello frame.
	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribers() < nSubs && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.Subscribers(); n < 2000 {
		t.Fatalf("only %d subscribers registered, need ≥2000", n)
	}

	// --- Storm: queries and geofence-triggering ingest, concurrently.
	stop := make(chan struct{})
	var stormWG sync.WaitGroup
	var queries, ingests, unexpected atomic.Int64
	for g := 0; g < nQueryG; g++ {
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := do(s, "POST", "/query", geoQuery, nil)
				switch w.Code {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					queries.Add(1)
				default:
					unexpected.Add(1)
					t.Errorf("storm query: status %d: %s", w.Code, w.Body.String())
				}
			}
		}()
	}
	for g := 0; g < nIngestG; g++ {
		stormWG.Add(1)
		go func(g int) {
			defer stormWG.Done()
			oid, tick := 20000+g*1000, 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tick++
				// Bounce one object per goroutine in and out of the unit
				// squares so every batch publishes enter+leave fan-out.
				x := 0.5
				if tick%2 == 0 {
					x = -50.0
				}
				body := fmt.Sprintf("%d,%d,%g,0.5\n", oid, tick*10, x)
				w := do(s, "POST", "/ingest?table=FMbus", body, nil)
				switch w.Code {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					ingests.Add(1)
				default:
					unexpected.Add(1)
					t.Errorf("storm ingest: status %d: %s", w.Code, w.Body.String())
				}
			}
		}(g)
	}
	time.Sleep(stormDur)
	close(stop)
	stormWG.Wait()

	if queries.Load() == 0 || ingests.Load() == 0 {
		t.Fatalf("storm too quiet: %d queries, %d ingests", queries.Load(), ingests.Load())
	}
	// Fan-out reached the flock: beyond hellos, event frames landed.
	var frames int64
	for _, sink := range sinks {
		frames += sink.frames.Load()
	}
	if frames < int64(nSubs)*2 {
		t.Errorf("only %d frames across %d subscribers; fan-out did not reach the flock", frames, nSubs)
	}
	// The broken peers were reaped by the write-error path.
	brokenDeadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() > nSubs-nBroken && time.Now().Before(brokenDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.Subscribers(); n > nSubs-nBroken {
		t.Errorf("%d subscribers still attached; broken peers not reaped", n)
	}

	// --- Graceful shutdown: every stream drains within budget.
	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	drain := time.Since(drainStart)
	if drain > 15*time.Second {
		t.Errorf("drain took %v, over budget", drain)
	}
	subWG.Wait()
	if n := s.Subscribers(); n != 0 {
		t.Errorf("%d subscribers survived the drain", n)
	}

	// --- No goroutine may outlive the party.
	gateDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(gateDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+4 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines: baseline %d, now %d\n%s", baseline, n,
			strings.Split(string(buf[:runtime.Stack(buf, true)]), "\n\n")[0])
	}
	t.Logf("load: %d subscribers, %d queries, %d ingests, %d frames, drain %v",
		nSubs, queries.Load(), ingests.Load(), frames, drain)
}
