package server

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"mogis/internal/moft"
	"mogis/internal/timedim"
)

// maxIngestBody bounds one /ingest batch (~8 MiB of CSV is on the
// order of 200k position updates — far past any sane batch).
const maxIngestBody = 8 << 20

// ingestResponse is the JSON shape of a successful /ingest.
type ingestResponse struct {
	ID    uint64 `json:"id"`
	Table string `json:"table"`
	// Rows is the number of position updates applied.
	Rows int `json:"rows"`
	// Events is the number of geofence events the batch published.
	Events int `json:"events"`
}

// handleIngest streams position updates — CSV lines "oid,t,x,y" —
// into the named MOFT. The table is replaced copy-on-write (the MOFT
// loading contract is single-threaded, so in-flight queries keep
// reading the old immutable table), engine trajectory caches are
// invalidated, and each applied row is folded into the geofence hub.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, id uint64) error {
	table := r.URL.Query().Get("table")
	if table == "" {
		return &httpError{status: http.StatusBadRequest, code: "bad_request",
			err: fmt.Errorf("missing table parameter")}
	}

	var rows []moft.Tuple
	sc := bufio.NewScanner(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		tp, err := parseIngestLine(text)
		if err != nil {
			return &httpError{status: http.StatusBadRequest, code: "bad_request",
				err: fmt.Errorf("line %d: %w", line, err)}
		}
		rows = append(rows, tp)
	}
	if err := sc.Err(); err != nil {
		return &httpError{status: http.StatusBadRequest, code: "bad_request",
			err: fmt.Errorf("reading body: %w", err)}
	}
	if len(rows) == 0 {
		return &httpError{status: http.StatusBadRequest, code: "bad_request",
			err: fmt.Errorf("empty batch: no position updates in body")}
	}

	events, err := s.applyIngest(table, rows)
	if err != nil {
		return err
	}
	s.met.ingestRows.Add(int64(len(rows)))
	return writeJSON(w, http.StatusOK, ingestResponse{
		ID: id, Table: table, Rows: len(rows), Events: events,
	})
}

// parseIngestLine parses one "oid,t,x,y" update.
func parseIngestLine(text string) (moft.Tuple, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 4 {
		return moft.Tuple{}, fmt.Errorf("want oid,t,x,y, got %d fields", len(parts))
	}
	oid, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return moft.Tuple{}, fmt.Errorf("oid: %w", err)
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return moft.Tuple{}, fmt.Errorf("t: %w", err)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil {
		return moft.Tuple{}, fmt.Errorf("x: %w", err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
	if err != nil {
		return moft.Tuple{}, fmt.Errorf("y: %w", err)
	}
	return moft.Tuple{Oid: moft.Oid(oid), T: timedim.Instant(ts), X: x, Y: y}, nil
}

// applyIngest installs the batch: build a replacement table from the
// current tuples plus the batch, swap it into the model context, drop
// the engine's cached state for the table, then publish geofence
// transitions. Batches are serialized by ingestMu — the copy-on-write
// scheme needs a stable "current" table per batch — while queries keep
// running against whichever table version they started with.
func (s *Server) applyIngest(table string, rows []moft.Tuple) (events int, err error) {
	s.ingestMu.Lock()
	old, err := s.sys.Ctx.Table(table)
	if err != nil {
		s.ingestMu.Unlock()
		return 0, &httpError{status: http.StatusNotFound, code: "unknown_table",
			err: fmt.Errorf("table %q: %w", table, err)}
	}
	next := moft.New(table)
	for _, tp := range old.Tuples() {
		next.AddTuple(tp)
	}
	for _, tp := range rows {
		next.AddTuple(tp)
	}
	s.sys.Ctx.AddTable(next)
	s.sys.Engine.InvalidateTrajectories(table)
	s.ingestMu.Unlock()

	if s.hub != nil {
		for _, tp := range rows {
			events += s.hub.observe(table, tp.Oid, tp.T, tp.X, tp.Y)
		}
	}
	return events, nil
}
