package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mogis/internal/layer"
)

func TestDiffZones(t *testing.T) {
	for _, tc := range []struct {
		prev, next, entered, left []layer.Gid
	}{
		{nil, []layer.Gid{1}, []layer.Gid{1}, nil},
		{[]layer.Gid{1}, nil, nil, []layer.Gid{1}},
		{[]layer.Gid{1, 2}, []layer.Gid{2, 3}, []layer.Gid{3}, []layer.Gid{1}},
		{[]layer.Gid{1, 2}, []layer.Gid{1, 2}, nil, nil},
		{nil, nil, nil, nil},
	} {
		entered, left := diffZones(tc.prev, tc.next)
		if !eqGids(entered, tc.entered) || !eqGids(left, tc.left) {
			t.Errorf("diffZones(%v, %v) = %v, %v; want %v, %v",
				tc.prev, tc.next, entered, left, tc.entered, tc.left)
		}
	}
}

func eqGids(a, b []layer.Gid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSubscriberDropOldest pins the bounded-queue overflow policy at
// the unit level: oldest events go first, the dropped count survives
// until the next drain.
func TestSubscriberDropOldest(t *testing.T) {
	s := &subscriber{cap: 3, wake: make(chan struct{}, 1)}
	for i := 1; i <= 5; i++ {
		s.push(Event{Type: "enter", Seq: uint64(i)})
	}
	evs, dropped := s.drain()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Errorf("queue kept %v, want seqs 3..5", evs)
	}
	if evs, dropped := s.drain(); len(evs) != 0 || dropped != 0 {
		t.Errorf("second drain = %v, %d; want empty", evs, dropped)
	}
}

// sseClient reads one /events stream over a real connection.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func dialSSE(t *testing.T, base, extra string) *sseClient {
	t.Helper()
	resp, err := http.Get(base + "/events" + extra)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("/events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

func (c *sseClient) close() { c.resp.Body.Close() }

// next returns the next event frame (type, decoded data).
func (c *sseClient) next(t *testing.T) (string, Event) {
	t.Helper()
	var typ string
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("frame %q: %v", line, err)
			}
			return typ, ev
		}
	}
	t.Fatalf("stream ended early: %v", c.sc.Err())
	return "", Event{}
}

// startServer runs a full daemon on a loopback listener.
func startServer(t *testing.T, mod func(*Config)) (*Server, string) {
	t.Helper()
	s, _ := newTestServer(t, mod)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + s.Addr()
}

// TestGeofenceEnterLeave drives the full path: ingest moves an object
// into neighborhood polygon 1 and then out; the SSE subscriber sees
// the matching enter and leave events.
func TestGeofenceEnterLeave(t *testing.T) {
	s, base := startServer(t, nil)
	c := dialSSE(t, base, "")
	defer c.close()
	if typ, _ := c.next(t); typ != "hello" {
		t.Fatalf("first frame %q, want hello", typ)
	}

	// Wait for the subscription to register before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	// Scenario neighborhoods are unit squares: n1 = [0,1)x[0,1).
	post(t, base+"/ingest?table=FMbus", "8001,10,0.5,0.5\n")
	typ, ev := c.next(t)
	if typ != "enter" || ev.Oid != 8001 || ev.Zone == 0 {
		t.Fatalf("frame %s %+v, want enter for oid 8001", typ, ev)
	}
	zone := ev.Zone

	post(t, base+"/ingest?table=FMbus", "8001,20,-50.0,-50.0\n")
	typ, ev = c.next(t)
	if typ != "leave" || ev.Oid != 8001 || ev.Zone != zone {
		t.Fatalf("frame %s %+v, want leave from zone %d", typ, ev, zone)
	}
}

// TestEventsShutdownFrame: a draining server sends the shutdown event
// before closing the stream.
func TestEventsShutdownFrame(t *testing.T) {
	s, base := startServer(t, nil)
	c := dialSSE(t, base, "")
	defer c.close()
	c.next(t) // hello

	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if typ, _ := c.next(t); typ != "shutdown" {
		t.Fatalf("frame %q, want shutdown", typ)
	}
	if n := s.Subscribers(); n != 0 {
		t.Errorf("%d subscribers after drain", n)
	}
}

// TestEventsMaxEvents: the stream ends cleanly after max_events.
func TestEventsMaxEvents(t *testing.T) {
	_, base := startServer(t, nil)
	c := dialSSE(t, base, "?max_events=1")
	defer c.close()
	c.next(t) // hello
	post(t, base+"/ingest?table=FMbus", "8002,10,0.5,0.5\n")
	if typ, _ := c.next(t); typ != "enter" {
		t.Fatalf("frame %q", typ)
	}
	// Stream must now end.
	if c.sc.Scan() && strings.HasPrefix(c.sc.Text(), "event: ") {
		t.Fatalf("stream kept going: %q", c.sc.Text())
	}
}

// TestEventsLagged: a consumer that cannot keep up gets drop-oldest
// plus one lagged event carrying the dropped count.
func TestEventsLagged(t *testing.T) {
	s, base := startServer(t, func(c *Config) {
		c.SubscriberQueue = 2
	})
	c := dialSSE(t, base, "")
	defer c.close()
	c.next(t) // hello

	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	// Publish a burst directly into the hub while the client's flush
	// loop has no chance to run between pushes (single lock hold).
	s.hub.mu.Lock()
	for i := 0; i < 10; i++ {
		s.hub.publishLocked(Event{Type: "enter", Table: "FMbus", Oid: 9100, Zone: layer.Gid(i + 1)})
	}
	s.hub.mu.Unlock()

	sawLagged := false
	droppedTotal := 0
	received := 0
	for received < 2 {
		typ, ev := c.next(t)
		if typ == "lagged" {
			sawLagged = true
			droppedTotal += ev.Dropped
			continue
		}
		received++
	}
	if !sawLagged || droppedTotal == 0 {
		t.Errorf("lagged=%v dropped=%d; slow consumer not notified", sawLagged, droppedTotal)
	}
	if got := s.met.eventsDropped.Value(); got == 0 {
		t.Error("dropped events not counted")
	}
}

// TestEventsNoGeofence: /events 404s when no layer is configured.
func TestEventsNoGeofence(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.GeofenceLayer = "" })
	w := do(s, "GET", "/events", "", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", w.Code)
	}
}

// TestSubscriberLimit: the (admission-free) /events endpoint is capped
// by MaxSubscribers.
func TestSubscriberLimit(t *testing.T) {
	s, base := startServer(t, func(c *Config) { c.MaxSubscribers = 1 })
	c := dialSSE(t, base, "")
	defer c.close()
	c.next(t) // hello
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second subscriber: status %d, want 503", resp.StatusCode)
	}
}

func post(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf[:n])
	}
}
