package server

import (
	"context"

	"mogis/internal/core"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/scenario"
	"mogis/internal/telemetry"
	"mogis/internal/workload"
)

// SystemConfig selects the model a daemon serves: the paper's running
// example (default) or a generated synthetic city, optionally behind
// the sharded scatter-gather engine.
type SystemConfig struct {
	// City switches from the paper scenario (MOFT "FMbus") to a
	// synthetic city (MOFT "FM") of Grid×Grid blocks with Objects
	// moving objects generated from Seed.
	City    bool
	Grid    int
	Objects int
	Seed    int64
	// Overlay precomputes the geometric-predicate overlay (the
	// pietql default); false falls back to naive geometry.
	Overlay bool
	// Shards > 1 swaps the engine for a core.ShardedEngine over the
	// same model context — answers stay bit-identical.
	Shards int
	// Telemetry is handed to the Piet-QL pipeline (nil = default).
	Telemetry *telemetry.Collector
}

// NewSystem wires the Piet-QL system a Server serves. It mirrors the
// pietql CLI's bootstrap so daemon answers match CLI answers exactly.
func NewSystem(cfg SystemConfig) (*pietql.System, error) {
	kinds := map[string]layer.Kind{
		"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
		"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
	}
	var sys *pietql.System
	var layers map[string]*layer.Layer
	if !cfg.City {
		s := scenario.New()
		sys = &pietql.System{
			Ctx: s.Ctx, Engine: s.Engine, Kinds: kinds,
			SchemaName: "PietSchema",
			Cubes:      mdx.Catalog{"CityCube": &mdx.Cube{Name: "CityCube", Fact: populationCube(s.Neighborhoods)}},
		}
		layers = map[string]*layer.Layer{
			"Ln": s.Ln, "Lr": s.Lr, "Ls": s.Ls, "Lstores": s.Lstores, "Lh": s.Lh,
		}
	} else {
		grid := cfg.Grid
		if grid <= 0 {
			grid = 8
		}
		objects := cfg.Objects
		if objects <= 0 {
			objects = 100
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		city := workload.GenCity(workload.CityConfig{Seed: seed, Cols: grid, Rows: grid})
		fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: seed, Objects: objects})
		ctx, eng := city.Context(fm)
		sys = &pietql.System{
			Ctx: ctx, Engine: eng, Kinds: kinds,
			SchemaName: "PietSchema",
			Cubes:      mdx.Catalog{"CityCube": &mdx.Cube{Name: "CityCube", Fact: populationCube(city.Neighborhoods)}},
		}
		layers = city.Layers()
	}
	sys.Telemetry = cfg.Telemetry

	if cfg.Overlay {
		refN := overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}
		pairs := []overlay.Pair{
			{A: refN, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
			{A: refN, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
			{A: refN, B: overlay.Ref{Layer: "Ls", Kind: layer.KindNode}},
			{A: refN, B: overlay.Ref{Layer: "Lh", Kind: layer.KindPolyline}},
		}
		ov, err := overlay.Precompute(context.Background(), layers, pairs)
		if err != nil {
			return nil, err
		}
		sys.Overlay = ov
	}
	if cfg.Shards > 1 {
		sys.Engine = core.NewSharded(sys.Ctx, cfg.Shards)
	}
	return sys, nil
}

// populationCube builds the CityCube fact table from the neighborhood
// dimension's population/income attributes (same cube the CLI serves).
func populationCube(dim *olap.Dimension) *olap.FactTable {
	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: dim, Level: "neighborhood"}},
		Measures: []string{"population", "income"},
	})
	for _, m := range dim.Members("neighborhood") {
		pop, inc := 0.0, 0.0
		if v, ok := dim.Attr("neighborhood", m, "population"); ok {
			pop, _ = v.Num()
		}
		if v, ok := dim.Attr("neighborhood", m, "income"); ok {
			inc, _ = v.Num()
		}
		ft.MustAdd([]olap.Member{m}, []float64{pop, inc})
	}
	return ft
}
