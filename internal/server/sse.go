package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mogis/internal/faultpoint"
)

// handleEvents serves GET /events: a Server-Sent-Events stream of
// geofence enter/leave transitions. The handler runs entirely on the
// net/http connection goroutine — no goroutine of its own — and is
// joined to the hub's drain group, so graceful shutdown can wait for
// every stream to flush its shutdown event and exit.
//
// Slow-consumer policy, in order: the per-subscriber queue drops its
// oldest event on overflow and the client gets one "lagged" event
// carrying the dropped count; a client whose TCP window stays full
// past the stall deadline fails the deadline-bounded write and is
// disconnected.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id uint64) error {
	if s.hub == nil {
		return &httpError{status: http.StatusNotFound, code: "no_geofence_layer",
			err: fmt.Errorf("no geofence layer configured; start mogisd with -geofence-layer")}
	}
	// maxEvents lets scripted clients (curl transcripts, tests) bound
	// the stream; 0 streams until disconnect or shutdown.
	maxEvents := 0
	if v := r.URL.Query().Get("max_events"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return &httpError{status: http.StatusBadRequest, code: "bad_request",
				err: fmt.Errorf("parameter max_events: %q is not a non-negative integer", v)}
		}
		maxEvents = n
	}

	sub, err := s.hub.subscribe()
	if err != nil {
		return err
	}
	defer s.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	if err := s.flushSSE(rc, w, Event{Type: "hello", Seq: s.hub.seq.Load()}); err != nil {
		return err
	}

	heartbeat := s.cfg.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()

	ctx := r.Context()
	sent := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-s.hub.closed:
			// Drain what's pending, then say goodbye. Write errors on
			// the way out are moot — the stream is ending either way.
			evs, _ := sub.drain()
			for _, ev := range evs {
				if err := s.flushSSE(rc, w, ev); err != nil {
					return nil
				}
			}
			_ = s.flushSSE(rc, w, Event{Type: "shutdown"})
			return nil
		case <-tick.C:
			if err := s.writeDeadlined(rc, w, []byte(": ping\n\n")); err != nil {
				s.met.subscriberStall.Inc()
				return err
			}
		case <-sub.wake:
			if err := faultpoint.Hit(faultpoint.ServerSubscriber); err != nil {
				s.met.writeFaults.Inc()
				return err
			}
			evs, dropped := sub.drain()
			if dropped > 0 {
				s.met.subscriberLags.Inc()
				lag := Event{Type: "lagged", Dropped: dropped}
				if err := s.flushSSE(rc, w, lag); err != nil {
					s.met.subscriberStall.Inc()
					return err
				}
			}
			for _, ev := range evs {
				if err := s.flushSSE(rc, w, ev); err != nil {
					s.met.subscriberStall.Inc()
					return err
				}
				sent++
				if maxEvents > 0 && sent >= maxEvents {
					return nil
				}
			}
		}
	}
}

// flushSSE writes one SSE frame ("event: <type>" + JSON data) under
// the stall deadline and flushes it to the socket.
func (s *Server) flushSSE(rc *http.ResponseController, w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("encoding event: %w", err)
	}
	frame := make([]byte, 0, len(data)+32)
	frame = append(frame, "event: "...)
	frame = append(frame, ev.Type...)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	return s.writeDeadlined(rc, w, frame)
}

// writeDeadlined performs one deadline-bounded write + flush. The
// per-write deadline implements the stall half of the slow-consumer
// policy and deliberately overrides the server-wide WriteTimeout,
// which would otherwise kill every long-lived stream.
func (s *Server) writeDeadlined(rc *http.ResponseController, w http.ResponseWriter, frame []byte) error {
	stall := s.cfg.StallDeadline
	if stall <= 0 {
		stall = 5 * time.Second
	}
	if err := rc.SetWriteDeadline(time.Now().Add(stall)); err != nil {
		return fmt.Errorf("setting write deadline: %w", err)
	}
	if err := faultpoint.Hit(faultpoint.ServerWrite); err != nil {
		s.met.writeFaults.Inc()
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("writing frame: %w", err)
	}
	if err := rc.Flush(); err != nil {
		return fmt.Errorf("flushing frame: %w", err)
	}
	return nil
}
