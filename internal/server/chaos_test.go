package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mogis/internal/faultpoint"
)

// serverChaosSites maps each server/* faultpoint to the chaos cell
// that exercises it. Each cell runs under an armed site+mode and must
// leave the daemon able to serve the identical request afterwards.
var serverChaosSites = []string{
	faultpoint.ServerAccept,
	faultpoint.ServerWrite,
	faultpoint.ServerSubscriber,
	faultpoint.ServerShutdown,
}

// TestServerChaosCatalogCovered pins that this matrix exercises every
// server/* site in the faultpoint catalog.
func TestServerChaosCatalogCovered(t *testing.T) {
	want := map[string]bool{}
	for _, s := range serverChaosSites {
		want[s] = true
	}
	for _, name := range faultpoint.Catalog() {
		if !strings.HasPrefix(name, "server/") {
			continue
		}
		if !want[name] {
			t.Errorf("faultpoint %s has no chaos coverage in serverChaosSites", name)
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("chaos matrix lists %s, which is not in the catalog", name)
	}
}

// gateGoroutines fails the test if the goroutine count has not
// settled back near the baseline within 2s.
func gateGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines stranded: before=%d after=%d", before, n)
	}
}

// TestChaosServerAccept: injected accept failures in every mode are
// absorbed by the listener — counted, retried — and the daemon keeps
// accepting connections.
func TestChaosServerAccept(t *testing.T) {
	s, base := startServer(t, nil)
	baselineResp := httpGetBody(t, base+"/healthz")

	for _, mode := range []faultpoint.Mode{faultpoint.ModeError, faultpoint.ModePanic, faultpoint.ModeDelay} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			before := runtime.NumGoroutine()
			faultsBefore := s.met.acceptFaults.Value()
			// ArmOnce: the fault fires on the next two accept-loop
			// entries and then disarms itself; a permanently armed error
			// site would (correctly) absorb forever and accept nothing.
			faultpoint.ArmOnce(faultpoint.ServerAccept, mode, 5*time.Millisecond, 2)
			got := httpGetBody(t, base+"/healthz")
			if got != baselineResp {
				t.Errorf("response diverged under %s: %q vs %q", mode, got, baselineResp)
			}
			if mode != faultpoint.ModeDelay {
				// The loop was parked inside Accept when we armed, so the
				// injections fire after it hands off that connection and
				// loops back — poll for the absorbed-fault count.
				deadline := time.Now().Add(2 * time.Second)
				for s.met.acceptFaults.Value() == faultsBefore && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
				if s.met.acceptFaults.Value() == faultsBefore {
					t.Errorf("accept fault not counted under %s", mode)
				}
			}
			faultpoint.Reset()
			// Disarm-retry: identical request, identical answer.
			if got := httpGetBody(t, base+"/healthz"); got != baselineResp {
				t.Errorf("retry diverged: %q", got)
			}
			gateGoroutines(t, before)
		})
	}
}

// TestChaosServerWrite: a mid-write failure surfaces as a typed 500
// (error mode), a recovered panic (panic mode), or a slow-but-correct
// response (delay mode); after disarming the identical query succeeds.
func TestChaosServerWrite(t *testing.T) {
	s, _ := newTestServer(t, nil)
	baseline := do(s, "POST", "/query", geoQuery, nil)
	if baseline.Code != http.StatusOK {
		t.Fatal(baseline.Body.String())
	}
	// Responses embed a per-request id; compare the stable rendering.
	baseText := decodeQuery(t, baseline).Text

	for _, mode := range []faultpoint.Mode{faultpoint.ModeError, faultpoint.ModePanic, faultpoint.ModeDelay} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			before := runtime.NumGoroutine()
			faultpoint.Arm(faultpoint.ServerWrite, mode, 10*time.Millisecond)
			w := do(s, "POST", "/query", geoQuery, nil)
			faultpoint.Reset()
			switch mode {
			case faultpoint.ModeError:
				if w.Code != http.StatusInternalServerError {
					t.Fatalf("status %d, want 500", w.Code)
				}
				if e := decodeError(t, w); e.Code != "injected_fault" {
					t.Errorf("code %q", e.Code)
				}
			case faultpoint.ModePanic:
				if w.Code != http.StatusInternalServerError {
					t.Fatalf("status %d, want 500", w.Code)
				}
				if e := decodeError(t, w); e.Code != "panic" || e.ID == 0 {
					t.Errorf("panic body %+v", e)
				}
			case faultpoint.ModeDelay:
				if w.Code != http.StatusOK {
					t.Fatalf("delayed status %d", w.Code)
				}
				if got := decodeQuery(t, w).Text; got != baseText {
					t.Errorf("delayed response diverged: %q", got)
				}
			}
			// Disarm-retry must match the baseline rendering.
			w = do(s, "POST", "/query", geoQuery, nil)
			if w.Code != http.StatusOK {
				t.Fatalf("retry status %d after %s", w.Code, mode)
			}
			if got := decodeQuery(t, w).Text; got != baseText {
				t.Errorf("retry diverged after %s: %q", mode, got)
			}
			gateGoroutines(t, before)
		})
	}
}

// TestChaosServerSubscriber: a fault in the subscriber flush loop
// disconnects that subscriber per the slow-consumer policy — and only
// that subscriber; the hub, other clients and the daemon survive, and
// a reconnect works once disarmed.
func TestChaosServerSubscriber(t *testing.T) {
	s, base := startServer(t, nil)

	for _, mode := range []faultpoint.Mode{faultpoint.ModeError, faultpoint.ModePanic, faultpoint.ModeDelay} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			before := runtime.NumGoroutine()
			c := dialSSE(t, base, "")
			c.next(t) // hello
			waitSubs(t, s, 1)

			faultpoint.Arm(faultpoint.ServerSubscriber, mode, 10*time.Millisecond)
			s.hub.mu.Lock()
			s.hub.publishLocked(Event{Type: "enter", Table: "FMbus", Oid: 4242, Zone: 1})
			s.hub.mu.Unlock()

			if mode == faultpoint.ModeDelay {
				// Delay only: the event still arrives.
				typ, ev := c.next(t)
				if typ != "enter" || ev.Oid != 4242 {
					t.Fatalf("frame %s %+v", typ, ev)
				}
			} else {
				// Error/panic: the stream dies and the subscriber is
				// reaped from the hub.
				waitSubs(t, s, 0)
			}
			faultpoint.Reset()
			c.close()
			waitSubs(t, s, 0)

			// Disarmed retry: a fresh subscriber works end to end.
			c2 := dialSSE(t, base, "")
			c2.next(t) // hello
			waitSubs(t, s, 1)
			s.hub.mu.Lock()
			s.hub.publishLocked(Event{Type: "enter", Table: "FMbus", Oid: 4243, Zone: 2})
			s.hub.mu.Unlock()
			if typ, ev := c2.next(t); typ != "enter" || ev.Oid != 4243 {
				t.Fatalf("retry frame %s %+v", typ, ev)
			}
			c2.close()
			waitSubs(t, s, 0)
			gateGoroutines(t, before)
		})
	}
}

// TestChaosServerShutdown: injected faults in the drain sequence are
// absorbed in every mode — shutdown still drains subscribers, still
// completes, still leaves no goroutines behind.
func TestChaosServerShutdown(t *testing.T) {
	for _, mode := range []faultpoint.Mode{faultpoint.ModeError, faultpoint.ModePanic, faultpoint.ModeDelay} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			before := runtime.NumGoroutine()
			s, _ := newTestServer(t, nil)
			if err := s.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			base := "http://" + s.Addr()
			c := dialSSE(t, base, "")
			c.next(t) // hello
			waitSubs(t, s, 1)

			faultpoint.Arm(faultpoint.ServerShutdown, mode, 10*time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := s.Shutdown(ctx)
			cancel()
			faultpoint.Reset()
			if err != nil {
				t.Fatalf("shutdown under %s: %v", mode, err)
			}
			if mode != faultpoint.ModeDelay && s.met.shutdownFaults.Value() == 0 {
				t.Errorf("shutdown fault not counted under %s", mode)
			}
			if typ, _ := c.next(t); typ != "shutdown" {
				t.Errorf("subscriber missed the shutdown frame under %s: %q", mode, typ)
			}
			c.close()
			if n := s.Subscribers(); n != 0 {
				t.Errorf("%d subscribers after drain", n)
			}
			gateGoroutines(t, before)
		})
	}
}

// TestChaosShutdownRace: concurrent Shutdown calls and in-flight
// requests race cleanly — exactly one drain, no deadlock, no leaks.
func TestChaosShutdownRace(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := newTestServer(t, nil)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	stop := make(chan struct{})
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(geoQuery))
			if err != nil {
				return // listener is down: drain won the race
			}
			resp.Body.Close()
		}
	}()

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs <- s.Shutdown(ctx)
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent shutdown: %v", err)
		}
	}
	close(stop)
	<-reqDone
	gateGoroutines(t, before)
}

func decodeQuery(t *testing.T, w *httptest.ResponseRecorder) queryResponse {
	t.Helper()
	var q queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatalf("query body %q: %v", w.Body.String(), err)
	}
	return q
}

func waitSubs(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Subscribers() != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Subscribers(); got != want {
		t.Fatalf("subscribers = %d, want %d", got, want)
	}
}

// noKeepAlive dials a fresh connection per request, so every GET
// actually exercises the accept path (pooled keep-alive connections
// would bypass the listener entirely).
var noKeepAlive = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := noKeepAlive.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
