package server

import "mogis/internal/obs"

// The server's obs metric names. Constants so moglint's metricname
// analyzer can check shape and repo-wide uniqueness.
const (
	metricRequestsTotal     = "mogis_server_requests_total"
	metricAdmissionQueued   = "mogis_server_admission_queued_total"
	metricAdmissionShed     = "mogis_server_admission_shed_total"
	metricAcceptFaults      = "mogis_server_accept_faults_total"
	metricHandlerPanics     = "mogis_server_handler_panics_total"
	metricIngestRows        = "mogis_server_ingest_rows_total"
	metricEventsPublished   = "mogis_server_events_published_total"
	metricEventsDropped     = "mogis_server_events_dropped_total"
	metricSubscriberLags    = "mogis_server_subscriber_lags_total"
	metricSubscriberStalls  = "mogis_server_subscriber_stalls_total"
	metricSubscribersGauge  = "mogis_server_subscribers"
	metricDrainSeconds      = "mogis_server_drain_seconds"
	metricShutdownFaults    = "mogis_server_shutdown_faults_total"
	metricWriteFaults       = "mogis_server_write_faults_total"
	metricRequestsShedDrain = "mogis_server_drain_rejections_total"
)

// serverMetrics bundles the front door's instruments, resolved against
// one obs registry (obs.Default unless injected for a test).
type serverMetrics struct {
	requests        *obs.Counter // requests accepted into a handler
	admissionQueued *obs.Counter // requests that waited in the admission queue
	admissionShed   *obs.Counter // requests shed with 429/503 by admission
	acceptFaults    *obs.Counter // injected accept failures absorbed by the listener
	handlerPanics   *obs.Counter // panics recovered at the handler boundary
	ingestRows      *obs.Counter // position updates applied by /ingest
	eventsPublished *obs.Counter // geofence events fanned out to subscribers
	eventsDropped   *obs.Counter // events dropped by the slow-consumer policy
	subscriberLags  *obs.Counter // lagged notifications sent to slow consumers
	subscriberStall *obs.Counter // subscribers disconnected past the stall deadline
	subscribers     *obs.Gauge   // currently connected SSE subscribers
	drainSeconds    *obs.Histogram
	shutdownFaults  *obs.Counter // injected faults absorbed by the drain sequence
	writeFaults     *obs.Counter // injected mid-write failures surfaced to clients
	drainRejections *obs.Counter // requests rejected because the server is draining
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests:        reg.Counter(metricRequestsTotal, "requests accepted into a mogisd handler"),
		admissionQueued: reg.Counter(metricAdmissionQueued, "requests that waited in the admission queue"),
		admissionShed:   reg.Counter(metricAdmissionShed, "requests shed by admission control (429/503)"),
		acceptFaults:    reg.Counter(metricAcceptFaults, "injected accept failures absorbed by the listener"),
		handlerPanics:   reg.Counter(metricHandlerPanics, "panics recovered at the handler boundary"),
		ingestRows:      reg.Counter(metricIngestRows, "position updates applied by /ingest"),
		eventsPublished: reg.Counter(metricEventsPublished, "geofence events fanned out to subscribers"),
		eventsDropped:   reg.Counter(metricEventsDropped, "events dropped by the slow-consumer policy"),
		subscriberLags:  reg.Counter(metricSubscriberLags, "lagged notifications sent to slow consumers"),
		subscriberStall: reg.Counter(metricSubscriberStalls, "subscribers disconnected past the stall deadline"),
		subscribers:     reg.Gauge(metricSubscribersGauge, "currently connected SSE subscribers"),
		drainSeconds:    reg.Histogram(metricDrainSeconds, "graceful shutdown drain duration", nil),
		shutdownFaults:  reg.Counter(metricShutdownFaults, "injected faults absorbed by the drain sequence"),
		writeFaults:     reg.Counter(metricWriteFaults, "injected mid-write failures surfaced to clients"),
		drainRejections: reg.Counter(metricRequestsShedDrain, "requests rejected because the server is draining"),
	}
}
