// Package server is mogisd's hardened network front door: a stdlib
// net/http daemon exposing Piet-QL queries (POST /query), streamed
// position ingest (POST /ingest) and a geofence event stream
// (GET /events, Server-Sent Events), alongside the telemetry surface
// (/metrics, /debug/*) on the same mux.
//
// The robustness layer is the point, not an afterthought:
//
//   - Admission control: at most MaxInFlight requests execute; at most
//     MaxQueue more wait, deadline-aware, for at most QueueWait. Excess
//     load is shed with 429/503 + Retry-After, never queued unbounded.
//   - Typed failures: every pipeline error class maps to a documented
//     status code (DESIGN.md §15) — parse 400, eval 422, budget 413/422,
//     deadline 408, client-gone 499, recovered panic 500 with query id.
//   - Panic isolation: a handler panic is recovered at the endpoint
//     boundary, recorded, and cannot take the daemon down.
//   - Graceful shutdown: stop accepting, flush every SSE subscriber a
//     shutdown event, drain in-flight work within DrainBudget, then
//     hard-close stragglers.
//
// Both *core.Engine and *core.ShardedEngine serve behind core.Querier;
// the server never knows which. Every request produces one telemetry
// QueryRecord (ops http_query / http_ingest / http_events).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mogis/internal/core"
	"mogis/internal/faultpoint"
	"mogis/internal/layer"
	"mogis/internal/obs"
	"mogis/internal/pietql"
	"mogis/internal/qerr"
	"mogis/internal/telemetry"
	"mogis/internal/telemetry/telhttp"
)

// The server's telemetry op names, one per endpoint.
const (
	opHTTPQuery  = "http_query"
	opHTTPIngest = "http_ingest"
	opHTTPEvents = "http_events"
)

// OutcomeShed is the telemetry outcome for requests rejected by
// admission control or the draining gate before any work ran.
const OutcomeShed = telemetry.Outcome("shed")

// Config assembles a Server. Zero values select the documented
// defaults; System is the only required field.
type Config struct {
	// System runs the Piet-QL pipeline; its Engine may be a
	// *core.Engine or a *core.ShardedEngine.
	System *pietql.System
	// Telemetry receives one QueryRecord per request; nil falls back
	// to telemetry.Default().
	Telemetry *telemetry.Collector
	// Registry receives the server's obs metrics (nil = obs.Default).
	Registry *obs.Registry

	// GeofenceLayer names the polygon layer /events watches; ""
	// disables the event stream (404 no_geofence_layer).
	GeofenceLayer string

	// Admission control.
	MaxInFlight int           // concurrent admitted requests (default 64)
	MaxQueue    int           // bounded wait queue (default 128)
	QueueWait   time.Duration // max queue wait (default 2s)
	RetryAfter  time.Duration // Retry-After hint on 429/503 (default 1s)

	// QueryTimeout bounds /query requests that bring no timeout of
	// their own (0 = unbounded).
	QueryTimeout time.Duration

	// Subscriber policy.
	SubscriberQueue int           // per-client event queue (default 64)
	MaxSubscribers  int           // concurrent SSE clients (default 10000)
	StallDeadline   time.Duration // per-write deadline (default 5s)
	Heartbeat       time.Duration // SSE keepalive period (default 15s)

	// DrainBudget bounds graceful shutdown before stragglers are
	// hard-closed (default 10s; a Shutdown ctx deadline wins if sooner).
	DrainBudget time.Duration

	// Listener hardening.
	ReadHeaderTimeout time.Duration // default 5s
	WriteTimeout      time.Duration // default 30s (SSE writes override per-write)
	MaxHeaderBytes    int           // default 1 MiB
}

// Server is one mogisd instance: mux, admission gate, geofence hub and
// the drain machinery.
type Server struct {
	cfg Config
	sys *pietql.System
	tel *telemetry.Collector
	met *serverMetrics
	adm *admission
	hub *hub
	mux *http.ServeMux

	// ingestMu serializes copy-on-write table replacement per batch.
	ingestMu sync.Mutex

	nextID   atomic.Uint64
	draining atomic.Bool

	srv  *http.Server
	ln   net.Listener
	addr string
}

// New assembles a Server from cfg. It does not listen; call Start, or
// mount Handler on a listener of your own.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("server: Config.System is required")
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Default()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	} else if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 128
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DrainBudget <= 0 {
		cfg.DrainBudget = 10 * time.Second
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.MaxHeaderBytes <= 0 {
		cfg.MaxHeaderBytes = 1 << 20
	}

	s := &Server{
		cfg: cfg,
		sys: cfg.System,
		tel: tel,
		met: newServerMetrics(reg),
	}
	s.adm = newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait, s.met)

	if cfg.GeofenceLayer != "" {
		lyr, ok := cfg.System.Ctx.GIS().Layer(cfg.GeofenceLayer)
		if !ok {
			return nil, fmt.Errorf("server: geofence layer %q not in the GIS dimension", cfg.GeofenceLayer)
		}
		if lyr.Count(layer.KindPolygon) == 0 {
			return nil, fmt.Errorf("server: geofence layer %q has no polygons", cfg.GeofenceLayer)
		}
		s.hub = newHub(cfg.GeofenceLayer, lyr, cfg.SubscriberQueue, cfg.MaxSubscribers, s.met)
	}

	mux := http.NewServeMux()
	mux.Handle("POST /query", s.endpoint(opHTTPQuery, true, (*Server).handleQuery))
	mux.Handle("POST /ingest", s.endpoint(opHTTPIngest, true, (*Server).handleIngest))
	// /events is capped by MaxSubscribers, not admission: a long-lived
	// stream parked in an admission slot would starve queries.
	mux.Handle("GET /events", s.endpoint(opHTTPEvents, false, (*Server).handleEvents))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Everything else — /metrics, /debug/stats, /debug/queries,
	// /debug/traces, /debug/vars — is the telemetry surface.
	mux.Handle("/", telhttp.Handler(tel))
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's full mux (endpoints + telemetry).
func (s *Server) Handler() http.Handler { return s.mux }

// Hub exposes the subscriber count for health checks and tests.
func (s *Server) Subscribers() int {
	if s.hub == nil {
		return 0
	}
	return s.hub.subscriberCount()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Addr returns the bound address after Start (":0" resolved).
func (s *Server) Addr() string { return s.addr }

// handlerFunc is one endpoint body; id is the request's query id,
// echoed in error bodies and panic records.
type handlerFunc func(s *Server, w http.ResponseWriter, r *http.Request, id uint64) error

// errorResponse is the JSON error body every endpoint shares.
type errorResponse struct {
	ID    uint64 `json:"id"`
	Code  string `json:"code"`
	Error string `json:"error"`
}

// endpoint wraps a handler body with the robustness layer: draining
// gate, admission, panic isolation, typed-error rendering and exactly
// one telemetry record per request.
func (s *Server) endpoint(op string, admit bool, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextID.Add(1)
		start := time.Now()

		if s.draining.Load() {
			s.met.drainRejections.Inc()
			s.writeError(w, r, id, errDraining)
			s.record(op, r, start, errDraining, OutcomeShed)
			return
		}
		if admit {
			if err := s.adm.acquire(r.Context()); err != nil {
				s.writeError(w, r, id, err)
				s.record(op, r, start, err, OutcomeShed)
				return
			}
			defer s.adm.release()
		}

		s.met.requests.Inc()
		rw := &respWriter{ResponseWriter: w}
		err, panicked := s.invoke(h, rw, r, id)
		// Snapshot before rendering the error: writeError marks the
		// response started, but that write is complete and well-formed.
		handlerWrote := rw.wrote
		if err != nil && !handlerWrote {
			s.writeError(rw, r, id, err)
		}
		s.record(op, r, start, err, "")
		if panicked && handlerWrote {
			// The response is already partially on the wire; the only
			// honest signal left is killing the connection.
			panic(http.ErrAbortHandler)
		}
	})
}

// invoke runs the handler body with panic isolation. A recovered panic
// becomes a typed qerr panic error carrying the query id, so the 500
// body and the telemetry record both name the failed request.
func (s *Server) invoke(h handlerFunc, w http.ResponseWriter, r *http.Request, id uint64) (err error, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.met.handlerPanics.Inc()
			err = qerr.NewPanic(fmt.Sprintf("server/handler query %d", id), v)
			panicked = true
		}
	}()
	return h(s, w, r, id), false
}

// writeError renders err's typed status + JSON body. Load-shedding
// statuses carry Retry-After so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, id uint64, err error) {
	status, code := statusFor(r, err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	_ = writeJSON(w, status, errorResponse{ID: id, Code: code, Error: err.Error()})
}

// record emits the request's QueryRecord. forced overrides the
// error-derived outcome (used for shed requests, which never ran).
func (s *Server) record(op string, r *http.Request, start time.Time, err error, forced telemetry.Outcome) {
	if !s.tel.Enabled() {
		return
	}
	rec := telemetry.QueryRecord{
		Op:       op,
		Table:    r.URL.Query().Get("table"),
		Start:    start,
		Duration: time.Since(start),
		Outcome:  classifyOutcome(err),
	}
	if forced != "" {
		rec.Outcome = forced
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.tel.Record(rec)
}

// classifyOutcome mirrors the pipeline's telemetry classification for
// errors surfacing at the HTTP layer.
func classifyOutcome(err error) telemetry.Outcome {
	var be *core.BudgetError
	var he *httpError
	switch {
	case err == nil:
		return telemetry.OutcomeOK
	case pietql.IsParseError(err):
		return pietql.OutcomeParseError
	case errors.As(err, &be):
		if be.Resource == "rows" {
			return telemetry.OutcomeBudgetRows
		}
		return telemetry.OutcomeBudgetResults
	case qerr.IsCancel(err):
		return telemetry.OutcomeCancelled
	case qerr.IsPanic(err):
		return telemetry.OutcomePanic
	case errors.As(err, &he) && he.status < http.StatusInternalServerError:
		return pietql.OutcomeParseError
	}
	return telemetry.OutcomeError
}

// handleHealthz reports liveness plus the load-relevant gauges.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	_ = writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"in_flight":   s.adm.inFlight(),
		"queued":      s.adm.queued(),
		"subscribers": s.Subscribers(),
	})
}

// respWriter tracks whether the response has started, so the endpoint
// wrapper knows if a typed error body is still possible. Unwrap keeps
// http.ResponseController (per-write deadlines, flush) working.
type respWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *respWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *respWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// faultListener wraps the accept loop with the server/accept chaos
// site. Injected faults are absorbed — counted, briefly backed off,
// retried — because http.Server.Serve treats accept errors as fatal
// and a chaos probe must not take the listener down.
type faultListener struct {
	net.Listener
	met *serverMetrics
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		if err := hitRecovered(faultpoint.ServerAccept); err != nil {
			l.met.acceptFaults.Inc()
			time.Sleep(time.Millisecond)
			continue
		}
		return l.Listener.Accept()
	}
}

// hitRecovered fires a faultpoint, converting a panic-mode injection
// into an error so infrastructure loops (accept, shutdown) can absorb
// every mode instead of crashing the daemon.
func hitRecovered(site string) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = qerr.NewPanic(site, v)
		}
	}()
	return faultpoint.Hit(site)
}

// Start listens on addr and serves in the background until Shutdown.
// The http.Server is hardened: header-read and write timeouts plus a
// header-size cap, so a slowloris peer cannot park a connection
// forever (SSE streams extend their own write deadlines per write).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = &faultListener{Listener: ln, met: s.met}
	s.addr = ln.Addr().String()
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	// The accept loop lives until Shutdown/Close stops the listener;
	// Serve's return value is the ErrServerClosed it reports then.
	go func() { _ = s.srv.Serve(s.ln) }() //moglint:detached
	return nil
}

// Shutdown drains the daemon: flip the draining gate (new work is
// rejected 503), fire the server/shutdown chaos site (faults are
// absorbed — drain must proceed), wake every SSE subscriber with a
// shutdown event, then drain in-flight requests within the budget.
// Stragglers past the budget are hard-closed. Idempotent; the first
// caller does the work.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	start := time.Now()
	if err := hitRecovered(faultpoint.ServerShutdown); err != nil {
		s.met.shutdownFaults.Inc()
	}
	if s.hub != nil {
		s.hub.close()
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainBudget)
		defer cancel()
	}
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
		if err != nil {
			// Budget exhausted with requests still in flight: hard-close.
			closeErr := s.srv.Close()
			err = fmt.Errorf("server: drain budget exceeded, hard-closed: %w", errors.Join(err, closeErr))
		}
	}
	if s.hub != nil && !s.awaitSubscribers(s.cfg.DrainBudget) {
		err = errors.Join(err, errors.New("server: subscribers still draining past budget"))
	}
	s.met.drainSeconds.Observe(time.Since(start).Seconds())
	return err
}

// awaitSubscribers waits (bounded) for every subscriber handler to
// observe the drain signal and exit.
func (s *Server) awaitSubscribers(d time.Duration) bool {
	done := make(chan struct{})
	go func() { s.hub.drainWG.Wait(); close(done) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}
