package server

import (
	"context"
	"errors"
	"time"
)

// Admission errors, mapped to load-shedding status codes by the
// endpoint wrapper: a full queue sheds immediately with 429, a request
// that waited its whole queue budget without getting a slot sheds with
// 503. Both carry Retry-After.
var (
	errQueueFull   = errors.New("server: admission queue full")
	errQueueWait   = errors.New("server: timed out waiting for an admission slot")
	errDraining    = errors.New("server: draining, not accepting new work")
	errSubsAtLimit = errors.New("server: subscriber limit reached")
)

// admission is the front door's concurrency gate: at most maxInFlight
// requests execute at once, at most maxQueue more wait — each for at
// most maxWait, observing its own request context the whole time, so a
// client that gives up (or whose deadline passes) leaves the queue
// immediately instead of holding a queue slot for work nobody wants.
type admission struct {
	slots   chan struct{}
	queue   chan struct{}
	maxWait time.Duration
	met     *serverMetrics
}

func newAdmission(maxInFlight, maxQueue int, maxWait time.Duration, met *serverMetrics) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, maxQueue),
		maxWait: maxWait,
		met:     met,
	}
}

// acquire admits the request or reports why it was shed. The fast path
// costs one channel operation; the queued path counts toward the
// bounded wait queue and races the slot against the request context
// and the queue-wait deadline.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.met.admissionShed.Inc()
		return errQueueFull
	}
	defer func() { <-a.queue }()
	a.met.admissionQueued.Inc()
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		a.met.admissionShed.Inc()
		return errQueueWait
	}
}

// release frees the admitted request's slot.
func (a *admission) release() { <-a.slots }

// inFlight reports the currently admitted request count (telemetry).
func (a *admission) inFlight() int { return len(a.slots) }

// queued reports the currently waiting request count (telemetry).
func (a *admission) queued() int { return len(a.queue) }
