package server

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mogis/internal/faultpoint"
	"mogis/internal/obs"
	"mogis/internal/telemetry"
)

// Test queries against the paper scenario. The MO query traverses the
// engine's LIT-build path, so arming core faultpoints drives the
// typed-error status mapping end to end.
const (
	geoQuery = `SELECT layer.Ln; FROM PietSchema;`
	moQuery  = `SELECT layer.Ln; FROM PietSchema; | | MOVING COUNT(*) FROM FMbus WHERE PASSES THROUGH layer.Ln`
)

// newTestServer builds a Server over the paper scenario (no overlay —
// naive geometry keeps setup fast) with an isolated telemetry
// collector and metrics registry, mutated by mod before assembly.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *telemetry.Collector) {
	t.Helper()
	tel := telemetry.New(telemetry.Config{})
	sys, err := NewSystem(SystemConfig{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		System:        sys,
		Telemetry:     tel,
		Registry:      obs.NewRegistry(),
		GeofenceLayer: "Ln",
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, tel
}

// do runs one request through the full mux and returns the recorder.
func do(s *Server, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body %q: %v", w.Body.String(), err)
	}
	return e
}

func TestQueryOK(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := do(s, "POST", "/query", geoQuery, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.GeoIDs["Ln"]) == 0 {
		t.Errorf("no geo ids in %+v", resp)
	}
	if resp.ID == 0 {
		t.Error("query id missing")
	}
}

func TestQueryJSONBodyAndBudgets(t *testing.T) {
	s, _ := newTestServer(t, nil)
	body := `{"query": "SELECT layer.Ln; FROM PietSchema;", "max_rows": 100000, "timeout_ms": 5000}`
	w := do(s, "POST", "/query", body, map[string]string{"Content-Type": "application/json"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// TestQueryStatusMapping pins the typed-error → status-code contract
// from DESIGN.md §15.
func TestQueryStatusMapping(t *testing.T) {
	s, _ := newTestServer(t, nil)

	cases := []struct {
		name   string
		target string
		body   string
		arm    func()
		status int
		code   string
	}{
		{
			name: "parse error", target: "/query",
			body:   `MOVING COUNT(*) FROM FMbus`,
			status: http.StatusBadRequest, code: "parse_error",
		},
		{
			name: "eval error", target: "/query",
			body:   `SELECT layer.Ln; FROM WrongSchema;`,
			status: http.StatusUnprocessableEntity, code: "eval_error",
		},
		{
			name: "empty query", target: "/query",
			body:   "",
			status: http.StatusBadRequest, code: "bad_request",
		},
		{
			name: "bad format", target: "/query?format=xml",
			body:   geoQuery,
			status: http.StatusBadRequest, code: "bad_request",
		},
		{
			name: "budget rows", target: "/query?max_rows=1",
			body:   moQuery,
			status: http.StatusUnprocessableEntity, code: "budget_rows",
		},
		{
			name: "budget results", target: "/query?max_results=1",
			body:   moQuery,
			status: http.StatusRequestEntityTooLarge, code: "budget_results",
		},
		{
			name: "deadline", target: "/query?timeout_ms=5",
			body:   moQuery,
			arm:    func() { faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeDelay, 50*time.Millisecond) },
			status: http.StatusRequestTimeout, code: "deadline",
		},
		{
			name: "engine panic", target: "/query",
			body:   moQuery,
			arm:    func() { faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModePanic, 0) },
			status: http.StatusInternalServerError, code: "panic",
		},
		{
			name: "injected fault", target: "/query",
			body:   moQuery,
			arm:    func() { faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModeError, 0) },
			status: http.StatusInternalServerError, code: "injected_fault",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Cached trajectories would skip the armed build site.
			s.sys.Engine.ResetCache()
			if tc.arm != nil {
				tc.arm()
				defer faultpoint.Reset()
			}
			w := do(s, "POST", tc.target, tc.body, nil)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if e := decodeError(t, w); e.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", e.Code, tc.code, e.Error)
			}
		})
	}

	// After every failure mode: disarmed retry answers correctly.
	faultpoint.Reset()
	w := do(s, "POST", "/query", moQuery, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("retry after faults: status %d: %s", w.Code, w.Body.String())
	}
}

func TestQueryClientCancel499(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest("POST", "/query", strings.NewReader(moQuery)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != statusCodeClientClosed {
		t.Fatalf("status %d, want 499: %s", w.Code, w.Body.String())
	}
	if e := decodeError(t, w); e.Code != "client_closed_request" {
		t.Errorf("code %q", e.Code)
	}
}

func TestQueryCSV(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := do(s, "POST", "/query?format=csv", geoQuery, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	rows, err := csv.NewReader(w.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 || rows[0][0] != "section" {
		t.Fatalf("csv rows: %v", rows)
	}
	geo := 0
	for _, row := range rows[1:] {
		if row[0] == "geo" && row[1] == "Ln" {
			geo++
		}
	}
	if geo == 0 {
		t.Errorf("no geo rows in %v", rows)
	}
}

func TestQueryTextFormat(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := do(s, "POST", "/query?format=text", geoQuery, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "Ln:") {
		t.Fatalf("status %d body %q", w.Code, w.Body.String())
	}
}

// TestIngestInvalidatesCaches proves live ingest is visible to
// queries on both engine shapes: the MO count changes after new
// trajectory rows arrive, which requires the copy-on-write table swap
// AND the trajectory-cache invalidation to both work.
func TestIngestInvalidatesCaches(t *testing.T) {
	for _, shards := range []int{0, 3} {
		name := "unsharded"
		if shards > 1 {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			s, _ := newTestServer(t, func(c *Config) {
				sys, err := NewSystem(SystemConfig{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				c.System = sys
			})

			count := func() int {
				w := do(s, "POST", "/query", moQuery, nil)
				if w.Code != http.StatusOK {
					t.Fatalf("query: %d %s", w.Code, w.Body.String())
				}
				var resp queryResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				if !resp.HasMO {
					t.Fatal("no MO result")
				}
				return resp.MOCount
			}

			before := count()
			// A brand-new object crossing neighborhood polygons.
			batch := "9001,10,0.5,0.5\n9001,20,3.5,0.5\n9001,30,3.5,3.5\n"
			w := do(s, "POST", "/ingest?table=FMbus", batch, nil)
			if w.Code != http.StatusOK {
				t.Fatalf("ingest: %d %s", w.Code, w.Body.String())
			}
			var ir ingestResponse
			if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
				t.Fatal(err)
			}
			if ir.Rows != 3 {
				t.Errorf("rows = %d, want 3", ir.Rows)
			}
			after := count()
			if after <= before {
				t.Errorf("MO count %d -> %d; ingest invisible to queries (stale caches?)", before, after)
			}
		})
	}
}

func TestIngestErrors(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for _, tc := range []struct {
		name, target, body string
		status             int
		code               string
	}{
		{"unknown table", "/ingest?table=Nope", "1,2,3,4\n", http.StatusNotFound, "unknown_table"},
		{"missing table", "/ingest", "1,2,3,4\n", http.StatusBadRequest, "bad_request"},
		{"bad line", "/ingest?table=FMbus", "1,2,three,4\n", http.StatusBadRequest, "bad_request"},
		{"empty batch", "/ingest?table=FMbus", "# nothing\n", http.StatusBadRequest, "bad_request"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, "POST", tc.target, tc.body, nil)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if e := decodeError(t, w); e.Code != tc.code {
				t.Errorf("code %q, want %q", e.Code, tc.code)
			}
		})
	}
}

// TestTelemetryPerRequest pins the one-QueryRecord-per-request
// contract, including shed requests.
func TestTelemetryPerRequest(t *testing.T) {
	s, tel := newTestServer(t, nil)
	do(s, "POST", "/query", geoQuery, nil)
	do(s, "POST", "/query", "MOVING nonsense", nil)
	do(s, "POST", "/ingest?table=FMbus", "77,5,0.1,0.1\n", nil)

	// The pipeline emits its own pietql_query records to the same
	// collector; only the per-request http_* records are under test.
	ops := map[string]int{}
	outcomes := map[telemetry.Outcome]int{}
	for _, rec := range tel.Recent(0) {
		if !strings.HasPrefix(rec.Op, "http_") {
			continue
		}
		ops[rec.Op]++
		outcomes[rec.Outcome]++
	}
	if ops[opHTTPQuery] != 2 || ops[opHTTPIngest] != 1 {
		t.Errorf("ops = %v, want 2 http_query + 1 http_ingest", ops)
	}
	if outcomes[telemetry.OutcomeOK] != 2 || outcomes["parse_error"] != 1 {
		t.Errorf("outcomes = %v", outcomes)
	}
}

// TestPanicIsolation: a panicking handler yields a typed 500 carrying
// the query id and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	s.sys.Engine.ResetCache()
	faultpoint.Arm(faultpoint.CoreLITBuild, faultpoint.ModePanic, 0)
	w := do(s, "POST", "/query", moQuery, nil)
	faultpoint.Reset()
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", w.Code)
	}
	e := decodeError(t, w)
	if e.ID == 0 {
		t.Error("500 body does not carry the query id")
	}
	// The daemon is still alive and correct.
	if w := do(s, "POST", "/query", moQuery, nil); w.Code != http.StatusOK {
		t.Fatalf("after panic: %d %s", w.Code, w.Body.String())
	}
}

// TestTelemetrySurfaceSameMux: /metrics and /debug/* ride the daemon
// mux.
func TestTelemetrySurfaceSameMux(t *testing.T) {
	s, _ := newTestServer(t, nil)
	do(s, "POST", "/query", geoQuery, nil)
	for _, target := range []string{"/metrics", "/debug/stats", "/debug/queries", "/debug/vars", "/healthz"} {
		w := do(s, "GET", target, "", nil)
		if w.Code != http.StatusOK {
			t.Errorf("%s: status %d", target, w.Code)
		}
	}
	w := do(s, "GET", "/debug/stats", "", nil)
	if !strings.Contains(w.Body.String(), "goroutines") {
		t.Errorf("/debug/stats missing runtime view: %s", w.Body.String())
	}
}

// TestDrainingRejects: after Shutdown begins, new work is shed with
// 503/draining.
func TestDrainingRejects(t *testing.T) {
	s, tel := newTestServer(t, nil)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := do(s, "POST", "/query", geoQuery, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if e := decodeError(t, w); e.Code != "draining" {
		t.Errorf("code %q", e.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	found := false
	for _, rec := range tel.Recent(0) {
		if rec.Outcome == OutcomeShed {
			found = true
		}
	}
	if !found {
		t.Error("shed request not recorded in telemetry")
	}
}
