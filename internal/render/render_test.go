package render

import (
	"strings"
	"testing"

	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/workload"
)

func TestSVGDataset(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 3, Cols: 3, Rows: 3, Schools: 2, Stores: 2})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 3, Objects: 4, Samples: 10})
	shade := func(id layer.Gid) float64 {
		name, ok := city.Ln.AlphaInverse("neighb", id)
		if !ok {
			return 0
		}
		v, _ := city.Neighborhoods.Attr("neighborhood", olap.Member(name), "income")
		income, _ := v.Num()
		if income < 1500 {
			return 0.8
		}
		return 0.1
	}
	svg := SVG(city.Ln, []*layer.Layer{city.Lr, city.Lh}, []*layer.Layer{city.Ls, city.Lstores}, fm,
		Options{Width: 600, Shade: shade})
	for _, want := range []string{"<svg", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polygon"); got != 9 {
		t.Errorf("polygons = %d", got)
	}
	// Streets (9) + river (1) + 4 trajectories = 14 polylines.
	if got := strings.Count(svg, "<polyline"); got != 4+4+1+4 {
		t.Errorf("polylines = %d", got)
	}
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("circles = %d", got)
	}
	// Shading distinguishes low- and high-income polygons.
	if !strings.Contains(svg, "rgb(144,144,144)") && !strings.Contains(svg, "rgb(240,240,240)") {
		t.Error("expected both shade levels")
	}
}

func TestSVGOptions(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 3, Cols: 2, Rows: 2})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 3, Objects: 5, Samples: 5})
	// MaxObjects negative draws no trajectories.
	svg := SVG(city.Ln, nil, nil, fm, Options{MaxObjects: -1})
	if strings.Count(svg, "<polyline") != 0 {
		t.Error("trajectories drawn despite MaxObjects < 0")
	}
	// Cap at 2.
	svg = SVG(city.Ln, nil, nil, fm, Options{MaxObjects: 2})
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("capped trajectories = %d", got)
	}
	// Empty everything.
	empty := SVG(layer.New("E"), nil, nil, nil, Options{})
	if !strings.Contains(empty, "<svg") {
		t.Error("empty render")
	}
}
