// Package render draws model instances as standalone SVG documents:
// polygon layers shaded by a numeric attribute, polyline and node
// layers, and moving-object trajectories. cmd/moviz uses it for
// loaded datasets; the paper-exact Figure-1 rendering lives in
// package scenario.
package render

import (
	"fmt"
	"math"
	"strings"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/moft"
)

// Options configures an SVG rendering.
type Options struct {
	// Width is the target document width in pixels (default 800).
	Width float64
	// Shade maps a polygon id to a fill intensity in [0,1] (0 = light,
	// 1 = dark); nil shades nothing.
	Shade func(layer.Gid) float64
	// MaxObjects caps how many trajectories are drawn (default 50; 0
	// keeps the default, negative draws none).
	MaxObjects int
}

// SVG renders the layers and the optional MOFT. Polygons come from
// pgLayer (required); plLayers and ndLayers may be nil or empty.
func SVG(pgLayer *layer.Layer, plLayers, ndLayers []*layer.Layer, fm *moft.Table, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 800
	}
	maxObjects := opts.MaxObjects
	switch {
	case maxObjects == 0:
		maxObjects = 50
	case maxObjects < 0:
		maxObjects = 0
	}

	extent := pgLayer.BBox()
	for _, l := range plLayers {
		extent = extent.Union(l.BBox())
	}
	for _, l := range ndLayers {
		extent = extent.Union(l.BBox())
	}
	if fm != nil {
		extent = extent.Union(fm.BBox())
	}
	if extent.IsEmpty() {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>` + "\n"
	}
	scale := opts.Width / extent.Width()
	w := opts.Width
	h := extent.Height() * scale
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - extent.MinX) * scale, h - (p.Y-extent.MinY)*scale
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Polygons, shaded.
	for _, id := range pgLayer.IDs(layer.KindPolygon) {
		pg, _ := pgLayer.Polygon(id)
		intensity := 0.0
		if opts.Shade != nil {
			intensity = math.Max(0, math.Min(1, opts.Shade(id)))
		}
		gray := int(240 - intensity*120)
		sb.WriteString(`<polygon points="`)
		for i, p := range pg.Shell {
			if i > 0 {
				sb.WriteByte(' ')
			}
			x, y := tx(p)
			fmt.Fprintf(&sb, "%.1f,%.1f", x, y)
		}
		fmt.Fprintf(&sb, `" fill="rgb(%d,%d,%d)" stroke="black" stroke-width="0.7"/>`+"\n", gray, gray, gray)
	}

	// Polyline layers (rivers, streets).
	colors := []string{"#3b6fd4", "#888888", "#7a5230"}
	for li, l := range plLayers {
		color := colors[li%len(colors)]
		for _, id := range l.IDs(layer.KindPolyline) {
			pl, _ := l.Polyline(id)
			sb.WriteString(`<polyline points="`)
			for i, p := range pl {
				if i > 0 {
					sb.WriteByte(' ')
				}
				x, y := tx(p)
				fmt.Fprintf(&sb, "%.1f,%.1f", x, y)
			}
			fmt.Fprintf(&sb, `" fill="none" stroke="%s" stroke-width="2"/>`+"\n", color)
		}
	}

	// Node layers (schools, stores).
	markers := []string{"#111111", "#b03030", "#2f8f2f"}
	for li, l := range ndLayers {
		color := markers[li%len(markers)]
		for _, id := range l.IDs(layer.KindNode) {
			p, _ := l.Node(id)
			x, y := tx(p)
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", x, y, color)
		}
	}

	// Trajectories.
	if fm != nil && maxObjects > 0 {
		trajColors := []string{"#d43b3b", "#3bd46f", "#d4a23b", "#8f3bd4", "#3bcdd4", "#d43b9e"}
		for i, oid := range fm.Objects() {
			if i >= maxObjects {
				break
			}
			color := trajColors[i%len(trajColors)]
			tps := fm.ObjectTuples(oid)
			sb.WriteString(`<polyline points="`)
			for j, tp := range tps {
				if j > 0 {
					sb.WriteByte(' ')
				}
				x, y := tx(tp.Point())
				fmt.Fprintf(&sb, "%.1f,%.1f", x, y)
			}
			fmt.Fprintf(&sb, `" fill="none" stroke="%s" stroke-width="1" opacity="0.7"/>`+"\n", color)
		}
	}

	sb.WriteString("</svg>\n")
	return sb.String()
}
