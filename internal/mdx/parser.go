package mdx

import (
	"fmt"
	"strings"
)

// Parse parses an MDX query of the form
//
//	SELECT { set } ON COLUMNS [ , { set } ON ROWS ]
//	FROM [cube]
//	[ WHERE ( tuple ) ]
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("mdx: expected %v at position %d, got %v %q", kind, t.pos, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("mdx: expected %q at position %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	// First axis.
	axis1, name1, err := p.parseAxis()
	if err != nil {
		return nil, err
	}
	if err := assignAxis(q, axis1, name1); err != nil {
		return nil, err
	}
	// Optional second axis.
	if p.peek().kind == tokComma {
		p.next()
		axis2, name2, err := p.parseAxis()
		if err != nil {
			return nil, err
		}
		if err := assignAxis(q, axis2, name2); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	cube, err := p.parseName()
	if err != nil {
		return nil, err
	}
	q.Cube = cube
	// Optional WHERE slicer.
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "WHERE") {
		p.next()
		slicer, err := p.parseTuple()
		if err != nil {
			return nil, err
		}
		q.Slicer = slicer
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("mdx: trailing input at position %d: %q", t.pos, t.text)
	}
	return q, nil
}

func assignAxis(q *Query, set []MemberExpr, name string) error {
	switch strings.ToUpper(name) {
	case "COLUMNS":
		if q.Columns != nil {
			return fmt.Errorf("mdx: COLUMNS axis specified twice")
		}
		q.Columns = set
	case "ROWS":
		if q.Rows != nil {
			return fmt.Errorf("mdx: ROWS axis specified twice")
		}
		q.Rows = set
	default:
		return fmt.Errorf("mdx: unknown axis %q (want COLUMNS or ROWS)", name)
	}
	return nil
}

// parseAxis parses "{ set } ON COLUMNS|ROWS".
func (p *parser) parseAxis() ([]MemberExpr, string, error) {
	set, err := p.parseSet()
	if err != nil {
		return nil, "", err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, "", err
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, "", err
	}
	return set, t.text, nil
}

// parseSet parses "{ member, member, ... }".
func (p *parser) parseSet() ([]MemberExpr, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []MemberExpr
	for {
		m, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return out, nil
}

// parseTuple parses "( member, member, ... )".
func (p *parser) parseTuple() ([]MemberExpr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []MemberExpr
	for {
		m, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return out, nil
}

// parseMember parses "[a].[b]", "[a].[b].[c]" or "[a].[b].Members".
func (p *parser) parseMember() (MemberExpr, error) {
	var parts []string
	allMembers := false
	t, err := p.expect(tokBracketed)
	if err != nil {
		return MemberExpr{}, err
	}
	parts = append(parts, t.text)
	for p.peek().kind == tokDot {
		p.next()
		nt := p.next()
		switch {
		case nt.kind == tokBracketed:
			parts = append(parts, nt.text)
		case nt.kind == tokIdent && strings.EqualFold(nt.text, "Members"):
			allMembers = true
		default:
			return MemberExpr{}, fmt.Errorf("mdx: expected bracketed name or Members at position %d, got %q", nt.pos, nt.text)
		}
		if allMembers {
			break
		}
	}
	m := MemberExpr{Dimension: parts[0], AllMembers: allMembers}
	switch len(parts) {
	case 1:
		// [Measures] alone is invalid; [dim].Members without a level is
		// rejected too.
		if !allMembers {
			return MemberExpr{}, fmt.Errorf("mdx: member %q needs a level or member part", parts[0])
		}
		return MemberExpr{}, fmt.Errorf("mdx: [%s].Members needs a level", parts[0])
	case 2:
		if m.IsMeasure() {
			m.Member = parts[1] // [Measures].[population]
		} else {
			m.Level = parts[1] // [dim].[level](.Members)
			if !allMembers {
				return MemberExpr{}, fmt.Errorf("mdx: [%s].[%s] needs .Members or a member", parts[0], parts[1])
			}
		}
	case 3:
		m.Level = parts[1]
		m.Member = parts[2]
		if allMembers {
			return MemberExpr{}, fmt.Errorf("mdx: cannot combine explicit member with .Members")
		}
	default:
		return MemberExpr{}, fmt.Errorf("mdx: too many name parts in member expression")
	}
	return m, nil
}

// parseName parses a cube name: either [bracketed] or a bare
// identifier.
func (p *parser) parseName() (string, error) {
	t := p.next()
	switch t.kind {
	case tokBracketed, tokIdent:
		return t.text, nil
	default:
		return "", fmt.Errorf("mdx: expected cube name at position %d, got %q", t.pos, t.text)
	}
}
