package mdx

import "strings"

// MemberExpr is one element of an axis set: either a measure
// reference ([Measures].[population]), an explicit member
// ([place].[neighborhood].[Meir]), or a level enumeration
// ([place].[neighborhood].Members).
type MemberExpr struct {
	Dimension  string // "Measures" for measure references
	Level      string
	Member     string // empty for .Members enumerations
	AllMembers bool   // true for .Members
}

// IsMeasure reports whether the expression references a measure.
func (m MemberExpr) IsMeasure() bool { return strings.EqualFold(m.Dimension, "Measures") }

// String renders the expression in MDX syntax.
func (m MemberExpr) String() string {
	var sb strings.Builder
	sb.WriteString("[" + m.Dimension + "]")
	if m.Level != "" {
		sb.WriteString(".[" + m.Level + "]")
	}
	if m.AllMembers {
		sb.WriteString(".Members")
	} else if m.Member != "" {
		sb.WriteString(".[" + m.Member + "]")
	}
	return sb.String()
}

// Axis is one SELECT axis: a set of member expressions bound to
// COLUMNS or ROWS.
type Axis struct {
	Set  []MemberExpr
	Name string // "COLUMNS" or "ROWS"
}

// Query is a parsed MDX query.
type Query struct {
	Columns []MemberExpr
	Rows    []MemberExpr
	Cube    string
	Slicer  []MemberExpr // WHERE tuple, possibly empty
}
