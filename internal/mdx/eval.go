package mdx

import (
	"fmt"
	"strings"

	"mogis/internal/olap"
)

// Cube binds a fact table to a name for MDX evaluation. Measures
// aggregate with SUM over the cells selected by the axes and slicer,
// the implicit MDX aggregation for additive measures.
type Cube struct {
	Name string
	Fact *olap.FactTable
}

// Catalog resolves cube names.
type Catalog map[string]*Cube

// Result is an evaluated MDX query: a matrix of cell values with
// row/column headers. Cells that aggregate no facts are nil.
type Result struct {
	ColumnHeaders []string
	RowHeaders    []string
	Cells         [][]*float64
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	sb.WriteString("\t" + strings.Join(r.ColumnHeaders, "\t") + "\n")
	for i, rh := range r.RowHeaders {
		sb.WriteString(rh)
		for _, c := range r.Cells[i] {
			if c == nil {
				sb.WriteString("\t-")
			} else {
				fmt.Fprintf(&sb, "\t%g", *c)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Eval executes a parsed query against the catalog.
func Eval(cat Catalog, q *Query) (*Result, error) {
	cube, ok := cat[q.Cube]
	if !ok {
		return nil, fmt.Errorf("mdx: unknown cube %q", q.Cube)
	}
	if len(q.Columns) == 0 {
		return nil, fmt.Errorf("mdx: query needs a COLUMNS axis")
	}
	// Measures must all live on one axis; we support them on COLUMNS
	// (the usual layout and the one Piet-QL emits).
	for _, m := range q.Columns {
		if !m.IsMeasure() {
			return nil, fmt.Errorf("mdx: COLUMNS axis must contain only measures, got %s", m)
		}
	}
	for _, m := range q.Rows {
		if m.IsMeasure() {
			return nil, fmt.Errorf("mdx: measures belong on COLUMNS, got %s on ROWS", m)
		}
	}

	ft := cube.Fact
	// Apply the slicer: restrict facts by each slicer member.
	for _, s := range q.Slicer {
		if s.IsMeasure() {
			return nil, fmt.Errorf("mdx: measure %s cannot appear in WHERE", s)
		}
		if s.AllMembers || s.Member == "" {
			return nil, fmt.Errorf("mdx: slicer needs explicit members, got %s", s)
		}
		var err error
		ft, err = ft.Slice(s.Dimension, olap.Level(s.Level), olap.Member(s.Member))
		if err != nil {
			return nil, err
		}
	}

	// Row axis: expand to the list of (header, filterLevel, member).
	type rowSpec struct {
		header  string
		dimName string
		level   olap.Level
		member  olap.Member
	}
	var rows []rowSpec
	if len(q.Rows) == 0 {
		rows = append(rows, rowSpec{header: "(all)"})
	}
	for _, r := range q.Rows {
		if r.AllMembers {
			dim, err := findDim(ft, r.Dimension)
			if err != nil {
				return nil, err
			}
			if dim.Dimension == nil {
				return nil, fmt.Errorf("mdx: dimension column %q has no dimension instance for .Members", r.Dimension)
			}
			for _, m := range dim.Dimension.Members(olap.Level(r.Level)) {
				rows = append(rows, rowSpec{
					header: string(m), dimName: r.Dimension,
					level: olap.Level(r.Level), member: m,
				})
			}
		} else {
			rows = append(rows, rowSpec{
				header: r.Member, dimName: r.Dimension,
				level: olap.Level(r.Level), member: olap.Member(r.Member),
			})
		}
	}

	res := &Result{}
	for _, c := range q.Columns {
		res.ColumnHeaders = append(res.ColumnHeaders, c.Member)
	}
	for _, rs := range rows {
		res.RowHeaders = append(res.RowHeaders, rs.header)
		rft := ft
		if rs.dimName != "" {
			var err error
			rft, err = ft.Slice(rs.dimName, rs.level, rs.member)
			if err != nil {
				return nil, err
			}
		}
		var cells []*float64
		for _, c := range q.Columns {
			agg, err := rft.RollupAggregate(olap.Sum, c.Member, nil)
			if err != nil {
				return nil, err
			}
			if len(agg.Rows) == 0 {
				cells = append(cells, nil)
			} else {
				v := agg.Rows[0].Value
				cells = append(cells, &v)
			}
		}
		res.Cells = append(res.Cells, cells)
	}
	return res, nil
}

func findDim(ft *olap.FactTable, name string) (olap.DimCol, error) {
	for _, d := range ft.Schema().Dims {
		if d.Name == name {
			return d, nil
		}
	}
	return olap.DimCol{}, fmt.Errorf("mdx: fact table has no dimension column %q", name)
}

// Run parses and evaluates in one step.
func Run(cat Catalog, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Eval(cat, q)
}
