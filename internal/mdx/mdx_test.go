package mdx

import (
	"strings"
	"testing"

	"mogis/internal/olap"
)

func testCatalog(t *testing.T) Catalog {
	t.Helper()
	geo := olap.NewSchema("place").AddEdge("neighborhood", "city")
	dim := olap.NewDimension(geo)
	dim.SetRollup("neighborhood", "Meir", "city", "Antwerp")
	dim.SetRollup("neighborhood", "Dam", "city", "Antwerp")
	dim.SetRollup("neighborhood", "Ixelles", "city", "Brussels")

	ft := olap.NewFactTable(olap.FactSchema{
		Dims: []olap.DimCol{
			{Name: "place", Dimension: dim, Level: "neighborhood"},
			{Name: "year", Level: "year"},
		},
		Measures: []string{"population", "stores"},
	})
	ft.MustAdd([]olap.Member{"Meir", "2005"}, []float64{60000, 12})
	ft.MustAdd([]olap.Member{"Dam", "2005"}, []float64{45000, 8})
	ft.MustAdd([]olap.Member{"Meir", "2006"}, []float64{61000, 13})
	ft.MustAdd([]olap.Member{"Ixelles", "2006"}, []float64{80000, 20})
	return Catalog{"CityCube": &Cube{Name: "CityCube", Fact: ft}}
}

func TestParseBasic(t *testing.T) {
	q, err := Parse(`SELECT {[Measures].[population]} ON COLUMNS,
		{[place].[neighborhood].Members} ON ROWS
		FROM [CityCube]
		WHERE ([year].[year].[2005])`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 1 || !q.Columns[0].IsMeasure() || q.Columns[0].Member != "population" {
		t.Errorf("columns = %+v", q.Columns)
	}
	if len(q.Rows) != 1 || !q.Rows[0].AllMembers || q.Rows[0].Level != "neighborhood" {
		t.Errorf("rows = %+v", q.Rows)
	}
	if q.Cube != "CityCube" {
		t.Errorf("cube = %q", q.Cube)
	}
	if len(q.Slicer) != 1 || q.Slicer[0].Member != "2005" {
		t.Errorf("slicer = %+v", q.Slicer)
	}
}

func TestParseAxisOrderIndependent(t *testing.T) {
	q, err := Parse(`SELECT {[place].[neighborhood].[Meir]} ON ROWS,
		{[Measures].[stores]} ON COLUMNS FROM CityCube`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 1 || len(q.Rows) != 1 {
		t.Errorf("axes = %+v / %+v", q.Columns, q.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT {[Measures].[x]} ON COLUMNS`, // missing FROM
		`SELECT {[Measures].[x]} ON SIDEWAYS FROM c`,                             // bad axis
		`SELECT {[Measures].[x]} ON COLUMNS, {[Measures].[y]} ON COLUMNS FROM c`, // dup axis
		`SELECT {[Measures]} ON COLUMNS FROM c`,                                  // bare dimension
		`SELECT {[a].[b]} ON ROWS FROM c`,                                        // level without member
		`SELECT {[a].[b].[c].[d]} ON ROWS FROM c`,                                // too many parts
		`SELECT {[a].[b].Members.[c]} ON ROWS FROM c`,                            // member after Members
		`SELECT {[Measures].[x]} ON COLUMNS FROM c WHERE [a].[b].[c]`,            // slicer not a tuple
		`SELECT {[Measures].[x]} ON COLUMNS FROM c extra`,                        // trailing
		`SELECT {[Measures].[x} ON COLUMNS FROM c`,                               // unterminated bracket
		`SELECT {[Measures].[x]} ON COLUMNS FROM c WHERE ([a].[b].Members)`,      // Members in slicer is eval error, parse ok
	}
	for i, in := range cases {
		if i == len(cases)-1 {
			continue // last one parses
		}
		if _, err := Parse(in); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, in)
		}
	}
}

func TestEvalMembersRows(t *testing.T) {
	cat := testCatalog(t)
	res, err := Run(cat, `SELECT {[Measures].[population], [Measures].[stores]} ON COLUMNS,
		{[place].[neighborhood].Members} ON ROWS FROM [CityCube]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ColumnHeaders) != 2 || len(res.RowHeaders) != 3 {
		t.Fatalf("shape = %v x %v", res.RowHeaders, res.ColumnHeaders)
	}
	// Meir total population across years: 121000.
	if got := cellFor(res, "Meir", 0); got == nil || *got != 121000 {
		t.Errorf("Meir population = %v", fmtCell(got))
	}
	if got := cellFor(res, "Dam", 1); got == nil || *got != 8 {
		t.Errorf("Dam stores = %v", fmtCell(got))
	}
}

func TestEvalSlicer(t *testing.T) {
	cat := testCatalog(t)
	res, err := Run(cat, `SELECT {[Measures].[population]} ON COLUMNS,
		{[place].[neighborhood].Members} ON ROWS
		FROM [CityCube] WHERE ([year].[year].[2005])`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cellFor(res, "Meir", 0); got == nil || *got != 60000 {
		t.Errorf("Meir 2005 = %v", fmtCell(got))
	}
	// Ixelles has no 2005 fact: nil cell.
	if got := cellFor(res, "Ixelles", 0); got != nil {
		t.Errorf("Ixelles 2005 = %v, want empty", *got)
	}
}

func TestEvalCityLevelRows(t *testing.T) {
	cat := testCatalog(t)
	res, err := Run(cat, `SELECT {[Measures].[population]} ON COLUMNS,
		{[place].[city].[Antwerp], [place].[city].[Brussels]} ON ROWS FROM [CityCube]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cellFor(res, "Antwerp", 0); got == nil || *got != 60000+45000+61000 {
		t.Errorf("Antwerp = %v", fmtCell(got))
	}
	if got := cellFor(res, "Brussels", 0); got == nil || *got != 80000 {
		t.Errorf("Brussels = %v", fmtCell(got))
	}
}

func TestEvalNoRowsAxis(t *testing.T) {
	cat := testCatalog(t)
	res, err := Run(cat, `SELECT {[Measures].[stores]} ON COLUMNS FROM [CityCube]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowHeaders) != 1 || res.RowHeaders[0] != "(all)" {
		t.Fatalf("rows = %v", res.RowHeaders)
	}
	if *res.Cells[0][0] != 53 {
		t.Errorf("total stores = %v", *res.Cells[0][0])
	}
}

func TestEvalErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []string{
		`SELECT {[Measures].[population]} ON COLUMNS FROM [Nope]`,
		`SELECT {[place].[neighborhood].[Meir]} ON COLUMNS FROM [CityCube]`,                            // non-measure on columns
		`SELECT {[Measures].[population]} ON COLUMNS, {[Measures].[stores]} ON ROWS FROM [CityCube]`,   // measure on rows
		`SELECT {[Measures].[population]} ON COLUMNS FROM [CityCube] WHERE ([Measures].[stores])`,      // measure slicer
		`SELECT {[Measures].[population]} ON COLUMNS FROM [CityCube] WHERE ([year].[year].Members)`,    // Members slicer
		`SELECT {[Measures].[population]} ON COLUMNS, {[ghost].[x].Members} ON ROWS FROM [CityCube]`,   // unknown dim
		`SELECT {[Measures].[population]} ON COLUMNS, {[year].[year].Members} ON ROWS FROM [CityCube]`, // no dim instance
		`SELECT {[Measures].[ghost]} ON COLUMNS FROM [CityCube]`,                                       // unknown measure
	}
	for i, in := range cases {
		if _, err := Run(cat, in); err == nil {
			t.Errorf("case %d: expected eval error for %q", i, in)
		}
	}
}

func TestResultString(t *testing.T) {
	cat := testCatalog(t)
	res, _ := Run(cat, `SELECT {[Measures].[population]} ON COLUMNS,
		{[place].[neighborhood].Members} ON ROWS
		FROM [CityCube] WHERE ([year].[year].[2005])`)
	s := res.String()
	if !strings.Contains(s, "Meir\t60000") || !strings.Contains(s, "Ixelles\t-") {
		t.Errorf("String = %q", s)
	}
}

func TestMemberExprString(t *testing.T) {
	m := MemberExpr{Dimension: "place", Level: "neighborhood", Member: "Meir"}
	if m.String() != "[place].[neighborhood].[Meir]" {
		t.Errorf("String = %q", m.String())
	}
	m2 := MemberExpr{Dimension: "place", Level: "city", AllMembers: true}
	if m2.String() != "[place].[city].Members" {
		t.Errorf("String = %q", m2.String())
	}
	m3 := MemberExpr{Dimension: "Measures", Member: "population"}
	if m3.String() != "[Measures].[population]" {
		t.Errorf("String = %q", m3.String())
	}
}

func cellFor(res *Result, rowHeader string, col int) *float64 {
	for i, rh := range res.RowHeaders {
		if rh == rowHeader {
			return res.Cells[i][col]
		}
	}
	return nil
}

func fmtCell(c *float64) any {
	if c == nil {
		return "nil"
	}
	return *c
}
