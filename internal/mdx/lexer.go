// Package mdx implements the miniature MDX dialect the paper's
// Piet-QL uses for the OLAP part of a query (Section 5): SELECT sets
// of measures and level members on COLUMNS/ROWS, FROM a cube, with an
// optional WHERE slicer tuple. Bracketed identifiers follow MDX
// syntax: [dim].[level].[member], [dim].[level].Members and
// [Measures].[name].
package mdx

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokBracketed // [ ... ]
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokDot
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokBracketed:
		return "bracketed name"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '[':
			end := strings.IndexByte(input[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("mdx: unterminated '[' at position %d", i)
			}
			toks = append(toks, token{tokBracketed, input[i+1 : i+end], i})
			i += end + 1
		case isIdentStart(c):
			j := i
			for j < len(input) && isIdentPart(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("mdx: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}
