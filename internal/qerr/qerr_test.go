package qerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNewPanicCapturesStack(t *testing.T) {
	var err error
	func() {
		defer func() {
			if v := recover(); v != nil {
				err = NewPanic("test/op", v)
			}
		}()
		panic("boom")
	}()
	var pe *QueryPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *QueryPanicError", err)
	}
	if pe.Op != "test/op" || pe.Value != "boom" {
		t.Errorf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "qerr") {
		t.Errorf("stack not captured: %q", pe.Stack)
	}
	if !IsPanic(err) {
		t.Error("IsPanic = false")
	}
	if !IsPanic(fmt.Errorf("wrapped: %w", err)) {
		t.Error("IsPanic through wrapping = false")
	}
}

func TestIsCancel(t *testing.T) {
	if !IsCancel(context.Canceled) {
		t.Error("Canceled not recognized")
	}
	if !IsCancel(context.DeadlineExceeded) {
		t.Error("DeadlineExceeded not recognized")
	}
	if !IsCancel(fmt.Errorf("query: %w", context.Canceled)) {
		t.Error("wrapped Canceled not recognized")
	}
	if IsCancel(errors.New("other")) {
		t.Error("plain error misclassified as cancel")
	}
	if IsCancel(nil) {
		t.Error("nil misclassified as cancel")
	}
}
