// Package qerr defines the typed errors shared by the engine's
// cancellable query paths: the recovered-panic error produced by
// worker-pool panic isolation, and helpers for classifying
// cancellation. It sits below core, overlay and pietql so all three
// can agree on one error vocabulary without import cycles.
package qerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// QueryPanicError is a panic recovered inside a query path (a worker
// goroutine, a cache build, an overlay pair). The panicking worker's
// stack is captured at recovery time; sibling workers drain cleanly
// and the engine stays usable.
type QueryPanicError struct {
	// Op names the path that recovered the panic (e.g. "core/fanout").
	Op string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// NewPanic wraps a recovered panic value into a QueryPanicError,
// capturing the current goroutine's stack. Call it directly inside
// the recover() branch so the stack still shows the panic site.
func NewPanic(op string, value any) *QueryPanicError {
	return &QueryPanicError{Op: op, Value: value, Stack: debug.Stack()}
}

func (e *QueryPanicError) Error() string {
	return fmt.Sprintf("%s: recovered panic: %v", e.Op, e.Value)
}

// IsPanic reports whether err wraps a recovered query panic.
func IsPanic(err error) bool {
	var pe *QueryPanicError
	return errors.As(err, &pe)
}

// IsCancel reports whether err means the query was cancelled or timed
// out (context.Canceled or context.DeadlineExceeded anywhere in the
// chain).
func IsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
