// Package integration_test runs cross-module pipelines end to end:
// generation → persistence → reload → query evaluation, asserting
// the reloaded model answers exactly like the in-memory one, and the
// full GIS–OLAP–moving-objects loop of the paper (region C → fact
// table → cube → MDX).
package integration_test

import (
	"context"

	"testing"

	"mogis/internal/fo"
	"mogis/internal/layer"
	"mogis/internal/mdx"
	"mogis/internal/olap"
	"mogis/internal/overlay"
	"mogis/internal/pietql"
	"mogis/internal/store"
	"mogis/internal/timedim"
	"mogis/internal/workload"
)

// TestSaveLoadQueryParity: the reloaded dataset must produce the same
// region-C relation and the same Piet-QL outcome as the generated
// in-memory city.
func TestSaveLoadQueryParity(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 23, Cols: 4, Rows: 4, Schools: 4, Stores: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 23, Objects: 25, Samples: 30})
	_, engMem := city.Context(fm)

	dir := t.TempDir()
	ds := &store.Dataset{
		Ln: city.Ln, Lr: city.Lr, Lh: city.Lh, Ls: city.Ls, Lstores: city.Lstores,
		Neighborhoods: city.Neighborhoods, FM: fm,
	}
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, engDisk, err := loaded.Context()
	if err != nil {
		t.Fatal(err)
	}

	formula := fo.Exists([]fo.Var{"x", "y", "pg", "nb"}, fo.And(
		&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
		&fo.AttrCmp{Concept: "neighb", M: fo.V("nb"), Attr: "income", Op: fo.LT, Rhs: fo.CReal(1500)},
	))
	relMem, err := engMem.RegionC(context.Background(), formula, []fo.Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	relDisk, err := engDisk.RegionC(context.Background(), formula, []fo.Var{"o", "t"})
	if err != nil {
		t.Fatal(err)
	}
	if relMem.Len() != relDisk.Len() {
		t.Fatalf("region C: memory %d vs disk %d", relMem.Len(), relDisk.Len())
	}
	for i := range relMem.Tuples {
		for j := range relMem.Tuples[i] {
			if relMem.Tuples[i][j] != relDisk.Tuples[i][j] {
				t.Fatalf("tuple %d differs: %v vs %v", i, relMem.Tuples[i], relDisk.Tuples[i])
			}
		}
	}
}

// TestPietQLOverlayParityOnLoadedData: Piet-QL must give identical
// outcomes with and without the precomputed overlay on a reloaded
// dataset.
func TestPietQLOverlayParityOnLoadedData(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 29, Cols: 5, Rows: 5})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 29, Objects: 30, Samples: 20})
	dir := t.TempDir()
	ds := &store.Dataset{
		Ln: city.Ln, Lr: city.Lr, Lh: city.Lh, Ls: city.Ls, Lstores: city.Lstores,
		Neighborhoods: city.Neighborhoods, FM: fm,
	}
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, eng, err := loaded.Context()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]layer.Kind{
		"Ln": layer.KindPolygon, "Lr": layer.KindPolyline,
		"Ls": layer.KindNode, "Lstores": layer.KindNode, "Lh": layer.KindPolyline,
	}
	layers := map[string]*layer.Layer{
		"Ln": loaded.Ln, "Lr": loaded.Lr, "Ls": loaded.Ls, "Lstores": loaded.Lstores, "Lh": loaded.Lh,
	}
	ov, err := overlay.Precompute(context.Background(), layers, []overlay.Pair{
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lr", Kind: layer.KindPolyline}},
		{A: overlay.Ref{Layer: "Ln", Kind: layer.KindPolygon}, B: overlay.Ref{Layer: "Lstores", Kind: layer.KindNode}},
	})
	if err != nil {
		t.Fatal(err)
	}
	query := `
		SELECT layer.Lr, layer.Ln, layer.Lstores;
		FROM PietSchema;
		WHERE intersection(layer.Lr, layer.Ln, subplevel.Linestring)
		AND (layer.Ln)
		CONTAINS (layer.Ln, layer.Lstores, subplevel.Point);
		| | MOVING COUNT(*) FROM FM WHERE PASSES THROUGH layer.Ln GROUP BY hour`

	base := &pietql.System{Ctx: ctx, Engine: eng, Kinds: kinds, SchemaName: "PietSchema", Cubes: mdx.Catalog{}}
	fast := &pietql.System{Ctx: ctx, Engine: eng, Kinds: kinds, SchemaName: "PietSchema", Cubes: mdx.Catalog{}, Overlay: ov}

	outSlow, err := base.Run(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	outFast, err := fast.Run(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if outSlow.MOCount != outFast.MOCount {
		t.Errorf("MO count: naive %d vs overlay %d", outSlow.MOCount, outFast.MOCount)
	}
	a, b := outSlow.GeoIDs["Ln"], outFast.GeoIDs["Ln"]
	if len(a) != len(b) {
		t.Fatalf("geo ids: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("geo ids: %v vs %v", a, b)
		}
	}
	if len(outSlow.MOGroups.Rows) != len(outFast.MOGroups.Rows) {
		t.Fatalf("group rows: %d vs %d", len(outSlow.MOGroups.Rows), len(outFast.MOGroups.Rows))
	}
}

// TestFullGISOLAPLoop: region C → fact table with a real Time
// dimension → materialized cube → MDX, the complete integration the
// paper's framework promises.
func TestFullGISOLAPLoop(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 31, Cols: 4, Rows: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 31, Objects: 40, Samples: 50})
	_, eng := city.Context(fm)

	// Region C: every sample with its neighborhood and raw instant.
	rel, err := eng.RegionC(context.Background(), fo.Exists([]fo.Var{"x", "y", "pg"}, fo.And(
		&fo.Fact{Table: "FM", O: fo.V("o"), T: fo.V("t"), X: fo.V("x"), Y: fo.V("y")},
		&fo.PointIn{Layer: "Ln", Kind: layer.KindPolygon, X: fo.V("x"), Y: fo.V("y"), G: fo.V("pg")},
		&fo.Alpha{Attr: "neighb", A: fo.V("nb"), G: fo.V("pg")},
	)), []fo.Var{"o", "t", "nb"})
	if err != nil {
		t.Fatal(err)
	}

	// Time dimension over the observed instants.
	var instants []timedim.Instant
	tIdx, _ := rel.Col("t")
	seen := map[timedim.Instant]bool{}
	for _, tup := range rel.Tuples {
		ts := tup[tIdx].Time()
		if !seen[ts] {
			seen[ts] = true
			instants = append(instants, ts)
		}
	}
	timeDim, err := timedim.AsOLAPDimension(instants)
	if err != nil {
		t.Fatal(err)
	}

	// Fact table: counts per (neighborhood, timeId). The t column
	// renders as "t<unix>"; strip the prefix to match timeId members.
	counts, err := rel.GroupAggregate(olap.Count, "", []fo.Var{"nb", "t"})
	if err != nil {
		t.Fatal(err)
	}
	ft := olap.NewFactTable(olap.FactSchema{
		Dims: []olap.DimCol{
			{Name: "place", Dimension: city.Neighborhoods, Level: "neighborhood"},
			{Name: "when", Dimension: timeDim, Level: olap.Level(timedim.CatTimeID)},
		},
		Measures: []string{"samples"},
	})
	for _, row := range counts.Rows {
		tid := olap.Member(string(row.Group[1])[1:]) // strip "t"
		ft.MustAdd([]olap.Member{row.Group[0], tid}, []float64{row.Value})
	}

	// Cube over (neighborhood, city) × (timeId, hour, timeOfDay).
	cube, err := olap.Materialize(ft, olap.Sum, "samples", [][]olap.Level{
		{"neighborhood", "city"},
		{olap.Level(timedim.CatTimeID), olap.Level(timedim.CatHour), olap.Level(timedim.CatTimeOfDay)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumViews() != 6 {
		t.Fatalf("views = %d", cube.NumViews())
	}
	// The fully rolled-up city × timeOfDay view totals the MOFT size
	// (every sample lands in exactly one neighborhood here — grid
	// interiors; boundary double counts would exceed it).
	view, ok := cube.View("city", olap.Level(timedim.CatTimeOfDay))
	if !ok {
		t.Fatal("missing top view")
	}
	var total float64
	for _, row := range view.Rows {
		total += row.Value
	}
	if int(total) < fm.Len() {
		t.Errorf("cube total %v < MOFT size %d", total, fm.Len())
	}

	// MDX over the same fact table.
	res, err := mdx.Run(mdx.Catalog{"C": &mdx.Cube{Name: "C", Fact: ft}},
		`SELECT {[Measures].[samples]} ON COLUMNS, {[place].[city].[SynthCity]} ON ROWS FROM [C]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0][0] == nil || int(*res.Cells[0][0]) != int(total) {
		t.Errorf("MDX total = %v, cube total = %v", res.Cells[0][0], total)
	}
}
