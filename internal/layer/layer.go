// Package layer implements thematic layers, the storage unit of the
// paper's GIS dimensions (Definition 1): each layer carries geometries
// of several kinds (point, node, line, polyline, polygon, All),
// rollup relations r^{Gj,Gk}_L between them, and attribute functions
// α^{A,G}_L linking application-part concepts to geometry
// identifiers.
package layer

import (
	"fmt"
	"sort"
	"sync"

	"mogis/internal/geom"
	"mogis/internal/sindex"
)

// Kind names a geometry kind (the set G of the paper, Section 3).
type Kind string

// The geometry kinds the model requires; more can be added.
const (
	KindPoint    Kind = "point"
	KindNode     Kind = "node"
	KindLine     Kind = "line"
	KindPolyline Kind = "polyline"
	KindPolygon  Kind = "polygon"
	KindAll      Kind = "All"
)

// Gid identifies a geometry element within a layer (the paper's
// geometry identifier domain Gid).
type Gid int64

// AllGid is the identifier of the single member of KindAll.
const AllGid Gid = -1

// Layer is a thematic layer instance.
type Layer struct {
	name string

	polygons  map[Gid]geom.Polygon
	polylines map[Gid]geom.Polyline
	lines     map[Gid]geom.Segment
	nodes     map[Gid]geom.Point

	// compositions holds the finite rollup relations between non-point
	// kinds, child → parents (e.g. line → polyline).
	compositions map[kindEdge]map[Gid][]Gid

	// alpha holds the attribute functions α^{A,G}_L: attribute name →
	// concept member → geometry id.
	alpha map[string]alphaFunc

	mu        sync.Mutex
	locator   *sindex.PointLocator // lazy polygon point locator
	plIndex   *sindex.RTree        // lazy polyline bbox index
	nodeIndex *sindex.RTree        // lazy node point index
}

type kindEdge struct {
	child, parent Kind
}

type alphaFunc struct {
	kind    Kind
	mapping map[string]Gid
}

// New creates an empty layer.
func New(name string) *Layer {
	return &Layer{
		name:         name,
		polygons:     make(map[Gid]geom.Polygon),
		polylines:    make(map[Gid]geom.Polyline),
		lines:        make(map[Gid]geom.Segment),
		nodes:        make(map[Gid]geom.Point),
		compositions: make(map[kindEdge]map[Gid][]Gid),
		alpha:        make(map[string]alphaFunc),
	}
}

// Name returns the layer name.
func (l *Layer) Name() string { return l.name }

// invalidate drops lazily built indexes after mutation.
func (l *Layer) invalidate() {
	l.mu.Lock()
	l.locator = nil
	l.plIndex = nil
	l.nodeIndex = nil
	l.mu.Unlock()
}

// AddPolygon stores a polygon under id.
func (l *Layer) AddPolygon(id Gid, pg geom.Polygon) *Layer {
	l.polygons[id] = pg
	l.invalidate()
	return l
}

// AddPolyline stores a polyline under id.
func (l *Layer) AddPolyline(id Gid, pl geom.Polyline) *Layer {
	l.polylines[id] = pl
	l.invalidate()
	return l
}

// AddLine stores a line segment under id.
func (l *Layer) AddLine(id Gid, s geom.Segment) *Layer {
	l.lines[id] = s
	l.invalidate()
	return l
}

// AddNode stores a point geometry under id.
func (l *Layer) AddNode(id Gid, p geom.Point) *Layer {
	l.nodes[id] = p
	l.invalidate()
	return l
}

// Polygon returns the polygon stored under id.
func (l *Layer) Polygon(id Gid) (geom.Polygon, bool) {
	pg, ok := l.polygons[id]
	return pg, ok
}

// Polyline returns the polyline stored under id.
func (l *Layer) Polyline(id Gid) (geom.Polyline, bool) {
	pl, ok := l.polylines[id]
	return pl, ok
}

// Line returns the segment stored under id.
func (l *Layer) Line(id Gid) (geom.Segment, bool) {
	s, ok := l.lines[id]
	return s, ok
}

// Node returns the point stored under id.
func (l *Layer) Node(id Gid) (geom.Point, bool) {
	p, ok := l.nodes[id]
	return p, ok
}

// IDs returns the sorted geometry ids of a kind (empty for KindPoint,
// whose domain is infinite, and [AllGid] for KindAll).
func (l *Layer) IDs(kind Kind) []Gid {
	var out []Gid
	switch kind {
	case KindPolygon:
		for id := range l.polygons {
			out = append(out, id)
		}
	case KindPolyline:
		for id := range l.polylines {
			out = append(out, id)
		}
	case KindLine:
		for id := range l.lines {
			out = append(out, id)
		}
	case KindNode:
		for id := range l.nodes {
			out = append(out, id)
		}
	case KindAll:
		return []Gid{AllGid}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the number of stored geometries of a kind.
func (l *Layer) Count(kind Kind) int {
	switch kind {
	case KindPolygon:
		return len(l.polygons)
	case KindPolyline:
		return len(l.polylines)
	case KindLine:
		return len(l.lines)
	case KindNode:
		return len(l.nodes)
	case KindAll:
		return 1
	default:
		return 0
	}
}

// Kinds returns the geometry kinds with at least one stored element,
// sorted, always including KindAll and KindPoint (the algebraic
// bottom).
func (l *Layer) Kinds() []Kind {
	set := map[Kind]bool{KindPoint: true, KindAll: true}
	for k := range map[Kind]int{
		KindPolygon: len(l.polygons), KindPolyline: len(l.polylines),
		KindLine: len(l.lines), KindNode: len(l.nodes),
	} {
		if l.Count(k) > 0 {
			set[k] = true
		}
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BBox returns the bounding box of every stored geometry.
func (l *Layer) BBox() geom.BBox {
	b := geom.EmptyBBox()
	for _, pg := range l.polygons {
		b = b.Union(pg.BBox())
	}
	for _, pl := range l.polylines {
		b = b.Union(pl.BBox())
	}
	for _, s := range l.lines {
		b = b.Union(s.BBox())
	}
	for _, p := range l.nodes {
		b = b.ExtendPoint(p)
	}
	return b
}

// SetComposition records that child (of childKind) is part of parent
// (of parentKind): one tuple of the finite rollup relation
// r^{childKind,parentKind}_L.
func (l *Layer) SetComposition(childKind Kind, child Gid, parentKind Kind, parent Gid) *Layer {
	e := kindEdge{childKind, parentKind}
	if l.compositions[e] == nil {
		l.compositions[e] = make(map[Gid][]Gid)
	}
	l.compositions[e][child] = append(l.compositions[e][child], parent)
	return l
}

// Parents returns the parents of child under the finite rollup
// relation childKind→parentKind. Rolling up to KindAll always yields
// AllGid.
func (l *Layer) Parents(childKind Kind, child Gid, parentKind Kind) []Gid {
	if parentKind == KindAll {
		return []Gid{AllGid}
	}
	return l.compositions[kindEdge{childKind, parentKind}][child]
}

// Children returns the children mapping to parent under the finite
// rollup relation childKind→parentKind, sorted.
func (l *Layer) Children(childKind Kind, parentKind Kind, parent Gid) []Gid {
	var out []Gid
	for c, ps := range l.compositions[kindEdge{childKind, parentKind}] {
		for _, p := range ps {
			if p == parent {
				out = append(out, c)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetAlpha records α^{A,G}_L(member) = id for attribute (concept
// level) attr whose geometries are of the given kind.
func (l *Layer) SetAlpha(attr string, kind Kind, member string, id Gid) *Layer {
	f, ok := l.alpha[attr]
	if !ok {
		f = alphaFunc{kind: kind, mapping: make(map[string]Gid)}
		l.alpha[attr] = f
	}
	f.mapping[member] = id
	return l
}

// Alpha resolves α^{A,G}_L(member), returning the geometry kind and
// id.
func (l *Layer) Alpha(attr, member string) (Kind, Gid, bool) {
	f, ok := l.alpha[attr]
	if !ok {
		return "", 0, false
	}
	id, ok := f.mapping[member]
	return f.kind, id, ok
}

// AlphaMembers returns the concept members bound by attribute attr,
// sorted.
func (l *Layer) AlphaMembers(attr string) []string {
	f, ok := l.alpha[attr]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(f.mapping))
	for m := range f.mapping {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// AlphaInverse returns the concept member mapped to geometry id under
// attr, inverting α by scan.
func (l *Layer) AlphaInverse(attr string, id Gid) (string, bool) {
	f, ok := l.alpha[attr]
	if !ok {
		return "", false
	}
	for m, g := range f.mapping {
		if g == id {
			return m, true
		}
	}
	return "", false
}

// ensureLocator builds the polygon point locator on first use.
func (l *Layer) ensureLocator() *sindex.PointLocator {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.locator == nil {
		pgs := make(map[int64]geom.Polygon, len(l.polygons))
		for id, pg := range l.polygons {
			pgs[int64(id)] = pg
		}
		l.locator = sindex.NewPointLocator(pgs)
	}
	return l.locator
}

// PolygonsContaining evaluates the infinite rollup relation
// r^{point,polygon}_L: the ids of all polygons containing p (boundary
// inclusive, so a point on a shared edge belongs to both neighbors,
// as the paper notes in Example 1).
func (l *Layer) PolygonsContaining(p geom.Point) []Gid {
	if len(l.polygons) == 0 {
		return nil
	}
	ids := l.ensureLocator().Locate(p, nil)
	out := make([]Gid, len(ids))
	for i, id := range ids {
		out[i] = Gid(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ensurePolylineIndex builds the polyline bbox R-tree on first use.
func (l *Layer) ensurePolylineIndex() *sindex.RTree {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.plIndex == nil {
		entries := make([]sindex.Entry, 0, len(l.polylines))
		for id, pl := range l.polylines {
			entries = append(entries, sindex.Entry{Box: sindex.Box(pl.BBox()), ID: int64(id)})
		}
		l.plIndex = sindex.BulkLoad(entries, sindex.DefaultFanout)
	}
	return l.plIndex
}

// PolylinesNear returns the ids of polylines with distance to p at
// most r, sorted: the evaluation primitive behind proximity queries
// (paper's Q6/Q7).
func (l *Layer) PolylinesNear(p geom.Point, r float64) []Gid {
	if len(l.polylines) == 0 {
		return nil
	}
	query := geom.BBox{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
	var out []Gid
	l.ensurePolylineIndex().Visit(query, func(_ geom.BBox, id int64) bool {
		if l.polylines[Gid(id)].DistToPoint(p) <= r {
			out = append(out, Gid(id))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PolylinesThrough returns the ids of polylines passing through p
// exactly.
func (l *Layer) PolylinesThrough(p geom.Point) []Gid {
	var out []Gid
	l.ensurePolylineIndex().Visit(geom.NewBBox(p), func(_ geom.BBox, id int64) bool {
		if l.polylines[Gid(id)].ContainsPoint(p) {
			out = append(out, Gid(id))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ensureNodeIndex builds the node point R-tree on first use.
func (l *Layer) ensureNodeIndex() *sindex.RTree {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nodeIndex == nil {
		entries := make([]sindex.Entry, 0, len(l.nodes))
		for id, p := range l.nodes {
			entries = append(entries, sindex.Entry{Box: sindex.Box(geom.NewBBox(p)), ID: int64(id)})
		}
		l.nodeIndex = sindex.BulkLoad(entries, sindex.DefaultFanout)
	}
	return l.nodeIndex
}

// NodesNearest returns the k node ids closest to p, ordered by
// distance ("the nearest schools"), via best-first R-tree search.
func (l *Layer) NodesNearest(p geom.Point, k int) []Gid {
	ns := l.ensureNodeIndex().Nearest(p, k)
	out := make([]Gid, len(ns))
	for i, n := range ns {
		out[i] = Gid(n.ID)
	}
	return out
}

// NodesNear returns ids of node geometries within distance r of p,
// sorted.
func (l *Layer) NodesNear(p geom.Point, r float64) []Gid {
	var out []Gid
	r2 := r * r
	for id, n := range l.nodes {
		if n.Dist2(p) <= r2 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks referential integrity: compositions and alpha
// bindings must reference stored geometries.
func (l *Layer) Validate() error {
	has := func(kind Kind, id Gid) bool {
		switch kind {
		case KindPolygon:
			_, ok := l.polygons[id]
			return ok
		case KindPolyline:
			_, ok := l.polylines[id]
			return ok
		case KindLine:
			_, ok := l.lines[id]
			return ok
		case KindNode:
			_, ok := l.nodes[id]
			return ok
		case KindAll:
			return id == AllGid
		default:
			return false
		}
	}
	for e, rel := range l.compositions {
		for c, ps := range rel {
			if !has(e.child, c) {
				return fmt.Errorf("layer %s: composition %s→%s references missing child %d", l.name, e.child, e.parent, c)
			}
			for _, p := range ps {
				if !has(e.parent, p) {
					return fmt.Errorf("layer %s: composition %s→%s references missing parent %d", l.name, e.child, e.parent, p)
				}
			}
		}
	}
	for attr, f := range l.alpha {
		for m, id := range f.mapping {
			if !has(f.kind, id) {
				return fmt.Errorf("layer %s: α_%s(%q) references missing %s %d", l.name, attr, m, f.kind, id)
			}
		}
	}
	return nil
}
