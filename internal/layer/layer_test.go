package layer

import (
	"testing"

	"mogis/internal/geom"
)

func sq(x, y, s float64) geom.Polygon {
	return geom.Polygon{Shell: geom.Ring{
		geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
	}}
}

func cityLayer(t *testing.T) *Layer {
	t.Helper()
	l := New("Ln")
	l.AddPolygon(1, sq(0, 0, 10))
	l.AddPolygon(2, sq(10, 0, 10))
	l.AddPolygon(3, sq(0, 10, 20))
	l.AddPolyline(10, geom.Polyline{geom.Pt(-5, 5), geom.Pt(25, 5)})
	l.AddNode(20, geom.Pt(5, 5))
	l.AddNode(21, geom.Pt(15, 15))
	l.AddLine(30, geom.Seg(geom.Pt(0, 0), geom.Pt(1, 1)))
	l.SetAlpha("neighborhood", KindPolygon, "Berchem", 1)
	l.SetAlpha("neighborhood", KindPolygon, "Zurenborg", 2)
	l.SetAlpha("neighborhood", KindPolygon, "Noord", 3)
	l.SetComposition(KindLine, 30, KindPolyline, 10)
	return l
}

func TestLayerStorage(t *testing.T) {
	l := cityLayer(t)
	if l.Name() != "Ln" {
		t.Errorf("Name = %q", l.Name())
	}
	if _, ok := l.Polygon(1); !ok {
		t.Error("missing polygon 1")
	}
	if _, ok := l.Polygon(99); ok {
		t.Error("unexpected polygon 99")
	}
	if _, ok := l.Polyline(10); !ok {
		t.Error("missing polyline 10")
	}
	if _, ok := l.Node(20); !ok {
		t.Error("missing node 20")
	}
	if _, ok := l.Line(30); !ok {
		t.Error("missing line 30")
	}
	if got := l.Count(KindPolygon); got != 3 {
		t.Errorf("Count polygons = %d", got)
	}
	if got := l.IDs(KindPolygon); len(got) != 3 || got[0] != 1 {
		t.Errorf("IDs = %v", got)
	}
	if got := l.IDs(KindAll); len(got) != 1 || got[0] != AllGid {
		t.Errorf("IDs(All) = %v", got)
	}
	if got := l.IDs(KindPoint); got != nil {
		t.Errorf("IDs(point) = %v (infinite domain has no ids)", got)
	}
}

func TestLayerKindsAndBBox(t *testing.T) {
	l := cityLayer(t)
	kinds := l.Kinds()
	want := map[Kind]bool{KindPoint: true, KindAll: true, KindPolygon: true,
		KindPolyline: true, KindNode: true, KindLine: true}
	if len(kinds) != len(want) {
		t.Errorf("Kinds = %v", kinds)
	}
	b := l.BBox()
	if b.MinX != -5 || b.MaxX != 25 || b.MinY != 0 || b.MaxY != 30 {
		t.Errorf("BBox = %v", b)
	}
}

func TestPolygonsContaining(t *testing.T) {
	l := cityLayer(t)
	if got := l.PolygonsContaining(geom.Pt(5, 5)); len(got) != 1 || got[0] != 1 {
		t.Errorf("inside 1 = %v", got)
	}
	// Shared edge between polygons 1 and 2 → both (closed semantics).
	if got := l.PolygonsContaining(geom.Pt(10, 5)); len(got) != 2 {
		t.Errorf("shared edge = %v", got)
	}
	if got := l.PolygonsContaining(geom.Pt(-5, -5)); len(got) != 0 {
		t.Errorf("outside = %v", got)
	}
	// Mutation invalidates the locator.
	l.AddPolygon(4, sq(-20, -20, 5))
	if got := l.PolygonsContaining(geom.Pt(-18, -18)); len(got) != 1 || got[0] != 4 {
		t.Errorf("after mutation = %v", got)
	}
}

func TestPolylineQueries(t *testing.T) {
	l := cityLayer(t)
	if got := l.PolylinesNear(geom.Pt(5, 7), 2); len(got) != 1 || got[0] != 10 {
		t.Errorf("near = %v", got)
	}
	if got := l.PolylinesNear(geom.Pt(5, 8), 2); len(got) != 0 {
		t.Errorf("too far = %v", got)
	}
	if got := l.PolylinesThrough(geom.Pt(5, 5)); len(got) != 1 {
		t.Errorf("through = %v", got)
	}
	if got := l.PolylinesThrough(geom.Pt(5, 6)); len(got) != 0 {
		t.Errorf("not through = %v", got)
	}
}

func TestNodesNear(t *testing.T) {
	l := cityLayer(t)
	if got := l.NodesNear(geom.Pt(6, 5), 1); len(got) != 1 || got[0] != 20 {
		t.Errorf("NodesNear = %v", got)
	}
	if got := l.NodesNear(geom.Pt(10, 10), 100); len(got) != 2 {
		t.Errorf("NodesNear wide = %v", got)
	}
	if got := l.NodesNear(geom.Pt(100, 100), 1); len(got) != 0 {
		t.Errorf("NodesNear none = %v", got)
	}
}

func TestAlpha(t *testing.T) {
	l := cityLayer(t)
	kind, id, ok := l.Alpha("neighborhood", "Berchem")
	if !ok || kind != KindPolygon || id != 1 {
		t.Errorf("Alpha = %v,%v,%v", kind, id, ok)
	}
	if _, _, ok := l.Alpha("neighborhood", "Nowhere"); ok {
		t.Error("unexpected member")
	}
	if _, _, ok := l.Alpha("river", "Scheldt"); ok {
		t.Error("unexpected attr")
	}
	ms := l.AlphaMembers("neighborhood")
	if len(ms) != 3 || ms[0] != "Berchem" {
		t.Errorf("AlphaMembers = %v", ms)
	}
	if l.AlphaMembers("nope") != nil {
		t.Error("AlphaMembers for unknown attr")
	}
	m, ok := l.AlphaInverse("neighborhood", 2)
	if !ok || m != "Zurenborg" {
		t.Errorf("AlphaInverse = %q,%v", m, ok)
	}
	if _, ok := l.AlphaInverse("neighborhood", 99); ok {
		t.Error("AlphaInverse for unknown id")
	}
}

func TestCompositions(t *testing.T) {
	l := cityLayer(t)
	ps := l.Parents(KindLine, 30, KindPolyline)
	if len(ps) != 1 || ps[0] != 10 {
		t.Errorf("Parents = %v", ps)
	}
	if ps := l.Parents(KindLine, 30, KindAll); len(ps) != 1 || ps[0] != AllGid {
		t.Errorf("Parents(All) = %v", ps)
	}
	cs := l.Children(KindLine, KindPolyline, 10)
	if len(cs) != 1 || cs[0] != 30 {
		t.Errorf("Children = %v", cs)
	}
	if cs := l.Children(KindLine, KindPolyline, 99); len(cs) != 0 {
		t.Errorf("Children(99) = %v", cs)
	}
}

func TestLayerValidate(t *testing.T) {
	l := cityLayer(t)
	if err := l.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	l.SetComposition(KindLine, 999, KindPolyline, 10)
	if err := l.Validate(); err == nil {
		t.Error("expected missing-child error")
	}
	l2 := cityLayer(t)
	l2.SetComposition(KindLine, 30, KindPolyline, 999)
	if err := l2.Validate(); err == nil {
		t.Error("expected missing-parent error")
	}
	l3 := cityLayer(t)
	l3.SetAlpha("school", KindNode, "S1", 999)
	if err := l3.Validate(); err == nil {
		t.Error("expected missing-alpha error")
	}
}

func TestNodesNearest(t *testing.T) {
	l := New("L")
	l.AddNode(1, geom.Pt(0, 0))
	l.AddNode(2, geom.Pt(10, 0))
	l.AddNode(3, geom.Pt(0, 10))
	l.AddNode(4, geom.Pt(50, 50))
	got := l.NodesNearest(geom.Pt(1, 1), 2)
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("NodesNearest = %v", got)
	}
	// Mutation invalidates the node index.
	l.AddNode(5, geom.Pt(1, 1))
	got = l.NodesNearest(geom.Pt(1, 1), 1)
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("after mutation = %v", got)
	}
	if got := New("E").NodesNearest(geom.Pt(0, 0), 3); len(got) != 0 {
		t.Errorf("empty layer = %v", got)
	}
}
