package layer

import (
	"sync"
	"testing"

	"mogis/internal/geom"
)

// TestConcurrentPointQueries exercises the lazily built indexes from
// many goroutines simultaneously: the first queries race to build the
// locator, which must happen exactly once under the mutex. Run with
// -race to verify.
func TestConcurrentPointQueries(t *testing.T) {
	l := New("L")
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			id := Gid(i*10 + j)
			x, y := float64(i*10), float64(j*10)
			l.AddPolygon(id, geom.Polygon{Shell: geom.Ring{
				geom.Pt(x, y), geom.Pt(x+10, y), geom.Pt(x+10, y+10), geom.Pt(x, y+10),
			}})
		}
	}
	l.AddPolyline(1000, geom.Polyline{geom.Pt(0, 50), geom.Pt(100, 50)})

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				p := geom.Pt(float64((w*7+k*13)%95)+0.5, float64((w*11+k*3)%95)+0.5)
				if got := l.PolygonsContaining(p); len(got) != 1 {
					errs <- "PolygonsContaining miss"
					return
				}
				_ = l.PolylinesNear(p, 5)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
