// Package trajagg implements aggregation *of* trajectories, the
// related-work direction the paper discusses in Section 2 (Meratnia &
// de By, GIS'02): the study area is divided into homogeneous spatial
// units, each unit counts how many distinct objects pass through it,
// and similar trajectories are merged into aggregated flows. The
// paper's framework produces the per-unit counts as Type-7 queries;
// this package adds the unit grid, the pass-count surface, the
// origin–destination flow matrix between zones, and the construction
// of aggregated (representative) trajectories from unit sequences.
package trajagg

import (
	"fmt"
	"sort"
	"strings"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/traj"
)

// UnitGrid divides a study area into uniform rectangular units, the
// "homogeneous spatial units" of the Meratnia–de By method.
type UnitGrid struct {
	Extent geom.BBox
	NX, NY int
	cellW  float64
	cellH  float64
}

// NewUnitGrid creates an nx × ny unit grid over extent.
func NewUnitGrid(extent geom.BBox, nx, ny int) (*UnitGrid, error) {
	if extent.IsEmpty() {
		return nil, fmt.Errorf("trajagg: empty extent")
	}
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("trajagg: grid dimensions must be positive, got %dx%d", nx, ny)
	}
	return &UnitGrid{
		Extent: extent, NX: nx, NY: ny,
		cellW: extent.Width() / float64(nx),
		cellH: extent.Height() / float64(ny),
	}, nil
}

// Units returns the number of units.
func (g *UnitGrid) Units() int { return g.NX * g.NY }

// UnitOf returns the unit index of a point, with ok=false outside the
// extent. Points on the max edges map to the last unit.
func (g *UnitGrid) UnitOf(p geom.Point) (int, bool) {
	if !g.Extent.ContainsPoint(p) {
		return 0, false
	}
	cx := int((p.X - g.Extent.MinX) / g.cellW)
	cy := int((p.Y - g.Extent.MinY) / g.cellH)
	if cx >= g.NX {
		cx = g.NX - 1
	}
	if cy >= g.NY {
		cy = g.NY - 1
	}
	return cy*g.NX + cx, true
}

// UnitBox returns the bounding box of unit u.
func (g *UnitGrid) UnitBox(u int) geom.BBox {
	cx, cy := u%g.NX, u/g.NX
	return geom.BBox{
		MinX: g.Extent.MinX + float64(cx)*g.cellW,
		MinY: g.Extent.MinY + float64(cy)*g.cellH,
		MaxX: g.Extent.MinX + float64(cx+1)*g.cellW,
		MaxY: g.Extent.MinY + float64(cy+1)*g.cellH,
	}
}

// UnitCenter returns the center of unit u.
func (g *UnitGrid) UnitCenter(u int) geom.Point { return g.UnitBox(u).Center() }

// UnitPath returns the ordered sequence of units an interpolated
// trajectory visits (consecutive duplicates collapsed). Cell
// boundaries are crossed by sampling each leg at sub-cell resolution,
// which is insensitive to sampling-interval differences — the
// property Meratnia & de By claim for their method.
func (g *UnitGrid) UnitPath(l *traj.LIT) []int {
	var path []int
	push := func(u int) {
		if len(path) == 0 || path[len(path)-1] != u {
			path = append(path, u)
		}
	}
	step := minF(g.cellW, g.cellH) / 4
	s := l.Sample()
	if len(s) == 1 {
		if u, ok := g.UnitOf(s[0].P); ok {
			push(u)
		}
		return path
	}
	for i := 0; i < l.NumLegs(); i++ {
		_, _, seg := l.Leg(i)
		n := int(seg.Length()/step) + 1
		for k := 0; k <= n; k++ {
			p := seg.At(float64(k) / float64(n))
			if u, ok := g.UnitOf(p); ok {
				push(u)
			}
		}
	}
	return path
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Surface is the pass-count surface: per unit, the number of distinct
// objects whose trajectory passes through it ("each unit is
// associated to an integer, representing the number of times any
// object passes through it").
type Surface struct {
	Grid   *UnitGrid
	Counts []int
}

// BuildSurface computes the pass-count surface for a set of
// trajectories.
func BuildSurface(g *UnitGrid, lits map[moft.Oid]*traj.LIT) *Surface {
	counts := make([]int, g.Units())
	for _, l := range lits {
		seen := make(map[int]bool)
		for _, u := range g.UnitPath(l) {
			if !seen[u] {
				seen[u] = true
				counts[u]++
			}
		}
	}
	return &Surface{Grid: g, Counts: counts}
}

// SampleSurface computes the sample-level counterpart of
// BuildSurface from a columnar snapshot: per unit, the number of
// distinct objects with at least one raw sample in the unit (no
// interpolation — an object that crosses a unit between samples does
// not count). One pass over the flat X/Y/Obj arrays; the per-unit
// "last object seen" stamp dedups because the snapshot's rows are
// grouped by object.
func SampleSurface(g *UnitGrid, cols *moft.Columns) *Surface {
	counts := make([]int, g.Units())
	last := make([]int32, g.Units())
	for i := range last {
		last[i] = -1
	}
	for row := 0; row < cols.Len(); row++ {
		u, ok := g.UnitOf(geom.Pt(cols.X[row], cols.Y[row]))
		if !ok {
			continue
		}
		if o := cols.Obj[row]; last[u] != o {
			last[u] = o
			counts[u]++
		}
	}
	return &Surface{Grid: g, Counts: counts}
}

// Max returns the maximum pass count and one unit achieving it.
func (s *Surface) Max() (unit, count int) {
	for u, c := range s.Counts {
		if c > count {
			unit, count = u, c
		}
	}
	return unit, count
}

// Total returns the sum of pass counts.
func (s *Surface) Total() int {
	var sum int
	for _, c := range s.Counts {
		sum += c
	}
	return sum
}

// HotCells returns the units with count ≥ threshold, sorted by count
// descending then unit ascending.
func (s *Surface) HotCells(threshold int) []int {
	var out []int
	for u, c := range s.Counts {
		if c >= threshold {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if s.Counts[out[i]] != s.Counts[out[j]] {
			return s.Counts[out[i]] > s.Counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Render draws the surface as an ASCII heat map (rows top to bottom),
// mapping counts to the ramp " .:-=+*#%@".
func (s *Surface) Render() string {
	const ramp = " .:-=+*#%@"
	_, maxC := s.Max()
	var sb strings.Builder
	for cy := s.Grid.NY - 1; cy >= 0; cy-- {
		for cx := 0; cx < s.Grid.NX; cx++ {
			c := s.Counts[cy*s.Grid.NX+cx]
			idx := 0
			if maxC > 0 {
				idx = c * (len(ramp) - 1) / maxC
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FlowMatrix counts object transitions between zones: flows[a][b] is
// the number of objects whose trajectory moves from zone a directly
// to zone b. Zones are arbitrary unit groupings (e.g. neighborhoods).
type FlowMatrix struct {
	Zones []string
	Flows map[string]map[string]int
}

// BuildFlows aggregates per-object zone sequences into a flow matrix.
// zoneOf maps a point to a zone name ("" = no zone, skipped).
func BuildFlows(lits map[moft.Oid]*traj.LIT, g *UnitGrid, zoneOf func(geom.Point) string) *FlowMatrix {
	fm := &FlowMatrix{Flows: make(map[string]map[string]int)}
	zones := map[string]bool{}
	for _, l := range lits {
		var seq []string
		for _, u := range g.UnitPath(l) {
			z := zoneOf(g.UnitCenter(u))
			if z == "" {
				continue
			}
			if len(seq) == 0 || seq[len(seq)-1] != z {
				seq = append(seq, z)
			}
		}
		for _, z := range seq {
			zones[z] = true
		}
		for i := 1; i < len(seq); i++ {
			a, b := seq[i-1], seq[i]
			if fm.Flows[a] == nil {
				fm.Flows[a] = make(map[string]int)
			}
			fm.Flows[a][b]++
		}
	}
	for z := range zones {
		fm.Zones = append(fm.Zones, z)
	}
	sort.Strings(fm.Zones)
	return fm
}

// Flow returns the count from zone a to zone b.
func (fm *FlowMatrix) Flow(a, b string) int { return fm.Flows[a][b] }

// TopFlows returns the n largest flows as "a→b" strings with counts,
// ties broken lexicographically.
func (fm *FlowMatrix) TopFlows(n int) []string {
	type fl struct {
		a, b string
		c    int
	}
	var all []fl
	for a, m := range fm.Flows {
		for b, c := range m {
			all = append(all, fl{a, b, c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].a != all[j].a {
			return all[i].a < all[j].a
		}
		return all[i].b < all[j].b
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s→%s: %d", all[i].a, all[i].b, all[i].c)
	}
	return out
}

// String renders the matrix as a table.
func (fm *FlowMatrix) String() string {
	var sb strings.Builder
	sb.WriteString("from\\to")
	for _, z := range fm.Zones {
		sb.WriteString("\t" + z)
	}
	sb.WriteByte('\n')
	for _, a := range fm.Zones {
		sb.WriteString(a)
		for _, b := range fm.Zones {
			fmt.Fprintf(&sb, "\t%d", fm.Flow(a, b))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// AggregateTrajectory merges the trajectories that follow a common
// unit sequence into one representative polyline through the unit
// centers, with a support count — the "aggregated trajectories" of
// Meratnia & de By. Trajectories group by their exact (collapsed)
// unit path; the method is insensitive to differences in sequence
// length and sampling interval because the unit path already
// normalizes both.
type AggregateTrajectory struct {
	Path    []int // unit sequence
	Support int   // number of merged objects
	Line    geom.Polyline
}

// Aggregate groups trajectories by unit path and returns the
// aggregates sorted by support descending (ties: shorter paths, then
// lexicographic path order).
func Aggregate(g *UnitGrid, lits map[moft.Oid]*traj.LIT) []AggregateTrajectory {
	groups := make(map[string][]int)
	for _, l := range lits {
		path := g.UnitPath(l)
		if len(path) == 0 {
			continue
		}
		key := pathKey(path)
		groups[key] = path
		_ = key
	}
	// Count support separately (groups map holds one representative
	// path per key).
	support := make(map[string]int)
	for _, l := range lits {
		path := g.UnitPath(l)
		if len(path) == 0 {
			continue
		}
		support[pathKey(path)]++
	}
	out := make([]AggregateTrajectory, 0, len(groups))
	for key, path := range groups {
		line := make(geom.Polyline, len(path))
		for i, u := range path {
			line[i] = g.UnitCenter(u)
		}
		out = append(out, AggregateTrajectory{Path: path, Support: support[key], Line: line})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		return pathKey(out[i].Path) < pathKey(out[j].Path)
	})
	return out
}

func pathKey(path []int) string {
	parts := make([]string, len(path))
	for i, u := range path {
		parts[i] = fmt.Sprintf("%d", u)
	}
	return strings.Join(parts, ",")
}
