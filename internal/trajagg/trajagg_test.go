package trajagg

import (
	"strings"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/moft"
	"mogis/internal/timedim"
	"mogis/internal/traj"
)

func grid(t *testing.T, nx, ny int) *UnitGrid {
	t.Helper()
	g, err := NewUnitGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func lit(t *testing.T, pts ...geom.Point) *traj.LIT {
	t.Helper()
	s := make(traj.Sample, len(pts))
	for i, p := range pts {
		s[i] = traj.TimePoint{T: timedim.Instant(i * 60), P: p}
	}
	l, err := traj.NewLIT(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewUnitGridErrors(t *testing.T) {
	if _, err := NewUnitGrid(geom.EmptyBBox(), 4, 4); err == nil {
		t.Error("empty extent accepted")
	}
	if _, err := NewUnitGrid(geom.BBox{MaxX: 1, MaxY: 1}, 0, 4); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestUnitOf(t *testing.T) {
	g := grid(t, 4, 4) // 25x25 cells
	cases := []struct {
		p    geom.Point
		want int
		ok   bool
	}{
		{geom.Pt(1, 1), 0, true},
		{geom.Pt(30, 1), 1, true},
		{geom.Pt(1, 30), 4, true},
		{geom.Pt(99, 99), 15, true},
		{geom.Pt(100, 100), 15, true}, // max edge clamps
		{geom.Pt(-1, 50), 0, false},
		{geom.Pt(50, 101), 0, false},
	}
	for _, c := range cases {
		got, ok := g.UnitOf(c.p)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("UnitOf(%v) = %d,%v, want %d,%v", c.p, got, ok, c.want, c.ok)
		}
	}
	if g.Units() != 16 {
		t.Errorf("Units = %d", g.Units())
	}
	box := g.UnitBox(5) // cx=1, cy=1
	if box.MinX != 25 || box.MinY != 25 || box.MaxX != 50 || box.MaxY != 50 {
		t.Errorf("UnitBox(5) = %v", box)
	}
	if c := g.UnitCenter(0); !c.Eq(geom.Pt(12.5, 12.5)) {
		t.Errorf("UnitCenter(0) = %v", c)
	}
}

func TestUnitPathStraightLine(t *testing.T) {
	g := grid(t, 4, 1) // four 25-wide columns
	l := lit(t, geom.Pt(5, 50), geom.Pt(95, 50))
	path := g.UnitPath(l)
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestUnitPathSamplingInsensitive(t *testing.T) {
	g := grid(t, 4, 4)
	// The same geometric route sampled coarsely and finely must give
	// the same unit path (the Meratnia–de By insensitivity claim).
	coarse := lit(t, geom.Pt(5, 5), geom.Pt(95, 95))
	fine := lit(t, geom.Pt(5, 5), geom.Pt(27.5, 27.5), geom.Pt(50, 50), geom.Pt(72.5, 72.5), geom.Pt(95, 95))
	pc := g.UnitPath(coarse)
	pf := g.UnitPath(fine)
	if len(pc) != len(pf) {
		t.Fatalf("coarse %v vs fine %v", pc, pf)
	}
	for i := range pc {
		if pc[i] != pf[i] {
			t.Fatalf("coarse %v vs fine %v", pc, pf)
		}
	}
}

func TestUnitPathSinglePoint(t *testing.T) {
	g := grid(t, 2, 2)
	l := lit(t, geom.Pt(10, 10))
	path := g.UnitPath(l)
	if len(path) != 1 || path[0] != 0 {
		t.Errorf("path = %v", path)
	}
	outside := lit(t, geom.Pt(-10, -10))
	if got := g.UnitPath(outside); len(got) != 0 {
		t.Errorf("outside path = %v", got)
	}
}

func testLits(t *testing.T) map[moft.Oid]*traj.LIT {
	t.Helper()
	return map[moft.Oid]*traj.LIT{
		1: lit(t, geom.Pt(5, 50), geom.Pt(95, 50)), // west→east through the middle row
		2: lit(t, geom.Pt(5, 55), geom.Pt(95, 55)), // same corridor
		3: lit(t, geom.Pt(50, 5), geom.Pt(50, 95)), // south→north through the middle column
		4: lit(t, geom.Pt(5, 5), geom.Pt(5, 5)),    // parked in the corner (degenerate)
	}
}

func TestBuildSurface(t *testing.T) {
	g := grid(t, 2, 2) // 50x50 cells
	s := BuildSurface(g, testLits(t))
	// O1,O2 pass units {0,1} (y≈50/55: unit row depends: y=50 is on
	// the boundary → clamps into row 1 for y=50? y=50 → cy=1). Let's
	// just assert structural properties.
	if s.Total() < 4 {
		t.Errorf("total = %d", s.Total())
	}
	u, c := s.Max()
	if c < 2 {
		t.Errorf("max = %d at %d", c, u)
	}
	hot := s.HotCells(1)
	if len(hot) == 0 {
		t.Error("no hot cells")
	}
	// HotCells sorted by count descending.
	for i := 1; i < len(hot); i++ {
		if s.Counts[hot[i-1]] < s.Counts[hot[i]] {
			t.Error("HotCells not sorted")
		}
	}
	r := s.Render()
	if len(strings.Split(strings.TrimRight(r, "\n"), "\n")) != 2 {
		t.Errorf("Render rows:\n%s", r)
	}
}

func TestBuildSurfaceCountsDistinctObjects(t *testing.T) {
	g := grid(t, 1, 1)
	// One object zig-zagging within the single unit counts once.
	lits := map[moft.Oid]*traj.LIT{
		1: lit(t, geom.Pt(10, 10), geom.Pt(90, 90), geom.Pt(10, 90)),
	}
	s := BuildSurface(g, lits)
	if s.Counts[0] != 1 {
		t.Errorf("count = %d, want 1 (distinct objects, not visits)", s.Counts[0])
	}
}

func TestBuildFlows(t *testing.T) {
	g := grid(t, 4, 4)
	zoneOf := func(p geom.Point) string {
		if p.X < 50 {
			return "West"
		}
		return "East"
	}
	fm := BuildFlows(testLits(t), g, zoneOf)
	// O1 and O2 go West→East; O3 stays East... x=50 → East zone
	// throughout; O4 stays West.
	if got := fm.Flow("West", "East"); got != 2 {
		t.Errorf("West→East = %d, want 2\n%s", got, fm)
	}
	if got := fm.Flow("East", "West"); got != 0 {
		t.Errorf("East→West = %d", got)
	}
	if len(fm.Zones) != 2 {
		t.Errorf("zones = %v", fm.Zones)
	}
	top := fm.TopFlows(5)
	if len(top) != 1 || !strings.Contains(top[0], "West→East: 2") {
		t.Errorf("TopFlows = %v", top)
	}
	if !strings.Contains(fm.String(), "from\\to") {
		t.Error("String header")
	}
	// Zone filter: empty names are skipped entirely.
	fmNone := BuildFlows(testLits(t), g, func(geom.Point) string { return "" })
	if len(fmNone.Zones) != 0 {
		t.Errorf("zones = %v", fmNone.Zones)
	}
}

func TestAggregate(t *testing.T) {
	g := grid(t, 2, 1) // two 50x100 halves
	lits := map[moft.Oid]*traj.LIT{
		1: lit(t, geom.Pt(10, 50), geom.Pt(90, 50)),
		2: lit(t, geom.Pt(10, 40), geom.Pt(90, 60)), // same unit path 0→1
		3: lit(t, geom.Pt(90, 50), geom.Pt(10, 50)), // reverse path 1→0
	}
	aggs := Aggregate(g, lits)
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %+v", aggs)
	}
	if aggs[0].Support != 2 || len(aggs[0].Path) != 2 || aggs[0].Path[0] != 0 {
		t.Errorf("top aggregate = %+v", aggs[0])
	}
	if aggs[1].Support != 1 || aggs[1].Path[0] != 1 {
		t.Errorf("second aggregate = %+v", aggs[1])
	}
	// Representative line goes through unit centers.
	if !aggs[0].Line[0].Eq(geom.Pt(25, 50)) || !aggs[0].Line[1].Eq(geom.Pt(75, 50)) {
		t.Errorf("line = %v", aggs[0].Line)
	}
	// Empty input.
	if got := Aggregate(g, nil); len(got) != 0 {
		t.Errorf("empty aggregate = %v", got)
	}
}

// TestSampleSurface compares the columnar one-pass build against a
// naive per-unit distinct-object count, including an object that
// revisits a unit (must count once) and samples outside the extent
// (must be skipped).
func TestSampleSurface(t *testing.T) {
	g := grid(t, 4, 4)
	tbl := moft.New("FMsurf")
	tbl.Add(1, 0, 10, 10)   // unit (0,0)
	tbl.Add(1, 60, 30, 10)  // unit (1,0)
	tbl.Add(1, 120, 10, 12) // back to unit (0,0): still one object
	tbl.Add(2, 0, 12, 14)   // unit (0,0), second object
	tbl.Add(2, 60, 80, 80)  // unit (3,3)
	tbl.Add(3, 0, 150, 150) // outside the extent: skipped
	s := SampleSurface(g, tbl.Columns())

	naive := make([]map[moft.Oid]bool, g.Units())
	for _, tp := range tbl.Tuples() {
		if u, ok := g.UnitOf(tp.Point()); ok {
			if naive[u] == nil {
				naive[u] = map[moft.Oid]bool{}
			}
			naive[u][tp.Oid] = true
		}
	}
	for u := 0; u < g.Units(); u++ {
		if s.Counts[u] != len(naive[u]) {
			t.Errorf("unit %d: count %d, naive %d", u, s.Counts[u], len(naive[u]))
		}
	}
	if u00, _ := g.UnitOf(geom.Pt(10, 10)); s.Counts[u00] != 2 {
		t.Errorf("unit(10,10) count = %d, want 2 (revisit must not double-count)", s.Counts[u00])
	}
	if s.Total() != 4 {
		t.Errorf("Total = %d, want 4", s.Total())
	}
}
