package moft

import (
	"testing"

	"mogis/internal/timedim"
)

func columnsFixture() *Table {
	t := New("FMcols")
	// Deliberately out of order: the snapshot must reflect the sorted
	// (Oid, t) view.
	t.Add(2, 30, 7, 8)
	t.Add(1, 20, 3, 4)
	t.Add(1, 10, 1, 2)
	t.Add(3, 5, -1, 9)
	t.Add(2, 25, 5, 6)
	return t
}

func TestColumnsMatchTuples(t *testing.T) {
	tbl := columnsFixture()
	cols := tbl.Columns()
	tuples := tbl.Tuples()
	if cols.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", cols.Len(), len(tuples))
	}
	for i, tp := range tuples {
		if cols.Oids[cols.Obj[i]] != tp.Oid || cols.T[i] != int64(tp.T) ||
			cols.X[i] != tp.X || cols.Y[i] != tp.Y {
			t.Errorf("row %d: (%d,%d,%g,%g) != tuple %+v",
				i, cols.Oids[cols.Obj[i]], cols.T[i], cols.X[i], cols.Y[i], tp)
		}
	}
	if cols.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d, want 3", cols.NumObjects())
	}
	for i, oid := range cols.Oids {
		lo, hi := cols.ObjectRange(i)
		want := tbl.ObjectTuples(oid)
		if hi-lo != len(want) {
			t.Errorf("O%d: range [%d,%d) has %d rows, want %d", oid, lo, hi, hi-lo, len(want))
			continue
		}
		for k, tp := range want {
			if cols.T[lo+k] != int64(tp.T) || cols.X[lo+k] != tp.X || cols.Y[lo+k] != tp.Y {
				t.Errorf("O%d row %d mismatch", oid, k)
			}
		}
	}
}

func TestColumnsAggregatesAgree(t *testing.T) {
	tbl := columnsFixture()
	cols := tbl.Columns()
	lo, hi, ok := cols.TimeSpan()
	tlo, thi, tok := tbl.TimeSpan()
	if ok != tok || lo != tlo || hi != thi {
		t.Errorf("TimeSpan: columns (%d,%d,%v), table (%d,%d,%v)", lo, hi, ok, tlo, thi, tok)
	}
	if cols.BBox() != tbl.BBox() {
		t.Errorf("BBox: columns %v, table %v", cols.BBox(), tbl.BBox())
	}

	empty := New("FMempty").Columns()
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("empty snapshot reports a time span")
	}
	if empty.Len() != 0 || empty.NumObjects() != 0 {
		t.Errorf("empty snapshot: Len=%d NumObjects=%d", empty.Len(), empty.NumObjects())
	}
}

func TestColumnsInvalidatedOnMutation(t *testing.T) {
	tbl := columnsFixture()
	c1 := tbl.Columns()
	if c2 := tbl.Columns(); c2 != c1 {
		t.Error("repeated Columns() did not return the cached snapshot")
	}
	tbl.Add(4, 99, 0, 0)
	c3 := tbl.Columns()
	if c3 == c1 {
		t.Fatal("Columns() returned the stale snapshot after Add")
	}
	if c3.Len() != c1.Len()+1 || c3.NumObjects() != 4 {
		t.Errorf("rebuilt snapshot: Len=%d NumObjects=%d", c3.Len(), c3.NumObjects())
	}
	// The old snapshot stays intact (immutable for racing readers).
	if c1.Len() != 5 {
		t.Errorf("old snapshot mutated: Len=%d", c1.Len())
	}
}

// TestColumnarScanAllocs is the allocation-regression gate for the
// columnar hot loop: once the snapshot exists, scanning it must not
// allocate at all.
func TestColumnarScanAllocs(t *testing.T) {
	tbl := New("FMalloc")
	for o := 0; o < 50; o++ {
		for s := 0; s < 100; s++ {
			tbl.Add(Oid(o), timedim.Instant(s), float64(o), float64(s))
		}
	}
	cols := tbl.Columns()
	var sink float64
	allocs := testing.AllocsPerRun(10, func() {
		sum := 0.0
		for i := 0; i < cols.Len(); i++ {
			if cols.T[i] >= 20 && cols.T[i] <= 80 {
				sum += cols.X[i] + cols.Y[i]
			}
		}
		sink = sum
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("columnar scan allocates %.0f times per pass; want 0", allocs)
	}
}
