package moft

import (
	"bytes"
	"strings"
	"testing"

	"mogis/internal/timedim"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tb := New("FM")
	// Deliberately out of order to exercise sorting.
	tb.Add(2, 30, 5, 5)
	tb.Add(1, 10, 0, 0)
	tb.Add(1, 30, 2, 2)
	tb.Add(1, 20, 1, 1)
	tb.Add(2, 10, 4, 4)
	tb.Add(3, 15, 9, 9)
	return tb
}

func TestTableSortingAndAccess(t *testing.T) {
	tb := sample(t)
	if tb.Name() != "FM" || tb.Len() != 6 {
		t.Fatalf("Name/Len = %q/%d", tb.Name(), tb.Len())
	}
	tps := tb.Tuples()
	for i := 1; i < len(tps); i++ {
		a, b := tps[i-1], tps[i]
		if a.Oid > b.Oid || (a.Oid == b.Oid && a.T > b.T) {
			t.Fatalf("not sorted at %d: %+v, %+v", i, a, b)
		}
	}
	objs := tb.Objects()
	if len(objs) != 3 || objs[0] != 1 || objs[2] != 3 {
		t.Errorf("Objects = %v", objs)
	}
	o1 := tb.ObjectTuples(1)
	if len(o1) != 3 || o1[0].T != 10 || o1[2].T != 30 {
		t.Errorf("ObjectTuples(1) = %+v", o1)
	}
	if tb.ObjectTuples(99) != nil {
		t.Error("ObjectTuples(99) should be nil")
	}
}

func TestTimeSpanAndBBox(t *testing.T) {
	tb := sample(t)
	lo, hi, ok := tb.TimeSpan()
	if !ok || lo != 10 || hi != 30 {
		t.Errorf("TimeSpan = %v,%v,%v", lo, hi, ok)
	}
	b := tb.BBox()
	if b.MinX != 0 || b.MaxX != 9 {
		t.Errorf("BBox = %v", b)
	}
	empty := New("E")
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("empty TimeSpan should fail")
	}
	if !empty.BBox().IsEmpty() {
		t.Error("empty BBox")
	}
}

func TestScan(t *testing.T) {
	tb := sample(t)
	var n int
	tb.Scan(func(Tuple) bool { n++; return true })
	if n != 6 {
		t.Errorf("Scan visited %d", n)
	}
	n = 0
	tb.Scan(func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanInterval(t *testing.T) {
	tb := sample(t)
	var got []Tuple
	tb.ScanInterval(timedim.Interval{Lo: 15, Hi: 30}, func(tp Tuple) bool {
		got = append(got, tp)
		return true
	})
	// Tuples with T in [15,30]: (1,20),(1,30),(2,30),(3,15).
	if len(got) != 4 {
		t.Fatalf("ScanInterval = %+v", got)
	}
	// Early stop.
	n := 0
	tb.ScanInterval(timedim.Interval{Lo: 0, Hi: 100}, func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestFilter(t *testing.T) {
	tb := sample(t)
	f := tb.Filter("_late", func(tp Tuple) bool { return tp.T >= 20 })
	if f.Name() != "FM_late" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tb := sample(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("FM2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() {
		t.Fatalf("roundtrip Len = %d", back.Len())
	}
	a, b := tb.Tuples(), back.Tuples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"oid,t,x,y\n1,2,3\n",   // arity
		"oid,t,x,y\nx,2,3,4\n", // bad oid
		"oid,t,x,y\n1,x,3,4\n", // bad t
		"oid,t,x,y\n1,2,x,4\n", // bad x
		"oid,t,x,y\n1,2,3,x\n", // bad y
	}
	for _, c := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	// Headerless input is accepted.
	tb, err := ReadCSV("ok", strings.NewReader("1,2,3,4\n"))
	if err != nil || tb.Len() != 1 {
		t.Errorf("headerless = %v, len %d", err, tb.Len())
	}
}

func TestString(t *testing.T) {
	tb := New("FMbus")
	tb.Add(1, 1, 2, 3)
	s := tb.String()
	if !strings.Contains(s, "FMbus") || !strings.Contains(s, "O1 | 1 | (2, 3)") {
		t.Errorf("String = %q", s)
	}
}
