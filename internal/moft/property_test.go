package moft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mogis/internal/timedim"
)

// Property: Tuples() is always sorted by (Oid, T) regardless of
// insertion order, and contains exactly the inserted rows.
func TestTuplesSortedProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New("T")
		type key struct {
			o Oid
			t timedim.Instant
		}
		inserted := map[key]int{}
		for i := 0; i < int(n); i++ {
			o := Oid(rng.Intn(5))
			ts := timedim.Instant(rng.Intn(100))
			tb.Add(o, ts, rng.Float64(), rng.Float64())
			inserted[key{o, ts}]++
		}
		tps := tb.Tuples()
		if len(tps) != int(n) {
			return false
		}
		seen := map[key]int{}
		for i, tp := range tps {
			if i > 0 {
				prev := tps[i-1]
				if prev.Oid > tp.Oid || (prev.Oid == tp.Oid && prev.T > tp.T) {
					return false
				}
			}
			seen[key{tp.Oid, tp.T}]++
		}
		for k, c := range inserted {
			if seen[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Filter output is a subset preserving order, and
// Filter(true) is the identity.
func TestFilterProperty(t *testing.T) {
	f := func(seed int64, n uint8, threshold uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New("T")
		for i := 0; i < int(n); i++ {
			tb.Add(Oid(rng.Intn(4)), timedim.Instant(rng.Intn(50)), rng.Float64()*100, 0)
		}
		th := float64(threshold % 100)
		sub := tb.Filter("_f", func(tp Tuple) bool { return tp.X < th })
		all := tb.Filter("_all", func(Tuple) bool { return true })
		if all.Len() != tb.Len() {
			return false
		}
		// Every sub tuple satisfies the predicate and appears in tb.
		for _, tp := range sub.Tuples() {
			if tp.X >= th {
				return false
			}
		}
		return sub.Len() <= tb.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ScanInterval visits exactly the tuples with T in range.
func TestScanIntervalProperty(t *testing.T) {
	f := func(seed int64, n uint8, lo8, hi8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New("T")
		for i := 0; i < int(n); i++ {
			tb.Add(Oid(rng.Intn(4)), timedim.Instant(rng.Intn(60)), 0, 0)
		}
		lo, hi := timedim.Instant(lo8%60), timedim.Instant(hi8%60)
		if hi < lo {
			lo, hi = hi, lo
		}
		iv := timedim.Interval{Lo: lo, Hi: hi}
		var visited int
		tb.ScanInterval(iv, func(tp Tuple) bool {
			if tp.T < lo || tp.T > hi {
				visited = -1 << 20
			}
			visited++
			return true
		})
		var want int
		for _, tp := range tb.Tuples() {
			if tp.T >= lo && tp.T <= hi {
				want++
			}
		}
		return visited == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
