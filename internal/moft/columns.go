package moft

import (
	"context"
	"sort"
	"sync"

	"mogis/internal/geom"
	"mogis/internal/timedim"
)

// Columns is a struct-of-arrays snapshot of a Table: the (Oid, t)
// sorted tuples decomposed into flat, parallel column slices. Hot
// loops (grid builds, polygon-aggregate scans, trajectory
// interpolation builds) stream T/X/Y sequentially instead of
// pointer-chasing Tuple structs, which keeps them bound by memory
// bandwidth rather than cache misses. A snapshot is immutable; the
// owning Table rebuilds it lazily after mutations.
type Columns struct {
	// Oids lists the distinct object identifiers in ascending order;
	// object i owns rows [Starts[i], Starts[i+1]).
	Oids []Oid
	// Starts has len(Oids)+1 entries delimiting per-object row ranges.
	Starts []int32
	// Obj holds, per row, the ordinal of its object in Oids, so
	// row-order scans can attribute samples without a search.
	Obj []int32
	// T, X, Y are the per-row instant and coordinates, in (Oid, t)
	// order.
	T []int64
	X []float64
	Y []float64

	box        geom.BBox
	minT, maxT int64

	tonce sync.Once
	tperm []int32
}

// Len returns the number of rows (samples).
func (c *Columns) Len() int { return len(c.T) }

// NumObjects returns the number of distinct objects.
func (c *Columns) NumObjects() int { return len(c.Oids) }

// ObjectRange returns the row range [lo, hi) of the i-th object.
func (c *Columns) ObjectRange(i int) (lo, hi int) {
	return int(c.Starts[i]), int(c.Starts[i+1])
}

// BBox returns the spatial bounding box of all rows, computed once at
// build time.
func (c *Columns) BBox() geom.BBox { return c.box }

// TimeSpan returns the minimum and maximum instants present, with
// ok=false for an empty snapshot.
func (c *Columns) TimeSpan() (lo, hi timedim.Instant, ok bool) {
	if len(c.T) == 0 {
		return 0, 0, false
	}
	return timedim.Instant(c.minT), timedim.Instant(c.maxT), true
}

// TimeOrder returns the row indices sorted by (instant, row) — a
// stable time ordering of the whole snapshot. It is built once on
// first use and shared between callers, so the returned slice must
// not be mutated. Because it lives inside the snapshot, it is
// invalidated with the snapshot: any table mutation that clears the
// columnar cache discards the permutation too.
func (c *Columns) TimeOrder() []int32 {
	c.tonce.Do(func() {
		p := make([]int32, len(c.T))
		for i := range p {
			p[i] = int32(i)
		}
		sort.Slice(p, func(i, j int) bool {
			if c.T[p[i]] != c.T[p[j]] {
				return c.T[p[i]] < c.T[p[j]]
			}
			return p[i] < p[j]
		})
		c.tperm = p
	})
	return c.tperm
}

// Columns returns the columnar snapshot of the table, building it on
// first use after any mutation. The snapshot is shared and must not
// be mutated; concurrent readers are safe once loading has finished
// (the build is double-checked behind the table's mutex, like the
// lazy sort).
func (t *Table) Columns() *Columns {
	c, _ := t.ColumnsCtx(context.Background())
	return c
}

// ColumnsCtx is Columns with cooperative cancellation: a build
// abandoned mid-loop returns the context's error and publishes
// nothing, so the next caller rebuilds from scratch. A snapshot that
// is already published is returned without consulting ctx.
func (t *Table) ColumnsCtx(ctx context.Context) (*Columns, error) {
	if c := t.cols.Load(); c != nil {
		return c, nil
	}
	t.ensureSorted()
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.cols.Load(); c != nil {
		return c, nil
	}
	c, err := buildColumns(ctx, t.tuples)
	if err != nil {
		return nil, err
	}
	t.cols.Store(c)
	return c, nil
}

// buildColumns decomposes (Oid, t)-sorted tuples into column slices,
// observing ctx every few thousand rows.
func buildColumns(ctx context.Context, tuples []Tuple) (*Columns, error) {
	n := len(tuples)
	c := &Columns{
		Obj: make([]int32, n),
		T:   make([]int64, n),
		X:   make([]float64, n),
		Y:   make([]float64, n),
		box: geom.EmptyBBox(),
	}
	for i, tp := range tuples {
		if i%4096 == 4095 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if i == 0 || tp.Oid != tuples[i-1].Oid {
			c.Oids = append(c.Oids, tp.Oid)
			c.Starts = append(c.Starts, int32(i))
		}
		c.Obj[i] = int32(len(c.Oids) - 1)
		c.T[i] = int64(tp.T)
		c.X[i] = tp.X
		c.Y[i] = tp.Y
		if i == 0 || c.T[i] < c.minT {
			c.minT = c.T[i]
		}
		if i == 0 || c.T[i] > c.maxT {
			c.maxT = c.T[i]
		}
		c.box = c.box.ExtendPoint(geom.Pt(tp.X, tp.Y))
	}
	c.Starts = append(c.Starts, int32(n))
	return c, nil
}
