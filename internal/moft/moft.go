// Package moft implements the paper's Moving Object Fact Table
// (Section 3): a relation of tuples (Oid, t, x, y) stating that
// object Oid was at coordinates (x, y) at instant t. The table is
// kept sorted by (Oid, t), giving per-object trajectory samples by
// slicing and time-windowed scans by binary search.
package moft

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mogis/internal/geom"
	"mogis/internal/obs"
	"mogis/internal/timedim"
)

// Oid identifies a moving object.
type Oid int64

// Tuple is one MOFT row: (Oid, t, x, y).
type Tuple struct {
	Oid Oid
	T   timedim.Instant
	X   float64
	Y   float64
}

// Point returns the spatial coordinates of the tuple.
func (tp Tuple) Point() geom.Point { return geom.Pt(tp.X, tp.Y) }

// Table is a Moving Object Fact Table. Loading (Add/AddTuple) is
// single-threaded; once loaded, any number of goroutines may read
// concurrently — the lazy (Oid, t) sort is double-checked behind a
// mutex so the first concurrent readers race only for the lock, not
// the data.
type Table struct {
	name   string
	mu     sync.Mutex // guards the lazy sort and columnar build
	tuples []Tuple
	sorted atomic.Bool
	// objIndex maps each Oid to its [start, end) range in tuples;
	// rebuilt lazily after sorting.
	objIndex map[Oid][2]int
	// cols is the lazily built columnar snapshot; cleared on mutation.
	cols atomic.Pointer[Columns]
}

// New creates an empty MOFT with the given name (e.g. "FMbus").
func New(name string) *Table {
	t := &Table{name: name, objIndex: map[Oid][2]int{}}
	t.sorted.Store(true)
	return t
}

// Name returns the fact table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Add appends a tuple.
func (t *Table) Add(oid Oid, ts timedim.Instant, x, y float64) {
	t.tuples = append(t.tuples, Tuple{Oid: oid, T: ts, X: x, Y: y})
	t.sorted.Store(false)
	t.cols.Store(nil)
}

// AddTuple appends a prebuilt tuple.
func (t *Table) AddTuple(tp Tuple) {
	t.tuples = append(t.tuples, tp)
	t.sorted.Store(false)
	t.cols.Store(nil)
}

// ensureSorted sorts by (Oid, t) and rebuilds the per-object index.
// Safe to call from concurrent readers: the atomic fast path avoids
// the lock once sorted.
func (t *Table) ensureSorted() {
	if t.sorted.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sorted.Load() {
		return
	}
	sort.SliceStable(t.tuples, func(i, j int) bool {
		a, b := t.tuples[i], t.tuples[j]
		if a.Oid != b.Oid {
			return a.Oid < b.Oid
		}
		return a.T < b.T
	})
	t.objIndex = make(map[Oid][2]int)
	start := 0
	for i := 1; i <= len(t.tuples); i++ {
		if i == len(t.tuples) || t.tuples[i].Oid != t.tuples[start].Oid {
			t.objIndex[t.tuples[start].Oid] = [2]int{start, i}
			start = i
		}
	}
	t.sorted.Store(true)
}

// Tuples returns all tuples sorted by (Oid, t). The returned slice is
// shared; callers must not mutate it.
func (t *Table) Tuples() []Tuple {
	t.ensureSorted()
	return t.tuples
}

// Objects returns the distinct object identifiers, sorted.
func (t *Table) Objects() []Oid {
	t.ensureSorted()
	out := make([]Oid, 0, len(t.objIndex))
	for o := range t.objIndex {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObjectTuples returns the tuples of one object in time order (shared
// slice).
func (t *Table) ObjectTuples(o Oid) []Tuple {
	t.ensureSorted()
	r, ok := t.objIndex[o]
	if !ok {
		return nil
	}
	return t.tuples[r[0]:r[1]]
}

// TimeSpan returns the minimum and maximum instants present, with
// ok=false for an empty table.
func (t *Table) TimeSpan() (lo, hi timedim.Instant, ok bool) {
	if len(t.tuples) == 0 {
		return 0, 0, false
	}
	first := true
	for _, tp := range t.tuples {
		if first || tp.T < lo {
			lo = tp.T
		}
		if first || tp.T > hi {
			hi = tp.T
		}
		first = false
	}
	return lo, hi, true
}

// BBox returns the spatial bounding box of all samples.
func (t *Table) BBox() geom.BBox {
	b := geom.EmptyBBox()
	for _, tp := range t.tuples {
		b = b.ExtendPoint(tp.Point())
	}
	return b
}

// Scan calls f for every tuple in (Oid, t) order; returning false
// stops the scan.
func (t *Table) Scan(f func(Tuple) bool) {
	t.ensureSorted()
	n := int64(0)
	defer func() { obs.Std.MOFTTuplesScanned.Add(n) }()
	for _, tp := range t.tuples {
		n++
		if !f(tp) {
			return
		}
	}
}

// ScanInterval calls f for every tuple with T in [iv.Lo, iv.Hi],
// using per-object binary search.
func (t *Table) ScanInterval(iv timedim.Interval, f func(Tuple) bool) {
	t.ensureSorted()
	n := int64(0)
	defer func() { obs.Std.MOFTTuplesScanned.Add(n) }()
	for _, o := range t.Objects() {
		tps := t.ObjectTuples(o)
		i := sort.Search(len(tps), func(i int) bool { return tps[i].T >= iv.Lo })
		for ; i < len(tps) && tps[i].T <= iv.Hi; i++ {
			n++
			if !f(tps[i]) {
				return
			}
		}
	}
}

// Filter returns a new table (same name, suffixed) containing the
// tuples for which keep returns true. This realizes derived fact
// tables such as the paper's FM^bus_morning.
func (t *Table) Filter(suffix string, keep func(Tuple) bool) *Table {
	out := New(t.name + suffix)
	for _, tp := range t.Tuples() {
		if keep(tp) {
			out.AddTuple(tp)
		}
	}
	return out
}

// WriteCSV writes "oid,t,x,y" rows (with header) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"oid", "t", "x", "y"}); err != nil {
		return fmt.Errorf("moft: write header: %w", err)
	}
	for _, tp := range t.Tuples() {
		rec := []string{
			strconv.FormatInt(int64(tp.Oid), 10),
			strconv.FormatInt(int64(tp.T), 10),
			strconv.FormatFloat(tp.X, 'g', -1, 64),
			strconv.FormatFloat(tp.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("moft: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("moft: read csv: %w", err)
	}
	t := New(name)
	for i, rec := range recs {
		if i == 0 && len(rec) > 0 && rec[0] == "oid" {
			continue // header
		}
		if len(rec) != 4 {
			return nil, fmt.Errorf("moft: row %d: want 4 fields, got %d", i, len(rec))
		}
		oid, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("moft: row %d oid: %w", i, err)
		}
		ts, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("moft: row %d t: %w", i, err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("moft: row %d x: %w", i, err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("moft: row %d y: %w", i, err)
		}
		t.Add(Oid(oid), timedim.Instant(ts), x, y)
	}
	return t, nil
}

// String renders the table like the paper's Table 1.
func (t *Table) String() string {
	out := fmt.Sprintf("%s: Oid | t | (x, y)\n", t.name)
	for _, tp := range t.Tuples() {
		out += fmt.Sprintf("O%d | %d | (%g, %g)\n", tp.Oid, tp.T, tp.X, tp.Y)
	}
	return out
}
