package olap

import "testing"

func antwerpDim(t *testing.T) *Dimension {
	t.Helper()
	d := NewDimension(geoSchema())
	d.SetRollup("neighborhood", "Berchem", "city", "Antwerp")
	d.SetRollup("neighborhood", "Zurenborg", "city", "Antwerp")
	d.SetRollup("neighborhood", "Ixelles", "city", "Brussels")
	d.SetRollup("city", "Antwerp", "country", "Belgium")
	d.SetRollup("city", "Brussels", "country", "Belgium")
	d.SetAttr("neighborhood", "Berchem", "income", Num(1200))
	d.SetAttr("neighborhood", "Zurenborg", "income", Num(2100))
	d.SetAttr("neighborhood", "Ixelles", "income", Num(1800))
	return d
}

func TestDimensionMembers(t *testing.T) {
	d := antwerpDim(t)
	ms := d.Members("neighborhood")
	if len(ms) != 3 {
		t.Fatalf("Members = %v", ms)
	}
	if ms[0] != "Berchem" { // sorted
		t.Errorf("first member = %q", ms[0])
	}
	if !d.HasMember("city", "Antwerp") || d.HasMember("city", "Gent") {
		t.Error("HasMember mismatch")
	}
}

func TestDimensionRollup(t *testing.T) {
	d := antwerpDim(t)
	tests := []struct {
		from, to Level
		m, want  Member
		ok       bool
	}{
		{"neighborhood", "city", "Berchem", "Antwerp", true},
		{"neighborhood", "country", "Berchem", "Belgium", true},
		{"neighborhood", "country", "Ixelles", "Belgium", true},
		{"city", "country", "Antwerp", "Belgium", true},
		{"neighborhood", LevelAll, "Berchem", MemberAll, true},
		{"neighborhood", "city", "Nowhere", "", false},
		{"city", "neighborhood", "Antwerp", "", false},
	}
	for _, tt := range tests {
		got, ok := d.Rollup(tt.from, tt.to, tt.m)
		if ok != tt.ok || got != tt.want {
			t.Errorf("Rollup(%s,%s,%s) = %q,%v, want %q,%v", tt.from, tt.to, tt.m, got, ok, tt.want, tt.ok)
		}
	}
	// Identity.
	if got, ok := d.Rollup("city", "city", "Antwerp"); !ok || got != "Antwerp" {
		t.Errorf("identity rollup = %q,%v", got, ok)
	}
}

func TestDimensionMembersBelow(t *testing.T) {
	d := antwerpDim(t)
	got := d.MembersBelow("neighborhood", "city", "Antwerp")
	if len(got) != 2 || got[0] != "Berchem" || got[1] != "Zurenborg" {
		t.Errorf("MembersBelow = %v", got)
	}
	got = d.MembersBelow("neighborhood", "country", "Belgium")
	if len(got) != 3 {
		t.Errorf("MembersBelow country = %v", got)
	}
}

func TestDimensionAttrs(t *testing.T) {
	d := antwerpDim(t)
	v, ok := d.Attr("neighborhood", "Berchem", "income")
	if !ok {
		t.Fatal("missing attr")
	}
	if n, _ := v.Num(); n != 1200 {
		t.Errorf("income = %v", v)
	}
	if _, ok := d.Attr("neighborhood", "Berchem", "nope"); ok {
		t.Error("unexpected attr")
	}
}

func TestDimensionValidateOK(t *testing.T) {
	if err := antwerpDim(t).Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestDimensionValidatePartialRollup(t *testing.T) {
	d := antwerpDim(t)
	d.AddMember("neighborhood", "Orphan") // no rollup to city
	if err := d.Validate(); err == nil {
		t.Error("expected totality violation")
	}
}

func TestDimensionValidatePathIndependence(t *testing.T) {
	// Diamond: station → line → network and station → zone → network.
	s := NewSchema("Transit").
		AddEdge("station", "line").
		AddEdge("line", "network").
		AddEdge("station", "zone").
		AddEdge("zone", "network")
	d := NewDimension(s)
	d.SetRollup("station", "Central", "line", "L1")
	d.SetRollup("station", "Central", "zone", "Z1")
	d.SetRollup("line", "L1", "network", "N1")
	d.SetRollup("zone", "Z1", "network", "N1")
	if err := d.Validate(); err != nil {
		t.Errorf("consistent diamond: %v", err)
	}
	// Now break path independence.
	d.SetRollup("zone", "Z1", "network", "N2")
	d.SetRollup("line", "L1", "network", "N1")
	if err := d.Validate(); err == nil {
		t.Error("expected path-independence violation")
	}
}

func TestDimensionValidateForeignEdge(t *testing.T) {
	d := NewDimension(geoSchema())
	d.rollups[edgeKey{"city", "planet"}] = map[Member]Member{"Antwerp": "Earth"}
	if err := d.Validate(); err == nil {
		t.Error("expected foreign edge error")
	}
}
