package olap

import (
	"fmt"
	"sort"
	"strings"
)

// DimCol describes one dimension coordinate column of a fact table:
// which dimension it references and at which level the facts are
// recorded.
type DimCol struct {
	Name      string
	Dimension *Dimension
	Level     Level
}

// FactSchema is the schema of a classical fact table: dimension
// columns plus measure columns.
type FactSchema struct {
	Dims     []DimCol
	Measures []string
}

// FactTable holds rows of dimension coordinates and measures, the
// "classical fact tables in the application part" of Section 3.
type FactTable struct {
	schema FactSchema
	rows   []FactRow
}

// FactRow is one fact: coordinates parallel to the schema's Dims and
// measures parallel to the schema's Measures.
type FactRow struct {
	Coords   []Member
	Measures []float64
}

// NewFactTable creates an empty fact table with the given schema.
func NewFactTable(schema FactSchema) *FactTable {
	return &FactTable{schema: schema}
}

// Schema returns the fact table schema.
func (f *FactTable) Schema() FactSchema { return f.schema }

// Len returns the number of rows.
func (f *FactTable) Len() int { return len(f.rows) }

// Rows returns the underlying rows (shared slice; callers must not
// mutate).
func (f *FactTable) Rows() []FactRow { return f.rows }

// Add appends a fact row after arity checking.
func (f *FactTable) Add(coords []Member, measures []float64) error {
	if len(coords) != len(f.schema.Dims) {
		return fmt.Errorf("olap: got %d coords, want %d", len(coords), len(f.schema.Dims))
	}
	if len(measures) != len(f.schema.Measures) {
		return fmt.Errorf("olap: got %d measures, want %d", len(measures), len(f.schema.Measures))
	}
	f.rows = append(f.rows, FactRow{
		Coords:   append([]Member(nil), coords...),
		Measures: append([]float64(nil), measures...),
	})
	return nil
}

// MustAdd is Add that panics on arity errors; for test and example
// setup code.
func (f *FactTable) MustAdd(coords []Member, measures []float64) {
	if err := f.Add(coords, measures); err != nil {
		panic(err)
	}
}

// dimIndex returns the index of the dimension column with the given
// name.
func (f *FactTable) dimIndex(name string) (int, error) {
	for i, d := range f.schema.Dims {
		if d.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("olap: no dimension column %q", name)
}

// measureIndex returns the index of the named measure.
func (f *FactTable) measureIndex(name string) (int, error) {
	for i, m := range f.schema.Measures {
		if m == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("olap: no measure %q", name)
}

// GroupSpec names a grouping column for RollupAggregate: the fact
// table dimension column and the (coarser or equal) level to roll its
// coordinates up to.
type GroupSpec struct {
	DimName string
	ToLevel Level
}

// AggResultRow is one group of an aggregation result.
type AggResultRow struct {
	Group []Member
	Value float64
	N     int64
}

// AggResult is the relation produced by the γ operator: one row per
// group, sorted by group key.
type AggResult struct {
	GroupCols []string
	Rows      []AggResultRow
}

// Lookup returns the value for an exact group key.
func (r *AggResult) Lookup(key ...Member) (float64, bool) {
	for _, row := range r.Rows {
		if len(row.Group) != len(key) {
			continue
		}
		match := true
		for i := range key {
			if row.Group[i] != key[i] {
				match = false
				break
			}
		}
		if match {
			return row.Value, true
		}
	}
	return 0, false
}

// String renders the result as an aligned table.
func (r *AggResult) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.GroupCols, " | "))
	sb.WriteString(" | value\n")
	for _, row := range r.Rows {
		for _, g := range row.Group {
			sb.WriteString(string(g))
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%g\n", row.Value)
	}
	return sb.String()
}

// Gamma is the aggregate operation γ_{f,A,X}(r) of Definition 7:
// group the fact rows by the coordinates of the columns named in
// groupBy (at their stored levels) and aggregate measure with fn.
// For COUNT, measure may be empty.
func (f *FactTable) Gamma(fn AggFunc, measure string, groupBy []string) (*AggResult, error) {
	specs := make([]GroupSpec, len(groupBy))
	for i, g := range groupBy {
		idx, err := f.dimIndex(g)
		if err != nil {
			return nil, err
		}
		specs[i] = GroupSpec{DimName: g, ToLevel: f.schema.Dims[idx].Level}
	}
	return f.RollupAggregate(fn, measure, specs)
}

// RollupAggregate generalizes Gamma by first rolling each grouping
// coordinate up to a coarser level through its dimension instance,
// then grouping and aggregating. This is the fact-aggregation-along-
// geometric-dimensions operation the paper motivates in Example 1.
func (f *FactTable) RollupAggregate(fn AggFunc, measure string, groups []GroupSpec) (*AggResult, error) {
	mIdx := -1
	if fn != Count || measure != "" {
		var err error
		mIdx, err = f.measureIndex(measure)
		if err != nil {
			return nil, err
		}
	}
	type gcol struct {
		dimIdx int
		to     Level
	}
	gcols := make([]gcol, len(groups))
	cols := make([]string, len(groups))
	for i, g := range groups {
		idx, err := f.dimIndex(g.DimName)
		if err != nil {
			return nil, err
		}
		dc := f.schema.Dims[idx]
		if dc.Dimension != nil && !dc.Dimension.Schema().PathExists(dc.Level, g.ToLevel) {
			return nil, fmt.Errorf("olap: no rollup path %s→%s in dimension %q",
				dc.Level, g.ToLevel, dc.Dimension.Name())
		}
		gcols[i] = gcol{dimIdx: idx, to: g.ToLevel}
		cols[i] = fmt.Sprintf("%s@%s", g.DimName, g.ToLevel)
	}

	accs := make(map[string]*Accumulator)
	keys := make(map[string][]Member)
	for _, row := range f.rows {
		key := make([]Member, len(gcols))
		ok := true
		for i, gc := range gcols {
			dc := f.schema.Dims[gc.dimIdx]
			m := row.Coords[gc.dimIdx]
			if gc.to != dc.Level {
				up, found := dc.Dimension.Rollup(dc.Level, gc.to, m)
				if !found {
					ok = false
					break
				}
				m = up
			}
			key[i] = m
		}
		if !ok {
			continue // row not mapped by the rollup: excluded, like a failed join
		}
		ks := joinKey(key)
		acc := accs[ks]
		if acc == nil {
			acc = NewAccumulator(fn)
			accs[ks] = acc
			keys[ks] = key
		}
		if mIdx >= 0 {
			acc.Add(row.Measures[mIdx])
		} else {
			acc.AddCount()
		}
	}

	res := &AggResult{GroupCols: cols}
	for ks, acc := range accs {
		v, ok := acc.Result()
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, AggResultRow{Group: keys[ks], Value: v, N: acc.N()})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return joinKey(res.Rows[i].Group) < joinKey(res.Rows[j].Group)
	})
	return res, nil
}

func joinKey(ms []Member) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, "\x1f")
}

// Slice returns a new fact table containing only the rows whose
// coordinate in dimension column dimName rolls up to member want at
// level lvl (the OLAP slice operation).
func (f *FactTable) Slice(dimName string, lvl Level, want Member) (*FactTable, error) {
	idx, err := f.dimIndex(dimName)
	if err != nil {
		return nil, err
	}
	dc := f.schema.Dims[idx]
	out := NewFactTable(f.schema)
	for _, row := range f.rows {
		m := row.Coords[idx]
		if lvl != dc.Level {
			up, ok := dc.Dimension.Rollup(dc.Level, lvl, m)
			if !ok {
				continue
			}
			m = up
		}
		if m == want {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// Dice returns a new fact table with only the rows satisfying pred,
// which receives the row's coordinates (the OLAP dice operation;
// Slice is the single-member special case).
func (f *FactTable) Dice(pred func(coords []Member) bool) *FactTable {
	out := NewFactTable(f.schema)
	for _, row := range f.rows {
		if pred(row.Coords) {
			out.rows = append(out.rows, row)
		}
	}
	return out
}
