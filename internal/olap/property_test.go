package olap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: rollup composition is associative along paths — rolling
// a→c directly equals rolling a→b then b→c, for randomly generated
// consistent dimension instances.
func TestRollupCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema("D").AddEdge("a", "b").AddEdge("b", "c")
		d := NewDimension(s)
		nb := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(3)
		for i := 0; i < nb; i++ {
			d.SetRollup("b", member("B", i), "c", member("C", rng.Intn(nc)))
		}
		na := 3 + rng.Intn(8)
		for i := 0; i < na; i++ {
			d.SetRollup("a", member("A", i), "b", member("B", rng.Intn(nb)))
		}
		for i := 0; i < na; i++ {
			m := member("A", i)
			direct, ok1 := d.Rollup("a", "c", m)
			viaB, ok2 := d.Rollup("a", "b", m)
			if !ok1 || !ok2 {
				return false
			}
			composed, ok3 := d.Rollup("b", "c", viaB)
			if !ok3 || composed != direct {
				return false
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func member(prefix string, i int) Member {
	return Member(prefix + string(rune('0'+i)))
}

// Property: SUM grouped by any level partitions the total — the sum
// of group values equals the ungrouped total (summarizability of
// distributive aggregates over total rollups).
func TestGammaPartitionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema("D").AddEdge("leaf", "mid")
		d := NewDimension(s)
		for i := 0; i < 6; i++ {
			d.SetRollup("leaf", member("L", i), "mid", member("M", i%2))
		}
		ft := NewFactTable(FactSchema{
			Dims:     []DimCol{{Name: "d", Dimension: d, Level: "leaf"}},
			Measures: []string{"v"},
		})
		var total float64
		for i := 0; i < int(n); i++ {
			v := float64(rng.Intn(1000))
			ft.MustAdd([]Member{member("L", rng.Intn(6))}, []float64{v})
			total += v
		}
		for _, lvl := range []Level{"leaf", "mid", LevelAll} {
			res, err := ft.RollupAggregate(Sum, "v", []GroupSpec{{DimName: "d", ToLevel: lvl}})
			if err != nil {
				return false
			}
			var got float64
			for _, row := range res.Rows {
				got += row.Value
			}
			if int(n) > 0 && got != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: COUNT per group sums to the row count; MIN ≤ AVG ≤ MAX
// per group.
func TestAggregateOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		ft := NewFactTable(FactSchema{
			Dims:     []DimCol{{Name: "g", Level: "g"}},
			Measures: []string{"v"},
		})
		for i := 0; i < int(n); i++ {
			ft.MustAdd([]Member{member("G", rng.Intn(3))}, []float64{rng.Float64()*200 - 100})
		}
		cnt, _ := ft.Gamma(Count, "", []string{"g"})
		var rows float64
		for _, r := range cnt.Rows {
			rows += r.Value
		}
		if rows != float64(n) {
			return false
		}
		mins, _ := ft.Gamma(Min, "v", []string{"g"})
		avgs, _ := ft.Gamma(Avg, "v", []string{"g"})
		maxs, _ := ft.Gamma(Max, "v", []string{"g"})
		for i := range mins.Rows {
			lo := mins.Rows[i].Value
			mid := avgs.Rows[i].Value
			hi := maxs.Rows[i].Value
			if !(lo <= mid+1e-9 && mid <= hi+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
