package olap

import (
	"math"
	"strings"
	"testing"
)

func popFacts(t *testing.T) (*FactTable, *Dimension) {
	t.Helper()
	d := antwerpDim(t)
	ft := NewFactTable(FactSchema{
		Dims: []DimCol{
			{Name: "place", Dimension: d, Level: "neighborhood"},
			{Name: "year", Dimension: nil, Level: "year"},
		},
		Measures: []string{"population"},
	})
	ft.MustAdd([]Member{"Berchem", "2005"}, []float64{40000})
	ft.MustAdd([]Member{"Zurenborg", "2005"}, []float64{12000})
	ft.MustAdd([]Member{"Ixelles", "2005"}, []float64{80000})
	ft.MustAdd([]Member{"Berchem", "2006"}, []float64{42000})
	ft.MustAdd([]Member{"Zurenborg", "2006"}, []float64{12500})
	ft.MustAdd([]Member{"Ixelles", "2006"}, []float64{81000})
	return ft, d
}

func TestFactTableAddArity(t *testing.T) {
	ft, _ := popFacts(t)
	if ft.Len() != 6 {
		t.Fatalf("Len = %d", ft.Len())
	}
	if err := ft.Add([]Member{"only-one"}, []float64{1}); err == nil {
		t.Error("expected coord arity error")
	}
	if err := ft.Add([]Member{"a", "b"}, nil); err == nil {
		t.Error("expected measure arity error")
	}
}

func TestGammaSumByPlace(t *testing.T) {
	ft, _ := popFacts(t)
	res, err := ft.Gamma(Sum, "population", []string{"place"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, ok := res.Lookup("Berchem"); !ok || v != 82000 {
		t.Errorf("Berchem = %v,%v", v, ok)
	}
}

func TestGammaCount(t *testing.T) {
	ft, _ := popFacts(t)
	res, err := ft.Gamma(Count, "", []string{"year"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Lookup("2005"); !ok || v != 3 {
		t.Errorf("count 2005 = %v,%v", v, ok)
	}
}

func TestGammaAvgMinMax(t *testing.T) {
	ft, _ := popFacts(t)
	res, err := ft.Gamma(Avg, "population", []string{"year"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Lookup("2005"); math.Abs(v-44000) > 1e-9 {
		t.Errorf("avg 2005 = %v", v)
	}
	res, _ = ft.Gamma(Min, "population", []string{"year"})
	if v, _ := res.Lookup("2006"); v != 12500 {
		t.Errorf("min 2006 = %v", v)
	}
	res, _ = ft.Gamma(Max, "population", []string{"year"})
	if v, _ := res.Lookup("2006"); v != 81000 {
		t.Errorf("max 2006 = %v", v)
	}
}

func TestRollupAggregateToCity(t *testing.T) {
	ft, _ := popFacts(t)
	res, err := ft.RollupAggregate(Sum, "population", []GroupSpec{
		{DimName: "place", ToLevel: "city"},
		{DimName: "year", ToLevel: "year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Lookup("Antwerp", "2005"); !ok || v != 52000 {
		t.Errorf("Antwerp 2005 = %v,%v", v, ok)
	}
	if v, ok := res.Lookup("Brussels", "2006"); !ok || v != 81000 {
		t.Errorf("Brussels 2006 = %v,%v", v, ok)
	}
}

func TestRollupAggregateToAll(t *testing.T) {
	ft, _ := popFacts(t)
	res, err := ft.RollupAggregate(Sum, "population", []GroupSpec{
		{DimName: "place", ToLevel: LevelAll},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := 40000.0 + 12000 + 80000 + 42000 + 12500 + 81000
	if res.Rows[0].Value != want {
		t.Errorf("total = %v, want %v", res.Rows[0].Value, want)
	}
}

func TestRollupAggregateBadPath(t *testing.T) {
	ft, _ := popFacts(t)
	_, err := ft.RollupAggregate(Sum, "population", []GroupSpec{
		{DimName: "place", ToLevel: "galaxy"},
	})
	if err == nil {
		t.Error("expected error for unknown level")
	}
	_, err = ft.Gamma(Sum, "population", []string{"nope"})
	if err == nil {
		t.Error("expected error for unknown column")
	}
	_, err = ft.Gamma(Sum, "nope", []string{"place"})
	if err == nil {
		t.Error("expected error for unknown measure")
	}
}

func TestSlice(t *testing.T) {
	ft, _ := popFacts(t)
	sliced, err := ft.Slice("place", "city", "Antwerp")
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Len() != 4 {
		t.Errorf("sliced Len = %d, want 4", sliced.Len())
	}
	sliced2, err := ft.Slice("year", "year", "2005")
	if err != nil {
		t.Fatal(err)
	}
	if sliced2.Len() != 3 {
		t.Errorf("sliced2 Len = %d", sliced2.Len())
	}
	if _, err := ft.Slice("nope", "x", "y"); err == nil {
		t.Error("expected error")
	}
}

func TestAggResultString(t *testing.T) {
	ft, _ := popFacts(t)
	res, _ := ft.Gamma(Sum, "population", []string{"year"})
	s := res.String()
	if !strings.Contains(s, "year@year") || !strings.Contains(s, "2005") {
		t.Errorf("String = %q", s)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	for _, fn := range []AggFunc{Min, Max, Sum, Avg} {
		if _, ok := NewAccumulator(fn).Result(); ok {
			t.Errorf("%s over empty should be undefined", fn)
		}
	}
	if v, ok := NewAccumulator(Count).Result(); !ok || v != 0 {
		t.Errorf("COUNT over empty = %v,%v", v, ok)
	}
}

func TestAggregateOneShot(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	cases := []struct {
		fn   AggFunc
		want float64
	}{
		{Min, 1}, {Max, 5}, {Sum, 14}, {Avg, 2.8}, {Count, 5},
	}
	for _, c := range cases {
		got, ok := Aggregate(c.fn, vals)
		if !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v,%v, want %v", c.fn, got, ok, c.want)
		}
	}
}

func TestParseAggFunc(t *testing.T) {
	if _, err := ParseAggFunc("SUM"); err != nil {
		t.Error(err)
	}
	if _, err := ParseAggFunc("MEDIAN"); err == nil {
		t.Error("expected error")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Num(1), Num(2), -1, true},
		{Num(2), Num(2), 0, true},
		{Num(3), Num(2), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Null, Num(1), -1, true},
		{Num(1), Null, 1, true},
		{Null, Null, 0, true},
		{Num(1), Str("a"), 0, false},
	}
	for _, tt := range tests {
		c, ok := tt.a.Compare(tt.b)
		if ok != tt.ok || (ok && c != tt.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", tt.a, tt.b, c, ok, tt.cmp, tt.ok)
		}
	}
	if !Num(5).Equal(Num(5)) || Num(5).Equal(Str("5")) {
		t.Error("Equal mismatch")
	}
	if Num(1.5).String() != "1.5" || Str("x").String() != "x" || Null.String() != "NULL" {
		t.Error("String mismatch")
	}
}

func TestDice(t *testing.T) {
	ft, _ := popFacts(t)
	diced := ft.Dice(func(coords []Member) bool {
		return coords[1] == "2006" && coords[0] != "Ixelles"
	})
	if diced.Len() != 2 {
		t.Errorf("diced Len = %d, want 2", diced.Len())
	}
	res, err := diced.Gamma(Sum, "population", []string{"year"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Lookup("2006"); v != 42000+12500 {
		t.Errorf("diced sum = %v", v)
	}
	// Dice with an always-false predicate yields an empty table.
	if ft.Dice(func([]Member) bool { return false }).Len() != 0 {
		t.Error("empty dice")
	}
}
