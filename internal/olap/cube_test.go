package olap

import (
	"math"
	"testing"
)

func cubeFixture(t *testing.T) (*FactTable, *Dimension) {
	t.Helper()
	d := antwerpDim(t)
	timeDim := NewDimension(NewSchema("When").AddEdge("year", "decade"))
	timeDim.SetRollup("year", "2005", "decade", "2000s")
	timeDim.SetRollup("year", "2006", "decade", "2000s")
	ft := NewFactTable(FactSchema{
		Dims: []DimCol{
			{Name: "place", Dimension: d, Level: "neighborhood"},
			{Name: "when", Dimension: timeDim, Level: "year"},
		},
		Measures: []string{"population"},
	})
	ft.MustAdd([]Member{"Berchem", "2005"}, []float64{40000})
	ft.MustAdd([]Member{"Zurenborg", "2005"}, []float64{12000})
	ft.MustAdd([]Member{"Ixelles", "2005"}, []float64{80000})
	ft.MustAdd([]Member{"Berchem", "2006"}, []float64{42000})
	ft.MustAdd([]Member{"Zurenborg", "2006"}, []float64{12500})
	ft.MustAdd([]Member{"Ixelles", "2006"}, []float64{81000})
	return ft, d
}

func cubeLevels() [][]Level {
	return [][]Level{
		{"neighborhood", "city", "country"},
		{"year", "decade"},
	}
}

func TestMaterializeViews(t *testing.T) {
	ft, _ := cubeFixture(t)
	c, err := Materialize(ft, Sum, "population", cubeLevels())
	if err != nil {
		t.Fatal(err)
	}
	// 3 place levels × 2 time levels = 6 views.
	if c.NumViews() != 6 {
		t.Fatalf("views = %d", c.NumViews())
	}
	// Finest view.
	if v, ok := c.Value([]Level{"neighborhood", "year"}, "Berchem", "2005"); !ok || v != 40000 {
		t.Errorf("finest cell = %v,%v", v, ok)
	}
	// Rolled up to city × year (derived from the finest view).
	if v, ok := c.Value([]Level{"city", "year"}, "Antwerp", "2005"); !ok || v != 52000 {
		t.Errorf("city cell = %v,%v", v, ok)
	}
	// Fully rolled up.
	if v, ok := c.Value([]Level{"country", "decade"}, "Belgium", "2000s"); !ok || v != 267500 {
		t.Errorf("top cell = %v,%v", v, ok)
	}
}

// TestDerivedViewsMatchDirect cross-checks every derived view against
// direct computation from the base facts, for every distributive
// function.
func TestDerivedViewsMatchDirect(t *testing.T) {
	ft, _ := cubeFixture(t)
	for _, fn := range []AggFunc{Sum, Count, Min, Max} {
		c, err := Materialize(ft, fn, "population", cubeLevels())
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		for _, pl := range cubeLevels()[0] {
			for _, tl := range cubeLevels()[1] {
				view, ok := c.View(pl, tl)
				if !ok {
					t.Fatalf("%s: missing view %s×%s", fn, pl, tl)
				}
				direct, err := ft.RollupAggregate(fn, "population", []GroupSpec{
					{DimName: "place", ToLevel: pl},
					{DimName: "when", ToLevel: tl},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(view.Rows) != len(direct.Rows) {
					t.Fatalf("%s %s×%s: %d rows vs %d", fn, pl, tl, len(view.Rows), len(direct.Rows))
				}
				for i := range view.Rows {
					if math.Abs(view.Rows[i].Value-direct.Rows[i].Value) > 1e-9 {
						t.Errorf("%s %s×%s row %d: %v vs %v", fn, pl, tl, i,
							view.Rows[i].Value, direct.Rows[i].Value)
					}
				}
			}
		}
	}
}

// TestAvgViews: AVG is not distributive; the cube must still produce
// correct values (computed directly).
func TestAvgViews(t *testing.T) {
	ft, _ := cubeFixture(t)
	c, err := Materialize(ft, Avg, "population", cubeLevels())
	if err != nil {
		t.Fatal(err)
	}
	// AVG over Antwerp 2005 = (40000+12000)/2.
	if v, ok := c.Value([]Level{"city", "year"}, "Antwerp", "2005"); !ok || v != 26000 {
		t.Errorf("avg city cell = %v,%v", v, ok)
	}
	// A derived-style AVG would wrongly average the two city averages;
	// assert the true mean at the top.
	want := (40000.0 + 12000 + 80000 + 42000 + 12500 + 81000) / 6
	if v, ok := c.Value([]Level{"country", "decade"}, "Belgium", "2000s"); !ok || math.Abs(v-want) > 1e-9 {
		t.Errorf("avg top cell = %v,%v want %v", v, ok, want)
	}
}

func TestMaterializeErrors(t *testing.T) {
	ft, _ := cubeFixture(t)
	if _, err := Materialize(ft, Sum, "population", [][]Level{{"neighborhood"}}); err == nil {
		t.Error("dim count mismatch accepted")
	}
	if _, err := Materialize(ft, Sum, "population", [][]Level{{}, {"year"}}); err == nil {
		t.Error("empty level list accepted")
	}
	if _, err := Materialize(ft, Sum, "population", [][]Level{{"city"}, {"year"}}); err == nil {
		t.Error("non-stored first level accepted")
	}
	if _, err := Materialize(ft, Sum, "population", [][]Level{{"neighborhood", "galaxy"}, {"year"}}); err == nil {
		t.Error("unreachable level accepted")
	}
	if _, err := Materialize(ft, Sum, "nope", cubeLevels()); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestCubeNavigation(t *testing.T) {
	ft, _ := cubeFixture(t)
	c, err := Materialize(ft, Sum, "population", cubeLevels())
	if err != nil {
		t.Fatal(err)
	}
	cur := []Level{"neighborhood", "year"}
	up, ok := c.RollUp(cur, 0)
	if !ok || up[0] != "city" {
		t.Errorf("RollUp = %v,%v", up, ok)
	}
	up2, ok := c.RollUp(up, 0)
	if !ok || up2[0] != "country" {
		t.Errorf("RollUp² = %v,%v", up2, ok)
	}
	if _, ok := c.RollUp(up2, 0); ok {
		t.Error("RollUp beyond coarsest accepted")
	}
	down, ok := c.DrillDown(up, 0)
	if !ok || down[0] != "neighborhood" {
		t.Errorf("DrillDown = %v,%v", down, ok)
	}
	if _, ok := c.DrillDown(cur, 0); ok {
		t.Error("DrillDown beyond finest accepted")
	}
	if _, ok := c.RollUp(cur, 9); ok {
		t.Error("bad dim index accepted")
	}
	if _, ok := c.View("bogus", "year"); ok {
		t.Error("unknown view accepted")
	}
	if _, ok := c.Value([]Level{"bogus", "year"}, "x", "y"); ok {
		t.Error("unknown view Value accepted")
	}
}
