package olap

import (
	"fmt"
	"sort"
)

// Level is the name of a dimension level (category), e.g.
// "neighborhood" or "city".
type Level string

// LevelAll is the distinguished top level present in every dimension.
const LevelAll Level = "All"

// MemberAll is the single member of LevelAll.
const MemberAll = "all"

// Schema is a dimension schema: a name, a set of levels and a
// child→parent relation whose reflexive-transitive closure is the
// partial order ⪯ of the paper's Definition 1. Every schema
// implicitly contains LevelAll above all other levels.
type Schema struct {
	name    string
	parents map[Level][]Level // direct child → parents edges
	levels  map[Level]bool
}

// NewSchema creates a dimension schema with the given name.
func NewSchema(name string) *Schema {
	return &Schema{
		name:    name,
		parents: make(map[Level][]Level),
		levels:  map[Level]bool{LevelAll: true},
	}
}

// Name returns the dimension name.
func (s *Schema) Name() string { return s.name }

// AddLevel declares a level. Adding LevelAll is a no-op.
func (s *Schema) AddLevel(l Level) *Schema {
	s.levels[l] = true
	return s
}

// AddEdge declares that child rolls up directly to parent
// (child → parent in the paper's notation). Both levels are declared
// implicitly.
func (s *Schema) AddEdge(child, parent Level) *Schema {
	s.levels[child] = true
	s.levels[parent] = true
	s.parents[child] = append(s.parents[child], parent)
	return s
}

// HasLevel reports whether l is a level of the schema.
func (s *Schema) HasLevel(l Level) bool { return s.levels[l] }

// Levels returns all levels sorted by name (LevelAll included).
func (s *Schema) Levels() []Level {
	out := make([]Level, 0, len(s.levels))
	for l := range s.levels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the direct parents of l, plus LevelAll for levels
// with no declared parent (other than LevelAll itself).
func (s *Schema) Parents(l Level) []Level {
	if l == LevelAll {
		return nil
	}
	ps := s.parents[l]
	if len(ps) == 0 {
		return []Level{LevelAll}
	}
	return ps
}

// PathExists reports whether from ⪯ to, i.e. a rollup path exists.
func (s *Schema) PathExists(from, to Level) bool {
	if !s.levels[from] || !s.levels[to] {
		return false
	}
	if from == to {
		return true
	}
	if to == LevelAll {
		return true
	}
	seen := map[Level]bool{from: true}
	stack := []Level{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.Parents(cur) {
			if p == to {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Path returns one rollup path from → … → to (inclusive), or nil when
// none exists. BFS gives a shortest path, which instance rollup
// composition follows.
func (s *Schema) Path(from, to Level) []Level {
	if !s.PathExists(from, to) {
		return nil
	}
	if from == to {
		return []Level{from}
	}
	type qe struct {
		l    Level
		path []Level
	}
	seen := map[Level]bool{from: true}
	queue := []qe{{l: from, path: []Level{from}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range s.Parents(cur.l) {
			if seen[p] {
				continue
			}
			next := append(append([]Level(nil), cur.path...), p)
			if p == to {
				return next
			}
			seen[p] = true
			queue = append(queue, qe{l: p, path: next})
		}
	}
	return nil
}

// Validate checks the schema is a DAG (the partial order must be
// antisymmetric).
func (s *Schema) Validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Level]int)
	var visit func(Level) error
	visit = func(l Level) error {
		color[l] = gray
		for _, p := range s.Parents(l) {
			switch color[p] {
			case gray:
				return fmt.Errorf("olap: cycle through level %q in dimension %q", p, s.name)
			case white:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[l] = black
		return nil
	}
	for l := range s.levels {
		if color[l] == white {
			if err := visit(l); err != nil {
				return err
			}
		}
	}
	return nil
}
