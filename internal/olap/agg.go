package olap

import (
	"fmt"
	"math"
)

// AggFunc names an aggregate function from the paper's AGG set
// (Definition 7).
type AggFunc string

// The extension of AGG in Definition 7.
const (
	Min   AggFunc = "MIN"
	Max   AggFunc = "MAX"
	Count AggFunc = "COUNT"
	Sum   AggFunc = "SUM"
	Avg   AggFunc = "AVG"
)

// ParseAggFunc resolves a (case-sensitive) aggregate function name.
func ParseAggFunc(s string) (AggFunc, error) {
	switch AggFunc(s) {
	case Min, Max, Count, Sum, Avg:
		return AggFunc(s), nil
	}
	return "", fmt.Errorf("olap: unknown aggregate function %q", s)
}

// Accumulator incrementally computes one aggregate over float64
// inputs.
type Accumulator struct {
	fn  AggFunc
	n   int64
	sum float64
	min float64
	max float64
}

// NewAccumulator returns an empty accumulator for fn.
func NewAccumulator(fn AggFunc) *Accumulator {
	return &Accumulator{fn: fn, min: math.Inf(1), max: math.Inf(-1)}
}

// Add feeds one value.
func (a *Accumulator) Add(v float64) {
	a.n++
	a.sum += v
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

// AddCount feeds one row for COUNT without a measure value.
func (a *Accumulator) AddCount() { a.n++ }

// N returns the number of inputs seen.
func (a *Accumulator) N() int64 { return a.n }

// Result returns the aggregate value; ok=false when the input was
// empty and the aggregate is undefined (all but COUNT).
func (a *Accumulator) Result() (float64, bool) {
	if a.fn == Count {
		return float64(a.n), true
	}
	if a.n == 0 {
		return 0, false
	}
	switch a.fn {
	case Min:
		return a.min, true
	case Max:
		return a.max, true
	case Sum:
		return a.sum, true
	case Avg:
		return a.sum / float64(a.n), true
	default:
		return 0, false
	}
}

// Aggregate applies fn to a slice of values in one shot.
func Aggregate(fn AggFunc, vals []float64) (float64, bool) {
	acc := NewAccumulator(fn)
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Result()
}
