package olap

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates Value variants.
type ValueKind int

// Value kinds.
const (
	NullValue ValueKind = iota
	NumberValue
	StringValue
)

// Value is a typed scalar attribute or measure value: a number, a
// string, or null.
type Value struct {
	kind ValueKind
	num  float64
	str  string
}

// Null is the null value.
var Null = Value{}

// Num builds a numeric value.
func Num(f float64) Value { return Value{kind: NumberValue, num: f} }

// Str builds a string value.
func Str(s string) Value { return Value{kind: StringValue, str: s} }

// Kind returns the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == NullValue }

// Num returns the numeric content, with ok=false for non-numbers.
func (v Value) Num() (float64, bool) { return v.num, v.kind == NumberValue }

// Str returns the string content, with ok=false for non-strings.
func (v Value) Str() (string, bool) { return v.str, v.kind == StringValue }

// Compare orders two values: numbers numerically, strings
// lexicographically, null below everything; comparing a number with a
// string returns ok=false.
func (v Value) Compare(o Value) (int, bool) {
	switch {
	case v.kind == NullValue && o.kind == NullValue:
		return 0, true
	case v.kind == NullValue:
		return -1, true
	case o.kind == NullValue:
		return 1, true
	case v.kind != o.kind:
		return 0, false
	case v.kind == NumberValue:
		switch {
		case v.num < o.num:
			return -1, true
		case v.num > o.num:
			return 1, true
		default:
			return 0, true
		}
	default:
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	}
}

// Equal reports whether the two values are identical.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case NumberValue:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case StringValue:
		return v.str
	default:
		return "NULL"
	}
}

// GoString aids debugging output.
func (v Value) GoString() string {
	switch v.kind {
	case NumberValue:
		return fmt.Sprintf("Num(%g)", v.num)
	case StringValue:
		return fmt.Sprintf("Str(%q)", v.str)
	default:
		return "Null"
	}
}
