package olap

import (
	"fmt"
	"sort"
)

// Member identifies an element of a dimension level, e.g. the
// neighborhood "Berchem".
type Member string

// Dimension is a dimension instance: a schema plus, for each edge of
// the schema, a rollup function RUP mapping child members to parent
// members, and optional attributes attached to members (the paper's
// "each category may even have attributes associated, like
// population").
type Dimension struct {
	schema  *Schema
	members map[Level]map[Member]bool
	rollups map[edgeKey]map[Member]Member
	attrs   map[Level]map[Member]map[string]Value
}

type edgeKey struct {
	child, parent Level
}

// NewDimension creates an empty instance of schema.
func NewDimension(schema *Schema) *Dimension {
	return &Dimension{
		schema:  schema,
		members: map[Level]map[Member]bool{LevelAll: {MemberAll: true}},
		rollups: make(map[edgeKey]map[Member]Member),
		attrs:   make(map[Level]map[Member]map[string]Value),
	}
}

// Schema returns the dimension schema.
func (d *Dimension) Schema() *Schema { return d.schema }

// Name returns the dimension name.
func (d *Dimension) Name() string { return d.schema.Name() }

// AddMember declares a member at a level.
func (d *Dimension) AddMember(l Level, m Member) *Dimension {
	if d.members[l] == nil {
		d.members[l] = make(map[Member]bool)
	}
	d.members[l][m] = true
	return d
}

// Members returns the members of level l, sorted.
func (d *Dimension) Members(l Level) []Member {
	out := make([]Member, 0, len(d.members[l]))
	for m := range d.members[l] {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasMember reports whether m is a member of level l.
func (d *Dimension) HasMember(l Level, m Member) bool { return d.members[l][m] }

// SetRollup records that child member cm at level child rolls up to
// parent member pm at level parent, declaring both members.
func (d *Dimension) SetRollup(child Level, cm Member, parent Level, pm Member) *Dimension {
	d.AddMember(child, cm)
	d.AddMember(parent, pm)
	k := edgeKey{child, parent}
	if d.rollups[k] == nil {
		d.rollups[k] = make(map[Member]Member)
	}
	d.rollups[k][cm] = pm
	return d
}

// SetAttr attaches an attribute value to a member.
func (d *Dimension) SetAttr(l Level, m Member, attr string, v Value) *Dimension {
	d.AddMember(l, m)
	if d.attrs[l] == nil {
		d.attrs[l] = make(map[Member]map[string]Value)
	}
	if d.attrs[l][m] == nil {
		d.attrs[l][m] = make(map[string]Value)
	}
	d.attrs[l][m][attr] = v
	return d
}

// Attr returns the attribute value for a member, with ok=false when
// absent.
func (d *Dimension) Attr(l Level, m Member, attr string) (Value, bool) {
	v, ok := d.attrs[l][m][attr]
	return v, ok
}

// Rollup maps member m from level `from` up to level `to`, following
// a shortest schema path (the paper's R^j_i rollup functions). For
// from == to it is the identity; rolling to LevelAll yields MemberAll.
func (d *Dimension) Rollup(from, to Level, m Member) (Member, bool) {
	if from == to {
		return m, d.HasMember(from, m) || from == LevelAll && m == MemberAll
	}
	if to == LevelAll {
		return MemberAll, true
	}
	path := d.schema.Path(from, to)
	if path == nil {
		return "", false
	}
	cur := m
	for i := 0; i+1 < len(path); i++ {
		next, ok := d.rollups[edgeKey{path[i], path[i+1]}][cur]
		if !ok {
			return "", false
		}
		cur = next
	}
	return cur, true
}

// MembersBelow returns the members of level `from` that roll up to
// member pm of level `to`, sorted. It inverts Rollup by enumeration.
func (d *Dimension) MembersBelow(from, to Level, pm Member) []Member {
	var out []Member
	for m := range d.members[from] {
		if got, ok := d.Rollup(from, to, m); ok && got == pm {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks instance consistency: every declared rollup edge
// must correspond to a schema edge, every member of a child level
// with a declared schema edge must map under it (totality of RUP,
// required for summarizability), and rollup composition must be
// path-independent for every member and reachable upper level.
func (d *Dimension) Validate() error {
	for k := range d.rollups {
		found := false
		for _, p := range d.schema.Parents(k.child) {
			if p == k.parent {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("olap: rollup %s→%s not in schema of %q", k.child, k.parent, d.Name())
		}
	}
	for l, ms := range d.members {
		for _, p := range d.schema.Parents(l) {
			if p == LevelAll {
				continue
			}
			for m := range ms {
				if _, ok := d.rollups[edgeKey{l, p}][m]; !ok {
					return fmt.Errorf("olap: member %q of %s has no rollup to %s in %q", m, l, p, d.Name())
				}
			}
		}
	}
	// Path independence: compare results across all simple paths.
	for l, ms := range d.members {
		for _, to := range d.schema.Levels() {
			if to == l || to == LevelAll || !d.schema.PathExists(l, to) {
				continue
			}
			for m := range ms {
				got := make(map[Member]bool)
				d.allPathResults(l, to, m, got)
				if len(got) > 1 {
					return fmt.Errorf("olap: member %q of %s rolls up to %d distinct members of %s in %q",
						m, l, len(got), to, d.Name())
				}
			}
		}
	}
	return nil
}

// allPathResults collects the results of rolling member m from level l
// to level `to` along every schema path.
func (d *Dimension) allPathResults(l, to Level, m Member, out map[Member]bool) {
	if l == to {
		out[m] = true
		return
	}
	for _, p := range d.schema.Parents(l) {
		if p == LevelAll {
			continue
		}
		if !d.schema.PathExists(p, to) && p != to {
			continue
		}
		if next, ok := d.rollups[edgeKey{l, p}][m]; ok {
			d.allPathResults(p, to, next, out)
		}
	}
}
