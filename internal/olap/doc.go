// Package olap implements the classical OLAP substrate the paper
// builds on (Section 3): dimension schemas as sets of levels with a
// partial order (Hurtado, Mendelzon & Vaisman, ICDE'99), dimension
// instances with rollup functions between levels, fact tables over
// dimension coordinates, and the aggregate operation γ_{f,A,X} of
// Definition 7 with AGG = {MIN, MAX, COUNT, SUM, AVG}.
package olap
