package olap

import (
	"fmt"
	"sort"
	"strings"
)

// Cube is a materialized data cube: the γ aggregation of one measure
// precomputed at every requested combination of dimension levels, the
// structure the paper's Section 1 places at the heart of OLAP ("data
// is perceived as a data cube, where each cell contains a measure").
//
// Views at coarser levels are derived from the finest materialized
// view when the aggregate function is distributive (SUM, COUNT, MIN,
// MAX) — the classical summarizability optimization; AVG views are
// computed from SUM and COUNT views.
type Cube struct {
	fact    *FactTable
	fn      AggFunc
	measure string
	levels  [][]Level // per dimension column: levels to materialize, finest first
	views   map[string]*AggResult
}

// Materialize precomputes the cube. levelsPerDim lists, for each
// dimension column of the fact table (same order), the levels to
// materialize; each list must start with the column's stored level
// (the finest view) and contain only levels reachable from it.
func Materialize(ft *FactTable, fn AggFunc, measure string, levelsPerDim [][]Level) (*Cube, error) {
	if len(levelsPerDim) != len(ft.Schema().Dims) {
		return nil, fmt.Errorf("olap: got levels for %d dims, fact table has %d",
			len(levelsPerDim), len(ft.Schema().Dims))
	}
	for i, dc := range ft.Schema().Dims {
		if len(levelsPerDim[i]) == 0 {
			return nil, fmt.Errorf("olap: dimension %q has no levels to materialize", dc.Name)
		}
		if levelsPerDim[i][0] != dc.Level {
			return nil, fmt.Errorf("olap: dimension %q: first level must be the stored level %q, got %q",
				dc.Name, dc.Level, levelsPerDim[i][0])
		}
		for _, l := range levelsPerDim[i][1:] {
			if dc.Dimension == nil {
				return nil, fmt.Errorf("olap: dimension %q has no instance to roll up to %q", dc.Name, l)
			}
			if !dc.Dimension.Schema().PathExists(dc.Level, l) {
				return nil, fmt.Errorf("olap: dimension %q: no path %s→%s", dc.Name, dc.Level, l)
			}
		}
	}
	c := &Cube{fact: ft, fn: fn, measure: measure, levels: levelsPerDim, views: map[string]*AggResult{}}

	// Enumerate all level combinations (cross product).
	combos := [][]Level{{}}
	for _, ls := range levelsPerDim {
		var next [][]Level
		for _, combo := range combos {
			for _, l := range ls {
				next = append(next, append(append([]Level(nil), combo...), l))
			}
		}
		combos = next
	}
	// The finest view first.
	finest := make([]Level, len(levelsPerDim))
	for i, ls := range levelsPerDim {
		finest[i] = ls[0]
	}
	if err := c.materializeView(finest); err != nil {
		return nil, err
	}
	for _, combo := range combos {
		if viewKey(combo) == viewKey(finest) {
			continue
		}
		if err := c.materializeView(combo); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func viewKey(levels []Level) string {
	parts := make([]string, len(levels))
	for i, l := range levels {
		parts[i] = string(l)
	}
	return strings.Join(parts, "\x1f")
}

// materializeView computes one view, reusing the finest view for
// distributive aggregates.
func (c *Cube) materializeView(levels []Level) error {
	finest := make([]Level, len(c.levels))
	for i, ls := range c.levels {
		finest[i] = ls[0]
	}
	if viewKey(levels) != viewKey(finest) && c.fn != Avg {
		if base, ok := c.views[viewKey(finest)]; ok {
			derived, err := c.deriveView(base, finest, levels)
			if err == nil {
				c.views[viewKey(levels)] = derived
				return nil
			}
			// Fall through to direct computation on derivation errors.
		}
	}
	specs := make([]GroupSpec, len(levels))
	for i, l := range levels {
		specs[i] = GroupSpec{DimName: c.fact.Schema().Dims[i].Name, ToLevel: l}
	}
	res, err := c.fact.RollupAggregate(c.fn, c.measure, specs)
	if err != nil {
		return err
	}
	c.views[viewKey(levels)] = res
	return nil
}

// deriveView re-aggregates a finer view's rows to coarser levels via
// dimension rollups — valid only for distributive functions.
func (c *Cube) deriveView(base *AggResult, from, to []Level) (*AggResult, error) {
	dims := c.fact.Schema().Dims
	accs := make(map[string]*Accumulator)
	keys := make(map[string][]Member)
	for _, row := range base.Rows {
		key := make([]Member, len(to))
		ok := true
		for i := range to {
			m := row.Group[i]
			if to[i] != from[i] {
				up, found := dims[i].Dimension.Rollup(from[i], to[i], m)
				if !found {
					ok = false
					break
				}
				m = up
			}
			key[i] = m
		}
		if !ok {
			continue
		}
		ks := joinKey(key)
		acc := accs[ks]
		if acc == nil {
			acc = NewAccumulator(c.fn)
			accs[ks] = acc
			keys[ks] = key
		}
		// Distributive re-aggregation: feed the sub-aggregate. COUNT
		// sums sub-counts, so it re-enters as a SUM over counts.
		if c.fn == Count {
			for k := int64(0); k < row.N; k++ {
				acc.AddCount()
			}
		} else {
			acc.Add(row.Value)
		}
	}
	cols := make([]string, len(to))
	for i, l := range to {
		cols[i] = fmt.Sprintf("%s@%s", dims[i].Name, l)
	}
	out := &AggResult{GroupCols: cols}
	for ks, acc := range accs {
		v, ok := acc.Result()
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, AggResultRow{Group: keys[ks], Value: v, N: acc.N()})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		return joinKey(out.Rows[i].Group) < joinKey(out.Rows[j].Group)
	})
	return out, nil
}

// View returns the materialized view at the given level combination.
func (c *Cube) View(levels ...Level) (*AggResult, bool) {
	v, ok := c.views[viewKey(levels)]
	return v, ok
}

// Value returns one cell of a view.
func (c *Cube) Value(levels []Level, key ...Member) (float64, bool) {
	v, ok := c.View(levels...)
	if !ok {
		return 0, false
	}
	return v.Lookup(key...)
}

// NumViews returns the number of materialized views.
func (c *Cube) NumViews() int { return len(c.views) }

// RollUp returns the view one level coarser than `levels` along
// dimension column dimIdx (the next level in the materialization
// list), with ok=false at the coarsest materialized level.
func (c *Cube) RollUp(levels []Level, dimIdx int) ([]Level, bool) {
	return c.step(levels, dimIdx, +1)
}

// DrillDown returns the view one level finer along dimension column
// dimIdx, with ok=false at the finest level.
func (c *Cube) DrillDown(levels []Level, dimIdx int) ([]Level, bool) {
	return c.step(levels, dimIdx, -1)
}

func (c *Cube) step(levels []Level, dimIdx, delta int) ([]Level, bool) {
	if dimIdx < 0 || dimIdx >= len(levels) {
		return nil, false
	}
	ls := c.levels[dimIdx]
	cur := -1
	for i, l := range ls {
		if l == levels[dimIdx] {
			cur = i
			break
		}
	}
	next := cur + delta
	if cur < 0 || next < 0 || next >= len(ls) {
		return nil, false
	}
	out := append([]Level(nil), levels...)
	out[dimIdx] = ls[next]
	return out, true
}
