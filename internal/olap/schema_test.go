package olap

import "testing"

func geoSchema() *Schema {
	return NewSchema("Geo").
		AddEdge("neighborhood", "city").
		AddEdge("city", "country")
}

func TestSchemaBasics(t *testing.T) {
	s := geoSchema()
	if s.Name() != "Geo" {
		t.Errorf("Name = %q", s.Name())
	}
	for _, l := range []Level{"neighborhood", "city", "country", LevelAll} {
		if !s.HasLevel(l) {
			t.Errorf("missing level %q", l)
		}
	}
	if s.HasLevel("street") {
		t.Error("unexpected level")
	}
	if got := len(s.Levels()); got != 4 {
		t.Errorf("Levels count = %d", got)
	}
}

func TestSchemaPathExists(t *testing.T) {
	s := geoSchema()
	tests := []struct {
		from, to Level
		want     bool
	}{
		{"neighborhood", "city", true},
		{"neighborhood", "country", true},
		{"neighborhood", LevelAll, true},
		{"city", "neighborhood", false},
		{"city", "city", true},
		{"country", LevelAll, true},
		{"nosuch", "city", false},
		{"city", "nosuch", false},
	}
	for _, tt := range tests {
		if got := s.PathExists(tt.from, tt.to); got != tt.want {
			t.Errorf("PathExists(%s,%s) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestSchemaPath(t *testing.T) {
	s := geoSchema()
	p := s.Path("neighborhood", "country")
	want := []Level{"neighborhood", "city", "country"}
	if len(p) != len(want) {
		t.Fatalf("Path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if p := s.Path("city", "city"); len(p) != 1 || p[0] != "city" {
		t.Errorf("identity path = %v", p)
	}
	if p := s.Path("country", "neighborhood"); p != nil {
		t.Errorf("downward path = %v", p)
	}
}

func TestSchemaDiamond(t *testing.T) {
	// day → month → year and day → week; both month and week under All.
	s := NewSchema("Time").
		AddEdge("day", "month").
		AddEdge("month", "year").
		AddEdge("day", "week")
	if !s.PathExists("day", "year") {
		t.Error("day should reach year")
	}
	if !s.PathExists("week", LevelAll) {
		t.Error("week should reach All")
	}
	if s.PathExists("week", "year") {
		t.Error("week must not reach year")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestSchemaValidateCycle(t *testing.T) {
	s := NewSchema("Bad").
		AddEdge("a", "b").
		AddEdge("b", "c").
		AddEdge("c", "a")
	if err := s.Validate(); err == nil {
		t.Error("expected cycle error")
	}
}

func TestSchemaParentsDefault(t *testing.T) {
	s := NewSchema("D").AddLevel("leaf")
	ps := s.Parents("leaf")
	if len(ps) != 1 || ps[0] != LevelAll {
		t.Errorf("Parents = %v, want [All]", ps)
	}
	if got := s.Parents(LevelAll); got != nil {
		t.Errorf("Parents(All) = %v", got)
	}
}
