package olap_test

import (
	"fmt"

	"mogis/internal/olap"
)

// The γ operator of Definition 7 with a rollup along the dimension
// hierarchy (neighborhood → city).
func ExampleFactTable_RollupAggregate() {
	schema := olap.NewSchema("Geo").AddEdge("neighborhood", "city")
	dim := olap.NewDimension(schema)
	dim.SetRollup("neighborhood", "Meir", "city", "Antwerp")
	dim.SetRollup("neighborhood", "Dam", "city", "Antwerp")
	dim.SetRollup("neighborhood", "Ixelles", "city", "Brussels")

	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: dim, Level: "neighborhood"}},
		Measures: []string{"population"},
	})
	ft.MustAdd([]olap.Member{"Meir"}, []float64{60000})
	ft.MustAdd([]olap.Member{"Dam"}, []float64{45000})
	ft.MustAdd([]olap.Member{"Ixelles"}, []float64{80000})

	res, _ := ft.RollupAggregate(olap.Sum, "population", []olap.GroupSpec{
		{DimName: "place", ToLevel: "city"},
	})
	fmt.Print(res)
	// Output:
	// place@city | value
	// Antwerp | 105000
	// Brussels | 80000
}

// Cube materialization precomputes every requested level combination;
// distributive views are derived from finer ones.
func ExampleMaterialize() {
	schema := olap.NewSchema("Geo").AddEdge("neighborhood", "city")
	dim := olap.NewDimension(schema)
	dim.SetRollup("neighborhood", "Meir", "city", "Antwerp")
	dim.SetRollup("neighborhood", "Dam", "city", "Antwerp")

	ft := olap.NewFactTable(olap.FactSchema{
		Dims:     []olap.DimCol{{Name: "place", Dimension: dim, Level: "neighborhood"}},
		Measures: []string{"population"},
	})
	ft.MustAdd([]olap.Member{"Meir"}, []float64{60000})
	ft.MustAdd([]olap.Member{"Dam"}, []float64{45000})

	cube, _ := olap.Materialize(ft, olap.Sum, "population",
		[][]olap.Level{{"neighborhood", "city"}})
	v, _ := cube.Value([]olap.Level{"city"}, "Antwerp")
	fmt.Println("Antwerp:", v)
	// Output: Antwerp: 105000
}
