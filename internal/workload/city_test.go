package workload

import (
	"context"

	"math"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/timedim"
)

func TestGenCityDeterministic(t *testing.T) {
	a := GenCity(CityConfig{Seed: 7, Cols: 4, Rows: 4})
	b := GenCity(CityConfig{Seed: 7, Cols: 4, Rows: 4})
	if a.Ln.Count(layer.KindPolygon) != 16 || b.Ln.Count(layer.KindPolygon) != 16 {
		t.Fatalf("polygon counts = %d, %d", a.Ln.Count(layer.KindPolygon), b.Ln.Count(layer.KindPolygon))
	}
	for _, id := range a.Ln.IDs(layer.KindPolygon) {
		pa, _ := a.Ln.Polygon(id)
		pb, _ := b.Ln.Polygon(id)
		if pa.Centroid() != pb.Centroid() {
			t.Fatalf("polygon %d differs between same-seed runs", id)
		}
	}
	c := GenCity(CityConfig{Seed: 8, Cols: 4, Rows: 4})
	same := true
	for _, id := range a.Ln.IDs(layer.KindPolygon) {
		pa, _ := a.Ln.Polygon(id)
		pc, _ := c.Ln.Polygon(id)
		if pa.Centroid() != pc.Centroid() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cities")
	}
}

func TestGenCityPartition(t *testing.T) {
	c := GenCity(CityConfig{Seed: 3, Cols: 5, Rows: 4, CellSize: 50})
	// Cells partition the extent: areas sum to the extent area.
	var sum float64
	for _, id := range c.Ln.IDs(layer.KindPolygon) {
		pg, _ := c.Ln.Polygon(id)
		if err := pg.Validate(); err != nil {
			t.Fatalf("polygon %d invalid: %v", id, err)
		}
		sum += pg.Area()
	}
	if math.Abs(sum-c.Extent.Area()) > 1e-6 {
		t.Errorf("partition area = %v, extent = %v", sum, c.Extent.Area())
	}
	// Every interior point lies in at least one polygon.
	for _, p := range []geom.Point{
		{X: 10, Y: 10}, {X: 125, Y: 99}, {X: 249, Y: 199},
	} {
		if got := c.Ln.PolygonsContaining(p); len(got) == 0 {
			t.Errorf("point %v in no polygon", p)
		}
	}
}

func TestGenCityValidates(t *testing.T) {
	c := GenCity(CityConfig{Seed: 1})
	if err := c.GIS.Validate(); err != nil {
		t.Fatalf("GIS validate: %v", err)
	}
	if got := len(c.LowIncomeIDs); got == 0 || got == c.Ln.Count(layer.KindPolygon) {
		t.Errorf("low-income count = %d of %d", got, c.Ln.Count(layer.KindPolygon))
	}
	// Income attributes agree with LowIncomeIDs.
	low := map[layer.Gid]bool{}
	for _, id := range c.LowIncomeIDs {
		low[id] = true
	}
	for _, m := range c.Neighborhoods.Members("neighborhood") {
		v, ok := c.Neighborhoods.Attr("neighborhood", m, "income")
		if !ok {
			t.Fatalf("missing income for %s", m)
		}
		income, _ := v.Num()
		_, id, _ := c.Ln.Alpha("neighb", string(m))
		if low[id] != (income < 1500) {
			t.Errorf("%s: income %v vs low flag %v", m, income, low[id])
		}
	}
	// River and streets exist.
	if c.Lr.Count(layer.KindPolyline) != 1 {
		t.Error("missing river")
	}
	if c.Lh.Count(layer.KindPolyline) != (c.Cfg.Cols+1)+(c.Cfg.Rows+1) {
		t.Errorf("streets = %d", c.Lh.Count(layer.KindPolyline))
	}
	if c.Ls.Count(layer.KindNode) != c.Cfg.Schools || c.Lstores.Count(layer.KindNode) != c.Cfg.Stores {
		t.Error("schools/stores counts")
	}
	if len(c.Layers()) != 5 {
		t.Error("Layers map")
	}
}

func TestGenTrajectories(t *testing.T) {
	c := GenCity(CityConfig{Seed: 5, Cols: 4, Rows: 4})
	fm := GenTrajectories(c.Extent, TrajConfig{Seed: 5, Objects: 10, Samples: 20})
	if fm.Len() != 200 {
		t.Fatalf("samples = %d", fm.Len())
	}
	if got := len(fm.Objects()); got != 10 {
		t.Fatalf("objects = %d", got)
	}
	// Samples stay within the extent and times are strictly
	// increasing per object.
	for _, oid := range fm.Objects() {
		tps := fm.ObjectTuples(oid)
		for i, tp := range tps {
			if !c.Extent.ContainsPoint(tp.Point()) {
				t.Fatalf("O%d sample %v outside extent", oid, tp.Point())
			}
			if i > 0 && tp.T <= tps[i-1].T {
				t.Fatalf("O%d timestamps not increasing", oid)
			}
		}
	}
	// Motion respects the speed limit between consecutive samples.
	cfg := TrajConfig{}.withDefaults()
	for _, oid := range fm.Objects() {
		tps := fm.ObjectTuples(oid)
		for i := 1; i < len(tps); i++ {
			d := tps[i].Point().Dist(tps[i-1].Point())
			dt := float64(tps[i].T - tps[i-1].T)
			if d > cfg.Speed*dt+1e-9 {
				t.Fatalf("O%d leg %d exceeds speed: %v over %vs", oid, i, d, dt)
			}
		}
	}
	// Deterministic.
	fm2 := GenTrajectories(c.Extent, TrajConfig{Seed: 5, Objects: 10, Samples: 20})
	a, b := fm.Tuples(), fm2.Tuples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed trajectories differ")
		}
	}
}

func TestCityContextEndToEnd(t *testing.T) {
	c := GenCity(CityConfig{Seed: 11, Cols: 4, Rows: 4})
	fm := GenTrajectories(c.Extent, TrajConfig{Seed: 11, Objects: 5, Samples: 10})
	ctx, eng := c.Context(fm)
	if ctx == nil || eng == nil {
		t.Fatal("nil context/engine")
	}
	lits, err := eng.Trajectories(context.Background(), "FM")
	if err != nil {
		t.Fatal(err)
	}
	if len(lits) != 5 {
		t.Errorf("trajectories = %d", len(lits))
	}
	// A per-object stats query works.
	st, err := eng.TrajectoryAggregate(context.Background(), "FM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 10 || st.Length <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := timedim.Rollup(timedim.CatHour, fm.Tuples()[0].T); !ok {
		t.Error("rollup failed")
	}
}

func TestConfigDefaults(t *testing.T) {
	cc := CityConfig{}.withDefaults()
	if cc.Cols != 8 || cc.Rows != 8 || cc.CellSize != 100 || cc.Jitter != 0.25 {
		t.Errorf("city defaults = %+v", cc)
	}
	tc := TrajConfig{}.withDefaults()
	if tc.Objects != 100 || tc.Step != 60 || tc.Samples != 60 || tc.Speed != 1.5 {
		t.Errorf("traj defaults = %+v", tc)
	}
	// Out-of-range values fall back.
	cc2 := CityConfig{Jitter: 0.9, LowIncomeFrac: 2}.withDefaults()
	if cc2.Jitter != 0.25 || cc2.LowIncomeFrac != 0.3 {
		t.Errorf("clamped = %+v", cc2)
	}
}
