// Package workload generates deterministic synthetic cities and
// moving-object workloads for the experiments in EXPERIMENTS.md. The
// paper's evaluation is a hand-drawn six-bus example; these
// generators scale that setting (neighborhood partitions with income
// attributes, a river, streets, schools, stores, and sampled
// trajectories) to the sizes the benchmark sweeps need.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/geom"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/olap"
	"mogis/internal/timedim"
)

// CityConfig controls synthetic city generation.
type CityConfig struct {
	Seed     int64
	Cols     int     // neighborhood grid columns (default 8)
	Rows     int     // neighborhood grid rows (default 8)
	CellSize float64 // neighborhood cell size (default 100)
	Jitter   float64 // interior vertex jitter as a fraction of cell size (default 0.25)
	Schools  int     // school nodes (default 16)
	Stores   int     // store nodes (default 16)
	// LowIncomeFrac is the fraction of neighborhoods with income below
	// the 1500 threshold (default 0.3).
	LowIncomeFrac float64
}

func (c CityConfig) withDefaults() CityConfig {
	if c.Cols <= 0 {
		c.Cols = 8
	}
	if c.Rows <= 0 {
		c.Rows = 8
	}
	if c.CellSize <= 0 {
		c.CellSize = 100
	}
	if c.Jitter <= 0 || c.Jitter >= 0.5 {
		c.Jitter = 0.25
	}
	if c.Schools <= 0 {
		c.Schools = 16
	}
	if c.Stores <= 0 {
		c.Stores = 16
	}
	if c.LowIncomeFrac <= 0 || c.LowIncomeFrac > 1 {
		c.LowIncomeFrac = 0.3
	}
	return c
}

// City is a generated city instance wired into a GIS dimension.
type City struct {
	Cfg    CityConfig
	Extent geom.BBox

	Ln      *layer.Layer // neighborhoods (polygons)
	Lr      *layer.Layer // river (polyline)
	Lh      *layer.Layer // streets (polylines)
	Ls      *layer.Layer // schools (nodes)
	Lstores *layer.Layer // stores (nodes)

	GIS           *gis.Dimension
	Neighborhoods *olap.Dimension

	// LowIncomeIDs are the polygon ids with income < 1500.
	LowIncomeIDs []layer.Gid
}

// GenCity builds a deterministic synthetic city: a perturbed-grid
// neighborhood partition (shared vertices keep it a true partition),
// income and population attributes, a river crossing the city, a
// street grid, and school/store point layers.
func GenCity(cfg CityConfig) *City {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &City{Cfg: cfg}
	w := float64(cfg.Cols) * cfg.CellSize
	h := float64(cfg.Rows) * cfg.CellSize
	c.Extent = geom.BBox{MinX: 0, MinY: 0, MaxX: w, MaxY: h}

	// Perturbed grid vertices; boundary vertices stay on the hull so
	// the cells partition the extent exactly.
	verts := make([][]geom.Point, cfg.Cols+1)
	for i := range verts {
		verts[i] = make([]geom.Point, cfg.Rows+1)
		for j := range verts[i] {
			x := float64(i) * cfg.CellSize
			y := float64(j) * cfg.CellSize
			if i > 0 && i < cfg.Cols {
				x += (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellSize
			}
			if j > 0 && j < cfg.Rows {
				y += (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellSize
			}
			verts[i][j] = geom.Pt(x, y)
		}
	}

	c.Ln = layer.New("Ln")
	c.Neighborhoods = olap.NewDimension(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	id := layer.Gid(0)
	for i := 0; i < cfg.Cols; i++ {
		for j := 0; j < cfg.Rows; j++ {
			id++
			pg := geom.Polygon{Shell: geom.Ring{
				verts[i][j], verts[i+1][j], verts[i+1][j+1], verts[i][j+1],
			}}
			c.Ln.AddPolygon(id, pg)
			name := fmt.Sprintf("N%02d_%02d", i, j)
			c.Ln.SetAlpha("neighb", layer.KindPolygon, name, id)
			income := 1500 + rng.Float64()*1500 // high income by default
			if rng.Float64() < cfg.LowIncomeFrac {
				income = 800 + rng.Float64()*699 // below threshold
				c.LowIncomeIDs = append(c.LowIncomeIDs, id)
			}
			c.Neighborhoods.SetRollup("neighborhood", olap.Member(name), "city", "SynthCity")
			c.Neighborhoods.SetAttr("neighborhood", olap.Member(name), "income", olap.Num(math.Round(income)))
			c.Neighborhoods.SetAttr("neighborhood", olap.Member(name), "population",
				olap.Num(math.Round(5000+rng.Float64()*95000)))
		}
	}

	// River: a horizontal wavy polyline through the middle.
	c.Lr = layer.New("Lr")
	var river geom.Polyline
	midY := h / 2
	steps := cfg.Cols * 2
	for k := 0; k <= steps; k++ {
		x := float64(k) / float64(steps) * w
		y := midY + math.Sin(float64(k)*0.9)*cfg.CellSize*0.3
		river = append(river, geom.Pt(x, y))
	}
	c.Lr.AddPolyline(1, river)
	c.Lr.SetAlpha("river", layer.KindPolyline, "River", 1)

	// Streets: one horizontal and one vertical polyline per grid line.
	c.Lh = layer.New("Lh")
	sid := layer.Gid(0)
	for j := 0; j <= cfg.Rows; j++ {
		sid++
		y := float64(j) * cfg.CellSize
		c.Lh.AddPolyline(sid, geom.Polyline{geom.Pt(0, y), geom.Pt(w, y)})
		c.Lh.SetAlpha("street", layer.KindPolyline, fmt.Sprintf("H%02d", j), sid)
	}
	for i := 0; i <= cfg.Cols; i++ {
		sid++
		x := float64(i) * cfg.CellSize
		c.Lh.AddPolyline(sid, geom.Polyline{geom.Pt(x, 0), geom.Pt(x, h)})
		c.Lh.SetAlpha("street", layer.KindPolyline, fmt.Sprintf("V%02d", i), sid)
	}

	// Schools and stores: uniform random nodes.
	c.Ls = layer.New("Ls")
	for k := 1; k <= cfg.Schools; k++ {
		c.Ls.AddNode(layer.Gid(k), geom.Pt(rng.Float64()*w, rng.Float64()*h))
		c.Ls.SetAlpha("school", layer.KindNode, fmt.Sprintf("S%03d", k), layer.Gid(k))
	}
	c.Lstores = layer.New("Lstores")
	for k := 1; k <= cfg.Stores; k++ {
		c.Lstores.AddNode(layer.Gid(k), geom.Pt(rng.Float64()*w, rng.Float64()*h))
		c.Lstores.SetAlpha("store", layer.KindNode, fmt.Sprintf("St%03d", k), layer.Gid(k))
	}

	// GIS dimension wiring (the Figure-2 schema shape).
	hn := gis.NewHierarchy("Ln").
		AddEdge(layer.KindPoint, layer.KindPolygon).
		AddEdge(layer.KindPolygon, layer.KindAll)
	hr := gis.NewHierarchy("Lr").
		AddEdge(layer.KindPoint, layer.KindPolyline).
		AddEdge(layer.KindPolyline, layer.KindAll)
	hh := gis.NewHierarchy("Lh").
		AddEdge(layer.KindPoint, layer.KindPolyline).
		AddEdge(layer.KindPolyline, layer.KindAll)
	hs := gis.NewHierarchy("Ls").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll)
	hst := gis.NewHierarchy("Lstores").
		AddEdge(layer.KindPoint, layer.KindNode).
		AddEdge(layer.KindNode, layer.KindAll)
	schema := gis.NewSchema().
		AddHierarchy(hn).AddHierarchy(hr).AddHierarchy(hh).AddHierarchy(hs).AddHierarchy(hst).
		BindAttr("neighb", layer.KindPolygon, "Ln").
		BindAttr("river", layer.KindPolyline, "Lr").
		BindAttr("street", layer.KindPolyline, "Lh").
		BindAttr("school", layer.KindNode, "Ls").
		BindAttr("store", layer.KindNode, "Lstores").
		AddAppSchema(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	d := gis.NewDimension(schema)
	d.MustAddLayer(c.Ln)
	d.MustAddLayer(c.Lr)
	d.MustAddLayer(c.Lh)
	d.MustAddLayer(c.Ls)
	d.MustAddLayer(c.Lstores)
	d.MustAddAppDimension(c.Neighborhoods)
	c.GIS = d
	return c
}

// Layers returns the city's layers keyed by name (the overlay input).
func (c *City) Layers() map[string]*layer.Layer {
	return map[string]*layer.Layer{
		"Ln": c.Ln, "Lr": c.Lr, "Lh": c.Lh, "Ls": c.Ls, "Lstores": c.Lstores,
	}
}

// Context wires the city and a MOFT into an evaluation context and
// engine.
func (c *City) Context(fm *moft.Table) (*fo.Context, *core.Engine) {
	ctx := fo.NewContext(c.GIS)
	if fm != nil {
		ctx.AddTable(fm)
	}
	ctx.BindConcept("neighb", c.Neighborhoods, "neighborhood")
	return ctx, core.New(ctx)
}

// TrajConfig controls trajectory generation.
type TrajConfig struct {
	Seed    int64
	Objects int             // number of moving objects (default 100)
	Start   timedim.Instant // first sample instant (default 2006-01-09 06:00)
	Step    int64           // seconds between samples (default 60)
	Samples int             // samples per object (default 60)
	Speed   float64         // units per second (default 1.5)
}

func (c TrajConfig) withDefaults() TrajConfig {
	if c.Objects <= 0 {
		c.Objects = 100
	}
	if c.Start == 0 {
		c.Start = timedim.At(2006, 1, 9, 6, 0)
	}
	if c.Step <= 0 {
		c.Step = 60
	}
	if c.Samples <= 0 {
		c.Samples = 60
	}
	if c.Speed <= 0 {
		c.Speed = 1.5
	}
	return c
}

// GenTrajectories generates a MOFT with the random-waypoint model:
// each object starts at a uniform position in extent and repeatedly
// moves toward a uniform waypoint at constant speed, sampled every
// Step seconds.
func GenTrajectories(extent geom.BBox, cfg TrajConfig) *moft.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	fm := moft.New("FM")
	for o := 1; o <= cfg.Objects; o++ {
		pos := geom.Pt(
			extent.MinX+rng.Float64()*extent.Width(),
			extent.MinY+rng.Float64()*extent.Height(),
		)
		target := geom.Pt(
			extent.MinX+rng.Float64()*extent.Width(),
			extent.MinY+rng.Float64()*extent.Height(),
		)
		ts := cfg.Start
		for k := 0; k < cfg.Samples; k++ {
			fm.Add(moft.Oid(o), ts, pos.X, pos.Y)
			// Advance toward the target; pick a new one on arrival.
			remaining := cfg.Speed * float64(cfg.Step)
			for remaining > 0 {
				d := pos.Dist(target)
				if d <= remaining {
					pos = target
					remaining -= d
					target = geom.Pt(
						extent.MinX+rng.Float64()*extent.Width(),
						extent.MinY+rng.Float64()*extent.Height(),
					)
				} else {
					pos = pos.Lerp(target, remaining/d)
					remaining = 0
				}
			}
			ts += timedim.Instant(cfg.Step)
		}
	}
	return fm
}

// LowIncomePolygons returns the polygons of the low-income
// neighborhoods — the region set of the Remark-1 motivating query.
func (c *City) LowIncomePolygons() []geom.Polygon {
	out := make([]geom.Polygon, 0, len(c.LowIncomeIDs))
	for _, id := range c.LowIncomeIDs {
		if pg, ok := c.Ln.Polygon(id); ok {
			out = append(out, pg)
		}
	}
	return out
}
