// Package faultpoint provides named fault-injection sites for the
// chaos test suite. A site is a call to Hit(name) planted on an
// engine path (cache build, worker fan-out, prefilter, grid build,
// overlay pair). Disarmed — the production state — a site costs one
// atomic load and no branch beyond it; the chaos tests arm sites to
// inject a typed error, a panic, or a delay and then assert the
// engine's invariants (clean typed errors, coherent caches, no
// goroutine leaks, bit-identical retries).
package faultpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The site catalog. Every planted Hit call uses one of these names;
// the chaos suite ranges over Catalog() so a new site cannot be added
// without being exercised.
const (
	// CoreLITBuild fires inside the per-table trajectory (LIT) cache
	// build, before any cache state is published.
	CoreLITBuild = "core/lit-build"
	// CoreGridBuild fires inside the pre-aggregated sample grid build.
	CoreGridBuild = "core/grid-build"
	// CoreFanoutChunk fires at the start of every worker chunk of the
	// per-object query fan-out.
	CoreFanoutChunk = "core/fanout-chunk"
	// CorePrefilter fires in the spatial-prefilter candidate lookup.
	CorePrefilter = "core/prefilter"
	// CoreIntervalInsert fires just before a computed interval set
	// would be inserted into the interval cache.
	CoreIntervalInsert = "core/interval-insert"
	// CoreShardPartition fires inside the sharded engine's per-table
	// partition build, before any shard receives its slice.
	CoreShardPartition = "core/shard-partition"
	// OverlayPair fires inside each overlay pair precomputation.
	OverlayPair = "overlay/pair"
	// ServerAccept fires in the mogisd listener's accept path, before
	// the accepted connection is handed to the HTTP server. The accept
	// loop must absorb the fault and keep serving.
	ServerAccept = "server/accept"
	// ServerWrite fires just before a response body write on the query
	// path and before each SSE event write, modelling a mid-write
	// failure to a client.
	ServerWrite = "server/write"
	// ServerSubscriber fires in the SSE subscriber's flush loop; delay
	// mode models a stalled consumer, error/panic a broken one.
	ServerSubscriber = "server/subscriber"
	// ServerShutdown fires at the start of the daemon's drain sequence;
	// shutdown must complete within its budget regardless.
	ServerShutdown = "server/shutdown"
)

// Catalog returns every known site name, in stable order.
func Catalog() []string {
	return []string{
		CoreLITBuild,
		CoreGridBuild,
		CoreFanoutChunk,
		CorePrefilter,
		CoreIntervalInsert,
		CoreShardPartition,
		OverlayPair,
		ServerAccept,
		ServerWrite,
		ServerSubscriber,
		ServerShutdown,
	}
}

// Mode selects what an armed site injects.
type Mode int

const (
	// ModeError makes Hit return a *Fault error.
	ModeError Mode = iota
	// ModePanic makes Hit panic with a *Fault value.
	ModePanic
	// ModeDelay makes Hit sleep for the armed duration, then return
	// nil (pair it with a deadline to exercise timeouts).
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault is the typed error (and panic value) an armed site injects.
type Fault struct {
	Site string
	Mode Mode
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultpoint: injected %s at %s", f.Mode, f.Site)
}

type arming struct {
	mode  Mode
	delay time.Duration
	// remaining > 0 limits the number of firings; < 0 means unlimited.
	remaining int
}

var (
	mu    sync.Mutex
	armed map[string]*arming
	// armedCount mirrors len(armed) so the disarmed fast path in Hit
	// is a single atomic load with no locking.
	armedCount atomic.Int32
)

// Hit is the injection site. Disarmed (the default for every site)
// it returns nil after one atomic load; armed it injects the
// configured fault. Sites on panic-isolated paths surface ModePanic
// as a recovered QueryPanicError, proving the isolation works.
func Hit(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	a, ok := armed[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	if a.remaining > 0 {
		a.remaining--
		if a.remaining == 0 {
			delete(armed, name)
			armedCount.Store(int32(len(armed)))
		}
	}
	mode, delay := a.mode, a.delay
	mu.Unlock()
	switch mode {
	case ModePanic:
		panic(&Fault{Site: name, Mode: ModePanic})
	case ModeDelay:
		time.Sleep(delay)
		return nil
	default:
		return &Fault{Site: name, Mode: ModeError}
	}
}

// Arm arms a site: every Hit on it injects mode until Disarm (or
// Reset). delay is only meaningful for ModeDelay.
func Arm(name string, mode Mode, delay time.Duration) {
	armN(name, mode, delay, -1)
}

// ArmOnce arms a site for exactly n firings, after which it disarms
// itself — useful for proving a retry succeeds after one injected
// failure.
func ArmOnce(name string, mode Mode, delay time.Duration, n int) {
	if n <= 0 {
		n = 1
	}
	armN(name, mode, delay, n)
}

func armN(name string, mode Mode, delay time.Duration, n int) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string]*arming)
	}
	armed[name] = &arming{mode: mode, delay: delay, remaining: n}
	armedCount.Store(int32(len(armed)))
}

// Disarm disarms one site.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, name)
	armedCount.Store(int32(len(armed)))
}

// Reset disarms every site (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	armedCount.Store(0)
}

// Armed reports whether the site is currently armed.
func Armed(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := armed[name]
	return ok
}
