package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	for _, name := range Catalog() {
		if err := Hit(name); err != nil {
			t.Errorf("disarmed Hit(%s) = %v, want nil", name, err)
		}
	}
}

func TestArmError(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CoreLITBuild, ModeError, 0)
	err := Hit(CoreLITBuild)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Hit = %v, want *Fault", err)
	}
	if f.Site != CoreLITBuild || f.Mode != ModeError {
		t.Errorf("fault = %+v", f)
	}
	// Other sites stay disarmed.
	if err := Hit(CoreGridBuild); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
	Disarm(CoreLITBuild)
	if err := Hit(CoreLITBuild); err != nil {
		t.Errorf("disarmed site fired: %v", err)
	}
}

func TestArmPanic(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CorePrefilter, ModePanic, 0)
	defer func() {
		v := recover()
		f, ok := v.(*Fault)
		if !ok {
			t.Fatalf("panic value = %v, want *Fault", v)
		}
		if f.Site != CorePrefilter {
			t.Errorf("panic site = %q", f.Site)
		}
	}()
	Hit(CorePrefilter)
	t.Fatal("armed panic site did not panic")
}

func TestArmDelay(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CoreFanoutChunk, ModeDelay, 20*time.Millisecond)
	start := time.Now()
	if err := Hit(CoreFanoutChunk); err != nil {
		t.Fatalf("delay Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay site returned after %v, want >= 20ms", d)
	}
}

func TestArmOnceDisarmsItself(t *testing.T) {
	Reset()
	defer Reset()
	ArmOnce(OverlayPair, ModeError, 0, 2)
	if err := Hit(OverlayPair); err == nil {
		t.Fatal("first hit did not fire")
	}
	if err := Hit(OverlayPair); err == nil {
		t.Fatal("second hit did not fire")
	}
	if err := Hit(OverlayPair); err != nil {
		t.Fatalf("third hit fired after ArmOnce(2): %v", err)
	}
	if Armed(OverlayPair) {
		t.Error("site still armed after its firings ran out")
	}
}

func TestCatalogCoversConstants(t *testing.T) {
	want := map[string]bool{
		CoreLITBuild: true, CoreGridBuild: true, CoreFanoutChunk: true,
		CorePrefilter: true, CoreIntervalInsert: true,
		CoreShardPartition: true, OverlayPair: true,
		ServerAccept: true, ServerWrite: true,
		ServerSubscriber: true, ServerShutdown: true,
	}
	got := Catalog()
	if len(got) != len(want) {
		t.Fatalf("Catalog has %d sites, want %d", len(got), len(want))
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("unknown catalog entry %q", name)
		}
	}
}
