package overlay

import (
	"testing"

	"mogis/internal/obs"
)

func TestOverlayStats(t *testing.T) {
	before := obs.Default.Snapshot()
	o := buildOverlay(t)
	st := o.Stats()
	if st.Pairs != 4 {
		t.Errorf("Pairs = %d, want 4", st.Pairs)
	}
	// Every relation is stored in both directions, so the count is even
	// and positive for this fixture.
	if st.Relations == 0 || st.Relations%2 != 0 {
		t.Errorf("Relations = %d, want positive and even", st.Relations)
	}
	// The cities-districts pair produces polygon-polygon cells.
	if st.Cells == 0 {
		t.Errorf("Cells = %d, want > 0", st.Cells)
	}

	// Precompute publishes the same numbers as gauges and records a
	// build duration sample.
	after := obs.Default.Snapshot()
	if got := after.Value("mogis_overlay_pairs"); got != float64(st.Pairs) {
		t.Errorf("mogis_overlay_pairs = %v, want %d", got, st.Pairs)
	}
	if got := after.Value("mogis_overlay_relations"); got != float64(st.Relations) {
		t.Errorf("mogis_overlay_relations = %v, want %d", got, st.Relations)
	}
	if got := after.Value("mogis_overlay_cells"); got != float64(st.Cells) {
		t.Errorf("mogis_overlay_cells = %v, want %d", got, st.Cells)
	}
	dBuilds := after.Value("mogis_overlay_build_seconds_count") - before.Value("mogis_overlay_build_seconds_count")
	if dBuilds != 1 {
		t.Errorf("build duration samples = %v, want 1", dBuilds)
	}
}
