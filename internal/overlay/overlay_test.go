package overlay

import (
	"context"
	"math"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

func sq(x, y, s float64) geom.Polygon {
	return geom.Polygon{Shell: geom.Ring{
		geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x+s, y+s), geom.Pt(x, y+s),
	}}
}

// testLayers: cities (polygons), rivers (polylines), stores (nodes).
func testLayers() map[string]*layer.Layer {
	cities := layer.New("cities")
	cities.AddPolygon(1, sq(0, 0, 10))  // crossed by river, has store
	cities.AddPolygon(2, sq(20, 0, 10)) // has store, no river
	cities.AddPolygon(3, sq(0, 20, 10)) // crossed by river, no store
	cities.AddPolygon(4, sq(40, 40, 5)) // isolated

	rivers := layer.New("rivers")
	rivers.AddPolyline(1, geom.Polyline{geom.Pt(-5, 5), geom.Pt(15, 5)}) // through city 1
	rivers.AddPolyline(2, geom.Polyline{geom.Pt(5, 15), geom.Pt(5, 35)}) // through city 3

	stores := layer.New("stores")
	stores.AddNode(1, geom.Pt(2, 2))  // in city 1
	stores.AddNode(2, geom.Pt(25, 5)) // in city 2
	stores.AddNode(3, geom.Pt(100, 100))

	districts := layer.New("districts")
	districts.AddPolygon(1, sq(0, 0, 5))
	districts.AddPolygon(2, sq(5, 0, 5))
	districts.AddPolygon(3, sq(8, 8, 10)) // straddles cities 1 and beyond

	return map[string]*layer.Layer{
		"cities": cities, "rivers": rivers, "stores": stores, "districts": districts,
	}
}

var (
	refCities    = Ref{Layer: "cities", Kind: layer.KindPolygon}
	refRivers    = Ref{Layer: "rivers", Kind: layer.KindPolyline}
	refStores    = Ref{Layer: "stores", Kind: layer.KindNode}
	refDistricts = Ref{Layer: "districts", Kind: layer.KindPolygon}
)

func buildOverlay(t *testing.T) *Overlay {
	t.Helper()
	o, err := Precompute(context.Background(), testLayers(), []Pair{
		{A: refCities, B: refRivers},
		{A: refCities, B: refStores},
		{A: refCities, B: refDistricts},
		{A: refRivers, B: refRivers},
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOverlayPolygonPolyline(t *testing.T) {
	o := buildOverlay(t)
	if got := o.Intersecting(refCities, 1, refRivers); len(got) != 1 || got[0] != 1 {
		t.Errorf("city1 rivers = %v", got)
	}
	if got := o.Intersecting(refCities, 2, refRivers); len(got) != 0 {
		t.Errorf("city2 rivers = %v", got)
	}
	// Reverse direction is also stored.
	if got := o.Intersecting(refRivers, 2, refCities); len(got) != 1 || got[0] != 3 {
		t.Errorf("river2 cities = %v", got)
	}
}

func TestOverlayPolygonNode(t *testing.T) {
	o := buildOverlay(t)
	if got := o.Intersecting(refCities, 1, refStores); len(got) != 1 || got[0] != 1 {
		t.Errorf("city1 stores = %v", got)
	}
	if got := o.Intersecting(refStores, 2, refCities); len(got) != 1 || got[0] != 2 {
		t.Errorf("store2 cities = %v", got)
	}
	if got := o.Intersecting(refCities, 4, refStores); len(got) != 0 {
		t.Errorf("city4 stores = %v", got)
	}
}

func TestOverlayPolygonPolygonCells(t *testing.T) {
	o := buildOverlay(t)
	got := o.Intersecting(refCities, 1, refDistricts)
	if len(got) != 3 {
		t.Fatalf("city1 districts = %v", got)
	}
	// Areas: district1 fully inside city1 (25); district2 fully inside
	// (25); district3 overlaps city1 on [8,10]² (4).
	if a := o.IntersectionArea(refCities, 1, refDistricts, 1); math.Abs(a-25) > 1e-9 {
		t.Errorf("area city1∩district1 = %v", a)
	}
	if a := o.IntersectionArea(refCities, 1, refDistricts, 3); math.Abs(a-4) > 1e-9 {
		t.Errorf("area city1∩district3 = %v", a)
	}
	if a := o.IntersectionArea(refCities, 4, refDistricts, 1); a != 0 {
		t.Errorf("disjoint area = %v", a)
	}
	// Cell centroids lie in both polygons.
	ls := testLayers()
	c1, _ := ls["cities"].Polygon(1)
	d3, _ := ls["districts"].Polygon(3)
	for _, cell := range o.Cells(refCities, 1, refDistricts, 3) {
		ct := cell.Ring.Centroid()
		if !c1.ContainsPoint(ct) || !d3.ContainsPoint(ct) {
			t.Errorf("cell centroid %v outside intersection", ct)
		}
	}
}

func TestOverlayPolylinePolyline(t *testing.T) {
	o := buildOverlay(t)
	// The two rivers don't touch.
	if got := o.Intersecting(refRivers, 1, refRivers); len(got) != 1 || got[0] != 1 {
		// A polyline always intersects itself.
		t.Errorf("river1 rivers = %v", got)
	}
}

func TestOverlayMatchesNaive(t *testing.T) {
	o := buildOverlay(t)
	layers := testLayers()
	for _, cid := range []layer.Gid{1, 2, 3, 4} {
		fast := o.Intersecting(refCities, cid, refRivers)
		slow, err := IntersectingNaive(layers, refCities, cid, refRivers)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("city %d: fast %v, slow %v", cid, fast, slow)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("city %d: fast %v, slow %v", cid, fast, slow)
			}
		}
	}
}

func TestOverlayErrors(t *testing.T) {
	if _, err := Precompute(context.Background(), testLayers(), []Pair{{A: Ref{Layer: "nope", Kind: layer.KindPolygon}, B: refRivers}}); err == nil {
		t.Error("unknown layer A accepted")
	}
	if _, err := Precompute(context.Background(), testLayers(), []Pair{{A: refCities, B: Ref{Layer: "nope", Kind: layer.KindPolygon}}}); err == nil {
		t.Error("unknown layer B accepted")
	}
	if _, err := Precompute(context.Background(), testLayers(), []Pair{{A: Ref{Layer: "cities", Kind: layer.KindLine}, B: refRivers}}); err == nil {
		t.Error("unsupported kind accepted")
	}
	if _, err := IntersectingNaive(testLayers(), Ref{Layer: "zz", Kind: layer.KindPolygon}, 1, refRivers); err == nil {
		t.Error("naive unknown layer accepted")
	}
	// Node-node is unsupported.
	if _, err := Precompute(context.Background(), testLayers(), []Pair{{A: refStores, B: refStores}}); err == nil {
		t.Error("node-node pair accepted")
	}
}

func TestOverlayNodePolyline(t *testing.T) {
	layers := testLayers()
	layers["stops"] = layer.New("stops")
	layers["stops"].AddNode(1, geom.Pt(5, 5)) // on river 1
	layers["stops"].AddNode(2, geom.Pt(50, 50))
	refStops := Ref{Layer: "stops", Kind: layer.KindNode}
	o, err := Precompute(context.Background(), layers, []Pair{{A: refStops, B: refRivers}, {A: refRivers, B: refStops}})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Intersecting(refStops, 1, refRivers); len(got) != 1 || got[0] != 1 {
		t.Errorf("stop1 rivers = %v", got)
	}
	if got := o.Intersecting(refRivers, 1, refStops); len(got) != 1 || got[0] != 1 {
		t.Errorf("river1 stops = %v", got)
	}
	if got := o.Intersecting(refStops, 2, refRivers); len(got) != 0 {
		t.Errorf("stop2 rivers = %v", got)
	}
	if got := o.Pairs(); len(got) != 2 {
		t.Errorf("Pairs = %v", got)
	}
}
