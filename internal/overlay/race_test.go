package overlay

import (
	"context"
	"sync"
	"testing"

	"mogis/internal/layer"
)

// TestConcurrentLookups reads a precomputed overlay from many
// goroutines at once: Intersecting, Cells, IntersectionArea and Stats
// are all pure reads over the precomputed maps, the contract the
// pietql evaluator relies on when queries run in parallel. The race
// detector must stay silent and answers must not flicker.
func TestConcurrentLookups(t *testing.T) {
	ov, err := Precompute(context.Background(), testLayers(), []Pair{
		{A: refCities, B: refRivers},
		{A: refCities, B: refStores},
		{A: refCities, B: refDistricts},
	})
	if err != nil {
		t.Fatal(err)
	}

	wantRivers := ov.Intersecting(refCities, 1, refRivers)
	wantArea := ov.IntersectionArea(refCities, 1, refDistricts, 1)
	wantStats := ov.Stats()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rivers := ov.Intersecting(refCities, 1, refRivers)
				if len(rivers) != len(wantRivers) {
					t.Errorf("concurrent Intersecting = %v, want %v", rivers, wantRivers)
					return
				}
				if got := ov.IntersectionArea(refCities, 1, refDistricts, 1); got != wantArea {
					t.Errorf("concurrent IntersectionArea = %v, want %v", got, wantArea)
					return
				}
				for _, cid := range []layer.Gid{1, 2, 3, 4} {
					ov.Intersecting(refCities, cid, refStores)
					ov.Cells(refCities, cid, refDistricts, 1)
				}
				if s := ov.Stats(); s != wantStats {
					t.Errorf("concurrent Stats = %+v, want %+v", s, wantStats)
					return
				}
			}
		}()
	}
	wg.Wait()
}
