package overlay

import (
	"context"
	"errors"
	"testing"

	"mogis/internal/faultpoint"
	"mogis/internal/qerr"
)

var chaosPairs = []Pair{
	{A: refCities, B: refRivers},
	{A: refCities, B: refStores},
	{A: refCities, B: refDistricts},
}

// TestPrecomputeCancelled: a context already cancelled at entry stops
// the precomputation with a cancellation error, on both the serial
// and the concurrent pair path.
func TestPrecomputeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Precompute(ctx, testLayers(), chaosPairs); !qerr.IsCancel(err) {
		t.Errorf("got %v, want cancellation", err)
	}
	// Enough pairs to cross the concurrency threshold: duplicate the
	// list so the goroutine path runs too.
	many := append(append([]Pair{}, chaosPairs...), Pair{A: refRivers, B: refRivers},
		Pair{A: refCities, B: refCities}, Pair{A: refDistricts, B: refStores},
		Pair{A: refDistricts, B: refRivers}, Pair{A: refRivers, B: refStores})
	if _, err := Precompute(ctx, testLayers(), many); !qerr.IsCancel(err) {
		t.Errorf("concurrent path: got %v, want cancellation", err)
	}
}

// TestPrecomputeNilContext: a nil context is treated as Background.
func TestPrecomputeNilContext(t *testing.T) {
	//nolint:staticcheck // deliberately nil: the documented leniency
	var nilCtx context.Context
	if _, err := Precompute(nilCtx, testLayers(), chaosPairs); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestPrecomputeInjectedFault: an armed overlay/pair site fails the
// precomputation with the typed fault; disarmed, the same call
// succeeds and produces the same overlay as a never-faulted build.
func TestPrecomputeInjectedFault(t *testing.T) {
	faultpoint.Arm(faultpoint.OverlayPair, faultpoint.ModeError, 0)
	_, err := Precompute(context.Background(), testLayers(), chaosPairs)
	faultpoint.Reset()
	var f *faultpoint.Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want injected fault", err)
	}
	if f.Site != faultpoint.OverlayPair {
		t.Errorf("fault site %q, want %q", f.Site, faultpoint.OverlayPair)
	}

	got, err := Precompute(context.Background(), testLayers(), chaosPairs)
	if err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	want, err := Precompute(context.Background(), testLayers(), chaosPairs)
	if err != nil {
		t.Fatal(err)
	}
	g1 := got.Intersecting(refCities, 1, refRivers)
	w1 := want.Intersecting(refCities, 1, refRivers)
	if len(g1) != len(w1) {
		t.Errorf("retry diverged: %v vs %v", g1, w1)
	}
}

// TestPrecomputePanicIsolation: a panic inside one pair's computation
// is recovered into a typed QueryPanicError instead of taking the
// process down, and a clean rebuild works afterwards.
func TestPrecomputePanicIsolation(t *testing.T) {
	faultpoint.Arm(faultpoint.OverlayPair, faultpoint.ModePanic, 0)
	_, err := Precompute(context.Background(), testLayers(), chaosPairs)
	faultpoint.Reset()
	if !qerr.IsPanic(err) {
		t.Fatalf("got %v, want recovered panic", err)
	}
	if _, err := Precompute(context.Background(), testLayers(), chaosPairs); err != nil {
		t.Fatalf("rebuild after recovered panic: %v", err)
	}
}
