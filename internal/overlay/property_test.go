package overlay

import (
	"context"
	"math"
	"testing"

	"mogis/internal/layer"
	"mogis/internal/workload"
)

// TestOverlayPropertiesOnSyntheticCity checks structural invariants
// of the precomputed overlay on generated cities: symmetry of the
// stored relation, intersection areas bounded by the smaller operand,
// and full agreement with naive evaluation for every geometry.
func TestOverlayPropertiesOnSyntheticCity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		city := workload.GenCity(workload.CityConfig{Seed: seed, Cols: 4, Rows: 4})
		layers := city.Layers()
		refN := Ref{Layer: "Ln", Kind: layer.KindPolygon}
		refR := Ref{Layer: "Lr", Kind: layer.KindPolyline}
		refS := Ref{Layer: "Lstores", Kind: layer.KindNode}
		ov, err := Precompute(context.Background(), layers, []Pair{
			{A: refN, B: refR},
			{A: refN, B: refS},
		})
		if err != nil {
			t.Fatal(err)
		}

		// Symmetry: a ∈ Intersecting(b) ⇔ b ∈ Intersecting(a).
		for _, nid := range city.Ln.IDs(layer.KindPolygon) {
			for _, rid := range ov.Intersecting(refN, nid, refR) {
				found := false
				for _, back := range ov.Intersecting(refR, rid, refN) {
					if back == nid {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: asymmetric relation %d↔%d", seed, nid, rid)
				}
			}
		}

		// Agreement with naive evaluation.
		for _, nid := range city.Ln.IDs(layer.KindPolygon) {
			fast := ov.Intersecting(refN, nid, refS)
			slow, err := IntersectingNaive(layers, refN, nid, refS)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("seed %d polygon %d: fast %v vs slow %v", seed, nid, fast, slow)
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("seed %d polygon %d: fast %v vs slow %v", seed, nid, fast, slow)
				}
			}
		}
	}
}

// TestOverlayCellAreaBounds: on a polygon-polygon overlay of two
// shifted partitions, cell areas per pair are positive, bounded by
// both operands, and the per-polygon totals reconstruct each
// polygon's area (both partitions cover the same extent).
func TestOverlayCellAreaBounds(t *testing.T) {
	// Two different partitions of the SAME 300×300 extent.
	a := workload.GenCity(workload.CityConfig{Seed: 4, Cols: 3, Rows: 3, CellSize: 100})
	b := workload.GenCity(workload.CityConfig{Seed: 9, Cols: 5, Rows: 5, CellSize: 60})
	layers := map[string]*layer.Layer{"A": renameLayer(a.Ln, "A"), "B": renameLayer(b.Ln, "B")}
	refA := Ref{Layer: "A", Kind: layer.KindPolygon}
	refB := Ref{Layer: "B", Kind: layer.KindPolygon}
	ov, err := Precompute(context.Background(), layers, []Pair{{A: refA, B: refB}})
	if err != nil {
		t.Fatal(err)
	}
	for _, aid := range layers["A"].IDs(layer.KindPolygon) {
		pa, _ := layers["A"].Polygon(aid)
		var total float64
		for _, bid := range ov.Intersecting(refA, aid, refB) {
			pb, _ := layers["B"].Polygon(bid)
			area := ov.IntersectionArea(refA, aid, refB, bid)
			if area < -1e-9 {
				t.Fatalf("negative cell area for %d∩%d", aid, bid)
			}
			if area > math.Min(pa.Area(), pb.Area())+1e-6 {
				t.Fatalf("cell area %v exceeds operands (%v, %v)", area, pa.Area(), pb.Area())
			}
			total += area
		}
		// Both partitions tile the same extent, so the pieces of a
		// polygon across the other partition must reconstruct it.
		if math.Abs(total-pa.Area()) > 1e-6*pa.Area()+1e-9 {
			t.Fatalf("polygon %d: pieces sum to %v, area is %v", aid, total, pa.Area())
		}
	}
}

// renameLayer clones a layer's polygons under a new name (overlay
// keys pairs by layer name, and both cities call theirs "Ln").
func renameLayer(src *layer.Layer, name string) *layer.Layer {
	out := layer.New(name)
	for _, id := range src.IDs(layer.KindPolygon) {
		pg, _ := src.Polygon(id)
		out.AddPolygon(id, pg)
	}
	return out
}

// TestOverlayCellCentroidsInsideBoth: every stored intersection cell
// must have its centroid inside both polygons.
func TestOverlayCellCentroidsInsideBoth(t *testing.T) {
	a := workload.GenCity(workload.CityConfig{Seed: 6, Cols: 2, Rows: 2, CellSize: 150})
	b := workload.GenCity(workload.CityConfig{Seed: 7, Cols: 3, Rows: 3, CellSize: 100})
	layers := map[string]*layer.Layer{"A": renameLayer(a.Ln, "A"), "B": renameLayer(b.Ln, "B")}
	refA := Ref{Layer: "A", Kind: layer.KindPolygon}
	refB := Ref{Layer: "B", Kind: layer.KindPolygon}
	ov, err := Precompute(context.Background(), layers, []Pair{{A: refA, B: refB}})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, aid := range layers["A"].IDs(layer.KindPolygon) {
		pa, _ := layers["A"].Polygon(aid)
		for _, bid := range ov.Intersecting(refA, aid, refB) {
			pb, _ := layers["B"].Polygon(bid)
			for _, cell := range ov.Cells(refA, aid, refB, bid) {
				if cell.Area < 1e-9 {
					continue
				}
				c := cell.Ring.Centroid()
				if !pa.ContainsPoint(c) || !pb.ContainsPoint(c) {
					t.Fatalf("cell centroid %v outside %d∩%d", c, aid, bid)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cells checked")
	}
}
