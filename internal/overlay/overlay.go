// Package overlay implements the precomputed layer overlay that the
// paper's Piet implementation uses for efficient evaluation of
// multi-layer geometric queries (Section 5): the intersection and
// containment relations between the geometries of layer pairs are
// computed once, so that at query time predicates like
// intersection(rivers, cities) or contains(cities, stores) become
// hash-map lookups instead of geometric computation. For
// polygon-polygon pairs the overlay also stores the intersection
// cells (convex pieces with exact areas), the analogue of Piet's
// subpolygonization.
package overlay

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mogis/internal/faultpoint"
	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/obs"
	"mogis/internal/qerr"
	"mogis/internal/sindex"
)

// Ref names one side of an overlay pair: a layer and the geometry
// kind participating.
type Ref struct {
	Layer string
	Kind  layer.Kind
}

// Pair is an ordered overlay pair (A, B).
type Pair struct {
	A, B Ref
}

// Cell is one convex piece of a polygon-polygon intersection.
type Cell struct {
	Ring geom.Ring
	Area float64
}

type relKey struct {
	a  Ref
	id layer.Gid
	b  Ref
}

type cellKey struct {
	a, b   Ref
	ai, bi layer.Gid
}

// Overlay is a precomputed set of cross-layer relations.
type Overlay struct {
	layers map[string]*layer.Layer
	rel    map[relKey][]layer.Gid
	cells  map[cellKey][]Cell
	pairs  []Pair
}

// pairMaps carries one pair's precomputed relations, so pairs can be
// built concurrently and merged deterministically afterwards.
type pairMaps struct {
	rel   map[relKey][]layer.Gid
	cells map[cellKey][]Cell
	err   error
}

// Precompute builds the overlay of the given layer pairs. Supported
// kind combinations: polygon-polygon (with cells), polygon-polyline,
// polygon-node, polyline-polyline and polyline-node; pairs are stored
// in both directions. Pairs are computed concurrently (bounded by
// GOMAXPROCS) into per-pair maps and merged in declaration order, so
// the result is independent of scheduling.
//
// ctx is observed between pairs and at worker start: a cancelled
// build drains its in-flight workers and returns the context's error
// with no overlay. A panic in one pair's worker is recovered into a
// *qerr.QueryPanicError (counted in obs QueryPanics); the other
// workers complete normally.
func Precompute(ctx context.Context, layers map[string]*layer.Layer, pairs []Pair) (*Overlay, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	o := &Overlay{
		layers: layers,
		rel:    make(map[relKey][]layer.Gid),
		cells:  make(map[cellKey][]Cell),
		pairs:  pairs,
	}
	res := make([]pairMaps, len(pairs))
	if len(pairs) < 2 {
		for i, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res[i] = o.precomputePairProtected(p)
		}
	} else {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i, p := range pairs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, p Pair) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := ctx.Err(); err != nil {
					res[i] = pairMaps{err: err}
					return
				}
				res[i] = o.precomputePairProtected(p)
			}(i, p)
		}
		wg.Wait()
	}
	for i := range res {
		if res[i].err != nil {
			return nil, res[i].err
		}
		for k, ids := range res[i].rel {
			o.rel[k] = append(o.rel[k], ids...)
		}
		for k, cs := range res[i].cells {
			o.cells[k] = cs
		}
	}
	for k := range o.rel {
		ids := o.rel[k]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Deduplicate: declaring both (A,B) and (B,A) records each
		// relation twice.
		uniq := ids[:0]
		for i, id := range ids {
			if i == 0 || id != uniq[len(uniq)-1] {
				uniq = append(uniq, id)
			}
		}
		o.rel[k] = uniq
	}
	dur := time.Since(start)
	st := o.Stats()
	obs.Std.OverlayPairs.Set(int64(st.Pairs))
	obs.Std.OverlayRelations.Set(int64(st.Relations))
	obs.Std.OverlayCells.Set(int64(st.Cells))
	obs.Std.OverlayBuildSeconds.Observe(dur.Seconds())
	obs.Logf("overlay: precomputed %d pairs: %d relations, %d cells in %v",
		st.Pairs, st.Relations, st.Cells, dur)
	return o, nil
}

// Stats summarizes an overlay's precomputed content.
type Stats struct {
	Pairs     int // declared layer pairs
	Relations int // recorded (geometry, geometry) relations, both directions
	Cells     int // polygon-polygon intersection cells
}

// Stats reports the size of the precomputed structures.
func (o *Overlay) Stats() Stats {
	st := Stats{Pairs: len(o.pairs)}
	for _, ids := range o.rel {
		st.Relations += len(ids)
	}
	for _, cs := range o.cells {
		st.Cells += len(cs)
	}
	return st
}

// Pairs returns the precomputed pairs.
func (o *Overlay) Pairs() []Pair { return o.pairs }

func (o *Overlay) layerOf(r Ref) (*layer.Layer, error) {
	l, ok := o.layers[r.Layer]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown layer %q", r.Layer)
	}
	return l, nil
}

// boxed is a geometry id with its bounding box, for index
// construction.
type boxed struct {
	id  layer.Gid
	box geom.BBox
}

func collect(l *layer.Layer, kind layer.Kind) ([]boxed, error) {
	var out []boxed
	switch kind {
	case layer.KindPolygon:
		for _, id := range l.IDs(kind) {
			pg, _ := l.Polygon(id)
			out = append(out, boxed{id: id, box: pg.BBox()})
		}
	case layer.KindPolyline:
		for _, id := range l.IDs(kind) {
			pl, _ := l.Polyline(id)
			out = append(out, boxed{id: id, box: pl.BBox()})
		}
	case layer.KindNode:
		for _, id := range l.IDs(kind) {
			p, _ := l.Node(id)
			out = append(out, boxed{id: id, box: geom.NewBBox(p)})
		}
	default:
		return nil, fmt.Errorf("overlay: unsupported kind %s", kind)
	}
	return out, nil
}

// precomputePairProtected runs precomputePair with panic isolation:
// a panicking pair worker becomes a *qerr.QueryPanicError carried in
// the pair's error slot, so one bad geometry cannot take the process
// down while sibling pairs are mid-build.
func (o *Overlay) precomputePairProtected(p Pair) (pm pairMaps) {
	defer func() {
		if v := recover(); v != nil {
			obs.Std.QueryPanics.Inc()
			pm = pairMaps{err: qerr.NewPanic("overlay/pair", v)}
		}
	}()
	if err := faultpoint.Hit(faultpoint.OverlayPair); err != nil {
		return pairMaps{err: err}
	}
	return o.precomputePair(p)
}

// precomputePair builds one pair's relations into fresh maps; it only
// reads the (immutable) layers, so any number of pairs may run
// concurrently.
func (o *Overlay) precomputePair(p Pair) pairMaps {
	pm := pairMaps{
		rel:   make(map[relKey][]layer.Gid),
		cells: make(map[cellKey][]Cell),
	}
	record := func(a Ref, aid layer.Gid, b Ref, bid layer.Gid) {
		k := relKey{a: a, id: aid, b: b}
		pm.rel[k] = append(pm.rel[k], bid)
	}
	la, err := o.layerOf(p.A)
	if err != nil {
		return pairMaps{err: err}
	}
	lb, err := o.layerOf(p.B)
	if err != nil {
		return pairMaps{err: err}
	}
	as, err := collect(la, p.A.Kind)
	if err != nil {
		return pairMaps{err: err}
	}
	bs, err := collect(lb, p.B.Kind)
	if err != nil {
		return pairMaps{err: err}
	}
	// Index the (usually larger) B side.
	entries := make([]sindex.Entry, len(bs))
	byID := make(map[layer.Gid]geom.BBox, len(bs))
	for i, b := range bs {
		entries[i] = sindex.Entry{Box: sindex.Box(b.box), ID: int64(b.id)}
		byID[b.id] = b.box
	}
	tree := sindex.BulkLoad(entries, sindex.DefaultFanout)

	for _, a := range as {
		tree.Visit(a.box, func(_ geom.BBox, raw int64) bool {
			bid := layer.Gid(raw)
			hit, cells, err2 := o.test(la, p.A.Kind, a.id, lb, p.B.Kind, bid, true)
			if err2 != nil {
				err = err2
				return false
			}
			if hit {
				record(p.A, a.id, p.B, bid)
				record(p.B, bid, p.A, a.id)
				if cells != nil {
					pm.cells[cellKey{a: p.A, b: p.B, ai: a.id, bi: bid}] = cells
				}
			}
			return true
		})
		if err != nil {
			return pairMaps{err: err}
		}
	}
	return pm
}

// test evaluates the geometric predicate for one candidate pair and,
// when wantCells is set, returns intersection cells for
// polygon-polygon pairs.
func (o *Overlay) test(la *layer.Layer, ka layer.Kind, aid layer.Gid,
	lb *layer.Layer, kb layer.Kind, bid layer.Gid, wantCells bool) (bool, []Cell, error) {
	switch {
	case ka == layer.KindPolygon && kb == layer.KindPolygon:
		pa, _ := la.Polygon(aid)
		pb, _ := lb.Polygon(bid)
		if !pa.IntersectsPolygon(pb) {
			return false, nil, nil
		}
		if !wantCells {
			return true, nil, nil
		}
		rings := geom.IntersectionCells(pa, pb)
		cells := make([]Cell, 0, len(rings))
		for _, r := range rings {
			cells = append(cells, Cell{Ring: r, Area: r.Area()})
		}
		return true, cells, nil
	case ka == layer.KindPolygon && kb == layer.KindPolyline:
		pa, _ := la.Polygon(aid)
		pl, _ := lb.Polyline(bid)
		return pa.IntersectsPolyline(pl), nil, nil
	case ka == layer.KindPolyline && kb == layer.KindPolygon:
		pl, _ := la.Polyline(aid)
		pb, _ := lb.Polygon(bid)
		return pb.IntersectsPolyline(pl), nil, nil
	case ka == layer.KindPolygon && kb == layer.KindNode:
		pa, _ := la.Polygon(aid)
		pt, _ := lb.Node(bid)
		return pa.ContainsPoint(pt), nil, nil
	case ka == layer.KindNode && kb == layer.KindPolygon:
		pt, _ := la.Node(aid)
		pb, _ := lb.Polygon(bid)
		return pb.ContainsPoint(pt), nil, nil
	case ka == layer.KindPolyline && kb == layer.KindPolyline:
		pa, _ := la.Polyline(aid)
		pb, _ := lb.Polyline(bid)
		return pa.IntersectsPolyline(pb), nil, nil
	case ka == layer.KindPolyline && kb == layer.KindNode:
		pl, _ := la.Polyline(aid)
		pt, _ := lb.Node(bid)
		return pl.ContainsPoint(pt), nil, nil
	case ka == layer.KindNode && kb == layer.KindPolyline:
		pt, _ := la.Node(aid)
		pl, _ := lb.Polyline(bid)
		return pl.ContainsPoint(pt), nil, nil
	default:
		return false, nil, fmt.Errorf("overlay: unsupported kind pair %s-%s", ka, kb)
	}
}

// Intersecting returns the precomputed ids of b-geometries related to
// (a, aid): intersecting for polygon/polyline pairs, contained/
// containing for node pairs. The slice is sorted and shared; callers
// must not mutate it.
func (o *Overlay) Intersecting(a Ref, aid layer.Gid, b Ref) []layer.Gid {
	return o.rel[relKey{a: a, id: aid, b: b}]
}

// Cells returns the intersection cells of a polygon-polygon pair in
// the A→B direction used at Precompute time.
func (o *Overlay) Cells(a Ref, aid layer.Gid, b Ref, bid layer.Gid) []Cell {
	return o.cells[cellKey{a: a, b: b, ai: aid, bi: bid}]
}

// IntersectionArea returns the precomputed area of a polygon-polygon
// intersection (0 when not precomputed or disjoint).
func (o *Overlay) IntersectionArea(a Ref, aid layer.Gid, b Ref, bid layer.Gid) float64 {
	var sum float64
	for _, c := range o.Cells(a, aid, b, bid) {
		sum += c.Area
	}
	return sum
}

// IntersectingNaive computes the same relation as Intersecting
// without precomputation: the full geometric test against every
// geometry of the b side. This is the query-time baseline the paper's
// Section-5 strategy avoids; benchmarks compare the two.
func IntersectingNaive(layers map[string]*layer.Layer, a Ref, aid layer.Gid, b Ref) ([]layer.Gid, error) {
	o := &Overlay{layers: layers, rel: map[relKey][]layer.Gid{}, cells: map[cellKey][]Cell{}}
	la, err := o.layerOf(a)
	if err != nil {
		return nil, err
	}
	lb, err := o.layerOf(b)
	if err != nil {
		return nil, err
	}
	bs, err := collect(lb, b.Kind)
	if err != nil {
		return nil, err
	}
	var out []layer.Gid
	for _, bb := range bs {
		hit, _, err := o.test(la, a.Kind, aid, lb, b.Kind, bb.id, false)
		if err != nil {
			return nil, err
		}
		if hit {
			out = append(out, bb.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
