package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// The structured query log: one JSONL record per completed query,
// emitted through log/slog's JSON handler so downstream tooling
// (jq, a log shipper, the grep in a 3am incident) gets stable
// snake_case keys instead of a formatted line. The log is entirely
// behind the collector's enabled guard — a nil collector or a nil
// LogWriter emits nothing and allocates nothing.

// queryLog wraps the slog logger the collector emits to.
type queryLog struct {
	l *slog.Logger
}

func newQueryLog(w io.Writer) *queryLog {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return &queryLog{l: slog.New(h)}
}

// emit writes one query record. Attribute keys are snake_case and
// policed by moglint's metricname analyzer.
func (q *queryLog) emit(rec *QueryRecord) {
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("op", rec.Op),
		slog.String("outcome", string(rec.Outcome)),
		slog.Int64("duration_us", rec.Duration.Microseconds()),
		slog.Int64("rows_scanned", rec.RowsScanned),
		slog.Int64("results", rec.Results),
		slog.Int64("cache_hits", rec.CacheHits),
		slog.Int64("cache_misses", rec.CacheMisses),
		slog.Time("start", rec.Start),
	)
	if rec.Table != "" {
		attrs = append(attrs, slog.String("table", rec.Table))
	}
	if rec.Err != "" {
		attrs = append(attrs, slog.String("error", rec.Err))
	}
	q.l.LogAttrs(context.Background(), slog.LevelInfo, "query", attrs...)
}
