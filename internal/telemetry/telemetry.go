// Package telemetry is the engine's always-on observability service,
// built on top of internal/obs. Where obs provides the raw
// instruments — atomic counters, histograms, the per-query span
// tracer — telemetry turns them into an operable surface:
//
//   - a per-query-type QueryStats table fed by one record per
//     completed core.Engine / pietql.System query, with
//     sliding-window latency histograms (p50/p90/p99/max) and
//     cumulative counts of errors, cancellations, budget
//     exhaustions, rows scanned and cache hits;
//   - sampled trace retention: a fixed-size ring of recent span
//     trees plus an always-kept slow-query set, so EXPLAIN
//     ANALYZE-quality traces survive after the fact without tracing
//     every query;
//   - a structured JSONL query log (log/slog), one record per query;
//   - the data behind the HTTP exposition handlers in
//     internal/telemetry/telhttp (/metrics, /debug/stats,
//     /debug/queries, /debug/traces/{id}).
//
// The recording contract matches the obs tracer: a nil *Collector is
// the disabled state, and every method on it is a cheap no-op — no
// allocations, no locking, no clock reads — so instrumented code pays
// nothing when telemetry is off. When enabled, the hot-path cost of
// Record is bounded: one windowed-histogram insert and a handful of
// atomic adds, one ring append behind an uncontended mutex, and an
// optional slog line when the query log is configured.
package telemetry

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mogis/internal/obs"
)

// Outcome classifies how a query ended. The values are the
// snake_case strings the query log and /debug/stats expose; packages
// layering on telemetry may define additional outcomes (e.g. the
// Piet-QL parser's "parse_error").
type Outcome string

const (
	OutcomeOK            Outcome = "ok"
	OutcomeError         Outcome = "error"
	OutcomeCancelled     Outcome = "cancelled"
	OutcomeBudgetRows    Outcome = "budget_rows"
	OutcomeBudgetResults Outcome = "budget_results"
	OutcomePanic         Outcome = "panic"
)

// QueryRecord is one completed query, as handed to Collector.Record
// by the core engine's query bracket and by pietql.System.Run.
type QueryRecord struct {
	// Op is the query type: the engine entry point
	// ("objects_passing_through", "count_samples_inside", ...) or the
	// Piet-QL pipeline ("pietql_query").
	Op string `json:"op"`
	// Table is the fact table queried ("" when the op has none).
	Table string `json:"table,omitempty"`
	// Start is when the query began; Duration its wall time.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  Outcome       `json:"outcome"`
	// Err is the error text for non-ok outcomes ("" otherwise).
	Err string `json:"error,omitempty"`
	// RowsScanned / Results are the resource-budget counters the
	// query consumed (MOFT rows examined, result items produced).
	RowsScanned int64 `json:"rows_scanned"`
	Results     int64 `json:"results"`
	// CacheHits / CacheMisses count the engine cache lookups (LIT
	// cache, interval cache) the query performed.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Shards attributes the totals above per shard engine when the
	// query ran on a core.ShardedEngine (nil for unsharded queries
	// and for queries the coordinator routed to a single engine).
	Shards []ShardLoad `json:"shards,omitempty"`
	// Window is the width of the query's time interval in model time
	// (Hi-Lo+1 of the closed interval), 0 for untimed queries. The
	// per-op mean feeds the agg grid's adaptive time-bucket sizing.
	Window int64 `json:"window,omitempty"`
}

// ShardLoad is one shard's contribution to a scattered query.
type ShardLoad struct {
	Shard       int   `json:"shard"`
	RowsScanned int64 `json:"rows_scanned"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// Config parameterizes a Collector. The zero value gets sensible
// defaults from New.
type Config struct {
	// Window is the sliding latency-statistics window (default 60s).
	Window time.Duration
	// SlowThreshold marks a query slow: slow records and slow sampled
	// traces are retained in their own always-kept sets (default
	// 100ms).
	SlowThreshold time.Duration
	// SampleEvery traces every Nth eligible query (default 16;
	// negative disables trace sampling, 1 traces everything).
	SampleEvery int
	// RecentQueries / SlowQueries size the in-memory query-log rings
	// behind /debug/queries (defaults 256 and 64).
	RecentQueries int
	SlowQueries   int
	// RecentTraces / SlowTraces size the retained-trace rings behind
	// /debug/traces (defaults 32 each).
	RecentTraces int
	SlowTraces   int
	// LogWriter, when non-nil, receives the structured JSONL query
	// log (one log/slog record per query).
	LogWriter io.Writer
	// Registry receives telemetry's own obs counters (nil uses
	// obs.Default).
	Registry *obs.Registry
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.RecentQueries <= 0 {
		c.RecentQueries = 256
	}
	if c.SlowQueries <= 0 {
		c.SlowQueries = 64
	}
	if c.RecentTraces <= 0 {
		c.RecentTraces = 32
	}
	if c.SlowTraces <= 0 {
		c.SlowTraces = 32
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	return c
}

// Collector is the always-on telemetry service: it aggregates query
// records into the per-op stats table, retains sampled traces and
// recent/slow query records, and emits the structured query log. All
// methods are safe for concurrent use and nil-safe (a nil collector
// is disabled).
type Collector struct {
	cfg   Config
	log   *queryLog
	start time.Time

	// ops maps op name → *opStats (created on first record).
	ops sync.Map

	recent ring[QueryRecord] // recent completed queries
	slow   ring[QueryRecord] // always-kept slow/failed queries

	traces traceStore

	// sampleSeq drives the every-Nth trace-sampling decision.
	sampleSeq atomic.Uint64

	// Telemetry's own accounting, registered in cfg.Registry.
	recTotal     *obs.Counter
	logTotal     *obs.Counter
	traceTotal   *obs.Counter
	slowTotal    *obs.Counter
	traceDropped *obs.Counter
}

// New creates a collector with cfg (zero fields take defaults).
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, start: time.Now()}
	c.recent.init(cfg.RecentQueries)
	c.slow.init(cfg.SlowQueries)
	c.traces.init(cfg.RecentTraces, cfg.SlowTraces)
	if cfg.LogWriter != nil {
		c.log = newQueryLog(cfg.LogWriter)
	}
	r := cfg.Registry
	c.recTotal = r.Counter("mogis_telemetry_records_total", "query records accepted by the telemetry collector")
	c.logTotal = r.Counter("mogis_telemetry_log_records_total", "structured query-log records emitted")
	c.traceTotal = r.Counter("mogis_telemetry_traces_sampled_total", "query traces retained by sampling")
	c.slowTotal = r.Counter("mogis_telemetry_slow_queries_total", "queries at or over the slow threshold")
	c.traceDropped = r.Counter("mogis_telemetry_traces_evicted_total", "retained traces evicted by ring capacity")
	return c
}

// Enabled reports whether the collector records anything; guard
// expensive record preparation (clock reads) behind it.
func (c *Collector) Enabled() bool { return c != nil }

// Config returns the resolved configuration (zero value when
// disabled).
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Record ingests one completed query: the per-op stats table, the
// recent/slow query rings, and the structured query log. Nil-safe;
// the disabled state does no work.
func (c *Collector) Record(rec QueryRecord) {
	if c == nil {
		return
	}
	c.recTotal.Inc()
	st := c.opStats(rec.Op)
	st.add(&rec)
	c.recent.push(rec)
	slow := rec.Duration >= c.cfg.SlowThreshold
	if slow {
		c.slowTotal.Inc()
	}
	if slow || rec.Outcome != OutcomeOK {
		c.slow.push(rec)
	}
	if c.log != nil {
		c.log.emit(&rec)
		c.logTotal.Inc()
	}
}

// opStats resolves (creating on first use) the stats row for op.
func (c *Collector) opStats(op string) *opStats {
	if v, ok := c.ops.Load(op); ok {
		return v.(*opStats)
	}
	st := newOpStats(op, c.cfg.Window)
	if v, raced := c.ops.LoadOrStore(op, st); raced {
		return v.(*opStats)
	}
	return st
}

// MeanWindow returns the mean time-interval width (model time) of the
// windowed queries recorded for the named ops, 0 when none have been
// observed. The agg grid's adaptive bucket sizing uses it as the
// query-window hint. Nil-safe.
func (c *Collector) MeanWindow(ops ...string) int64 {
	if c == nil {
		return 0
	}
	var sum, n int64
	for _, op := range ops {
		if v, ok := c.ops.Load(op); ok {
			st := v.(*opStats)
			sum += st.windowSum.Load()
			n += st.windowed.Load()
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Recent returns the most recent query records, newest first, up to
// max (<= 0 means all retained).
func (c *Collector) Recent(max int) []QueryRecord {
	if c == nil {
		return nil
	}
	return c.recent.newestFirst(max)
}

// Slow returns the retained slow/failed query records, newest first,
// up to max (<= 0 means all retained).
func (c *Collector) Slow(max int) []QueryRecord {
	if c == nil {
		return nil
	}
	return c.slow.newestFirst(max)
}

// ring is a fixed-capacity overwrite-oldest buffer of query records.
// Pushes are mutexed (one short critical section per completed
// query); reads copy.
type ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int
	full bool
}

func (r *ring[T]) init(capacity int) {
	r.buf = make([]T, capacity)
}

func (r *ring[T]) push(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// newestFirst copies out up to max entries, most recent first.
func (r *ring[T]) newestFirst(max int) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if max > 0 && max < n {
		n = max
	}
	out := make([]T, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// --- process-wide default ---------------------------------------------

// defaultCollector is the process-wide collector engines fall back to
// when none was injected, mirroring obs.Std: CLIs enable telemetry
// once (SetDefault) and every engine and Piet-QL system constructed
// anywhere in the process reports to it.
var defaultCollector atomic.Pointer[Collector]

// SetDefault installs the process-wide collector (nil disables) and
// returns the previous one.
func SetDefault(c *Collector) *Collector {
	return defaultCollector.Swap(c)
}

// Default returns the process-wide collector (nil when telemetry is
// disabled).
func Default() *Collector {
	return defaultCollector.Load()
}
