package telemetry

import (
	"sync"
	"sync/atomic"

	"mogis/internal/obs"
)

// Sampled trace retention: instead of tracing every query (P8
// measured low-single-digit-percent span overhead, still unwanted at
// "millions of users" rates) the collector elects every Nth query for
// tracing. Finished trees land in a fixed-size recent ring; trees at
// or over the slow threshold are also pinned in a separate always-
// kept slow set, so the traces most worth post-mortem reading are the
// last to be evicted. /debug/traces/{id} renders them after the fact.

// TraceRecord is one retained span tree plus the query record it
// belongs to.
type TraceRecord struct {
	// ID is the process-unique trace id /debug/traces/{id} resolves.
	ID uint64
	// Query is the source text (Piet-QL) or op label that was traced.
	Query string
	Rec   QueryRecord
	Root  *obs.Span
}

// traceStore holds the recent ring and the slow set.
type traceStore struct {
	mu     sync.Mutex
	recent []TraceRecord
	rNext  int
	rFull  bool
	slow   []TraceRecord
	sNext  int
	sFull  bool
	nextID atomic.Uint64
}

func (t *traceStore) init(recent, slow int) {
	t.recent = make([]TraceRecord, recent)
	t.slow = make([]TraceRecord, slow)
}

// MaybeTrace returns a fresh tracer when sampling elects this query
// (every cfg.SampleEvery-th call), nil otherwise. The root span is
// named "query" — the same canonical root EXPLAIN ANALYZE uses, so
// retained trees render identically. The caller attaches the tracer
// for the query's lifetime and hands the finished tree back through
// RetainTrace. Nil-safe.
func (c *Collector) MaybeTrace() *obs.Tracer {
	if c == nil || c.cfg.SampleEvery <= 0 {
		return nil
	}
	if c.sampleSeq.Add(1)%uint64(c.cfg.SampleEvery) != 0 {
		return nil
	}
	return obs.NewTracer("query")
}

// RetainTrace finishes tr and stores its span tree in the recent ring
// (and, for slow or failed queries, the always-kept slow set).
// Returns the assigned trace id (0 when disabled or tr is nil).
func (c *Collector) RetainTrace(tr *obs.Tracer, rec QueryRecord, query string) uint64 {
	if c == nil || tr == nil {
		return 0
	}
	root := tr.Finish()
	if root == nil {
		return 0
	}
	c.traceTotal.Inc()
	t := &c.traces
	id := t.nextID.Add(1)
	trec := TraceRecord{ID: id, Query: query, Rec: rec, Root: root}
	t.mu.Lock()
	if t.recent[t.rNext].Root != nil {
		c.traceDropped.Inc()
	}
	t.recent[t.rNext] = trec
	t.rNext++
	if t.rNext == len(t.recent) {
		t.rNext, t.rFull = 0, true
	}
	if rec.Duration >= c.cfg.SlowThreshold || rec.Outcome != OutcomeOK {
		t.slow[t.sNext] = trec
		t.sNext++
		if t.sNext == len(t.slow) {
			t.sNext, t.sFull = 0, true
		}
	}
	t.mu.Unlock()
	return id
}

// TraceByID returns a retained trace (slow set first, then the
// recent ring). Nil-safe.
func (c *Collector) TraceByID(id uint64) (TraceRecord, bool) {
	if c == nil || id == 0 {
		return TraceRecord{}, false
	}
	t := &c.traces
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.slow {
		if t.slow[i].ID == id {
			return t.slow[i], true
		}
	}
	for i := range t.recent {
		if t.recent[i].ID == id {
			return t.recent[i], true
		}
	}
	return TraceRecord{}, false
}

// Traces lists the retained traces, newest first: the slow set when
// slow is true, else the recent ring. Nil-safe.
func (c *Collector) Traces(slow bool) []TraceRecord {
	if c == nil {
		return nil
	}
	t := &c.traces
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, next, full := t.recent, t.rNext, t.rFull
	if slow {
		buf, next, full = t.slow, t.sNext, t.sFull
	}
	n := next
	if full {
		n = len(buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, buf[(next-i+len(buf))%len(buf)])
	}
	return out
}
