package telemetry

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"time"
)

// OpStats is one row of the /debug/stats QueryStats table: cumulative
// outcome/resource counters since process start plus the sliding-
// window latency view for one query type.
type OpStats struct {
	Op            string  `json:"op"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	Cancelled     int64   `json:"cancelled"`
	BudgetRows    int64   `json:"budget_rows"`
	BudgetResults int64   `json:"budget_results"`
	Panics        int64   `json:"panics"`
	RowsScanned   int64   `json:"rows_scanned"`
	Results       int64   `json:"results"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// MeanWindow is the mean time-interval width of this op's
	// windowed queries in model time (0 when none were windowed).
	MeanWindow int64 `json:"mean_window,omitempty"`

	Window WindowStats `json:"window"`
}

// RuntimeStats is the expvar-style process view /debug/stats embeds.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseSeconds float64 `json:"gc_pause_total_seconds"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// Stats is the full /debug/stats document.
type Stats struct {
	WindowSeconds        float64      `json:"window_seconds"`
	SlowThresholdSeconds float64      `json:"slow_threshold_seconds"`
	Ops                  []OpStats    `json:"ops"`
	Runtime              RuntimeStats `json:"runtime"`
}

// Stats snapshots the QueryStats table and the runtime view. Rows are
// sorted by op name for deterministic output. Nil-safe (a disabled
// collector reports an empty table).
func (c *Collector) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	nowNS := time.Now().UnixNano()
	s := Stats{
		WindowSeconds:        c.cfg.Window.Seconds(),
		SlowThresholdSeconds: c.cfg.SlowThreshold.Seconds(),
		Runtime:              runtimeStats(c.start),
	}
	c.ops.Range(func(_, v any) bool {
		st := v.(*opStats)
		row := OpStats{
			Op:            st.op,
			Queries:       st.queries.Load(),
			Errors:        st.errors.Load(),
			Cancelled:     st.cancelled.Load(),
			BudgetRows:    st.budgetRows.Load(),
			BudgetResults: st.budgetResults.Load(),
			Panics:        st.panics.Load(),
			RowsScanned:   st.rowsScanned.Load(),
			Results:       st.results.Load(),
			CacheHits:     st.cacheHits.Load(),
			CacheMisses:   st.cacheMisses.Load(),
			Window:        st.lat.snapshot(nowNS),
		}
		if total := row.CacheHits + row.CacheMisses; total > 0 {
			row.CacheHitRatio = float64(row.CacheHits) / float64(total)
		}
		if n := st.windowed.Load(); n > 0 {
			row.MeanWindow = st.windowSum.Load() / n
		}
		s.Ops = append(s.Ops, row)
		return true
	})
	sort.Slice(s.Ops, func(i, j int) bool { return s.Ops[i].Op < s.Ops[j].Op })
	return s
}

// runtimeStats reads the process gauges expvar users expect.
func runtimeStats(start time.Time) RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseSeconds: float64(ms.PauseTotalNs) / 1e9,
		UptimeSeconds:  time.Since(start).Seconds(),
	}
}

// WriteStatsJSON renders the stats document as indented JSON — the
// /debug/stats response body and the mobench -stats artifact share
// this one encoder. Nil-safe.
func (c *Collector) WriteStatsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Stats())
}
