package telemetry

import (
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0}, {1001, 1}, {2500, 1}, {2501, 2},
		{5000, 2}, {1e10, len(latBoundsNS) - 1}, {1e10 + 1, len(latBoundsNS)},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
	// Every bound maps inside its own bucket; one past it moves up.
	for i, b := range latBoundsNS {
		if got := bucketOf(b); got != i {
			t.Errorf("bucketOf(bound %d) = %d, want %d", b, got, i)
		}
		if got := bucketOf(b + 1); got != i+1 {
			t.Errorf("bucketOf(bound+1 %d) = %d, want %d", b+1, got, i+1)
		}
	}
}

func TestWindowQuantiles(t *testing.T) {
	h := newWinHist(time.Minute)
	now := time.Now().UnixNano()
	// 100 observations: 1ms .. 100ms.
	for i := 1; i <= 100; i++ {
		h.observe(now, int64(i)*int64(time.Millisecond))
	}
	ws := h.snapshot(now)
	if ws.Queries != 100 {
		t.Fatalf("queries = %d, want 100", ws.Queries)
	}
	if ws.MaxSecs != 0.1 {
		t.Errorf("max = %g, want 0.1", ws.MaxSecs)
	}
	// The bucket layout is coarse (1-2.5-5); accept the right bucket
	// rather than exact values.
	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %gs, want in [%g, %g]", name, got, lo, hi)
		}
	}
	within("p50", ws.P50Secs, 0.025, 0.075)
	within("p90", ws.P90Secs, 0.075, 0.1)
	within("p99", ws.P99Secs, 0.09, 0.1)
	within("mean", ws.MeanSecs, 0.0503, 0.0507)
	if ws.P50Secs > ws.P90Secs || ws.P90Secs > ws.P99Secs || ws.P99Secs > ws.MaxSecs {
		t.Errorf("quantiles not monotone: %+v", ws)
	}
}

func TestWindowExpiry(t *testing.T) {
	h := newWinHist(time.Minute) // 10s slices
	base := time.Now().UnixNano()
	h.observe(base, int64(time.Millisecond))
	if ws := h.snapshot(base); ws.Queries != 1 {
		t.Fatalf("fresh observation invisible: %+v", ws)
	}
	// Still visible within the window...
	if ws := h.snapshot(base + 50*int64(time.Second)); ws.Queries != 1 {
		t.Errorf("observation expired early")
	}
	// ...gone after the full window has passed.
	if ws := h.snapshot(base + 2*int64(time.Minute)); ws.Queries != 0 {
		t.Errorf("observation survived beyond the window: %+v", ws)
	}
}

func TestWindowRotationReclaimsSlices(t *testing.T) {
	h := newWinHist(time.Minute) // 10s slices, 6 of them
	base := time.Now().UnixNano()
	// Fill every slice across one full window, then wrap into the next
	// epoch: the oldest slice is reused and its old counts must be gone.
	for i := 0; i < winSlices+1; i++ {
		h.observe(base+int64(i)*h.sliceNS, int64(time.Millisecond))
	}
	ws := h.snapshot(base + int64(winSlices)*h.sliceNS)
	if ws.Queries != winSlices {
		t.Errorf("after wrap queries = %d, want %d (oldest slice reclaimed)", ws.Queries, winSlices)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := newWinHist(time.Minute)
	now := time.Now().UnixNano()
	h.observe(now, int64(42*time.Millisecond))
	ws := h.snapshot(now)
	for name, got := range map[string]float64{"p50": ws.P50Secs, "p99": ws.P99Secs, "max": ws.MaxSecs} {
		if got > 0.042+1e-9 || got <= 0 {
			t.Errorf("%s = %g, want (0, 0.042] (clamped to the observed max)", name, got)
		}
	}
}
