package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mogis/internal/obs"
)

// newTestCollector builds a collector on an isolated registry so
// counter assertions don't race other tests touching obs.Default.
func newTestCollector(t *testing.T, cfg Config) *Collector {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return New(cfg)
}

func mkRec(op string, d time.Duration, out Outcome) QueryRecord {
	return QueryRecord{
		Op:          op,
		Table:       "cars",
		Start:       time.Now().Add(-d),
		Duration:    d,
		Outcome:     out,
		RowsScanned: 100,
		Results:     10,
		CacheHits:   3,
		CacheMisses: 1,
	}
}

func TestRecordAggregatesPerOp(t *testing.T) {
	c := newTestCollector(t, Config{SlowThreshold: time.Second})
	c.Record(mkRec("scan", time.Millisecond, OutcomeOK))
	c.Record(mkRec("scan", 2*time.Millisecond, OutcomeOK))
	c.Record(mkRec("scan", time.Millisecond, OutcomeCancelled))
	c.Record(mkRec("scan", time.Millisecond, OutcomeBudgetRows))
	c.Record(mkRec("scan", time.Millisecond, OutcomeBudgetResults))
	c.Record(mkRec("scan", time.Millisecond, OutcomePanic))
	c.Record(mkRec("scan", time.Millisecond, Outcome("parse_error"))) // unknown → errors
	c.Record(mkRec("other", time.Millisecond, OutcomeOK))

	stats := c.Stats()
	if len(stats.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(stats.Ops))
	}
	// Sorted by op name: "other" then "scan".
	if stats.Ops[0].Op != "other" || stats.Ops[1].Op != "scan" {
		t.Fatalf("op order = %s, %s", stats.Ops[0].Op, stats.Ops[1].Op)
	}
	scan := stats.Ops[1]
	if scan.Queries != 7 || scan.Cancelled != 1 || scan.BudgetRows != 1 ||
		scan.BudgetResults != 1 || scan.Panics != 1 || scan.Errors != 1 {
		t.Errorf("scan row wrong: %+v", scan)
	}
	if scan.RowsScanned != 700 || scan.Results != 70 {
		t.Errorf("resource totals wrong: rows=%d results=%d", scan.RowsScanned, scan.Results)
	}
	if scan.CacheHits != 21 || scan.CacheMisses != 7 {
		t.Errorf("cache totals wrong: hits=%d misses=%d", scan.CacheHits, scan.CacheMisses)
	}
	if want := 21.0 / 28.0; scan.CacheHitRatio != want {
		t.Errorf("cache hit ratio = %g, want %g", scan.CacheHitRatio, want)
	}
	if scan.Window.Queries != 7 {
		t.Errorf("window queries = %d, want 7", scan.Window.Queries)
	}
	if scan.Window.P50Secs <= 0 || scan.Window.MaxSecs < scan.Window.P99Secs {
		t.Errorf("window quantiles implausible: %+v", scan.Window)
	}
}

func TestRecentAndSlowRings(t *testing.T) {
	c := newTestCollector(t, Config{
		RecentQueries: 4,
		SlowQueries:   2,
		SlowThreshold: 50 * time.Millisecond,
	})
	for i := 0; i < 6; i++ {
		d := time.Duration(i+1) * time.Millisecond
		c.Record(mkRec("q", d, OutcomeOK))
	}
	recent := c.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want ring size 4", len(recent))
	}
	// Newest first: durations 6,5,4,3 ms.
	for i, want := range []time.Duration{6, 5, 4, 3} {
		if recent[i].Duration != want*time.Millisecond {
			t.Errorf("recent[%d].Duration = %s, want %dms", i, recent[i].Duration, want)
		}
	}
	if got := c.Recent(2); len(got) != 2 || got[0].Duration != 6*time.Millisecond {
		t.Errorf("Recent(2) = %v", got)
	}

	if len(c.Slow(0)) != 0 {
		t.Fatalf("fast ok queries must not enter the slow set")
	}
	// Slow and failed queries are retained; the ring overwrites oldest.
	c.Record(mkRec("q", 60*time.Millisecond, OutcomeOK))        // slow
	c.Record(mkRec("q", time.Millisecond, OutcomeError))        // failed
	c.Record(mkRec("q", 70*time.Millisecond, OutcomeCancelled)) // both
	slow := c.Slow(0)
	if len(slow) != 2 {
		t.Fatalf("slow = %d, want ring size 2", len(slow))
	}
	if slow[0].Duration != 70*time.Millisecond || slow[1].Outcome != OutcomeError {
		t.Errorf("slow ring contents wrong: %+v", slow)
	}
}

func TestNilCollectorIsDisabled(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Record(mkRec("q", time.Millisecond, OutcomeOK)) // must not panic
	if c.Recent(0) != nil || c.Slow(0) != nil || c.Traces(false) != nil {
		t.Error("nil collector returned records")
	}
	if got := c.Stats(); len(got.Ops) != 0 {
		t.Errorf("nil collector stats = %+v", got)
	}
	if tr := c.MaybeTrace(); tr != nil {
		t.Error("nil collector sampled a trace")
	}
	if id := c.RetainTrace(nil, QueryRecord{}, ""); id != 0 {
		t.Error("nil collector retained a trace")
	}
	if _, ok := c.TraceByID(1); ok {
		t.Error("nil collector resolved a trace")
	}
	var buf bytes.Buffer
	if err := c.WriteStatsJSON(&buf); err != nil {
		t.Errorf("WriteStatsJSON on nil collector: %v", err)
	}
}

func TestTraceSamplingCadence(t *testing.T) {
	c := newTestCollector(t, Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		if tr := c.MaybeTrace(); tr != nil {
			sampled++
			rec := mkRec("q", time.Millisecond, OutcomeOK)
			if id := c.RetainTrace(tr, rec, "SELECT ..."); id == 0 {
				t.Fatal("RetainTrace returned id 0 for a live trace")
			}
		}
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 40 with SampleEvery=4, want 10", sampled)
	}
	if got := len(c.Traces(false)); got != 10 {
		t.Errorf("retained %d traces, want 10", got)
	}

	off := newTestCollector(t, Config{SampleEvery: -1})
	for i := 0; i < 10; i++ {
		if off.MaybeTrace() != nil {
			t.Fatal("SampleEvery<0 must disable sampling")
		}
	}
}

func TestTraceRetentionAndLookup(t *testing.T) {
	c := newTestCollector(t, Config{
		SampleEvery:   1,
		RecentTraces:  2,
		SlowTraces:    2,
		SlowThreshold: 50 * time.Millisecond,
	})
	var ids []uint64
	for i := 0; i < 3; i++ {
		tr := c.MaybeTrace()
		tr.Start("stage").End()
		ids = append(ids, c.RetainTrace(tr, mkRec("q", time.Millisecond, OutcomeOK), "fast"))
	}
	// Ring size 2: the first trace is evicted.
	if _, ok := c.TraceByID(ids[0]); ok {
		t.Error("evicted trace still resolvable")
	}
	if tr, ok := c.TraceByID(ids[2]); !ok || tr.Root.Find("stage") == nil {
		t.Errorf("trace %d lost or missing its span tree", ids[2])
	}

	// A slow trace survives in the slow set even after the recent ring
	// cycles past it.
	slowID := func() uint64 {
		tr := c.MaybeTrace()
		return c.RetainTrace(tr, mkRec("q", time.Second, OutcomeOK), "slow one")
	}()
	for i := 0; i < 4; i++ {
		tr := c.MaybeTrace()
		c.RetainTrace(tr, mkRec("q", time.Millisecond, OutcomeOK), "fast")
	}
	if tr, ok := c.TraceByID(slowID); !ok || tr.Query != "slow one" {
		t.Error("slow trace evicted by fast traffic")
	}
	if got := len(c.Traces(true)); got != 1 {
		t.Errorf("slow trace set = %d, want 1", got)
	}
}

func TestQueryLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	c := newTestCollector(t, Config{LogWriter: &buf})
	c.Record(mkRec("scan", 1500*time.Microsecond, OutcomeOK))
	rec := mkRec("scan", time.Millisecond, OutcomeBudgetRows)
	rec.Err = "core: query exceeded its rows budget (5 > 4)"
	c.Record(rec)

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2", len(lines))
	}
	first := lines[0]
	for _, key := range []string{"op", "outcome", "duration_us", "rows_scanned", "results", "cache_hits", "cache_misses", "start", "table"} {
		if _, ok := first[key]; !ok {
			t.Errorf("log record missing key %q: %v", key, first)
		}
	}
	if first["op"] != "scan" || first["outcome"] != "ok" || first["duration_us"] != float64(1500) {
		t.Errorf("log record wrong: %v", first)
	}
	if _, ok := first["error"]; ok {
		t.Error("ok record must omit the error key")
	}
	second := lines[1]
	if second["outcome"] != "budget_rows" || !strings.Contains(second["error"].(string), "rows budget") {
		t.Errorf("failed record wrong: %v", second)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	c := newTestCollector(t, Config{
		Registry:      reg,
		LogWriter:     &buf,
		SlowThreshold: 50 * time.Millisecond,
		SampleEvery:   1,
		RecentTraces:  1,
	})
	c.Record(mkRec("q", time.Millisecond, OutcomeOK))
	c.Record(mkRec("q", time.Second, OutcomeOK)) // slow
	for i := 0; i < 2; i++ {
		tr := c.MaybeTrace()
		c.RetainTrace(tr, mkRec("q", time.Millisecond, OutcomeOK), "x")
	}

	want := map[string]float64{
		"mogis_telemetry_records_total":        2,
		"mogis_telemetry_log_records_total":    2,
		"mogis_telemetry_slow_queries_total":   1,
		"mogis_telemetry_traces_sampled_total": 2,
		"mogis_telemetry_traces_evicted_total": 1, // ring of 1, second evicts first
	}
	snap := reg.Snapshot()
	for name, v := range want {
		if got := snap.Value(name); got != v {
			t.Errorf("%s = %g, want %g", name, got, v)
		}
	}
}

func TestDefaultCollector(t *testing.T) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not clear the default")
	}
	c := newTestCollector(t, Config{})
	SetDefault(c)
	if Default() != c {
		t.Fatal("Default() did not return the installed collector")
	}
}

// TestRecordZeroAllocWarm: the hot-path recording contract. After the
// op row exists, Record must not allocate (the rings are preallocated,
// the histogram is fixed buckets); a nil collector must cost nothing.
func TestRecordZeroAllocWarm(t *testing.T) {
	c := newTestCollector(t, Config{SampleEvery: -1}) // no LogWriter
	rec := mkRec("hot", time.Millisecond, OutcomeOK)
	c.Record(rec) // create the op row
	allocs := testing.AllocsPerRun(1000, func() {
		c.Record(rec)
	})
	if allocs != 0 {
		t.Errorf("warm Record allocated %.1f times per op, want 0", allocs)
	}

	var off *Collector
	allocs = testing.AllocsPerRun(1000, func() {
		off.Record(rec)
		if off.Enabled() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Record allocated %.1f times per op, want 0", allocs)
	}
}
