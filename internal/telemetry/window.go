package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the sliding-window latency accounting behind
// the QueryStats table: a ring of fixed-bucket histogram slices, each
// covering window/winSlices of wall time. Observation is atomic-only
// on the steady path (one bucket add, count/sum adds, a CAS'd max);
// a per-slice mutex is taken solely when a slice rotates into a new
// epoch, which happens once per slice duration. Quantiles are
// estimated by merging the live slices' cumulative buckets, so p50/
// p90/p99 always describe roughly the last Window of queries, not
// process lifetime.

// winSlices is the ring granularity: the reported window spans the
// current slice plus winSlices-1 sealed ones, so estimates cover
// between (winSlices-1)/winSlices and the full window of history.
const winSlices = 6

// latBoundsNS are the latency bucket upper bounds in nanoseconds
// (1µs .. 10s in a 1-2.5-5 progression, matching obs.DefBuckets); an
// implicit +Inf bucket catches the rest.
var latBoundsNS = [...]int64{
	1e3, 2500, 5e3, 1e4, 25e3, 5e4, 1e5, 25e4, 5e5,
	1e6, 25e5, 5e6, 1e7, 25e6, 5e7, 1e8, 25e7, 5e8, 1e9, 25e8, 5e9, 1e10,
}

const numLatBuckets = len(latBoundsNS) + 1

// bucketOf returns the bucket index for a duration in nanoseconds.
func bucketOf(ns int64) int {
	lo, hi := 0, len(latBoundsNS)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= latBoundsNS[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// histSlice is one time slice of the window: a fixed-bucket histogram
// plus count/sum/max, all atomics. epoch is the absolute slice number
// the counters currently describe; a reader ignores slices whose
// epoch has fallen out of the window.
type histSlice struct {
	mu     sync.Mutex // rotation only
	epoch  atomic.Int64
	counts [numLatBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// rotate claims the slice for a new epoch, zeroing its counters. The
// epoch is published last, so concurrent observers of the new epoch
// only add after the reset; an observer still holding the previous
// epoch can at worst leak one record into the fresh slice, which the
// window tolerates (stats are estimates, never query answers).
func (s *histSlice) rotate(epoch int64) {
	s.mu.Lock()
	if s.epoch.Load() != epoch {
		for i := range s.counts {
			s.counts[i].Store(0)
		}
		s.n.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
		s.epoch.Store(epoch)
	}
	s.mu.Unlock()
}

// winHist is the sliding-window histogram: winSlices slices of
// sliceNS nanoseconds each.
type winHist struct {
	sliceNS int64
	slices  [winSlices]histSlice
}

func newWinHist(window time.Duration) *winHist {
	sliceNS := window.Nanoseconds() / winSlices
	if sliceNS <= 0 {
		sliceNS = time.Second.Nanoseconds()
	}
	return &winHist{sliceNS: sliceNS}
}

// observe records one duration at wall time nowNS.
func (h *winHist) observe(nowNS, durNS int64) {
	if durNS < 0 {
		durNS = 0
	}
	epoch := nowNS / h.sliceNS
	s := &h.slices[int(epoch%winSlices)]
	if s.epoch.Load() != epoch {
		s.rotate(epoch)
	}
	s.counts[bucketOf(durNS)].Add(1)
	s.n.Add(1)
	s.sum.Add(durNS)
	for {
		m := s.max.Load()
		if durNS <= m || s.max.CompareAndSwap(m, durNS) {
			return
		}
	}
}

// WindowStats is the merged view of the live slices: observation
// count plus estimated quantiles (seconds).
type WindowStats struct {
	Queries   int64   `json:"queries"`
	MeanSecs  float64 `json:"mean_seconds"`
	P50Secs   float64 `json:"p50_seconds"`
	P90Secs   float64 `json:"p90_seconds"`
	P99Secs   float64 `json:"p99_seconds"`
	MaxSecs   float64 `json:"max_seconds"`
	PerSecond float64 `json:"per_second"`
}

// snapshot merges the slices whose epoch is still inside the window
// ending at nowNS and estimates the quantiles.
func (h *winHist) snapshot(nowNS int64) WindowStats {
	epoch := nowNS / h.sliceNS
	minEpoch := epoch - winSlices + 1
	var counts [numLatBuckets]int64
	var n, sum, max int64
	for i := range h.slices {
		s := &h.slices[i]
		e := s.epoch.Load()
		if e < minEpoch || e > epoch {
			continue
		}
		for b := range counts {
			counts[b] += s.counts[b].Load()
		}
		n += s.n.Load()
		sum += s.sum.Load()
		if m := s.max.Load(); m > max {
			max = m
		}
	}
	ws := WindowStats{Queries: n, MaxSecs: float64(max) / 1e9}
	if n == 0 {
		return ws
	}
	ws.MeanSecs = float64(sum) / float64(n) / 1e9
	ws.P50Secs = quantile(&counts, n, max, 0.50)
	ws.P90Secs = quantile(&counts, n, max, 0.90)
	ws.P99Secs = quantile(&counts, n, max, 0.99)
	ws.PerSecond = float64(n) / (float64(winSlices*h.sliceNS) / 1e9)
	return ws
}

// quantile estimates the q-quantile in seconds from cumulative bucket
// counts: linear interpolation inside the target bucket, clamped to
// the observed maximum (which also resolves the +Inf bucket).
func quantile(counts *[numLatBuckets]int64, n, maxNS int64, q float64) float64 {
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for b := 0; b < numLatBuckets; b++ {
		prev := cum
		cum += counts[b]
		if cum < target {
			continue
		}
		lo := int64(0)
		if b > 0 {
			lo = latBoundsNS[b-1]
		}
		hi := maxNS
		if b < len(latBoundsNS) && latBoundsNS[b] < hi {
			hi = latBoundsNS[b]
		}
		if hi < lo {
			hi = lo
		}
		frac := float64(target-prev) / float64(counts[b])
		est := float64(lo) + frac*float64(hi-lo)
		if est > float64(maxNS) {
			est = float64(maxNS)
		}
		return est / 1e9
	}
	return float64(maxNS) / 1e9
}

// opStats is one row of the QueryStats table: cumulative outcome and
// resource counters plus the sliding-window latency histogram for one
// query type.
type opStats struct {
	op string

	queries       atomic.Int64
	errors        atomic.Int64
	cancelled     atomic.Int64
	budgetRows    atomic.Int64
	budgetResults atomic.Int64
	panics        atomic.Int64

	rowsScanned atomic.Int64
	results     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// windowSum/windowed accumulate the time-interval widths of
	// windowed queries so MeanWindow can seed adaptive time buckets.
	windowSum atomic.Int64
	windowed  atomic.Int64

	lat *winHist
}

func newOpStats(op string, window time.Duration) *opStats {
	return &opStats{op: op, lat: newWinHist(window)}
}

// add folds one record into the row.
func (st *opStats) add(rec *QueryRecord) {
	st.queries.Add(1)
	switch rec.Outcome {
	case OutcomeOK:
	case OutcomeCancelled:
		st.cancelled.Add(1)
	case OutcomeBudgetRows:
		st.budgetRows.Add(1)
	case OutcomeBudgetResults:
		st.budgetResults.Add(1)
	case OutcomePanic:
		st.panics.Add(1)
	default:
		st.errors.Add(1)
	}
	st.rowsScanned.Add(rec.RowsScanned)
	st.results.Add(rec.Results)
	st.cacheHits.Add(rec.CacheHits)
	st.cacheMisses.Add(rec.CacheMisses)
	if rec.Window > 0 {
		st.windowSum.Add(rec.Window)
		st.windowed.Add(1)
	}
	end := rec.Start.Add(rec.Duration)
	st.lat.observe(end.UnixNano(), rec.Duration.Nanoseconds())
}
