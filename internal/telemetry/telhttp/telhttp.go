// Package telhttp exposes a telemetry.Collector over HTTP using only
// the standard library:
//
//	/metrics           Prometheus text: the obs registry plus
//	                   windowed per-op latency summaries
//	/debug/stats       the QueryStats table + runtime view as JSON
//	/debug/queries     recent and slow/failed query records as JSON
//	/debug/traces      index of retained sampled traces
//	/debug/traces/{id} one retained trace rendered as a span tree
//	/debug/vars        expvar (memstats, cmdline, mogis_telemetry)
//
// Handlers are read-only and safe under concurrent queries; they
// snapshot atomics and copy rings, never blocking the record path.
package telhttp

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mogis/internal/telemetry"
)

// Handler returns the telemetry mux for c. The collector may be nil
// (every page then reports the disabled state rather than 404ing, so
// a probe can tell "telemetry off" from "wrong port").
func Handler(c *telemetry.Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg := c.Config().Registry
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
		writeWindowSummaries(w, c)
	})
	mux.HandleFunc("GET /debug/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = c.WriteStatsJSON(w)
	})
	mux.HandleFunc("GET /debug/queries", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if v := r.URL.Query().Get("max"); v != "" {
			max, _ = strconv.Atoi(v)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(queriesDoc{
			Enabled: c.Enabled(),
			Recent:  c.Recent(max),
			Slow:    c.Slow(max),
		})
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		doc := tracesDoc{Enabled: c.Enabled()}
		for _, t := range c.Traces(false) {
			doc.Recent = append(doc.Recent, traceSummary(t))
		}
		for _, t := range c.Traces(true) {
			doc.Slow = append(doc.Slow, traceSummary(t))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "telhttp: trace id must be an integer", http.StatusBadRequest)
			return
		}
		t, ok := c.TraceByID(id)
		if !ok {
			http.Error(w, "telhttp: no such trace (evicted or never sampled)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %d  op=%s outcome=%s duration=%s\n", t.ID, t.Rec.Op, t.Rec.Outcome, t.Rec.Duration)
		if t.Query != "" {
			fmt.Fprintf(w, "query: %s\n", t.Query)
		}
		fmt.Fprintf(w, "start: %s\n\n", t.Rec.Start.Format(time.RFC3339Nano))
		fmt.Fprint(w, t.Root.Format())
	})
	publishExpvarOnce()
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// queriesDoc is the /debug/queries response body.
type queriesDoc struct {
	Enabled bool                    `json:"enabled"`
	Recent  []telemetry.QueryRecord `json:"recent"`
	Slow    []telemetry.QueryRecord `json:"slow"`
}

// TraceSummary is one /debug/traces index row.
type TraceSummary struct {
	ID         uint64  `json:"id"`
	Op         string  `json:"op"`
	Query      string  `json:"query,omitempty"`
	Outcome    string  `json:"outcome"`
	DurationMS float64 `json:"duration_ms"`
	Start      string  `json:"start"`
}

type tracesDoc struct {
	Enabled bool           `json:"enabled"`
	Recent  []TraceSummary `json:"recent"`
	Slow    []TraceSummary `json:"slow"`
}

func traceSummary(t telemetry.TraceRecord) TraceSummary {
	return TraceSummary{
		ID:         t.ID,
		Op:         t.Rec.Op,
		Query:      t.Query,
		Outcome:    string(t.Rec.Outcome),
		DurationMS: float64(t.Rec.Duration.Nanoseconds()) / 1e6,
		Start:      t.Rec.Start.Format(time.RFC3339Nano),
	}
}

// writeWindowSummaries appends the sliding-window latency quantiles to
// the /metrics page as a Prometheus summary-style series per op. These
// are derived views over the windowed histograms, not registry
// metrics, so they are rendered here rather than registered.
func writeWindowSummaries(w io.Writer, c *telemetry.Collector) {
	stats := c.Stats()
	if len(stats.Ops) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP mogis_query_window_seconds windowed query latency quantiles by op (last %gs)\n", stats.WindowSeconds)
	fmt.Fprintf(w, "# TYPE mogis_query_window_seconds summary\n")
	for _, op := range stats.Ops {
		fmt.Fprintf(w, "mogis_query_window_seconds{op=%q,quantile=\"0.5\"} %g\n", op.Op, op.Window.P50Secs)
		fmt.Fprintf(w, "mogis_query_window_seconds{op=%q,quantile=\"0.9\"} %g\n", op.Op, op.Window.P90Secs)
		fmt.Fprintf(w, "mogis_query_window_seconds{op=%q,quantile=\"0.99\"} %g\n", op.Op, op.Window.P99Secs)
		fmt.Fprintf(w, "mogis_query_window_seconds_max{op=%q} %g\n", op.Op, op.Window.MaxSecs)
		fmt.Fprintf(w, "mogis_query_window_seconds_count{op=%q} %d\n", op.Op, op.Window.Queries)
	}
}

// expvarOnce guards the process-global expvar.Publish (it panics on a
// duplicate name; two Handlers in one process share the var).
var expvarOnce sync.Once

func publishExpvarOnce() {
	expvarOnce.Do(func() {
		expvar.Publish("mogis_telemetry", expvar.Func(func() any {
			return telemetry.Default().Stats()
		}))
	})
}

// Server is one telemetry HTTP listener.
type Server struct {
	// Addr is the bound address (resolves ":0" to the real port).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. "localhost:6060" or ":0") and serves the
// telemetry mux on it in a background goroutine until Close or
// Shutdown. The listener is hardened against misbehaving peers: a
// header-read timeout, a write timeout bounding each (small, bounded)
// debug page, and a header-size cap.
func Serve(addr string, c *telemetry.Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telhttp: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv: &http.Server{
			Handler:           Handler(c),
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      30 * time.Second,
			MaxHeaderBytes:    1 << 20,
		},
		ln: ln,
	}
	// The accept loop lives until Close/Shutdown stops the listener;
	// Serve's return value is the ErrServerClosed it reports then.
	go func() { _ = s.srv.Serve(ln) }() //moglint:detached
	return s, nil
}

// Close stops the listener and in-flight handlers immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the listener and waits for in-flight requests to
// complete, bounded by ctx. A scrape racing the drain finishes its
// response instead of getting a reset.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
