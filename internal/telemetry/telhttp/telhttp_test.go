package telhttp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mogis/internal/obs"
	"mogis/internal/telemetry"
)

func testCollector(t *testing.T) *telemetry.Collector {
	t.Helper()
	c := telemetry.New(telemetry.Config{
		Registry:      obs.NewRegistry(),
		SampleEvery:   1,
		SlowThreshold: 50 * time.Millisecond,
	})
	c.Record(telemetry.QueryRecord{
		Op: "objects_passing_through", Table: "cars",
		Start: time.Now(), Duration: 3 * time.Millisecond,
		Outcome: telemetry.OutcomeOK, RowsScanned: 500, CacheHits: 1,
	})
	c.Record(telemetry.QueryRecord{
		Op: "objects_passing_through", Table: "cars",
		Start: time.Now(), Duration: 80 * time.Millisecond,
		Outcome: telemetry.OutcomeCancelled, Err: "context canceled",
	})
	return c
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	c := testCollector(t)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, w := range []string{
		"mogis_telemetry_records_total 2",
		`mogis_query_window_seconds{op="objects_passing_through",quantile="0.99"}`,
		`mogis_query_window_seconds_count{op="objects_passing_through"} 2`,
		"# TYPE mogis_query_window_seconds summary",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q:\n%s", w, body)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	c := testCollector(t)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	code, body := get(t, srv, "/debug/stats")
	if code != http.StatusOK {
		t.Fatalf("/debug/stats status = %d", code)
	}
	var stats telemetry.Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/debug/stats is not JSON: %v", err)
	}
	if len(stats.Ops) != 1 || stats.Ops[0].Op != "objects_passing_through" {
		t.Fatalf("stats ops = %+v", stats.Ops)
	}
	row := stats.Ops[0]
	if row.Queries != 2 || row.Cancelled != 1 || row.RowsScanned != 500 {
		t.Errorf("stats row wrong: %+v", row)
	}
	if stats.Runtime.Goroutines <= 0 || stats.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime view empty: %+v", stats.Runtime)
	}
}

func TestQueriesEndpoint(t *testing.T) {
	c := testCollector(t)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	code, body := get(t, srv, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries status = %d", code)
	}
	var doc struct {
		Enabled bool                    `json:"enabled"`
		Recent  []telemetry.QueryRecord `json:"recent"`
		Slow    []telemetry.QueryRecord `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/queries is not JSON: %v", err)
	}
	if !doc.Enabled || len(doc.Recent) != 2 {
		t.Fatalf("queries doc = %+v", doc)
	}
	// Newest first: the cancelled slow query leads both lists.
	if doc.Recent[0].Outcome != telemetry.OutcomeCancelled || doc.Recent[0].Err == "" {
		t.Errorf("recent[0] = %+v", doc.Recent[0])
	}
	if len(doc.Slow) != 1 || doc.Slow[0].Duration != 80*time.Millisecond {
		t.Errorf("slow = %+v", doc.Slow)
	}

	if _, body := get(t, srv, "/debug/queries?max=1"); strings.Count(body, `"op"`) != 2 {
		t.Errorf("max=1 should cap both lists at one record each:\n%s", body)
	}
}

func TestTracesEndpoints(t *testing.T) {
	c := testCollector(t)
	tr := c.MaybeTrace()
	tr.Start("geo").End()
	id := c.RetainTrace(tr, telemetry.QueryRecord{
		Op: "pietql_query", Start: time.Now(), Duration: time.Millisecond,
		Outcome: telemetry.OutcomeOK,
	}, "SELECT GIS districts FROM schema;")
	if id == 0 {
		t.Fatal("trace not retained")
	}
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	code, body := get(t, srv, "/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, `"op": "pietql_query"`) {
		t.Fatalf("/debug/traces status=%d body:\n%s", code, body)
	}

	code, body = get(t, srv, fmt.Sprintf("/debug/traces/%d", id))
	if code != http.StatusOK {
		t.Fatalf("/debug/traces/%d status = %d", id, code)
	}
	for _, w := range []string{"SELECT GIS districts", "└─ geo", "outcome=ok"} {
		if !strings.Contains(body, w) {
			t.Errorf("trace page missing %q:\n%s", w, body)
		}
	}

	if code, _ := get(t, srv, "/debug/traces/999999"); code != http.StatusNotFound {
		t.Errorf("missing trace status = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/debug/traces/xyz"); code != http.StatusBadRequest {
		t.Errorf("bad trace id status = %d, want 400", code)
	}
}

func TestExpvarEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testCollector(t)))
	defer srv.Close()
	code, body := get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	if !strings.Contains(body, "memstats") || !strings.Contains(body, "mogis_telemetry") {
		t.Errorf("/debug/vars missing expected vars:\n%.400s", body)
	}
}

func TestNilCollectorHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/stats", "/debug/queries", "/debug/traces"} {
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Errorf("%s with nil collector status = %d", path, code)
		}
		if strings.Contains(body, "panic") {
			t.Errorf("%s body suggests a panic:\n%s", path, body)
		}
	}
	code, body := get(t, srv, "/debug/queries")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("nil collector must report enabled=false, got:\n%s", body)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testCollector(t))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/debug/stats")
	if err != nil {
		t.Fatalf("GET via Serve listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Close must release the port. Re-binding the address proves it
	// without racing another test process grabbing the freed port
	// (which is what a "GET now fails" assertion would race with).
	if ln, err := net.Listen("tcp", srv.Addr); err != nil {
		t.Errorf("address not released after Close: %v", err)
	} else {
		ln.Close()
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

// TestShutdownDrainsInFlight pins the graceful half of the Serve
// lifecycle: a request already being read when Shutdown begins still
// gets its complete response, and Shutdown returns cleanly after.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testCollector(t))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Open the connection and send only part of the request, so the
	// server sees an active conn that Shutdown must wait for.
	conn, err := net.Dial("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /debug/stats HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to accept and start reading the header.
	time.Sleep(20 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Complete the request mid-drain; it must be answered in full.
	if _, err := io.WriteString(conn, "Connection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutines") {
		t.Errorf("drained response: status %d body %q", resp.StatusCode, body)
	}
	if err := <-done; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	var nilSrv *Server
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := nilSrv.Shutdown(ctx); err != nil {
		t.Errorf("nil server Shutdown: %v", err)
	}
}

// TestServeCloseCycleNoLeak churns the listener lifecycle: 100
// Serve/Close rounds must not accrete goroutines (each round spawns
// one Serve goroutine that must exit with its listener).
func TestServeCloseCycleNoLeak(t *testing.T) {
	c := testCollector(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		srv, err := Serve("127.0.0.1:0", c)
		if err != nil {
			t.Fatalf("cycle %d: Serve: %v", i, err)
		}
		// Odd cycles exercise a served request before teardown.
		if i%2 == 1 {
			resp, err := http.Get("http://" + srv.Addr + "/metrics")
			if err != nil {
				t.Fatalf("cycle %d: GET: %v", i, err)
			}
			resp.Body.Close()
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("cycle %d: Close: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew across 100 Serve/Close cycles: before=%d after=%d", before, n)
	}
}
