package store

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mogis/internal/geom"
	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/workload"
)

func TestPolygonLayerRoundtrip(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 4, Cols: 3, Rows: 3})
	attrOf := func(name, attr string) (float64, bool) {
		v, ok := city.Neighborhoods.Attr("neighborhood", olap.Member(name), attr)
		if !ok {
			return 0, false
		}
		return v.Num()
	}
	var buf bytes.Buffer
	if err := WritePolygonLayer(&buf, city.Ln, "neighb", []string{"income", "population"}, attrOf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadPolygonLayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 9 {
		t.Fatalf("records = %d", len(records))
	}
	for _, rec := range records {
		orig, ok := city.Ln.Polygon(rec.ID)
		if !ok {
			t.Fatalf("unknown id %d", rec.ID)
		}
		if math.Abs(orig.Area()-rec.Poly.Area()) > 1e-9 {
			t.Errorf("%s: area %v vs %v", rec.Name, orig.Area(), rec.Poly.Area())
		}
		income, _ := attrOf(rec.Name, "income")
		if rec.Attrs["income"] != income {
			t.Errorf("%s: income %v vs %v", rec.Name, rec.Attrs["income"], income)
		}
	}
	if got := SortedAttrNames(records); len(got) != 2 || got[0] != "income" {
		t.Errorf("attr names = %v", got)
	}
}

func TestNodeAndPolylineRoundtrip(t *testing.T) {
	city := workload.GenCity(workload.CityConfig{Seed: 4, Cols: 3, Rows: 3, Schools: 5})
	var buf bytes.Buffer
	if err := WriteNodeLayer(&buf, city.Ls, "school"); err != nil {
		t.Fatal(err)
	}
	nodes, err := ReadNodeLayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		p, ok := city.Ls.Node(n.ID)
		if !ok || !p.Eq(n.P) {
			t.Errorf("node %d mismatch", n.ID)
		}
	}

	buf.Reset()
	if err := WritePolylineLayer(&buf, city.Lh, "street"); err != nil {
		t.Fatal(err)
	}
	lines, err := ReadPolylineLayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != city.Lh.Count(layer.KindPolyline) {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, pl := range lines {
		orig, ok := city.Lh.Polyline(pl.ID)
		if !ok || math.Abs(orig.Length()-pl.Line.Length()) > 1e-9 {
			t.Errorf("polyline %d mismatch", pl.ID)
		}
	}
}

func TestParseWKTPolygon(t *testing.T) {
	pg, err := ParseWKTPolygon("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))")
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Shell) != 4 || len(pg.Holes) != 1 || len(pg.Holes[0]) != 4 {
		t.Fatalf("parsed = %+v", pg)
	}
	if pg.Area() != 15 {
		t.Errorf("area = %v", pg.Area())
	}
	// Roundtrip through geom.WKT.
	back, err := ParseWKTPolygon(geom.WKT(pg))
	if err != nil {
		t.Fatal(err)
	}
	if back.Area() != 15 {
		t.Errorf("roundtrip area = %v", back.Area())
	}
	for _, bad := range []string{
		"", "POINT (1 2)", "POLYGON ()", "POLYGON ((0 0, 1 1))",
		"POLYGON ((0 0, 1 1, x y))", "POLYGON (0 0, 1 1", "POLYGON ((0 0, 1 0, 1 1)",
	} {
		if _, err := ParseWKTPolygon(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseWKTLineString(t *testing.T) {
	pl, err := ParseWKTLineString("LINESTRING (0 0, 1 0, 1 5)")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Length() != 6 {
		t.Errorf("length = %v", pl.Length())
	}
	for _, bad := range []string{"", "POLYGON ((0 0))", "LINESTRING (0 0)", "LINESTRING (a b, c d)"} {
		if _, err := ParseWKTLineString(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadPolygonLayer(strings.NewReader("")); err == nil {
		t.Error("empty polygon file accepted")
	}
	if _, err := ReadPolygonLayer(strings.NewReader("bad,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadPolygonLayer(strings.NewReader("id,name,wkt\nx,n,\"POLYGON ((0 0, 1 0, 1 1, 0 0))\"\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadPolygonLayer(strings.NewReader("id,name,income,wkt\n1,n,abc,\"POLYGON ((0 0, 1 0, 1 1, 0 0))\"\n")); err == nil {
		t.Error("bad attr accepted")
	}
	if _, err := ReadNodeLayer(strings.NewReader("id,name,wkt\nx,n,\"POINT (1 2)\"\n")); err == nil {
		t.Error("bad node id accepted")
	}
	if _, err := ReadNodeLayer(strings.NewReader("id,name,wkt\n1,n,\"LINESTRING (0 0, 1 1)\"\n")); err == nil {
		t.Error("non-point wkt accepted")
	}
	if _, err := ReadPolylineLayer(strings.NewReader("id,name,wkt\n1,n,\"POINT (1 2)\"\n")); err == nil {
		t.Error("non-linestring wkt accepted")
	}
}
