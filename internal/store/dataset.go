package store

import (
	"fmt"
	"os"
	"path/filepath"

	"mogis/internal/core"
	"mogis/internal/fo"
	"mogis/internal/gis"
	"mogis/internal/layer"
	"mogis/internal/moft"
	"mogis/internal/olap"
)

// Dataset is a complete on-disk model instance: the standard layer
// set of the running example (neighborhoods, river, streets, schools,
// stores) plus a moving-object fact table and the application-part
// dimension carrying the neighborhood attributes.
type Dataset struct {
	Ln      *layer.Layer // neighborhoods (polygons, α "neighb")
	Lr      *layer.Layer // rivers (polylines, α "river")
	Lh      *layer.Layer // streets (polylines, α "street")
	Ls      *layer.Layer // schools (nodes, α "school")
	Lstores *layer.Layer // stores (nodes, α "store")

	Neighborhoods *olap.Dimension
	FM            *moft.Table
}

// File names within a dataset directory.
const (
	FileNeighborhoods = "neighborhoods.csv"
	FileRivers        = "rivers.csv"
	FileStreets       = "streets.csv"
	FileSchools       = "schools.csv"
	FileStores        = "stores.csv"
	FileMOFT          = "moft.csv"
)

// Save writes the dataset into dir (created if needed). Nil layers
// and a nil MOFT are skipped.
func (ds *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if ds.Ln != nil {
		attrOf := func(name, attr string) (float64, bool) {
			if ds.Neighborhoods == nil {
				return 0, false
			}
			v, ok := ds.Neighborhoods.Attr("neighborhood", olap.Member(name), attr)
			if !ok {
				return 0, false
			}
			return v.Num()
		}
		if err := saveFile(dir, FileNeighborhoods, func(f *os.File) error {
			return WritePolygonLayer(f, ds.Ln, "neighb", []string{"income", "population"}, attrOf)
		}); err != nil {
			return err
		}
	}
	if ds.Lr != nil {
		if err := saveFile(dir, FileRivers, func(f *os.File) error {
			return WritePolylineLayer(f, ds.Lr, "river")
		}); err != nil {
			return err
		}
	}
	if ds.Lh != nil {
		if err := saveFile(dir, FileStreets, func(f *os.File) error {
			return WritePolylineLayer(f, ds.Lh, "street")
		}); err != nil {
			return err
		}
	}
	if ds.Ls != nil {
		if err := saveFile(dir, FileSchools, func(f *os.File) error {
			return WriteNodeLayer(f, ds.Ls, "school")
		}); err != nil {
			return err
		}
	}
	if ds.Lstores != nil {
		if err := saveFile(dir, FileStores, func(f *os.File) error {
			return WriteNodeLayer(f, ds.Lstores, "store")
		}); err != nil {
			return err
		}
	}
	if ds.FM != nil {
		if err := saveFile(dir, FileMOFT, func(f *os.File) error { return ds.FM.WriteCSV(f) }); err != nil {
			return err
		}
	}
	return nil
}

func saveFile(dir, name string, write func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Load reads a dataset from dir. neighborhoods.csv is required;
// every other file is optional.
func Load(dir string) (*Dataset, error) {
	ds := &Dataset{}

	// Neighborhoods (required).
	f, err := os.Open(filepath.Join(dir, FileNeighborhoods))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	records, err := ReadPolygonLayer(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	ds.Ln = layer.New("Ln")
	ds.Neighborhoods = olap.NewDimension(
		olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	for _, rec := range records {
		ds.Ln.AddPolygon(rec.ID, rec.Poly)
		ds.Ln.SetAlpha("neighb", layer.KindPolygon, rec.Name, rec.ID)
		ds.Neighborhoods.SetRollup("neighborhood", olap.Member(rec.Name), "city", "City")
		for attr, v := range rec.Attrs {
			ds.Neighborhoods.SetAttr("neighborhood", olap.Member(rec.Name), attr, olap.Num(v))
		}
	}

	// Optional layers.
	if lines, err := loadPolylines(dir, FileRivers); err != nil {
		return nil, err
	} else if lines != nil {
		ds.Lr = layer.New("Lr")
		for _, pl := range lines {
			ds.Lr.AddPolyline(pl.ID, pl.Line)
			ds.Lr.SetAlpha("river", layer.KindPolyline, pl.Name, pl.ID)
		}
	}
	if lines, err := loadPolylines(dir, FileStreets); err != nil {
		return nil, err
	} else if lines != nil {
		ds.Lh = layer.New("Lh")
		for _, pl := range lines {
			ds.Lh.AddPolyline(pl.ID, pl.Line)
			ds.Lh.SetAlpha("street", layer.KindPolyline, pl.Name, pl.ID)
		}
	}
	if nodes, err := loadNodes(dir, FileSchools); err != nil {
		return nil, err
	} else if nodes != nil {
		ds.Ls = layer.New("Ls")
		for _, n := range nodes {
			ds.Ls.AddNode(n.ID, n.P)
			ds.Ls.SetAlpha("school", layer.KindNode, n.Name, n.ID)
		}
	}
	if nodes, err := loadNodes(dir, FileStores); err != nil {
		return nil, err
	} else if nodes != nil {
		ds.Lstores = layer.New("Lstores")
		for _, n := range nodes {
			ds.Lstores.AddNode(n.ID, n.P)
			ds.Lstores.SetAlpha("store", layer.KindNode, n.Name, n.ID)
		}
	}

	// Optional MOFT.
	if mf, err := os.Open(filepath.Join(dir, FileMOFT)); err == nil {
		ds.FM, err = moft.ReadCSV("FM", mf)
		mf.Close()
		if err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	return ds, nil
}

func loadPolylines(dir, name string) ([]PolylineRecord, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReadPolylineLayer(f)
}

func loadNodes(dir, name string) ([]PointRecord, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReadNodeLayer(f)
}

// GIS wires the dataset's layers into a GIS dimension instance with
// the standard Figure-2-shaped schema, ready for query evaluation.
func (ds *Dataset) GIS() (*gis.Dimension, error) {
	schema := gis.NewSchema().
		AddAppSchema(olap.NewSchema("Neighbourhoods").AddEdge("neighborhood", "city"))
	d := gis.NewDimension(schema)
	if ds.Ln != nil {
		schema.AddHierarchy(gis.NewHierarchy("Ln").
			AddEdge(layer.KindPoint, layer.KindPolygon).
			AddEdge(layer.KindPolygon, layer.KindAll)).
			BindAttr("neighb", layer.KindPolygon, "Ln")
		if err := d.AddLayer(ds.Ln); err != nil {
			return nil, err
		}
	}
	if ds.Lr != nil {
		schema.AddHierarchy(gis.NewHierarchy("Lr").
			AddEdge(layer.KindPoint, layer.KindPolyline).
			AddEdge(layer.KindPolyline, layer.KindAll)).
			BindAttr("river", layer.KindPolyline, "Lr")
		if err := d.AddLayer(ds.Lr); err != nil {
			return nil, err
		}
	}
	if ds.Lh != nil {
		schema.AddHierarchy(gis.NewHierarchy("Lh").
			AddEdge(layer.KindPoint, layer.KindPolyline).
			AddEdge(layer.KindPolyline, layer.KindAll)).
			BindAttr("street", layer.KindPolyline, "Lh")
		if err := d.AddLayer(ds.Lh); err != nil {
			return nil, err
		}
	}
	if ds.Ls != nil {
		schema.AddHierarchy(gis.NewHierarchy("Ls").
			AddEdge(layer.KindPoint, layer.KindNode).
			AddEdge(layer.KindNode, layer.KindAll)).
			BindAttr("school", layer.KindNode, "Ls")
		if err := d.AddLayer(ds.Ls); err != nil {
			return nil, err
		}
	}
	if ds.Lstores != nil {
		schema.AddHierarchy(gis.NewHierarchy("Lstores").
			AddEdge(layer.KindPoint, layer.KindNode).
			AddEdge(layer.KindNode, layer.KindAll)).
			BindAttr("store", layer.KindNode, "Lstores")
		if err := d.AddLayer(ds.Lstores); err != nil {
			return nil, err
		}
	}
	if ds.Neighborhoods != nil {
		if err := d.AddAppDimension(ds.Neighborhoods); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Context wires the dataset into an evaluation context and engine.
func (ds *Dataset) Context() (*fo.Context, *core.Engine, error) {
	d, err := ds.GIS()
	if err != nil {
		return nil, nil, err
	}
	ctx := fo.NewContext(d)
	if ds.FM != nil {
		ctx.AddTable(ds.FM)
	}
	if ds.Neighborhoods != nil {
		ctx.BindConcept("neighb", ds.Neighborhoods, "neighborhood")
	}
	return ctx, core.New(ctx), nil
}
