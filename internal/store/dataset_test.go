package store

import (
	"context"

	"os"
	"path/filepath"
	"testing"

	"mogis/internal/layer"
	"mogis/internal/olap"
	"mogis/internal/workload"
)

func datasetFromCity(t *testing.T) *Dataset {
	t.Helper()
	city := workload.GenCity(workload.CityConfig{Seed: 15, Cols: 3, Rows: 3, Schools: 4, Stores: 4})
	fm := workload.GenTrajectories(city.Extent, workload.TrajConfig{Seed: 15, Objects: 8, Samples: 12})
	return &Dataset{
		Ln: city.Ln, Lr: city.Lr, Lh: city.Lh, Ls: city.Ls, Lstores: city.Lstores,
		Neighborhoods: city.Neighborhoods, FM: fm,
	}
}

func TestDatasetRoundtrip(t *testing.T) {
	ds := datasetFromCity(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{FileNeighborhoods, FileRivers, FileStreets, FileSchools, FileStores, FileMOFT} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ln.Count(layer.KindPolygon) != 9 {
		t.Errorf("polygons = %d", back.Ln.Count(layer.KindPolygon))
	}
	if back.FM.Len() != ds.FM.Len() {
		t.Errorf("moft = %d vs %d", back.FM.Len(), ds.FM.Len())
	}
	if back.Ls.Count(layer.KindNode) != 4 || back.Lstores.Count(layer.KindNode) != 4 {
		t.Error("node layers")
	}
	if back.Lr.Count(layer.KindPolyline) != 1 {
		t.Error("river layer")
	}
	// Attributes survive.
	name := back.Ln.AlphaMembers("neighb")[0]
	v, ok := back.Neighborhoods.Attr("neighborhood", olap.Member(name), "income")
	if !ok {
		t.Fatalf("missing income for %s", name)
	}
	orig, _ := ds.Neighborhoods.Attr("neighborhood", olap.Member(name), "income")
	if !v.Equal(orig) {
		t.Errorf("income %v vs %v", v, orig)
	}
}

func TestDatasetContextEndToEnd(t *testing.T) {
	ds := datasetFromCity(t)
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, eng, err := back.Context()
	if err != nil {
		t.Fatal(err)
	}
	lits, err := eng.Trajectories(context.Background(), "FM")
	if err != nil {
		t.Fatal(err)
	}
	if len(lits) != 8 {
		t.Errorf("trajectories = %d", len(lits))
	}
	d, err := back.GIS()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("loaded GIS invalid: %v", err)
	}
}

func TestDatasetLoadPartial(t *testing.T) {
	ds := datasetFromCity(t)
	ds.Lr, ds.Lh, ds.Ls, ds.Lstores, ds.FM = nil, nil, nil, nil, nil
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Lr != nil || back.FM != nil {
		t.Error("absent files should load as nil")
	}
	if _, _, err := back.Context(); err != nil {
		t.Errorf("partial context: %v", err)
	}
}

func TestDatasetLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing directory accepted")
	}
}
