// Package store persists and reloads model instances as plain
// CSV/WKT files: polygon layers with attributes, polyline and node
// layers, and moving-object fact tables. The formats match what
// cmd/mogen writes, so generated workloads round-trip through disk and
// external tools (spreadsheets, PostGIS imports) can consume them.
package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mogis/internal/geom"
	"mogis/internal/layer"
)

// PolygonRecord is one row of a polygon-layer file.
type PolygonRecord struct {
	ID    layer.Gid
	Name  string
	Attrs map[string]float64
	Poly  geom.Polygon
}

// WritePolygonLayer writes the named attribute's polygons with their
// numeric attributes: header "id,name,<attrs...>,wkt".
func WritePolygonLayer(w io.Writer, l *layer.Layer, alphaAttr string, attrNames []string,
	attrOf func(name, attr string) (float64, bool)) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id", "name"}, attrNames...)
	header = append(header, "wkt")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	for _, name := range l.AlphaMembers(alphaAttr) {
		_, id, _ := l.Alpha(alphaAttr, name)
		pg, ok := l.Polygon(id)
		if !ok {
			return fmt.Errorf("store: α_%s(%q) names missing polygon %d", alphaAttr, name, id)
		}
		rec := []string{strconv.FormatInt(int64(id), 10), name}
		for _, a := range attrNames {
			v, _ := attrOf(name, a)
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		rec = append(rec, geom.WKT(pg))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("store: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPolygonLayer parses a polygon-layer file written by
// WritePolygonLayer.
func ReadPolygonLayer(r io.Reader) ([]PolygonRecord, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: empty polygon file")
	}
	header := recs[0]
	if len(header) < 3 || header[0] != "id" || header[1] != "name" || header[len(header)-1] != "wkt" {
		return nil, fmt.Errorf("store: malformed header %v", header)
	}
	attrNames := header[2 : len(header)-1]
	var out []PolygonRecord
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("store: row %d: %d fields, want %d", i+1, len(rec), len(header))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: row %d id: %w", i+1, err)
		}
		pr := PolygonRecord{ID: layer.Gid(id), Name: rec[1], Attrs: map[string]float64{}}
		for j, a := range attrNames {
			v, err := strconv.ParseFloat(rec[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("store: row %d attr %q: %w", i+1, a, err)
			}
			pr.Attrs[a] = v
		}
		pg, err := ParseWKTPolygon(rec[len(rec)-1])
		if err != nil {
			return nil, fmt.Errorf("store: row %d: %w", i+1, err)
		}
		pr.Poly = pg
		out = append(out, pr)
	}
	return out, nil
}

// PointRecord is one row of a node-layer file.
type PointRecord struct {
	ID   layer.Gid
	Name string
	P    geom.Point
}

// WriteNodeLayer writes "id,name,wkt" rows for the node geometries
// bound by alphaAttr.
func WriteNodeLayer(w io.Writer, l *layer.Layer, alphaAttr string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "name", "wkt"}); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	for _, name := range l.AlphaMembers(alphaAttr) {
		_, id, _ := l.Alpha(alphaAttr, name)
		p, ok := l.Node(id)
		if !ok {
			return fmt.Errorf("store: α_%s(%q) names missing node %d", alphaAttr, name, id)
		}
		rec := []string{strconv.FormatInt(int64(id), 10), name, geom.WKT(p)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("store: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNodeLayer parses a node-layer file.
func ReadNodeLayer(r io.Reader) ([]PointRecord, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	var out []PointRecord
	for i, rec := range recs {
		if i == 0 && len(rec) > 0 && rec[0] == "id" {
			continue
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("store: row %d: want 3 fields, got %d", i, len(rec))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: row %d id: %w", i, err)
		}
		p, err := geom.ParseWKTPoint(rec[2])
		if err != nil {
			return nil, fmt.Errorf("store: row %d: %w", i, err)
		}
		out = append(out, PointRecord{ID: layer.Gid(id), Name: rec[1], P: p})
	}
	return out, nil
}

// PolylineRecord is one row of a polyline-layer file.
type PolylineRecord struct {
	ID   layer.Gid
	Name string
	Line geom.Polyline
}

// WritePolylineLayer writes "id,name,wkt" rows for the polylines
// bound by alphaAttr.
func WritePolylineLayer(w io.Writer, l *layer.Layer, alphaAttr string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "name", "wkt"}); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	for _, name := range l.AlphaMembers(alphaAttr) {
		_, id, _ := l.Alpha(alphaAttr, name)
		pl, ok := l.Polyline(id)
		if !ok {
			return fmt.Errorf("store: α_%s(%q) names missing polyline %d", alphaAttr, name, id)
		}
		rec := []string{strconv.FormatInt(int64(id), 10), name, geom.WKT(pl)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("store: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPolylineLayer parses a polyline-layer file.
func ReadPolylineLayer(r io.Reader) ([]PolylineRecord, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	var out []PolylineRecord
	for i, rec := range recs {
		if i == 0 && len(rec) > 0 && rec[0] == "id" {
			continue
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("store: row %d: want 3 fields, got %d", i, len(rec))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: row %d id: %w", i, err)
		}
		pl, err := ParseWKTLineString(rec[2])
		if err != nil {
			return nil, fmt.Errorf("store: row %d: %w", i, err)
		}
		out = append(out, PolylineRecord{ID: layer.Gid(id), Name: rec[1], Line: pl})
	}
	return out, nil
}

// ParseWKTLineString parses "LINESTRING (x y, x y, ...)".
func ParseWKTLineString(s string) (geom.Polyline, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "LINESTRING") {
		return nil, fmt.Errorf("store: not a WKT linestring: %q", s)
	}
	body := strings.TrimSpace(s[len("LINESTRING"):])
	pts, err := parseCoordList(body)
	if err != nil {
		return nil, fmt.Errorf("store: %q: %w", s, err)
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("store: linestring needs ≥ 2 points: %q", s)
	}
	return geom.Polyline(pts), nil
}

// ParseWKTPolygon parses "POLYGON ((...), (...))" with optional hole
// rings. The closing duplicate vertex of each ring is dropped.
func ParseWKTPolygon(s string) (geom.Polygon, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "POLYGON") {
		return geom.Polygon{}, fmt.Errorf("store: not a WKT polygon: %q", s)
	}
	body := strings.TrimSpace(s[len("POLYGON"):])
	if !strings.HasPrefix(body, "(") || !strings.HasSuffix(body, ")") {
		return geom.Polygon{}, fmt.Errorf("store: malformed polygon body: %q", s)
	}
	body = body[1 : len(body)-1]
	rings, err := splitRings(body)
	if err != nil {
		return geom.Polygon{}, fmt.Errorf("store: %q: %w", s, err)
	}
	if len(rings) == 0 {
		return geom.Polygon{}, fmt.Errorf("store: polygon with no rings: %q", s)
	}
	var pg geom.Polygon
	for i, ringBody := range rings {
		pts, err := parseCoordList(ringBody)
		if err != nil {
			return geom.Polygon{}, fmt.Errorf("store: ring %d of %q: %w", i, s, err)
		}
		// Drop the explicit closing vertex.
		if len(pts) > 1 && pts[0].Eq(pts[len(pts)-1]) {
			pts = pts[:len(pts)-1]
		}
		if len(pts) < 3 {
			return geom.Polygon{}, fmt.Errorf("store: ring %d of %q has < 3 points", i, s)
		}
		if i == 0 {
			pg.Shell = geom.Ring(pts)
		} else {
			pg.Holes = append(pg.Holes, geom.Ring(pts))
		}
	}
	return pg, nil
}

// splitRings splits "(...), (...)" into the parenthesized bodies.
func splitRings(body string) ([]string, error) {
	var out []string
	depth := 0
	start := -1
	for i, c := range body {
		switch c {
		case '(':
			depth++
			if depth == 1 {
				start = i + 1
			}
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses")
			}
			if depth == 0 {
				out = append(out, body[start:i])
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses")
	}
	return out, nil
}

// parseCoordList parses "(x y, x y, ...)" or "x y, x y, ...".
func parseCoordList(body string) ([]geom.Point, error) {
	body = strings.TrimSpace(body)
	body = strings.TrimPrefix(body, "(")
	body = strings.TrimSuffix(body, ")")
	parts := strings.Split(body, ",")
	var out []geom.Point
	for _, part := range parts {
		fs := strings.Fields(strings.TrimSpace(part))
		if len(fs) != 2 {
			return nil, fmt.Errorf("coordinate %q: want 2 fields", part)
		}
		x, err := strconv.ParseFloat(fs[0], 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %q: %w", part, err)
		}
		y, err := strconv.ParseFloat(fs[1], 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %q: %w", part, err)
		}
		out = append(out, geom.Pt(x, y))
	}
	return out, nil
}

// SortedAttrNames returns the union of attribute names across the
// records, sorted — convenient for writing back what was read.
func SortedAttrNames(records []PolygonRecord) []string {
	set := map[string]bool{}
	for _, r := range records {
		for a := range r.Attrs {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
