package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// This file holds the type-resolution helpers the analyzers share.
// Every helper is nil-safe against missing type information (a
// package that failed to type-check has incomplete Info maps): the
// convention is to return false/nil/"" so the calling analyzer stays
// silent on code it cannot resolve.

// typeOf returns the type of e, or nil when the checker did not
// resolve it.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// objectOf returns the object an identifier denotes (use or def), or
// nil.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if pt, ok := t.(*types.Pointer); ok {
		return pt.Elem()
	}
	return t
}

// namedType resolves t (through pointers and aliases) to its named
// type, or nil for unnamed types.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = deref(types.Unalias(t))
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// typeIs reports whether t (through pointers and aliases) is the
// named type pkgPath.name. An empty pkgPath matches any package;
// pkgTail matches on the last path element instead (fixture packages
// stand in for engine packages under different roots).
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkgPath == "" {
		return true
	}
	return pkg != nil && pkg.Path() == pkgPath
}

// typeIsTail matches a named type by name and the last element of its
// package path ("obs", "moft"): exact enough for the module's unique
// package tails while letting fixture trees model engine packages.
func typeIsTail(t types.Type, pkgTail, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pathTail(pkg.Path()) == pkgTail
}

// typeNameIs reports whether t resolves to a named type with the
// given bare name, in any package.
func typeNameIs(t types.Type, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == name
}

// pkgFunc resolves a call to a package-level function and reports
// whether it is pkgPath.name (e.g. "time".Now). Methods do not match.
func (p *Package) pkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.calleeObj(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	if _, isFunc := fn.(*types.Func); !isFunc {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleeObj resolves the callee of a call expression to its object
// (function, method, or builtin), or nil.
func (p *Package) calleeObj(call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.objectOf(fn)
	case *ast.SelectorExpr:
		return p.objectOf(fn.Sel)
	}
	return nil
}

// methodCall matches a call to a method with the given name whose
// receiver type satisfies recvOK, returning the receiver expression.
func (p *Package) methodCall(call *ast.CallExpr, name string, recvOK func(types.Type) bool) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	t := p.typeOf(sel.X)
	if t == nil || !recvOK(t) {
		return nil, false
	}
	return sel.X, true
}

// constString resolves e to its compile-time string value through the
// checker's constant folding (literals, constants from any package,
// concatenations). ok is false for non-constant expressions.
func (p *Package) constString(e ast.Expr) (string, bool) {
	if p.Info == nil {
		return "", false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorType reports whether t is (or implements) the builtin error
// interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := types.Unalias(t).(*types.Named); ok &&
		named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return typeIs(t, "context", "Context")
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// structFields iterates the package's named struct types, calling
// visit with each type name and its syntactic struct declaration.
func structFields(p *Package, visit func(name *ast.Ident, st *ast.StructType)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					visit(ts.Name, st)
				}
			}
		}
	}
}

// selectionField resolves a selector expression to the struct field
// it denotes, or nil for method selections, package qualifiers and
// unresolved code.
func (p *Package) selectionField(sel *ast.SelectorExpr) *types.Var {
	if p.Info == nil {
		return nil
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwnerName returns the name of the named type that declares the
// struct field behind sel, resolving through the package's struct
// declarations ("" when unknown).
func (p *Package) fieldOwnerName(field *types.Var) string {
	if field == nil || field.Pkg() == nil {
		return ""
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return ""
}

// dirHasTail reports whether the package path's last element equals
// tail — used where behavior keys on the engine package itself.
func pkgTailIs(p *Package, tail string) bool {
	return pathTail(p.Path) == tail
}

// receiverType resolves a method declaration's receiver to its named
// type, or nil.
func (p *Package) receiverType(fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return namedType(p.typeOf(fd.Recv.List[0].Type))
}

// sameObject reports whether two identifiers denote the same object
// under the checker (falling back to parser objects, then names, for
// code the checker could not resolve).
func (p *Package) sameObject(a, b *ast.Ident) bool {
	if a == nil || b == nil {
		return false
	}
	if oa, ob := p.objectOf(a), p.objectOf(b); oa != nil && ob != nil {
		return oa == ob
	}
	if a.Obj != nil && b.Obj != nil {
		return a.Obj == b.Obj
	}
	return a.Name == b.Name
}

// exprString renders a stable identity for a lock expression like
// "e.mu" or "tc.imu": the chain of identifiers and field names,
// ignoring positions. Used to correlate lock sites.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprString(v.X)
		if base == "" {
			return v.Sel.Name
		}
		return base + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.StarExpr:
		return exprString(v.X)
	case *ast.UnaryExpr:
		return exprString(v.X)
	}
	return ""
}

// lockIdentity names a lock globally: the declaring package path, the
// owning struct type (when the lock is a field), and the field or
// variable name. Two call sites locking the same field of the same
// type — on any receiver — share an identity, which is what lock-order
// comparison needs.
func (p *Package) lockIdentity(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if f := p.selectionField(sel); f != nil {
			owner := p.fieldOwnerName(f)
			pkg := ""
			if f.Pkg() != nil {
				pkg = f.Pkg().Path()
			}
			if owner != "" {
				return pkg + "." + owner + "." + f.Name()
			}
			return pkg + "." + f.Name()
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.objectOf(id); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	s := exprString(e)
	if s == "" {
		return ""
	}
	return p.Path + ":" + s
}

// hasSuffixFold reports a case-insensitive suffix match (helper for
// name-shaped fallbacks kept deliberately narrow).
func hasSuffixFold(s, suffix string) bool {
	return len(s) >= len(suffix) && strings.EqualFold(s[len(s)-len(suffix):], suffix)
}
