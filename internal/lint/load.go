package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks upward from dir to the nearest directory holding a
// go.mod and returns it with the declared module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// skipDir reports whether a directory is outside the analyzed program
// (go tooling conventions: testdata trees, hidden and underscore
// directories, vendored code).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadDir parses the non-test Go files of one directory as a Package.
// Returns nil (no error) when the directory holds no non-test Go
// files.
func LoadDir(fset *token.FileSet, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Object resolution (the parser default) links identifier uses
		// to their file-local declarations; the analyzers lean on it
		// for scope-exact variable tracking.
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files}, nil
}

// Load resolves go-style package patterns (./..., dir/..., plain
// directories) relative to root and parses every matched package.
func Load(root, modPath string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		if !recursive {
			dirSet[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirSet[filepath.Clean(path)] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := LoadDir(fset, dir, importPath)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}
