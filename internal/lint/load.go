package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ModuleRoot walks upward from dir to the nearest directory holding a
// go.mod and returns it with the declared module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// skipDir reports whether a directory is outside the analyzed program
// (go tooling conventions: testdata trees, hidden and underscore
// directories, vendored code).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// Loader parses and type-checks packages of one module with the
// stdlib type checker, sharing one *token.FileSet and one *types.Info
// universe across every package it loads. Module-local imports are
// type-checked from source, recursively and cached; imports outside
// the module (the standard library) resolve through compiled export
// data served by `go list -export` out of the go build cache, falling
// back to type-checking the standard library from GOROOT source when
// the go tool is unavailable.
type Loader struct {
	Root    string // module root directory
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	mu      sync.Mutex
	checked map[string]*Package // import path → checked package (nil while in progress)
	exports map[string]string   // external import path → export-data file
	pending map[string]bool     // external paths seen but not yet resolved
	expImp  types.Importer      // gc-export importer (lazy)
	srcImp  types.Importer      // source fallback when the go tool is missing
	goList  bool                // go list probed and working
	probed  bool
}

// NewLoader returns a loader rooted at the module.
func NewLoader(root, modPath string) *Loader {
	return &Loader{
		Root:    root,
		ModPath: modPath,
		Fset:    token.NewFileSet(),
		checked: map[string]*Package{},
		exports: map[string]string{},
		pending: map[string]bool{},
	}
}

// parseDir parses the non-test Go files of one directory. Returns
// (nil, nil) when the directory holds no non-test Go files.
func (l *Loader) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect //go:build constraints and GOOS/GOARCH file suffixes
		// for the default build configuration, so tag-paired files
		// (race_on.go / race_off.go) do not both land in one package.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		// Object resolution (the parser default) links identifier uses
		// to their file-local declarations; some analyzers still lean
		// on it for scope-exact variable tracking alongside types.Info.
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	p := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files}
	l.mu.Lock()
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || l.isLocal(path) || path == "unsafe" {
				continue
			}
			if _, ok := l.exports[path]; !ok {
				l.pending[path] = true
			}
		}
	}
	l.mu.Unlock()
	return p, nil
}

// isLocal reports whether the import path lies inside the module.
func (l *Loader) isLocal(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// localDir maps a module-local import path to its directory.
func (l *Loader) localDir(path string) string {
	if path == l.ModPath {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks one directory as the package with
// the given import path. The import path decides how the package's
// own module-local imports resolve; paths outside the module (fixture
// trees) are fine — their imports still resolve through the module.
// Returns (nil, nil) when the directory holds no non-test Go files.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.checked[importPath]; ok {
		l.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return p, nil
	}
	l.checked[importPath] = nil // in progress
	l.mu.Unlock()

	p, err := l.parseDir(dir, importPath)
	if err != nil {
		l.forget(importPath)
		return nil, err
	}
	if p == nil {
		l.forget(importPath)
		return nil, nil
	}
	l.check(p)
	l.mu.Lock()
	l.checked[importPath] = p
	l.mu.Unlock()
	return p, nil
}

func (l *Loader) forget(importPath string) {
	l.mu.Lock()
	delete(l.checked, importPath)
	l.mu.Unlock()
}

// check runs the type checker over a parsed package, recording the
// shared *types.Info and any type errors on it. Type errors never
// abort the load: analyzers err toward silence on what they cannot
// resolve, and the caller decides whether unresolved code is fatal.
func (l *Loader) check(p *Package) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(p.Path, l.Fset, p.Files, info)
	p.Types = tpkg
	p.Info = info
}

// Import resolves one import for the type checker: module-local
// packages from source (recursively, cached), everything else through
// export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isLocal(path) {
		p, err := l.LoadDir(l.localDir(path), path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: type-checking %s failed", path)
		}
		return p.Types, nil
	}
	return l.importExternal(path)
}

// importExternal resolves a non-module import. The first call probes
// the go tool; when it works, `go list -export -deps` resolves every
// pending external path (and its transitive dependencies) to export
// files in one batch out of the build cache. Without a go tool the
// stdlib source importer takes over.
func (l *Loader) importExternal(path string) (*types.Package, error) {
	l.mu.Lock()
	if !l.probed {
		l.probed = true
		l.goList = exec.Command("go", "version").Run() == nil
		if !l.goList {
			l.srcImp = importer.ForCompiler(l.Fset, "source", nil)
		}
	}
	if !l.goList {
		imp := l.srcImp
		l.mu.Unlock()
		return imp.(types.ImporterFrom).ImportFrom(path, l.Root, 0)
	}
	if _, ok := l.exports[path]; !ok {
		l.pending[path] = true
	}
	if len(l.pending) > 0 {
		want := make([]string, 0, len(l.pending))
		for p := range l.pending {
			want = append(want, p)
		}
		sort.Strings(want)
		l.pending = map[string]bool{}
		if err := l.resolveExports(want); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	if l.expImp == nil {
		l.expImp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	}
	imp := l.expImp
	l.mu.Unlock()
	return imp.Import(path)
}

// resolveExports runs one `go list -export -deps` batch over the given
// import paths, recording every resulting export-data file. Called
// with l.mu held.
func (l *Loader) resolveExports(paths []string) error {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-f", "{{.ImportPath}}\x01{{.Export}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Root
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list -export: %w\n%s", err, stderr.String())
	}
	for _, line := range strings.Split(out.String(), "\n") {
		ip, exp, ok := strings.Cut(line, "\x01")
		if !ok || ip == "" || exp == "" {
			continue
		}
		l.exports[ip] = exp
	}
	return nil
}

// lookup serves export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	exp, ok := l.exports[path]
	if !ok {
		// A transitive dependency the batch missed: resolve it alone.
		if err := l.resolveExports([]string{path}); err != nil {
			l.mu.Unlock()
			return nil, err
		}
		exp, ok = l.exports[path]
	}
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(exp)
}

// Load resolves go-style package patterns (./..., dir/..., plain
// directories) relative to root, then parses and type-checks every
// matched package with a shared Loader.
func Load(root, modPath string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		if !recursive {
			dirSet[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			dirSet[filepath.Clean(path)] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	l := NewLoader(root, modPath)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}
