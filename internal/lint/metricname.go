package lint

import (
	"go/ast"
	"regexp"
)

// AnalyzerMetricName enforces the observability naming contract:
// every metric name registered through internal/obs (Registry.Counter
// / Gauge / Histogram), every span name (Tracer.Start), every root
// trace name (NewTracer), every span count key (SetCount/AddCount)
// and every structured-log attribute key (the log/slog Attr
// constructors: slog.String, slog.Int64, ...) must be an untyped
// string constant in snake_case, and metric and span names must be
// unique across the repository — EXPLAIN ANALYZE looks spans up by
// name and the Prometheus writer keys on the metric name, so a
// dynamic or colliding key silently merges unrelated series.
//
// Root trace names, count keys and slog record keys are exempt from
// uniqueness: a root names the whole query (the same canonical query
// is traced from several entry points), count keys are scoped to
// their span, and a log key ("op", "error") is deliberately shared by
// every emitter so downstream queries join on it.
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric/span names and slog record keys: untyped constants, snake_case, collision-free",
	Run:  runMetricName,
}

// slogAttrFns are the log/slog Attr constructors whose first argument
// is a record key.
var slogAttrFns = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true, "Time": true,
	"Any": true, "Group": true,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\{[a-z_][a-z0-9_]*="[^"]*"\})?$`)
	spanNameRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// nameUse is one collected naming call site.
type nameUse struct {
	p    *Package
	node ast.Node
	kind string // "metric", "span", "root", "key", "logkey"
	what string // human label for messages
	arg  ast.Expr
}

// isRegistryExpr reports whether e's static type is obs.Registry.
func (p *Package) isRegistryExpr(e ast.Expr) bool {
	return typeIsTail(p.typeOf(e), "obs", "Registry")
}

// isSpanExpr reports whether e's static type is obs.Span.
func (p *Package) isSpanExpr(e ast.Expr) bool {
	return typeIsTail(p.typeOf(e), "obs", "Span")
}

// isObsNewTracer matches a call to the obs package's NewTracer — by
// callee object, so renamed imports resolve.
func (p *Package) isObsNewTracer(call *ast.CallExpr) bool {
	fn := p.calleeObj(call)
	return fn != nil && fn.Name() == "NewTracer" &&
		fn.Pkg() != nil && pathTail(fn.Pkg().Path()) == "obs"
}

func runMetricName(pkgs []*Package) []Finding {
	var uses []nameUse
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				var fnName string
				if ok {
					fnName = sel.Sel.Name
				} else if id, ok := call.Fun.(*ast.Ident); ok {
					fnName = id.Name
				}
				u := nameUse{p: p, node: call}
				fnObj := p.calleeObj(call)
				switch {
				case ok && slogAttrFns[fnName] && len(call.Args) >= 1 &&
					fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "log/slog":
					u.kind, u.what = "logkey", "slog record key"
				case (fnName == "Counter" || fnName == "Gauge") && len(call.Args) == 2 && ok &&
					p.isRegistryExpr(sel.X):
					u.kind, u.what = "metric", fnName+" registration"
				case fnName == "Histogram" && len(call.Args) == 3 && ok && p.isRegistryExpr(sel.X):
					u.kind, u.what = "metric", "Histogram registration"
				case fnName == "Start" && len(call.Args) == 1 && ok && p.isTracerExpr(sel.X):
					u.kind, u.what = "span", "span name"
				case fnName == "NewTracer" && len(call.Args) == 1 && p.isObsNewTracer(call):
					u.kind, u.what = "root", "root trace name"
				case (fnName == "SetCount" || fnName == "AddCount") && len(call.Args) == 2 && ok &&
					p.isSpanExpr(sel.X):
					u.kind, u.what = "key", "span count key"
				default:
					return true
				}
				u.arg = call.Args[0]
				uses = append(uses, u)
				return true
			})
		}
	}

	var out []Finding
	firstSite := map[string]nameUse{} // "<kind>\x00<value>" → first registration
	for _, u := range uses {
		val, ok := u.p.constString(u.arg)
		if !ok {
			out = append(out, u.p.finding("metricname", u.arg,
				"%s built dynamically; obs names must be untyped string constants", u.what))
			continue
		}
		re := spanNameRE
		if u.kind == "metric" {
			re = metricNameRE
		}
		if !re.MatchString(val) {
			out = append(out, u.p.finding("metricname", u.arg,
				"%s %q is not snake_case", u.what, val))
			continue
		}
		if u.kind != "metric" && u.kind != "span" {
			continue
		}
		key := u.kind + "\x00" + val
		if prev, dup := firstSite[key]; dup {
			prevPos := prev.p.Fset.Position(prev.node.Pos())
			out = append(out, u.p.finding("metricname", u.arg,
				"%s %q collides with the registration at %s:%d", u.what, val, prevPos.Filename, prevPos.Line))
			continue
		}
		firstSite[key] = u
	}
	return out
}
