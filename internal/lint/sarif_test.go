package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF pins the shape code-scanning uploads depend on:
// version 2.1.0, one run, every analyzer listed as a rule, and
// root-relative forward-slash file URIs.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{Analyzer: "spanend", File: "/repo/internal/core/engine.go", Line: 42, Col: 7, Message: "span leaked"},
		{Analyzer: "errwrap", File: "/elsewhere/x.go", Line: 1, Col: 1, Message: "text match"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", All(), findings); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "moglint" {
		t.Errorf("driver name = %q, want moglint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(All()); got != want {
		t.Errorf("rules = %d, want one per analyzer (%d)", got, want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "spanend" || first.Level != "error" {
		t.Errorf("first result = %s/%s, want spanend/error", first.RuleID, first.Level)
	}
	if uri := first.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/core/engine.go" {
		t.Errorf("uri = %q, want repo-relative internal/core/engine.go", uri)
	}
	if line := first.Locations[0].PhysicalLocation.Region.StartLine; line != 42 {
		t.Errorf("startLine = %d, want 42", line)
	}
	// A finding outside the root keeps its absolute path.
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; !strings.HasPrefix(uri, "/elsewhere") {
		t.Errorf("outside-root uri = %q, want absolute", uri)
	}

	// A clean run is still a valid, uploadable log.
	buf.Reset()
	if err := WriteSARIF(&buf, "/repo", All(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty findings should render an empty results array:\n%s", buf.String())
	}
}
