package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture tests so the module packages
// fixtures import (mogis/internal/obs, ...) type-check once.
var (
	fixtureOnce   sync.Once
	fixtureShared *Loader
	fixtureErr    error
)

// loadFixture parses and type-checks one fixture package
// (testdata/<analyzer>/<kind>). Fixtures must type-check cleanly:
// a fixture the checker cannot resolve silently weakens every
// type-driven analyzer it exercises.
func loadFixture(t *testing.T, analyzer, kind string) *Package {
	t.Helper()
	fixtureOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			fixtureErr = err
			return
		}
		root, mod, err := ModuleRoot(wd)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureShared = NewLoader(root, mod)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	dir := filepath.Join("testdata", analyzer, kind)
	p, err := fixtureShared.LoadDir(dir, "fixture/"+analyzer+"/"+kind)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if p == nil {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	return p
}

// wantLines scans the fixture sources for `// want` markers and
// returns the set of file:line keys expected to carry a finding.
func wantLines(t *testing.T, p *Package) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(p.Dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want") {
				want[keyOf(path, line)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

func keyOf(file string, line int) string {
	return filepath.Base(file) + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// checkFixtures runs one analyzer over its bad and good fixture
// packages: every `// want` line in bad must carry at least one
// finding and no unmarked line may, and good must be entirely silent.
func checkFixtures(t *testing.T, name string) {
	a := ByName(name)
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}

	bad := loadFixture(t, name, "bad")
	want := wantLines(t, bad)
	if len(want) == 0 {
		t.Fatalf("bad fixture for %s has no // want markers", name)
	}
	got := map[string][]string{}
	for _, f := range a.Run([]*Package{bad}) {
		if f.Analyzer != name {
			t.Errorf("finding attributed to %q, want %q", f.Analyzer, name)
		}
		k := keyOf(f.File, f.Line)
		got[k] = append(got[k], f.Message)
	}
	var missing, extra []string
	for k := range want {
		if len(got[k]) == 0 {
			missing = append(missing, k)
		}
	}
	for k, msgs := range got {
		if !want[k] {
			extra = append(extra, k+": "+strings.Join(msgs, "; "))
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, m := range missing {
		t.Errorf("%s: marked line drew no finding: %s", name, m)
	}
	for _, e := range extra {
		t.Errorf("%s: unmarked line drew a finding: %s", name, e)
	}

	good := loadFixture(t, name, "good")
	for _, f := range a.Run([]*Package{good}) {
		t.Errorf("%s: good fixture drew a finding: %s", name, f.String())
	}
}

func TestSpanEndFixtures(t *testing.T)          { checkFixtures(t, "spanend") }
func TestAtomicKnobFixtures(t *testing.T)       { checkFixtures(t, "atomicknob") }
func TestCacheInvalidateFixtures(t *testing.T)  { checkFixtures(t, "cacheinvalidate") }
func TestDeterminismFixtures(t *testing.T)      { checkFixtures(t, "determinism") }
func TestMetricNameFixtures(t *testing.T)       { checkFixtures(t, "metricname") }
func TestCtxFirstFixtures(t *testing.T)         { checkFixtures(t, "ctxfirst") }
func TestLockOrderFixtures(t *testing.T)        { checkFixtures(t, "lockorder") }
func TestGoroutineJoinFixtures(t *testing.T)    { checkFixtures(t, "goroutinejoin") }
func TestBudgetStrideFixtures(t *testing.T)     { checkFixtures(t, "budgetstride") }
func TestTelemetryBracketFixtures(t *testing.T) { checkFixtures(t, "telemetrybracket") }
func TestErrWrapFixtures(t *testing.T)          { checkFixtures(t, "errwrap") }

// TestRunAllOrdersFindings pins the stable output contract: findings
// sort by file, line, column, analyzer.
func TestRunAllOrdersFindings(t *testing.T) {
	bad := loadFixture(t, "spanend", "bad")
	findings := RunAll(All(), []*Package{bad})
	if len(findings) == 0 {
		t.Fatal("expected findings from the spanend bad fixture")
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s before %s", a.String(), b.String())
		}
	}
}

// TestByNameUnknown pins the nil contract for unknown analyzers.
func TestByNameUnknown(t *testing.T) {
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

// TestModuleRoot resolves the repository's own module.
func TestModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, mod, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if mod != "mogis" {
		t.Errorf("module path = %q, want mogis", mod)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %q has no go.mod: %v", root, err)
	}
}

// TestSelfClean runs every analyzer over the repository itself: the
// tree must stay lint-clean (the same gate `make lint` enforces).
func TestSelfClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, mod, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s does not type-check: %v", p.Path, terr)
		}
	}
	for _, f := range RunAll(All(), pkgs) {
		t.Errorf("repository is not lint-clean: %s", f.String())
	}
}
