package lint

import (
	"go/ast"
	"go/constant"
)

// budgetStrideCap mirrors checkEvery in internal/core/qctl.go: the
// maximum number of rows a scan loop may process between cooperative
// budget/cancellation checks.
const budgetStrideCap = 1024

// AnalyzerBudgetStride enforces the cooperative-cancellation contract
// on row scans: every loop over MOFT rows on a budget-governed path
// must call the query controller within a bounded stride, so a
// runaway scan is cut off within checkEvery rows rather than at the
// end of the table.
//
// Scope approximates "reachable from a query entry point" as "a qctl
// value is in scope": the controller is created by the telemetry
// bracket at the entry point and threaded down, so its presence marks
// the governed paths, and index builders or loaders that legitimately
// scan without a budget stay exempt. Within such functions (including
// their closures — scatter workers capture qc), a loop counts as a
// row scan when it touches moft.Columns, or ranges over moft.Oid
// candidates or moft.Tuple rows. The loop passes when at least one
// qctl check (step, addRows, addResults) inside it is unconditional,
// or is guarded only by conditions carrying an integer constant in
// [1, 1024] (i%256 == 255, pending >= checkEvery, scanned%checkEvery
// == 0 all fold). Calls in an if's init or condition are
// unconditional. A guard whose constants all exceed the cap, or a
// loop with no check at all, is a finding.
var AnalyzerBudgetStride = &Analyzer{
	Name: "budgetstride",
	Doc:  "row-scan loops on budget-governed paths check the query controller within checkEvery rows",
	Run:  runBudgetStride,
}

func runBudgetStride(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !p.qctlInScope(fd) {
					continue
				}
				out = append(out, p.checkStrides(fd)...)
			}
		}
	}
	return out
}

// qctlInScope reports whether any expression in the function resolves
// to the query controller type.
func (p *Package) qctlInScope(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && typeNameIs(p.typeOf(e), "qctl") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isRowScanLoop reports whether the for/range statement iterates MOFT
// rows: its header or body touches a moft.Columns value, or ranges
// over moft.Oid / moft.Tuple elements.
func (p *Package) isRowScanLoop(loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := p.typeOf(e)
		if t == nil {
			return true
		}
		if typeIsTail(t, "moft", "Columns") ||
			typeIsTail(t, "moft", "Oid") ||
			typeIsTail(t, "moft", "Tuple") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isQctlCheck matches qc.step / qc.addRows / qc.addResults on a
// qctl-typed receiver.
func (p *Package) isQctlCheck(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !typeNameIs(p.typeOf(sel.X), "qctl") {
		return false
	}
	switch sel.Sel.Name {
	case "step", "addRows", "addResults":
		return true
	}
	return false
}

// intConstants collects every integer constant the type checker folded
// anywhere in the expression (literals and named constants alike).
func (p *Package) intConstants(e ast.Expr) []int64 {
	var out []int64
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[ex]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// checkStrides walks every outermost row-scan loop in the function
// (closures included — they capture the controller) and validates it.
func (p *Package) checkStrides(fd *ast.FuncDecl) []Finding {
	var out []Finding
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loop := m.(ast.Stmt)
				if p.isRowScanLoop(loop) {
					out = append(out, p.checkLoop(fd.Name.Name, loop)...)
					// Nested row-scan loops are covered by this loop's
					// check; non-row-scan descendants need no visit.
					return false
				}
			}
			return true
		})
	}
	visit(fd.Body)
	return out
}

// checkLoop validates a single outermost row-scan loop.
func (p *Package) checkLoop(fname string, loop ast.Stmt) []Finding {
	// Collect every qctl check in the loop along with the guard
	// conditions between it and the loop (if-statement bodies only:
	// a call in an if's init or condition runs unconditionally).
	type site struct {
		call   *ast.CallExpr
		guards []ast.Expr
	}
	var sites []site
	var guardStack []ast.Expr
	var walk func(s ast.Stmt)
	findCalls := func(root ast.Node) {
		guards := append([]ast.Expr(nil), guardStack...)
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && p.isQctlCheck(call) {
				sites = append(sites, site{call: call, guards: guards})
			}
			return true
		})
	}
	walk = func(s ast.Stmt) {
		switch v := s.(type) {
		case *ast.IfStmt:
			if v.Init != nil {
				findCalls(v.Init)
			}
			findCalls(v.Cond)
			guardStack = append(guardStack, v.Cond)
			walk(v.Body)
			if v.Else != nil {
				walk(v.Else)
			}
			guardStack = guardStack[:len(guardStack)-1]
		case *ast.BlockStmt:
			for _, t := range v.List {
				walk(t)
			}
		case *ast.ForStmt:
			if v.Init != nil {
				walk(v.Init)
			}
			walk(v.Body)
		case *ast.RangeStmt:
			walk(v.Body)
		case *ast.SwitchStmt:
			walk(v.Body)
		case *ast.TypeSwitchStmt:
			walk(v.Body)
		case *ast.SelectStmt:
			walk(v.Body)
		case *ast.CaseClause:
			for _, t := range v.Body {
				walk(t)
			}
		case *ast.CommClause:
			for _, t := range v.Body {
				walk(t)
			}
		case *ast.LabeledStmt:
			walk(v.Stmt)
		default:
			findCalls(s)
		}
	}
	switch v := loop.(type) {
	case *ast.ForStmt:
		walk(v.Body)
	case *ast.RangeStmt:
		walk(v.Body)
	}

	if len(sites) == 0 {
		return []Finding{p.finding("budgetstride", loop,
			"row-scan loop in %s never checks the query budget; a cancelled query scans to the end of the table", fname)}
	}

	// The loop passes when some check has bounded stride: every guard
	// between it and the loop folds an integer constant in [1, cap].
	overCap := int64(0)
	for _, s := range sites {
		bounded := true
		for _, g := range s.guards {
			ok := false
			var maxC int64
			for _, c := range p.intConstants(g) {
				if c >= 1 && c <= budgetStrideCap {
					ok = true
				}
				if c > maxC {
					maxC = c
				}
			}
			if !ok {
				bounded = false
				if maxC > budgetStrideCap && maxC > overCap {
					overCap = maxC
				}
				break
			}
		}
		if bounded {
			return nil
		}
	}
	if overCap > 0 {
		return []Finding{p.finding("budgetstride", loop,
			"row-scan loop in %s checks the budget every %d rows, exceeding checkEvery (%d)", fname, overCap, budgetStrideCap)}
	}
	return []Finding{p.finding("budgetstride", loop,
		"row-scan loop in %s only checks the budget under unbounded conditions; stride cannot be verified ≤ checkEvery", fname)}
}
