package lint

import (
	"go/ast"
)

// AnalyzerSpanEnd enforces the tracer contract: the span returned by
// obs.Tracer.Start (or Root) must be ended on every path out of the
// function that opened it — via defer s.End(), an End call that
// dominates each return, or a Finish() on the tracer. A span left
// open wedges the tracer's cursor on that stage, so every later span
// of the query nests under it and EXPLAIN ANALYZE reports a corrupted
// tree.
//
// The check is a lexical path analysis, not a full CFG: an End inside
// a conditional closes the span only for the paths of that branch, a
// defer closes it for everything after the defer statement, and
// statements inside function literals are ignored (they may never
// run). Tracer and span expressions resolve through go/types, so a
// renamed import or an accessor returning *obs.Tracer both count.
var AnalyzerSpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must be ended on every path out of the opening function",
	Run:  runSpanEnd,
}

func runSpanEnd(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkFuncSpans(p, fd)...)
			}
		}
	}
	return out
}

func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isTracerExpr reports whether e denotes an obs.Tracer under the type
// checker — a *Tracer variable, field, or the result of an accessor
// like ctx.Tracer(), regardless of import name.
func (p *Package) isTracerExpr(e ast.Expr) bool {
	return typeIsTail(p.typeOf(e), "obs", "Tracer")
}

// isSpanCall reports whether call creates a span: tracer.Start(name)
// or tracer.Root() on anything whose static type is obs.Tracer.
func (p *Package) isSpanCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Start":
		return len(call.Args) == 1 && p.isTracerExpr(sel.X)
	case "Root":
		return len(call.Args) == 0 && p.isTracerExpr(sel.X)
	}
	return false
}

// spanVar is one tracked span: the variable it was assigned to and
// the statement that opened it.
type spanVar struct {
	obj   *ast.Object
	name  string
	start ast.Stmt
}

// checkFuncSpans finds every span opened in fd and verifies each is
// ended on all paths.
func checkFuncSpans(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	var spans []spanVar
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // closures are separate execution contexts
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isSpanCall(call) {
					continue
				}
				if i >= len(v.Lhs) {
					continue
				}
				id, ok := v.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" || id.Obj == nil {
					out = append(out, p.finding("spanend", call,
						"span from %s is discarded and can never be ended", calleeName(call)))
					continue
				}
				spans = append(spans, spanVar{obj: id.Obj, name: id.Name, start: v})
			}
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok && p.isSpanCall(call) {
				out = append(out, p.finding("spanend", call,
					"span from %s is discarded and can never be ended", calleeName(call)))
			}
		}
		return true
	})

	for _, sv := range spans {
		out = append(out, checkSpanPaths(p, fd, sv)...)
	}
	return out
}

// spanWalk carries the state of the lexical path analysis for one
// span variable.
type spanWalk struct {
	p        *Package
	sv       spanVar
	active   bool // start statement passed
	closed   bool // End/defer End/Finish dominates from here on
	findings []Finding
}

// checkSpanPaths walks the function body in source order, activating
// at the span's Start statement and flagging every return reachable
// while the span is still open.
func checkSpanPaths(p *Package, fd *ast.FuncDecl, sv spanVar) []Finding {
	w := &spanWalk{p: p, sv: sv}
	w.stmts(fd.Body.List)
	if w.active && !w.closed && len(w.findings) == 0 {
		w.findings = append(w.findings, p.finding("spanend", sv.start,
			"span %q may reach the end of the function without End", sv.name))
	}
	return w.findings
}

// closesSpan reports whether stmt is s.End() (or a defer of it) for
// the tracked variable, or a tracer Finish() which ends every open
// span.
func (w *spanWalk) closesSpan(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "End":
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Obj == w.sv.obj
	case "Finish":
		return w.p.isTracerExpr(sel.X)
	}
	return false
}

// stmts processes a statement list sequentially, threading the
// active/closed state.
func (w *spanWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *spanWalk) stmt(s ast.Stmt) {
	if s == w.sv.start {
		w.active = true
		return
	}
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok && w.active && w.closesSpan(call) {
			w.closed = true
		}
	case *ast.DeferStmt:
		if w.active && w.closesSpan(v.Call) {
			w.closed = true
		}
	case *ast.ReturnStmt:
		if w.active && !w.closed {
			w.findings = append(w.findings, w.p.finding("spanend", v,
				"return while span %q is still open (End not called on this path)", w.sv.name))
		}
	case *ast.BlockStmt:
		w.stmts(v.List)
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.branch(v.Body.List)
		if v.Else != nil {
			w.branchStmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.branch(v.Body.List)
	case *ast.RangeStmt:
		w.branch(v.Body.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.clauses(v.Body)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.clauses(v.Body)
	case *ast.SelectStmt:
		w.clauses(v.Body)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt)
	case *ast.GoStmt:
		// A goroutine's End is asynchronous; neither closes nor leaks
		// on this function's paths.
	}
}

// branch analyzes a conditionally executed statement list: state
// changes inside it (an End in one arm) are visible to the branch's
// own returns but do not close the span for the fall-through path.
// A span whose whole Start..End life lies inside the branch (e.g. a
// per-iteration span in a loop body) stays closed afterwards.
func (w *spanWalk) branch(list []ast.Stmt) {
	wasActive := w.active
	savedClosed := w.closed
	w.stmts(list)
	if !wasActive && w.active && w.closed {
		return // opened and closed entirely within the branch
	}
	if w.active {
		w.closed = w.closed && savedClosed
	}
}

func (w *spanWalk) branchStmt(s ast.Stmt) {
	wasActive := w.active
	savedClosed := w.closed
	w.stmt(s)
	if !wasActive && w.active && w.closed {
		return
	}
	if w.active {
		w.closed = w.closed && savedClosed
	}
}

func (w *spanWalk) clauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			w.branch(cl.Body)
		case *ast.CommClause:
			w.branch(cl.Body)
		}
	}
}
