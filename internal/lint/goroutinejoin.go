package lint

import (
	"go/ast"
)

// AnalyzerGoroutineJoin enforces that no goroutine in the engine can
// outlive the query that spawned it unobserved. Every `go` statement
// must show one of the accepted join/cancellation disciplines somewhere
// in the spawned expression:
//
//   - a sync.WaitGroup (the spawner Waits for it: scatter workers);
//   - a channel-typed value (the spawner joins by receiving the
//     result or closing the work feed: pipeline stages);
//   - a context.Context (cancellation reaches the worker even if the
//     result is discarded: watchdogs, samplers);
//   - an errgroup-style `.Go(` call shape, where the group carries
//     the join.
//
// Resolution is by type, not name: a WaitGroup reached through a
// struct field or a renamed channel alias still counts. A goroutine
// that is deliberately fire-and-forget — a process-lifetime service
// loop — carries `//moglint:detached` on its own line (or the line
// above), which is greppable and reviewable, unlike silence.
var AnalyzerGoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "every go statement joins via WaitGroup, channel, or context; //moglint:detached opts out",
	Run:  runGoroutineJoin,
}

func runGoroutineJoin(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			file := f
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := p.Fset.Position(gs.Pos()).Line
				if lineDirective(p, file, line, "moglint:detached") {
					return true
				}
				if !p.hasJoinDiscipline(gs) {
					out = append(out, p.finding("goroutinejoin", gs,
						"goroutine has no join discipline: no WaitGroup, channel, or context in the spawned expression (add one, or annotate //moglint:detached)"))
				}
				return true
			})
		}
	}
	return out
}

// hasJoinDiscipline scans the entire go statement subtree — the callee
// expression, its arguments, and a func literal's body — for any
// expression whose type is a WaitGroup, a channel, or a context.
func (p *Package) hasJoinDiscipline(gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := p.typeOf(e)
		if t == nil {
			return true
		}
		if typeIs(t, "sync", "WaitGroup") || isChanType(t) || isContextType(t) {
			found = true
			return false
		}
		// An errgroup-style group.Go(func() error {...}) shape: the
		// method name Go on any receiver is a join-carrying call.
		if call, ok := e.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
