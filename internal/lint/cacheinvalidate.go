package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerCacheInvalidate enforces the every-mutation-invalidates-
// derived-state contract in its three forms:
//
//  1. Inside a package defining a snapshot-bearing table (a struct
//     with an atomic.Pointer snapshot field, like moft.Table's
//     columnar snapshot): every exported method that mutates a slice
//     field of the receiver (append or element assignment) must clear
//     each snapshot field with .Store(nil) — directly or via another
//     method of the type that does.
//  2. Everywhere else: a function that mutates a fact table (a
//     4-argument .Add or an .AddTuple call) after an engine is in
//     scope must afterwards call InvalidateTrajectories or ResetCache,
//     or the engine keeps answering from trajectories, prefilter
//     R-tree, interval cache and sample grid built over the old rows.
//     Mutations before the engine exists are fine — the caches build
//     lazily on first query.
//  3. Inside a package defining a shard coordinator (a struct with a
//     slice-of-engine field, like core.ShardedEngine's shards): a
//     method may only call InvalidateTrajectories or ResetCache on an
//     indexed element of that slice from inside a loop that walks the
//     whole slice. Clearing one shard's caches while its siblings keep
//     stale trajectories splits the fleet — invalidation must fan out
//     through the coordinator.
//  4. A coordinator that also caches derived per-table state in a map
//     field (like core.ShardedEngine's partition map, which carries
//     the per-shard time spans behind interval-time pruning and the
//     grids' temporal indexes): every exported method that fans
//     InvalidateTrajectories/ResetCache across the fleet must also
//     clear each map field — by deleting from it, reassigning it, or
//     calling a method of the type that does. Invalidating the shards
//     while keeping the coordinator's derived map lets stale partition
//     state (time spans, cached units) outlive the data it described.
var AnalyzerCacheInvalidate = &Analyzer{
	Name: "cacheinvalidate",
	Doc:  "table mutations must clear snapshots / invalidate engine caches",
	Run:  runCacheInvalidate,
}

func runCacheInvalidate(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		out = append(out, checkSnapshotClearing(p)...)
		out = append(out, checkEngineInvalidation(p)...)
		out = append(out, checkShardFanOut(p)...)
		out = append(out, checkCoordinatorMapClear(p)...)
	}
	return out
}

// snapshotStruct describes one struct with derived-snapshot state.
type snapshotStruct struct {
	name       string
	snapFields []string // atomic.Pointer fields (the derived snapshots)
	sliceSet   map[string]bool
}

// collectSnapshotStructs finds the package's snapshot-bearing structs:
// at least one atomic.Pointer field and at least one slice field,
// classified through go/types so aliased imports resolve.
func collectSnapshotStructs(p *Package) map[string]*snapshotStruct {
	out := map[string]*snapshotStruct{}
	structFields(p, func(name *ast.Ident, st *ast.StructType) {
		ss := &snapshotStruct{name: name.Name, sliceSet: map[string]bool{}}
		for _, fld := range st.Fields.List {
			t := p.typeOf(fld.Type)
			isPtr := typeIs(t, "sync/atomic", "Pointer")
			isSlice := false
			if t != nil {
				_, isSlice = t.Underlying().(*types.Slice)
			}
			for _, fname := range fld.Names {
				if isPtr {
					ss.snapFields = append(ss.snapFields, fname.Name)
				}
				if isSlice {
					ss.sliceSet[fname.Name] = true
				}
			}
		}
		if len(ss.snapFields) > 0 && len(ss.sliceSet) > 0 {
			out[ss.name] = ss
		}
	})
	return out
}

// methodIndex maps method name → body for every method of the given
// receiver type in the package (for the one-level transitive
// Store(nil) check).
func methodIndex(p *Package, recvType string) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if name, _ := recvTypeName(fd); name == recvType {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// recvIdent returns the receiver identifier object of a method (nil
// for unnamed receivers).
func recvIdent(fd *ast.FuncDecl) *ast.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0].Obj
}

// mutatesSliceField reports whether the body assigns to (or appends
// into) a slice field of the receiver.
func mutatesSliceField(fd *ast.FuncDecl, recv *ast.Object, ss *snapshotStruct) (string, bool) {
	var hit string
	isRecvField := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || !ss.sliceSet[sel.Sel.Name] {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != recv {
			return "", false
		}
		return sel.Sel.Name, true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if name, ok := isRecvField(lhs); ok {
				hit = name
				return false
			}
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				if name, ok := isRecvField(ix.X); ok {
					hit = name
					return false
				}
			}
		}
		return true
	})
	return hit, hit != ""
}

// clearsSnapshot reports whether the body calls recv.snap.Store(nil)
// for the given snapshot field, or (when methods is non-nil) calls a
// method on recv that does.
func clearsSnapshot(fd *ast.FuncDecl, recv *ast.Object, snap string, methods map[string]*ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.snap.Store(nil)
		if sel.Sel.Name == "Store" && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == "nil" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == snap {
					if rid, ok := inner.X.(*ast.Ident); ok && rid.Obj == recv {
						found = true
						return false
					}
				}
			}
		}
		// recv.other() where other clears the snapshot (one level).
		if methods != nil {
			if rid, ok := sel.X.(*ast.Ident); ok && rid.Obj == recv {
				if callee, ok := methods[sel.Sel.Name]; ok && callee != fd {
					if clearsSnapshot(callee, recvIdent(callee), snap, nil) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// checkSnapshotClearing applies rule 1 to the package's own
// snapshot-bearing structs.
func checkSnapshotClearing(p *Package) []Finding {
	structs := collectSnapshotStructs(p)
	if len(structs) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvType, isPtr := recvTypeName(fd)
			ss := structs[recvType]
			if ss == nil || !isPtr {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			field, mutates := mutatesSliceField(fd, recv, ss)
			if !mutates {
				continue
			}
			methods := methodIndex(p, recvType)
			for _, snap := range ss.snapFields {
				if !clearsSnapshot(fd, recv, snap, methods) {
					out = append(out, p.finding("cacheinvalidate", fd.Name,
						"exported method %s.%s mutates %s but never clears snapshot field %s (missing %s.Store(nil))",
						recvType, fd.Name.Name, field, snap, snap))
				}
			}
		}
	}
	return out
}

// --- rule 2: engine-visible mutations ---------------------------------

// isTableMutationCall matches the moft.Table mutators — Add(oid, t,
// x, y) and AddTuple(tp) — on any expression whose static type is
// moft.Table; the declaration form of the receiver no longer matters.
func isTableMutationCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "AddTuple", "Add":
	default:
		return false
	}
	return typeIsTail(p.typeOf(sel.X), "moft", "Table")
}

// isEngineValue reports whether t is a named Engine type (the core
// engine or a fixture stand-in carrying the same name).
func isEngineValue(t types.Type) bool {
	return typeNameIs(t, "Engine")
}

// enginePos returns the earliest position at which a query engine is
// in scope in the function: the position of a call producing an
// *Engine, or the function start when an engine arrives via
// parameter, receiver, or a field selector of Engine type.
// token.NoPos when no engine is visible.
func enginePos(p *Package, fd *ast.FuncDecl) token.Pos {
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			if isEngineValue(p.typeOf(fld.Type)) {
				return fd.Body.Pos()
			}
		}
	}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			if isEngineValue(p.typeOf(fld.Type)) {
				return fd.Body.Pos()
			}
		}
	}
	// A selector that is only ever the target of an assignment is the
	// engine's construction, not evidence it already exists.
	assigned := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				assigned[lhs] = true
			}
		}
		return true
	})
	pos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			// s.Engine.Method(...): an engine read from a field is in
			// scope for the whole function.
			if isEngineValue(p.typeOf(v)) && p.selectionField(v) != nil && !assigned[v] {
				pos = fd.Body.Pos()
				return false
			}
		case *ast.CallExpr:
			// A call producing an engine (core.New, ...) brings it in
			// scope from the call onward.
			if isEngineValue(p.typeOf(v)) {
				if pos == token.NoPos || v.Pos() < pos {
					pos = v.Pos()
				}
			}
		}
		return true
	})
	return pos
}

// checkEngineInvalidation applies rule 2 to every function of
// packages other than the snapshot-defining table package itself.
func checkEngineInvalidation(p *Package) []Finding {
	if pathTail(p.Path) == "moft" {
		return nil // rule 1 governs the table package
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			engine := enginePos(p, fd)
			if engine == token.NoPos {
				continue
			}
			var mutations []*ast.CallExpr
			lastInvalidate := token.NoPos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isTableMutationCall(p, call) && call.Pos() > engine {
					mutations = append(mutations, call)
				}
				switch calleeName(call) {
				case "InvalidateTrajectories", "ResetCache":
					if call.Pos() > lastInvalidate {
						lastInvalidate = call.Pos()
					}
				}
				return true
			})
			for _, m := range mutations {
				if lastInvalidate == token.NoPos || lastInvalidate < m.Pos() {
					out = append(out, p.finding("cacheinvalidate", m,
						"table mutated after an engine is in scope without a later InvalidateTrajectories/ResetCache; cached trajectories, prefilter, intervals and grid go stale"))
				}
			}
		}
	}
	return out
}

// --- rule 3: shard-fleet invalidation fan-out -------------------------

// collectShardStructs finds the package's shard coordinators: structs
// with a field holding a slice of engines ([]*Engine, []*core.Engine,
// or any []*XxxEngine shard fleet). Returns struct name → set of shard
// field names.
func collectShardStructs(p *Package) map[string]map[string]bool {
	isEngineElem := func(t types.Type) bool {
		n := namedType(t)
		return n != nil && strings.HasSuffix(n.Obj().Name(), "Engine")
	}
	out := map[string]map[string]bool{}
	structFields(p, func(name *ast.Ident, st *ast.StructType) {
		for _, fld := range st.Fields.List {
			t := p.typeOf(fld.Type)
			if t == nil {
				continue
			}
			sl, ok := t.Underlying().(*types.Slice)
			if !ok || !isEngineElem(sl.Elem()) {
				continue
			}
			for _, fname := range fld.Names {
				if out[name.Name] == nil {
					out[name.Name] = map[string]bool{}
				}
				out[name.Name][fname.Name] = true
			}
		}
	})
	return out
}

// shardSliceExpr reports whether e is recv.<field> for one of the
// struct's shard-fleet fields, returning the field name.
func shardSliceExpr(e ast.Expr, recv *ast.Object, fields map[string]bool) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !fields[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkShardFanOut applies rule 3: within a shard coordinator's
// methods, an InvalidateTrajectories/ResetCache call on an indexed
// shard (recv.shards[i].ResetCache()) is only legal when the index is
// the key variable of an enclosing `for i := range recv.shards` loop —
// i.e. when the method is fanning the clear across the whole fleet.
// Range-over-element loops (for _, sh := range recv.shards) never
// index and stay silent by construction.
func checkShardFanOut(p *Package) []Finding {
	shardStructs := collectShardStructs(p)
	if len(shardStructs) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recvType, _ := recvTypeName(fd)
			fields := shardStructs[recvType]
			if fields == nil {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			// Index variables that walk the full fleet: the key of a
			// `for i := range recv.<shardField>` statement.
			fanKeys := map[*ast.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, ok := shardSliceExpr(rs.X, recv, fields); !ok {
					return true
				}
				if key, ok := rs.Key.(*ast.Ident); ok && key.Obj != nil {
					fanKeys[key.Obj] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "InvalidateTrajectories", "ResetCache":
				default:
					return true
				}
				ix, ok := sel.X.(*ast.IndexExpr)
				if !ok {
					return true
				}
				field, ok := shardSliceExpr(ix.X, recv, fields)
				if !ok {
					return true
				}
				if id, ok := ix.Index.(*ast.Ident); ok && id.Obj != nil && fanKeys[id.Obj] {
					return true // full fan-out via range key
				}
				out = append(out, p.finding("cacheinvalidate", call,
					"%s on a single indexed shard of %s.%s; invalidation must fan out over every shard (range the fleet), or siblings keep stale caches",
					sel.Sel.Name, recvType, field))
				return true
			})
		}
	}
	return out
}

// --- rule 4: coordinator derived-map clearing -------------------------

// collectMapFields returns struct name -> map-typed field names in
// declaration order for every struct of the package.
func collectMapFields(p *Package) map[string][]string {
	out := map[string][]string{}
	structFields(p, func(name *ast.Ident, st *ast.StructType) {
		for _, fld := range st.Fields.List {
			t := p.typeOf(fld.Type)
			if t == nil {
				continue
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				continue
			}
			for _, fname := range fld.Names {
				out[name.Name] = append(out[name.Name], fname.Name)
			}
		}
	})
	return out
}

// fansInvalidation reports whether the body ranges a shard-fleet field
// of recv and calls InvalidateTrajectories/ResetCache inside the loop,
// i.e. the method is an invalidation fan-out across the fleet.
func fansInvalidation(fd *ast.FuncDecl, recv *ast.Object, fields map[string]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, ok := shardSliceExpr(rs.X, recv, fields); !ok {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "InvalidateTrajectories", "ResetCache":
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}

// clearsMapField reports whether the body deletes from or reassigns
// recv.<field>, or (when methods is non-nil) calls a method on recv
// that does (one level).
func clearsMapField(fd *ast.FuncDecl, recv *ast.Object, field string, methods map[string]*ast.FuncDecl) bool {
	if recv == nil {
		return false
	}
	isRecvMap := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Obj == recv
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if isRecvMap(lhs) {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			// delete(recv.field, key)
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "delete" && len(v.Args) == 2 && isRecvMap(v.Args[0]) {
				found = true
				return false
			}
			// recv.other() where other clears the map (one level).
			if methods != nil {
				if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
					if rid, ok := sel.X.(*ast.Ident); ok && rid.Obj == recv {
						if callee, ok := methods[sel.Sel.Name]; ok && callee != fd {
							if clearsMapField(callee, recvIdent(callee), field, nil) {
								found = true
								return false
							}
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// checkCoordinatorMapClear applies rule 4: on a shard coordinator that
// also holds derived per-table state in map fields (e.g. a partition
// map carrying the per-shard time spans behind interval-time pruning),
// every exported method that fans InvalidateTrajectories/ResetCache
// across the fleet must also clear each map field, or the derived
// state outlives the data it described.
func checkCoordinatorMapClear(p *Package) []Finding {
	shardStructs := collectShardStructs(p)
	if len(shardStructs) == 0 {
		return nil
	}
	mapFields := collectMapFields(p)
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvType, _ := recvTypeName(fd)
			fields := shardStructs[recvType]
			maps := mapFields[recvType]
			if fields == nil || len(maps) == 0 {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			if !fansInvalidation(fd, recv, fields) {
				continue
			}
			methods := methodIndex(p, recvType)
			for _, mf := range maps {
				if !clearsMapField(fd, recv, mf, methods) {
					out = append(out, p.finding("cacheinvalidate", fd.Name,
						"exported method %s.%s fans invalidation over the shard fleet but never clears derived map field %s; stale partition state outlives the shards' caches",
						recvType, fd.Name.Name, mf))
				}
			}
		}
	}
	return out
}
