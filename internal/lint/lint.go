// Package lint implements moglint, the repository's domain-invariant
// static-analysis suite. Each analyzer codifies one invariant the
// query engine's correctness rests on but that neither the compiler
// nor go vet checks:
//
//   - spanend        — every obs.Tracer.Start/Root span is ended on
//     every path out of the function that opened it;
//   - atomicknob     — atomic.* knob fields are accessed only through
//     their atomic methods, and sync.Once/Mutex/RWMutex fields are
//     never copied or passed by value;
//   - cacheinvalidate — mutations of snapshot-bearing tables clear
//     their derived state, and engine-visible table mutations route
//     through InvalidateTrajectories/ResetCache;
//   - determinism    — the parallel query hot paths stay bit-identical
//     to serial: no wall-clock, no randomness, no map-iteration-order
//     result assembly without a subsequent sort;
//   - metricname     — metric and span names handed to internal/obs
//     are untyped constants, snake_case, and collision-free;
//   - ctxfirst       — exported query entry points on Engine/System
//     take context.Context as their first parameter, any context
//     parameter is first, and goroutines spawned in ctx-first
//     functions reference that context;
//   - lockorder      — no blocking operation (channel send/receive,
//     select without default, WaitGroup.Wait) runs under a held
//     mutex, and locks are acquired in one global order;
//   - goroutinejoin  — every go statement carries a join discipline
//     (WaitGroup, channel, or context), or an explicit
//     //moglint:detached annotation;
//   - budgetstride   — loops over MOFT rows on budget-governed paths
//     call the query controller within checkEvery rows;
//   - telemetrybracket — exported Querier methods on the engine
//     facades run the telemetry begin/done bracket exactly once on
//     every return path, verified over the control-flow graph;
//   - errwrap        — typed qerr/budget errors cross package
//     boundaries via %w and errors.Is/As, never string matching.
//
// The suite is stdlib-only, but no longer syntax-only: the loader
// (load.go) type-checks every package with go/types, resolving
// imports from compiler export data (go/importer) with a source
// fallback, and hands each analyzer a shared *types.Info. Checks
// resolve receivers, fields, and constants by type identity rather
// than name matching, and the flow-aware analyzers reason over a
// per-function control-flow graph (cfg.go). Each check remains a
// documented approximation that errs toward silence on constructs it
// cannot resolve; deliberate exceptions are declared in code with
// //moglint: directives rather than suppressed silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one parsed and type-checked package: the unit the
// loader produces and analyzers consume. Test files are excluded —
// tests deliberately violate invariants (out-of-order span ends,
// ad-hoc tracers) to exercise them.
type Package struct {
	Path  string // import path, e.g. mogis/internal/core
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	// Types and Info carry the shared go/types view of the package;
	// every analyzer resolves identifiers, selections and constants
	// through Info instead of name heuristics. TypeErrors collects what
	// the checker could not resolve — analyzers err toward silence on
	// such code, and cmd/moglint reports the errors separately so an
	// unresolvable tree cannot masquerade as a clean one.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Analyzer is one codified invariant. Run receives every loaded
// package at once so cross-package checks (metric-name uniqueness)
// see the whole program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerSpanEnd,
		AnalyzerAtomicKnob,
		AnalyzerCacheInvalidate,
		AnalyzerDeterminism,
		AnalyzerMetricName,
		AnalyzerCtxFirst,
		AnalyzerLockOrder,
		AnalyzerGoroutineJoin,
		AnalyzerBudgetStride,
		AnalyzerTelemetryBracket,
		AnalyzerErrWrap,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAll runs the given analyzers over the packages and returns the
// findings sorted by position then analyzer, ready to print.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(pkgs)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// finding builds a Finding at the position of node n.
func (p *Package) finding(analyzer string, n ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Analyzer: analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}
