// Package lint implements moglint, the repository's domain-invariant
// static-analysis suite. Each analyzer codifies one invariant the
// query engine's correctness rests on but that neither the compiler
// nor go vet checks:
//
//   - spanend        — every obs.Tracer.Start/Root span is ended on
//     every path out of the function that opened it;
//   - atomicknob     — atomic.* knob fields are accessed only through
//     their atomic methods, and sync.Once/Mutex/RWMutex fields are
//     never copied or passed by value;
//   - cacheinvalidate — mutations of snapshot-bearing tables clear
//     their derived state, and engine-visible table mutations route
//     through InvalidateTrajectories/ResetCache;
//   - determinism    — the parallel query hot paths stay bit-identical
//     to serial: no wall-clock, no randomness, no map-iteration-order
//     result assembly without a subsequent sort;
//   - metricname     — metric and span names handed to internal/obs
//     are untyped constants, snake_case, and collision-free;
//   - ctxfirst       — exported query entry points on Engine/System
//     take context.Context as their first parameter, any context
//     parameter is first, and goroutines spawned in ctx-first
//     functions reference that context.
//
// The suite is stdlib-only (go/parser + go/ast + go/token); analyzers
// work on syntax with small per-package symbol tables rather than full
// type information, so each check is a documented approximation that
// errs toward silence on constructs it cannot resolve.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one parsed (not type-checked) package: the unit the
// loader produces and analyzers consume. Test files are excluded —
// tests deliberately violate invariants (out-of-order span ends,
// ad-hoc tracers) to exercise them.
type Package struct {
	Path  string // import path, e.g. mogis/internal/core
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
}

// Analyzer is one codified invariant. Run receives every loaded
// package at once so cross-package checks (metric-name uniqueness)
// see the whole program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerSpanEnd,
		AnalyzerAtomicKnob,
		AnalyzerCacheInvalidate,
		AnalyzerDeterminism,
		AnalyzerMetricName,
		AnalyzerCtxFirst,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAll runs the given analyzers over the packages and returns the
// findings sorted by position then analyzer, ready to print.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(pkgs)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// finding builds a Finding at the position of node n.
func (p *Package) finding(analyzer string, n ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Analyzer: analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}
