// Package good checks the query budget within checkEvery rows on
// every governed scan.
package good

import (
	"context"

	"mogis/internal/moft"
)

type qctl struct{}

func (q *qctl) step(ctx context.Context) error             { return nil }
func (q *qctl) addRows(ctx context.Context, n int64) error { return nil }
func (q *qctl) addResults(n int64) error                   { return nil }

const checkEvery = 1024

// unconditional checks the budget on every row.
func unconditional(ctx context.Context, qc *qctl, cols *moft.Columns) error {
	for r := 0; r < cols.Len(); r++ {
		if err := qc.step(ctx); err != nil {
			return err
		}
	}
	return nil
}

// moduloStride uses the engine's i%256 pattern.
func moduloStride(ctx context.Context, qc *qctl, cand []moft.Oid) error {
	for i, oid := range cand {
		if i%256 == 255 {
			if err := qc.addRows(ctx, 256); err != nil {
				return err
			}
		}
		_ = oid
	}
	return nil
}

// pendingThreshold accumulates and flushes at the checkEvery constant,
// which the type checker folds to 1024.
func pendingThreshold(ctx context.Context, qc *qctl, cols *moft.Columns) error {
	pending := int64(0)
	for r := 0; r < cols.Len(); r++ {
		pending++
		if pending >= checkEvery {
			if err := qc.addRows(ctx, pending); err != nil {
				return err
			}
			pending = 0
		}
	}
	return nil
}

// nestedInner is covered by the check in its outermost row-scan loop.
func nestedInner(ctx context.Context, qc *qctl, cols *moft.Columns) error {
	for i := 0; i < cols.NumObjects(); i++ {
		if err := qc.step(ctx); err != nil {
			return err
		}
		lo, hi := cols.ObjectRange(i)
		for r := lo; r < hi; r++ {
			_ = cols.T[r]
		}
	}
	return nil
}

// notGoverned has no controller in scope: index builders and loaders
// may scan freely.
func notGoverned(cols *moft.Columns) int {
	n := 0
	for r := 0; r < cols.Len(); r++ {
		n++
	}
	return n
}
