// Package bad scans MOFT rows on budget-governed paths without a
// bounded budget check.
package bad

import (
	"context"

	"mogis/internal/moft"
)

// qctl mirrors the engine's query controller shape; the analyzer
// resolves it by type name.
type qctl struct{}

func (q *qctl) step(ctx context.Context) error             { return nil }
func (q *qctl) addRows(ctx context.Context, n int64) error { return nil }
func (q *qctl) addResults(n int64) error                   { return nil }

// neverChecks scans every row without consulting the budget.
func neverChecks(ctx context.Context, qc *qctl, cols *moft.Columns) int {
	n := 0
	for r := 0; r < cols.Len(); r++ { // want
		if cols.T[r] > 0 {
			n++
		}
	}
	return n
}

// strideTooWide checks, but only every 4096 rows — four times the
// checkEvery contract.
func strideTooWide(ctx context.Context, qc *qctl, cols *moft.Columns) error {
	for r := 0; r < cols.Len(); r++ { // want
		if r%4096 == 0 {
			if err := qc.addRows(ctx, 4096); err != nil {
				return err
			}
		}
	}
	return nil
}

// unboundedGuard only checks under a data-dependent condition; the
// stride cannot be bounded.
func unboundedGuard(ctx context.Context, qc *qctl, cols *moft.Columns, hot bool) error {
	for r := 0; r < cols.Len(); r++ { // want
		if hot {
			if err := qc.step(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// oidLoopNoCheck walks the candidate set without a check.
func oidLoopNoCheck(ctx context.Context, qc *qctl, cand []moft.Oid) int {
	n := 0
	for _, oid := range cand { // want
		if oid > 0 {
			n++
		}
	}
	return n
}
