// Package good spawns goroutines only with a visible join or
// cancellation discipline, or an explicit detach annotation.
package good

import (
	"context"
	"sync"
)

// waitGroupJoin registers the worker before spawning and waits.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = n
	}()
	wg.Wait()
}

// channelJoin receives the worker's result.
func channelJoin() int {
	out := make(chan int, 1)
	go func() { out <- 1 }()
	return <-out
}

// fieldWaitGroup reaches the WaitGroup through a struct field.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) spawn(n int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_ = n
	}()
}

// ctxInherit lets cancellation reach the worker.
func ctxInherit(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// groupGo delegates the join to an errgroup-style group.
type group struct{}

func (g *group) Go(fn func() error) {}

func groupGo(g *group) {
	go g.Go(func() error { return nil })
}

// annotated is a deliberate process-lifetime loop and says so.
func annotated() {
	go serviceLoop() //moglint:detached
}

// annotatedAbove carries the directive on the preceding line.
func annotatedAbove() {
	//moglint:detached
	go serviceLoop()
}

func serviceLoop() {}

// hub mirrors a server fan-out hub: every subscriber handler joins the
// drain WaitGroup, so graceful shutdown can await the whole flock.
type hub struct {
	drainWG sync.WaitGroup
	wake    chan struct{}
}

func (h *hub) serveSubscriber(handler func(<-chan struct{})) {
	h.drainWG.Add(1)
	go func() {
		defer h.drainWG.Done()
		handler(h.wake)
	}()
}

// awaitDrain converts the WaitGroup into a selectable channel; both
// join disciplines appear in the spawned expression.
func (h *hub) awaitDrain() <-chan struct{} {
	done := make(chan struct{})
	go func() { h.drainWG.Wait(); close(done) }()
	return done
}

// serveAccepted is a process-lifetime accept loop stopped by closing
// the listener in Shutdown — deliberately detached, and says so.
func serveAccepted(serve func() error) {
	go func() { _ = serve() }() //moglint:detached
}
