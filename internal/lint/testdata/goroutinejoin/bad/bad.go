// Package bad spawns goroutines nothing can join or cancel.
package bad

import "fmt"

// fireAndForget has no WaitGroup, channel, or context anywhere in the
// spawned expression.
func fireAndForget() {
	go func() { // want
		fmt.Println("orphan")
	}()
}

// namedOrphan calls a plain function with plain arguments.
func namedOrphan(n int) {
	go work(n) // want
}

// loopSpawner leaks one orphan per item.
func loopSpawner(items []int) {
	for _, it := range items {
		go work(it) // want
	}
}

func work(n int) { _ = n }

// handleRequest mimics an HTTP handler firing a per-request
// background notification; nothing joins it before the response.
func handleRequest(id int) {
	go notify(id) // want
}

// serveListener mimics an accept loop spawned without the detach
// annotation: process-lifetime intent, but silent about it.
func serveListener(serve func() error) {
	go func() { // want
		_ = serve()
	}()
}

func notify(int) {}
