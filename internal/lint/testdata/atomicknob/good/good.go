// Package good touches guarded fields only through their methods or
// by address; atomicknob must stay silent.
package good

import (
	"sync"
	"sync/atomic"
)

type Engine struct {
	workers atomic.Int32
	snap    atomic.Pointer[[]int]
	once    sync.Once
	mu      sync.RWMutex
}

func (e *Engine) SetWorkers(n int32) { e.workers.Store(n) }

func (e *Engine) Workers() int32 { return e.workers.Load() }

func (e *Engine) Bump() int32 { return e.workers.Add(1) }

func (e *Engine) Swap(old, next int32) bool {
	return e.workers.CompareAndSwap(old, next)
}

func (e *Engine) Reset() { e.snap.Store(nil) }

func (e *Engine) Locked(f func()) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.once.Do(f)
}

// onceAddr passes the primitive by pointer, preserving identity.
func onceAddr(e *Engine) *sync.Once { return &e.once }

// ptrParam takes the guarded struct by pointer — fine.
func ptrParam(e *Engine) {}
