// Package bad copies atomic and sync struct fields by value — every
// access the atomicknob analyzer must flag.
package bad

import (
	"sync"
	"sync/atomic"
)

type Engine struct {
	workers atomic.Int32
	snap    atomic.Pointer[[]int]
	once    sync.Once
	mu      sync.RWMutex
}

// Snapshot reads the atomic knob as a plain struct value.
func (e *Engine) Snapshot() {
	w := e.workers // want
	_ = w
}

// consume takes a sync.Once by value — flagged now that the analyzer
// resolves real types, and passing the field is flagged too.
func consume(o sync.Once) bool { return false } // want

// Pass hands the once field to a by-value parameter, losing its
// identity.
func (e *Engine) Pass() {
	consume(e.once) // want
}

// CopyEngine takes the guarded struct by value: every lock and atomic
// inside is silently cloned.
func CopyEngine(e Engine) {} // want

// valueRecv declares a by-value receiver on the guarded struct.
func (e Engine) valueRecv() {} // want
