// Package bad violates the context-plumbing contract in every way
// the ctxfirst analyzer must catch.
package bad

import (
	"context"
	"sync"
)

type Engine struct{}

type System struct{}

// NoContext is an exported error-returning entry point without a
// context parameter.
func (e *Engine) NoContext(table string) error { // want
	_ = table
	return nil
}

// RunBare is the same violation on the System facade.
func (s *System) RunBare(query string) (string, error) { // want
	return query, nil
}

// CtxSecond takes a context but hides it behind another parameter.
func (e *Engine) CtxSecond(table string, ctx context.Context) error { // want
	_ = ctx
	return nil
}

// helperCtxLast is an unexported helper; rule 1 does not apply but
// the position rule still does.
func helperCtxLast(n int, ctx context.Context) int { // want
	_ = ctx
	return n
}

// DetachedGoroutine spawns work the query's cancellation can never
// reach.
func (e *Engine) DetachedGoroutine(ctx context.Context, n int) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want
		defer wg.Done()
		_ = n * n
	}()
	wg.Wait()
	return ctx.Err()
}
