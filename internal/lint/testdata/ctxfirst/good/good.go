// Package good satisfies the context-plumbing contract: entry points
// take ctx first, helpers keep it first, goroutines inherit it, and
// the exemption directive opts a function out explicitly.
package good

import (
	"context"
	"sync"
)

type Engine struct{}

type System struct{}

// Query is a well-formed entry point: ctx first, error last.
func (e *Engine) Query(ctx context.Context, table string) error {
	_ = table
	return ctx.Err()
}

// Run threads ctx on the System facade.
func (s *System) Run(ctx context.Context, query string) (string, error) {
	return query, ctx.Err()
}

// SetWorkers is a knob, not a query: no error result, so rule 1 does
// not require a context.
func (e *Engine) SetWorkers(n int) {
	_ = n
}

// CacheStats returns no error and needs no context.
func (e *Engine) CacheStats() (tables, objects int) {
	return 0, 0
}

// fanOut spawns goroutines that all reference the function's ctx.
func fanOut(ctx context.Context, n int) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ctx.Err()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// detachDeliberate documents its detach with an explicit Background.
func detachDeliberate(ctx context.Context, done chan<- struct{}) {
	_ = ctx
	go func() {
		_ = context.Background()
		done <- struct{}{}
	}()
}

// Legacy is exempted by directive: a grandfathered entry point the
// analyzer must skip.
//
//moglint:ctxexempt
func (e *Engine) Legacy(table string) error {
	_ = table
	return nil
}
