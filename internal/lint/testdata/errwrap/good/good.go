// Package good crosses package boundaries with wrapped, typed errors.
package good

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type codeError struct{ code int }

func (e *codeError) Error() string { return fmt.Sprintf("code %d", e.code) }

func do() error { return errSentinel }

// compareTyped branches with errors.Is, which survives wrapping.
func compareTyped() bool {
	return errors.Is(do(), errSentinel)
}

// wrap preserves the chain with %w.
func wrap() error {
	if err := do(); err != nil {
		return fmt.Errorf("query failed: %w", err)
	}
	return nil
}

// asTyped unwraps with errors.As.
func asTyped() int {
	var ce *codeError
	if errors.As(do(), &ce) {
		return ce.code
	}
	return 0
}

// logText renders the message for humans; only matching on it is
// banned.
func logText() string {
	return fmt.Sprintf("saw: %v", do())
}

// assertNonError type-asserts an any value, which is out of scope.
func assertNonError(v any) int {
	if n, ok := v.(int); ok {
		return n
	}
	return 0
}

// golden asserts exact text deliberately, e.g. a golden-output test.
//
//moglint:stringerr
func golden() bool {
	return do().Error() == "sentinel"
}
