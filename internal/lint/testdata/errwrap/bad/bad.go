// Package bad matches error text and concrete types instead of using
// the errors.Is/As protocol over wrapped chains.
package bad

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("sentinel")

type codeError struct{ code int }

func (e *codeError) Error() string { return fmt.Sprintf("code %d", e.code) }

func do() error { return errSentinel }

// compareText branches on the exact message, which breaks on any
// rewording.
func compareText() bool {
	err := do()
	return err.Error() == "sentinel" // want
}

// notEqualText is the same defect with the other operator and order.
func notEqualText() bool {
	err := do()
	return "sentinel" != err.Error() // want
}

// containsText greps the message.
func containsText() bool {
	err := do()
	return strings.Contains(err.Error(), "sent") // want
}

// prefixText matches on a message prefix.
func prefixText() bool {
	return strings.HasPrefix(do().Error(), "sen") // want
}

// flatten loses the cause: %v renders text, errors.As finds nothing.
func flatten() error {
	if err := do(); err != nil {
		return fmt.Errorf("query failed: %v", err) // want
	}
	return nil
}

// flattenText flattens via Error() rather than the value.
func flattenText() error {
	if err := do(); err != nil {
		return fmt.Errorf("query failed: %s", err.Error()) // want
	}
	return nil
}

// assert reaches for the concrete type without unwrapping.
func assert() int {
	err := do()
	if ce, ok := err.(*codeError); ok { // want
		return ce.code
	}
	return 0
}

// switchOnType has the same defect in switch form.
func switchOnType() int {
	err := do()
	switch e := err.(type) { // want
	case *codeError:
		return e.code
	default:
		return 0
	}
}
