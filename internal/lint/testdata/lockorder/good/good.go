// Package good blocks only outside critical sections and acquires
// locks in one global order.
package good

import "sync"

type store struct {
	mu  sync.Mutex
	aux sync.Mutex
	ch  chan int
	wg  sync.WaitGroup
}

// sendOutsideLock releases before blocking.
func (s *store) sendOutsideLock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// orderSiteA and orderSiteB agree on mu before aux.
func (s *store) orderSiteA() {
	s.mu.Lock()
	s.aux.Lock()
	s.aux.Unlock()
	s.mu.Unlock()
}

func (s *store) orderSiteB() {
	s.mu.Lock()
	s.aux.Lock()
	s.aux.Unlock()
	s.mu.Unlock()
}

// condWait is exempt: sync.Cond.Wait releases the lock while blocked.
func (s *store) condWait(c *sync.Cond) {
	s.mu.Lock()
	c.Wait()
	s.mu.Unlock()
}

// goroutineBody does not inherit the spawner's held set; the send
// blocks the worker, not the lock holder.
func (s *store) goroutineBody(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ch <- v
	}()
}

// selectDefault never blocks.
func (s *store) selectDefault() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		return v, true
	default:
		return 0, false
	}
}

// waitAfterUnlock joins the workers with no lock held.
func (s *store) waitAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.wg.Wait()
}
