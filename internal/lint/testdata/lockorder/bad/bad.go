// Package bad holds mutexes across blocking operations and acquires
// two locks in opposite orders at different sites.
package bad

import "sync"

type store struct {
	mu  sync.Mutex
	aux sync.Mutex
	ch  chan int
	wg  sync.WaitGroup
}

// sendUnderLock blocks on a channel send while holding mu.
func (s *store) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want
	s.mu.Unlock()
}

// recvUnderDeferredLock holds mu for the whole body via defer and
// then blocks on a receive.
func (s *store) recvUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-s.ch // want
	return v
}

// waitUnderLock blocks on WaitGroup.Wait with mu held.
func (s *store) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want
	s.mu.Unlock()
}

// selectUnderLock blocks on a default-less select with mu held.
func (s *store) selectUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want
	case v := <-s.ch:
		return v
	}
}

// reacquire locks mu twice on one path; sync.Mutex is not reentrant.
func (s *store) reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want
	s.mu.Unlock()
}

// lockAB establishes the mu-before-aux order.
func (s *store) lockAB() {
	s.mu.Lock()
	s.aux.Lock()
	s.aux.Unlock()
	s.mu.Unlock()
}

// lockBA acquires the same pair in the opposite order: ABBA.
func (s *store) lockBA() {
	s.aux.Lock()
	s.mu.Lock() // want
	s.mu.Unlock()
	s.aux.Unlock()
}
